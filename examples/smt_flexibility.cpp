/**
 * @file
 * The paper's headline result in one runnable program: sweep the active
 * thread count and watch the big-SMT-core chip (4B) stay near the top of
 * the envelope everywhere, while each specialised design wins only its
 * own corner.
 *
 * Usage: smt_flexibility [max_threads]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "study/design_space.h"
#include "study/study_engine.h"

using namespace smtflex;

int
main(int argc, char **argv)
{
    StudyEngine eng;
    std::uint32_t max_threads = eng.options().maxThreads;
    if (argc > 1)
        max_threads = static_cast<std::uint32_t>(std::atoi(argv[1]));

    const std::vector<std::string> designs = {"4B", "8m", "20s", "2B10s"};
    std::printf("STP by active thread count (homogeneous workloads):\n\n");
    std::printf("%-8s", "threads");
    for (const auto &name : designs)
        std::printf("%9s", name.c_str());
    std::printf("%10s %12s\n", "winner", "4B vs best");

    double worst_ratio = 1.0;
    std::uint32_t worst_n = 1;
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        if (n > max_threads)
            break;
        std::vector<double> stp;
        for (const auto &name : designs)
            stp.push_back(eng.homogeneousAt(paperDesign(name), n).stp);
        const std::size_t best = static_cast<std::size_t>(
            std::max_element(stp.begin(), stp.end()) - stp.begin());
        const double ratio = stp[0] / stp[best];
        if (ratio < worst_ratio) {
            worst_ratio = ratio;
            worst_n = n;
        }
        std::printf("%-8u", n);
        for (const double v : stp)
            std::printf("%9.3f", v);
        std::printf("%10s %11.0f%%\n", designs[best].c_str(),
                    100.0 * ratio);
    }

    std::printf("\nThe flexibility argument: across the whole range, the "
                "homogeneous big-SMT chip never falls below %.0f%% of the "
                "best specialised design (worst case at %u threads), while "
                "20s delivers only %.0f%% of 4B's throughput at 1 "
                "thread.\n",
                100.0 * worst_ratio, worst_n,
                100.0 * eng.homogeneousAt(paperDesign("20s"), 1).stp /
                    eng.homogeneousAt(paperDesign("4B"), 1).stp);
    return 0;
}
