/**
 * @file
 * Scenario: study how a multi-threaded application scales on a chip —
 * thread-count sweep, active-thread histogram, and the SMT-vs-cores
 * question for one PARSEC-like application.
 *
 * Usage: parsec_scaling [benchmark] [design]
 *   e.g.  parsec_scaling ferret 4B
 * Defaults: streamcluster on 4B.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "study/design_space.h"
#include "study/study_engine.h"
#include "workload/parsec.h"

using namespace smtflex;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "streamcluster";
    const std::string design = argc > 2 ? argv[2] : "4B";

    StudyEngine eng;
    const ChipConfig cfg = paperDesign(design);
    std::printf("%s on %s (%u cores, %u hardware threads)\n\n",
                bench.c_str(), design.c_str(), cfg.numCores(),
                cfg.totalContexts());

    // Thread-count sweep: ROI cycles, speedup vs 4 threads, whole-program.
    const ParsecMetrics base = eng.parsec(cfg, bench, 4);
    std::printf("%-8s %14s %10s %14s %10s\n", "threads", "ROI cycles",
                "speedup", "total cycles", "speedup");
    for (const std::uint32_t t : eng.parsecThreadCandidates(cfg)) {
        const ParsecMetrics m = eng.parsec(cfg, bench, t);
        std::printf("%-8u %14.0f %10.2f %14.0f %10.2f\n", t, m.roiCycles,
                    base.roiCycles / m.roiCycles, m.totalCycles,
                    base.totalCycles / m.totalCycles);
    }

    // Active-thread histogram at the largest count (the paper's Fig. 1
    // view of this application).
    const auto candidates = eng.parsecThreadCandidates(cfg);
    const std::uint32_t t_max = candidates.back();
    const ParsecMetrics m = eng.parsec(cfg, bench, t_max);
    std::printf("\nROI active-thread distribution at %u threads:\n", t_max);
    for (std::size_t k = 0; k < m.roiActiveThreadFractions.size(); ++k) {
        if (m.roiActiveThreadFractions[k] < 0.005)
            continue;
        std::printf("  %2zu active: %5.1f%%  ", k,
                    100.0 * m.roiActiveThreadFractions[k]);
        const int bars =
            static_cast<int>(m.roiActiveThreadFractions[k] * 60);
        for (int b = 0; b < bars; ++b)
            std::printf("#");
        std::printf("\n");
    }

    // SMT or more cores? Compare this design's SMT mode against one
    // thread per core.
    const double best_smt = eng.bestParsecCycles(cfg, bench, true);
    const double best_nosmt =
        eng.bestParsecCycles(cfg.withSmt(false), bench, true);
    std::printf("\nbest ROI cycles with SMT: %.0f, without: %.0f "
                "(SMT gain %.1f%%)\n",
                best_smt, best_nosmt,
                100.0 * (best_nosmt / best_smt - 1.0));
    return 0;
}
