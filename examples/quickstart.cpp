/**
 * @file
 * Quickstart: build a chip, run a small multi-program workload, and print
 * throughput, per-program performance and power.
 *
 * This touches the core public API end to end:
 *   ChipConfig -> Scheduler -> ChipSim -> metrics + PowerModel.
 */

#include <cstdio>

#include "metrics/metrics.h"
#include "power/power_model.h"
#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "sim/power_summary.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

using namespace smtflex;

int
main()
{
    // 1. A chip: four big out-of-order cores, each with 6 SMT contexts,
    //    behind a shared 8 MB LLC and an 8 GB/s memory bus (the paper's
    //    "4B" design).
    const ChipConfig chip_config =
        ChipConfig::homogeneous("4B", CoreParams::big(), 4);

    // 2. A workload: six single-threaded programs (two memory-bound, four
    //    compute-bound), 16k instructions each after 4k warmup.
    MultiProgramWorkload workload;
    workload.name = "quickstart-mix";
    workload.programs = {
        &specProfile("libquantum"), &specProfile("mcf"),
        &specProfile("hmmer"),      &specProfile("calculix"),
        &specProfile("tonto"),      &specProfile("h264ref"),
    };
    const auto specs = workload.specs(16'000, 4'000);

    // 3. Placement: spread across cores before engaging SMT; co-schedule
    //    memory-intensive with compute-intensive programs.
    const Placement placement =
        scheduleOffline(chip_config, specs, OfflineProfile{});

    // 4. Simulate.
    ChipSim chip(chip_config);
    const SimResult result = chip.runMultiProgram(specs, placement, 42);

    // 5. Isolated big-core baselines for the metrics.
    std::vector<double> isolated;
    for (const auto &spec : specs) {
        ChipConfig solo = ChipConfig::homogeneous(
            "solo", CoreParams::big(), 1);
        ChipSim solo_chip(solo);
        Placement solo_pl;
        solo_pl.entries = {{0, 0}};
        isolated.push_back(
            solo_chip.runMultiProgram({spec}, solo_pl, 42)
                .threads[0].ipc());
    }

    // 6. Report.
    std::printf("simulated %llu cycles on %s\n",
                static_cast<unsigned long long>(result.cycles),
                result.configName.c_str());
    std::printf("%-12s %10s %14s %12s\n", "program", "IPC",
                "isolated IPC", "norm. prog.");
    const auto np = normalisedProgress(result, isolated);
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        std::printf("%-12s %10.3f %14.3f %12.3f\n",
                    result.threads[i].benchmark.c_str(),
                    result.threads[i].ipc(), isolated[i], np[i]);
    }
    std::printf("\nSTP (weighted speedup): %.3f\n",
                systemThroughput(result, isolated));
    std::printf("ANTT (avg slowdown):    %.3f\n",
                avgNormalisedTurnaround(result, isolated));

    PowerModel power;
    const PowerSummary gated = summarisePower(result, power, true);
    std::printf("avg chip power:         %.1f W (idle cores gated)\n",
                gated.avgPowerW);
    std::printf("energy:                 %.2e J\n", gated.energyJ);
    return 0;
}
