/**
 * @file
 * Scenario: explore your own multi-core design under the paper's power
 * budget. Specify a core mix on the command line; the tool checks the
 * power envelope, runs the thread-count sweep, and compares against the
 * paper's nine designs.
 *
 * Usage: design_explorer <big> <medium> <small> [--no-smt]
 *   e.g.  design_explorer 2 2 5
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "power/power_model.h"
#include "study/design_space.h"
#include "study/study_engine.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main(int argc, char **argv)
{
    std::uint32_t big = 2, medium = 2, small = 5;
    bool smt = true;
    if (argc >= 4) {
        big = static_cast<std::uint32_t>(std::atoi(argv[1]));
        medium = static_cast<std::uint32_t>(std::atoi(argv[2]));
        small = static_cast<std::uint32_t>(std::atoi(argv[3]));
        if (argc > 4 && std::strcmp(argv[4], "--no-smt") == 0)
            smt = false;
    } else if (argc != 1) {
        std::fprintf(stderr,
                     "usage: %s <big> <medium> <small> [--no-smt]\n",
                     argv[0]);
        return 1;
    }

    // Build the custom chip.
    ChipConfig cfg;
    cfg.name = std::to_string(big) + "B" + std::to_string(medium) + "m" +
        std::to_string(small) + "s";
    for (std::uint32_t i = 0; i < big; ++i)
        cfg.cores.push_back(CoreParams::big());
    for (std::uint32_t i = 0; i < medium; ++i)
        cfg.cores.push_back(CoreParams::medium());
    for (std::uint32_t i = 0; i < small; ++i)
        cfg.cores.push_back(CoreParams::small());
    cfg.smtEnabled = smt;
    cfg.validate();

    // Power-envelope check against the paper's budget (4 big cores).
    PowerModel power;
    double chip_power = power.uncoreStaticW();
    for (const auto &core : cfg.cores)
        chip_power += power.coreFullLoadW(core);
    const double budget =
        4 * power.coreFullLoadW(CoreParams::big()) + power.uncoreStaticW();
    std::printf("design %s: %u cores, %u hardware threads, %.1f W full "
                "load (budget %.1f W)%s\n\n",
                cfg.name.c_str(), cfg.numCores(), cfg.totalContexts(),
                chip_power, budget,
                chip_power > budget * 1.05 ? "  ** OVER BUDGET **" : "");

    StudyEngine eng;
    std::printf("STP vs thread count (heterogeneous workload mixes):\n");
    std::printf("%-8s %10s %10s %10s\n", "threads", cfg.name.c_str(),
                "4B", "best-of-9");
    const std::uint32_t max_threads =
        std::min<std::uint32_t>(eng.options().maxThreads,
                                cfg.totalContexts());
    for (std::uint32_t n = 1; n <= max_threads; n += (n < 4 ? 1 : 4)) {
        const double mine = eng.heterogeneousAt(cfg, n).stp;
        const double v4b =
            eng.heterogeneousAt(paperDesign("4B"), n).stp;
        double best = 0.0;
        for (const auto &name : paperDesignNames())
            best = std::max(best,
                            eng.heterogeneousAt(paperDesign(name), n).stp);
        std::printf("%-8u %10.3f %10.3f %10.3f\n", n, mine, v4b, best);
    }

    const auto dist = uniformThreadCounts(max_threads);
    std::printf("\nuniform-distribution score: %.3f (4B: %.3f)\n",
                eng.distributionStp(cfg, dist, true),
                eng.distributionStp(paperDesign("4B"),
                                    uniformThreadCounts(
                                        eng.options().maxThreads),
                                    true));
    return 0;
}
