/**
 * @file
 * Scenario: size a server chip for a datacenter whose utilisation profile
 * you know. Give the tool your observed active-thread histogram and it
 * ranks the candidate designs by throughput and energy efficiency under
 * exactly that load — the paper's Section 4.2 methodology as a utility.
 *
 * Usage: datacenter_sizing [idle_weight hump_center hump_width]
 *   e.g.  datacenter_sizing 0.2 16 4    # a fairly busy cluster
 * Defaults reproduce the paper's (Barroso & Holzle) distribution.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.h"
#include "metrics/metrics.h"
#include "study/design_space.h"
#include "study/study_engine.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main(int argc, char **argv)
{
    double idle_weight = 0.105, hump_centre = 8.0, hump_width = 3.5;
    if (argc == 4) {
        idle_weight = std::atof(argv[1]);
        hump_centre = std::atof(argv[2]);
        hump_width = std::atof(argv[3]);
    } else if (argc != 1) {
        std::fprintf(stderr,
                     "usage: %s [idle_weight hump_center hump_width]\n",
                     argv[0]);
        return 1;
    }

    StudyEngine eng;
    const std::size_t max_threads = eng.options().maxThreads;

    // Build the utilisation distribution from the three knobs.
    std::vector<double> weights(max_threads);
    for (std::size_t i = 0; i < max_threads; ++i) {
        const double n = static_cast<double>(i + 1);
        weights[i] = idle_weight * std::exp(-(n - 1.0) / 1.6) +
            0.062 * std::exp(-0.5 * std::pow((n - hump_centre) / hump_width,
                                             2.0)) +
            0.008;
    }
    const DiscreteDistribution dist(std::move(weights));

    std::printf("active-thread distribution (mean %.1f threads):\n  ",
                dist.mean());
    for (std::size_t n = 1; n <= dist.size(); ++n)
        std::printf("%.3f ", dist.probability(n));
    std::printf("\n\nranking candidate designs under this load "
                "(heterogeneous workload mixes):\n");
    std::printf("%-8s %12s %10s %14s %10s\n", "design", "throughput",
                "power(W)", "energy/work", "EDP");

    std::string best_name;
    double best_edp = 0.0;
    for (const auto &name : paperDesignNames()) {
        const ChipConfig cfg = paperDesign(name);
        const double stp = eng.distributionStp(cfg, dist, true);
        const double power = eng.distributionPower(cfg, dist, true);
        const double edp = energyDelayProduct(power, stp);
        std::printf("%-8s %12.3f %10.1f %14.2f %10.2f\n", name.c_str(),
                    stp, power, power / stp, edp);
        if (best_name.empty() || edp < best_edp) {
            best_name = name;
            best_edp = edp;
        }
    }
    std::printf("\nbest energy-delay design for this cluster: %s\n",
                best_name.c_str());
    return 0;
}
