/**
 * @file
 * The smtflex command-line front end: run simulations, sweeps and
 * characterisations without writing C++.
 *
 *   smtflex designs
 *   smtflex benchmarks
 *   smtflex isolated <bench> [...]
 *   smtflex run    --design 4B --workload mcf,hmmer,tonto [--no-smt]
 *                  [--budget N] [--warmup N] [--seed N] [--bw GBps]
 *                  [--prefetch] [--naive-sched]
 *   smtflex sweep  --design 4B [--bench tonto | --het] [--no-smt]
 *   smtflex parsec --app ferret --design 20s --threads 16 [--throttle]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "exec/experiment_runner.h"
#include "report/sim_report.h"
#include "trace/trace_io.h"
#include "metrics/metrics.h"
#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "sim/power_summary.h"
#include "study/design_space.h"
#include "study/study_engine.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"
#include "workload/parsec.h"
#include "workload/parsec_runner.h"

using namespace smtflex;

namespace {

/** Tiny flag parser: --key value and boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                fatal("unexpected argument '", key, "'");
            key = key.substr(2);
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                values_[key] = argv[i + 1];
                ++i;
            } else {
                values_[key] = "";
            }
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end()
            ? fallback
            : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atof(it->second.c_str());
    }

  private:
    std::map<std::string, std::string> values_;
};

ChipConfig
designFromArgs(const Args &args)
{
    const std::string name = args.get("design", "4B");
    ChipConfig cfg;
    bool found = false;
    for (const auto &known : paperDesignNames()) {
        if (known == name) {
            cfg = paperDesign(name);
            found = true;
        }
    }
    for (const auto &known : alternativeDesignNames()) {
        if (known == name) {
            cfg = alternativeDesign(name);
            found = true;
        }
    }
    if (!found)
        fatal("unknown design '", name, "' (see `smtflex designs`)");
    if (args.has("no-smt"))
        cfg = cfg.withSmt(false);
    if (args.has("bw"))
        cfg = cfg.withBandwidth(args.getDouble("bw", 8.0));
    if (args.has("prefetch")) {
        for (auto &core : cfg.cores)
            core.dataPrefetch = true;
    }
    return cfg;
}

int
cmdDesigns()
{
    std::printf("%-8s %6s %9s %9s  core mix\n", "name", "cores",
                "contexts", "SMT/core");
    auto show = [](const ChipConfig &cfg) {
        int b = 0, m = 0, s = 0;
        for (const auto &core : cfg.cores) {
            b += core.type == CoreType::kBig;
            m += core.type == CoreType::kMedium;
            s += core.type == CoreType::kSmall;
        }
        std::ostringstream mix;
        if (b)
            mix << b << " big ";
        if (m)
            mix << m << " medium ";
        if (s)
            mix << s << " small";
        std::printf("%-8s %6u %9u %9s  %s\n", cfg.name.c_str(),
                    cfg.numCores(), cfg.totalContexts(), "varies",
                    mix.str().c_str());
    };
    for (const auto &name : paperDesignNames())
        show(paperDesign(name));
    for (const auto &name : alternativeDesignNames())
        show(alternativeDesign(name));
    return 0;
}

int
cmdBenchmarks()
{
    std::printf("single-threaded (SPEC-like), for `run`/`sweep`/`isolated`:"
                "\n ");
    for (const auto &name : specBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n\nmulti-threaded (PARSEC-like), for `parsec`:\n ");
    for (const auto &name : parsecBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n");
    return 0;
}

int
cmdIsolated(int argc, char **argv)
{
    StudyEngine eng;
    std::printf("%-12s %8s %8s %8s %10s %10s\n", "bench", "big", "medium",
                "small", "big/med", "big/small");
    std::vector<std::string> benches;
    for (int i = 2; i < argc; ++i)
        benches.push_back(argv[i]);
    if (benches.empty())
        benches = specBenchmarkNames();
    // The isolated characterisation runs are independent experiments; fan
    // them out over SMTFLEX_JOBS workers and print in request order.
    struct Row
    {
        double big = 0.0, medium = 0.0, small = 0.0;
    };
    exec::ExperimentRunner runner;
    const auto rows = runner.mapItems(benches, [&](const std::string &bench) {
        Row row;
        row.big = eng.isolatedIpc(bench, CoreType::kBig);
        row.medium = eng.isolatedIpc(bench, CoreType::kMedium);
        row.small = eng.isolatedIpc(bench, CoreType::kSmall);
        return row;
    });
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-12s %8.3f %8.3f %8.3f %10.2f %10.2f\n",
                    benches[i].c_str(), r.big, r.medium, r.small,
                    r.big / r.medium, r.big / r.small);
    }
    return 0;
}

int
cmdRun(const Args &args)
{
    const ChipConfig cfg = designFromArgs(args);
    const std::string workload_arg = args.get("workload", "");
    if (workload_arg.empty())
        fatal("run: --workload bench1,bench2,... required");

    MultiProgramWorkload workload;
    workload.name = "cli";
    std::istringstream ss(workload_arg);
    std::string token;
    while (std::getline(ss, token, ','))
        workload.programs.push_back(&specProfile(token));

    const auto budget = args.getInt("budget", 12'000);
    const auto warmup = args.getInt("warmup", 3'000);
    const auto seed = args.getInt("seed", 42);
    const auto specs = workload.specs(budget, warmup);

    StudyEngine eng;
    const Placement placement = args.has("naive-sched")
        ? scheduleNaive(cfg, specs.size())
        : scheduleOffline(cfg, specs, eng.offline());

    ChipSim chip(cfg);
    const SimResult result = chip.runMultiProgram(specs, placement, seed);

    std::vector<double> isolated;
    for (const auto &spec : specs)
        isolated.push_back(eng.isolatedIpc(spec.profile->name,
                                           CoreType::kBig));

    std::printf("design %s, %zu programs, %llu cycles (%.2f us)\n\n",
                cfg.name.c_str(), specs.size(),
                static_cast<unsigned long long>(result.cycles),
                result.seconds() * 1e6);
    std::printf("%-12s %6s %6s %10s %10s\n", "program", "core", "slot",
                "IPC", "norm.prog");
    const auto np = normalisedProgress(result, isolated);
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        std::printf("%-12s %6u %6u %10.3f %10.3f\n",
                    result.threads[i].benchmark.c_str(),
                    placement.entries[i].core, placement.entries[i].slot,
                    result.threads[i].ipc(), np[i]);
    }
    std::printf("\nSTP %.3f | ANTT %.3f\n",
                systemThroughput(result, isolated),
                avgNormalisedTurnaround(result, isolated));
    const std::string report = args.get("report", "");
    if (report == "text") {
        std::ostringstream os;
        writeTextReport(os, result, eng.powerModel());
        std::printf("\n%s", os.str().c_str());
    } else if (report == "csv-threads") {
        std::ostringstream os;
        writeThreadCsv(os, result);
        std::printf("\n%s", os.str().c_str());
    } else if (report == "csv-cores") {
        std::ostringstream os;
        writeCoreCsv(os, result, eng.powerModel());
        std::printf("\n%s", os.str().c_str());
    } else if (!report.empty()) {
        fatal("unknown --report kind '", report, "'");
    }
    const PowerSummary power =
        summarisePower(result, eng.powerModel(), true);
    std::printf("power %.1f W (cores %.1f static + %.1f dynamic, uncore "
                "%.1f) | energy %.2e J\n",
                power.avgPowerW, power.coreStaticW, power.coreDynamicW,
                power.uncoreW, power.energyJ);
    return 0;
}

int
cmdSweep(const Args &args)
{
    const ChipConfig cfg = designFromArgs(args);
    StudyEngine eng;
    const bool het = args.has("het");
    const std::string bench = args.get("bench", "");
    std::printf("%-8s %10s %10s %10s\n", "threads", "STP", "ANTT",
                "power(W)");
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        if (n > cfg.totalContexts())
            break;
        RunMetrics m;
        if (!bench.empty())
            m = eng.homogeneousBenchmarkAt(cfg, bench, n);
        else if (het)
            m = eng.heterogeneousAt(cfg, n);
        else
            m = eng.homogeneousAt(cfg, n);
        std::printf("%-8u %10.3f %10.2f %10.1f\n", n, m.stp, m.antt,
                    m.powerGatedW);
    }
    return 0;
}

int
cmdParsec(const Args &args)
{
    const ChipConfig cfg = designFromArgs(args);
    const std::string app_name = args.get("app", "blackscholes");
    const auto threads =
        static_cast<std::uint32_t>(args.getInt("threads", 8));
    const auto seed = args.getInt("seed", 42);

    ParsecRunner runner(cfg, parsecProfile(app_name), threads, seed,
                        args.has("throttle"));
    const ParsecRunResult r = runner.run();
    if (!r.completed)
        fatal("run hit the cycle limit");
    std::printf("%s on %s with %u threads%s\n", app_name.c_str(),
                cfg.name.c_str(), threads,
                args.has("throttle") ? " (critical-section throttling)"
                                     : "");
    std::printf("ROI    %12llu cycles\n",
                static_cast<unsigned long long>(r.roiCycles()));
    std::printf("total  %12llu cycles\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("\nROI active-thread distribution:\n");
    for (std::size_t k = 0; k < r.roiActiveThreadFractions.size(); ++k) {
        if (r.roiActiveThreadFractions[k] >= 0.005)
            std::printf("  %2zu: %5.1f%%\n", k,
                        100.0 * r.roiActiveThreadFractions[k]);
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    const std::string bench = args.get("bench", "");
    const std::string out_path = args.get("out", "");
    if (bench.empty() || out_path.empty())
        fatal("trace: --bench and --out required");
    const auto count = args.getInt("count", 100'000);
    const auto seed = args.getInt("seed", 42);
    const auto tid = static_cast<std::uint32_t>(args.getInt("thread", 0));

    TraceGenerator gen(specProfile(bench), seed, tid,
                       AddressSpace::forThread(tid));
    std::ofstream out(out_path);
    if (!out)
        fatal("trace: cannot write ", out_path);
    writeTrace(out, gen, count);
    std::printf("wrote %llu ops of %s (seed %llu, thread %u) to %s\n",
                static_cast<unsigned long long>(count), bench.c_str(),
                static_cast<unsigned long long>(seed), tid,
                out_path.c_str());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtflex <command> [options]\n"
        "  designs                       list the multi-core designs\n"
        "  benchmarks                    list the workload models\n"
        "  isolated [bench...]           isolated IPC per core type\n"
        "  run    --design D --workload a,b,c [--no-smt] [--budget N]\n"
        "         [--warmup N] [--seed N] [--bw G] [--prefetch]\n"
        "         [--naive-sched] [--report text|csv-threads|csv-cores]\n"
        "  sweep  --design D [--bench b | --het] [--no-smt] [--bw G]\n"
        "  parsec --app A --design D --threads N [--throttle] [--no-smt]\n"
        "  trace  --bench b --out file [--count N] [--seed N]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "designs")
            return cmdDesigns();
        if (cmd == "benchmarks")
            return cmdBenchmarks();
        if (cmd == "isolated")
            return cmdIsolated(argc, argv);
        const Args args(argc, argv, 2);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "parsec")
            return cmdParsec(args);
        if (cmd == "trace")
            return cmdTrace(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "smtflex: %s\n", e.what());
        return 1;
    }
    return usage();
}
