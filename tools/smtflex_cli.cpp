/**
 * @file
 * The smtflex command-line front end: run simulations, sweeps and
 * characterisations without writing C++, or serve them over TCP.
 *
 *   smtflex designs
 *   smtflex benchmarks
 *   smtflex isolated <bench> [...] [--cache FILE]
 *   smtflex run    --design 4B --workload mcf,hmmer,tonto [--no-smt]
 *                  [--budget N] [--warmup N] [--seed N] [--bw GBps]
 *                  [--prefetch] [--naive-sched] [--cache FILE]
 *   smtflex sweep  --design 4B [--bench tonto | --het] [--no-smt]
 *   smtflex schedule --design 3B5s --benchmarks mcf,hmmer,lbm,sjeng
 *                  [--policy greedy|pairing|hysteresis|measured] [--figure]
 *   smtflex parsec --app ferret --design 20s --threads 16 [--throttle]
 *   smtflex serve  --port 7333 --jobs 8 [--queue N] [--cache FILE]
 *   smtflex coordinator --port 7333 --backend H1:P1 --backend H2:P2
 *   smtflex stats  --addr HOST:PORT [--metrics]
 *
 * The run/sweep/isolated commands render through the same
 * serve::commands core the network server uses, so `smtflex serve`
 * responses are byte-identical to this CLI's output.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/store.h"
#include "common/env.h"
#include "common/log.h"
#include "dist/coordinator.h"
#include "exec/thread_pool.h"
#include "serve/client.h"
#include "report/sim_report.h"
#include "serve/commands.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/chip_sim.h"
#include "sim/power_summary.h"
#include "study/design_space.h"
#include "study/online_study.h"
#include "study/study_engine.h"
#include "trace/spec_profiles.h"
#include "trace/trace_io.h"
#include "workload/parsec.h"
#include "workload/parsec_runner.h"

using namespace smtflex;

namespace {

/** Tiny flag parser: --key value and boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                fatal("unexpected argument '", key, "'");
            key = key.substr(2);
            std::string value;
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                value = argv[i + 1];
                ++i;
            }
            values_[key] = value;
            ordered_.emplace_back(std::move(key), std::move(value));
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    /** Every value of a repeatable flag, in command-line order
     * (`--backend a --backend b`). */
    std::vector<std::string> all(const std::string &key) const
    {
        std::vector<std::string> out;
        for (const auto &[k, v] : ordered_) {
            if (k == key)
                out.push_back(v);
        }
        return out;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    /** Strictly parsed integer flag: `--seed abc` is fatal, not 0. */
    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : parseU64(it->second, "--" + key);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : parseDouble(it->second, "--" + key);
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::pair<std::string, std::string>> ordered_;
};

/** Parse a HOST:PORT endpoint string, fatal() on malformed input. */
std::pair<std::string, std::uint16_t>
parseEndpoint(const std::string &addr, const char *what)
{
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
        fatal(what, " must be HOST:PORT, got '", addr, "'");
    return {addr.substr(0, colon),
            static_cast<std::uint16_t>(parseU64(
                addr.substr(colon + 1), std::string(what) + " port"))};
}

/** StudyOptions from the environment plus the --cache override. */
StudyOptions
studyOptionsFromArgs(const Args &args)
{
    StudyOptions opts = StudyOptions::fromEnv();
    if (args.has("cache"))
        opts.cachePath = args.get("cache");
    return opts;
}

ChipConfig
designFromArgs(const Args &args)
{
    return serve::buildDesign(args.get("design", "4B"), args.has("no-smt"),
                              args.has("bw"), args.getDouble("bw", 8.0),
                              args.has("prefetch"));
}

/**
 * With --addr HOST:PORT, execute the simulation op on a running serve
 * (or coordinator) endpoint instead of locally and print the served
 * text — which is byte-identical to the local rendering. Returns false
 * when --addr is absent so the caller runs the local path.
 */
bool
runRemotely(const Args &args, const serve::Request &request)
{
    if (!args.has("addr"))
        return false;
    const auto [host, port] = parseEndpoint(args.get("addr"), "--addr");
    serve::Client client;
    client.connect(host, port);
    const serve::Json reply =
        client.call(serve::Json::parse(request.canonicalKey()));
    if (!reply.at("ok").asBool())
        fatal("server error: ", reply.at("error").asString(), ": ",
              reply.at("message").asString());
    std::fputs(reply.at("output").asString().c_str(), stdout);
    return true;
}

int
cmdDesigns()
{
    std::printf("%-8s %6s %9s %9s  core mix\n", "name", "cores",
                "contexts", "SMT/core");
    auto show = [](const ChipConfig &cfg) {
        int b = 0, m = 0, s = 0;
        for (const auto &core : cfg.cores) {
            b += core.type == CoreType::kBig;
            m += core.type == CoreType::kMedium;
            s += core.type == CoreType::kSmall;
        }
        std::ostringstream mix;
        if (b)
            mix << b << " big ";
        if (m)
            mix << m << " medium ";
        if (s)
            mix << s << " small";
        std::printf("%-8s %6u %9u %9s  %s\n", cfg.name.c_str(),
                    cfg.numCores(), cfg.totalContexts(), "varies",
                    mix.str().c_str());
    };
    for (const auto &name : paperDesignNames())
        show(paperDesign(name));
    for (const auto &name : alternativeDesignNames())
        show(alternativeDesign(name));
    return 0;
}

int
cmdBenchmarks()
{
    std::printf("single-threaded (SPEC-like), for `run`/`sweep`/`isolated`:"
                "\n ");
    for (const auto &name : specBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n\nmulti-threaded (PARSEC-like), for `parsec`:\n ");
    for (const auto &name : parsecBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n");
    return 0;
}

int
cmdIsolated(int argc, char **argv)
{
    serve::IsolatedRequest req;
    int firstFlag = argc;
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0) {
            firstFlag = i;
            break;
        }
        req.benches.push_back(argv[i]);
    }
    const Args args(argc, argv, firstFlag);
    serve::Request wire;
    wire.op = serve::Op::kIsolated;
    wire.isolated = req;
    if (runRemotely(args, wire))
        return 0;
    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::isolatedText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdRun(const Args &args)
{
    serve::RunRequest req;
    req.design = args.get("design", "4B");
    const std::string workload_arg = args.get("workload", "");
    std::istringstream ss(workload_arg);
    std::string token;
    while (std::getline(ss, token, ','))
        req.workload.push_back(token);
    req.budget = args.getInt("budget", 12'000);
    req.warmup = args.getInt("warmup", 3'000);
    req.seed = args.getInt("seed", 42);
    req.noSmt = args.has("no-smt");
    req.prefetch = args.has("prefetch");
    req.naiveSched = args.has("naive-sched");
    req.hasBw = args.has("bw");
    req.bw = args.getDouble("bw", 8.0);
    req.report = args.get("report", "");

    serve::Request wire;
    wire.op = serve::Op::kRun;
    wire.run = req;
    if (runRemotely(args, wire))
        return 0;
    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::runText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdSweep(const Args &args)
{
    serve::SweepRequest req;
    req.design = args.get("design", "4B");
    req.bench = args.get("bench", "");
    req.het = args.has("het");
    req.noSmt = args.has("no-smt");
    req.hasBw = args.has("bw");
    req.bw = args.getDouble("bw", 8.0);

    serve::Request wire;
    wire.op = serve::Op::kSweep;
    wire.sweep = req;
    if (runRemotely(args, wire))
        return 0;
    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::sweepText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdSchedule(const Args &args)
{
    if (args.has("figure")) {
        // The DESIGN.md §14 figure: online policies vs the naive and
        // offline-oracle baselines over the reference mixes.
        StudyEngine eng(studyOptionsFromArgs(args));
        std::fputs(onlineStudyText(eng).c_str(), stdout);
        return 0;
    }

    serve::ScheduleRequest req;
    req.design = args.get("design", "4B");
    const std::string benchmarks_arg = args.get("benchmarks", "");
    std::istringstream ss(benchmarks_arg);
    std::string token;
    while (std::getline(ss, token, ','))
        req.benchmarks.push_back(token);
    req.policy = args.get("policy", "pairing");
    req.noSmt = args.has("no-smt");
    req.hasBw = args.has("bw");
    req.bw = args.getDouble("bw", 8.0);

    serve::Request wire;
    wire.op = serve::Op::kSchedule;
    wire.schedule = req;
    if (runRemotely(args, wire))
        return 0;
    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::scheduleText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdParsec(const Args &args)
{
    const ChipConfig cfg = designFromArgs(args);
    const std::string app_name = args.get("app", "blackscholes");
    const auto threads =
        static_cast<std::uint32_t>(args.getInt("threads", 8));
    const auto seed = args.getInt("seed", 42);

    ParsecRunner runner(cfg, parsecProfile(app_name), threads, seed,
                        args.has("throttle"));
    const ParsecRunResult r = runner.run();
    if (!r.completed)
        fatal("run hit the cycle limit");
    std::printf("%s on %s with %u threads%s\n", app_name.c_str(),
                cfg.name.c_str(), threads,
                args.has("throttle") ? " (critical-section throttling)"
                                     : "");
    std::printf("ROI    %12llu cycles\n",
                static_cast<unsigned long long>(r.roiCycles()));
    std::printf("total  %12llu cycles\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("\nROI active-thread distribution:\n");
    for (std::size_t k = 0; k < r.roiActiveThreadFractions.size(); ++k) {
        if (r.roiActiveThreadFractions[k] >= 0.005)
            std::printf("  %2zu: %5.1f%%\n", k,
                        100.0 * r.roiActiveThreadFractions[k]);
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    const std::string bench = args.get("bench", "");
    const std::string out_path = args.get("out", "");
    if (bench.empty() || out_path.empty())
        fatal("trace: --bench and --out required");
    const auto count = args.getInt("count", 100'000);
    const auto seed = args.getInt("seed", 42);
    const auto tid = static_cast<std::uint32_t>(args.getInt("thread", 0));

    TraceGenerator gen(specProfile(bench), seed, tid,
                       AddressSpace::forThread(tid));
    std::ofstream out(out_path);
    if (!out)
        fatal("trace: cannot write ", out_path);
    writeTrace(out, gen, count);
    std::printf("wrote %llu ops of %s (seed %llu, thread %u) to %s\n",
                static_cast<unsigned long long>(count), bench.c_str(),
                static_cast<unsigned long long>(seed), tid,
                out_path.c_str());
    return 0;
}

int
cmdServe(const Args &args)
{
    if (args.has("jobs"))
        exec::ThreadPool::configureGlobal(
            static_cast<unsigned>(args.getInt("jobs", 0)));

    serve::ServerOptions opts;
    opts.host = args.get("host", opts.host);
    opts.port = static_cast<std::uint16_t>(args.getInt("port", 7333));
    opts.queueCapacity = args.getInt("queue", 0);
    opts.batchMax = args.getInt("batch", 0);
    opts.maxFrame = args.getInt("max-frame", serve::kDefaultMaxFrame);
    opts.drainTimeoutMs = args.getInt("drain-timeout", opts.drainTimeoutMs);
    opts.study = StudyOptions::fromEnv();
    if (args.has("cache"))
        opts.study.cachePath = args.get("cache");

    serve::Server server(opts);
    server.bind();
    serve::Server::installSignalHandlers(&server);
    std::printf("smtflex serve: listening on %s:%u (jobs %u, cache %s)\n",
                opts.host.c_str(), server.port(),
                exec::ThreadPool::global().concurrency(),
                opts.study.cachePath.empty() ? "(in-memory)"
                                             : opts.study.cachePath.c_str());
    std::fflush(stdout);
    server.run();
    const auto &stats = server.stats();
    std::printf("smtflex serve: drained; %llu requests, %llu executed, "
                "%llu cache hits, %llu coalesced\n",
                static_cast<unsigned long long>(
                    stats.requestsReceived.load()),
                static_cast<unsigned long long>(stats.executed.load()),
                static_cast<unsigned long long>(stats.cacheHits.load()),
                static_cast<unsigned long long>(stats.coalesced.load()));
    return 0;
}

/**
 * The distributed sweep fabric's front end: a server speaking the same
 * wire protocol as `serve`, sharding sweeps across --backend fleet
 * members and federating their result caches. With no --backend it is
 * an ordinary single-node server.
 */
int
cmdCoordinator(const Args &args)
{
    if (args.has("jobs"))
        exec::ThreadPool::configureGlobal(
            static_cast<unsigned>(args.getInt("jobs", 0)));

    dist::CoordinatorOptions opts;
    opts.server.host = args.get("host", opts.server.host);
    opts.server.port = static_cast<std::uint16_t>(args.getInt("port", 7333));
    opts.server.queueCapacity = args.getInt("queue", 0);
    opts.server.batchMax = args.getInt("batch", 0);
    opts.server.maxFrame = args.getInt("max-frame", serve::kDefaultMaxFrame);
    opts.server.drainTimeoutMs =
        args.getInt("drain-timeout", opts.server.drainTimeoutMs);
    opts.server.study = StudyOptions::fromEnv();
    if (args.has("cache"))
        opts.server.study.cachePath = args.get("cache");

    for (const std::string &addr : args.all("backend")) {
        const auto [host, port] = parseEndpoint(addr, "--backend");
        opts.backends.push_back({host, port});
    }
    opts.chunkRows = args.getInt("chunk-rows", opts.chunkRows);
    opts.stealAfterMs = args.getInt("steal-after-ms", opts.stealAfterMs);
    opts.maxDispatch =
        static_cast<unsigned>(args.getInt("max-dispatch", opts.maxDispatch));
    opts.pool.quarantineAfter = static_cast<unsigned>(
        args.getInt("quarantine-after", opts.pool.quarantineAfter));
    opts.pool.probeTimeoutMs =
        args.getInt("probe-timeout-ms", opts.pool.probeTimeoutMs);
    opts.pool.opTimeoutMs =
        args.getInt("op-timeout-ms", opts.pool.opTimeoutMs);
    opts.pool.connectTimeoutMs =
        args.getInt("connect-timeout-ms", opts.pool.connectTimeoutMs);

    dist::Coordinator coordinator(opts);
    coordinator.bind();
    serve::Server::installSignalHandlers(&coordinator.server());
    std::printf("smtflex coordinator: listening on %s:%u, %zu backend(s), "
                "cache %s\n",
                opts.server.host.c_str(), coordinator.port(),
                opts.backends.size(),
                opts.server.study.cachePath.empty()
                    ? "(in-memory)"
                    : opts.server.study.cachePath.c_str());
    std::fflush(stdout);
    coordinator.run();
    const auto &stats = coordinator.stats();
    std::printf("smtflex coordinator: drained; %llu sweeps, %llu chunks "
                "dispatched (%llu stolen, %llu requeued), %llu forwarded "
                "(%llu failovers)\n",
                static_cast<unsigned long long>(stats.sweeps.load()),
                static_cast<unsigned long long>(
                    stats.chunksDispatched.load()),
                static_cast<unsigned long long>(stats.chunksStolen.load()),
                static_cast<unsigned long long>(
                    stats.chunksRequeued.load()),
                static_cast<unsigned long long>(stats.forwarded.load()),
                static_cast<unsigned long long>(
                    stats.forwardFailovers.load()));
    return 0;
}

/**
 * Query a running `smtflex serve` instance without hand-writing frames:
 * prints the stats op's counters as sorted `key value` lines, or with
 * --metrics the full registry in Prometheus exposition format.
 */
int
cmdStats(const Args &args)
{
    const std::string addr = args.get("addr", "");
    if (addr.empty())
        fatal("stats: --addr HOST:PORT required");
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
        fatal("stats: --addr must be HOST:PORT, got '", addr, "'");
    const std::string host = addr.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        parseU64(addr.substr(colon + 1), "--addr port"));

    serve::Client client;
    client.connect(host, port);
    serve::Json req = serve::Json::object();
    req.set("op",
            serve::Json::string(args.has("metrics") ? "metrics" : "stats"));
    const serve::Json reply = client.call(req);
    if (!reply.at("ok").asBool())
        fatal("server error: ", reply.at("error").asString());

    if (args.has("metrics")) {
        std::fputs(reply.at("exposition").asString().c_str(), stdout);
        return 0;
    }
    for (const auto &[key, value] : reply.at("stats").members())
        std::printf("%-20s %s\n", key.c_str(), value.dump().c_str());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtflex <command> [options]\n"
        "  designs                       list the multi-core designs\n"
        "  benchmarks                    list the workload models\n"
        "  isolated [bench...] [--cache FILE] [--addr HOST:PORT]\n"
        "                                isolated IPC per core type\n"
        "  run    --design D --workload a,b,c [--no-smt] [--budget N]\n"
        "         [--warmup N] [--seed N] [--bw G] [--prefetch]\n"
        "         [--naive-sched] [--report text|csv-threads|csv-cores]\n"
        "         [--cache FILE] [--addr HOST:PORT]\n"
        "         [--ckpt DIR[:INTERVAL]]  (crash-safe snapshots +\n"
        "                                warm resume; also SMTFLEX_CKPT)\n"
        "  sweep  --design D [--bench b | --het] [--no-smt] [--bw G]\n"
        "         [--addr HOST:PORT]    (--addr: execute on a running\n"
        "                                serve/coordinator endpoint)\n"
        "  schedule --design D --benchmarks a,b,c [--policy P] [--no-smt]\n"
        "         [--bw G] [--cache FILE] [--addr HOST:PORT]\n"
        "                                online thread-to-core placement\n"
        "                                (policies: greedy, pairing,\n"
        "                                hysteresis, measured); --figure\n"
        "                                renders the online-vs-oracle\n"
        "                                comparison\n"
        "  parsec --app A --design D --threads N [--throttle] [--no-smt]\n"
        "  trace  --bench b --out file [--count N] [--seed N]\n"
        "  serve  [--port N] [--host A] [--jobs N] [--queue N]\n"
        "         [--batch N] [--max-frame N] [--drain-timeout MS]\n"
        "         [--cache FILE] [--ckpt DIR[:INTERVAL]]\n"
        "  coordinator [--backend HOST:PORT ...] [serve options]\n"
        "         [--chunk-rows N] [--steal-after-ms N] [--max-dispatch N]\n"
        "         [--quarantine-after N] [--probe-timeout-ms N]\n"
        "         [--op-timeout-ms N] [--connect-timeout-ms N]\n"
        "                                serve the same protocol, sharding\n"
        "                                sweeps across a backend fleet\n"
        "  stats  --addr HOST:PORT [--metrics]\n"
        "                                query a running server's counters\n"
        "                                (--metrics: Prometheus exposition)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "designs")
            return cmdDesigns();
        if (cmd == "benchmarks")
            return cmdBenchmarks();
        if (cmd == "isolated")
            return cmdIsolated(argc, argv);
        const Args args(argc, argv, 2);
        // Process-wide snapshotting switch (equivalent to SMTFLEX_CKPT;
        // the flag wins when both are given).
        if (args.has("ckpt"))
            ckpt::configureProcessSpec(args.get("ckpt"));
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "schedule")
            return cmdSchedule(args);
        if (cmd == "parsec")
            return cmdParsec(args);
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "coordinator")
            return cmdCoordinator(args);
        if (cmd == "stats")
            return cmdStats(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "smtflex: %s\n", e.what());
        return 1;
    }
    return usage();
}
