/**
 * @file
 * The smtflex command-line front end: run simulations, sweeps and
 * characterisations without writing C++, or serve them over TCP.
 *
 *   smtflex designs
 *   smtflex benchmarks
 *   smtflex isolated <bench> [...] [--cache FILE]
 *   smtflex run    --design 4B --workload mcf,hmmer,tonto [--no-smt]
 *                  [--budget N] [--warmup N] [--seed N] [--bw GBps]
 *                  [--prefetch] [--naive-sched] [--cache FILE]
 *   smtflex sweep  --design 4B [--bench tonto | --het] [--no-smt]
 *   smtflex parsec --app ferret --design 20s --threads 16 [--throttle]
 *   smtflex serve  --port 7333 --jobs 8 [--queue N] [--cache FILE]
 *   smtflex stats  --addr HOST:PORT [--metrics]
 *
 * The run/sweep/isolated commands render through the same
 * serve::commands core the network server uses, so `smtflex serve`
 * responses are byte-identical to this CLI's output.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/log.h"
#include "exec/thread_pool.h"
#include "serve/client.h"
#include "report/sim_report.h"
#include "serve/commands.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/chip_sim.h"
#include "sim/power_summary.h"
#include "study/design_space.h"
#include "study/study_engine.h"
#include "trace/spec_profiles.h"
#include "trace/trace_io.h"
#include "workload/parsec.h"
#include "workload/parsec_runner.h"

using namespace smtflex;

namespace {

/** Tiny flag parser: --key value and boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                fatal("unexpected argument '", key, "'");
            key = key.substr(2);
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                values_[key] = argv[i + 1];
                ++i;
            } else {
                values_[key] = "";
            }
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    /** Strictly parsed integer flag: `--seed abc` is fatal, not 0. */
    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : parseU64(it->second, "--" + key);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : parseDouble(it->second, "--" + key);
    }

  private:
    std::map<std::string, std::string> values_;
};

/** StudyOptions from the environment plus the --cache override. */
StudyOptions
studyOptionsFromArgs(const Args &args)
{
    StudyOptions opts = StudyOptions::fromEnv();
    if (args.has("cache"))
        opts.cachePath = args.get("cache");
    return opts;
}

ChipConfig
designFromArgs(const Args &args)
{
    return serve::buildDesign(args.get("design", "4B"), args.has("no-smt"),
                              args.has("bw"), args.getDouble("bw", 8.0),
                              args.has("prefetch"));
}

int
cmdDesigns()
{
    std::printf("%-8s %6s %9s %9s  core mix\n", "name", "cores",
                "contexts", "SMT/core");
    auto show = [](const ChipConfig &cfg) {
        int b = 0, m = 0, s = 0;
        for (const auto &core : cfg.cores) {
            b += core.type == CoreType::kBig;
            m += core.type == CoreType::kMedium;
            s += core.type == CoreType::kSmall;
        }
        std::ostringstream mix;
        if (b)
            mix << b << " big ";
        if (m)
            mix << m << " medium ";
        if (s)
            mix << s << " small";
        std::printf("%-8s %6u %9u %9s  %s\n", cfg.name.c_str(),
                    cfg.numCores(), cfg.totalContexts(), "varies",
                    mix.str().c_str());
    };
    for (const auto &name : paperDesignNames())
        show(paperDesign(name));
    for (const auto &name : alternativeDesignNames())
        show(alternativeDesign(name));
    return 0;
}

int
cmdBenchmarks()
{
    std::printf("single-threaded (SPEC-like), for `run`/`sweep`/`isolated`:"
                "\n ");
    for (const auto &name : specBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n\nmulti-threaded (PARSEC-like), for `parsec`:\n ");
    for (const auto &name : parsecBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n");
    return 0;
}

int
cmdIsolated(int argc, char **argv)
{
    serve::IsolatedRequest req;
    int firstFlag = argc;
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0) {
            firstFlag = i;
            break;
        }
        req.benches.push_back(argv[i]);
    }
    const Args args(argc, argv, firstFlag);
    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::isolatedText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdRun(const Args &args)
{
    serve::RunRequest req;
    req.design = args.get("design", "4B");
    const std::string workload_arg = args.get("workload", "");
    std::istringstream ss(workload_arg);
    std::string token;
    while (std::getline(ss, token, ','))
        req.workload.push_back(token);
    req.budget = args.getInt("budget", 12'000);
    req.warmup = args.getInt("warmup", 3'000);
    req.seed = args.getInt("seed", 42);
    req.noSmt = args.has("no-smt");
    req.prefetch = args.has("prefetch");
    req.naiveSched = args.has("naive-sched");
    req.hasBw = args.has("bw");
    req.bw = args.getDouble("bw", 8.0);
    req.report = args.get("report", "");

    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::runText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdSweep(const Args &args)
{
    serve::SweepRequest req;
    req.design = args.get("design", "4B");
    req.bench = args.get("bench", "");
    req.het = args.has("het");
    req.noSmt = args.has("no-smt");
    req.hasBw = args.has("bw");
    req.bw = args.getDouble("bw", 8.0);

    StudyEngine eng(studyOptionsFromArgs(args));
    std::fputs(serve::sweepText(eng, req).c_str(), stdout);
    return 0;
}

int
cmdParsec(const Args &args)
{
    const ChipConfig cfg = designFromArgs(args);
    const std::string app_name = args.get("app", "blackscholes");
    const auto threads =
        static_cast<std::uint32_t>(args.getInt("threads", 8));
    const auto seed = args.getInt("seed", 42);

    ParsecRunner runner(cfg, parsecProfile(app_name), threads, seed,
                        args.has("throttle"));
    const ParsecRunResult r = runner.run();
    if (!r.completed)
        fatal("run hit the cycle limit");
    std::printf("%s on %s with %u threads%s\n", app_name.c_str(),
                cfg.name.c_str(), threads,
                args.has("throttle") ? " (critical-section throttling)"
                                     : "");
    std::printf("ROI    %12llu cycles\n",
                static_cast<unsigned long long>(r.roiCycles()));
    std::printf("total  %12llu cycles\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("\nROI active-thread distribution:\n");
    for (std::size_t k = 0; k < r.roiActiveThreadFractions.size(); ++k) {
        if (r.roiActiveThreadFractions[k] >= 0.005)
            std::printf("  %2zu: %5.1f%%\n", k,
                        100.0 * r.roiActiveThreadFractions[k]);
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    const std::string bench = args.get("bench", "");
    const std::string out_path = args.get("out", "");
    if (bench.empty() || out_path.empty())
        fatal("trace: --bench and --out required");
    const auto count = args.getInt("count", 100'000);
    const auto seed = args.getInt("seed", 42);
    const auto tid = static_cast<std::uint32_t>(args.getInt("thread", 0));

    TraceGenerator gen(specProfile(bench), seed, tid,
                       AddressSpace::forThread(tid));
    std::ofstream out(out_path);
    if (!out)
        fatal("trace: cannot write ", out_path);
    writeTrace(out, gen, count);
    std::printf("wrote %llu ops of %s (seed %llu, thread %u) to %s\n",
                static_cast<unsigned long long>(count), bench.c_str(),
                static_cast<unsigned long long>(seed), tid,
                out_path.c_str());
    return 0;
}

int
cmdServe(const Args &args)
{
    if (args.has("jobs"))
        exec::ThreadPool::configureGlobal(
            static_cast<unsigned>(args.getInt("jobs", 0)));

    serve::ServerOptions opts;
    opts.host = args.get("host", opts.host);
    opts.port = static_cast<std::uint16_t>(args.getInt("port", 7333));
    opts.queueCapacity = args.getInt("queue", 0);
    opts.batchMax = args.getInt("batch", 0);
    opts.maxFrame = args.getInt("max-frame", serve::kDefaultMaxFrame);
    opts.drainTimeoutMs = args.getInt("drain-timeout", opts.drainTimeoutMs);
    opts.study = StudyOptions::fromEnv();
    if (args.has("cache"))
        opts.study.cachePath = args.get("cache");

    serve::Server server(opts);
    server.bind();
    serve::Server::installSignalHandlers(&server);
    std::printf("smtflex serve: listening on %s:%u (jobs %u, cache %s)\n",
                opts.host.c_str(), server.port(),
                exec::ThreadPool::global().concurrency(),
                opts.study.cachePath.empty() ? "(in-memory)"
                                             : opts.study.cachePath.c_str());
    std::fflush(stdout);
    server.run();
    const auto &stats = server.stats();
    std::printf("smtflex serve: drained; %llu requests, %llu executed, "
                "%llu cache hits, %llu coalesced\n",
                static_cast<unsigned long long>(
                    stats.requestsReceived.load()),
                static_cast<unsigned long long>(stats.executed.load()),
                static_cast<unsigned long long>(stats.cacheHits.load()),
                static_cast<unsigned long long>(stats.coalesced.load()));
    return 0;
}

/**
 * Query a running `smtflex serve` instance without hand-writing frames:
 * prints the stats op's counters as sorted `key value` lines, or with
 * --metrics the full registry in Prometheus exposition format.
 */
int
cmdStats(const Args &args)
{
    const std::string addr = args.get("addr", "");
    if (addr.empty())
        fatal("stats: --addr HOST:PORT required");
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
        fatal("stats: --addr must be HOST:PORT, got '", addr, "'");
    const std::string host = addr.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        parseU64(addr.substr(colon + 1), "--addr port"));

    serve::Client client;
    client.connect(host, port);
    serve::Json req = serve::Json::object();
    req.set("op",
            serve::Json::string(args.has("metrics") ? "metrics" : "stats"));
    const serve::Json reply = client.call(req);
    if (!reply.at("ok").asBool())
        fatal("server error: ", reply.at("error").asString());

    if (args.has("metrics")) {
        std::fputs(reply.at("exposition").asString().c_str(), stdout);
        return 0;
    }
    for (const auto &[key, value] : reply.at("stats").members())
        std::printf("%-20s %s\n", key.c_str(), value.dump().c_str());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtflex <command> [options]\n"
        "  designs                       list the multi-core designs\n"
        "  benchmarks                    list the workload models\n"
        "  isolated [bench...] [--cache FILE]\n"
        "                                isolated IPC per core type\n"
        "  run    --design D --workload a,b,c [--no-smt] [--budget N]\n"
        "         [--warmup N] [--seed N] [--bw G] [--prefetch]\n"
        "         [--naive-sched] [--report text|csv-threads|csv-cores]\n"
        "         [--cache FILE]\n"
        "  sweep  --design D [--bench b | --het] [--no-smt] [--bw G]\n"
        "  parsec --app A --design D --threads N [--throttle] [--no-smt]\n"
        "  trace  --bench b --out file [--count N] [--seed N]\n"
        "  serve  [--port N] [--host A] [--jobs N] [--queue N]\n"
        "         [--batch N] [--max-frame N] [--drain-timeout MS]\n"
        "         [--cache FILE]\n"
        "  stats  --addr HOST:PORT [--metrics]\n"
        "                                query a running server's counters\n"
        "                                (--metrics: Prometheus exposition)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "designs")
            return cmdDesigns();
        if (cmd == "benchmarks")
            return cmdBenchmarks();
        if (cmd == "isolated")
            return cmdIsolated(argc, argv);
        const Args args(argc, argv, 2);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "parsec")
            return cmdParsec(args);
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "stats")
            return cmdStats(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "smtflex: %s\n", e.what());
        return 1;
    }
    return usage();
}
