#!/usr/bin/env sh
# Run the simulator micro-benchmark suite in Release and emit BENCH_sim.json
# (items/sec per benchmark) — the repo's performance trajectory record.
#
# Usage: tools/run_benchmarks.sh [build-dir] [output.json]
#   build-dir   defaults to build-bench (configured Release if needed)
#   output.json defaults to BENCH_sim.json in the current directory
#
# Filter with BENCH_FILTER (a google-benchmark regex), e.g.
#   BENCH_FILTER='Mcf20s' tools/run_benchmarks.sh
# BENCH_REPS (default 3) repetitions are run and the median recorded,
# which keeps the trajectory stable on noisy/shared machines.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}
out_json=${2:-BENCH_sim.json}
filter=${BENCH_FILTER:-.}
reps=${BENCH_REPS:-3}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" -j --target bench_micro_simulator

raw_json=$(mktemp)
trap 'rm -f "$raw_json"' EXIT
"$build_dir/bench/bench_micro_simulator" \
    --benchmark_filter="$filter" \
    --benchmark_min_time=1 \
    --benchmark_repetitions="$reps" \
    --benchmark_report_aggregates_only \
    --benchmark_format=json >"$raw_json"

python3 - "$raw_json" "$out_json" <<'EOF'
import json
import re
import sys

def canonical(name):
    # Drop run-option decorations (iterations:256, repeats:3, ...);
    # real benchmark arguments (BM_CacheAccess/32768) are kept.
    options = ("iterations", "repeats", "min_time", "min_warmup_time",
               "process_time", "real_time", "manual_time", "threads")
    parts = [p for p in name.split("/")
             if not re.match(rf"^({'|'.join(options)}):", p)]
    return "/".join(parts)

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

benchmarks = {}
for b in raw.get("benchmarks", []):
    # With repetitions, record the median aggregate (stable under load
    # spikes); otherwise the single run.
    if b.get("run_type") == "aggregate":
        if b.get("aggregate_name") != "median":
            continue
        name = canonical(b.get("run_name", b["name"]))
    else:
        name = canonical(b["name"])
    entry = {"items_per_second": b.get("items_per_second")}
    # Keep user counters (e.g. ff_cycles) alongside the headline rate.
    for key, value in b.items():
        if key in ("name", "run_name", "run_type", "aggregate_name",
                   "aggregate_unit", "repetitions",
                   "repetition_index", "threads", "iterations",
                   "real_time", "cpu_time", "time_unit",
                   "items_per_second", "family_index",
                   "per_family_instance_index"):
            continue
        if isinstance(value, (int, float)):
            entry[key] = value
    benchmarks[name] = entry

result = {
    "suite": "bench_micro_simulator",
    "context": {
        k: raw.get("context", {}).get(k)
        for k in ("host_name", "num_cpus", "mhz_per_cpu",
                  "library_build_type")
    },
    "benchmarks": benchmarks,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benchmarks)} benchmarks)")
EOF
