/**
 * @file
 * Load generator for `smtflex serve`: opens K concurrent connections,
 * replays a deterministic weighted request mix, and prints throughput,
 * latency percentiles and the server's cache-hit rate.
 *
 *   smtflex_loadgen --port 7333 --connections 8 --requests 100 \
 *                   --mix ping=2,run=4,sweep=1,isolated=1
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/log.h"
#include "serve/loadgen.h"

using namespace smtflex;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtflex_loadgen [options]\n"
        "  --host A          server address (default 127.0.0.1)\n"
        "  --port N          server port (default 7333)\n"
        "  --addr HOST:PORT  target endpoint; repeat to spread the\n"
        "                    connections round-robin over a fleet\n"
        "                    (overrides --host/--port)\n"
        "  --connections N   concurrent connections (default 8)\n"
        "  --requests N      requests per connection (default 50)\n"
        "  --seed N          request-sequence seed (default 1)\n"
        "  --mix SPEC        op=weight list over ping, stats, metrics,\n"
        "                    run, sweep, isolated, schedule and warmrun\n"
        "                    (runs sharing a workload prefix, exercising\n"
        "                    SMTFLEX_CKPT warm starts; default\n"
        "                    ping=2,run=4,sweep=1,isolated=1)\n"
        "  --distinct N      distinct simulation variants (default 6)\n"
        "  --budget N        instructions per run request (default 2000)\n"
        "  --warmup N        warmup instructions (default 500)\n"
        "  --deadline-ms N   deadline on simulation requests (default 0)\n"
        "  --ping-delay-ms N queue pings for N ms instead of inline\n"
        "  --stats-interval N  print a server stats line every N ms while\n"
        "                    the load runs (default 0 = off)\n"
        "  --chaos MODE      misbehave between requests: disconnect,\n"
        "                    partial-frame or garbage (default off)\n"
        "  --chaos-every N   one chaos act per ~N requests (default 3)\n"
        "  --retries N       reconnect-and-resend attempts per request\n"
        "                    (default 0 = fail fast; chaos implies 3)\n"
        "  --op-timeout-ms N bound one send/receive (default 0 = forever)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::map<std::string, std::string> flags;
    std::vector<std::string> addrs; // --addr accumulates, unlike the rest
    for (int i = 1; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            return usage();
        key = key.substr(2);
        if (key == "help")
            return usage();
        std::string value;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            value = argv[++i];
        if (key == "addr")
            addrs.push_back(value);
        else
            flags[key] = value;
    }

    try {
        serve::LoadGenOptions options;
        const auto str = [&](const char *key, const std::string &fallback) {
            const auto it = flags.find(key);
            return it == flags.end() ? fallback : it->second;
        };
        const auto num = [&](const char *key, std::uint64_t fallback) {
            const auto it = flags.find(key);
            return it == flags.end()
                ? fallback
                : parseU64(it->second, std::string("--") + key);
        };
        options.host = str("host", options.host);
        options.port = static_cast<std::uint16_t>(num("port", options.port));
        for (const std::string &addr : addrs) {
            const auto colon = addr.rfind(':');
            if (colon == std::string::npos || colon == 0)
                fatal("loadgen: --addr '", addr, "' is not HOST:PORT");
            options.targets.emplace_back(
                addr.substr(0, colon),
                static_cast<std::uint16_t>(
                    parseU64(addr.substr(colon + 1), "--addr port")));
        }
        options.connections =
            static_cast<unsigned>(num("connections", options.connections));
        options.requestsPerConnection = static_cast<unsigned>(
            num("requests", options.requestsPerConnection));
        options.seed = num("seed", options.seed);
        options.mix = str("mix", options.mix);
        options.distinct =
            static_cast<unsigned>(num("distinct", options.distinct));
        options.budget = num("budget", options.budget);
        options.warmup = num("warmup", options.warmup);
        options.deadlineMs = num("deadline-ms", options.deadlineMs);
        options.pingDelayMs = num("ping-delay-ms", options.pingDelayMs);
        options.statsIntervalMs =
            num("stats-interval", options.statsIntervalMs);
        options.chaos = str("chaos", options.chaos);
        options.chaosEvery =
            static_cast<unsigned>(num("chaos-every", options.chaosEvery));
        // Chaos without retries would abort the whole run on the first
        // self-inflicted wound; default to a forgiving client.
        options.retry.maxRetries = static_cast<unsigned>(
            num("retries", options.chaos.empty() ? 0 : 3));
        options.retry.opTimeoutMs =
            num("op-timeout-ms", options.retry.opTimeoutMs);
        if (options.connections == 0 || options.requestsPerConnection == 0)
            fatal("loadgen: --connections and --requests must be > 0");

        const serve::LoadGenReport report = serve::runLoadGen(options);
        std::fputs(report.summary().c_str(), stdout);
        return report.mismatches || report.otherErrors ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "smtflex_loadgen: %s\n", e.what());
        return 1;
    }
}
