/**
 * @file
 * Export the study's figure data as CSV files for external plotting
 * (matplotlib/gnuplot). Reads the same memoised cache the benches fill,
 * so after one full bench run this completes in seconds.
 *
 * Usage: export_figures [output_dir]
 *
 * Files written:
 *   fig03_homogeneous.csv / fig03_heterogeneous.csv  STP vs threads
 *   fig05_antt.csv                                   ANTT vs threads
 *   fig08_uniform_smt.csv                            distribution scores
 *   fig14_power.csv                                  power vs threads
 *   fig15_pareto.csv                                 power/energy points
 *   fig18_online_schedule.csv                        online vs oracle STP
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/log.h"
#include "metrics/metrics.h"
#include "online/online_policy.h"
#include "report/csv.h"
#include "study/design_space.h"
#include "study/online_study.h"
#include "study/study_engine.h"
#include "workload/distributions.h"

using namespace smtflex;

namespace {

std::ofstream
openOut(const std::string &dir, const std::string &name)
{
    const std::string path = dir + "/" + name;
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    std::printf("writing %s\n", path.c_str());
    return out;
}

void
exportSweep(StudyEngine &eng, const std::string &dir, bool het)
{
    auto out = openOut(dir, het ? "fig03_heterogeneous.csv"
                                : "fig03_homogeneous.csv");
    std::vector<std::string> cols = {"threads"};
    for (const auto &name : paperDesignNames())
        cols.push_back(name);
    CsvWriter csv(out, cols);
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        auto row = csv.beginRow();
        row.add(static_cast<std::uint64_t>(n));
        for (const auto &name : paperDesignNames()) {
            const RunMetrics m = het
                ? eng.heterogeneousAt(paperDesign(name), n)
                : eng.homogeneousAt(paperDesign(name), n);
            row.add(m.stp);
        }
        row.done();
    }
}

void
exportAntt(StudyEngine &eng, const std::string &dir)
{
    auto out = openOut(dir, "fig05_antt.csv");
    std::vector<std::string> cols = {"threads"};
    for (const auto &name : paperDesignNames())
        cols.push_back(name);
    CsvWriter csv(out, cols);
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        auto row = csv.beginRow();
        row.add(static_cast<std::uint64_t>(n));
        for (const auto &name : paperDesignNames())
            row.add(eng.homogeneousAt(paperDesign(name), n).antt);
        row.done();
    }
}

void
exportUniform(StudyEngine &eng, const std::string &dir)
{
    auto out = openOut(dir, "fig08_uniform_smt.csv");
    CsvWriter csv(out, {"design", "homogeneous_stp", "heterogeneous_stp"});
    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const auto &name : paperDesignNames()) {
        csv.beginRow()
            .add(name)
            .add(eng.distributionStp(paperDesign(name), dist, false))
            .add(eng.distributionStp(paperDesign(name), dist, true))
            .done();
    }
}

void
exportPower(StudyEngine &eng, const std::string &dir)
{
    auto out = openOut(dir, "fig14_power.csv");
    std::vector<std::string> cols = {"threads"};
    for (const auto &name : paperDesignNames())
        cols.push_back(name);
    CsvWriter csv(out, cols);
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        auto row = csv.beginRow();
        row.add(static_cast<std::uint64_t>(n));
        for (const auto &name : paperDesignNames())
            row.add(eng.homogeneousAt(paperDesign(name), n).powerGatedW);
        row.done();
    }
}

void
exportPareto(StudyEngine &eng, const std::string &dir)
{
    auto out = openOut(dir, "fig15_pareto.csv");
    CsvWriter csv(out, {"design", "workloads", "throughput", "power_w",
                        "energy_per_work", "edp"});
    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const bool het : {false, true}) {
        for (const auto &name : paperDesignNames()) {
            const double stp =
                eng.distributionStp(paperDesign(name), dist, het);
            const double power =
                eng.distributionPower(paperDesign(name), dist, het);
            csv.beginRow()
                .add(name)
                .add(std::string(het ? "heterogeneous" : "homogeneous"))
                .add(stp)
                .add(power)
                .add(power / stp)
                .add(energyDelayProduct(power, stp))
                .done();
        }
    }
}

void
exportOnline(StudyEngine &eng, const std::string &dir)
{
    auto out = openOut(dir, "fig18_online_schedule.csv");
    std::vector<std::string> cols = {"design", "mix", "threads",
                                     "naive_stp", "naive_antt",
                                     "oracle_stp", "oracle_antt"};
    for (const auto &policy : online::onlinePolicyNames()) {
        cols.push_back(policy + "_stp");
        cols.push_back(policy + "_antt");
    }
    CsvWriter csv(out, cols);
    for (const OnlineStudyRow &r : onlineStudy(eng)) {
        auto row = csv.beginRow();
        row.add(r.design)
            .add(r.workload)
            .add(static_cast<std::uint64_t>(r.threads))
            .add(r.naive.stp)
            .add(r.naive.antt)
            .add(r.oracle.stp)
            .add(r.oracle.antt);
        for (const ScheduleMetrics &m : r.policies)
            row.add(m.run.stp).add(m.run.antt);
        row.done();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : ".";
    try {
        StudyEngine eng;
        exportSweep(eng, dir, false);
        exportSweep(eng, dir, true);
        exportAntt(eng, dir);
        exportUniform(eng, dir);
        exportPower(eng, dir);
        exportPareto(eng, dir);
        exportOnline(eng, dir);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "export_figures: %s\n", e.what());
        return 1;
    }
    std::printf("done.\n");
    return 0;
}
