#!/usr/bin/env bash
# Kill-resume gate for smtflex::ckpt durable sweeps.
#
# Repeatedly SIGKILLs a coordinator mid-sweep (no drain, no flush — the
# crash case), restarts it on the same --ckpt directory, and requires:
#
#   1. the restarted coordinator replays the fsynced sweep journal
#      ("dist: replayed N journaled record(s)" with N > 0),
#   2. the resumed sweep is byte-identical to a single-node run,
#   3. after the resume, a fleet-less coordinator on the same journal
#      renders the sweep with ZERO recompute (no "computing ... locally"
#      warning) — i.e. every chunk the fleet ever delivered was durable
#      and nothing was redone.
#
# Usage: ckpt_kill_resume.sh <smtflex binary> [rounds]

set -euo pipefail

BIN=${1:?usage: ckpt_kill_resume.sh <smtflex binary> [rounds]}
ROUNDS=${2:-3}

export SMTFLEX_BUDGET=${SMTFLEX_BUDGET:-2000}
export SMTFLEX_WARMUP=${SMTFLEX_WARMUP:-500}

WORK=$(mktemp -d /tmp/smtflex_kill_resume.XXXXXX)
PIDS=()
cleanup() {
    local pid
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Three backends on loopback, one private cache each.
"$BIN" serve --port 7411 --cache "$WORK/b1_cache.txt" & PIDS+=($!)
"$BIN" serve --port 7412 --cache "$WORK/b2_cache.txt" & PIDS+=($!)
"$BIN" serve --port 7413 --cache "$WORK/b3_cache.txt" & PIDS+=($!)
sleep 1
BACKENDS=(--backend 127.0.0.1:7411 --backend 127.0.0.1:7412
          --backend 127.0.0.1:7413)

# The single-node reference (no fleet, no checkpointing).
SMTFLEX_CACHE="$WORK/solo_cache.txt" "$BIN" sweep > "$WORK/solo_sweep.txt"

for ROUND in $(seq 1 "$ROUNDS"); do
    echo "=== round $ROUND: SIGKILL mid-sweep, then resume ==="
    CKPT="$WORK/ckpt$ROUND"

    # Victim coordinator. A fresh result-cache path every launch: only
    # the journal may carry state across the kill.
    "$BIN" coordinator --port 7410 --cache "$WORK/victim${ROUND}.txt" \
        --ckpt "$CKPT" "${BACKENDS[@]}" \
        2> "$WORK/victim${ROUND}.log" &
    VICTIM=$!
    sleep 1

    # Fire the sweep, then SIGKILL the coordinator as soon as the first
    # chunk has been journaled — mid-sweep by construction.
    "$BIN" sweep --addr 127.0.0.1:7410 > "$WORK/killed_sweep.txt" \
        2>/dev/null & CLIENT=$!
    for _ in $(seq 1 200); do
        [ -s "$CKPT/sweep.journal" ] && break
        sleep 0.05
    done
    kill -9 "$VICTIM"
    wait "$VICTIM" 2>/dev/null || true
    wait "$CLIENT" 2>/dev/null || true
    [ -s "$CKPT/sweep.journal" ] ||
        { echo "FAIL: no journal survived the kill"; exit 1; }

    # Resume: new process, same journal, fresh cache. The sweep must
    # complete byte-identically to the single-node reference.
    "$BIN" coordinator --port 7410 --cache "$WORK/resumed${ROUND}.txt" \
        --ckpt "$CKPT" "${BACKENDS[@]}" \
        2> "$WORK/resumed${ROUND}.log" &
    RESUMED=$!
    sleep 1
    "$BIN" sweep --addr 127.0.0.1:7410 > "$WORK/resumed_sweep.txt"
    kill "$RESUMED"; wait "$RESUMED" 2>/dev/null || true

    grep -q "replayed .* journaled record" "$WORK/resumed${ROUND}.log" ||
        { echo "FAIL: resumed coordinator did not replay the journal";
          cat "$WORK/resumed${ROUND}.log"; exit 1; }
    diff -u "$WORK/solo_sweep.txt" "$WORK/resumed_sweep.txt"
    echo "round $ROUND: resumed sweep is byte-identical"

    # Zero-recompute proof: with the now-complete journal, a coordinator
    # with NO fleet must serve the sweep purely from replayed records —
    # any missing record would trigger the local-compute warning.
    "$BIN" coordinator --port 7410 --cache "$WORK/verify${ROUND}.txt" \
        --ckpt "$CKPT" 2> "$WORK/verify${ROUND}.log" &
    VERIFY=$!
    sleep 1
    "$BIN" sweep --addr 127.0.0.1:7410 > "$WORK/journal_only_sweep.txt"
    kill "$VERIFY"; wait "$VERIFY" 2>/dev/null || true

    diff -u "$WORK/solo_sweep.txt" "$WORK/journal_only_sweep.txt"
    if grep -q "computing .* locally" "$WORK/verify${ROUND}.log"; then
        echo "FAIL: journal-only render recomputed records"
        cat "$WORK/verify${ROUND}.log"
        exit 1
    fi
    echo "round $ROUND: journal alone serves the sweep, zero recompute"
done

echo "kill-resume gate passed ($ROUNDS rounds)"
