/**
 * @file
 * Tests for the McPAT-like power model: calibration anchors from the paper
 * (power-equivalence ratios, uncore power), monotonicity, frequency and
 * cache-size scaling.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "power/power_model.h"

namespace smtflex {
namespace {

TEST(PowerModelTest, FullLoadPowerEquivalenceRatios)
{
    // The paper's power budget: 1 big ~ 2 medium ~ 5 small. Our calibration
    // targets big/medium ~ 1.8 and big/small ~ 5 at full load.
    PowerModel model;
    const double big = model.coreFullLoadW(CoreParams::big());
    const double medium = model.coreFullLoadW(CoreParams::medium());
    const double small = model.coreFullLoadW(CoreParams::small());
    EXPECT_NEAR(big / medium, 1.8, 0.15);
    EXPECT_NEAR(big / small, 5.0, 0.5);
}

TEST(PowerModelTest, ChipTotalsNearPaperEnvelope)
{
    // 4B ~ 46 W, 8m ~ 50 W, 20s ~ 45 W at 24 threads (paper Section 3.1).
    // Full-load estimates bound these from above; check the ballpark.
    PowerModel model;
    const double chip_4b =
        4 * model.coreFullLoadW(CoreParams::big()) + model.uncoreStaticW();
    const double chip_8m =
        8 * model.coreFullLoadW(CoreParams::medium()) +
        model.uncoreStaticW();
    const double chip_20s =
        20 * model.coreFullLoadW(CoreParams::small()) +
        model.uncoreStaticW();
    EXPECT_NEAR(chip_4b, 46.0, 8.0);
    EXPECT_NEAR(chip_8m, 50.0, 8.0);
    EXPECT_NEAR(chip_20s, 45.0, 8.0);
}

TEST(PowerModelTest, StaticPowerOrdering)
{
    PowerModel model;
    EXPECT_GT(model.coreStaticW(CoreParams::big()),
              model.coreStaticW(CoreParams::medium()));
    EXPECT_GT(model.coreStaticW(CoreParams::medium()),
              model.coreStaticW(CoreParams::small()));
}

TEST(PowerModelTest, BiggerCachesMoreStaticPower)
{
    PowerModel model;
    EXPECT_GT(model.coreStaticW(CoreParams::small().withBigCaches()),
              model.coreStaticW(CoreParams::small()));
    EXPECT_GT(model.coreStaticW(CoreParams::medium().withBigCaches()),
              model.coreStaticW(CoreParams::medium()));
}

TEST(PowerModelTest, HigherFrequencyMorePower)
{
    PowerModel model;
    const CoreParams base = CoreParams::medium();
    const CoreParams fast = base.withFrequency(3.33);
    EXPECT_GT(model.coreStaticW(fast), model.coreStaticW(base));
    EXPECT_GT(model.coreFullLoadW(fast), model.coreFullLoadW(base));
    // Scaling is super-linear in f but far below cubic.
    const double ratio =
        model.coreFullLoadW(fast) / model.coreFullLoadW(base);
    EXPECT_GT(ratio, 1.25);
    EXPECT_LT(ratio, 1.6);
}

TEST(PowerModelTest, DynamicEnergyScalesWithActivity)
{
    PowerModel model;
    const CoreParams big = CoreParams::big();
    CoreStats low, high;
    low.dispatched[static_cast<int>(OpClass::kIntAlu)] = 1000;
    high.dispatched[static_cast<int>(OpClass::kIntAlu)] = 10000;
    EXPECT_NEAR(model.coreDynamicJ(big, high),
                10.0 * model.coreDynamicJ(big, low), 1e-12);
    CoreStats none;
    EXPECT_DOUBLE_EQ(model.coreDynamicJ(big, none), 0.0);
}

TEST(PowerModelTest, OpClassWeighting)
{
    PowerModel model;
    const CoreParams big = CoreParams::big();
    CoreStats alu, fp, mul;
    alu.dispatched[static_cast<int>(OpClass::kIntAlu)] = 1000;
    fp.dispatched[static_cast<int>(OpClass::kFpOp)] = 1000;
    mul.dispatched[static_cast<int>(OpClass::kIntMul)] = 1000;
    EXPECT_GT(model.coreDynamicJ(big, fp), model.coreDynamicJ(big, alu));
    EXPECT_GT(model.coreDynamicJ(big, mul), model.coreDynamicJ(big, fp));
}

TEST(PowerModelTest, FullLoadDynamicMatchesCalibration)
{
    // Dispatching width ops of average weight per cycle for one second must
    // reproduce dynMaxW.
    PowerModel model;
    const CoreParams big = CoreParams::big();
    const double cycles = big.freqGHz * 1e9; // one second
    CoreStats stats;
    // Average-weight ops: use the calibration's avgOpWeight by mixing.
    const double ops = big.width * cycles;
    // Compose dynamic energy directly from an all-average-weight count: we
    // approximate by scaling an IntAlu-only count by avgOpWeight.
    stats.dispatched[static_cast<int>(OpClass::kIntAlu)] =
        static_cast<std::uint64_t>(ops * model.params().avgOpWeight /
                                   model.params().opWeight[0]);
    const double watts = model.coreDynamicJ(big, stats) / 1.0;
    EXPECT_NEAR(watts, model.params().dynMaxW[0], 0.01);
}

TEST(PowerModelTest, UncoreEnergy)
{
    PowerModel model;
    EXPECT_DOUBLE_EQ(model.uncoreDynamicJ(0, 0), 0.0);
    const double j = model.uncoreDynamicJ(1000, 100);
    EXPECT_NEAR(j,
                1e-9 * (1000 * model.params().llcAccessNj +
                        100 * model.params().dramAccessNj),
                1e-15);
    EXPECT_NEAR(model.uncoreStaticW(), 7.0, 0.5);
}

TEST(PowerModelTest, BadCalibrationRejected)
{
    PowerParams params;
    params.nominalGHz = 0.0;
    EXPECT_THROW(PowerModel{params}, FatalError);
}

} // namespace
} // namespace smtflex
