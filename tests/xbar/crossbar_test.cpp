/**
 * @file
 * Tests for the crossbar / LLC banking model.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "xbar/crossbar.h"

namespace smtflex {
namespace {

TEST(CrossbarTest, UncontendedLatencyIsHop)
{
    Crossbar xbar({.hopLatency = 4, .numBanks = 8, .bankOccupancy = 4});
    EXPECT_EQ(xbar.request(100, 0x0), 104u);
    EXPECT_EQ(xbar.responseLatency(), 4u);
    EXPECT_DOUBLE_EQ(xbar.stats().avgQueueCycles(), 0.0);
}

TEST(CrossbarTest, SameBankSerialises)
{
    Crossbar xbar({.hopLatency = 4, .numBanks = 8, .bankOccupancy = 4});
    const Cycle first = xbar.request(0, 0x0);
    const Cycle second = xbar.request(0, 0x0 + 8 * kLineSize); // same bank 0
    EXPECT_EQ(first, 4u);
    EXPECT_EQ(second, 8u); // waits for bank occupancy
    EXPECT_GT(xbar.stats().totalQueueCycles, 0u);
}

TEST(CrossbarTest, DifferentBanksDoNotContend)
{
    Crossbar xbar({.hopLatency = 4, .numBanks = 8, .bankOccupancy = 4});
    const Cycle a = xbar.request(0, 0 * kLineSize);
    const Cycle b = xbar.request(0, 1 * kLineSize);
    const Cycle c = xbar.request(0, 2 * kLineSize);
    EXPECT_EQ(a, 4u);
    EXPECT_EQ(b, 4u);
    EXPECT_EQ(c, 4u);
    EXPECT_EQ(xbar.stats().totalQueueCycles, 0u);
}

TEST(CrossbarTest, BankFreesAfterOccupancy)
{
    Crossbar xbar({.hopLatency = 2, .numBanks = 4, .bankOccupancy = 10});
    xbar.request(0, 0);             // bank busy until cycle 12
    EXPECT_EQ(xbar.request(50, 0), 52u); // long after: no queueing
}

TEST(CrossbarTest, ZeroBanksRejected)
{
    EXPECT_THROW(Crossbar({.hopLatency = 4, .numBanks = 0,
                           .bankOccupancy = 4}),
                 FatalError);
}

TEST(CrossbarTest, StatsCount)
{
    Crossbar xbar({.hopLatency = 1, .numBanks = 2, .bankOccupancy = 1});
    for (int i = 0; i < 10; ++i)
        xbar.request(i, i * kLineSize);
    EXPECT_EQ(xbar.stats().requests, 10u);
    xbar.clearStats();
    EXPECT_EQ(xbar.stats().requests, 0u);
}

} // namespace
} // namespace smtflex
