/**
 * @file
 * Tests for the 2D-mesh NoC ablation model.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "xbar/mesh.h"

namespace smtflex {
namespace {

TEST(MeshTest, GridSideCoversCores)
{
    EXPECT_EQ(MeshNoc({}, 4).side(), 2u);
    EXPECT_EQ(MeshNoc({}, 9).side(), 3u);
    EXPECT_EQ(MeshNoc({}, 20).side(), 5u);
    EXPECT_EQ(MeshNoc({}, 1).side(), 1u);
}

TEST(MeshTest, HopsAreManhattanPlusOne)
{
    // 4 cores on a 2x2 grid, 8 banks round-robin over nodes 0..3.
    MeshNoc mesh({.hopLatency = 2, .bankOccupancy = 4, .numBanks = 8}, 4);
    // Bank of line 0 is bank 0 at node 0. Core 0 sits on node 0.
    EXPECT_EQ(mesh.hops(0, 0), 1u);
    // Core 3 is at (1,1): distance 2 -> 3 hops.
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    // Response latency is hops * hopLatency.
    EXPECT_EQ(mesh.responseLatency(0, 3), 6u);
}

TEST(MeshTest, LargerGridsPayMoreWorstCaseHops)
{
    MeshNoc small({}, 4);
    MeshNoc large({}, 20);
    std::uint32_t worst_small = 0, worst_large = 0;
    for (std::uint32_t c = 0; c < 4; ++c)
        worst_small = std::max(worst_small, small.hops(0, c));
    for (std::uint32_t c = 0; c < 20; ++c)
        worst_large = std::max(worst_large, large.hops(0, c));
    EXPECT_GT(worst_large, worst_small);
}

TEST(MeshTest, BankQueueingSerialises)
{
    MeshNoc mesh({.hopLatency = 2, .bankOccupancy = 10, .numBanks = 2}, 4);
    const Cycle a = mesh.request(0, 0, 0);      // bank 0
    const Cycle b = mesh.request(0, 2 * 64, 0); // also bank 0
    EXPECT_EQ(a, 2u); // 1 hop * 2 cycles
    EXPECT_EQ(b, 12u); // queued behind a's occupancy
    const Cycle c = mesh.request(0, 1 * 64, 0); // bank 1: independent
    EXPECT_EQ(c, 4u); // bank 1 at node 1: 2 hops
}

TEST(MeshTest, BadConfigRejected)
{
    EXPECT_THROW(MeshNoc({}, 0), FatalError);
    MeshConfig cfg;
    cfg.numBanks = 0;
    EXPECT_THROW(MeshNoc(cfg, 4), FatalError);
}

} // namespace
} // namespace smtflex
