/**
 * @file
 * Concurrency stress tests for the sharded ResultCache: parallel stores to
 * distinct keys, mixed store/lookup traffic on a shared hot set, and
 * persistence of everything written under contention. Run under
 * ThreadSanitizer via `ctest -L tsan`.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "study/result_cache.h"

namespace smtflex {
namespace {

class ResultCacheConcurrentTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "smtflex_cache_mt_test.txt";
        removeAll();
    }
    void TearDown() override { removeAll(); }

    void removeAll()
    {
        std::remove(path_.c_str());
        for (std::size_t i = 0; i < ResultCache::kNumShards; ++i) {
            std::ostringstream os;
            os << path_ << ".shard-" << (i < 10 ? "0" : "") << i;
            std::remove(os.str().c_str());
        }
    }

    static std::string keyFor(unsigned writer, unsigned i)
    {
        std::ostringstream os;
        os << "mt;w" << writer << ";k" << i;
        return os.str();
    }

    std::string path_;
};

TEST_F(ResultCacheConcurrentTest, ParallelStoresToDistinctKeysAllPersist)
{
    constexpr unsigned kWriters = 8;
    constexpr unsigned kPerWriter = 200;
    {
        ResultCache cache(path_);
        std::vector<std::thread> threads;
        for (unsigned w = 0; w < kWriters; ++w) {
            threads.emplace_back([&, w] {
                for (unsigned i = 0; i < kPerWriter; ++i)
                    cache.store(keyFor(w, i),
                                {static_cast<double>(w), static_cast<double>(i)});
            });
        }
        for (auto &t : threads)
            t.join();
        EXPECT_EQ(cache.size(), kWriters * kPerWriter);
    }
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), kWriters * kPerWriter);
    for (unsigned w = 0; w < kWriters; ++w) {
        for (unsigned i = 0; i < kPerWriter; ++i) {
            const auto hit = reloaded.lookup(keyFor(w, i));
            ASSERT_TRUE(hit.has_value()) << keyFor(w, i);
            EXPECT_DOUBLE_EQ(hit->at(0), static_cast<double>(w));
            EXPECT_DOUBLE_EQ(hit->at(1), static_cast<double>(i));
        }
    }
}

TEST_F(ResultCacheConcurrentTest, MixedReadersAndWritersOnHotKeys)
{
    // Writers repeatedly overwrite a small hot set while readers hammer
    // lookup(). Readers must only ever observe one of the two well-formed
    // value vectors, never a torn mix.
    constexpr unsigned kHotKeys = 4;
    ResultCache cache(""); // in-memory: pure synchronisation stress
    std::atomic<bool> stop{false};
    std::atomic<unsigned> torn{0};

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < 2; ++w) {
        writers.emplace_back([&, w] {
            for (unsigned round = 0; round < 500; ++round) {
                const double v = (w == 0) ? 1.0 : 2.0;
                for (unsigned k = 0; k < kHotKeys; ++k)
                    cache.store("hot" + std::to_string(k), {v, v, v});
            }
        });
    }
    std::vector<std::thread> readers;
    for (unsigned r = 0; r < 4; ++r) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                for (unsigned k = 0; k < kHotKeys; ++k) {
                    const auto hit = cache.lookup("hot" + std::to_string(k));
                    if (!hit.has_value())
                        continue;
                    if (hit->size() != 3 || hit->at(0) != hit->at(1) ||
                        hit->at(1) != hit->at(2))
                        torn.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(cache.size(), kHotKeys);
}

TEST_F(ResultCacheConcurrentTest, ConcurrentNastyKeysSurviveReload)
{
    // Escaping under contention: separator-laden keys from many threads
    // must not interleave into corrupt records.
    constexpr unsigned kWriters = 6;
    {
        ResultCache cache(path_);
        std::vector<std::thread> threads;
        for (unsigned w = 0; w < kWriters; ++w) {
            threads.emplace_back([&, w] {
                for (unsigned i = 0; i < 50; ++i) {
                    std::ostringstream key;
                    key << "n|" << w << "\nrow" << i << "\\";
                    cache.store(key.str(), {static_cast<double>(w * 1000 + i)});
                }
            });
        }
        for (auto &t : threads)
            t.join();
    }
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), kWriters * 50u);
    for (unsigned w = 0; w < kWriters; ++w) {
        std::ostringstream key;
        key << "n|" << w << "\nrow" << 49 << "\\";
        const auto hit = reloaded.lookup(key.str());
        ASSERT_TRUE(hit.has_value());
        EXPECT_DOUBLE_EQ(hit->at(0), static_cast<double>(w * 1000 + 49));
    }
}

} // namespace
} // namespace smtflex
