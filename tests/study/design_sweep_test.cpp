/**
 * @file
 * Parameterised integration sweep: every design of the paper's space must
 * run a small mixed workload end to end, with sane results, under both SMT
 * settings. Catches wiring bugs anywhere in the stack for any core mix.
 */

#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

namespace smtflex {
namespace {

class DesignSweep
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(DesignSweep, RunsMixedWorkloadSanely)
{
    const auto &[name, smt] = GetParam();
    const ChipConfig cfg = paperDesign(name).withSmt(smt);

    // A 6-program mix covering compute, branchy and memory-bound codes.
    MultiProgramWorkload workload;
    workload.name = "sweep";
    for (const char *b :
         {"hmmer", "gobmk", "libquantum", "tonto", "mcf", "soplex"})
        workload.programs.push_back(&specProfile(b));
    const auto specs = workload.specs(6'000, 2'000);

    const Placement placement =
        scheduleOffline(cfg, specs, OfflineProfile{});
    ChipSim chip(cfg);
    const SimResult result = chip.runMultiProgram(specs, placement, 7);

    EXPECT_FALSE(result.hitCycleLimit);
    ASSERT_EQ(result.threads.size(), 6u);
    for (const auto &t : result.threads) {
        EXPECT_TRUE(t.finished) << t.benchmark;
        EXPECT_GT(t.ipc(), 0.005) << t.benchmark;
        EXPECT_LT(t.ipc(), 4.5) << t.benchmark;
    }
    // Conservation: every core's retired ops are bounded by dispatched.
    for (const auto &core : result.cores)
        EXPECT_LE(core.stats.retired, core.stats.totalDispatched());
    // The chip did real work.
    EXPECT_GT(result.aggregateIpc(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignSweep,
    ::testing::Combine(::testing::ValuesIn(paperDesignNames()),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, bool>> &info) {
        return std::get<0>(info.param) +
            (std::get<1>(info.param) ? "_smt" : "_nosmt");
    });

/** The Section 8.1 variants also run end to end. */
class AltDesignSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AltDesignSweep, RunsWorkloadSanely)
{
    const ChipConfig cfg = alternativeDesign(GetParam());
    const auto workload = homogeneousWorkload("milc", 4);
    const auto specs = workload.specs(6'000, 2'000);
    const Placement placement =
        scheduleOffline(cfg, specs, OfflineProfile{});
    ChipSim chip(cfg);
    const SimResult result = chip.runMultiProgram(specs, placement, 7);
    for (const auto &t : result.threads) {
        EXPECT_TRUE(t.finished);
        EXPECT_GT(t.ipc(), 0.01);
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, AltDesignSweep,
                         ::testing::ValuesIn(alternativeDesignNames()));

} // namespace
} // namespace smtflex
