/**
 * @file
 * Integration tests of the StudyEngine: caching, offline analysis, and the
 * qualitative shape of the paper's findings at reduced instruction budgets.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/log.h"
#include "study/design_space.h"
#include "study/study_engine.h"
#include "trace/spec_profiles.h"
#include "workload/distributions.h"

namespace smtflex {
namespace {

StudyOptions
fastOptions()
{
    StudyOptions opts;
    opts.budget = 6'000;
    opts.warmup = 2'000;
    opts.seed = 12'345;
    opts.cachePath.clear(); // in-memory
    opts.hetMixes = 12;
    return opts;
}

TEST(StudyEngineTest, IsolatedIpcOrderingAcrossCoreTypes)
{
    StudyEngine eng(fastOptions());
    for (const char *bench : {"hmmer", "mcf", "tonto"}) {
        const double big = eng.isolatedIpc(bench, CoreType::kBig);
        const double medium = eng.isolatedIpc(bench, CoreType::kMedium);
        const double small = eng.isolatedIpc(bench, CoreType::kSmall);
        EXPECT_GT(big, medium) << bench;
        EXPECT_GT(medium, small) << bench;
    }
}

TEST(StudyEngineTest, OfflineTableComplete)
{
    StudyEngine eng(fastOptions());
    const OfflineProfile &offline = eng.offline();
    for (const auto &bench : specBenchmarkNames()) {
        EXPECT_TRUE(offline.has(bench, CoreType::kBig)) << bench;
        EXPECT_TRUE(offline.has(bench, CoreType::kMedium)) << bench;
        EXPECT_TRUE(offline.has(bench, CoreType::kSmall)) << bench;
        EXPECT_GT(offline.bigAffinity(bench), 1.0) << bench;
    }
}

TEST(StudyEngineTest, DiskCacheMakesRepeatRunsFree)
{
    const std::string path =
        ::testing::TempDir() + "smtflex_engine_cache.txt";
    std::remove(path.c_str());
    StudyOptions opts = fastOptions();
    opts.cachePath = path;

    double first_stp;
    {
        StudyEngine eng(opts);
        first_stp =
            eng.multiprogram(paperDesign("4B"), homogeneousWorkload("tonto", 2))
                .stp;
    }
    StudyEngine eng2(opts);
    const auto again =
        eng2.multiprogram(paperDesign("4B"), homogeneousWorkload("tonto", 2));
    EXPECT_DOUBLE_EQ(again.stp, first_stp);
    std::remove(path.c_str());
}

TEST(StudyEngineTest, SingleThreadStpIsOneOnBigCore)
{
    // STP normalises against isolated big-core execution, so one thread on
    // the 4B design scores exactly 1.
    StudyEngine eng(fastOptions());
    const auto m = eng.homogeneousAt(paperDesign("4B"), 1);
    EXPECT_NEAR(m.stp, 1.0, 0.05);
    EXPECT_NEAR(m.antt, 1.0, 0.05);
}

TEST(StudyEngineTest, Finding1LowThreadCounts4BWins)
{
    // Few active threads: all-big-cores beats every small-core design
    // (paper Finding #1 / Fig. 3).
    StudyEngine eng(fastOptions());
    const double stp_4b = eng.homogeneousAt(paperDesign("4B"), 2).stp;
    for (const char *other : {"20s", "8m", "1B15s", "1B6m"}) {
        EXPECT_GT(stp_4b, eng.homogeneousAt(paperDesign(other), 2).stp)
            << other;
    }
}

TEST(StudyEngineTest, Finding1HighThreadCountsManyCoresWinButClose)
{
    // 24 active threads: 20s outperforms 4B, but 4B stays within reach
    // (shared-resource contention flattens the gap).
    StudyEngine eng(fastOptions());
    const double stp_4b = eng.homogeneousAt(paperDesign("4B"), 24).stp;
    const double stp_20s = eng.homogeneousAt(paperDesign("20s"), 24).stp;
    EXPECT_GT(stp_20s, stp_4b);
    EXPECT_GT(stp_4b, 0.4 * stp_20s);
}

TEST(StudyEngineTest, SmtRaisesThroughputBeyondCoreCount)
{
    // 12 threads on 4B: with SMT they run concurrently; without SMT they
    // time-share 4 contexts. SMT must win clearly (Finding #3 mechanism).
    StudyEngine eng(fastOptions());
    const ChipConfig smt = paperDesign("4B");
    const ChipConfig no_smt = smt.withSmt(false);
    const double with_smt = eng.homogeneousAt(smt, 12).stp;
    const double without = eng.homogeneousAt(no_smt, 12).stp;
    EXPECT_GT(with_smt, 1.2 * without);
}

TEST(StudyEngineTest, AnttGrowsWithThreadCount)
{
    StudyEngine eng(fastOptions());
    const auto at2 = eng.homogeneousAt(paperDesign("4B"), 2);
    const auto at8 = eng.homogeneousAt(paperDesign("4B"), 8);
    EXPECT_GT(at8.antt, at2.antt);
}

TEST(StudyEngineTest, PowerGatingSavesAtLowCounts)
{
    StudyEngine eng(fastOptions());
    const auto m = eng.homogeneousAt(paperDesign("20s"), 2);
    EXPECT_LT(m.powerGatedW, m.powerUngatedW - 2.0);
    const auto full = eng.homogeneousAt(paperDesign("20s"), 24);
    EXPECT_GT(full.powerGatedW, m.powerGatedW);
}

TEST(StudyEngineTest, DistributionStpIsWeightedHarmonicMean)
{
    StudyEngine eng(fastOptions());
    const ChipConfig cfg = paperDesign("4B");
    const double at1 = eng.homogeneousAt(cfg, 1).stp;
    const double at2 = eng.homogeneousAt(cfg, 2).stp;
    const DiscreteDistribution dist({1.0, 1.0});
    const double agg = eng.distributionStp(cfg, dist, false);
    const double expected = 2.0 / (1.0 / at1 + 1.0 / at2);
    EXPECT_NEAR(agg, expected, 1e-9);
    EXPECT_GE(agg, std::min(at1, at2));
    EXPECT_LE(agg, std::max(at1, at2));
}

TEST(StudyEngineTest, HeterogeneousAtUsesBalancedMixes)
{
    StudyEngine eng(fastOptions());
    const auto m = eng.heterogeneousAt(paperDesign("4B"), 3);
    EXPECT_GT(m.stp, 0.0);
    EXPECT_GE(m.antt, 1.0);
}

TEST(StudyEngineTest, ParsecRunCachedAndDeterministic)
{
    StudyEngine eng(fastOptions());
    const auto a = eng.parsec(paperDesign("4B"), "blackscholes", 4);
    const auto b = eng.parsec(paperDesign("4B"), "blackscholes", 4);
    EXPECT_TRUE(a.completed);
    EXPECT_DOUBLE_EQ(a.roiCycles, b.roiCycles);
    EXPECT_GT(a.totalCycles, a.roiCycles);
    EXPECT_GT(a.powerGatedW, 0.0);
}

TEST(StudyEngineTest, ParsecThreadCandidates)
{
    StudyEngine eng(fastOptions());
    // Without SMT: exactly the core count.
    const auto no_smt =
        eng.parsecThreadCandidates(paperDesign("8m").withSmt(false));
    ASSERT_EQ(no_smt.size(), 1u);
    EXPECT_EQ(no_smt[0], 8u);
    // With SMT on 4B: multiples of 4 up to 24, plus the core count.
    const auto smt = eng.parsecThreadCandidates(paperDesign("4B"));
    EXPECT_EQ(smt.front(), 4u);
    EXPECT_NE(std::find(smt.begin(), smt.end(), 24u), smt.end());
}

TEST(StudyEngineTest, ConfiguredAppliesBandwidth)
{
    StudyOptions opts = fastOptions();
    opts.bandwidthGBps = 16.0;
    StudyEngine eng(opts);
    EXPECT_DOUBLE_EQ(eng.configured(paperDesign("4B")).dram.busBandwidthGBps,
                     16.0);
}

TEST(StudyOptionsTest, EnvOverrides)
{
    setenv("SMTFLEX_BUDGET", "1234", 1);
    setenv("SMTFLEX_WARMUP", "77", 1);
    setenv("SMTFLEX_MIXES", "6", 1);
    setenv("SMTFLEX_SEED", "9", 1);
    setenv("SMTFLEX_CACHE", "/tmp/somewhere.txt", 1);
    const StudyOptions opts = StudyOptions::fromEnv();
    EXPECT_EQ(opts.budget, 1234u);
    EXPECT_EQ(opts.warmup, 77u);
    EXPECT_EQ(opts.hetMixes, 6u);
    EXPECT_EQ(opts.seed, 9u);
    EXPECT_EQ(opts.cachePath, "/tmp/somewhere.txt");
    unsetenv("SMTFLEX_BUDGET");
    unsetenv("SMTFLEX_WARMUP");
    unsetenv("SMTFLEX_MIXES");
    unsetenv("SMTFLEX_SEED");
    unsetenv("SMTFLEX_CACHE");
}

} // namespace
} // namespace smtflex
