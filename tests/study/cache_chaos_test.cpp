/**
 * @file
 * Chaos tests of the result cache and the self-healing sweep machinery:
 * exhaustive torn-write recovery (truncation at every byte offset), the
 * io.* injection seams, and a mini sweep that must produce byte-identical
 * results with and without injected faults.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/log.h"
#include "exec/experiment_runner.h"
#include "study/design_space.h"
#include "study/result_cache.h"
#include "study/study_engine.h"

namespace smtflex {
namespace {

class CacheChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        fault::reset();
        path_ = ::testing::TempDir() + "smtflex_cache_chaos.txt";
        removeAll();
    }
    void TearDown() override
    {
        fault::reset();
        removeAll();
    }

    void removeAll()
    {
        std::remove(path_.c_str());
        for (std::size_t i = 0; i < ResultCache::kNumShards; ++i)
            std::remove(shardFile(path_, i).c_str());
    }

    static std::string shardFile(const std::string &path, std::size_t i)
    {
        std::ostringstream os;
        os << path << ".shard-" << (i < 10 ? "0" : "") << i;
        return os.str();
    }

    std::string path_;
};

// Satellite: a crash can tear the final write at ANY byte. Truncate a
// valid cache file at every offset and require that loading (a) never
// crashes, (b) never yields an entry whose values differ from what was
// stored, and (c) counts exactly the cut line as skipped.
TEST_F(CacheChaosTest, TruncationAtEveryByteOffsetIsSafe)
{
    const std::vector<std::pair<std::string, std::vector<double>>> stored = {
        {"iso;mcf;B", {0.45, 1.25e9, 3.0}},
        {"hom:4B:smt", {2.875, -0.5}},
        {"het:3B5s", {17.0}},
        {"empty", {}},
    };
    std::string content = std::string(ResultCache::kFormatHeader) + '\n';
    for (const auto &[key, values] : stored)
        content += ResultCache::formatRecord(key, values);

    // Line spans: [start, newline-offset) is the content getline yields.
    std::vector<std::pair<std::size_t, std::size_t>> lines;
    std::size_t start = 0;
    for (std::size_t i = 0; i < content.size(); ++i) {
        if (content[i] == '\n') {
            lines.emplace_back(start, i);
            start = i + 1;
        }
    }

    const std::string victim = path_ + ".truncated";
    for (std::size_t cut = 0; cut <= content.size(); ++cut) {
        // The legacy single-file slot loads through the same parser as
        // the shard segments; one file keeps the loop cheap.
        {
            std::ofstream out(victim, std::ios::trunc | std::ios::binary);
            out.write(content.data(), static_cast<std::streamsize>(cut));
        }
        // A line is intact once its content (the newline is optional at
        // EOF) survived the cut; a nonempty partial tail must be skipped
        // and counted — line 0 is the header, the rest are records.
        std::size_t expect_entries = 0, expect_skipped = 0;
        for (std::size_t li = 0; li < lines.size(); ++li) {
            const auto [s, nl] = lines[li];
            if (s >= cut)
                break;
            if (cut >= nl)
                expect_entries += li > 0 ? 1 : 0;
            else
                ++expect_skipped;
        }

        ResultCache cache(victim);
        // (a) we got here: no crash. (b) every surviving entry is exact.
        std::size_t intact = 0;
        for (const auto &[key, values] : stored) {
            const auto hit = cache.lookup(key);
            if (!hit.has_value())
                continue;
            ++intact;
            EXPECT_EQ(*hit, values) << "cut at " << cut << ", key " << key;
        }
        EXPECT_EQ(cache.size(), intact) << "cut at " << cut;
        // (c) exactly the whole lines load and exactly the cut one is
        // counted.
        EXPECT_EQ(cache.size(), expect_entries) << "cut at " << cut;
        EXPECT_EQ(cache.corruptLinesSkipped(), expect_skipped)
            << "cut at " << cut;
    }
    std::remove(victim.c_str());
}

TEST_F(CacheChaosTest, InjectedShortWriteHealsWithoutLosingRecords)
{
    // The first append is torn 4 bytes in; the cache must terminate the
    // torn prefix and rewrite, so a reload sees every record and exactly
    // one skipped garbage line.
    fault::configure("io.write:limit=1;param=4");
    {
        ResultCache cache(path_);
        cache.store("first", {1.0, 2.0});
        cache.store("second", {3.0});
    }
    fault::reset();
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), 2u);
    ASSERT_NE(reloaded.find("first"), nullptr);
    EXPECT_EQ(*reloaded.find("first"), (std::vector<double>{1.0, 2.0}));
    ASSERT_NE(reloaded.find("second"), nullptr);
    EXPECT_EQ(reloaded.corruptLinesSkipped(), 1u);
}

TEST_F(CacheChaosTest, InjectedLoadFailureTreatsSegmentsAsMissing)
{
    {
        ResultCache cache(path_);
        cache.store("k", {1.0});
    }
    fault::configure("io.load");
    {
        ResultCache blind(path_);
        EXPECT_EQ(blind.size(), 0u); // unreadable, not fatal
    }
    fault::reset();
    ResultCache healthy(path_);
    EXPECT_EQ(healthy.size(), 1u); // the data was never touched
}

TEST_F(CacheChaosTest, InjectedFsyncFailureFailsCheckpointKeepsData)
{
    ResultCache cache(path_);
    cache.store("a", {1.0});
    cache.store("b", {2.0});
    fault::configure("io.fsync");
    EXPECT_FALSE(cache.checkpoint()); // not durable -> reported
    fault::reset();
    // The old (appended) segments were left in place: nothing lost.
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.corruptLinesSkipped(), 0u);
}

// The headline guarantee: a sweep that stores through the cache while
// writes tear and experiments throw produces byte-identical results and
// an equally clean cache, compared to an undisturbed run.
TEST_F(CacheChaosTest, ChaoticSweepIsByteIdenticalToFaultFree)
{
    const std::size_t n = 32;
    const auto experiment = [](std::size_t i) {
        // Deterministic stand-in for a simulation: any real sweep fn is
        // required to be a pure function of its inputs.
        return std::vector<double>{static_cast<double>(i) * 0.125,
                                   1.0 / (1.0 + static_cast<double>(i))};
    };
    const auto runSweep = [&](const std::string &cache_path) {
        ResultCache cache(cache_path);
        exec::ExperimentRunner runner;
        const auto out = runner.mapRecovering(n, [&](std::size_t i) {
            const auto values = experiment(i);
            std::ostringstream key;
            key << "exp-" << i;
            cache.store(key.str(), values);
            return values;
        });
        EXPECT_TRUE(out.allOk());
        // Repair any append the injected faults defeated: the checkpoint
        // snapshots from memory, which injection never corrupts.
        EXPECT_TRUE(cache.checkpoint());
        return out.results;
    };

    const std::string clean_path = path_;
    const std::string chaos_path = path_ + ".chaos";
    const auto clean = runSweep(clean_path);

    // limit=2 on exec.throw: at most 2 injected failures, below the
    // 3-attempt default, so quarantine is impossible and recovery must
    // reproduce the fault-free values exactly.
    fault::configure("io.write:p=0.5;seed=7,exec.throw:limit=2");
    const auto chaotic = runSweep(chaos_path);
    fault::reset();

    EXPECT_EQ(chaotic, clean); // zero tolerance: bit-equal doubles

    // Both caches reload to identical, uncorrupted contents.
    ResultCache a(clean_path), b(chaos_path);
    EXPECT_EQ(a.size(), n);
    EXPECT_EQ(b.size(), n);
    EXPECT_EQ(b.corruptLinesSkipped(), 0u); // checkpoint left no scars
    for (std::size_t i = 0; i < n; ++i) {
        std::ostringstream key;
        key << "exp-" << i;
        const auto va = a.lookup(key.str());
        const auto vb = b.lookup(key.str());
        ASSERT_TRUE(va.has_value());
        ASSERT_TRUE(vb.has_value());
        EXPECT_EQ(*va, *vb) << key.str();
    }

    for (std::size_t i = 0; i < ResultCache::kNumShards; ++i)
        std::remove(shardFile(chaos_path, i).c_str());
    std::remove(chaos_path.c_str());
}

// A real StudyEngine sweep — the paper's homogeneous design point — under
// injected experiment failures: the self-healing map retries and the
// aggregated metrics are bit-equal to the undisturbed sweep's.
TEST_F(CacheChaosTest, RealSweepRecoversToIdenticalMetrics)
{
    StudyOptions opts;
    opts.budget = 2'000;
    opts.warmup = 500;
    opts.seed = 12'345;
    opts.cachePath.clear();

    const ChipConfig design = paperDesign("4B");
    StudyEngine clean_engine(opts);
    const RunMetrics clean = clean_engine.homogeneousAt(design, 2);

    // At most 2 injected failures against 3 attempts per experiment:
    // recovery always succeeds, so the output must not change at all.
    StudyEngine chaotic_engine(opts);
    chaotic_engine.offline(); // prebuild outside the injection window
    fault::configure("exec.throw:limit=2");
    const RunMetrics chaotic = chaotic_engine.homogeneousAt(design, 2);
    const std::uint64_t injected = fault::fires(fault::Site::kExecThrow);
    fault::reset();

    EXPECT_EQ(injected, 2u);
    EXPECT_EQ(chaotic.stp, clean.stp);
    EXPECT_EQ(chaotic.antt, clean.antt);
    EXPECT_EQ(chaotic.powerGatedW, clean.powerGatedW);
    EXPECT_EQ(chaotic.powerUngatedW, clean.powerUngatedW);
    EXPECT_EQ(chaotic.cycles, clean.cycles);
}

} // namespace
} // namespace smtflex
