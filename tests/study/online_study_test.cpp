/**
 * @file
 * Acceptance test of the online-scheduling figure (DESIGN.md §14): on
 * every (design, mix) row the best online policy must match or beat the
 * naive baseline on both STP and ANTT, and on a majority of rows it must
 * land within 5% of the offline-oracle STP. The figure is driven from a
 * private copy of the committed seed cache, and the test proves the
 * committed records cover it completely — no row triggers a simulation
 * or a profiler sample.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "study/online_study.h"
#include "study/study_engine.h"

namespace smtflex {
namespace {

#ifdef SMTFLEX_SOURCE_DIR

/** Copy the committed seed cache into the test's temp dir so store()
 * can never touch the source tree. */
std::string
privateCacheCopy()
{
    const std::string src =
        std::string(SMTFLEX_SOURCE_DIR) + "/smtflex_cache.txt";
    const std::string dst =
        ::testing::TempDir() + "smtflex_online_study_cache.txt";
    std::ifstream in(src, std::ios::binary);
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    EXPECT_TRUE(in.good() || in.eof()) << src;
    EXPECT_TRUE(out.good()) << dst;
    return dst;
}

TEST(OnlineStudyTest, FigureReproducesFromSeedCacheAndBeatsNaive)
{
    StudyOptions options; // the committed cache's identity: defaults
    options.cachePath = privateCacheCopy();
    StudyEngine engine(options);
    const std::size_t seeded = engine.resultCache().size();
    ASSERT_GT(seeded, std::size_t{0});

    const std::vector<OnlineStudyRow> rows = onlineStudy(engine);
    ASSERT_EQ(rows.size(),
              onlineStudyDesigns().size() *
                  onlineStudyWorkloads(options).size());

    std::size_t nearOracle = 0;
    for (const OnlineStudyRow &row : rows) {
        const std::string label = row.design + " " + row.workload;
        ASSERT_FALSE(row.policies.empty()) << label;
        double bestStp = 0.0;
        double bestAntt = 0.0;
        for (const ScheduleMetrics &policy : row.policies) {
            bestStp = std::max(bestStp, policy.run.stp);
            bestAntt = bestAntt == 0.0
                ? policy.run.antt
                : std::min(bestAntt, policy.run.antt);
        }
        // Counter-driven placement must never lose to ignoring the
        // counters entirely.
        EXPECT_GE(bestStp, row.naive.stp) << label;
        EXPECT_LE(bestAntt, row.naive.antt) << label;
        if (bestStp >= 0.95 * row.oracle.stp)
            ++nearOracle;
    }
    // Within 5% of the offline oracle's STP on a majority of the rows.
    EXPECT_GT(nearOracle * 2, rows.size());

    // Every record the figure needs was in the committed seed cache:
    // nothing was stored, sampled or simulated afresh.
    EXPECT_EQ(engine.resultCache().size(), seeded);
    EXPECT_EQ(engine.schedStats().samplesRun.load(), 0u);
}

TEST(OnlineStudyTest, FigureTextIsDeterministic)
{
    StudyOptions options;
    options.cachePath = privateCacheCopy();
    StudyEngine first(options);
    StudyEngine second(options);
    const std::string text = onlineStudyText(first);
    EXPECT_EQ(onlineStudyText(second), text);
    EXPECT_NE(text.find("Online scheduling vs offline oracle"),
              std::string::npos);
    EXPECT_NE(text.find("pairing"), std::string::npos);
}

#endif // SMTFLEX_SOURCE_DIR

} // namespace
} // namespace smtflex
