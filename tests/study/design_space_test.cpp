/**
 * @file
 * Tests for the nine power-equivalent designs (paper Fig. 2) and the
 * Section 8.1 variants.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "power/power_model.h"
#include "study/design_space.h"

namespace smtflex {
namespace {

TEST(DesignSpaceTest, NineDesigns)
{
    EXPECT_EQ(paperDesignNames().size(), 9u);
    EXPECT_EQ(paperDesigns().size(), 9u);
}

TEST(DesignSpaceTest, CoreMixesMatchFigure2)
{
    struct Expect
    {
        const char *name;
        int big, medium, small;
    };
    const Expect expected[] = {
        {"4B", 4, 0, 0},    {"8m", 0, 8, 0},    {"20s", 0, 0, 20},
        {"3B2m", 3, 2, 0},  {"3B5s", 3, 0, 5},  {"2B4m", 2, 4, 0},
        {"2B10s", 2, 0, 10}, {"1B6m", 1, 6, 0}, {"1B15s", 1, 0, 15},
    };
    for (const auto &e : expected) {
        const ChipConfig cfg = paperDesign(e.name);
        int big = 0, medium = 0, small = 0;
        for (const auto &core : cfg.cores) {
            big += core.type == CoreType::kBig;
            medium += core.type == CoreType::kMedium;
            small += core.type == CoreType::kSmall;
        }
        EXPECT_EQ(big, e.big) << e.name;
        EXPECT_EQ(medium, e.medium) << e.name;
        EXPECT_EQ(small, e.small) << e.name;
    }
}

TEST(DesignSpaceTest, AllDesignsSupport24Threads)
{
    // With SMT every configuration runs at least 24 concurrent threads
    // (paper Section 3.1).
    for (const auto &name : paperDesignNames())
        EXPECT_GE(paperDesign(name).totalContexts(), 24u) << name;
}

TEST(DesignSpaceTest, PowerBudgetsApproximatelyEqual)
{
    // Full-load chip power across the nine designs stays within a modest
    // band (the paper reports 46-50 W).
    PowerModel model;
    double lo = 1e9, hi = 0.0;
    for (const auto &cfg : paperDesigns()) {
        double total = model.uncoreStaticW();
        for (const auto &core : cfg.cores)
            total += model.coreFullLoadW(core);
        lo = std::min(lo, total);
        hi = std::max(hi, total);
    }
    EXPECT_GT(lo, 38.0);
    EXPECT_LT(hi, 56.0);
    EXPECT_LT(hi / lo, 1.25) << "designs must be power-comparable";
}

TEST(DesignSpaceTest, UnknownNameRejected)
{
    EXPECT_THROW(paperDesign("5B"), FatalError);
    EXPECT_THROW(alternativeDesign("7m_lc"), FatalError);
}

TEST(DesignSpaceTest, AlternativeDesigns)
{
    EXPECT_EQ(alternativeDesignNames().size(), 4u);

    const ChipConfig lc = alternativeDesign("6m_lc");
    EXPECT_EQ(lc.numCores(), 6u);
    EXPECT_EQ(lc.cores[0].l1d.sizeBytes, CoreParams::big().l1d.sizeBytes);
    EXPECT_EQ(lc.cores[0].l2.sizeBytes, CoreParams::big().l2.sizeBytes);

    const ChipConfig slc = alternativeDesign("16s_lc");
    EXPECT_EQ(slc.numCores(), 16u);
    EXPECT_FALSE(slc.cores[0].outOfOrder);

    const ChipConfig hf = alternativeDesign("6m_hf");
    EXPECT_EQ(hf.numCores(), 6u);
    EXPECT_NEAR(hf.cores[0].freqGHz, 3.33, 1e-9);
    // Caches unchanged for hf.
    EXPECT_EQ(hf.cores[0].l2.sizeBytes, CoreParams::medium().l2.sizeBytes);

    const ChipConfig shf = alternativeDesign("16s_hf");
    EXPECT_EQ(shf.numCores(), 16u);
    EXPECT_NEAR(shf.cores[0].freqGHz, 3.33, 1e-9);
}

} // namespace
} // namespace smtflex
