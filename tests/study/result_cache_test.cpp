/**
 * @file
 * Tests for the disk-backed result cache: persistence, the sharded file
 * format, backward-compatible loading of the legacy single-file format,
 * and key escaping (the `|`/newline injection fix).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.h"
#include "study/result_cache.h"

namespace smtflex {
namespace {

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "smtflex_cache_test.txt";
        removeAll();
    }
    void TearDown() override { removeAll(); }

    void removeAll()
    {
        std::remove(path_.c_str());
        for (std::size_t i = 0; i < ResultCache::kNumShards; ++i) {
            std::ostringstream os;
            os << path_ << ".shard-" << (i < 10 ? "0" : "") << i;
            std::remove(os.str().c_str());
        }
    }

    std::string path_;
};

TEST_F(ResultCacheTest, StoreAndFind)
{
    ResultCache cache(path_);
    EXPECT_EQ(cache.find("k1"), nullptr);
    EXPECT_FALSE(cache.lookup("k1").has_value());
    cache.store("k1", {1.0, 2.5, -3.0});
    const auto *hit = cache.find("k1");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, (std::vector<double>{1.0, 2.5, -3.0}));
    const auto copy = cache.lookup("k1");
    ASSERT_TRUE(copy.has_value());
    EXPECT_EQ(*copy, *hit);
    EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ResultCacheTest, PersistsAcrossInstances)
{
    {
        ResultCache cache(path_);
        cache.store("a", {1.0});
        cache.store("b", {2.0, 3.0});
    }
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), 2u);
    ASSERT_NE(reloaded.find("a"), nullptr);
    EXPECT_DOUBLE_EQ(reloaded.find("a")->at(0), 1.0);
    ASSERT_NE(reloaded.find("b"), nullptr);
    EXPECT_DOUBLE_EQ(reloaded.find("b")->at(1), 3.0);
}

TEST_F(ResultCacheTest, OverwriteTakesLatestValue)
{
    {
        ResultCache cache(path_);
        cache.store("k", {1.0});
        cache.store("k", {9.0});
        EXPECT_DOUBLE_EQ(cache.find("k")->at(0), 9.0);
    }
    // The append-only segments replay in order; the last record wins.
    ResultCache reloaded(path_);
    EXPECT_DOUBLE_EQ(reloaded.find("k")->at(0), 9.0);
}

TEST_F(ResultCacheTest, FullPrecisionRoundTrip)
{
    const double value = 0.12345678901234567;
    {
        ResultCache cache(path_);
        cache.store("pi", {value});
    }
    ResultCache reloaded(path_);
    EXPECT_DOUBLE_EQ(reloaded.find("pi")->at(0), value);
}

TEST_F(ResultCacheTest, LoadsLegacySingleFileFormat)
{
    // Records written by the pre-sharding cache live in `path` itself.
    {
        std::ofstream out(path_);
        out << "legacy_a|1 2 3\n";
        out << "legacy_b|4\n";
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_NE(cache.find("legacy_a"), nullptr);
    EXPECT_EQ(cache.find("legacy_a")->size(), 3u);
    // New records go to shard segments; the legacy file is left untouched,
    // and a shard record for the same key overrides the legacy one.
    cache.store("legacy_b", {9.0});
    ResultCache reloaded(path_);
    EXPECT_DOUBLE_EQ(reloaded.find("legacy_b")->at(0), 9.0);
    std::ifstream legacy(path_);
    std::string all((std::istreambuf_iterator<char>(legacy)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(all, "legacy_a|1 2 3\nlegacy_b|4\n");
}

TEST_F(ResultCacheTest, ToleratesCorruptLines)
{
    {
        std::ofstream out(path_);
        out << "good|1 2 3\n";
        out << "garbage without separator\n";
        out << "|empty key\n";
        out << "tail|4 5\n";
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_NE(cache.find("good"), nullptr);
    ASSERT_NE(cache.find("tail"), nullptr);
}

TEST_F(ResultCacheTest, InMemoryOnlyWithEmptyPath)
{
    ResultCache cache("");
    cache.store("x", {1.0});
    EXPECT_NE(cache.find("x"), nullptr);
    EXPECT_TRUE(cache.path().empty());
}

TEST_F(ResultCacheTest, EmptyKeyRejected)
{
    ResultCache cache(path_);
    EXPECT_THROW(cache.store("", {1.0}), FatalError);
}

TEST_F(ResultCacheTest, SeparatorCharactersInKeysRoundTrip)
{
    // Regression: keys containing the on-disk separators used to corrupt
    // the format (a '|' shifted the value split, a newline broke the
    // record into two lines). They are escaped now.
    const std::vector<std::string> nasty = {
        "a|b", "a\nb", "a\rb", "a\\b", "a\\|b\\n", "trailing\\",
        "mp;cfg|smt1;w\nx",
    };
    {
        ResultCache cache(path_);
        for (std::size_t i = 0; i < nasty.size(); ++i)
            cache.store(nasty[i], {static_cast<double>(i), 0.5});
    }
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), nasty.size());
    for (std::size_t i = 0; i < nasty.size(); ++i) {
        const auto hit = reloaded.lookup(nasty[i]);
        ASSERT_TRUE(hit.has_value()) << "key " << i;
        EXPECT_DOUBLE_EQ(hit->at(0), static_cast<double>(i)) << "key " << i;
    }
}

TEST_F(ResultCacheTest, EscapeKeyIsInvertibleAndOneLine)
{
    for (const std::string key :
         {"plain", "a|b", "a\nb", "a\r\nb", "back\\slash", "\\p", "x"}) {
        const std::string escaped = ResultCache::escapeKey(key);
        EXPECT_EQ(escaped.find('|'), std::string::npos) << key;
        EXPECT_EQ(escaped.find('\n'), std::string::npos) << key;
        EXPECT_EQ(ResultCache::unescapeKey(escaped), key);
    }
    // Legacy unescaped keys (no backslashes) pass through unchanged.
    EXPECT_EQ(ResultCache::unescapeKey("iso;mcf;B;b12000"), "iso;mcf;B;b12000");
}

TEST_F(ResultCacheTest, FormatRecordCarriesCrcTag)
{
    const std::string record = ResultCache::formatRecord("k", {1.5, -2.0});
    ASSERT_FALSE(record.empty());
    EXPECT_EQ(record.back(), '\n');
    // `escaped_key|values|cXXXXXXXX`: 'c' + 8 hex digits before the
    // newline.
    const std::size_t tag = record.rfind("|c");
    ASSERT_NE(tag, std::string::npos);
    EXPECT_EQ(record.size() - tag, 11u); // "|c" + 8 hex + '\n'
    EXPECT_EQ(record.rfind("k|1.5 -2|", 0), 0u);
}

TEST_F(ResultCacheTest, CrcMismatchIsSkippedAndCounted)
{
    {
        std::ofstream out(path_);
        out << ResultCache::kFormatHeader << "\n";
        out << ResultCache::formatRecord("good", {1.0, 2.0});
        std::string bad = ResultCache::formatRecord("bad", {3.0});
        bad[bad.find('3')] = '4'; // flip a value byte; the CRC now lies
        out << bad;
        out << ResultCache::formatRecord("tail", {5.0});
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.corruptLinesSkipped(), 1u);
    EXPECT_NE(cache.find("good"), nullptr);
    EXPECT_EQ(cache.find("bad"), nullptr);
    EXPECT_NE(cache.find("tail"), nullptr);
}

TEST_F(ResultCacheTest, StrictFormatRejectsUntaggedLines)
{
    // In a v2 file a line without a CRC tag is a truncated record, not a
    // legacy record — its values may be silently shortened.
    {
        std::ofstream out(path_);
        out << ResultCache::kFormatHeader << "\n";
        out << "torn|1 2\n";
        out << ResultCache::formatRecord("ok", {3.0});
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find("torn"), nullptr);
    EXPECT_EQ(cache.corruptLinesSkipped(), 1u);
}

TEST_F(ResultCacheTest, NewSegmentsCarryTheFormatHeader)
{
    {
        ResultCache cache(path_);
        cache.store("k", {1.0});
    }
    bool found = false;
    for (std::size_t i = 0; i < ResultCache::kNumShards; ++i) {
        std::ostringstream os;
        os << path_ << ".shard-" << (i < 10 ? "0" : "") << i;
        std::ifstream in(os.str());
        std::string first;
        if (in && std::getline(in, first)) {
            found = true;
            EXPECT_EQ(first, ResultCache::kFormatHeader);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ResultCacheTest, CheckpointCompactsAndStaysAppendable)
{
    ResultCache cache(path_);
    cache.store("k", {1.0});
    cache.store("k", {2.0});
    cache.store("k", {3.0}); // three appended records for one key
    EXPECT_TRUE(cache.checkpoint());
    // The snapshot holds exactly one record per entry.
    std::size_t records = 0;
    for (std::size_t i = 0; i < ResultCache::kNumShards; ++i) {
        std::ostringstream os;
        os << path_ << ".shard-" << (i < 10 ? "0" : "") << i;
        std::ifstream in(os.str());
        std::string line;
        while (std::getline(in, line))
            if (line != ResultCache::kFormatHeader)
                ++records;
    }
    EXPECT_EQ(records, 1u);
    // Appends after the checkpoint land in the renamed file, not the
    // replaced inode.
    cache.store("post", {4.0});
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), 2u);
    ASSERT_NE(reloaded.find("k"), nullptr);
    EXPECT_DOUBLE_EQ(reloaded.find("k")->at(0), 3.0);
    ASSERT_NE(reloaded.find("post"), nullptr);
    EXPECT_EQ(reloaded.corruptLinesSkipped(), 0u);
}

TEST_F(ResultCacheTest, EmptyValueVector)
{
    {
        ResultCache cache(path_);
        cache.store("empty", {});
    }
    ResultCache reloaded(path_);
    ASSERT_NE(reloaded.find("empty"), nullptr);
    EXPECT_TRUE(reloaded.find("empty")->empty());
}

} // namespace
} // namespace smtflex
