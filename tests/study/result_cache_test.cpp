/**
 * @file
 * Tests for the disk-backed result cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/log.h"
#include "study/result_cache.h"

namespace smtflex {
namespace {

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "smtflex_cache_test.txt";
        std::remove(path_.c_str());
    }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(ResultCacheTest, StoreAndFind)
{
    ResultCache cache(path_);
    EXPECT_EQ(cache.find("k1"), nullptr);
    cache.store("k1", {1.0, 2.5, -3.0});
    const auto *hit = cache.find("k1");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, (std::vector<double>{1.0, 2.5, -3.0}));
    EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ResultCacheTest, PersistsAcrossInstances)
{
    {
        ResultCache cache(path_);
        cache.store("a", {1.0});
        cache.store("b", {2.0, 3.0});
    }
    ResultCache reloaded(path_);
    EXPECT_EQ(reloaded.size(), 2u);
    ASSERT_NE(reloaded.find("a"), nullptr);
    EXPECT_DOUBLE_EQ(reloaded.find("a")->at(0), 1.0);
    ASSERT_NE(reloaded.find("b"), nullptr);
    EXPECT_DOUBLE_EQ(reloaded.find("b")->at(1), 3.0);
}

TEST_F(ResultCacheTest, OverwriteTakesLatestValue)
{
    {
        ResultCache cache(path_);
        cache.store("k", {1.0});
        cache.store("k", {9.0});
        EXPECT_DOUBLE_EQ(cache.find("k")->at(0), 9.0);
    }
    // The append-only file replays in order; the last record wins.
    ResultCache reloaded(path_);
    EXPECT_DOUBLE_EQ(reloaded.find("k")->at(0), 9.0);
}

TEST_F(ResultCacheTest, FullPrecisionRoundTrip)
{
    const double value = 0.12345678901234567;
    {
        ResultCache cache(path_);
        cache.store("pi", {value});
    }
    ResultCache reloaded(path_);
    EXPECT_DOUBLE_EQ(reloaded.find("pi")->at(0), value);
}

TEST_F(ResultCacheTest, ToleratesCorruptLines)
{
    {
        std::ofstream out(path_);
        out << "good|1 2 3\n";
        out << "garbage without separator\n";
        out << "|empty key\n";
        out << "tail|4 5\n";
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_NE(cache.find("good"), nullptr);
    ASSERT_NE(cache.find("tail"), nullptr);
}

TEST_F(ResultCacheTest, InMemoryOnlyWithEmptyPath)
{
    ResultCache cache("");
    cache.store("x", {1.0});
    EXPECT_NE(cache.find("x"), nullptr);
    EXPECT_TRUE(cache.path().empty());
}

TEST_F(ResultCacheTest, InvalidKeysRejected)
{
    ResultCache cache(path_);
    EXPECT_THROW(cache.store("", {1.0}), FatalError);
    EXPECT_THROW(cache.store("a|b", {1.0}), FatalError);
    EXPECT_THROW(cache.store("a\nb", {1.0}), FatalError);
}

TEST_F(ResultCacheTest, EmptyValueVector)
{
    {
        ResultCache cache(path_);
        cache.store("empty", {});
    }
    ResultCache reloaded(path_);
    ASSERT_NE(reloaded.find("empty"), nullptr);
    EXPECT_TRUE(reloaded.find("empty")->empty());
}

} // namespace
} // namespace smtflex
