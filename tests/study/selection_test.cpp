/**
 * @file
 * Tests for the benchmark-selection methodology (paper Section 3.2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/log.h"
#include "study/selection.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

StudyOptions
fastOptions()
{
    StudyOptions opts;
    opts.budget = 4'000;
    opts.warmup = 1'000;
    opts.cachePath.clear();
    return opts;
}

TEST(SelectionTest, CharacterisationCoversAllBenchmarks)
{
    StudyEngine eng(fastOptions());
    const std::vector<std::string> names = {"hmmer", "mcf", "libquantum"};
    const auto table = characteriseBenchmarks(eng, names);
    ASSERT_EQ(table.size(), 3u);
    for (const auto &row : table) {
        EXPECT_GT(row.ipcBig, row.ipcMedium) << row.name;
        EXPECT_GT(row.ipcMedium, row.ipcSmall) << row.name;
        EXPECT_GT(row.smallOverBig(), 0.0);
        EXPECT_LT(row.smallOverBig(), 1.0);
    }
}

TEST(SelectionTest, KeepsExtremesAndIsSorted)
{
    StudyEngine eng(fastOptions());
    const auto &all = specBenchmarkNames(); // 12 candidates
    const auto picked = selectRepresentativeBenchmarks(eng, all, 5);
    ASSERT_EQ(picked.size(), 5u);
    // No duplicates.
    EXPECT_EQ(std::set<std::string>(picked.begin(), picked.end()).size(),
              5u);

    // The global extremes of the small/big ratio must be included.
    auto table = characteriseBenchmarks(eng, all);
    std::sort(table.begin(), table.end(),
              [](const auto &a, const auto &b) {
                  return a.smallOverBig() < b.smallOverBig();
              });
    EXPECT_EQ(picked.front(), table.front().name);
    EXPECT_EQ(picked.back(), table.back().name);
}

TEST(SelectionTest, SelectingAllReturnsAll)
{
    StudyEngine eng(fastOptions());
    const std::vector<std::string> names = {"hmmer", "mcf", "tonto"};
    const auto picked = selectRepresentativeBenchmarks(eng, names, 3);
    EXPECT_EQ(std::set<std::string>(picked.begin(), picked.end()).size(),
              3u);
}

TEST(SelectionTest, TooFewCandidatesRejected)
{
    StudyEngine eng(fastOptions());
    EXPECT_THROW(
        selectRepresentativeBenchmarks(eng, {"hmmer"}, 2), FatalError);
    EXPECT_THROW(selectRepresentativeBenchmarks(eng, {}, 0), FatalError);
}

TEST(SelectionTest, ExtendedRegistryAvailable)
{
    // The full modelled suite is larger than the selected set and includes
    // all selected benchmarks.
    const auto &all = specAllBenchmarkNames();
    EXPECT_GE(all.size(), 26u);
    for (const auto &name : specBenchmarkNames()) {
        EXPECT_NE(std::find(all.begin(), all.end(), name), all.end())
            << name;
    }
    for (const auto *p : specAllProfiles())
        EXPECT_NO_THROW(p->validate());
}

} // namespace
} // namespace smtflex
