/**
 * @file
 * smtflex::ckpt serialization primitives: bit-exact round trips and
 * strict rejection of every malformed stream shape.
 */

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serial.h"
#include "ckpt/store.h"

namespace smtflex {
namespace ckpt {
namespace {

TEST(CkptSerialTest, ScalarsRoundTrip)
{
    Writer w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.boolean(true);
    w.boolean(false);
    w.f64(3.141592653589793);
    w.str("hello snapshot");
    w.blob({1, 2, 3, 255});

    Reader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.f64(), 3.141592653589793);
    EXPECT_EQ(r.str(), "hello snapshot");
    EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3, 255}));
    EXPECT_TRUE(r.atEnd());
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(CkptSerialTest, DoublesTravelAsExactBitPatterns)
{
    // The values whose text round-trips drift: subnormals, -0.0, NaN
    // payloads, and long mantissas. The bit pattern must be preserved.
    const std::vector<double> values = {
        0.0,
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -1.0 / 3.0,
        std::numeric_limits<double>::infinity(),
        0.1 + 0.2, // the canonical non-representable sum
    };
    Writer w;
    for (const double v : values)
        w.f64(v);
    Reader r(w.bytes());
    for (const double v : values) {
        const double got = r.f64();
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(v));
    }

    Writer wn;
    wn.f64(std::nan("0x5ca1ab1e"));
    Reader rn(wn.bytes());
    EXPECT_TRUE(std::isnan(rn.f64()));
}

TEST(CkptSerialTest, TruncatedStreamThrowsAtEveryPrefix)
{
    Writer w;
    w.u32(7);
    w.str("abc");
    w.u64(42);
    const std::vector<std::uint8_t> full = w.bytes();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        Reader r(full.data(), cut);
        EXPECT_THROW(
            {
                r.u32();
                r.str();
                r.u64();
                r.expectEnd();
            },
            CorruptSnapshot)
            << "prefix of " << cut << " bytes decoded";
    }
}

TEST(CkptSerialTest, OversizedLengthPrefixThrows)
{
    Writer w;
    w.u32(1'000'000); // claims a megabyte that is not there
    w.u8('x');
    Reader r(w.bytes());
    EXPECT_THROW(r.str(), CorruptSnapshot);
    Reader r2(w.bytes());
    EXPECT_THROW(r2.blob(), CorruptSnapshot);
}

TEST(CkptSerialTest, BadBooleanByteThrows)
{
    Writer w;
    w.u8(2);
    Reader r(w.bytes());
    EXPECT_THROW(r.boolean(), CorruptSnapshot);
}

TEST(CkptSerialTest, CountMismatchThrows)
{
    Writer w;
    w.u32(5);
    Reader ok(w.bytes());
    EXPECT_EQ(ok.count(5, "widgets"), 5u);
    Reader bad(w.bytes());
    EXPECT_THROW(bad.count(4, "widgets"), CorruptSnapshot);
}

TEST(CkptSerialTest, TrailingBytesAreRejected)
{
    Writer w;
    w.u32(1);
    w.u8(0);
    Reader r(w.bytes());
    r.u32();
    EXPECT_FALSE(r.atEnd());
    EXPECT_THROW(r.expectEnd(), CorruptSnapshot);
}

TEST(CkptSerialTest, StatsCountersRoundTripThroughFieldList)
{
    CkptStats stats;
    stats.saves = 3;
    stats.saveBytes = 123456;
    stats.hits = 7;
    stats.misses = 2;
    stats.corruptSkipped = 1;
    stats.resumeMs = 99;
    stats.journalAppends = 4;
    stats.journalReplayed = 11;

    Writer w;
    saveCounters(w, stats);
    CkptStats restored;
    Reader r(w.bytes());
    loadCounters(r, restored);
    r.expectEnd();

    CkptStats::forEachCounter([&](const char *name, auto member) {
        EXPECT_EQ((restored.*member).load(), (stats.*member).load())
            << name;
    });
}

} // namespace
} // namespace ckpt
} // namespace smtflex
