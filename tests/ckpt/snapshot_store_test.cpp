/**
 * @file
 * Snapshot envelope + SnapshotStore: strict whole-or-nothing decoding
 * (truncation at every byte offset, bit flips), atomic file round trips,
 * best() ordering/eligibility/corrupt-skip accounting, and the
 * ckpt.write / ckpt.load fault seams.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/snapshot.h"
#include "ckpt/store.h"
#include "common/fault.h"

namespace smtflex {
namespace ckpt {
namespace {

Snapshot
sampleSnapshot(std::uint64_t cycle = 12'345,
               const std::string &key = "cfg;s42;t:mcf@0.0")
{
    Snapshot snap;
    snap.kind = SnapshotKind::kChipRun;
    snap.key = key;
    snap.cycle = cycle;
    snap.meta = {1, 0, 0, 0, 9, 8, 7};
    snap.payload.resize(257);
    for (std::size_t i = 0; i < snap.payload.size(); ++i)
        snap.payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
    return snap;
}

class SnapshotStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = ::testing::TempDir() + "smtflex_ckpt_store_test";
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override
    {
        fault::reset();
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
    CkptStats stats_;
};

TEST_F(SnapshotStoreTest, EncodeDecodeRoundTrip)
{
    const Snapshot snap = sampleSnapshot();
    const std::vector<std::uint8_t> bytes = encodeSnapshot(snap);
    const Snapshot back = decodeSnapshot(bytes.data(), bytes.size());
    EXPECT_EQ(back.kind, snap.kind);
    EXPECT_EQ(back.key, snap.key);
    EXPECT_EQ(back.cycle, snap.cycle);
    EXPECT_EQ(back.meta, snap.meta);
    EXPECT_EQ(back.payload, snap.payload);
}

TEST_F(SnapshotStoreTest, TruncationAtEveryByteOffsetRejects)
{
    const std::vector<std::uint8_t> full = encodeSnapshot(sampleSnapshot());
    for (std::size_t cut = 0; cut < full.size(); ++cut)
        EXPECT_THROW(decodeSnapshot(full.data(), cut), CorruptSnapshot)
            << "truncated to " << cut << " of " << full.size()
            << " bytes decoded";
}

TEST_F(SnapshotStoreTest, EverySingleBitFlipRejects)
{
    const std::vector<std::uint8_t> full = encodeSnapshot(sampleSnapshot());
    std::vector<std::uint8_t> mutated = full;
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            mutated[byte] =
                full[byte] ^ static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW(decodeSnapshot(mutated.data(), mutated.size()),
                         CorruptSnapshot)
                << "flip of byte " << byte << " bit " << bit << " decoded";
            mutated[byte] = full[byte];
        }
    }
}

TEST_F(SnapshotStoreTest, FileRoundTripAndMissingFile)
{
    std::filesystem::create_directories(dir_);
    const std::string path = dir_ + "/one.ckpt";
    const Snapshot snap = sampleSnapshot();
    ASSERT_TRUE(writeSnapshotFile(path, snap));
    const std::optional<Snapshot> back = readSnapshotFile(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, snap.key);
    EXPECT_EQ(back->payload, snap.payload);
    // No stray .tmp left behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    // Missing files are "no snapshot", not corruption.
    EXPECT_FALSE(readSnapshotFile(dir_ + "/absent.ckpt").has_value());
}

TEST_F(SnapshotStoreTest, GarbageFileThrowsCorrupt)
{
    std::filesystem::create_directories(dir_);
    const std::string path = dir_ + "/junk.ckpt";
    std::ofstream(path, std::ios::binary) << "this is not a snapshot";
    EXPECT_THROW(readSnapshotFile(path), CorruptSnapshot);
}

TEST_F(SnapshotStoreTest, BestPrefersHighestEligibleCycle)
{
    SnapshotStore store(dir_, &stats_);
    for (const std::uint64_t cycle : {10ull, 30ull, 20ull})
        ASSERT_TRUE(store.save(sampleSnapshot(cycle)));
    EXPECT_EQ(stats_.saves.load(), 3u);
    EXPECT_GT(stats_.saveBytes.load(), 0u);

    const std::string key = sampleSnapshot().key;
    const auto any = store.best(key, [](const Snapshot &) { return true; });
    ASSERT_TRUE(any.has_value());
    EXPECT_EQ(any->cycle, 30u);

    // Eligibility skips newer snapshots without discarding older ones.
    const auto capped = store.best(
        key, [](const Snapshot &s) { return s.cycle <= 15; });
    ASSERT_TRUE(capped.has_value());
    EXPECT_EQ(capped->cycle, 10u);

    EXPECT_FALSE(store.best("other-key", [](const Snapshot &) {
                          return true;
                      }).has_value());
    EXPECT_EQ(stats_.corruptSkipped.load(), 0u);
}

TEST_F(SnapshotStoreTest, CorruptNewestIsSkippedCountedAndOlderWins)
{
    SnapshotStore store(dir_, &stats_);
    ASSERT_TRUE(store.save(sampleSnapshot(100)));
    ASSERT_TRUE(store.save(sampleSnapshot(200)));

    // Tear the newest file the way a power cut would.
    const std::string key = sampleSnapshot().key;
    const std::string newest = dir_ + "/" +
        [&] {
            char buf[17];
            std::snprintf(buf, sizeof buf, "%016llx",
                          static_cast<unsigned long long>(keyHash64(key)));
            return std::string(buf);
        }() +
        "-200.ckpt";
    ASSERT_TRUE(std::filesystem::exists(newest));
    std::filesystem::resize_file(newest, 9);

    const auto best =
        store.best(key, [](const Snapshot &) { return true; });
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->cycle, 100u);
    EXPECT_EQ(stats_.corruptSkipped.load(), 1u);
}

TEST_F(SnapshotStoreTest, HashCollisionKeyEchoMismatchIsSilentlySkipped)
{
    SnapshotStore store(dir_, &stats_);
    const std::string key = "the-real-key";

    // Simulate a 64-bit file-name hash collision: a valid envelope for a
    // *different* key parked under this key's file name.
    Snapshot foreign = sampleSnapshot(50, "a-colliding-key");
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(keyHash64(key)));
    ASSERT_TRUE(writeSnapshotFile(
        dir_ + "/" + std::string(buf) + "-50.ckpt", foreign));

    EXPECT_FALSE(
        store.best(key, [](const Snapshot &) { return true; }).has_value());
    // Not corruption — just not ours.
    EXPECT_EQ(stats_.corruptSkipped.load(), 0u);
}

TEST_F(SnapshotStoreTest, InjectedTornWriteIsRejectedOnLoad)
{
    SnapshotStore store(dir_, &stats_);
    fault::configure("ckpt.write:limit=1;param=16");
    EXPECT_FALSE(store.save(sampleSnapshot(77)));
    EXPECT_EQ(stats_.saveFailures.load(), 1u);
    fault::reset();

    // The torn file was still published (rename happened); best() must
    // reject it via CRC, count it, and fall back to "no snapshot".
    EXPECT_FALSE(store.best(sampleSnapshot().key, [](const Snapshot &) {
                          return true;
                      }).has_value());
    EXPECT_EQ(stats_.corruptSkipped.load(), 1u);

    // A healthy save afterwards repairs the store.
    ASSERT_TRUE(store.save(sampleSnapshot(77)));
    const auto best = store.best(
        sampleSnapshot().key, [](const Snapshot &) { return true; });
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->cycle, 77u);
}

TEST_F(SnapshotStoreTest, InjectedLoadFaultSkipsThenRecovers)
{
    SnapshotStore store(dir_, &stats_);
    ASSERT_TRUE(store.save(sampleSnapshot(42)));

    fault::configure("ckpt.load:limit=1");
    EXPECT_FALSE(store.best(sampleSnapshot().key, [](const Snapshot &) {
                          return true;
                      }).has_value());
    EXPECT_EQ(stats_.corruptSkipped.load(), 1u);
    fault::reset();

    // The file itself was never damaged; the next scan resumes from it.
    const auto best = store.best(
        sampleSnapshot().key, [](const Snapshot &) { return true; });
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->cycle, 42u);
}

} // namespace
} // namespace ckpt
} // namespace smtflex
