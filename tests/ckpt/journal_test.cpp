/**
 * @file
 * SweepJournal: append/replay round trips, the torn-tail crash case
 * (silently ends replay, everything fsynced before it survives), corrupt
 * mid-file frames, and the ckpt.* fault seams.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/journal.h"
#include "common/fault.h"

namespace smtflex {
namespace ckpt {
namespace {

class SweepJournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "smtflex_ckpt_journal_test.journal";
        std::filesystem::remove(path_);
    }

    void TearDown() override
    {
        fault::reset();
        std::filesystem::remove(path_);
    }

    static std::vector<SweepJournal::Record> sampleChunk(unsigned base)
    {
        std::vector<SweepJournal::Record> records;
        for (unsigned i = 0; i < 3; ++i)
            records.push_back({"row-" + std::to_string(base + i),
                               {1.5 * base, 2.0 + i, -0.25}});
        return records;
    }

    static std::vector<SweepJournal::Record>
    replayAll(SweepJournal &journal)
    {
        std::vector<SweepJournal::Record> seen;
        journal.replay(
            [&](const SweepJournal::Record &r) { seen.push_back(r); });
        return seen;
    }

    std::string path_;
    CkptStats stats_;
};

TEST_F(SweepJournalTest, AppendReplayRoundTrip)
{
    SweepJournal journal(path_, &stats_);
    ASSERT_TRUE(journal.append(sampleChunk(0)));
    ASSERT_TRUE(journal.append(sampleChunk(10)));
    EXPECT_EQ(stats_.journalAppends.load(), 2u);

    SweepJournal reopened(path_, &stats_);
    const auto seen = replayAll(reopened);
    ASSERT_EQ(seen.size(), 6u);
    EXPECT_EQ(seen[0].key, "row-0");
    EXPECT_EQ(seen[3].key, "row-10");
    EXPECT_EQ(seen[5].values, (std::vector<double>{15.0, 4.0, -0.25}));
    EXPECT_EQ(stats_.journalReplayed.load(), 6u);
}

TEST_F(SweepJournalTest, MissingFileReplaysNothing)
{
    SweepJournal journal(path_, &stats_);
    EXPECT_EQ(journal.replay([](const SweepJournal::Record &) {}), 0u);
    EXPECT_EQ(stats_.corruptSkipped.load(), 0u);
}

TEST_F(SweepJournalTest, EmptyFrameReplaysZeroRecords)
{
    SweepJournal journal(path_, &stats_);
    ASSERT_TRUE(journal.append(sampleChunk(0)));
    ASSERT_TRUE(journal.append({}));
    ASSERT_TRUE(journal.append(sampleChunk(10)));
    // The empty frame is valid — replay walks through it to the frames
    // on either side.
    EXPECT_EQ(replayAll(journal).size(), 6u);
}

TEST_F(SweepJournalTest, TornTailAtEveryOffsetKeepsThePrefix)
{
    SweepJournal journal(path_, &stats_);
    ASSERT_TRUE(journal.append(sampleChunk(0)));
    const auto frame1 = std::filesystem::file_size(path_);
    ASSERT_TRUE(journal.append(sampleChunk(10)));
    const auto full = std::filesystem::file_size(path_);
    std::vector<char> bytes(static_cast<std::size_t>(full));
    std::ifstream(path_, std::ios::binary)
        .read(bytes.data(), static_cast<std::streamsize>(bytes.size()));

    // Crash mid-append of frame 2: whatever prefix of it reached disk,
    // replay returns exactly the 3 records of the intact frame 1.
    for (auto cut = frame1; cut < full; ++cut) {
        std::ofstream(path_, std::ios::binary | std::ios::trunc)
            .write(bytes.data(), static_cast<std::streamsize>(cut));
        SweepJournal torn(path_, &stats_);
        EXPECT_EQ(replayAll(torn).size(), 3u) << "tail cut at " << cut;
    }
}

TEST_F(SweepJournalTest, CorruptFrameEndsReplayAndIsCounted)
{
    SweepJournal journal(path_, &stats_);
    ASSERT_TRUE(journal.append(sampleChunk(0)));
    const auto frame1 = std::filesystem::file_size(path_);
    ASSERT_TRUE(journal.append(sampleChunk(10)));

    // Flip one payload byte inside frame 2: a CRC failure, not a clean
    // EOF tail — replay stops there and counts the corruption.
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(frame1) + 9);
    const char byte = static_cast<char>(f.get() ^ 0x40);
    f.seekp(static_cast<std::streamoff>(frame1) + 9);
    f.put(byte);
    f.close();

    EXPECT_EQ(replayAll(journal).size(), 3u);
    EXPECT_EQ(stats_.corruptSkipped.load(), 1u);
}

TEST_F(SweepJournalTest, InjectedTornAppendNeverReplaysBadData)
{
    SweepJournal journal(path_, &stats_);
    ASSERT_TRUE(journal.append(sampleChunk(0)));

    fault::configure("ckpt.write:limit=1");
    EXPECT_FALSE(journal.append(sampleChunk(10)));
    fault::reset();

    // The torn frame poisons the tail: replay yields exactly the records
    // fsynced before the tear and never a partial or garbled record —
    // resumability is lost from that point, correctness never.
    EXPECT_EQ(replayAll(journal).size(), 3u);

    // A later append lands after the torn bytes and is unreachable, but
    // replay still stops cleanly at the tear instead of misparsing it.
    ASSERT_TRUE(journal.append(sampleChunk(20)));
    const auto seen = replayAll(journal);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].key, "row-0");
}

} // namespace
} // namespace ckpt
} // namespace smtflex
