/**
 * @file
 * Differential tests of ChipSim checkpoint/restore: a run that resumes
 * from a snapshot must be bit-identical — every SimResult field — to the
 * uninterrupted run, from every snapshot boundary, under fast-forward
 * and strict stepping, with time sharing, with a larger budget
 * (warm-start prefix reuse) and under injected ckpt.* faults. Corrupt
 * snapshots must fall back to a bit-identical cold start and be counted.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/store.h"
#include "common/fault.h"
#include "sim/chip_sim.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

void
expectIdenticalCache(const CacheStats &a, const CacheStats &b,
                     const std::string &what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

/** Every field exactly equal — including double-typed ones, where any
 * restore drift would show up as a ULP difference. */
void
expectIdentical(const SimResult &cold, const SimResult &resumed)
{
    EXPECT_EQ(cold.cycles, resumed.cycles);
    EXPECT_EQ(cold.hitCycleLimit, resumed.hitCycleLimit);

    ASSERT_EQ(cold.cores.size(), resumed.cores.size());
    for (std::size_t i = 0; i < cold.cores.size(); ++i) {
        const std::string what = "core " + std::to_string(i);
        const CoreStats &a = cold.cores[i].stats;
        const CoreStats &b = resumed.cores[i].stats;
        EXPECT_EQ(a.coreCycles, b.coreCycles) << what;
        EXPECT_EQ(a.busyCycles, b.busyCycles) << what;
        for (std::size_t k = 0; k < kNumOpClasses; ++k)
            EXPECT_EQ(a.dispatched[k], b.dispatched[k])
                << what << " op class " << k;
        EXPECT_EQ(a.retired, b.retired) << what;
        EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
        EXPECT_EQ(a.robStallEvents, b.robStallEvents) << what;
        EXPECT_EQ(a.mshrStallEvents, b.mshrStallEvents) << what;
        EXPECT_EQ(cold.cores[i].poweredCycles, resumed.cores[i].poweredCycles)
            << what;
        expectIdenticalCache(cold.cores[i].l1i, resumed.cores[i].l1i,
                             what + " l1i");
        expectIdenticalCache(cold.cores[i].l1d, resumed.cores[i].l1d,
                             what + " l1d");
        expectIdenticalCache(cold.cores[i].l2, resumed.cores[i].l2,
                             what + " l2");
    }

    expectIdenticalCache(cold.llc, resumed.llc, "llc");
    EXPECT_EQ(cold.dram.reads, resumed.dram.reads);
    EXPECT_EQ(cold.dram.writes, resumed.dram.writes);
    EXPECT_EQ(cold.dram.totalLatencyCycles, resumed.dram.totalLatencyCycles);
    EXPECT_EQ(cold.dram.busBusyCycles, resumed.dram.busBusyCycles);
    EXPECT_EQ(cold.xbar.requests, resumed.xbar.requests);
    EXPECT_EQ(cold.xbar.totalQueueCycles, resumed.xbar.totalQueueCycles);

    ASSERT_EQ(cold.activeThreadFractions.size(),
              resumed.activeThreadFractions.size());
    for (std::size_t k = 0; k < cold.activeThreadFractions.size(); ++k)
        EXPECT_EQ(cold.activeThreadFractions[k],
                  resumed.activeThreadFractions[k])
            << "histogram bucket " << k;

    ASSERT_EQ(cold.threads.size(), resumed.threads.size());
    for (std::size_t i = 0; i < cold.threads.size(); ++i) {
        const std::string what = "thread " + std::to_string(i);
        EXPECT_EQ(cold.threads[i].benchmark, resumed.threads[i].benchmark)
            << what;
        EXPECT_EQ(cold.threads[i].budget, resumed.threads[i].budget) << what;
        EXPECT_EQ(cold.threads[i].finished, resumed.threads[i].finished)
            << what;
        EXPECT_EQ(cold.threads[i].startCycle, resumed.threads[i].startCycle)
            << what;
        EXPECT_EQ(cold.threads[i].finishCycle, resumed.threads[i].finishCycle)
            << what;
    }
}

class ChipCkptTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = ::testing::TempDir() + "smtflex_chip_ckpt_test";
        std::filesystem::remove_all(dir_);
        // Force checkpointing off (ignoring any ambient SMTFLEX_CKPT)
        // until a test turns it on.
        ckpt::configureProcess("", 1);
    }

    void TearDown() override
    {
        fault::reset();
        ckpt::resetProcess();
        std::filesystem::remove_all(dir_);
        std::filesystem::remove_all(dir_ + "_one");
    }

    /** One uninterrupted runMultiProgram under the current process ckpt
     * binding; a fresh chip every call. */
    static SimResult runOnce(const ChipConfig &cfg,
                             const std::vector<const char *> &benches,
                             const Placement &placement,
                             const RunLimits &limits = RunLimits{},
                             bool fast_forward = true,
                             std::uint64_t budget = 12'000)
    {
        std::vector<ThreadSpec> specs;
        specs.reserve(benches.size());
        for (const char *bench : benches)
            specs.push_back({&specProfile(bench), budget, 3'000});
        ChipSim chip(cfg);
        chip.setFastForward(fast_forward);
        return chip.runMultiProgram(specs, placement, 42, limits);
    }

    std::vector<std::filesystem::path> snapshotFiles() const
    {
        std::vector<std::filesystem::path> files;
        if (!std::filesystem::exists(dir_))
            return files;
        for (const auto &entry : std::filesystem::directory_iterator(dir_))
            if (entry.path().extension() == ".ckpt")
                files.push_back(entry.path());
        std::sort(files.begin(), files.end());
        return files;
    }

    std::string dir_;
};

TEST_F(ChipCkptTest, CheckpointingItselfChangesNothing)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<const char *> benches = {"mcf", "milc", "hmmer",
                                               "mcf"};

    const SimResult reference = runOnce(cfg, benches, pl);

    ckpt::configureProcess(dir_, 1'000);
    const auto misses0 = ckpt::processStats().misses.load();
    const SimResult with_ckpt = runOnce(cfg, benches, pl);

    expectIdentical(reference, with_ckpt);
    EXPECT_EQ(ckpt::processStats().misses.load(), misses0 + 1);
    EXPECT_GT(snapshotFiles().size(), 2u) << "no snapshots were written";
}

TEST_F(ChipCkptTest, ResumeFromEveryBoundaryIsBitIdentical)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<const char *> benches = {"mcf", "milc", "hmmer",
                                               "mcf"};

    const SimResult reference = runOnce(cfg, benches, pl);

    ckpt::configureProcess(dir_, 1'000);
    runOnce(cfg, benches, pl); // populate the store
    const auto files = snapshotFiles();
    ASSERT_GT(files.size(), 2u);

    // Resume from each boundary in isolation: a store holding only the
    // cycle-N snapshot forces the run to restart exactly there.
    const std::string one = dir_ + "_one";
    for (const auto &file : files) {
        SCOPED_TRACE("resume from " + file.filename().string());
        std::filesystem::remove_all(one);
        std::filesystem::create_directories(one);
        std::filesystem::copy_file(file,
                                   one + "/" + file.filename().string());
        ckpt::configureProcess(one, 1'000);
        const auto hits0 = ckpt::processStats().hits.load();
        const SimResult resumed = runOnce(cfg, benches, pl);
        EXPECT_EQ(ckpt::processStats().hits.load(), hits0 + 1);
        expectIdentical(reference, resumed);
    }
}

TEST_F(ChipCkptTest, CorruptStoreFallsBackToBitIdenticalColdStart)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<const char *> benches = {"mcf", "milc", "hmmer",
                                               "mcf"};

    const SimResult reference = runOnce(cfg, benches, pl);

    ckpt::configureProcess(dir_, 1'000);
    runOnce(cfg, benches, pl);
    const auto files = snapshotFiles();
    ASSERT_GT(files.size(), 0u);

    // Tear every snapshot; the next run must skip them all (counted),
    // report a miss, and cold-start to the identical result.
    for (const auto &file : files)
        std::filesystem::resize_file(
            file, std::filesystem::file_size(file) / 3);

    const auto skipped0 = ckpt::processStats().corruptSkipped.load();
    const auto misses0 = ckpt::processStats().misses.load();
    const auto hits0 = ckpt::processStats().hits.load();
    const SimResult cold = runOnce(cfg, benches, pl);
    expectIdentical(reference, cold);
    EXPECT_EQ(ckpt::processStats().corruptSkipped.load(),
              skipped0 + files.size());
    EXPECT_EQ(ckpt::processStats().misses.load(), misses0 + 1);
    EXPECT_EQ(ckpt::processStats().hits.load(), hits0);
}

TEST_F(ChipCkptTest, WarmStartServesALargerBudgetFromAShorterRunsPrefix)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {1, 0}};
    const std::vector<const char *> benches = {"mcf", "milc"};

    const SimResult reference =
        runOnce(cfg, benches, pl, RunLimits{}, true, 24'000);

    // A short run populates the store; the pre-finish snapshots are
    // budget-independent, so the doubled-budget run resumes from them.
    ckpt::configureProcess(dir_, 1'000);
    runOnce(cfg, benches, pl, RunLimits{}, true, 12'000);
    ASSERT_GT(snapshotFiles().size(), 0u);

    const auto hits0 = ckpt::processStats().hits.load();
    const SimResult warmed =
        runOnce(cfg, benches, pl, RunLimits{}, true, 24'000);
    EXPECT_EQ(ckpt::processStats().hits.load(), hits0 + 1);
    expectIdentical(reference, warmed);
}

TEST_F(ChipCkptTest, StrictSteppingResumesBitIdentically)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2s", CoreParams::small(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}};
    const std::vector<const char *> benches = {"mcf", "milc"};

    const SimResult reference =
        runOnce(cfg, benches, pl, RunLimits{}, /*fast_forward=*/false);

    ckpt::configureProcess(dir_, 1'000);
    runOnce(cfg, benches, pl, RunLimits{}, false);
    ASSERT_GT(snapshotFiles().size(), 0u);

    const auto hits0 = ckpt::processStats().hits.load();
    const SimResult resumed =
        runOnce(cfg, benches, pl, RunLimits{}, false);
    EXPECT_EQ(ckpt::processStats().hits.load(), hits0 + 1);
    expectIdentical(reference, resumed);
}

TEST_F(ChipCkptTest, StrictAndFastForwardResumesAgree)
{
    // Cross-check: a fast-forward resume and a strict resume of the same
    // snapshot reach the same result (the snapshot state is
    // strict-equivalent; fast-forward is result-neutral on top of it).
    const ChipConfig cfg =
        ChipConfig::homogeneous("2s", CoreParams::small(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}};
    const std::vector<const char *> benches = {"mcf", "milc"};

    ckpt::configureProcess(dir_, 1'000);
    runOnce(cfg, benches, pl, RunLimits{}, true);
    ASSERT_GT(snapshotFiles().size(), 0u);

    const SimResult fast = runOnce(cfg, benches, pl, RunLimits{}, true);
    const SimResult strict = runOnce(cfg, benches, pl, RunLimits{}, false);
    expectIdentical(strict, fast);
}

TEST_F(ChipCkptTest, TimeSharingResumeRestoresRotationState)
{
    // Three threads share one context slot: the snapshot carries the
    // resident indices and the rotation clock, both of which must land
    // exactly for the remaining rotations to fire at the strict cycles.
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    Placement pl;
    pl.entries = {{0, 0}, {0, 0}, {0, 0}};
    RunLimits limits;
    limits.quantum = 512;
    const std::vector<const char *> benches = {"mcf", "milc", "mcf"};

    const SimResult reference = runOnce(cfg, benches, pl, limits);

    ckpt::configureProcess(dir_, 3'000);
    runOnce(cfg, benches, pl, limits);
    ASSERT_GT(snapshotFiles().size(), 0u);

    const auto hits0 = ckpt::processStats().hits.load();
    const SimResult resumed = runOnce(cfg, benches, pl, limits);
    EXPECT_EQ(ckpt::processStats().hits.load(), hits0 + 1);
    expectIdentical(reference, resumed);
}

TEST_F(ChipCkptTest, InjectedTornWritesNeverChangeResults)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {1, 0}};
    const std::vector<const char *> benches = {"mcf", "milc"};

    const SimResult reference = runOnce(cfg, benches, pl);

    // Every snapshot write is torn mid-file and still published — the
    // worst-case power-cut pattern. The run itself must not notice.
    ckpt::configureProcess(dir_, 1'000);
    fault::configure("ckpt.write");
    const auto failures0 = ckpt::processStats().saveFailures.load();
    const SimResult with_faults = runOnce(cfg, benches, pl);
    fault::reset();
    expectIdentical(reference, with_faults);
    EXPECT_GT(ckpt::processStats().saveFailures.load(), failures0);
    const auto files = snapshotFiles();
    ASSERT_GT(files.size(), 0u);

    // The store now holds only torn files: the next run skips every one
    // (counted), reports a miss, and cold-starts bit-identically.
    const auto skipped0 = ckpt::processStats().corruptSkipped.load();
    const auto hits0 = ckpt::processStats().hits.load();
    const SimResult after = runOnce(cfg, benches, pl);
    expectIdentical(reference, after);
    EXPECT_EQ(ckpt::processStats().hits.load(), hits0);
    EXPECT_GE(ckpt::processStats().corruptSkipped.load(),
              skipped0 + files.size());
}

} // namespace
} // namespace smtflex
