/**
 * @file
 * Tests for the typed SMTFLEX_* environment helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"
#include "common/log.h"

namespace smtflex {
namespace {

class EnvTest : public ::testing::Test
{
  protected:
    void TearDown() override { unsetenv(kVar); }
    static constexpr const char *kVar = "SMTFLEX_ENV_TEST_VAR";
};

TEST_F(EnvTest, UnsetFallsBack)
{
    unsetenv(kVar);
    EXPECT_FALSE(envRaw(kVar).has_value());
    EXPECT_EQ(envString(kVar, "dflt"), "dflt");
    EXPECT_EQ(envU64(kVar, 77), 77u);
    EXPECT_EQ(envU32(kVar, 7), 7u);
    EXPECT_DOUBLE_EQ(envDouble(kVar, 1.5), 1.5);
    EXPECT_TRUE(envFlag(kVar, true));
    EXPECT_FALSE(envFlag(kVar, false));
}

TEST_F(EnvTest, ParsesWellFormedValues)
{
    setenv(kVar, "12345", 1);
    EXPECT_EQ(envU64(kVar, 0), 12345u);
    EXPECT_EQ(envU32(kVar, 0), 12345u);
    EXPECT_EQ(envString(kVar, ""), "12345");
    setenv(kVar, "2.75", 1);
    EXPECT_DOUBLE_EQ(envDouble(kVar, 0.0), 2.75);
}

TEST_F(EnvTest, MalformedIntegersAreFatal)
{
    for (const char *bad : {"", "abc", "12x", "-3", " 12", "1.5"}) {
        setenv(kVar, bad, 1);
        EXPECT_THROW(envU64(kVar, 0), FatalError) << "'" << bad << "'";
    }
    // Overflows 64 bits.
    setenv(kVar, "99999999999999999999999", 1);
    EXPECT_THROW(envU64(kVar, 0), FatalError);
    // Fits 64 bits but not 32.
    setenv(kVar, "4294967296", 1);
    EXPECT_THROW(envU32(kVar, 0), FatalError);
}

TEST_F(EnvTest, MalformedDoublesAreFatal)
{
    for (const char *bad : {"", "abc", "1.5x"}) {
        setenv(kVar, bad, 1);
        EXPECT_THROW(envDouble(kVar, 0.0), FatalError) << "'" << bad << "'";
    }
}

TEST(ParseTest, StrictParsersAcceptWellFormedText)
{
    // The same parsers back the env helpers, the CLI's --flag values and
    // the serve protocol's string-typed integer fields.
    EXPECT_EQ(parseU64("0", "x"), 0u);
    EXPECT_EQ(parseU64("18446744073709551615", "x"),
              18446744073709551615ull);
    EXPECT_EQ(parseU32("4294967295", "x"), 4294967295u);
    EXPECT_DOUBLE_EQ(parseDouble("-2.5e3", "x"), -2500.0);
}

TEST(ParseTest, StrictParsersRejectGarbage)
{
    for (const char *bad : {"", "abc", "12x", "-3", " 12", "1.5", "0x10"}) {
        EXPECT_THROW(parseU64(bad, "field"), FatalError)
            << "'" << bad << "'";
    }
    EXPECT_THROW(parseU64("18446744073709551616", "field"), FatalError);
    EXPECT_THROW(parseU32("4294967296", "field"), FatalError);
    for (const char *bad : {"", "abc", "1.5x", "--2"}) {
        EXPECT_THROW(parseDouble(bad, "field"), FatalError)
            << "'" << bad << "'";
    }
}

TEST(ParseTest, ErrorMessageNamesTheField)
{
    try {
        parseU64("junk", "--seed");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("--seed"), std::string::npos);
    }
}

TEST_F(EnvTest, FlagSpellings)
{
    for (const char *yes : {"1", "true", "TRUE", "on", "Yes"}) {
        setenv(kVar, yes, 1);
        EXPECT_TRUE(envFlag(kVar, false)) << yes;
    }
    for (const char *no : {"0", "false", "off", "NO", ""}) {
        setenv(kVar, no, 1);
        EXPECT_FALSE(envFlag(kVar, true)) << "'" << no << "'";
    }
    setenv(kVar, "maybe", 1);
    EXPECT_THROW(envFlag(kVar, false), FatalError);
}

} // namespace
} // namespace smtflex
