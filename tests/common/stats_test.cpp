/**
 * @file
 * Tests for means, RunningStat, Histogram and DiscreteDistribution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace smtflex {
namespace {

TEST(MeansTest, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(MeansTest, Harmonic)
{
    // hmean(1, 2) = 2 / (1 + 1/2) = 4/3.
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(MeansTest, HarmonicLeqArithmetic)
{
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<double> v;
        for (int i = 0; i < 10; ++i)
            v.push_back(0.1 + rng.nextDouble() * 10.0);
        EXPECT_LE(harmonicMean(v), arithmeticMean(v) + 1e-12);
        EXPECT_LE(geometricMean(v), arithmeticMean(v) + 1e-12);
        EXPECT_LE(harmonicMean(v), geometricMean(v) + 1e-12);
    }
}

TEST(MeansTest, WeightedArithmetic)
{
    EXPECT_DOUBLE_EQ(
        weightedArithmeticMean({1.0, 3.0}, {1.0, 3.0}), 2.5);
    // Zero weights -> 0.
    EXPECT_DOUBLE_EQ(weightedArithmeticMean({1.0}, {0.0}), 0.0);
}

TEST(MeansTest, WeightedHarmonicReducesToPlain)
{
    const std::vector<double> v = {1.0, 2.0, 4.0};
    const std::vector<double> w = {1.0, 1.0, 1.0};
    EXPECT_NEAR(weightedHarmonicMean(v, w), harmonicMean(v), 1e-12);
}

TEST(MeansTest, WeightedHarmonicIgnoresZeroWeight)
{
    EXPECT_NEAR(weightedHarmonicMean({1.0, 100.0}, {1.0, 0.0}), 1.0, 1e-12);
}

TEST(RunningStatTest, Moments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, FractionsAndClamping)
{
    Histogram h(4);
    h.add(0, 1.0);
    h.add(2, 3.0);
    h.add(9, 1.0); // clamps into bucket 4
    EXPECT_DOUBLE_EQ(h.total(), 5.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.2);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.6);
    EXPECT_DOUBLE_EQ(h.fraction(4), 0.2);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
    EXPECT_EQ(h.numBuckets(), 5u);
}

TEST(DiscreteDistributionTest, NormalisesWeights)
{
    DiscreteDistribution d({1.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(d.probability(1), 0.25);
    EXPECT_DOUBLE_EQ(d.probability(2), 0.25);
    EXPECT_DOUBLE_EQ(d.probability(3), 0.5);
    EXPECT_DOUBLE_EQ(d.probability(4), 0.0);
    EXPECT_DOUBLE_EQ(d.probability(0), 0.0);
}

TEST(DiscreteDistributionTest, Mean)
{
    DiscreteDistribution d({1.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(d.mean(), 0.25 * 1 + 0.25 * 2 + 0.5 * 3);
}

TEST(DiscreteDistributionTest, SamplingMatchesProbabilities)
{
    DiscreteDistribution d({0.1, 0.0, 0.9});
    Rng rng(99);
    int counts[4] = {0, 0, 0, 0};
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const std::size_t v = d.sample(rng);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 3u);
        ++counts[v];
    }
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.9, 0.01);
}

TEST(DiscreteDistributionTest, Mirrored)
{
    DiscreteDistribution d({0.5, 0.3, 0.2});
    const DiscreteDistribution m = d.mirrored();
    EXPECT_DOUBLE_EQ(m.probability(1), 0.2);
    EXPECT_DOUBLE_EQ(m.probability(2), 0.3);
    EXPECT_DOUBLE_EQ(m.probability(3), 0.5);
    // Mirroring twice is the identity.
    const DiscreteDistribution mm = m.mirrored();
    for (std::size_t k = 1; k <= 3; ++k)
        EXPECT_DOUBLE_EQ(mm.probability(k), d.probability(k));
}

// Property sweep: a distribution and its mirror have means summing to N+1.
class MirrorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MirrorProperty, MeanSymmetry)
{
    const int n = GetParam();
    Rng rng(1234 + n);
    std::vector<double> w;
    for (int i = 0; i < n; ++i)
        w.push_back(rng.nextDouble() + 0.01);
    DiscreteDistribution d(w);
    EXPECT_NEAR(d.mean() + d.mirrored().mean(), n + 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MirrorProperty,
                         ::testing::Values(1, 2, 3, 8, 24, 100));

} // namespace
} // namespace smtflex
