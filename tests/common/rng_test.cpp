/**
 * @file
 * Unit and property tests for the deterministic Rng.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"

namespace smtflex {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, DifferentStreamsDiffer)
{
    Rng a(42, 0), b(42, 1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, NextDoubleMeanIsHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextRangeRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextRange(bound), bound);
    }
}

TEST(RngTest, NextRangeCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolEdgeCases)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(RngTest, NextBoolProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanMatches)
{
    Rng rng(17);
    for (double mean : {1.0, 2.0, 3.5, 8.0}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += rng.nextGeometric(mean);
        EXPECT_NEAR(sum / n, mean, mean * 0.05) << "mean=" << mean;
    }
}

TEST(RngTest, GeometricMinimumIsOne)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.nextGeometric(4.0), 1u);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, LognormalMeanAndPositivity)
{
    Rng rng(29);
    const double mean = 5.0, cv = 0.5;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextLognormal(mean, cv);
        EXPECT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.03);
}

TEST(RngTest, LognormalZeroCvIsDeterministic)
{
    Rng rng(31);
    EXPECT_DOUBLE_EQ(rng.nextLognormal(3.0, 0.0), 3.0);
}

} // namespace
} // namespace smtflex
