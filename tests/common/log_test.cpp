/**
 * @file
 * Tests for the log sink redirection.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.h"

namespace smtflex {
namespace {

std::vector<std::pair<LogLevel, std::string>> captured;

void
captureSink(LogLevel level, const std::string &msg)
{
    captured.emplace_back(level, msg);
}

class LogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        captured.clear();
        setLogSink(&captureSink);
    }
    void TearDown() override { setLogSink(nullptr); }
};

TEST_F(LogTest, InformGoesToSink)
{
    inform("hello ", 42);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::kInform);
    EXPECT_EQ(captured[0].second, "hello 42");
}

TEST_F(LogTest, WarnLevel)
{
    warn("x=", 1.5);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::kWarn);
    EXPECT_EQ(captured[0].second, "x=1.5");
}

TEST_F(LogTest, FatalThrowsFatalErrorAfterSink)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::kFatal);
    EXPECT_EQ(captured[0].second, "bad config");
}

TEST_F(LogTest, PanicThrowsPanicErrorAfterSink)
{
    EXPECT_THROW(panic("bug ", 7), PanicError);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::kPanic);
    EXPECT_EQ(captured[0].second, "bug 7");
}

TEST_F(LogTest, FatalMessageCarriedInException)
{
    try {
        fatal("detail ", 3);
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "detail 3");
    }
}

TEST_F(LogTest, SinkRestoreReturnsPrevious)
{
    const LogSink prev = setLogSink(nullptr);
    EXPECT_EQ(prev, &captureSink);
    setLogSink(&captureSink);
}

} // namespace
} // namespace smtflex
