/**
 * @file
 * Tests for smtflex::fault — the configuration grammar, the determinism
 * guarantee of the decision stream, the counters and the knobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/log.h"

namespace smtflex {
namespace {

using fault::Site;

/** Every test leaves the process with injection disarmed. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(FaultTest, DisarmedNeverFires)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fault::shouldFire(Site::kIoWrite));
}

TEST_F(FaultTest, SiteNames)
{
    EXPECT_STREQ(fault::siteName(Site::kIoWrite), "io.write");
    EXPECT_STREQ(fault::siteName(Site::kIoFsync), "io.fsync");
    EXPECT_STREQ(fault::siteName(Site::kIoLoad), "io.load");
    EXPECT_STREQ(fault::siteName(Site::kNetShortRead), "net.short_read");
    EXPECT_STREQ(fault::siteName(Site::kNetShortWrite), "net.short_write");
    EXPECT_STREQ(fault::siteName(Site::kNetEagain), "net.eagain");
    EXPECT_STREQ(fault::siteName(Site::kNetDisconnect), "net.disconnect");
    EXPECT_STREQ(fault::siteName(Site::kExecThrow), "exec.throw");
    EXPECT_STREQ(fault::siteName(Site::kExecStall), "exec.stall");
}

TEST_F(FaultTest, BareSiteAlwaysFires)
{
    fault::configure("io.write");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(fault::shouldFire(Site::kIoWrite));
    EXPECT_EQ(fault::ops(Site::kIoWrite), 10u);
    EXPECT_EQ(fault::fires(Site::kIoWrite), 10u);
    // Unconfigured sites stay silent.
    EXPECT_FALSE(fault::shouldFire(Site::kIoFsync));
}

TEST_F(FaultTest, AfterSkipsLeadingOps)
{
    fault::configure("exec.throw:after=3");
    std::vector<bool> draws;
    for (int i = 0; i < 6; ++i)
        draws.push_back(fault::shouldFire(Site::kExecThrow));
    EXPECT_EQ(draws, (std::vector<bool>{false, false, false, true, true,
                                        true}));
}

TEST_F(FaultTest, LimitCapsFires)
{
    fault::configure("net.disconnect:limit=2");
    unsigned fired = 0;
    for (int i = 0; i < 20; ++i)
        fired += fault::shouldFire(Site::kNetDisconnect) ? 1 : 0;
    EXPECT_EQ(fired, 2u);
    EXPECT_EQ(fault::fires(Site::kNetDisconnect), 2u);
    EXPECT_EQ(fault::ops(Site::kNetDisconnect), 20u);
}

TEST_F(FaultTest, ParamReturnsConfiguredOrFallback)
{
    EXPECT_EQ(fault::param(Site::kExecStall, 50), 50u);
    fault::configure("exec.stall:param=7");
    EXPECT_EQ(fault::param(Site::kExecStall, 50), 7u);
    fault::configure("exec.stall:p=1");
    EXPECT_EQ(fault::param(Site::kExecStall, 50), 50u); // param unset
}

TEST_F(FaultTest, ProbabilityStreamIsDeterministic)
{
    const auto draw = [](const std::string &spec) {
        fault::configure(spec);
        std::vector<bool> draws;
        for (int i = 0; i < 200; ++i)
            draws.push_back(fault::shouldFire(Site::kIoWrite));
        return draws;
    };
    const auto a = draw("io.write:p=0.3;seed=42");
    const auto b = draw("io.write:p=0.3;seed=42");
    EXPECT_EQ(a, b); // reconfiguring restarts the identical stream
    const auto c = draw("io.write:p=0.3;seed=43");
    EXPECT_NE(a, c); // a different seed draws a different stream
    // p = 0.3 over 200 draws: loose sanity band, not a statistics test.
    const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 20);
    EXPECT_LT(fired, 140);
}

TEST_F(FaultTest, SitesDrawIndependentStreams)
{
    fault::configure("io.write:p=0.5;seed=9,io.load:p=0.5;seed=9");
    std::vector<bool> w, l;
    for (int i = 0; i < 100; ++i) {
        w.push_back(fault::shouldFire(Site::kIoWrite));
        l.push_back(fault::shouldFire(Site::kIoLoad));
    }
    EXPECT_NE(w, l); // the site index salts the hash
}

TEST_F(FaultTest, EmptySpecDisarms)
{
    fault::configure("net.eagain");
    EXPECT_TRUE(fault::shouldFire(Site::kNetEagain));
    fault::configure("");
    EXPECT_FALSE(fault::shouldFire(Site::kNetEagain));
    EXPECT_EQ(fault::ops(Site::kNetEagain), 0u); // counters restarted
}

TEST_F(FaultTest, ResetDisarmsAndZeroes)
{
    fault::configure("io.write");
    (void)fault::shouldFire(Site::kIoWrite);
    fault::reset();
    EXPECT_FALSE(fault::shouldFire(Site::kIoWrite));
    EXPECT_EQ(fault::ops(Site::kIoWrite), 0u);
    EXPECT_EQ(fault::fires(Site::kIoWrite), 0u);
}

TEST_F(FaultTest, MalformedSpecsAreFatal)
{
    EXPECT_THROW(fault::configure("io.wrong"), FatalError);
    EXPECT_THROW(fault::configure("io.write:p"), FatalError);
    EXPECT_THROW(fault::configure("io.write:p=abc"), FatalError);
    EXPECT_THROW(fault::configure("io.write:frequency=2"), FatalError);
    EXPECT_THROW(fault::configure(","), FatalError);
}

} // namespace
} // namespace smtflex
