/**
 * @file
 * Serve warm-start e2e: a server with SMTFLEX_CKPT on snapshots the chip
 * state of a run request; a later request sharing the resume-key prefix
 * (same design/workload/warmup/seed, larger budget) clone-resumes the
 * warmed state instead of cold-starting. The reuse is observable through
 * the ckpt.* counters in the stats op — and the warmed answer is
 * byte-identical to the cold one.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "ckpt/store.h"
#include "serve/client.h"
#include "serve/commands.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "study/study_engine.h"

namespace smtflex {
namespace serve {
namespace {

Json
runDoc(std::uint64_t budget)
{
    Json doc = Json::object();
    doc.set("op", Json::string("run"));
    doc.set("design", Json::string("4B"));
    Json workload = Json::array();
    workload.push(Json::string("mcf"));
    doc.set("workload", std::move(workload));
    doc.set("budget", Json::number(budget));
    doc.set("warmup", Json::number(std::uint64_t{3'000}));
    doc.set("seed", Json::number(std::uint64_t{42}));
    return doc;
}

TEST(ServeWarmStartTest, LargerBudgetRunWarmStartsFromSnapshots)
{
    const std::string dir =
        ::testing::TempDir() + "smtflex_serve_warm_start";
    std::filesystem::remove_all(dir);

    // Cold references, computed before checkpointing is turned on.
    ckpt::configureProcess("", 1);
    StudyOptions study;
    study.cachePath = "";
    StudyEngine reference(study);
    const std::string expected_short =
        runText(reference, parseRequest(runDoc(12'000)).run);
    StudyEngine reference_long(study);
    const std::string expected_long =
        runText(reference_long, parseRequest(runDoc(24'000)).run);

    // The server under test, with snapshots every 5k cycles.
    ckpt::configureProcess(dir, 5'000);
    ServerOptions options;
    options.port = 0;
    options.study = study;
    Server server(std::move(options));
    server.bind();
    std::thread runner([&] { server.run(); });

    Client client;
    client.connect("127.0.0.1", server.port());

    const auto hits0 = ckpt::processStats().hits.load();
    const auto saves0 = ckpt::processStats().saves.load();

    // Request 1 populates the snapshot store while it runs.
    const Json first = client.call(runDoc(12'000));
    ASSERT_TRUE(first.at("ok").asBool());
    EXPECT_EQ(first.at("output").asString(), expected_short);
    EXPECT_GT(ckpt::processStats().saves.load(), saves0);

    // Request 2 shares the key prefix (only the budget grew): it must
    // resume from request 1's snapshots and still answer byte-identically.
    const Json second = client.call(runDoc(24'000));
    ASSERT_TRUE(second.at("ok").asBool());
    EXPECT_EQ(second.at("output").asString(), expected_long);
    EXPECT_GT(ckpt::processStats().hits.load(), hits0);

    // The reuse is operator-visible through the stats op.
    Json statsReq = Json::object();
    statsReq.set("op", Json::string("stats"));
    const Json statsReply = client.call(statsReq);
    ASSERT_TRUE(statsReply.at("ok").asBool());
    const Json &stats = statsReply.at("stats");
    ASSERT_TRUE(stats.has("ckpt.hits"));
    EXPECT_GE(stats.at("ckpt.hits").asU64(), 1u);
    ASSERT_TRUE(stats.has("ckpt.saves"));
    EXPECT_GT(stats.at("ckpt.saves").asU64(), 0u);

    client.close();
    server.requestStop();
    runner.join();

    ckpt::resetProcess();
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace serve
} // namespace smtflex
