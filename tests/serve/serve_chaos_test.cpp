/**
 * @file
 * Chaos tests of the serve layer: a client that retries through injected
 * network faults must observe byte-identical responses, a server must
 * survive every loadgen --chaos mode and keep answering well-formed
 * requests, per-op timeouts must fire, and the stats op must surface the
 * result cache's corruption counter.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/log.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "study/study_engine.h"

namespace smtflex {
namespace serve {
namespace {

StudyOptions
chaosStudy()
{
    StudyOptions study;
    study.budget = 2'000;
    study.warmup = 500;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

class E2eServer
{
  public:
    explicit E2eServer(ServerOptions options)
    {
        options.port = 0;
        server_ = std::make_unique<Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~E2eServer() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<Server> server_;
    std::thread thread_;
};

class ServeChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

Json
pingRequest(std::uint64_t id)
{
    Json doc = Json::object();
    doc.set("op", Json::string("ping"));
    doc.set("id", Json::number(id));
    return doc;
}

TEST_F(ServeChaosTest, RetryingClientSeesByteIdenticalResponses)
{
    ServerOptions options;
    options.study = chaosStudy();
    options.queueCapacity = 64;
    E2eServer ts(options);

    constexpr unsigned kRequests = 24;

    // Fault-free reference responses.
    std::vector<std::string> expected;
    {
        Client clean;
        clean.connect("127.0.0.1", ts.port());
        for (unsigned i = 0; i < kRequests; ++i)
            expected.push_back(clean.call(pingRequest(i)).dump());
    }

    // Short reads/writes, EAGAIN storms (both sides of the loopback) and
    // a few mid-frame disconnects (client side). Requests are idempotent,
    // so the retrying client must end up with the exact same bytes.
    fault::configure("net.short_read:p=0.3;seed=2,"
                     "net.short_write:p=0.3;seed=3,"
                     "net.eagain:p=0.2;seed=4,"
                     "net.disconnect:p=0.25;seed=5;limit=4");
    Client chaotic;
    RetryPolicy retry;
    retry.maxRetries = 10;
    retry.backoffBaseMs = 1;
    retry.backoffCapMs = 8;
    chaotic.setRetryPolicy(retry);
    chaotic.connect("127.0.0.1", ts.port());
    for (unsigned i = 0; i < kRequests; ++i)
        EXPECT_EQ(chaotic.call(pingRequest(i)).dump(), expected[i])
            << "request " << i;
    const std::uint64_t disconnects =
        fault::fires(fault::Site::kNetDisconnect);
    fault::reset();

    // The chaos was real: frames were clamped and connections torn.
    EXPECT_GE(disconnects, 1u);
    EXPECT_GE(chaotic.reconnects(), disconnects);
    ts.stop();
}

TEST_F(ServeChaosTest, PerOpTimeoutFailsInsteadOfHangingForever)
{
    // A listener that accepts but never answers: receive() must give up
    // after the op timeout, not block the test forever.
    const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 1), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);

    Client client;
    RetryPolicy retry;
    retry.opTimeoutMs = 50;
    client.setRetryPolicy(retry);
    client.connect("127.0.0.1", ntohs(addr.sin_port));
    client.send(pingRequest(1));
    EXPECT_THROW(client.receive(), FatalError);
    EXPECT_FALSE(client.connected()); // the stream position is unusable
    ::close(listener);
}

TEST_F(ServeChaosTest, ConnectTimeoutBoundsTheHandshake)
{
    // A listener whose accept queue is full: further handshakes get no
    // SYN-ACK and a blocking connect() would hang. With a connect
    // timeout the client must give up quickly instead — this is what
    // lets a dist coordinator probe a black-holed backend without
    // stalling the fleet.
    const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 0), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const std::uint16_t port = ntohs(addr.sin_port);

    // Fill the accept queue (never accept()ed) so the victim's SYN is
    // dropped. Backlog semantics vary, so over-fill generously with
    // fire-and-forget non-blocking connects.
    std::vector<int> fillers;
    for (int i = 0; i < 8; ++i) {
        const int fd =
            ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                     0);
        ASSERT_GE(fd, 0);
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
        fillers.push_back(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    Client client;
    RetryPolicy retry;
    retry.connectTimeoutMs = 100;
    client.setRetryPolicy(retry);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(client.connect("127.0.0.1", port), FatalError);
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
    // Either the timeout fired (~100 ms) or the kernel refused outright;
    // both are bounded. A blocking-connect hang (seconds of SYN
    // retransmits) is the failure mode this guards against.
    EXPECT_LT(elapsed.count(), 2'000);
    EXPECT_FALSE(client.connected());

    for (const int fd : fillers)
        ::close(fd);
    ::close(listener);
}

TEST_F(ServeChaosTest, StatsReportCorruptCacheLines)
{
    // A cache with one mangled line: the load skips and counts it, and
    // the stats op surfaces the counter to operators.
    const std::string cachePath =
        ::testing::TempDir() + "smtflex_serve_chaos_cache.txt";
    {
        std::ofstream out(cachePath, std::ios::trunc);
        out << "good|1 2 3\n";
        out << "garbage line without a separator\n";
    }
    ServerOptions options;
    options.study = chaosStudy();
    options.study.cachePath = cachePath;
    E2eServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());
    Json req = Json::object();
    req.set("op", Json::string("stats"));
    const Json reply = client.call(req);
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("stats").at("result_cache_corrupt_lines").asU64(),
              1u);
    ts.stop();
    std::remove(cachePath.c_str());
    for (std::size_t i = 0; i < 16; ++i) {
        std::ostringstream os;
        os << cachePath << ".shard-" << (i < 10 ? "0" : "") << i;
        std::remove(os.str().c_str());
    }
}

/** One loadgen run in the given chaos mode; the server must stay up and
 * every well-formed request must eventually succeed. */
void
runChaosMode(const std::string &mode)
{
    ServerOptions options;
    options.study = chaosStudy();
    options.queueCapacity = 64;
    E2eServer ts(options);

    LoadGenOptions load;
    load.port = ts.port();
    load.connections = 4;
    load.requestsPerConnection = 6;
    load.seed = 17;
    load.mix = "ping=3,run=1";
    load.distinct = 2;
    load.budget = 2'000;
    load.warmup = 500;
    load.chaos = mode;
    load.chaosEvery = 2;
    load.retry.maxRetries = 6;
    load.retry.backoffBaseMs = 1;
    load.retry.backoffCapMs = 16;

    const LoadGenReport report = runLoadGen(load);
    EXPECT_EQ(report.sent,
              std::uint64_t{load.connections} * load.requestsPerConnection)
        << report.summary();
    EXPECT_EQ(report.ok, report.sent) << report.summary();
    EXPECT_EQ(report.otherErrors, 0u) << report.summary();
    EXPECT_GT(report.chaosEvents, 0u) << report.summary();

    // The server shrugged it off: a fresh, well-behaved client still gets
    // a proper answer.
    Client after;
    after.connect("127.0.0.1", ts.port());
    const Json pong = after.call(pingRequest(999));
    EXPECT_TRUE(pong.at("ok").asBool());
    ts.stop();
}

TEST_F(ServeChaosTest, ServerSurvivesDisconnectingClients)
{
    runChaosMode("disconnect");
}

TEST_F(ServeChaosTest, ServerSurvivesPartialFrameClients)
{
    runChaosMode("partial-frame");
}

TEST_F(ServeChaosTest, ServerSurvivesGarbageSpewingClients)
{
    runChaosMode("garbage");
}

} // namespace
} // namespace serve
} // namespace smtflex
