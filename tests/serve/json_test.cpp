/**
 * @file
 * Tests for the serve JSON value type: strict parsing, canonical
 * serialization, and the typed accessors the protocol layer relies on.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/log.h"
#include "serve/json.h"

namespace smtflex {
namespace serve {
namespace {

TEST(JsonTest, ScalarRoundTrips)
{
    EXPECT_EQ(Json::parse("null").dump(), "null");
    EXPECT_EQ(Json::parse("true").dump(), "true");
    EXPECT_EQ(Json::parse("false").dump(), "false");
    EXPECT_EQ(Json::parse("42").dump(), "42");
    EXPECT_EQ(Json::parse("-17").dump(), "-17");
    EXPECT_EQ(Json::parse("2.5").dump(), "2.5");
    EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
}

TEST(JsonTest, CanonicalObjectOrderIsSorted)
{
    const Json doc = Json::parse("{\"zebra\":1,\"alpha\":2,\"mid\":3}");
    EXPECT_EQ(doc.dump(), "{\"alpha\":2,\"mid\":3,\"zebra\":1}");
    // Semantically equal documents serialize identically regardless of
    // member order — the property the coalescing keys depend on.
    const Json other = Json::parse("{\"mid\":3,\"alpha\":2,\"zebra\":1}");
    EXPECT_EQ(doc.dump(), other.dump());
}

TEST(JsonTest, NestedStructuresRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
    EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(JsonTest, StringEscapes)
{
    const Json doc = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\"");
    EXPECT_EQ(doc.asString(), "a\"b\\c\n\tA");
    // Control characters re-escape on output.
    EXPECT_EQ(Json::parse("\"x\\u0001y\"").dump(), "\"x\\u0001y\"");
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8)
{
    // U+1F600 as a surrogate pair -> 4-byte UTF-8 sequence.
    const Json doc = Json::parse("\"\\uD83D\\uDE00\"");
    EXPECT_EQ(doc.asString(), "\xF0\x9F\x98\x80");
    // A lone high surrogate is malformed.
    EXPECT_THROW(Json::parse("\"\\uD83D\""), FatalError);
}

TEST(JsonTest, WhitespaceTolerated)
{
    const Json doc = Json::parse(" { \"a\" : [ 1 , 2 ] } ");
    EXPECT_EQ(doc.dump(), "{\"a\":[1,2]}");
}

TEST(JsonTest, MalformedDocumentsAreFatal)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
          "+1", "\"unterminated", "{\"a\":1}extra", "[1] [2]", "nan",
          "{\"a\":1,}", "[1,]", "'single'"}) {
        EXPECT_THROW(Json::parse(bad), FatalError) << "'" << bad << "'";
    }
}

TEST(JsonTest, DepthLimitIsFatal)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    for (int i = 0; i < 100; ++i)
        deep += ']';
    EXPECT_THROW(Json::parse(deep), FatalError);
}

TEST(JsonTest, TypedAccessorsRejectWrongTypes)
{
    const Json doc = Json::parse("{\"n\":1,\"s\":\"x\",\"b\":true}");
    EXPECT_THROW(doc.at("n").asString(), FatalError);
    EXPECT_THROW(doc.at("s").asNumber(), FatalError);
    EXPECT_THROW(doc.at("b").asU64(), FatalError);
    EXPECT_THROW(doc.at("missing"), FatalError);
    EXPECT_TRUE(doc.has("n"));
    EXPECT_FALSE(doc.has("missing"));
}

TEST(JsonTest, U64Accessor)
{
    EXPECT_EQ(Json::parse("12345").asU64(), 12345u);
    EXPECT_EQ(Json::parse("0").asU64(), 0u);
    EXPECT_THROW(Json::parse("-1").asU64(), FatalError);
    EXPECT_THROW(Json::parse("1.5").asU64(), FatalError);
    // Beyond 2^53 doubles lose integer precision.
    EXPECT_THROW(Json::parse("18446744073709551615").asU64(), FatalError);
}

TEST(JsonTest, BuilderProducesParseableText)
{
    Json doc = Json::object();
    doc.set("op", Json::string("run"));
    Json workload = Json::array();
    workload.push(Json::string("mcf"));
    workload.push(Json::string("tonto"));
    doc.set("workload", std::move(workload));
    doc.set("budget", Json::number(std::uint64_t{12000}));
    doc.set("ok", Json::boolean(true));

    const Json back = Json::parse(doc.dump());
    EXPECT_EQ(back.at("op").asString(), "run");
    EXPECT_EQ(back.at("workload").size(), 2u);
    EXPECT_EQ(back.at("workload").at(1).asString(), "tonto");
    EXPECT_EQ(back.at("budget").asU64(), 12000u);
    EXPECT_TRUE(back.at("ok").asBool());
    EXPECT_EQ(back.dump(), doc.dump());
}

TEST(JsonTest, EscapeHelper)
{
    EXPECT_EQ(Json::escape("plain"), "plain");
    EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(Json::escape("a\nb"), "a\\nb");
}

TEST(JsonTest, ArbitraryTextSurvivesStringRoundTrip)
{
    // The serve responses embed whole CLI reports as JSON strings; any
    // byte content must survive a serialize/parse round trip.
    std::string text = "design 4B, 2 programs\n\tSTP 2.146 | \"ANTT\"\n";
    text.push_back('\x01');
    Json doc = Json::object();
    doc.set("output", Json::string(text));
    EXPECT_EQ(Json::parse(doc.dump()).at("output").asString(), text);
}

} // namespace
} // namespace serve
} // namespace smtflex
