/**
 * @file
 * Federation op tests: cache_pull / cache_push / sweep_chunk parsing
 * (including malformed and hostile payloads), id echo, oversized-frame
 * rejection, and the pull/push round trip through a live server — a
 * pushed record must come back bit-exact, doubles included.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace smtflex {
namespace serve {
namespace {

StudyOptions
fastStudy()
{
    StudyOptions study;
    study.budget = 1'500;
    study.warmup = 300;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

class TestServer
{
  public:
    explicit TestServer(ServerOptions options)
    {
        options.port = 0;
        server_ = std::make_unique<Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestServer() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<Server> server_;
    std::thread thread_;
};

Json
pullDoc(std::vector<std::string> keys)
{
    Json doc = Json::object();
    doc.set("op", Json::string("cache_pull"));
    Json list = Json::array();
    for (const auto &key : keys)
        list.push(Json::string(key));
    doc.set("keys", std::move(list));
    return doc;
}

Json
pushDoc(const std::string &key, std::vector<double> values)
{
    Json records = Json::object();
    Json list = Json::array();
    for (const double v : values)
        list.push(Json::number(v));
    records.set(key, std::move(list));
    Json doc = Json::object();
    doc.set("op", Json::string("cache_push"));
    doc.set("records", std::move(records));
    return doc;
}

// ---------------------------------------------------------------- parse

TEST(CacheOpsParseTest, CachePullRoundTripsKeys)
{
    const Request req =
        parseRequest(Json::parse(pullDoc({"iso;mcf;big", "k2"}).dump()));
    EXPECT_EQ(req.op, Op::kCachePull);
    ASSERT_EQ(req.cachePull.keys.size(), 2u);
    EXPECT_EQ(req.cachePull.keys[0], "iso;mcf;big");
    EXPECT_EQ(req.cachePull.keys[1], "k2");
    // Federation ops are never cached or coalesced.
    EXPECT_EQ(req.canonicalKey(), "");
}

TEST(CacheOpsParseTest, CachePushRoundTripsRecords)
{
    const Request req = parseRequest(
        Json::parse(pushDoc("some;key", {1.5, -2.25, 0.1}).dump()));
    EXPECT_EQ(req.op, Op::kCachePush);
    ASSERT_EQ(req.cachePush.records.size(), 1u);
    EXPECT_EQ(req.cachePush.records[0].first, "some;key");
    EXPECT_EQ(req.cachePush.records[0].second,
              (std::vector<double>{1.5, -2.25, 0.1}));
    EXPECT_EQ(req.canonicalKey(), "");
}

TEST(CacheOpsParseTest, SweepChunkParsesSweepFieldsAndRows)
{
    Json doc = Json::object();
    doc.set("op", Json::string("sweep_chunk"));
    doc.set("design", Json::string("2B4m"));
    doc.set("no_smt", Json::boolean(true));
    Json rows = Json::array();
    rows.push(Json::number(std::uint64_t{1}));
    rows.push(Json::number(std::uint64_t{4}));
    doc.set("rows", std::move(rows));

    const Request req = parseRequest(Json::parse(doc.dump()));
    EXPECT_EQ(req.op, Op::kSweepChunk);
    EXPECT_EQ(req.chunk.sweep.design, "2B4m");
    EXPECT_TRUE(req.chunk.sweep.noSmt);
    EXPECT_EQ(req.chunk.rows, (std::vector<std::uint32_t>{1, 4}));
    // Unlike pull/push, a chunk is a deterministic simulation — it IS
    // cacheable and coalesceable, so it has a canonical key.
    EXPECT_NE(req.canonicalKey(), "");
    const Request again =
        parseRequest(Json::parse(req.canonicalKey()));
    EXPECT_EQ(again.canonicalKey(), req.canonicalKey());
}

TEST(CacheOpsParseTest, MalformedFederationPayloadsAreFatal)
{
    // cache_pull: keys missing, empty, or not strings.
    EXPECT_THROW(
        parseRequest(Json::parse("{\"op\":\"cache_pull\"}")),
        FatalError);
    EXPECT_THROW(
        parseRequest(Json::parse("{\"op\":\"cache_pull\",\"keys\":[]}")),
        FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"cache_pull\",\"keys\":[7]}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"cache_pull\",\"keys\":\"k\"}")),
                 FatalError);

    // cache_push: records missing, not an object, or garbage values.
    EXPECT_THROW(
        parseRequest(Json::parse("{\"op\":\"cache_push\"}")),
        FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"cache_push\",\"records\":[1,2]}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"cache_push\",\"records\":{\"k\":"
                     "[\"NaN\"]}}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"cache_push\",\"records\":{\"k\":3}}")),
                 FatalError);

    // sweep_chunk: rows missing, empty, zero, or non-numeric.
    EXPECT_THROW(
        parseRequest(Json::parse("{\"op\":\"sweep_chunk\"}")),
        FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"sweep_chunk\",\"rows\":[]}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"sweep_chunk\",\"rows\":[0]}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"sweep_chunk\",\"rows\":[\"x\"]}")),
                 FatalError);
}

// --------------------------------------------------------------- server

TEST(CacheOpsServerTest, PushThenPullRoundTripsBitExactDoubles)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);
    Client client;
    client.connect("127.0.0.1", ts.port());

    // Values chosen to need all 17 significant digits.
    const std::vector<double> values{1.0 / 3.0, 6.02214076e23,
                                     -0.1234567890123456789, 4096.0};
    Json push = pushDoc("dist;roundtrip;key", values);
    push.set("id", Json::number(std::uint64_t{7}));
    const Json pushed = client.call(push);
    ASSERT_TRUE(pushed.at("ok").asBool());
    EXPECT_EQ(pushed.at("id").asU64(), 7u); // id echo on inline ops
    EXPECT_EQ(pushed.at("stored").asU64(), 1u);
    EXPECT_EQ(pushed.at("rejected").asU64(), 0u);

    Json pull = pullDoc({"dist;roundtrip;key", "absent;key"});
    pull.set("id", Json::number(std::uint64_t{8}));
    const Json reply = client.call(pull);
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("id").asU64(), 8u);
    EXPECT_EQ(reply.at("misses").asU64(), 1u);
    const Json &records = reply.at("records");
    EXPECT_FALSE(records.has("absent;key"));
    ASSERT_TRUE(records.has("dist;roundtrip;key"));
    const auto &got = records.at("dist;roundtrip;key").elements();
    ASSERT_EQ(got.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(got[i].asNumber(), values[i]) << "value " << i;
}

TEST(CacheOpsServerTest, StructurallyEmptyRecordsAreRejectedNotFatal)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);
    Client client;
    client.connect("127.0.0.1", ts.port());

    // An empty key is storable garbage; the server counts it rejected
    // and keeps serving this connection.
    Json records = Json::object();
    Json list = Json::array();
    list.push(Json::number(1.0));
    records.set("", std::move(list));
    Json good = Json::array();
    good.push(Json::number(2.0));
    records.set("fine", std::move(good));
    Json doc = Json::object();
    doc.set("op", Json::string("cache_push"));
    doc.set("records", std::move(records));

    const Json reply = client.call(doc);
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("stored").asU64(), 1u);
    EXPECT_EQ(reply.at("rejected").asU64(), 1u);

    // Connection still healthy.
    const Json pulled = client.call(pullDoc({"fine"}));
    ASSERT_TRUE(pulled.at("ok").asBool());
    EXPECT_EQ(pulled.at("misses").asU64(), 0u);
}

TEST(CacheOpsServerTest, MalformedFederationRequestsGetBadRequestReply)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);
    Client client;
    client.connect("127.0.0.1", ts.port());

    const Json pull = client.call(
        Json::parse("{\"op\":\"cache_pull\",\"id\":3,\"keys\":[]}"));
    ASSERT_FALSE(pull.at("ok").asBool());
    EXPECT_EQ(pull.at("error").asString(), "bad_request");
    EXPECT_EQ(pull.at("id").asU64(), 3u); // id echoes even on errors

    const Json push = client.call(Json::parse(
        "{\"op\":\"cache_push\",\"id\":4,\"records\":{\"k\":[true]}}"));
    ASSERT_FALSE(push.at("ok").asBool());
    EXPECT_EQ(push.at("error").asString(), "bad_request");
    EXPECT_EQ(push.at("id").asU64(), 4u);

    const Json chunk = client.call(Json::parse(
        "{\"op\":\"sweep_chunk\",\"id\":5,\"design\":\"no-such\","
        "\"rows\":[1]}"));
    ASSERT_FALSE(chunk.at("ok").asBool());
    EXPECT_EQ(chunk.at("error").asString(), "bad_request");
    EXPECT_EQ(chunk.at("id").asU64(), 5u);
}

TEST(CacheOpsServerTest, OversizedPushFrameIsRefusedWithoutKillingServer)
{
    ServerOptions options;
    options.study = fastStudy();
    options.maxFrame = 4'096;
    TestServer ts(options);
    Client client;
    client.connect("127.0.0.1", ts.port());

    // One giant record: the frame exceeds maxFrame, the server answers
    // frame_too_large and drops the connection (the length prefix is
    // hostile input — it cannot stream-skip safely).
    Json doc = pushDoc("big", std::vector<double>(4'096, 1.0));
    const std::string frame = encodeFrame(doc.dump());
    ASSERT_GT(frame.size(), 4'096u);
    client.sendBytes(frame.data(), frame.size());
    const Json reply = client.receive();
    ASSERT_FALSE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("error").asString(), "frame_too_large");

    // The server survives for a fresh connection.
    Client again;
    again.connect("127.0.0.1", ts.port());
    const Json pong =
        again.call(Json::parse("{\"op\":\"ping\",\"id\":1}"));
    EXPECT_TRUE(pong.at("ok").asBool());
}

} // namespace
} // namespace serve
} // namespace smtflex
