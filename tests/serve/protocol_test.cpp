/**
 * @file
 * Tests for the serve wire protocol: frame encoding/decoding under
 * arbitrary fragmentation, oversized-frame poisoning, request parsing and
 * validation, and canonical coalescing keys.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/log.h"
#include "serve/protocol.h"

namespace smtflex {
namespace serve {
namespace {

TEST(FrameTest, EncodePrefixesBigEndianLength)
{
    const std::string frame = encodeFrame("abc");
    ASSERT_EQ(frame.size(), 7u);
    EXPECT_EQ(frame[0], '\0');
    EXPECT_EQ(frame[1], '\0');
    EXPECT_EQ(frame[2], '\0');
    EXPECT_EQ(frame[3], '\x03');
    EXPECT_EQ(frame.substr(4), "abc");
}

TEST(FrameTest, DecodeWholeFrame)
{
    FrameDecoder decoder;
    const std::string frame = encodeFrame("{\"op\":\"ping\"}");
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload, "{\"op\":\"ping\"}");
    EXPECT_FALSE(decoder.next(payload));
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, DecodeByteByByte)
{
    // A frame arriving in 1-byte reads must still decode (TCP gives no
    // fragmentation guarantees).
    FrameDecoder decoder;
    const std::string frame = encodeFrame("hello world");
    std::string payload;
    for (std::size_t i = 0; i < frame.size(); ++i) {
        EXPECT_FALSE(decoder.next(payload)) << "at byte " << i;
        decoder.feed(frame.data() + i, 1);
    }
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload, "hello world");
}

TEST(FrameTest, DecodeCoalescedFrames)
{
    // Several frames in one read, plus a partial trailer.
    FrameDecoder decoder;
    const std::string first = encodeFrame("one");
    const std::string second = encodeFrame("two");
    const std::string third = encodeFrame("three");
    std::string stream = first + second + third.substr(0, 5);
    decoder.feed(stream.data(), stream.size());

    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload, "one");
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload, "two");
    EXPECT_FALSE(decoder.next(payload));

    const std::string rest = third.substr(5);
    decoder.feed(rest.data(), rest.size());
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload, "three");
}

TEST(FrameTest, EmptyPayloadIsAFrame)
{
    FrameDecoder decoder;
    const std::string frame = encodeFrame("");
    decoder.feed(frame.data(), frame.size());
    std::string payload = "sentinel";
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload, "");
}

TEST(FrameTest, OversizedFramePoisonsTheDecoder)
{
    FrameDecoder decoder(16);
    const std::string frame = encodeFrame(std::string(17, 'x'));
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    EXPECT_THROW(decoder.next(payload), FatalError);
    // Poisoned: every later next() fails too, even after more bytes.
    const std::string ok = encodeFrame("ok");
    decoder.feed(ok.data(), ok.size());
    EXPECT_THROW(decoder.next(payload), FatalError);
}

TEST(FrameTest, MaxFrameBoundaryIsExact)
{
    FrameDecoder decoder(8);
    const std::string frame = encodeFrame(std::string(8, 'y'));
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    EXPECT_EQ(payload.size(), 8u);
}

// ---- request parsing ----

TEST(ParseRequestTest, PingAndStats)
{
    const Request ping = parseRequest(Json::parse("{\"op\":\"ping\"}"));
    EXPECT_EQ(ping.op, Op::kPing);
    EXPECT_FALSE(ping.hasId);
    EXPECT_TRUE(ping.canonicalKey().empty());

    const Request stats = parseRequest(Json::parse("{\"op\":\"stats\"}"));
    EXPECT_EQ(stats.op, Op::kStats);
}

TEST(ParseRequestTest, RunFieldsAndDefaults)
{
    const Request req = parseRequest(Json::parse(
        "{\"op\":\"run\",\"design\":\"2B4m\","
        "\"workload\":[\"mcf\",\"hmmer\"],\"budget\":5000,"
        "\"no_smt\":true,\"id\":9,\"deadline_ms\":250}"));
    EXPECT_EQ(req.op, Op::kRun);
    EXPECT_TRUE(req.hasId);
    EXPECT_EQ(req.id, 9u);
    EXPECT_EQ(req.deadlineMs, 250u);
    EXPECT_EQ(req.run.design, "2B4m");
    ASSERT_EQ(req.run.workload.size(), 2u);
    EXPECT_EQ(req.run.budget, 5000u);
    EXPECT_EQ(req.run.warmup, 3000u); // default
    EXPECT_EQ(req.run.seed, 42u);     // default
    EXPECT_TRUE(req.run.noSmt);
}

TEST(ParseRequestTest, IntegerFieldsAcceptDecimalStrings)
{
    // Protocol integers route through the strict common/env.h parsers, so
    // string-typed numbers work but garbage is a validation error.
    const Request req = parseRequest(Json::parse(
        "{\"op\":\"run\",\"workload\":[\"mcf\"],\"budget\":\"7000\","
        "\"seed\":\"1\"}"));
    EXPECT_EQ(req.run.budget, 7000u);
    EXPECT_EQ(req.run.seed, 1u);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"run\",\"workload\":[\"mcf\"],"
                     "\"budget\":\"7k\"}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"run\",\"workload\":[\"mcf\"],"
                     "\"budget\":\"\"}")),
                 FatalError);
}

TEST(ParseRequestTest, ValidationRejectsBadRequests)
{
    // Unknown op.
    EXPECT_THROW(parseRequest(Json::parse("{\"op\":\"fly\"}")), FatalError);
    // Missing op.
    EXPECT_THROW(parseRequest(Json::parse("{}")), FatalError);
    // Not an object.
    EXPECT_THROW(parseRequest(Json::parse("[1,2]")), FatalError);
    // Unknown design.
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"run\",\"design\":\"99Z\","
                     "\"workload\":[\"mcf\"]}")),
                 FatalError);
    // Unknown benchmark.
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"run\",\"workload\":[\"nosuch\"]}")),
                 FatalError);
    // Empty workload.
    EXPECT_THROW(
        parseRequest(Json::parse("{\"op\":\"run\",\"workload\":[]}")),
        FatalError);
    // sweep: bench and het are mutually exclusive.
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"sweep\",\"bench\":\"mcf\",\"het\":true}")),
                 FatalError);
}

TEST(ParseRequestTest, CanonicalKeyIgnoresIdAndDeadline)
{
    const char *base =
        "{\"op\":\"run\",\"workload\":[\"mcf\"],\"budget\":4000";
    const Request a =
        parseRequest(Json::parse(std::string(base) + ",\"id\":1}"));
    const Request b = parseRequest(Json::parse(
        std::string(base) + ",\"id\":2,\"deadline_ms\":100}"));
    EXPECT_FALSE(a.canonicalKey().empty());
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
}

TEST(ParseRequestTest, CanonicalKeyFillsDefaults)
{
    // Explicitly passing a default value and omitting it name the same
    // simulation, so they must share a key (and thus a cache entry).
    const Request implicit = parseRequest(
        Json::parse("{\"op\":\"run\",\"workload\":[\"mcf\"]}"));
    const Request explicitReq = parseRequest(Json::parse(
        "{\"op\":\"run\",\"workload\":[\"mcf\"],\"budget\":12000,"
        "\"warmup\":3000,\"seed\":42,\"design\":\"4B\"}"));
    EXPECT_EQ(implicit.canonicalKey(), explicitReq.canonicalKey());
}

TEST(ParseRequestTest, CanonicalKeySeparatesDifferentWork)
{
    const Request a = parseRequest(
        Json::parse("{\"op\":\"run\",\"workload\":[\"mcf\"]}"));
    const Request b = parseRequest(
        Json::parse("{\"op\":\"run\",\"workload\":[\"hmmer\"]}"));
    const Request c = parseRequest(
        Json::parse("{\"op\":\"isolated\",\"benches\":[\"mcf\"]}"));
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
    EXPECT_NE(a.canonicalKey(), c.canonicalKey());
}

TEST(ParseRequestTest, ExtractIdIsBestEffort)
{
    EXPECT_EQ(extractId(Json::parse("{\"id\":7,\"op\":\"fly\"}")), 7u);
    EXPECT_EQ(extractId(Json::parse("{\"op\":\"ping\"}")), 0u);
    EXPECT_EQ(extractId(Json::parse("{\"id\":\"not-a-number\"}")), 0u);
    EXPECT_EQ(extractId(Json::parse("[]")), 0u);
}

TEST(ParseRequestTest, ExtractIdNeverThrows)
{
    // extractId runs inside the bad_request error path; an id that would
    // make asU64() fatal() must degrade to 0, not take the server down.
    EXPECT_NO_THROW({
        EXPECT_EQ(extractId(Json::parse("{\"id\":-1,\"op\":\"run\"}")), 0u);
        EXPECT_EQ(extractId(Json::parse("{\"id\":1.5}")), 0u);
        EXPECT_EQ(extractId(Json::parse("{\"id\":1e300}")), 0u);
        EXPECT_EQ(extractId(Json::parse("{\"id\":null}")), 0u);
        EXPECT_EQ(extractId(Json::parse("{\"id\":[3]}")), 0u);
    });
}

TEST(ParseRequestTest, StringIntegersShareTheU64ReplyCap)
{
    // 2^53 is accepted from both spellings; anything above cannot be
    // echoed exactly through a JSON number, so it is rejected at parse
    // time rather than silently rounded in the reply.
    const Request max = parseRequest(
        Json::parse("{\"op\":\"ping\",\"id\":\"9007199254740992\"}"));
    EXPECT_EQ(max.id, 9007199254740992u);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"ping\",\"id\":\"9007199254740993\"}")),
                 FatalError);
    EXPECT_THROW(parseRequest(Json::parse(
                     "{\"op\":\"ping\",\"id\":\"18446744073709551615\"}")),
                 FatalError);
}

TEST(ProtocolTest, ResponseEnvelopes)
{
    const Json ok = makeResponse(Op::kRun);
    EXPECT_TRUE(ok.at("ok").asBool());
    EXPECT_EQ(ok.at("op").asString(), "run");

    const Json err = makeError("overloaded", "queue full");
    EXPECT_FALSE(err.at("ok").asBool());
    EXPECT_EQ(err.at("error").asString(), "overloaded");
    EXPECT_EQ(err.at("message").asString(), "queue full");
}

} // namespace
} // namespace serve
} // namespace smtflex
