/**
 * @file
 * Loopback end-to-end test: a real server on an ephemeral port, driven
 * by the load generator over 8 concurrent connections. Every simulation
 * response is compared byte-for-byte against the output of the serial
 * command core (the same renderers the CLI uses), and a second phase
 * verifies queue-full backpressure: rejected requests receive an
 * `overloaded` reply — they never hang and are never dropped.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "serve/commands.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "study/study_engine.h"

namespace smtflex {
namespace serve {
namespace {

StudyOptions
e2eStudy()
{
    StudyOptions study;
    study.budget = 2'000;
    study.warmup = 500;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

class E2eServer
{
  public:
    explicit E2eServer(ServerOptions options)
    {
        options.port = 0;
        server_ = std::make_unique<Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~E2eServer() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<Server> server_;
    std::thread thread_;
};

TEST(LoopbackE2eTest, ServedResponsesMatchSerialRenderingByteForByte)
{
    ServerOptions options;
    options.study = e2eStudy();
    options.queueCapacity = 64; // ample: this phase tests correctness
    E2eServer ts(options);

    LoadGenOptions load;
    load.port = ts.port();
    load.connections = 8;
    load.requestsPerConnection = 6;
    load.seed = 3;
    load.mix = "ping=2,run=5,isolated=2,schedule=2";
    load.distinct = 4;
    load.budget = 2'000;
    load.warmup = 500;

    // Precompute, with an independent engine and the serial renderers the
    // CLI calls, the exact text of every simulation the generator can ask
    // for. The loadgen then compares each response against this table.
    StudyEngine reference(e2eStudy());
    for (const Json &doc : loadgenRequestPool(load)) {
        const Request req = parseRequest(doc);
        if (req.op == Op::kRun)
            load.expectedOutputs[req.canonicalKey()] =
                runText(reference, req.run);
        else if (req.op == Op::kIsolated)
            load.expectedOutputs[req.canonicalKey()] =
                isolatedText(reference, req.isolated);
        else if (req.op == Op::kSchedule)
            load.expectedOutputs[req.canonicalKey()] =
                scheduleText(reference, req.schedule);
    }
    ASSERT_FALSE(load.expectedOutputs.empty());

    const LoadGenReport report = runLoadGen(load);
    EXPECT_EQ(report.sent,
              std::uint64_t{load.connections} *
                  load.requestsPerConnection);
    EXPECT_EQ(report.ok, report.sent);
    EXPECT_EQ(report.mismatches, 0u) << report.summary();
    EXPECT_EQ(report.otherErrors, 0u) << report.summary();
    EXPECT_EQ(report.overloaded, 0u);
    // Only |distinct| unique simulations exist per op, so the shared
    // cache/coalescing layer must have absorbed the rest.
    EXPECT_GT(report.serverCacheHits + report.serverCoalesced, 0u)
        << report.summary();

    ts.stop();
    // Graceful drain answered everything that was admitted.
    const ServerStats &stats = ts.server().stats();
    EXPECT_GE(stats.responsesSent.load(), report.sent);
}

TEST(LoopbackE2eTest, MultiTargetLoadSpreadsConnectionsRoundRobin)
{
    // Two independent servers, one loadgen: connections alternate over
    // the targets and every server takes real traffic — the smoke test
    // for pointing one loadgen at a coordinator fleet.
    ServerOptions options;
    options.study = e2eStudy();
    E2eServer first(options);
    E2eServer second(options);

    LoadGenOptions load;
    load.targets = {{"127.0.0.1", first.port()},
                    {"127.0.0.1", second.port()}};
    load.connections = 4;
    load.requestsPerConnection = 5;
    load.seed = 7;
    load.mix = "ping=1,stats=1";

    const LoadGenReport report = runLoadGen(load);
    EXPECT_EQ(report.sent,
              std::uint64_t{load.connections} *
                  load.requestsPerConnection);
    EXPECT_EQ(report.ok, report.sent);
    EXPECT_EQ(report.otherErrors, 0u) << report.summary();

    // 2 connections (x5 requests) landed on each server; the monitor
    // and the final stats snapshot add reads to the FIRST target only.
    const std::uint64_t onFirst =
        first.server().stats().requestsReceived.load();
    const std::uint64_t onSecond =
        second.server().stats().requestsReceived.load();
    EXPECT_GE(onFirst, 10u);
    EXPECT_EQ(onSecond, 10u);
}

TEST(LoopbackE2eTest, SaturatedQueueRejectsWithOverloadedAndNeverHangs)
{
    ServerOptions options;
    options.study = e2eStudy();
    options.queueCapacity = 1; // force the backpressure path
    options.batchMax = 1;
    E2eServer ts(options);

    LoadGenOptions load;
    load.port = ts.port();
    load.connections = 8;
    load.requestsPerConnection = 4;
    load.seed = 11;
    load.mix = "ping=1";
    load.pingDelayMs = 30; // queued pings, distinct keys -> real load

    const LoadGenReport report = runLoadGen(load);
    EXPECT_EQ(report.sent,
              std::uint64_t{load.connections} *
                  load.requestsPerConnection);
    // Every request was answered: success or an explicit overloaded
    // rejection. Nothing hung (runLoadGen returned) or vanished.
    EXPECT_EQ(report.ok + report.overloaded, report.sent)
        << report.summary();
    EXPECT_GT(report.overloaded, 0u) << report.summary();
    EXPECT_EQ(report.otherErrors, 0u) << report.summary();

    ts.stop();
    EXPECT_EQ(ts.server().stats().overloaded.load(), report.overloaded);
}

TEST(LoopbackE2eTest, ResultCachePersistsAcrossServerRestarts)
{
    // First server instance: populate the on-disk result cache.
    const std::string cachePath =
        ::testing::TempDir() + "smtflex_e2e_cache.txt";
    ServerOptions options;
    options.study = e2eStudy();
    options.study.cachePath = cachePath;
    options.queueCapacity = 64;

    LoadGenOptions load;
    load.connections = 4;
    load.requestsPerConnection = 4;
    load.seed = 5;
    load.mix = "run=1";
    load.distinct = 2;

    std::uint64_t firstExecuted = 0;
    {
        E2eServer ts(options);
        load.port = ts.port();
        const LoadGenReport report = runLoadGen(load);
        EXPECT_EQ(report.ok, report.sent) << report.summary();
        ts.stop(); // drains and flushes the shard files
        firstExecuted = ts.server().stats().executed.load();
        EXPECT_GT(firstExecuted, 0u);
    }

    // Second instance on the same cache path: the numeric results load
    // from disk, so the served outputs are identical.
    {
        E2eServer ts(options);
        load.port = ts.port();
        // In-memory reference: results are deterministic, so it renders
        // the same text without touching the server's cache files.
        StudyEngine reference(e2eStudy());
        load.expectedOutputs.clear();
        for (const Json &doc : loadgenRequestPool(load)) {
            const Request req = parseRequest(doc);
            if (req.op == Op::kRun)
                load.expectedOutputs[req.canonicalKey()] =
                    runText(reference, req.run);
        }
        const LoadGenReport report = runLoadGen(load);
        EXPECT_EQ(report.ok, report.sent) << report.summary();
        EXPECT_EQ(report.mismatches, 0u) << report.summary();
        ts.stop();
    }
}

} // namespace
} // namespace serve
} // namespace smtflex
