/**
 * @file
 * Tests for the sharded memoised-response cache.
 */

#include <gtest/gtest.h>

#include <string>

#include "serve/response_cache.h"

namespace smtflex {
namespace serve {
namespace {

TEST(ResponseCacheTest, StoreThenLookup)
{
    ResponseCache cache(64);
    EXPECT_FALSE(cache.lookup("a").has_value());
    cache.store("a", "body-a");
    cache.store("b", "body-b");
    ASSERT_TRUE(cache.lookup("a").has_value());
    EXPECT_EQ(*cache.lookup("a"), "body-a");
    EXPECT_EQ(*cache.lookup("b"), "body-b");
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResponseCacheTest, OverwriteReplacesTheBody)
{
    ResponseCache cache(64);
    cache.store("key", "old");
    cache.store("key", "new");
    EXPECT_EQ(*cache.lookup("key"), "new");
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResponseCacheTest, CapacityBoundsEntries)
{
    // Small capacity: inserting far more keys than fit must evict rather
    // than grow without bound.
    ResponseCache cache(16);
    for (int i = 0; i < 1000; ++i)
        cache.store("key-" + std::to_string(i), "body");
    EXPECT_LE(cache.size(), 16u);
    EXPECT_GT(cache.size(), 0u);
}

TEST(ResponseCacheTest, EvictionIsFifoWithinAShard)
{
    ResponseCache cache(8); // one entry per shard
    for (int i = 0; i < 64; ++i)
        cache.store("key-" + std::to_string(i), std::to_string(i));
    // Whatever survived must still map to its own body.
    for (int i = 0; i < 64; ++i) {
        const auto hit = cache.lookup("key-" + std::to_string(i));
        if (hit)
            EXPECT_EQ(*hit, std::to_string(i));
    }
}

} // namespace
} // namespace serve
} // namespace smtflex
