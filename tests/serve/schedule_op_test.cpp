/**
 * @file
 * The `schedule` serve op at the protocol and command-core layers:
 * parsing with defaults, canonical-key stability (the memoisation
 * identity), validation failures as protocol errors, and renderer
 * determinism — two independent engines with the same StudyOptions must
 * produce byte-identical schedule text, the property every downstream
 * byte-identity check (loopback, coordinator, chaos) stands on.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/log.h"
#include "serve/commands.h"
#include "serve/protocol.h"
#include "study/study_engine.h"

namespace smtflex {
namespace serve {
namespace {

StudyOptions
fastStudy()
{
    StudyOptions study;
    study.budget = 2'000;
    study.warmup = 500;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

Request
parse(const std::string &text)
{
    return parseRequest(Json::parse(text));
}

TEST(ScheduleOpTest, ParseFillsDefaults)
{
    const Request req =
        parse(R"({"op":"schedule","benchmarks":["mcf","hmmer"]})");
    EXPECT_EQ(req.op, Op::kSchedule);
    EXPECT_EQ(req.schedule.design, "4B");
    ASSERT_EQ(req.schedule.benchmarks.size(), 2u);
    EXPECT_EQ(req.schedule.benchmarks[0], "mcf");
    EXPECT_EQ(req.schedule.benchmarks[1], "hmmer");
    EXPECT_EQ(req.schedule.policy, "pairing");
    EXPECT_FALSE(req.schedule.noSmt);
    EXPECT_FALSE(req.schedule.hasBw);
}

TEST(ScheduleOpTest, ParseHonoursEveryField)
{
    const Request req = parse(
        R"({"op":"schedule","design":"3B5s","benchmarks":["lbm"],)"
        R"("policy":"hysteresis","no_smt":true,"bw":16})");
    EXPECT_EQ(req.schedule.design, "3B5s");
    EXPECT_EQ(req.schedule.policy, "hysteresis");
    EXPECT_TRUE(req.schedule.noSmt);
    EXPECT_TRUE(req.schedule.hasBw);
    EXPECT_EQ(req.schedule.bw, 16.0);
}

TEST(ScheduleOpTest, CanonicalKeyIsStableAcrossFieldOrder)
{
    const Request a = parse(
        R"({"op":"schedule","design":"2B4m","benchmarks":["mcf","lbm"],)"
        R"("policy":"greedy"})");
    const Request b = parse(
        R"({"policy":"greedy","benchmarks":["mcf","lbm"],)"
        R"("design":"2B4m","op":"schedule"})");
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());

    // bw enters the key only when the request sets it: a default-bw
    // request and an explicit bw=8 request are distinct cache entries
    // (matching run/sweep semantics).
    const Request c = parse(
        R"({"op":"schedule","design":"2B4m","benchmarks":["mcf","lbm"],)"
        R"("policy":"greedy","bw":8})");
    EXPECT_NE(a.canonicalKey(), c.canonicalKey());
    // Benchmark order is placement-relevant, so it is key-relevant.
    const Request d = parse(
        R"({"op":"schedule","design":"2B4m","benchmarks":["lbm","mcf"],)"
        R"("policy":"greedy"})");
    EXPECT_NE(a.canonicalKey(), d.canonicalKey());
}

TEST(ScheduleOpTest, ValidationRejectsBadRequests)
{
    // Unknown policy.
    EXPECT_THROW(
        parse(R"({"op":"schedule","benchmarks":["mcf"],"policy":"lru"})"),
        FatalError);
    // Unknown benchmark.
    EXPECT_THROW(
        parse(R"({"op":"schedule","benchmarks":["gcc-o3"]})"),
        FatalError);
    // Empty mix.
    EXPECT_THROW(parse(R"({"op":"schedule","benchmarks":[]})"),
                 FatalError);
    EXPECT_THROW(parse(R"({"op":"schedule"})"), FatalError);
    // Unknown design.
    EXPECT_THROW(
        parse(R"({"op":"schedule","design":"9Z","benchmarks":["mcf"]})"),
        FatalError);
}

TEST(ScheduleOpTest, ParsecBenchmarksAreSchedulable)
{
    const Request req = parse(
        R"({"op":"schedule","design":"3B5s",)"
        R"("benchmarks":["blackscholes","mcf","swaptions"]})");
    StudyEngine engine(fastStudy());
    const std::string text = scheduleText(engine, req.schedule);
    EXPECT_NE(text.find("blackscholes"), std::string::npos);
    EXPECT_NE(text.find("predicted STP"), std::string::npos);
}

TEST(ScheduleOpTest, RendererIsDeterministicAcrossEngines)
{
    const Request req = parse(
        R"({"op":"schedule","design":"3B5s",)"
        R"("benchmarks":["mcf","hmmer","lbm","h264ref"],)"
        R"("policy":"pairing"})");

    StudyEngine first(fastStudy());
    StudyEngine second(fastStudy());
    const std::string once = scheduleText(first, req.schedule);
    // Repeat on the same engine (memoised) and on a fresh engine (cold):
    // all three renderings must be byte-identical.
    EXPECT_EQ(scheduleText(first, req.schedule), once);
    EXPECT_EQ(scheduleText(second, req.schedule), once);
    EXPECT_NE(once.find("design 3B5s, policy pairing, 4 threads"),
              std::string::npos);
}

TEST(ScheduleOpTest, AllPoliciesRenderAllDesignFamilies)
{
    StudyEngine engine(fastStudy());
    for (const char *policy :
         {"greedy", "pairing", "hysteresis", "measured"}) {
        for (const char *design : {"4B", "2B4m", "8m", "3B5s"}) {
            ScheduleRequest req;
            req.design = design;
            req.benchmarks = {"mcf", "hmmer", "soplex"};
            req.policy = policy;
            const std::string text = scheduleText(engine, req);
            EXPECT_NE(text.find("predicted ANTT"), std::string::npos)
                << policy << " on " << design;
        }
    }
}

} // namespace
} // namespace serve
} // namespace smtflex
