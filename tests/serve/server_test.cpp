/**
 * @file
 * In-process tests of the serve event loop: inline fast paths, response
 * memoisation, request coalescing, queue-full backpressure, deadline
 * expiry, and graceful drain (requestStop and SIGTERM). Every case runs
 * a real server on an ephemeral loopback port.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "common/log.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace smtflex {
namespace serve {
namespace {

StudyOptions
fastStudy()
{
    StudyOptions study;
    study.budget = 1'500;
    study.warmup = 300;
    study.seed = 42;
    study.cachePath = ""; // no disk persistence in unit tests
    return study;
}

/** A server running on its own thread until stop()/destruction. */
class TestServer
{
  public:
    explicit TestServer(ServerOptions options)
    {
        options.port = 0; // ephemeral
        server_ = std::make_unique<Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestServer() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<Server> server_;
    std::thread thread_;
};

Json
pingDoc(std::uint64_t id, std::uint64_t delay_ms = 0,
        std::uint64_t deadline_ms = 0)
{
    Json doc = Json::object();
    doc.set("op", Json::string("ping"));
    doc.set("id", Json::number(id));
    if (delay_ms)
        doc.set("delay_ms", Json::number(delay_ms));
    if (deadline_ms)
        doc.set("deadline_ms", Json::number(deadline_ms));
    return doc;
}

Json
runDoc(std::uint64_t id)
{
    Json doc = Json::object();
    doc.set("op", Json::string("run"));
    doc.set("id", Json::number(id));
    Json workload = Json::array();
    workload.push(Json::string("mcf"));
    workload.push(Json::string("hmmer"));
    doc.set("workload", std::move(workload));
    doc.set("budget", Json::number(std::uint64_t{1'500}));
    doc.set("warmup", Json::number(std::uint64_t{300}));
    return doc;
}

/** Receive @p count replies and index them by echoed id. */
std::map<std::uint64_t, Json>
receiveAll(Client &client, std::size_t count)
{
    std::map<std::uint64_t, Json> replies;
    for (std::size_t i = 0; i < count; ++i) {
        Json reply = client.receive();
        replies.emplace(reply.at("id").asU64(), std::move(reply));
    }
    return replies;
}

TEST(ServerTest, InlinePingAndStats)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    const Json pong = client.call(pingDoc(5));
    EXPECT_TRUE(pong.at("ok").asBool());
    EXPECT_TRUE(pong.at("pong").asBool());
    EXPECT_EQ(pong.at("id").asU64(), 5u);

    Json statsReq = Json::object();
    statsReq.set("op", Json::string("stats"));
    const Json stats = client.call(statsReq);
    EXPECT_TRUE(stats.at("ok").asBool());
    EXPECT_GE(stats.at("stats").at("requests").asU64(), 2u);
    EXPECT_EQ(stats.at("stats").at("connections").asU64(), 1u);
    EXPECT_FALSE(stats.at("stats").at("draining").asBool());
}

TEST(ServerTest, MetricsOpExposesTheRegistry)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    Json metricsReq = Json::object();
    metricsReq.set("op", Json::string("metrics"));
    metricsReq.set("id", Json::number(std::uint64_t{9}));
    const Json reply = client.call(metricsReq);
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("op").asString(), "metrics");
    EXPECT_EQ(reply.at("id").asU64(), 9u);

    // Full dotted paths, including the connection that sent the request.
    const Json &metrics = reply.at("metrics");
    EXPECT_GE(metrics.at("serve.requests").asU64(), 1u);
    EXPECT_EQ(metrics.at("serve.connections").asU64(), 1u);
    EXPECT_TRUE(metrics.has("serve.queue_depth"));
    EXPECT_TRUE(metrics.has("serve.jobs"));

    // The stats body is the serve.* subtree (bare keys) plus the ckpt.*
    // subtree (namespaced keys, already full paths): same values as the
    // registry's, and the counters can only have grown between the two
    // inline reads.
    Json statsReq = Json::object();
    statsReq.set("op", Json::string("stats"));
    const Json stats = client.call(statsReq);
    ASSERT_TRUE(stats.at("ok").asBool());
    for (const auto &[key, value] : stats.at("stats").members()) {
        const std::string path =
            key.rfind("ckpt.", 0) == 0 ? key : "serve." + key;
        ASSERT_TRUE(metrics.has(path)) << key;
        if (key == "requests" || key == "responses") {
            EXPECT_GE(value.asU64(), metrics.at("serve." + key).asU64())
                << key;
        }
    }

    // Prometheus exposition rides along for scrapers.
    const std::string &exposition = reply.at("exposition").asString();
    EXPECT_NE(exposition.find("# TYPE smtflex_serve_requests counter"),
              std::string::npos);
    EXPECT_NE(exposition.find("smtflex_serve_draining 0"),
              std::string::npos);
}

TEST(ServerTest, MalformedJsonGetsBadRequestReply)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);

    // Raw socket: the Client only sends well-formed documents.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ts.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string frame = encodeFrame("{this is not json");
    ASSERT_EQ(::write(fd, frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));

    FrameDecoder decoder;
    std::string payload;
    char buf[4096];
    while (!decoder.next(payload)) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        ASSERT_GT(n, 0);
        decoder.feed(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const Json reply = Json::parse(payload);
    EXPECT_FALSE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("error").asString(), "bad_request");
    EXPECT_EQ(ts.server().stats().badRequests.load(), 1u);
}

TEST(ServerTest, UnknownOpAndBadFieldsAreBadRequests)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    Json unknown = Json::object();
    unknown.set("op", Json::string("fly"));
    unknown.set("id", Json::number(std::uint64_t{3}));
    const Json reply = client.call(unknown);
    EXPECT_FALSE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("error").asString(), "bad_request");
    EXPECT_EQ(reply.at("id").asU64(), 3u); // id still correlated

    Json badBench = runDoc(4);
    Json workload = Json::array();
    workload.push(Json::string("nosuchbench"));
    badBench.set("workload", std::move(workload));
    const Json reply2 = client.call(badBench);
    EXPECT_FALSE(reply2.at("ok").asBool());
    EXPECT_EQ(reply2.at("error").asString(), "bad_request");

    // The connection stays healthy after rejected requests.
    EXPECT_TRUE(client.call(pingDoc(9)).at("ok").asBool());
}

TEST(ServerTest, UnrepresentableIdSurvivesAsBadRequest)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    // Invalid op AND an id asU64() would fatal() on: the reply must be a
    // bad_request correlated to id 0, and the server must stay up.
    Json doc = Json::object();
    doc.set("op", Json::string("fly"));
    doc.set("id", Json::number(-1.0));
    const Json reply = client.call(doc);
    EXPECT_FALSE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("error").asString(), "bad_request");
    EXPECT_EQ(reply.at("id").asU64(), 0u);

    Json fractional = Json::object();
    fractional.set("op", Json::string("fly"));
    fractional.set("id", Json::number(1.5));
    EXPECT_EQ(client.call(fractional).at("error").asString(),
              "bad_request");

    // Server and connection both survived the poison ids.
    EXPECT_TRUE(client.call(pingDoc(9)).at("ok").asBool());
    EXPECT_EQ(ts.server().stats().badRequests.load(), 2u);
}

TEST(ServerTest, OversizedResponseIsReplacedNotSent)
{
    ServerOptions options;
    options.study = fastStudy();
    options.maxFrame = 256; // the stats body will not fit
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    Json statsReq = Json::object();
    statsReq.set("op", Json::string("stats"));
    statsReq.set("id", Json::number(std::uint64_t{11}));
    const Json reply = client.call(statsReq);
    EXPECT_FALSE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("error").asString(), "response_too_large");
    EXPECT_EQ(reply.at("id").asU64(), 11u); // still correlated

    // Small responses still flow on the same connection.
    EXPECT_TRUE(client.call(pingDoc(12)).at("ok").asBool());
}

TEST(ServerTest, RepeatedRunIsServedFromTheResponseCache)
{
    ServerOptions options;
    options.study = fastStudy();
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    const Json first = client.call(runDoc(1));
    ASSERT_TRUE(first.at("ok").asBool());
    const std::string output = first.at("output").asString();
    EXPECT_NE(output.find("STP"), std::string::npos);

    const Json second = client.call(runDoc(2));
    ASSERT_TRUE(second.at("ok").asBool());
    EXPECT_EQ(second.at("output").asString(), output);
    EXPECT_EQ(ts.server().stats().cacheHits.load(), 1u);
    EXPECT_EQ(ts.server().stats().executed.load(), 1u);
}

TEST(ServerTest, IdenticalInFlightRequestsCoalesce)
{
    ServerOptions options;
    options.study = fastStudy();
    options.queueCapacity = 8;
    options.batchMax = 1; // serialise the dispatcher
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    // The delayed ping occupies the dispatcher, so both runs are admitted
    // while the first is still in flight — the second must coalesce.
    client.send(pingDoc(1, /*delay_ms=*/150));
    client.send(runDoc(2));
    client.send(runDoc(3));

    const auto replies = receiveAll(client, 3);
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_TRUE(replies.at(1).at("ok").asBool());
    ASSERT_TRUE(replies.at(2).at("ok").asBool());
    ASSERT_TRUE(replies.at(3).at("ok").asBool());
    EXPECT_EQ(replies.at(2).at("output").asString(),
              replies.at(3).at("output").asString());
    EXPECT_EQ(ts.server().stats().coalesced.load(), 1u);
    // One simulation, not two (the ping also counts as executed).
    EXPECT_EQ(ts.server().stats().executed.load(), 2u);
}

TEST(ServerTest, QueueFullRequestsGetOverloadedNotDropped)
{
    ServerOptions options;
    options.study = fastStudy();
    options.queueCapacity = 1; // tiny admission queue
    options.batchMax = 1;
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    // Delayed pings are queued (never inline, never coalesced): six of
    // them against a 1-deep queue must trip the overload path.
    constexpr std::uint64_t kCount = 6;
    for (std::uint64_t i = 0; i < kCount; ++i)
        client.send(pingDoc(i, /*delay_ms=*/200));

    std::uint64_t ok = 0, overloaded = 0;
    const auto replies = receiveAll(client, kCount);
    ASSERT_EQ(replies.size(), kCount); // every request got an answer
    for (const auto &[id, reply] : replies) {
        if (reply.at("ok").asBool())
            ++ok;
        else if (reply.at("error").asString() == "overloaded")
            ++overloaded;
    }
    EXPECT_EQ(ok + overloaded, kCount);
    EXPECT_GE(ok, 1u);
    EXPECT_GE(overloaded, 3u);
    EXPECT_EQ(ts.server().stats().overloaded.load(), overloaded);
}

TEST(ServerTest, DeadlineExpiresWhileQueued)
{
    ServerOptions options;
    options.study = fastStudy();
    options.queueCapacity = 8;
    options.batchMax = 1;
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    // The first ping holds the dispatcher for 200 ms; the second has a
    // 50 ms deadline and expires while queued behind it.
    client.send(pingDoc(1, /*delay_ms=*/200));
    client.send(pingDoc(2, /*delay_ms=*/10, /*deadline_ms=*/50));

    const auto replies = receiveAll(client, 2);
    EXPECT_TRUE(replies.at(1).at("ok").asBool());
    const Json &expired = replies.at(2);
    EXPECT_FALSE(expired.at("ok").asBool());
    EXPECT_EQ(expired.at("error").asString(), "deadline");
    EXPECT_EQ(ts.server().stats().deadlineExpired.load(), 1u);
}

TEST(ServerTest, RequestStopDrainsInFlightWork)
{
    ServerOptions options;
    options.study = fastStudy();
    options.queueCapacity = 8;
    TestServer ts(options);

    Client client;
    client.connect("127.0.0.1", ts.port());

    constexpr std::uint64_t kCount = 3;
    for (std::uint64_t i = 0; i < kCount; ++i)
        client.send(pingDoc(i, /*delay_ms=*/100));
    // Let the server admit the pings, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ts.server().requestStop();

    // Every admitted request is still answered before run() returns.
    const auto replies = receiveAll(client, kCount);
    ASSERT_EQ(replies.size(), kCount);
    for (const auto &[id, reply] : replies)
        EXPECT_TRUE(reply.at("ok").asBool()) << "id " << id;

    ts.stop(); // joins run(); hangs here = drain failure
}

TEST(ServerTest, SigtermTriggersGracefulDrain)
{
    ServerOptions options;
    options.study = fastStudy();
    auto ts = std::make_unique<TestServer>(options);
    Server::installSignalHandlers(&ts->server());

    Client client;
    client.connect("127.0.0.1", ts->port());
    client.send(pingDoc(1, /*delay_ms=*/100));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    ASSERT_EQ(::raise(SIGTERM), 0);
    const Json reply = client.receive();
    EXPECT_TRUE(reply.at("ok").asBool());

    ts->stop();
    ts.reset(); // destructor detaches the signal handlers
}

} // namespace
} // namespace serve
} // namespace smtflex
