/**
 * @file
 * Tests for the bounded admission queue — the server's backpressure
 * point: non-blocking rejection at capacity, batched pops, and the
 * close-then-drain shutdown contract. The threaded cases run under the
 * `tsan` label.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/request_queue.h"

namespace smtflex {
namespace serve {
namespace {

TEST(BoundedQueueTest, TryPushFailsAtCapacityWithoutBlocking)
{
    BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3)); // full: immediate rejection
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.capacity(), 2u);

    int out = 0;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(queue.tryPush(3)); // slot freed
}

TEST(BoundedQueueTest, PopBatchTakesUpToMax)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.tryPush(i));

    std::vector<int> batch;
    EXPECT_EQ(queue.popBatch(batch, 3), 3u);
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(queue.popBatch(batch, 3), 2u);
    EXPECT_EQ(batch, (std::vector<int>{3, 4}));
}

TEST(BoundedQueueTest, CloseRefusesPushesButDrainsBacklog)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(1));
    ASSERT_TRUE(queue.tryPush(2));
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_FALSE(queue.tryPush(3));

    // Backlog still pops; the terminal 0 signals closed-and-drained.
    std::vector<int> batch;
    EXPECT_EQ(queue.popBatch(batch, 10), 2u);
    EXPECT_EQ(queue.popBatch(batch, 10), 0u);
    int out;
    EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedQueueTest, CloseWakesBlockedPopper)
{
    BoundedQueue<int> queue(4);
    std::atomic<bool> returned{false};
    std::thread popper([&] {
        std::vector<int> batch;
        const std::size_t n = queue.popBatch(batch, 4);
        EXPECT_EQ(n, 0u);
        returned.store(true);
    });
    // Give the popper time to block, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    popper.join();
    EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, ConcurrentProducersNeverExceedCapacity)
{
    constexpr std::size_t kCapacity = 4;
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;

    BoundedQueue<int> queue(kCapacity);
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            for (int i = 0; i < kPerProducer; ++i) {
                if (queue.tryPush(i))
                    accepted.fetch_add(1);
                else
                    rejected.fetch_add(1);
            }
        });
    }

    std::atomic<int> consumed{0};
    std::thread consumer([&] {
        std::vector<int> batch;
        while (queue.popBatch(batch, kCapacity) > 0) {
            EXPECT_LE(batch.size(), kCapacity);
            consumed.fetch_add(static_cast<int>(batch.size()));
        }
    });

    for (auto &producer : producers)
        producer.join();
    queue.close();
    consumer.join();

    // Every push was either accepted (and later consumed) or rejected —
    // nothing lost, nothing duplicated.
    EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
    EXPECT_EQ(consumed.load(), accepted.load());
}

} // namespace
} // namespace serve
} // namespace smtflex
