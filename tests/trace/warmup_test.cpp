/**
 * @file
 * Tests for the functional-warmup support: resident-line enumeration and
 * cache installation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cache/cache.h"
#include "trace/tracegen.h"

namespace smtflex {
namespace {

BenchmarkProfile
warmProfile()
{
    BenchmarkProfile p;
    p.name = "warm-test";
    p.mix = {.load = 0.3, .store = 0.1, .intAlu = 0.4, .intMul = 0.0,
             .fp = 0.1, .branch = 0.1};
    p.codeFootprint = 8 * 1024;
    p.regions = {{16 * 1024, 0.5, false},
                 {64 * 1024, 0.3, false},
                 {32 * 1024 * 1024, 0.2, true}}; // streaming: skipped
    return p;
}

TEST(ResidentLinesTest, EnumeratesNonStreamingRegionsAndCode)
{
    const auto p = warmProfile();
    const AddressSpace space = AddressSpace::forThread(3);
    std::size_t data_lines = 0, code_lines = 0;
    TraceGenerator::forEachResidentLine(
        p, space, 8 * 1024 * 1024, [&](Addr, bool is_code) {
            ++(is_code ? code_lines : data_lines);
        });
    EXPECT_EQ(data_lines, (16 * 1024 + 64 * 1024) / kLineSize);
    EXPECT_EQ(code_lines, 8 * 1024 / kLineSize);
}

TEST(ResidentLinesTest, SkipsOversizedRegions)
{
    auto p = warmProfile();
    p.regions[1].bytes = 64 * 1024 * 1024; // now beyond the cap
    p.regions[1].streaming = false;
    std::size_t data_lines = 0;
    TraceGenerator::forEachResidentLine(
        p, AddressSpace::forThread(0), 8 * 1024 * 1024,
        [&](Addr, bool is_code) { data_lines += !is_code; });
    EXPECT_EQ(data_lines, (16 * 1024) / kLineSize);
}

TEST(ResidentLinesTest, LargestRegionFirstHottestLast)
{
    const auto p = warmProfile();
    // Lines of one region are visited contiguously (cold end down to hot
    // end); a non-sequential jump marks a region switch.
    std::vector<std::size_t> sizes_seen;
    std::size_t current = 0;
    Addr prev = 0;
    TraceGenerator::forEachResidentLine(
        p, AddressSpace::forThread(0), 8 * 1024 * 1024,
        [&](Addr addr, bool is_code) {
            if (is_code)
                return;
            if (current == 0 || addr + kLineSize == prev) {
                ++current;
            } else {
                sizes_seen.push_back(current);
                current = 1;
            }
            prev = addr;
        });
    sizes_seen.push_back(current);
    ASSERT_EQ(sizes_seen.size(), 2u);
    EXPECT_GT(sizes_seen[0], sizes_seen[1]) << "largest region first";
}

TEST(ResidentLinesTest, CoverageMatchesGeneratedAddresses)
{
    // Every non-streaming address the generator produces must be inside
    // the enumerated resident set.
    const auto p = warmProfile();
    const AddressSpace space = AddressSpace::forThread(7);
    std::set<Addr> resident;
    TraceGenerator::forEachResidentLine(
        p, space, 8 * 1024 * 1024,
        [&](Addr addr, bool) { resident.insert(lineAlign(addr)); });

    TraceGenerator gen(p, 11, 7, space);
    std::size_t checked = 0, covered = 0;
    for (int i = 0; i < 30000; ++i) {
        const MicroOp op = gen.next();
        if (op.isMem()) {
            ++checked;
            covered += resident.count(lineAlign(op.addr)) > 0;
        }
        if (op.fetchLineCross) {
            ++checked;
            covered += resident.count(op.fetchAddr) > 0;
        }
    }
    // Streaming region accesses (~20% of data) are intentionally absent.
    EXPECT_GT(static_cast<double>(covered) / checked, 0.70);
}

TEST(ResidentLinesTest, SharedSpaceVisitsBothPlacements)
{
    auto p = warmProfile();
    AddressSpace space = AddressSpace::forThread(1);
    space.sharedBase = Addr{1} << 35;
    space.sharedProb = 0.5;
    std::size_t data_lines = 0;
    TraceGenerator::forEachResidentLine(
        p, space, 8 * 1024 * 1024,
        [&](Addr, bool is_code) { data_lines += !is_code; });
    // Private + shared copies of both resident regions.
    EXPECT_EQ(data_lines, 2 * (16 * 1024 + 64 * 1024) / kLineSize);
}

TEST(CacheInstallTest, InstallMakesLinesResidentWithoutStats)
{
    SetAssocCache cache("w", {32 * 1024, 4});
    for (Addr a = 0; a < 16 * 1024; a += kLineSize)
        cache.install(a);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    std::uint64_t hits = 0;
    for (Addr a = 0; a < 16 * 1024; a += kLineSize)
        hits += cache.access(a, false).hit;
    EXPECT_EQ(hits, 16u * 1024 / kLineSize);
}

TEST(CacheInstallTest, InstallRespectsLru)
{
    SetAssocCache cache("tiny", {128, 2}); // one set, two ways
    cache.install(0 * 64);
    cache.install(1 * 64);
    cache.install(2 * 64); // evicts line 0 (LRU)
    EXPECT_FALSE(cache.contains(0 * 64));
    EXPECT_TRUE(cache.contains(1 * 64));
    EXPECT_TRUE(cache.contains(2 * 64));
}

TEST(CacheInstallTest, InstallOverDirtyLineDropsItSilently)
{
    SetAssocCache cache("tiny", {128, 2});
    cache.access(0 * 64, true); // dirty via normal access
    cache.access(1 * 64, true);
    cache.install(2 * 64); // evicts the dirty LRU silently
    EXPECT_EQ(cache.stats().writebacks, 0u);
    EXPECT_TRUE(cache.contains(2 * 64));
}

} // namespace
} // namespace smtflex
