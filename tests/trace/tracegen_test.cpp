/**
 * @file
 * Tests for the synthetic trace generator: determinism, mix fidelity,
 * address-space disjointness, dependency statistics, reset semantics.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/log.h"
#include "trace/spec_profiles.h"
#include "trace/tracegen.h"

namespace smtflex {
namespace {

BenchmarkProfile
simpleProfile()
{
    BenchmarkProfile p;
    p.name = "gen-test";
    p.mix = {.load = 0.25, .store = 0.10, .intAlu = 0.40, .intMul = 0.05,
             .fp = 0.05, .branch = 0.15};
    p.meanDepDist = 3.0;
    p.depNoneProb = 0.2;
    p.branchMispredictRate = 0.02;
    p.codeFootprint = 16 * 1024;
    p.regions = {{32 * 1024, 0.6, false}, {4 * 1024 * 1024, 0.4, true}};
    return p;
}

TEST(TraceGenTest, DeterministicStream)
{
    const auto p = simpleProfile();
    TraceGenerator a(p, 42, 1, AddressSpace::forThread(1));
    TraceGenerator b(p, 42, 1, AddressSpace::forThread(1));
    for (int i = 0; i < 5000; ++i) {
        const MicroOp x = a.next();
        const MicroOp y = b.next();
        EXPECT_EQ(x.cls, y.cls);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.depDist, y.depDist);
        EXPECT_EQ(x.mispredict, y.mispredict);
    }
}

TEST(TraceGenTest, ResetReproducesStream)
{
    const auto p = simpleProfile();
    TraceGenerator gen(p, 7, 3, AddressSpace::forThread(3));
    std::vector<MicroOp> first;
    for (int i = 0; i < 1000; ++i)
        first.push_back(gen.next());
    gen.reset();
    EXPECT_EQ(gen.generated(), 0u);
    for (int i = 0; i < 1000; ++i) {
        const MicroOp op = gen.next();
        EXPECT_EQ(op.cls, first[i].cls);
        EXPECT_EQ(op.addr, first[i].addr);
    }
}

TEST(TraceGenTest, MixMatchesProfile)
{
    const auto p = simpleProfile();
    TraceGenerator gen(p, 11, 0, AddressSpace::forThread(0));
    std::map<OpClass, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];
    EXPECT_NEAR(counts[OpClass::kLoad] / double(n), p.mix.load, 0.01);
    EXPECT_NEAR(counts[OpClass::kStore] / double(n), p.mix.store, 0.01);
    EXPECT_NEAR(counts[OpClass::kIntAlu] / double(n), p.mix.intAlu, 0.01);
    EXPECT_NEAR(counts[OpClass::kIntMul] / double(n), p.mix.intMul, 0.01);
    EXPECT_NEAR(counts[OpClass::kFpOp] / double(n), p.mix.fp, 0.01);
    EXPECT_NEAR(counts[OpClass::kBranch] / double(n), p.mix.branch, 0.01);
}

TEST(TraceGenTest, MemOpsCarryAddressesOthersDoNot)
{
    const auto p = simpleProfile();
    TraceGenerator gen(p, 13, 0, AddressSpace::forThread(0));
    for (int i = 0; i < 10000; ++i) {
        const MicroOp op = gen.next();
        if (op.isMem())
            EXPECT_NE(op.addr, 0u);
        else
            EXPECT_EQ(op.addr, 0u);
    }
}

TEST(TraceGenTest, PrivateAddressSpacesDisjoint)
{
    const auto p = simpleProfile();
    TraceGenerator g0(p, 42, 0, AddressSpace::forThread(0));
    TraceGenerator g1(p, 42, 1, AddressSpace::forThread(1));
    std::uint64_t min0 = ~0ull, max0 = 0, min1 = ~0ull, max1 = 0;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp a = g0.next();
        const MicroOp b = g1.next();
        if (a.isMem()) {
            min0 = std::min(min0, a.addr);
            max0 = std::max(max0, a.addr);
        }
        if (b.isMem()) {
            min1 = std::min(min1, b.addr);
            max1 = std::max(max1, b.addr);
        }
    }
    EXPECT_TRUE(max0 < min1 || max1 < min0)
        << "address ranges overlap: [" << min0 << "," << max0 << "] vs ["
        << min1 << "," << max1 << "]";
}

TEST(TraceGenTest, SharedRegionOverlapsAcrossThreads)
{
    auto p = simpleProfile();
    AddressSpace s0 = AddressSpace::forThread(0);
    AddressSpace s1 = AddressSpace::forThread(1);
    s0.sharedBase = s1.sharedBase = Addr{1} << 35;
    s0.sharedProb = s1.sharedProb = 1.0; // all data accesses shared
    TraceGenerator g0(p, 42, 0, s0);
    TraceGenerator g1(p, 43, 1, s1);
    std::map<Addr, int> lines;
    for (int i = 0; i < 50000; ++i) {
        const MicroOp a = g0.next();
        const MicroOp b = g1.next();
        if (a.isMem())
            lines[lineAlign(a.addr)] |= 1;
        if (b.isMem())
            lines[lineAlign(b.addr)] |= 2;
    }
    int both = 0;
    for (const auto &[line, mask] : lines)
        both += (mask == 3);
    EXPECT_GT(both, 100) << "shared accesses never landed on common lines";
}

TEST(TraceGenTest, DependencyDistanceStatistics)
{
    auto p = simpleProfile();
    p.depNoneProb = 0.0;
    TraceGenerator gen(p, 17, 0, AddressSpace::forThread(0));
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const MicroOp op = gen.next();
        EXPECT_GE(op.depDist, 1);
        sum += op.depDist;
    }
    EXPECT_NEAR(sum / n, p.meanDepDist, 0.1);
}

TEST(TraceGenTest, DepNoneProbability)
{
    auto p = simpleProfile();
    p.depNoneProb = 0.35;
    TraceGenerator gen(p, 19, 0, AddressSpace::forThread(0));
    int none = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        none += (gen.next().depDist == 0);
    EXPECT_NEAR(none / double(n), 0.35, 0.01);
}

TEST(TraceGenTest, StreamingRegionSweepsSequentiallyWordByWord)
{
    BenchmarkProfile p = simpleProfile();
    p.mix = {.load = 1.0, .store = 0.0, .intAlu = 0.0, .intMul = 0.0,
             .fp = 0.0, .branch = 0.0};
    const std::uint64_t region_bytes = 256 * 1024;
    p.regions = {{region_bytes, 1.0, true}};
    TraceGenerator gen(p, 23, 0, AddressSpace::forThread(0));
    // Word-granularity unit stride: 8 consecutive accesses per line, so a
    // sweep misses once per line in any cache (like real streaming code).
    Addr prev = gen.next().addr;
    const std::uint64_t words = region_bytes / 8;
    for (std::uint64_t i = 1; i < words; ++i) {
        const Addr addr = gen.next().addr;
        EXPECT_EQ(addr, prev + 8);
        prev = addr;
    }
    // Wraps back to the region start.
    EXPECT_EQ(gen.next().addr, prev - (words - 1) * 8);
}

TEST(TraceGenTest, StreamingTouchesEachLineEightTimes)
{
    BenchmarkProfile p = simpleProfile();
    p.mix = {.load = 1.0, .store = 0.0, .intAlu = 0.0, .intMul = 0.0,
             .fp = 0.0, .branch = 0.0};
    p.regions = {{64 * 1024, 1.0, true}};
    TraceGenerator gen(p, 29, 0, AddressSpace::forThread(0));
    std::map<Addr, int> per_line;
    for (int i = 0; i < 64 * 1024 / 8; ++i)
        ++per_line[lineAlign(gen.next().addr)];
    for (const auto &[line, count] : per_line)
        EXPECT_EQ(count, 8) << "line " << line;
}

TEST(TraceGenTest, AccessSkewConcentratesOnHotEnd)
{
    // With the default skew of 3, about (1/2)^(1/3) ~ 79% of a region's
    // accesses land in its lower half, and ~58% in the lowest fifth.
    BenchmarkProfile p = simpleProfile();
    p.mix = {.load = 1.0, .store = 0.0, .intAlu = 0.0, .intMul = 0.0,
             .fp = 0.0, .branch = 0.0};
    const std::uint64_t bytes = 1 * 1024 * 1024;
    p.regions = {{bytes, 1.0, false}};
    TraceGenerator gen(p, 41, 0, AddressSpace::forThread(0));
    Addr base = ~Addr{0};
    std::vector<Addr> addrs;
    for (int i = 0; i < 50000; ++i) {
        const Addr a = gen.next().addr;
        base = std::min(base, a);
        addrs.push_back(a);
    }
    int lower_half = 0, lowest_fifth = 0;
    for (const Addr a : addrs) {
        lower_half += (a - base) < bytes / 2;
        lowest_fifth += (a - base) < bytes / 5;
    }
    EXPECT_NEAR(lower_half / 50000.0, 0.794, 0.02);
    EXPECT_NEAR(lowest_fifth / 50000.0, 0.585, 0.02);
}

TEST(TraceGenTest, SkewOneIsUniform)
{
    BenchmarkProfile p = simpleProfile();
    p.mix = {.load = 1.0, .store = 0.0, .intAlu = 0.0, .intMul = 0.0,
             .fp = 0.0, .branch = 0.0};
    p.regions = {{1 * 1024 * 1024, 1.0, false}};
    p.accessSkew = 1;
    TraceGenerator gen(p, 43, 0, AddressSpace::forThread(0));
    Addr base = ~Addr{0};
    std::vector<Addr> addrs;
    for (int i = 0; i < 50000; ++i) {
        const Addr a = gen.next().addr;
        base = std::min(base, a);
        addrs.push_back(a);
    }
    int lower_half = 0;
    for (const Addr a : addrs)
        lower_half += (a - base) < 512 * 1024;
    EXPECT_NEAR(lower_half / 50000.0, 0.5, 0.02);
}

TEST(TraceGenTest, SkewOutOfRangeRejected)
{
    BenchmarkProfile p = simpleProfile();
    p.accessSkew = 0;
    TraceGenerator gen_ok(simpleProfile(), 1, 0,
                          AddressSpace::forThread(0)); // sanity
    EXPECT_THROW(p.validate(), FatalError);
    p.accessSkew = 9;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(TraceGenTest, MispredictRateMatches)
{
    auto p = simpleProfile();
    p.branchMispredictRate = 0.05;
    TraceGenerator gen(p, 29, 0, AddressSpace::forThread(0));
    int branches = 0, mispredicts = 0;
    for (int i = 0; i < 400000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::kBranch) {
            ++branches;
            mispredicts += op.mispredict;
        }
    }
    ASSERT_GT(branches, 0);
    EXPECT_NEAR(mispredicts / double(branches), 0.05, 0.01);
}

TEST(TraceGenTest, FetchAddressesStayInCodeFootprint)
{
    const auto p = simpleProfile();
    const AddressSpace space = AddressSpace::forThread(5);
    TraceGenerator gen(p, 31, 5, space);
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = gen.next();
        if (op.fetchLineCross) {
            EXPECT_GE(op.fetchAddr, space.privateBase);
            EXPECT_LT(op.fetchAddr, space.privateBase + p.codeFootprint);
        }
    }
}

} // namespace
} // namespace smtflex
