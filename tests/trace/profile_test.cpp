/**
 * @file
 * Tests for BenchmarkProfile validation and helpers.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "trace/profile.h"

namespace smtflex {
namespace {

BenchmarkProfile
validProfile()
{
    BenchmarkProfile p;
    p.name = "test";
    p.mix = {.load = 0.3, .store = 0.1, .intAlu = 0.4, .intMul = 0.02,
             .fp = 0.08, .branch = 0.1};
    p.regions = {{64 * 1024, 0.7, false}, {8 * 1024 * 1024, 0.3, true}};
    return p;
}

TEST(ProfileTest, ValidProfilePasses)
{
    EXPECT_NO_THROW(validProfile().validate());
}

TEST(ProfileTest, EmptyNameRejected)
{
    auto p = validProfile();
    p.name.clear();
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProfileTest, MixMustSumToOne)
{
    auto p = validProfile();
    p.mix.load = 0.5; // breaks the sum
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProfileTest, RegionProbabilitiesMustSumToOne)
{
    auto p = validProfile();
    p.regions[0].probability = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProfileTest, MemOpsRequireRegions)
{
    auto p = validProfile();
    p.regions.clear();
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProfileTest, NoMemOpsAllowsNoRegions)
{
    auto p = validProfile();
    p.mix = {.load = 0.0, .store = 0.0, .intAlu = 0.8, .intMul = 0.0,
             .fp = 0.1, .branch = 0.1};
    p.regions.clear();
    EXPECT_NO_THROW(p.validate());
}

TEST(ProfileTest, DepDistLowerBound)
{
    auto p = validProfile();
    p.meanDepDist = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProfileTest, TinyRegionRejected)
{
    auto p = validProfile();
    p.regions[0].bytes = 32; // below one line
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProfileTest, MemFootprintBeyond)
{
    const auto p = validProfile();
    // Both regions larger than 4 KiB.
    EXPECT_DOUBLE_EQ(p.memFootprintBeyond(4 * 1024), 1.0);
    // Only the 8 MiB streaming region exceeds 64 KiB.
    EXPECT_DOUBLE_EQ(p.memFootprintBeyond(64 * 1024), 0.3);
    // Nothing exceeds 16 MiB.
    EXPECT_DOUBLE_EQ(p.memFootprintBeyond(16 * 1024 * 1024), 0.0);
}

} // namespace
} // namespace smtflex
