/**
 * @file
 * Tests for the SPEC-like profile registry: presence, validity, and the
 * diversity properties the paper's benchmark selection relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

TEST(SpecProfilesTest, TwelveBenchmarks)
{
    EXPECT_EQ(specBenchmarkNames().size(), 12u);
    EXPECT_EQ(specProfiles().size(), 12u);
}

TEST(SpecProfilesTest, NamesUniqueAndResolvable)
{
    std::set<std::string> seen;
    for (const auto &name : specBenchmarkNames()) {
        EXPECT_TRUE(seen.insert(name).second) << "duplicate " << name;
        EXPECT_EQ(specProfile(name).name, name);
    }
}

TEST(SpecProfilesTest, UnknownNameThrows)
{
    EXPECT_THROW(specProfile("notabenchmark"), FatalError);
}

TEST(SpecProfilesTest, AllProfilesValidate)
{
    for (const auto *p : specProfiles())
        EXPECT_NO_THROW(p->validate()) << p->name;
}

TEST(SpecProfilesTest, PaperNamedBenchmarksPresent)
{
    // Benchmarks the paper discusses by name (Figs. 4 and 9).
    for (const char *name :
         {"tonto", "libquantum", "mcf", "calculix", "h264ref", "hmmer"})
        EXPECT_NO_THROW(specProfile(name)) << name;
}

TEST(SpecProfilesTest, SelectionSpansMemoryIntensity)
{
    // The selection must contain clearly bandwidth-bound profiles (large
    // streaming footprint) and clearly cache-resident ones.
    int streaming_heavy = 0, cache_resident = 0;
    for (const auto *p : specProfiles()) {
        double streaming_frac = 0.0;
        for (const auto &r : p->regions)
            if (r.streaming)
                streaming_frac += r.probability;
        if (streaming_frac > 0.5)
            ++streaming_heavy;
        if (p->memFootprintBeyond(256 * 1024) < 0.05)
            ++cache_resident;
    }
    EXPECT_GE(streaming_heavy, 2);
    EXPECT_GE(cache_resident, 3);
}

TEST(SpecProfilesTest, SelectionSpansIlp)
{
    double min_dep = 1e9, max_dep = 0.0;
    for (const auto *p : specProfiles()) {
        min_dep = std::min(min_dep, p->meanDepDist);
        max_dep = std::max(max_dep, p->meanDepDist);
    }
    EXPECT_LT(min_dep, 3.0) << "need at least one low-ILP benchmark";
    EXPECT_GT(max_dep, 5.0) << "need at least one high-ILP benchmark";
}

TEST(SpecProfilesTest, SelectionSpansBranchBehaviour)
{
    double min_mr = 1.0, max_mr = 0.0;
    for (const auto *p : specProfiles()) {
        min_mr = std::min(min_mr, p->branchMispredictRate);
        max_mr = std::max(max_mr, p->branchMispredictRate);
    }
    EXPECT_LT(min_mr, 0.005);
    EXPECT_GT(max_mr, 0.02);
}

TEST(SpecProfilesTest, MemoryBoundProfilesAreMemoryBound)
{
    // Streaming sweeps far beyond the LLC dominate libquantum/lbm...
    EXPECT_GT(specProfile("libquantum").memFootprintBeyond(8u << 20), 0.5);
    EXPECT_GT(specProfile("lbm").memFootprintBeyond(8u << 20), 0.5);
    // ...mcf misses the LLC on a sizable fraction of accesses...
    EXPECT_GT(specProfile("mcf").memFootprintBeyond(8u << 20), 0.05);
    // ...while hmmer is fully cache-resident.
    EXPECT_LT(specProfile("hmmer").memFootprintBeyond(256 * 1024), 0.01);
}

} // namespace
} // namespace smtflex
