/**
 * @file
 * Parameterised sweep over the full extended benchmark registry: every
 * profile must generate sane streams and show the canonical core-type
 * performance ordering (big >= medium >= small) in isolation.
 */

#include <gtest/gtest.h>

#include "sim/chip_sim.h"
#include "trace/spec_profiles.h"
#include "trace/tracegen.h"

namespace smtflex {
namespace {

class RegistrySweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RegistrySweep, StreamStatisticsMatchProfile)
{
    const BenchmarkProfile &p = specProfile(GetParam());
    TraceGenerator gen(p, 5, 0, AddressSpace::forThread(0));
    int mem = 0, branches = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        const MicroOp op = gen.next();
        mem += op.isMem();
        branches += op.cls == OpClass::kBranch;
    }
    EXPECT_NEAR(mem / double(n), p.mix.load + p.mix.store, 0.02);
    EXPECT_NEAR(branches / double(n), p.mix.branch, 0.015);
}

TEST_P(RegistrySweep, IsolatedCoreTypeOrdering)
{
    const BenchmarkProfile &p = specProfile(GetParam());
    auto isolated = [&](const CoreParams &core) {
        ChipConfig cfg = ChipConfig::homogeneous("iso", core, 1);
        ChipSim chip(cfg);
        Placement pl;
        pl.entries = {{0, 0}};
        const SimResult r =
            chip.runMultiProgram({{&p, 6'000, 2'000}}, pl, 9);
        return r.threads[0].ipc();
    };
    const double big = isolated(CoreParams::big());
    const double medium = isolated(CoreParams::medium());
    const double small = isolated(CoreParams::small());
    EXPECT_GT(big, medium) << GetParam();
    EXPECT_GT(medium, small * 0.98) << GetParam();
    // Sanity bounds: nothing exceeds the dispatch width, nothing stalls
    // to a standstill.
    EXPECT_LT(big, 4.0) << GetParam();
    EXPECT_GT(small, 0.02) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RegistrySweep,
                         ::testing::ValuesIn(specAllBenchmarkNames()));

} // namespace
} // namespace smtflex
