/**
 * @file
 * Tests for trace capture/replay: round-trip fidelity, validation, and
 * replay-thread semantics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.h"
#include "trace/spec_profiles.h"
#include "trace/trace_io.h"

namespace smtflex {
namespace {

TEST(TraceIoTest, RoundTripPreservesOps)
{
    TraceGenerator gen(specProfile("soplex"), 3, 1,
                       AddressSpace::forThread(1));
    TraceGenerator ref(specProfile("soplex"), 3, 1,
                       AddressSpace::forThread(1));
    std::stringstream file;
    writeTrace(file, gen, 2000);
    const auto ops = readTrace(file);
    ASSERT_EQ(ops.size(), 2000u);
    for (const MicroOp &op : ops) {
        const MicroOp expect = ref.next();
        EXPECT_EQ(op.cls, expect.cls);
        EXPECT_EQ(op.mispredict, expect.mispredict);
        EXPECT_EQ(op.fetchLineCross, expect.fetchLineCross);
        EXPECT_EQ(op.depDist, expect.depDist);
        EXPECT_EQ(op.addr, expect.addr);
        EXPECT_EQ(op.fetchAddr, expect.fetchAddr);
    }
}

TEST(TraceIoTest, RejectsGarbage)
{
    std::stringstream not_a_trace("hello world 3");
    EXPECT_THROW(readTrace(not_a_trace), FatalError);

    std::stringstream wrong_version("smtflex-trace 99 10");
    EXPECT_THROW(readTrace(wrong_version), FatalError);

    std::stringstream truncated("smtflex-trace 1 5\n0 0 0 1 100 0\n");
    EXPECT_THROW(readTrace(truncated), FatalError);

    std::stringstream bad_class("smtflex-trace 1 1\n9 0 0 1 100 0\n");
    EXPECT_THROW(readTrace(bad_class), FatalError);
}

TEST(TraceIoTest, EmptyTraceRejected)
{
    TraceGenerator gen(specProfile("hmmer"), 1, 0,
                       AddressSpace::forThread(0));
    std::stringstream file;
    EXPECT_THROW(writeTrace(file, gen, 0), FatalError);
}

TEST(TraceReplayTest, NonLoopingStopsAtEnd)
{
    std::vector<MicroOp> ops(10);
    TraceReplayThread thread(ops, /*loop=*/false);
    int generated = 0;
    while (thread.hasWork()) {
        thread.nextOp();
        ++generated;
    }
    EXPECT_EQ(generated, 10);
    for (int i = 0; i < 10; ++i)
        thread.onRetire(100 + i);
    EXPECT_TRUE(thread.finishedOnePass());
    EXPECT_EQ(thread.finishCycle(), 109u);
}

TEST(TraceReplayTest, LoopingWrapsAround)
{
    std::vector<MicroOp> ops(4);
    for (int i = 0; i < 4; ++i)
        ops[static_cast<std::size_t>(i)].depDist =
            static_cast<std::uint8_t>(i);
    TraceReplayThread thread(ops, /*loop=*/true);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(thread.nextOp().depDist, i);
    }
    EXPECT_TRUE(thread.hasWork());
}

TEST(TraceReplayTest, EmptyTraceRejected)
{
    const std::vector<MicroOp> none;
    EXPECT_THROW(TraceReplayThread(none, false), FatalError);
}

} // namespace
} // namespace smtflex
