/**
 * @file
 * Tests for the DRAM + off-chip bus model: latency composition, bank
 * parallelism, and bus bandwidth saturation (the paper's key shared
 * bottleneck).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "dram/dram.h"

namespace smtflex {
namespace {

DramConfig
paperConfig()
{
    return DramConfig{}; // defaults match Table 1
}

TEST(DramConfigTest, CycleConversions)
{
    const DramConfig cfg = paperConfig();
    // 45 ns at 2.66 GHz = 119.7 -> 120 cycles.
    EXPECT_EQ(cfg.bankLatencyCycles(), 120u);
    // 64 B at 8 GB/s = 8 ns = 21.28 -> 22 cycles.
    EXPECT_EQ(cfg.busTransferCycles(), 22u);
}

TEST(DramConfigTest, DoubleBandwidthHalvesTransfer)
{
    DramConfig cfg = paperConfig();
    cfg.busBandwidthGBps = 16.0;
    EXPECT_EQ(cfg.busTransferCycles(), 11u);
}

TEST(DramTest, UncontendedReadLatency)
{
    DramModel dram(paperConfig());
    const Cycle done = dram.read(1000, 0x40);
    EXPECT_EQ(done, 1000u + 120u + 22u);
    EXPECT_EQ(dram.stats().reads, 1u);
    EXPECT_DOUBLE_EQ(dram.stats().avgReadLatency(), 142.0);
}

TEST(DramTest, SameBankSerialisesAtTheBank)
{
    DramModel dram(paperConfig());
    const Cycle a = dram.read(0, 0);
    const Cycle b = dram.read(0, 8 * kLineSize); // same bank (8 banks)
    EXPECT_EQ(a, 142u);
    // Second access waits for the bank (120) then starts its own 120.
    EXPECT_EQ(b, 120u + 120u + 22u);
}

TEST(DramTest, DifferentBanksOverlapButShareBus)
{
    DramModel dram(paperConfig());
    const Cycle a = dram.read(0, 0 * kLineSize);
    const Cycle b = dram.read(0, 1 * kLineSize);
    EXPECT_EQ(a, 142u);
    // Bank access overlaps; the bus serialises the two transfers.
    EXPECT_EQ(b, 142u + 22u);
}

TEST(DramTest, BusSaturationBoundsThroughput)
{
    // Issue far more line fills than the bus can carry; average latency
    // must grow roughly linearly with the queue (bandwidth wall).
    DramModel dram(paperConfig());
    const int n = 1000;
    Cycle last = 0;
    for (int i = 0; i < n; ++i)
        last = dram.read(0, static_cast<Addr>(i) * kLineSize);
    // n transfers cannot finish faster than n * transfer cycles.
    EXPECT_GE(last, static_cast<Cycle>(n) * 22u);
    // Utilisation over the busy interval is ~100%.
    EXPECT_GT(dram.busUtilisation(last), 0.95);
}

TEST(DramTest, WritesConsumeBandwidthWithoutLatencyStat)
{
    DramModel dram(paperConfig());
    dram.write(0, 0);
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().reads, 0u);
    // A read right after the write sees bus pressure.
    const Cycle done = dram.read(0, 1 * kLineSize);
    EXPECT_GT(done, 142u);
}

TEST(DramTest, BadConfigRejected)
{
    DramConfig cfg = paperConfig();
    cfg.numBanks = 0;
    EXPECT_THROW(DramModel{cfg}, FatalError);
    cfg = paperConfig();
    cfg.busBandwidthGBps = 0.0;
    EXPECT_THROW(DramModel{cfg}, FatalError);
}

TEST(DramTest, UtilisationZeroWhenIdle)
{
    DramModel dram(paperConfig());
    EXPECT_DOUBLE_EQ(dram.busUtilisation(0), 0.0);
    EXPECT_DOUBLE_EQ(dram.busUtilisation(1000), 0.0);
}

} // namespace
} // namespace smtflex
