/**
 * @file
 * Tests for STP / ANTT / EDP / speedup (Eyerman & Eeckhout metrics).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "metrics/metrics.h"

namespace smtflex {
namespace {

SimResult
makeResult(const std::vector<std::pair<InstrCount, Cycle>> &threads)
{
    SimResult r;
    for (const auto &[budget, cycles] : threads) {
        ThreadResult t;
        t.budget = budget;
        t.startCycle = 0;
        t.finishCycle = cycles;
        t.finished = true;
        r.threads.push_back(t);
    }
    return r;
}

TEST(MetricsTest, StpSingleProgramAtIsolatedSpeedIsOne)
{
    // 1000 instructions in 500 cycles = IPC 2; isolated IPC 2 -> STP 1.
    const SimResult r = makeResult({{1000, 500}});
    EXPECT_NEAR(systemThroughput(r, {2.0}), 1.0, 1e-12);
    EXPECT_NEAR(avgNormalisedTurnaround(r, {2.0}), 1.0, 1e-12);
}

TEST(MetricsTest, StpSumsNormalisedProgress)
{
    // Two programs, each at half their isolated speed -> STP = 1.0.
    const SimResult r = makeResult({{1000, 1000}, {1000, 1000}});
    EXPECT_NEAR(systemThroughput(r, {2.0, 2.0}), 1.0, 1e-12);
    // ANTT: each program is 2x slower -> 2.0.
    EXPECT_NEAR(avgNormalisedTurnaround(r, {2.0, 2.0}), 2.0, 1e-12);
}

TEST(MetricsTest, NormalisedProgressPerThread)
{
    const SimResult r = makeResult({{1000, 500}, {1000, 2000}});
    const auto np = normalisedProgress(r, {2.0, 2.0});
    ASSERT_EQ(np.size(), 2u);
    EXPECT_NEAR(np[0], 1.0, 1e-12);
    EXPECT_NEAR(np[1], 0.25, 1e-12);
}

TEST(MetricsTest, AnttIsMeanOfSlowdowns)
{
    // Slowdowns 2x and 4x -> ANTT 3.
    const SimResult r = makeResult({{1000, 1000}, {1000, 2000}});
    EXPECT_NEAR(avgNormalisedTurnaround(r, {2.0, 2.0}), 3.0, 1e-12);
}

TEST(MetricsTest, MismatchedBaselinesRejected)
{
    const SimResult r = makeResult({{1000, 500}});
    EXPECT_THROW(systemThroughput(r, {2.0, 2.0}), FatalError);
    EXPECT_THROW(systemThroughput(r, {}), FatalError);
    EXPECT_THROW(systemThroughput(r, {0.0}), FatalError);
}

TEST(MetricsTest, UnfinishedThreadRejected)
{
    SimResult r = makeResult({{1000, 500}});
    r.threads[0].finished = false;
    EXPECT_THROW(systemThroughput(r, {2.0}), FatalError);
}

TEST(MetricsTest, WarmupWindowUsedForIpc)
{
    SimResult r = makeResult({{1000, 1500}});
    r.threads[0].startCycle = 1000; // measured window = 500 cycles
    EXPECT_NEAR(systemThroughput(r, {2.0}), 1.0, 1e-12);
}

TEST(MetricsTest, EnergyDelayProduct)
{
    // EDP ~ P / T^2: doubling throughput at equal power quarters EDP.
    EXPECT_NEAR(energyDelayProduct(40.0, 2.0) /
                    energyDelayProduct(40.0, 4.0),
                4.0, 1e-12);
    EXPECT_THROW(energyDelayProduct(40.0, 0.0), FatalError);
}

TEST(MetricsTest, Speedup)
{
    EXPECT_DOUBLE_EQ(speedup(1000, 500), 2.0);
    EXPECT_DOUBLE_EQ(speedup(500, 1000), 0.5);
    EXPECT_THROW(speedup(100, 0), FatalError);
}

} // namespace
} // namespace smtflex
