/**
 * @file
 * Tests for the set-associative LRU cache, including the non-power-of-two
 * geometries from Table 1 and property sweeps over geometries.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cache/cache.h"
#include "common/log.h"
#include "common/rng.h"

namespace smtflex {
namespace {

constexpr std::uint64_t kKiB = 1024;

TEST(CacheTest, ColdMissesThenHits)
{
    SetAssocCache cache("l1", {32 * kKiB, 4});
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1038, false).hit); // same line
    EXPECT_FALSE(cache.access(0x1040, false).hit); // next line
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTest, LruEviction)
{
    // One set: 2 ways, 2 lines total.
    SetAssocCache cache("tiny", {128, 2});
    ASSERT_EQ(cache.geometry().numSets(), 1u);
    cache.access(0 * 64, false);   // A
    cache.access(1 * 64, false);   // B
    cache.access(0 * 64, false);   // touch A -> B is LRU
    cache.access(2 * 64, false);   // C evicts B
    EXPECT_TRUE(cache.contains(0 * 64));
    EXPECT_FALSE(cache.contains(1 * 64));
    EXPECT_TRUE(cache.contains(2 * 64));
}

TEST(CacheTest, DirtyEvictionTriggersWriteback)
{
    SetAssocCache cache("tiny", {128, 2});
    cache.access(0 * 64, true);    // dirty A
    cache.access(1 * 64, false);   // clean B
    const auto r = cache.access(2 * 64, false); // evicts A (LRU, dirty)
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, CleanEvictionNoWriteback)
{
    SetAssocCache cache("tiny", {128, 2});
    cache.access(0 * 64, false);
    cache.access(1 * 64, false);
    const auto r = cache.access(2 * 64, false);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(CacheTest, WriteToCleanLineMarksDirty)
{
    SetAssocCache cache("tiny", {128, 2});
    cache.access(0 * 64, false);   // clean fill
    cache.access(0 * 64, true);    // hit-for-write -> dirty
    cache.access(1 * 64, false);
    const auto r = cache.access(2 * 64, false); // evict line 0
    EXPECT_TRUE(r.writeback);
}

TEST(CacheTest, InvalidateAllEmptiesCache)
{
    SetAssocCache cache("l1", {4 * kKiB, 4});
    for (Addr a = 0; a < 4 * kKiB; a += 64)
        cache.access(a, false);
    cache.invalidateAll();
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(CacheTest, NonPowerOfTwoGeometry)
{
    // Table 1 small-core L1: 6 KB 2-way -> 48 sets.
    SetAssocCache cache("small-l1", {6 * kKiB, 2});
    EXPECT_EQ(cache.geometry().numSets(), 48u);
    // A working set equal to the capacity must fit entirely.
    const std::uint64_t lines = 6 * kKiB / 64;
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < lines; ++i)
        hits += cache.access(i * 64, false).hit;
    EXPECT_EQ(hits, lines);
}

TEST(CacheTest, BadGeometryRejected)
{
    EXPECT_THROW(SetAssocCache("bad", {100, 4}), FatalError);       // not line multiple
    EXPECT_THROW(SetAssocCache("bad", {1024, 0}), FatalError);      // zero assoc
    EXPECT_THROW(SetAssocCache("bad", {192, 4}), FatalError);       // 3 lines, 4-way
    EXPECT_THROW(SetAssocCache("bad", {0, 1}), FatalError);         // zero sets
}

TEST(CacheTest, ContainsDoesNotPerturbState)
{
    SetAssocCache cache("tiny", {128, 2});
    cache.access(0 * 64, false);
    cache.access(1 * 64, false);
    // Probing A must not refresh its LRU position.
    cache.contains(0 * 64);
    const auto before = cache.stats().accesses;
    cache.access(2 * 64, false); // evicts A (still LRU despite contains)
    EXPECT_FALSE(cache.contains(0 * 64));
    EXPECT_TRUE(cache.contains(1 * 64));
    EXPECT_EQ(cache.stats().accesses, before + 1);
}

TEST(CacheTest, MissRateTracksWorkingSetVsCapacity)
{
    // Random accesses over a working set 4x the cache capacity should miss
    // roughly 3/4 of the time; over half the capacity, ~0 (after warmup).
    Rng rng(1);
    SetAssocCache big_ws("c", {32 * kKiB, 8});
    const std::uint64_t ws_lines = (128 * kKiB) / 64;
    for (int i = 0; i < 200000; ++i)
        big_ws.access(rng.nextRange(ws_lines) * 64, false);
    EXPECT_NEAR(big_ws.stats().missRate(), 0.75, 0.05);

    SetAssocCache small_ws("c2", {32 * kKiB, 8});
    const std::uint64_t small_lines = (16 * kKiB) / 64;
    for (int i = 0; i < 50000; ++i)
        small_ws.access(rng.nextRange(small_lines) * 64, false);
    EXPECT_LT(small_ws.stats().missRate(), 0.02);
}

/** Property sweep across Table 1 geometries. */
class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>>
{
};

TEST_P(CacheGeometrySweep, CapacityWorkingSetAlwaysHitsAfterWarmup)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache cache("sweep", {size, assoc});
    const std::uint64_t lines = size / 64;
    // Two sequential passes: second pass must be all hits under true LRU
    // with modulo indexing of a dense footprint.
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, i % 3 == 0);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < lines; ++i)
        hits += cache.access(i * 64, false).hit;
    EXPECT_EQ(hits, lines);
    EXPECT_EQ(cache.stats().misses, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Geometries, CacheGeometrySweep,
    ::testing::Values(
        std::make_tuple(32 * kKiB, 4u),   // big L1
        std::make_tuple(16 * kKiB, 2u),   // medium L1
        std::make_tuple(6 * kKiB, 2u),    // small L1
        std::make_tuple(256 * kKiB, 8u),  // big L2
        std::make_tuple(128 * kKiB, 4u),  // medium L2
        std::make_tuple(48 * kKiB, 4u),   // small L2
        std::make_tuple(8 * 1024 * kKiB, 16u))); // LLC

} // namespace
} // namespace smtflex
