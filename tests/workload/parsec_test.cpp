/**
 * @file
 * Tests for the PARSEC-like application models and their runner:
 * completion, determinism, scaling behaviour, varying active thread
 * counts (paper Fig. 1), and synchronisation semantics.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "study/design_space.h"
#include "workload/parsec.h"
#include "workload/parsec_runner.h"

namespace smtflex {
namespace {

/** A small, fast app model for runner-semantics tests. */
ParsecProfile
tinyApp(std::uint32_t phases, double critical, std::uint32_t max_par)
{
    ParsecProfile p = parsecProfile("blackscholes"); // copy kernels
    p.name = "tiny";
    p.seqInitInstr = 2'000;
    p.seqFinalInstr = 1'000;
    p.roiInstr = 60'000;
    p.numPhases = phases;
    p.serialPerPhase = 0;
    p.imbalanceCv = 0.10;
    p.criticalFraction = critical;
    p.maxParallelism = max_par;
    p.validate();
    return p;
}

TEST(ParsecProfilesTest, RegistryComplete)
{
    EXPECT_EQ(parsecBenchmarkNames().size(), 11u);
    for (const auto &name : parsecBenchmarkNames()) {
        const ParsecProfile &p = parsecProfile(name);
        EXPECT_EQ(p.name, name);
        EXPECT_NO_THROW(p.validate());
    }
    EXPECT_THROW(parsecProfile("facesim"), FatalError);
}

TEST(ParsecProfilesTest, ScalingDiversity)
{
    // The suite needs both well-scaling and pipeline-limited applications
    // (paper Figs. 1 and 12).
    int scalable = 0, limited = 0;
    for (const auto *p : parsecProfiles()) {
        if (p->maxParallelism >= 24)
            ++scalable;
        if (p->maxParallelism <= 12)
            ++limited;
    }
    EXPECT_GE(scalable, 3);
    EXPECT_GE(limited, 2);
}

class ParsecRegistrySweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParsecRegistrySweep, EveryModelRunsToCompletion)
{
    // Smoke: every registered application model completes on a mid-size
    // chip with active-thread variation recorded.
    ParsecProfile app = parsecProfile(GetParam());
    app.roiInstr = 120'000; // shrink for test speed, keep the structure
    app.seqInitInstr = std::min<InstrCount>(app.seqInitInstr, 10'000);
    app.seqFinalInstr = std::min<InstrCount>(app.seqFinalInstr, 5'000);
    ParsecRunner runner(paperDesign("2B10s"), app, 8, 42);
    const ParsecRunResult r = runner.run();
    ASSERT_TRUE(r.completed) << GetParam();
    EXPECT_GT(r.roiCycles(), 0u);
    EXPECT_GT(r.totalCycles, r.roiCycles());
    // The sim result is well-formed: 12 cores, real retired work.
    EXPECT_EQ(r.sim.cores.size(), 12u);
    std::uint64_t retired = 0;
    for (const auto &core : r.sim.cores)
        retired += core.stats.retired;
    EXPECT_GT(retired, app.roiInstr);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ParsecRegistrySweep,
                         ::testing::ValuesIn(parsecBenchmarkNames()));

TEST(ParsecRunnerTest, CompletesAndStampsRoi)
{
    const auto app = tinyApp(3, 0.0, 64);
    ParsecRunner runner(paperDesign("4B"), app, 4, 42);
    const ParsecRunResult r = runner.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.roiStartCycle, 0u);
    EXPECT_GT(r.roiEndCycle, r.roiStartCycle);
    EXPECT_GT(r.totalCycles, r.roiEndCycle);
}

TEST(ParsecRunnerTest, Deterministic)
{
    const auto app = tinyApp(3, 0.001, 64);
    ParsecRunner a(paperDesign("4B"), app, 6, 42);
    ParsecRunner b(paperDesign("4B"), app, 6, 42);
    EXPECT_EQ(a.run().totalCycles, b.run().totalCycles);
}

TEST(ParsecRunnerTest, MoreThreadsShortenTheRoi)
{
    const auto app = tinyApp(4, 0.0, 64);
    const ChipConfig cfg = paperDesign("20s");
    ParsecRunner one(cfg, app, 2, 42);
    ParsecRunner many(cfg, app, 16, 42);
    const Cycle roi2 = one.run().roiCycles();
    const Cycle roi16 = many.run().roiCycles();
    EXPECT_LT(roi16, roi2 / 3) << "parallel work must scale";
}

TEST(ParsecRunnerTest, MaxParallelismCapsScaling)
{
    ParsecProfile app = tinyApp(4, 0.0, 4);
    const ChipConfig cfg = paperDesign("20s");
    ParsecRunner four(cfg, app, 4, 42);
    ParsecRunner sixteen(cfg, app, 16, 42);
    const Cycle roi4 = four.run().roiCycles();
    const Cycle roi16 = sixteen.run().roiCycles();
    // Beyond maxParallelism extra threads add nothing.
    EXPECT_GT(static_cast<double>(roi16),
              0.8 * static_cast<double>(roi4));
}

TEST(ParsecRunnerTest, CriticalSectionsLimitScaling)
{
    // Heavy critical sections serialise: speedup from 2 to 16 threads must
    // be clearly worse than for the lock-free twin.
    const ChipConfig cfg = paperDesign("20s");
    const auto free_app = tinyApp(2, 0.0, 64);
    ParsecProfile locky = tinyApp(2, 0.30, 64);

    const double free_speedup =
        static_cast<double>(ParsecRunner(cfg, free_app, 2, 42)
                                .run().roiCycles()) /
        static_cast<double>(ParsecRunner(cfg, free_app, 16, 42)
                                .run().roiCycles());
    const double locky_speedup =
        static_cast<double>(ParsecRunner(cfg, locky, 2, 42)
                                .run().roiCycles()) /
        static_cast<double>(ParsecRunner(cfg, locky, 16, 42)
                                .run().roiCycles());
    EXPECT_LT(locky_speedup, 0.75 * free_speedup);
}

TEST(ParsecRunnerTest, ActiveThreadCountVaries)
{
    // With imbalance and barriers, the fraction of ROI time at full
    // parallelism is < 1 and some time is spent at lower counts (Fig. 1).
    ParsecProfile app = tinyApp(6, 0.0, 64);
    app.imbalanceCv = 0.5;
    ParsecRunner runner(paperDesign("20s"), app, 16, 42);
    const ParsecRunResult r = runner.run();
    ASSERT_TRUE(r.completed);
    const auto &frac = r.roiActiveThreadFractions;
    ASSERT_GT(frac.size(), 16u);
    EXPECT_LT(frac[16], 0.95);
    double below_full = 0.0;
    for (std::size_t k = 0; k < 16; ++k)
        below_full += frac[k];
    EXPECT_GT(below_full, 0.05);
}

TEST(ParsecRunnerTest, SerialPhasesRunOnTheBigCoreAlone)
{
    ParsecProfile app = tinyApp(3, 0.0, 64);
    app.serialPerPhase = 5'000;
    ParsecRunner runner(paperDesign("1B15s"), app, 8, 42);
    const ParsecRunResult r = runner.run();
    ASSERT_TRUE(r.completed);
    // Core 0 is the big core; it must have executed the serial phases:
    // more powered cycles than any small core... at least nonzero single-
    // thread episodes. Check via active-thread fractions: some ROI time
    // must be spent with exactly one thread (the inter-phase serial work).
    EXPECT_GT(r.roiActiveThreadFractions.at(1), 0.02);
}

TEST(ParsecRunnerTest, ThrottlingCompletesAndAcceleratesContendedLocks)
{
    // Heavy critical sections on a fully SMT-loaded big-core chip: pausing
    // the holder's co-runners must (a) still complete and (b) not slow the
    // app down; with this much contention it should speed it up.
    ParsecProfile app = tinyApp(2, 0.25, 64);
    app.roiInstr = 200'000;
    const ChipConfig cfg = paperDesign("4B");

    ParsecRunner base(cfg, app, 24, 42, false);
    const ParsecRunResult rb = base.run();
    ASSERT_TRUE(rb.completed);

    ParsecRunner throttled(cfg, app, 24, 42, true);
    const ParsecRunResult rt = throttled.run();
    ASSERT_TRUE(rt.completed);

    EXPECT_LT(rt.roiCycles(), 1.05 * rb.roiCycles());
}

TEST(ParsecRunnerTest, ThrottlingNeutralWithoutLocks)
{
    ParsecProfile app = tinyApp(3, 0.0, 64);
    const ChipConfig cfg = paperDesign("4B");
    ParsecRunner base(cfg, app, 8, 42, false);
    ParsecRunner throttled(cfg, app, 8, 42, true);
    const Cycle b = base.run().roiCycles();
    const Cycle t = throttled.run().roiCycles();
    EXPECT_EQ(b, t) << "no critical sections -> identical execution";
}

TEST(ParsecRunnerTest, TooManyThreadsRejected)
{
    const auto app = tinyApp(2, 0.0, 64);
    const ChipConfig cfg = paperDesign("4B").withSmt(false); // 4 contexts
    EXPECT_THROW(ParsecRunner(cfg, app, 5, 42), FatalError);
    EXPECT_THROW(ParsecRunner(cfg, app, 0, 42), FatalError);
}

TEST(ParsecRunnerTest, BimodalAppShowsOneAndManyActivePeaks)
{
    // bodytrack-style: serial bridges between phases -> time at 1 thread
    // AND time at full count (paper Fig. 1's bimodal benchmarks). The
    // parallel phases must carry enough work to register at 20 threads.
    ParsecProfile app = tinyApp(5, 0.0, 64);
    app.roiInstr = 1'200'000;
    app.serialPerPhase = 5'000;
    app.imbalanceCv = 0.05;
    ParsecRunner runner(paperDesign("20s"), app, 20, 42);
    const ParsecRunResult r = runner.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.roiActiveThreadFractions.at(1), 0.05);
    EXPECT_GT(r.roiActiveThreadFractions.at(20), 0.2);
}

} // namespace
} // namespace smtflex
