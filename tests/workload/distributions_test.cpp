/**
 * @file
 * Tests for the thread-count distributions of paper Section 4.2.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "workload/distributions.h"

namespace smtflex {
namespace {

TEST(DistributionsTest, UniformIsUniform)
{
    const auto d = uniformThreadCounts(24);
    EXPECT_EQ(d.size(), 24u);
    for (std::size_t n = 1; n <= 24; ++n)
        EXPECT_NEAR(d.probability(n), 1.0 / 24.0, 1e-12);
    EXPECT_NEAR(d.mean(), 12.5, 1e-9);
}

TEST(DistributionsTest, DatacenterShape)
{
    // Paper Fig. 10a: peak at 1 thread, local hump around 7-9 threads,
    // small tail at 24.
    const auto d = datacenterThreadCounts(24);
    EXPECT_EQ(d.size(), 24u);
    // 1 thread is the global peak.
    for (std::size_t n = 2; n <= 24; ++n)
        EXPECT_GT(d.probability(1), d.probability(n)) << n;
    // The hump: 8 threads more likely than 4 and than 14.
    EXPECT_GT(d.probability(8), d.probability(4));
    EXPECT_GT(d.probability(8), d.probability(14));
    // Thin tail.
    EXPECT_LT(d.probability(24), 0.02);
    // Peak magnitude ~0.11 like the paper's figure.
    EXPECT_NEAR(d.probability(1), 0.11, 0.03);
    // Skewed towards few threads.
    EXPECT_LT(d.mean(), 12.5);
}

TEST(DistributionsTest, MirroredDatacenterShape)
{
    const auto d = mirroredDatacenterThreadCounts(24);
    // Peak at 24 threads, hump around 16-18.
    for (std::size_t n = 1; n <= 23; ++n)
        EXPECT_GT(d.probability(24), d.probability(n)) << n;
    EXPECT_GT(d.probability(17), d.probability(21));
    EXPECT_GT(d.probability(17), d.probability(11));
    EXPECT_GT(d.mean(), 12.5);
}

TEST(DistributionsTest, MirrorSymmetry)
{
    const auto d = datacenterThreadCounts(24);
    const auto m = mirroredDatacenterThreadCounts(24);
    for (std::size_t n = 1; n <= 24; ++n)
        EXPECT_NEAR(d.probability(n), m.probability(25 - n), 1e-12);
}

TEST(DistributionsTest, ScalesToOtherThreadCounts)
{
    // The distributions project to larger machines (paper: "8 large cores
    // and up to 48 threads").
    const auto d = datacenterThreadCounts(48);
    EXPECT_EQ(d.size(), 48u);
    for (std::size_t n = 2; n <= 48; ++n)
        EXPECT_GT(d.probability(1), d.probability(n));
    // Hump scales with the machine: around 16 for 48 threads.
    EXPECT_GT(d.probability(16), d.probability(8));
    EXPECT_GT(d.probability(16), d.probability(28));
}

TEST(DistributionsTest, ZeroSizeRejected)
{
    EXPECT_THROW(uniformThreadCounts(0), FatalError);
    EXPECT_THROW(datacenterThreadCounts(0), FatalError);
}

} // namespace
} // namespace smtflex
