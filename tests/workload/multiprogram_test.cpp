/**
 * @file
 * Tests for multi-program workload construction, especially the balanced
 * random sampling of heterogeneous mixes (Velasquez et al.).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

namespace smtflex {
namespace {

TEST(HomogeneousWorkloadTest, NCopies)
{
    const auto w = homogeneousWorkload("tonto", 6);
    EXPECT_EQ(w.size(), 6u);
    EXPECT_EQ(w.name, "tontox6");
    for (const auto *p : w.programs)
        EXPECT_EQ(p->name, "tonto");
}

TEST(HomogeneousWorkloadTest, SpecsCarryBudgetAndWarmup)
{
    const auto specs = homogeneousWorkload("mcf", 3).specs(5000, 1000);
    ASSERT_EQ(specs.size(), 3u);
    for (const auto &s : specs) {
        EXPECT_EQ(s.budget, 5000u);
        EXPECT_EQ(s.warmup, 1000u);
        EXPECT_EQ(s.profile->name, "mcf");
    }
    EXPECT_THROW(homogeneousWorkload("mcf", 3).specs(0), FatalError);
    EXPECT_THROW(homogeneousWorkload("mcf", 0), FatalError);
}

TEST(HeterogeneousWorkloadsTest, BalancedSampling)
{
    // 12 mixes of n threads: every benchmark appears exactly n times.
    for (std::size_t n : {2u, 3u, 7u, 24u}) {
        const auto mixes = heterogeneousWorkloads(n, 12, 99);
        ASSERT_EQ(mixes.size(), 12u);
        std::map<std::string, int> counts;
        for (const auto &mix : mixes) {
            EXPECT_EQ(mix.size(), n);
            for (const auto *p : mix.programs)
                ++counts[p->name];
        }
        EXPECT_EQ(counts.size(), 12u);
        for (const auto &[name, count] : counts)
            EXPECT_EQ(count, static_cast<int>(n)) << name;
    }
}

TEST(HeterogeneousWorkloadsTest, DeterministicForSeed)
{
    const auto a = heterogeneousWorkloads(4, 12, 5);
    const auto b = heterogeneousWorkloads(4, 12, 5);
    for (std::size_t m = 0; m < a.size(); ++m)
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(a[m].programs[i], b[m].programs[i]);
}

TEST(HeterogeneousWorkloadsTest, DifferentSeedsDiffer)
{
    const auto a = heterogeneousWorkloads(8, 12, 5);
    const auto b = heterogeneousWorkloads(8, 12, 6);
    int same = 0, total = 0;
    for (std::size_t m = 0; m < a.size(); ++m)
        for (std::size_t i = 0; i < 8; ++i, ++total)
            same += a[m].programs[i] == b[m].programs[i];
    EXPECT_LT(same, total / 2);
}

TEST(HeterogeneousWorkloadsTest, MixesAreShuffledNotSorted)
{
    // At least one mix must contain two different benchmarks (catches a
    // non-shuffled pool).
    const auto mixes = heterogeneousWorkloads(2, 12, 1);
    bool any_mixed = false;
    for (const auto &mix : mixes)
        any_mixed |= mix.programs[0] != mix.programs[1];
    EXPECT_TRUE(any_mixed);
}

TEST(HeterogeneousWorkloadsTest, UnbalanceableRequestRejected)
{
    // 5 mixes x 5 threads = 25 slots cannot balance 12 benchmarks.
    EXPECT_THROW(heterogeneousWorkloads(5, 5, 1), FatalError);
    EXPECT_THROW(heterogeneousWorkloads(0, 12, 1), FatalError);
}

} // namespace
} // namespace smtflex
