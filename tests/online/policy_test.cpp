/**
 * @file
 * Golden oracle-consistency tests of the online policies: a converged
 * profile — sample budget raised to the study budget — feeds the pairing
 * policy the exact same affinity ranking the offline oracle computed from
 * its isolated-run table (the sampled solo runs are bit-identical to the
 * table's runs), so on mixes whose per-class memory-intensity orderings
 * agree between the sampled LLC-MPKI proxy and the oracle's static
 * formula, the online placement must reproduce scheduleOffline's
 * placement exactly.
 *
 * The reference mixes are chosen to avoid the proxies' known divergences
 * (mcf ranks first by off-chip traffic but fourth by the static formula;
 * the near-zero-LLC codes h264ref/sjeng/tonto/calculix/hmmer order
 * arbitrarily against each other at the noise floor), because those
 * divergences are a modelling difference, not a determinism bug.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "online/online_policy.h"
#include "online/online_profiler.h"
#include "sched/scheduler.h"
#include "study/design_space.h"
#include "study/study_engine.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace online {
namespace {

/** The study's reference options: the committed seed cache's identity. */
StudyOptions
referenceOptions()
{
    StudyOptions opts;
    opts.budget = 12'000;
    opts.warmup = 3'000;
    opts.seed = 12'345;
    opts.bandwidthGBps = 8.0;
    opts.cachePath.clear();
    return opts;
}

/** A converged sample phase: full study budget, same seed and bandwidth
 * — its solo runs are bit-identical to the oracle table's. */
ProfilerOptions
convergedProfiler()
{
    ProfilerOptions opts;
    opts.sampleBudget = 12'000;
    opts.sampleWarmup = 3'000;
    opts.seed = 12'345;
    opts.bandwidthGBps = 8.0;
    return opts;
}

std::vector<ThreadSpec>
specsFor(const std::vector<std::string> &benches)
{
    std::vector<ThreadSpec> specs;
    for (const auto &bench : benches)
        specs.push_back({&specProfile(bench), 12'000, 3'000});
    return specs;
}

void
expectSamePlacement(const Placement &online, const Placement &oracle,
                    const std::string &label)
{
    ASSERT_EQ(online.entries.size(), oracle.entries.size()) << label;
    for (std::size_t t = 0; t < online.entries.size(); ++t) {
        EXPECT_EQ(online.entries[t].core, oracle.entries[t].core)
            << label << " thread " << t;
        EXPECT_EQ(online.entries[t].slot, oracle.entries[t].slot)
            << label << " thread " << t;
    }
}

TEST(PolicyGoldenTest, ConvergedPairingReproducesOracle)
{
    StudyEngine engine(referenceOptions());
    const OfflineProfile &offline = engine.offline();

    struct Case
    {
        const char *design;
        std::vector<std::string> benches;
    };
    const std::vector<Case> cases = {
        // Homogeneous SMT chip: the whole mix is one class group, so the
        // full memory-intensity ordering drives the serpentine deal.
        {"4B", {"lbm", "libquantum", "milc", "soplex"}},
        {"4B", {"lbm", "milc", "soplex", "sjeng"}},
        // Heterogeneous: affinity rank splits big/small class groups.
        {"3B5s", {"lbm", "libquantum", "soplex", "sjeng", "gobmk",
                  "hmmer"}},
        {"2B10s", {"h264ref", "soplex", "gobmk", "lbm", "libquantum",
                   "milc"}},
    };

    OnlineOptions options;
    options.profiler = convergedProfiler();
    options.policy = "pairing";

    for (const auto &c : cases) {
        const ChipConfig config = paperDesign(c.design);
        const auto specs = specsFor(c.benches);
        const Placement oracle = scheduleOffline(config, specs, offline);
        const OnlineDecision decision =
            OnlineScheduler(options).decide(config, specs);
        expectSamePlacement(decision.placement, oracle,
                            std::string(c.design) + " mix");
    }
}

TEST(PolicyGoldenTest, ConvergedAffinityMatchesOracleBitwise)
{
    // The stronger property behind the placement identity: a converged
    // sample run IS the oracle's isolated run, bit for bit.
    StudyEngine engine(referenceOptions());
    const OfflineProfile &offline = engine.offline();
    OnlineProfiler profiler(convergedProfiler());
    for (const char *bench : {"mcf", "hmmer", "lbm", "h264ref"}) {
        const double sampled_big =
            profiler.sample(specProfile(bench), CoreType::kBig).ipc;
        const double sampled_small =
            profiler.sample(specProfile(bench), CoreType::kSmall).ipc;
        EXPECT_EQ(sampled_big, offline.ipc(bench, CoreType::kBig)) << bench;
        EXPECT_EQ(sampled_small, offline.ipc(bench, CoreType::kSmall))
            << bench;
        EXPECT_EQ(sampled_big / sampled_small, offline.bigAffinity(bench))
            << bench;
    }
}

TEST(PolicyTest, GreedyFillsBigCoresByAffinity)
{
    OnlineOptions options;
    options.profiler = convergedProfiler();
    options.policy = "greedy";
    const ChipConfig config = paperDesign("3B5s");
    // h264ref has the strongest sampled big-core affinity, lbm the
    // weakest: greedy must give h264ref the first big slot and push lbm
    // to a small core.
    const auto specs = specsFor({"lbm", "h264ref", "soplex", "milc"});
    const OnlineDecision decision =
        OnlineScheduler(options).decide(config, specs);
    const auto order = slotFillOrder(config);
    EXPECT_EQ(decision.placement.entries[1].core, order[0].core);
    EXPECT_EQ(decision.placement.entries[1].slot, order[0].slot);
    EXPECT_EQ(config.cores[decision.placement.entries[0].core].type,
              CoreType::kSmall);
}

TEST(PolicyTest, HysteresisConvergesToPairingPlacement)
{
    // With a converged final epoch the hysteresis damper has no better
    // challenger left: its placement must match plain pairing's (though
    // it may have paid migrations to get there).
    OnlineOptions pairing;
    pairing.profiler = convergedProfiler();
    pairing.policy = "pairing";
    OnlineOptions hysteresis = pairing;
    hysteresis.policy = "hysteresis";

    const ChipConfig config = paperDesign("3B5s");
    const auto specs =
        specsFor({"lbm", "libquantum", "soplex", "sjeng", "gobmk",
                  "hmmer"});
    const OnlineDecision p = OnlineScheduler(pairing).decide(config, specs);
    const OnlineDecision h =
        OnlineScheduler(hysteresis).decide(config, specs);
    EXPECT_EQ(h.epochs, 3u);
    EXPECT_GT(h.samplesRun, p.samplesRun);
    // Placements agree unless the damper is still holding an earlier
    // epoch's placement whose predicted STP is within the margin — in
    // which case the prediction gap must be inside that margin.
    const double p_stp = p.predictedStp;
    const double h_stp = h.predictedStp;
    EXPECT_GE(h_stp,
              p_stp / (1.0 + hysteresis.hysteresisMargin) -
                  hysteresis.migrationCostStp *
                      static_cast<double>(specs.size()));
}

TEST(PolicyTest, MeasuredNeverLosesThroughputToNaive)
{
    // The mix where co-run interference inverts the isolated-affinity
    // ranking: the oracle (and pairing) lose simulated STP to the naive
    // fill order. The measured policy evaluates the naive baseline as a
    // candidate, so — at a converged evaluation quantum — it must adopt
    // it.
    OnlineOptions options;
    options.profiler = convergedProfiler();
    options.policy = "measured";
    const ChipConfig config = paperDesign("3B5s");
    const auto specs = specsFor({"hmmer", "gamess", "gobmk", "milc",
                                 "sjeng", "calculix", "h264ref",
                                 "libquantum"});

    const OnlineDecision decision =
        OnlineScheduler(options).decide(config, specs);
    const Placement naive = scheduleNaive(config, specs.size());
    expectSamePlacement(decision.placement, naive, "measured vs naive");
    // Profiling solo runs plus one evaluation quantum per candidate.
    EXPECT_GT(decision.samplesRun, 3u);
}

TEST(PolicyTest, PredictionModelPrefersSpreadingOverStacking)
{
    // Stacking every thread on one core divides progress by the sharing
    // discount; spreading must predict strictly higher STP.
    OnlineProfiler profiler(convergedProfiler());
    const ChipConfig config = paperDesign("4B");
    const auto specs = specsFor({"hmmer", "h264ref"});
    const OnlineProfile profile =
        profiler.profileWorkload(config, specs);

    Placement spread;
    spread.entries = {{0, 0}, {1, 0}};
    Placement stacked;
    stacked.entries = {{0, 0}, {0, 1}};
    EXPECT_GT(predictStp(config, profile, spread),
              predictStp(config, profile, stacked));
    EXPECT_LT(predictAntt(config, profile, spread),
              predictAntt(config, profile, stacked));
}

TEST(PolicyTest, SchedStatsAccumulate)
{
    SchedStats stats;
    OnlineOptions options;
    options.profiler = convergedProfiler();
    options.profiler.sampleBudget = 2'000;
    options.profiler.sampleWarmup = 500;
    options.policy = "pairing";
    const ChipConfig config = paperDesign("4B");
    const auto specs = specsFor({"hmmer", "lbm"});
    OnlineScheduler(options, &stats).decide(config, specs);
    EXPECT_EQ(stats.decisions.load(), 1u);
    EXPECT_EQ(stats.samplesRun.load(), 4u); // 2 benches x {big, small}
    EXPECT_GT(stats.quantaSampled.load(), 0u);
}

} // namespace
} // namespace online
} // namespace smtflex
