/**
 * @file
 * Determinism and unit tests of the online classifier and sample phase:
 * identical counter streams must yield identical classifications and
 * placements for any exec-pool job count, and sampled runs must be
 * bit-identical between strict and fast-forward simulation (the property
 * the serve layer's memoisation and the dist layer's byte-identity both
 * stand on).
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/thread_pool.h"
#include "online/online_policy.h"
#include "online/online_profile.h"
#include "online/online_profiler.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace online {
namespace {

ProfilerOptions
tinyProfiler()
{
    ProfilerOptions opts;
    opts.sampleBudget = 2'000;
    opts.sampleWarmup = 500;
    opts.seed = 12'345;
    return opts;
}

std::vector<ThreadSpec>
specsFor(const std::vector<const char *> &benches)
{
    std::vector<ThreadSpec> specs;
    for (const char *bench : benches)
        specs.push_back({&specProfile(bench), 2'000, 500});
    return specs;
}

TEST(ClassifierTest, BucketsFollowThresholds)
{
    ClassifierThresholds thresholds; // memoryLlcMpki = 5.0, ilpIpc = 2.0
    ThreadProfile profile;
    profile.benchmark = "synthetic";

    profile.samples[CoreType::kBig] = {2.5, 1.0, 30.0, 4};
    EXPECT_EQ(classify(profile, thresholds), ThreadClass::kMemoryBound);

    profile.samples[CoreType::kBig] = {2.5, 1.0, 0.5, 4};
    EXPECT_EQ(classify(profile, thresholds), ThreadClass::kIlpBound);

    profile.samples[CoreType::kBig] = {1.2, 1.0, 0.5, 4};
    EXPECT_EQ(classify(profile, thresholds), ThreadClass::kMixed);

    // Memory wins over ILP: a streaming code can retire fast on a big
    // core and still be the wrong SMT partner for another streamer.
    profile.samples[CoreType::kBig] = {2.5, 1.0, 8.0, 4};
    EXPECT_EQ(classify(profile, thresholds), ThreadClass::kMemoryBound);
}

TEST(ClassifierTest, ClassNames)
{
    EXPECT_STREQ(threadClassName(ThreadClass::kMemoryBound), "memory");
    EXPECT_STREQ(threadClassName(ThreadClass::kMixed), "mixed");
    EXPECT_STREQ(threadClassName(ThreadClass::kIlpBound), "ilp");
}

TEST(ClassifierTest, ReferenceBenchmarkClasses)
{
    // The calibration anchors (see online_profile.h): streaming codes are
    // memory-bound, high-IPC compute codes are ILP-bound, and gobmk-like
    // LLC-resident codes land in mixed, not memory.
    OnlineProfiler profiler(tinyProfiler());
    const auto specs =
        specsFor({"mcf", "lbm", "libquantum", "hmmer", "gobmk"});
    const OnlineProfile profile =
        profiler.profileWorkload(paperDesign("4B"), specs);
    EXPECT_EQ(profile.threads[0].klass, ThreadClass::kMemoryBound);
    EXPECT_EQ(profile.threads[1].klass, ThreadClass::kMemoryBound);
    EXPECT_EQ(profile.threads[2].klass, ThreadClass::kMemoryBound);
    EXPECT_EQ(profile.threads[3].klass, ThreadClass::kIlpBound);
    EXPECT_EQ(profile.threads[4].klass, ThreadClass::kMixed);
}

TEST(ClassifierTest, SampledTypesCoverChipPlusAffinityExtremes)
{
    // A big+small chip samples exactly {big, small}; a medium-only chip
    // still samples big and small (the affinity ranking needs them).
    const auto het = OnlineProfiler::sampledTypes(paperDesign("3B5s"));
    ASSERT_EQ(het.size(), 2u);
    EXPECT_EQ(het[0], CoreType::kBig);
    EXPECT_EQ(het[1], CoreType::kSmall);

    const auto medium = OnlineProfiler::sampledTypes(paperDesign("8m"));
    ASSERT_EQ(medium.size(), 3u);
    EXPECT_EQ(medium[0], CoreType::kBig);
    EXPECT_EQ(medium[1], CoreType::kMedium);
    EXPECT_EQ(medium[2], CoreType::kSmall);
}

TEST(ClassifierTest, SamplesMemoisedPerBenchmark)
{
    OnlineProfiler profiler(tinyProfiler());
    // 3 distinct benchmarks across 5 threads on a big+small chip:
    // 3 benchmarks x 2 types = 6 solo runs, regardless of thread count.
    const auto specs = specsFor({"mcf", "mcf", "hmmer", "lbm", "hmmer"});
    profiler.profileWorkload(paperDesign("3B5s"), specs);
    EXPECT_EQ(profiler.samplesRun(), 6u);
    // Repeat profiling is free.
    profiler.profileWorkload(paperDesign("3B5s"), specs);
    EXPECT_EQ(profiler.samplesRun(), 6u);
}

/** Full profile as comparable bits: per-thread class + every sampled
 * counter, bitwise. */
std::vector<double>
fingerprint(const OnlineProfile &profile)
{
    std::vector<double> bits;
    for (const auto &thread : profile.threads) {
        bits.push_back(static_cast<double>(thread.klass));
        for (const auto &[type, sample] : thread.samples) {
            bits.push_back(sample.ipc);
            bits.push_back(sample.l2Mpki);
            bits.push_back(sample.llcMpki);
            bits.push_back(static_cast<double>(sample.quanta));
        }
    }
    return bits;
}

TEST(ClassifierDeterminismTest, IdenticalAcrossJobCounts)
{
    const auto specs =
        specsFor({"mcf", "hmmer", "lbm", "gobmk", "soplex", "sjeng"});
    const ChipConfig config = paperDesign("3B5s");

    exec::ThreadPool::resetGlobalForTesting(1);
    OnlineProfiler serial(tinyProfiler());
    const auto serial_bits =
        fingerprint(serial.profileWorkload(config, specs));

    exec::ThreadPool::resetGlobalForTesting(8);
    OnlineProfiler parallel(tinyProfiler());
    const auto parallel_bits =
        fingerprint(parallel.profileWorkload(config, specs));
    exec::ThreadPool::resetGlobalForTesting(1);

    ASSERT_EQ(serial_bits.size(), parallel_bits.size());
    for (std::size_t i = 0; i < serial_bits.size(); ++i)
        EXPECT_EQ(serial_bits[i], parallel_bits[i]) << "bit " << i;
}

TEST(ClassifierDeterminismTest, StrictVsFastForwardBitIdentical)
{
    // Fast-forward jumps clamp to sample-quantum boundaries, so the
    // sampled counters — and therefore every classification and
    // placement derived from them — are bit-identical either way.
    const auto specs = specsFor({"mcf", "hmmer", "lbm", "h264ref"});
    const ChipConfig config = paperDesign("3B5s");

    ProfilerOptions fast = tinyProfiler();
    fast.fastForward = true;
    ProfilerOptions strict = tinyProfiler();
    strict.fastForward = false;

    OnlineProfiler fast_profiler(fast);
    OnlineProfiler strict_profiler(strict);
    const auto fast_bits =
        fingerprint(fast_profiler.profileWorkload(config, specs));
    const auto strict_bits =
        fingerprint(strict_profiler.profileWorkload(config, specs));

    ASSERT_EQ(fast_bits.size(), strict_bits.size());
    for (std::size_t i = 0; i < fast_bits.size(); ++i)
        EXPECT_EQ(fast_bits[i], strict_bits[i]) << "bit " << i;
}

TEST(ClassifierDeterminismTest, DecisionsIdenticalAcrossJobCounts)
{
    const auto specs =
        specsFor({"lbm", "hmmer", "milc", "h264ref", "sjeng"});
    const ChipConfig config = paperDesign("2B10s");

    for (const char *policy :
         {"greedy", "pairing", "hysteresis", "measured"}) {
        OnlineOptions options;
        options.profiler = tinyProfiler();
        options.policy = policy;

        exec::ThreadPool::resetGlobalForTesting(1);
        const OnlineDecision serial =
            OnlineScheduler(options).decide(config, specs);
        exec::ThreadPool::resetGlobalForTesting(8);
        const OnlineDecision parallel =
            OnlineScheduler(options).decide(config, specs);
        exec::ThreadPool::resetGlobalForTesting(1);

        ASSERT_EQ(serial.placement.entries.size(),
                  parallel.placement.entries.size());
        for (std::size_t t = 0; t < serial.placement.entries.size(); ++t) {
            EXPECT_EQ(serial.placement.entries[t].core,
                      parallel.placement.entries[t].core)
                << policy << " thread " << t;
            EXPECT_EQ(serial.placement.entries[t].slot,
                      parallel.placement.entries[t].slot)
                << policy << " thread " << t;
        }
        EXPECT_EQ(serial.predictedStp, parallel.predictedStp) << policy;
        EXPECT_EQ(serial.predictedAntt, parallel.predictedAntt) << policy;
        EXPECT_EQ(serial.migrations, parallel.migrations) << policy;
        EXPECT_EQ(serial.reclassifications, parallel.reclassifications)
            << policy;
    }
}

} // namespace
} // namespace online
} // namespace smtflex
