/**
 * @file
 * Tests for the Hill & Marty analytical models, checked against the
 * published properties of the curves (IEEE Computer 2008).
 */

#include <gtest/gtest.h>

#include "analytic/hill_marty.h"
#include "common/log.h"

namespace smtflex {
namespace {

TEST(HillMartyTest, PerfIsSqrt)
{
    EXPECT_DOUBLE_EQ(hillMartyPerf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(hillMartyPerf(4.0), 2.0);
    EXPECT_DOUBLE_EQ(hillMartyPerf(16.0), 4.0);
    EXPECT_THROW(hillMartyPerf(0.0), FatalError);
}

TEST(HillMartyTest, FullySequentialWantsOneBigCore)
{
    HillMartyParams p;
    p.budgetBce = 16.0;
    p.parallelFraction = 0.0;
    double r = 0.0;
    const double best = bestSymmetricSpeedup(p, &r);
    EXPECT_NEAR(r, 16.0, 0.1);
    EXPECT_NEAR(best, 4.0, 0.01); // sqrt(16)
}

TEST(HillMartyTest, FullyParallelWantsBaseCores)
{
    HillMartyParams p;
    p.budgetBce = 16.0;
    p.parallelFraction = 1.0;
    double r = 0.0;
    const double best = bestSymmetricSpeedup(p, &r);
    EXPECT_NEAR(r, 1.0, 0.1);
    EXPECT_NEAR(best, 16.0, 0.01);
}

TEST(HillMartyTest, KnownSymmetricValue)
{
    // f=0.5, n=16, r=16: T = 0.5/4 + 0.5/4 = 0.25 -> speedup 4.
    HillMartyParams p;
    p.budgetBce = 16.0;
    p.parallelFraction = 0.5;
    EXPECT_NEAR(symmetricSpeedup(p, 16.0), 4.0, 1e-9);
    // r=1: T = 0.5 + 0.5/16 -> speedup ~1.882.
    EXPECT_NEAR(symmetricSpeedup(p, 1.0), 1.0 / (0.5 + 0.5 / 16.0), 1e-9);
}

TEST(HillMartyTest, AsymmetricBeatsSymmetric)
{
    // Hill & Marty's headline: for most f, asymmetric > best symmetric.
    for (const double f : {0.5, 0.9, 0.975}) {
        HillMartyParams p;
        p.budgetBce = 64.0;
        p.parallelFraction = f;
        EXPECT_GE(bestAsymmetricSpeedup(p), bestSymmetricSpeedup(p) - 1e-9)
            << "f=" << f;
    }
    HillMartyParams p;
    p.budgetBce = 64.0;
    p.parallelFraction = 0.9;
    EXPECT_GT(bestAsymmetricSpeedup(p), 1.1 * bestSymmetricSpeedup(p));
}

TEST(HillMartyTest, DynamicBeatsAsymmetric)
{
    for (const double f : {0.5, 0.9, 0.99}) {
        HillMartyParams p;
        p.budgetBce = 64.0;
        p.parallelFraction = f;
        EXPECT_GE(bestDynamicSpeedup(p), bestAsymmetricSpeedup(p) - 1e-9)
            << "f=" << f;
    }
}

TEST(HillMartyTest, DynamicClosedForm)
{
    // Dynamic best always uses r = budget for the sequential phase.
    HillMartyParams p;
    p.budgetBce = 64.0;
    p.parallelFraction = 0.9;
    double r = 0.0;
    const double best = bestDynamicSpeedup(p, &r);
    EXPECT_NEAR(r, 64.0, 0.1);
    EXPECT_NEAR(best, 1.0 / (0.1 / 8.0 + 0.9 / 64.0), 1e-6);
}

TEST(HillMartyTest, ParameterValidation)
{
    HillMartyParams p;
    p.budgetBce = 16.0;
    p.parallelFraction = 1.5;
    EXPECT_THROW(symmetricSpeedup(p, 4.0), FatalError);
    p.parallelFraction = 0.5;
    EXPECT_THROW(symmetricSpeedup(p, 0.5), FatalError);
    EXPECT_THROW(symmetricSpeedup(p, 17.0), FatalError);
    p.budgetBce = 0.5;
    EXPECT_THROW(symmetricSpeedup(p, 1.0), FatalError);
}

TEST(HillMartyTest, CustomPerfFunction)
{
    HillMartyParams p;
    p.budgetBce = 16.0;
    p.parallelFraction = 0.0;
    p.perf = [](double r) { return r; }; // linear: big core always wins
    EXPECT_NEAR(symmetricSpeedup(p, 16.0), 16.0, 1e-9);
}

} // namespace
} // namespace smtflex
