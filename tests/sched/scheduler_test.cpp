/**
 * @file
 * Tests for the scheduling policies: slot fill order (spread before SMT,
 * big cores first), offline program-to-core-type assignment, and symbiotic
 * SMT co-scheduling.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/log.h"
#include "sched/scheduler.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

namespace smtflex {
namespace {

TEST(SlotFillOrderTest, SpreadsAcrossCoresBeforeSmt)
{
    const ChipConfig cfg = paperDesign("4B");
    const auto order = slotFillOrder(cfg);
    ASSERT_EQ(order.size(), 24u);
    // First four entries: one per core, slot 0.
    std::set<std::uint32_t> first_cores;
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(order[i].slot, 0u);
        first_cores.insert(order[i].core);
    }
    EXPECT_EQ(first_cores.size(), 4u);
    // Next four: slot 1.
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(order[i].slot, 1u);
}

TEST(SlotFillOrderTest, BigCoresFirstInHeterogeneousChips)
{
    const ChipConfig cfg = paperDesign("3B5s");
    const auto order = slotFillOrder(cfg);
    ASSERT_EQ(order.size(), 3u * 6 + 5u * 2);
    // First three entries are big cores (indices 0-2 in the config).
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(cfg.cores[order[i].core].type, CoreType::kBig) << i;
    // Entries 3..7 are the small cores' first contexts.
    for (int i = 3; i < 8; ++i) {
        EXPECT_EQ(cfg.cores[order[i].core].type, CoreType::kSmall) << i;
        EXPECT_EQ(order[i].slot, 0u);
    }
    // Entry 8 starts the SMT round on the big cores.
    EXPECT_EQ(cfg.cores[order[8].core].type, CoreType::kBig);
    EXPECT_EQ(order[8].slot, 1u);
}

TEST(SlotFillOrderTest, SmtOffHasOneRound)
{
    const ChipConfig cfg = paperDesign("1B6m").withSmt(false);
    const auto order = slotFillOrder(cfg);
    ASSERT_EQ(order.size(), 7u);
    for (const auto &entry : order)
        EXPECT_EQ(entry.slot, 0u);
}

TEST(ScheduleNaiveTest, WrapsIntoTimeSharing)
{
    const ChipConfig cfg = paperDesign("4B").withSmt(false); // 4 contexts
    const Placement pl = scheduleNaive(cfg, 6);
    ASSERT_EQ(pl.entries.size(), 6u);
    // Threads 4 and 5 wrap onto the first two cores.
    EXPECT_EQ(pl.entries[4].core, pl.entries[0].core);
    EXPECT_EQ(pl.entries[5].core, pl.entries[1].core);
}

TEST(OfflineProfileTest, StoreAndAffinity)
{
    OfflineProfile p;
    EXPECT_TRUE(p.empty());
    p.set("x", CoreType::kBig, 2.0);
    p.set("x", CoreType::kSmall, 0.5);
    EXPECT_TRUE(p.has("x", CoreType::kBig));
    EXPECT_FALSE(p.has("x", CoreType::kMedium));
    EXPECT_DOUBLE_EQ(p.bigAffinity("x"), 4.0);
    EXPECT_THROW(p.ipc("y", CoreType::kBig), FatalError);
    EXPECT_THROW(p.set("x", CoreType::kBig, -1.0), FatalError);
}

OfflineProfile
syntheticOffline()
{
    // Affinities: hmmer high, libquantum low (memory-bound gains little
    // from a big core).
    OfflineProfile p;
    p.set("hmmer", CoreType::kBig, 3.4);
    p.set("hmmer", CoreType::kMedium, 1.5);
    p.set("hmmer", CoreType::kSmall, 0.5);
    p.set("libquantum", CoreType::kBig, 0.8);
    p.set("libquantum", CoreType::kMedium, 0.33);
    p.set("libquantum", CoreType::kSmall, 0.24);
    return p;
}

TEST(ScheduleOfflineTest, HighAffinityProgramsGetBigCores)
{
    const ChipConfig cfg = paperDesign("3B5s").withSmt(false); // 8 slots
    std::vector<ThreadSpec> specs;
    // 3 hmmer (high big-affinity), 5 libquantum.
    for (int i = 0; i < 3; ++i)
        specs.push_back({&specProfile("hmmer"), 1000});
    for (int i = 0; i < 5; ++i)
        specs.push_back({&specProfile("libquantum"), 1000});
    const Placement pl = scheduleOffline(cfg, specs, syntheticOffline());
    ASSERT_EQ(pl.entries.size(), 8u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(cfg.cores[pl.entries[i].core].type, CoreType::kBig)
            << "hmmer thread " << i << " should be on a big core";
    }
    for (int i = 3; i < 8; ++i) {
        EXPECT_EQ(cfg.cores[pl.entries[i].core].type, CoreType::kSmall)
            << "libquantum thread " << i << " should be on a small core";
    }
}

TEST(ScheduleOfflineTest, PlacementIsValidAndConflictFree)
{
    // Any thread count on any design must produce in-range, non-colliding
    // placements (as long as threads <= contexts).
    for (const auto &name : paperDesignNames()) {
        const ChipConfig cfg = paperDesign(name);
        for (std::size_t n : {1u, 2u, 7u, 16u, 24u}) {
            if (n > cfg.totalContexts())
                continue;
            auto mixes = heterogeneousWorkloads(n, 12, 7);
            const auto specs = mixes[0].specs(1000);
            const Placement pl = scheduleOffline(cfg, specs,
                                                 OfflineProfile{});
            ASSERT_EQ(pl.entries.size(), n);
            std::set<std::pair<std::uint32_t, std::uint32_t>> used;
            for (const auto &e : pl.entries) {
                ASSERT_LT(e.core, cfg.numCores());
                ASSERT_LT(e.slot, cfg.contextsOf(e.core));
                EXPECT_TRUE(used.insert({e.core, e.slot}).second)
                    << "slot collision on " << name << " n=" << n;
            }
        }
    }
}

TEST(ScheduleOfflineTest, SymbioticMixingOnSmtCores)
{
    // 8 threads on 4B (2 per core): 4 memory-intensive + 4 compute-bound
    // programs must not be segregated; every core should get at most one
    // heavy memory program.
    const ChipConfig cfg = paperDesign("4B");
    std::vector<ThreadSpec> specs;
    for (int i = 0; i < 4; ++i)
        specs.push_back({&specProfile("libquantum"), 1000});
    for (int i = 0; i < 4; ++i)
        specs.push_back({&specProfile("hmmer"), 1000});
    const Placement pl = scheduleOffline(cfg, specs, OfflineProfile{});
    std::map<std::uint32_t, int> heavy_per_core;
    for (int i = 0; i < 4; ++i)
        ++heavy_per_core[pl.entries[i].core];
    for (const auto &[core, count] : heavy_per_core)
        EXPECT_LE(count, 1) << "memory-bound programs piled on core "
                            << core;
}

TEST(ScheduleOfflineTest, EmptyWorkloadRejected)
{
    const ChipConfig cfg = paperDesign("4B");
    EXPECT_THROW(scheduleOffline(cfg, {}, OfflineProfile{}), FatalError);
    EXPECT_THROW(scheduleNaive(cfg, 0), FatalError);
}

} // namespace
} // namespace smtflex
