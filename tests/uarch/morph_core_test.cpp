/**
 * @file
 * Tests for the MorphCore model: mode selection, drain-and-switch
 * semantics, and performance characteristics in each mode.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/log.h"
#include "tests/uarch/test_helpers.h"
#include "trace/spec_profiles.h"
#include "uarch/inorder_core.h"
#include "uarch/morph_core.h"
#include "uarch/ooo_core.h"

namespace smtflex {
namespace {

using test::FixedLatencyMemory;
using test::ProfileThread;
using test::runCycles;

CoreParams
morphPersonality()
{
    CoreParams p = CoreParams::big();
    p.maxSmtContexts = 8; // MorphCore: 2-way OoO / 8-way in-order SMT
    return p;
}

TEST(MorphCoreTest, StartsInOooModeAndStaysThereWithFewThreads)
{
    FixedLatencyMemory mem(40);
    MorphCore core(morphPersonality(), MorphParams{}, 0, 8, &mem, 2.66);
    ProfileThread t0(specProfile("hmmer"), 0, 1u << 30);
    core.attachThread(0, &t0);
    runCycles(core, 20000);
    EXPECT_TRUE(core.inOooMode());
    EXPECT_EQ(core.modeSwitches(), 0u);
    // Single-thread performance matches an equivalent OoO core closely.
    FixedLatencyMemory mem2(40);
    OooCore ooo(morphPersonality(), 0, 8, &mem2, 2.66);
    ProfileThread t1(specProfile("hmmer"), 0, 1u << 30);
    ooo.attachThread(0, &t1);
    runCycles(ooo, 20000);
    EXPECT_NEAR(static_cast<double>(core.stats().retired),
                static_cast<double>(ooo.stats().retired),
                0.02 * static_cast<double>(ooo.stats().retired));
}

TEST(MorphCoreTest, MorphsToInOrderWhenThreadsExceedLimit)
{
    FixedLatencyMemory mem(40);
    MorphCore core(morphPersonality(), MorphParams{}, 0, 8, &mem, 2.66);
    std::vector<std::unique_ptr<ProfileThread>> threads;
    for (std::uint32_t i = 0; i < 6; ++i) {
        threads.push_back(std::make_unique<ProfileThread>(
            specProfile("hmmer"), i, 1u << 30));
        core.attachThread(i, threads.back().get());
    }
    runCycles(core, 20000);
    EXPECT_FALSE(core.inOooMode());
    EXPECT_EQ(core.modeSwitches(), 1u);
    EXPECT_GT(core.stats().retired, 5000u) << "in-order mode must run";
}

TEST(MorphCoreTest, MorphsBackWhenThreadsLeave)
{
    FixedLatencyMemory mem(40);
    MorphCore core(morphPersonality(), MorphParams{}, 0, 8, &mem, 2.66);
    std::vector<std::unique_ptr<ProfileThread>> threads;
    for (std::uint32_t i = 0; i < 4; ++i) {
        threads.push_back(std::make_unique<ProfileThread>(
            specProfile("gobmk"), i, 1u << 30));
        core.attachThread(i, threads.back().get());
    }
    runCycles(core, 10000);
    EXPECT_FALSE(core.inOooMode());
    core.detachThread(2);
    core.detachThread(3);
    runCycles(core, 10000, 10000);
    EXPECT_TRUE(core.inOooMode());
    EXPECT_EQ(core.modeSwitches(), 2u);
}

TEST(MorphCoreTest, SwitchDrainsBeforeMorphing)
{
    // With a huge switch penalty, frequent attach/detach around the limit
    // must not corrupt anything — retires keep flowing eventually.
    FixedLatencyMemory mem(40);
    MorphParams morph;
    morph.switchPenalty = 500;
    MorphCore core(morphPersonality(), morph, 0, 8, &mem, 2.66);
    std::vector<std::unique_ptr<ProfileThread>> threads;
    for (std::uint32_t i = 0; i < 4; ++i)
        threads.push_back(std::make_unique<ProfileThread>(
            specProfile("hmmer"), i, 1u << 30));
    core.attachThread(0, threads[0].get());
    Cycle now = 0;
    for (int round = 0; round < 4; ++round) {
        core.attachThread(1, threads[1].get());
        core.attachThread(2, threads[2].get());
        runCycles(core, 3000, now);
        now += 3000;
        core.detachThread(1);
        core.detachThread(2);
        runCycles(core, 3000, now);
        now += 3000;
    }
    EXPECT_GE(core.modeSwitches(), 4u);
    EXPECT_GT(core.stats().retired, 10000u);
}

TEST(MorphCoreTest, InOrderModeStaysCompetitiveAtHighThreadCounts)
{
    // MorphCore's in-order-SMT mode trades the OoO window for simplicity
    // (its real pitch is energy). On latency-bound code the barrel of 8
    // threads must stay within striking distance of partitioned-ROB SMT,
    // not collapse.
    const BenchmarkProfile &bench = specProfile("mcf");
    auto run = [&](std::uint32_t ooo_limit) {
        FixedLatencyMemory mem(150);
        MorphParams morph;
        morph.oooThreadLimit = ooo_limit;
        MorphCore core(morphPersonality(), morph, 0, 8, &mem, 2.66);
        std::vector<std::unique_ptr<ProfileThread>> threads;
        for (std::uint32_t i = 0; i < 8; ++i) {
            threads.push_back(
                std::make_unique<ProfileThread>(bench, i, 1u << 30));
            core.attachThread(i, threads.back().get());
        }
        runCycles(core, 40000);
        return core.stats().retired;
    };
    const auto in_order_mode = run(2);  // 8 threads -> morphs to in-order
    const auto forced_ooo = run(8);     // stays OoO
    EXPECT_GT(in_order_mode, forced_ooo * 2 / 5)
        << "in-order SMT mode must not collapse";
    EXPECT_LT(in_order_mode, forced_ooo)
        << "the OoO window should still win throughput (MorphCore's "
           "advantage is energy, which this timing model does not "
           "credit)";
}

TEST(MorphCoreTest, RequiresOooPersonality)
{
    FixedLatencyMemory mem(40);
    EXPECT_THROW(MorphCore(CoreParams::small(), MorphParams{}, 0, 2, &mem,
                           2.66),
                 FatalError);
    MorphParams bad;
    bad.oooThreadLimit = 0;
    EXPECT_THROW(MorphCore(morphPersonality(), bad, 0, 8, &mem, 2.66),
                 FatalError);
}

} // namespace
} // namespace smtflex
