/**
 * @file
 * Tests for the in-order fine-grained-MT core model.
 */

#include <gtest/gtest.h>

#include "tests/uarch/test_helpers.h"
#include "trace/spec_profiles.h"
#include "uarch/inorder_core.h"
#include "uarch/ooo_core.h"

namespace smtflex {
namespace {

using test::FixedLatencyMemory;
using test::PatternThread;
using test::ProfileThread;
using test::aluOp;
using test::runCycles;

TEST(InOrderCoreTest, IndependentAluDualIssues)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::small();
    InOrderCore core(p, 0, 1, &mem, 2.66);
    PatternThread thread({aluOp()});
    core.attachThread(0, &thread);
    runCycles(core, 1000);
    EXPECT_NEAR(static_cast<double>(thread.retired()) / 1000.0, 2.0, 0.2);
}

TEST(InOrderCoreTest, DependentChainSingleIssues)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::small();
    InOrderCore core(p, 0, 1, &mem, 2.66);
    MicroOp dep = aluOp();
    dep.depDist = 1;
    PatternThread thread({dep});
    core.attachThread(0, &thread);
    runCycles(core, 1000);
    EXPECT_NEAR(static_cast<double>(thread.retired()) / 1000.0, 1.0, 0.15);
}

TEST(InOrderCoreTest, StallOnMissFreezesContext)
{
    // With a huge memory latency, a single missing load dominates: IPC
    // collapses towards cycles/latency.
    FixedLatencyMemory mem(1000);
    const CoreParams p = CoreParams::small();
    InOrderCore core(p, 0, 1, &mem, 2.66);
    const BenchmarkProfile &stream = specProfile("lbm"); // streaming misses
    ProfileThread thread(stream, 0, 1u << 30);
    core.attachThread(0, &thread);
    runCycles(core, 30000);
    const double ipc = static_cast<double>(core.stats().retired) / 30000.0;
    EXPECT_LT(ipc, 0.35) << "in-order core must stall on misses";
}

TEST(InOrderCoreTest, FgmtHidesStalls)
{
    // Two threads with miss-heavy behaviour: the barrel scheduler lets one
    // thread run while the other waits -> higher combined throughput.
    const BenchmarkProfile &bench = specProfile("milc");
    FixedLatencyMemory mem(300);
    const CoreParams p = CoreParams::small();

    InOrderCore solo(p, 0, 2, &mem, 2.66);
    ProfileThread t0(bench, 0, 1u << 30);
    solo.attachThread(0, &t0);
    runCycles(solo, 30000);
    const double ipc1 = static_cast<double>(solo.stats().retired) / 30000.0;

    FixedLatencyMemory mem2(300);
    InOrderCore duo(p, 0, 2, &mem2, 2.66);
    ProfileThread t1(bench, 1, 1u << 30);
    ProfileThread t2(bench, 2, 1u << 30);
    duo.attachThread(0, &t1);
    duo.attachThread(1, &t2);
    runCycles(duo, 30000);
    const double ipc2 = static_cast<double>(duo.stats().retired) / 30000.0;

    EXPECT_GT(ipc2, ipc1 * 1.1);
}

TEST(InOrderCoreTest, SlowerThanOooOnIlpRichCode)
{
    // The defining Table 1 property: a big OoO core beats the small
    // in-order core on ILP-rich code by a wide margin.
    const BenchmarkProfile &bench = specProfile("calculix");
    FixedLatencyMemory mem(120);

    InOrderCore small_core(CoreParams::small(), 0, 1, &mem, 2.66);
    ProfileThread t0(bench, 0, 1u << 30);
    small_core.attachThread(0, &t0);
    runCycles(small_core, 20000);
    const double ipc_small =
        static_cast<double>(small_core.stats().retired) / 20000.0;

    FixedLatencyMemory mem2(120);
    OooCore big_core(CoreParams::big(), 0, 1, &mem2, 2.66);
    ProfileThread t1(bench, 1, 1u << 30);
    big_core.attachThread(0, &t1);
    runCycles(big_core, 20000);
    const double ipc_big =
        static_cast<double>(big_core.stats().retired) / 20000.0;

    EXPECT_GT(ipc_big, ipc_small * 1.5);
}

TEST(InOrderCoreTest, MispredictPenaltyApplies)
{
    auto run = [&](bool mispredict) {
        FixedLatencyMemory mem;
        InOrderCore core(CoreParams::small(), 0, 1, &mem, 2.66);
        MicroOp branch;
        branch.cls = OpClass::kBranch;
        branch.mispredict = mispredict;
        PatternThread thread({aluOp(), aluOp(), aluOp(), branch});
        core.attachThread(0, &thread);
        runCycles(core, 3000);
        return thread.retired();
    };
    EXPECT_GT(run(false), run(true) * 5 / 4);
}

TEST(InOrderCoreTest, MakeCoreDispatchesOnOutOfOrderFlag)
{
    FixedLatencyMemory mem;
    auto in_order = makeCore(CoreParams::small(), 0, 1, &mem, 2.66);
    auto out_of_order = makeCore(CoreParams::big(), 1, 1, &mem, 2.66);
    EXPECT_NE(dynamic_cast<InOrderCore *>(in_order.get()), nullptr);
    EXPECT_NE(dynamic_cast<OooCore *>(out_of_order.get()), nullptr);
}

} // namespace
} // namespace smtflex
