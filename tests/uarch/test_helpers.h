/**
 * @file
 * Shared fakes for the core-model unit tests: a fixed-latency shared memory
 * and scripted/synthetic thread sources.
 */

#ifndef SMTFLEX_TESTS_UARCH_TEST_HELPERS_H
#define SMTFLEX_TESTS_UARCH_TEST_HELPERS_H

#include <cstdint>
#include <vector>

#include "trace/tracegen.h"
#include "uarch/core.h"
#include "uarch/memory_system.h"
#include "uarch/thread_source.h"

namespace smtflex {
namespace test {

/** Shared memory that always fills after a fixed latency. */
class FixedLatencyMemory : public MemorySystem
{
  public:
    explicit FixedLatencyMemory(Cycle latency = 150) : latency_(latency) {}

    Cycle
    fetchLine(Cycle now, Addr, std::uint32_t) override
    {
        ++fetches_;
        return now + latency_;
    }

    void
    writebackLine(Cycle, Addr, std::uint32_t) override
    {
        ++writebacks_;
    }

    std::uint64_t fetches() const { return fetches_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    Cycle latency_;
    std::uint64_t fetches_ = 0;
    std::uint64_t writebacks_ = 0;
};

/** Thread source generating an infinite stream of one op pattern. */
class PatternThread : public ThreadSource
{
  public:
    explicit PatternThread(std::vector<MicroOp> pattern)
        : pattern_(std::move(pattern))
    {
    }

    MicroOp
    nextOp() override
    {
        MicroOp op = pattern_[index_ % pattern_.size()];
        ++index_;
        ++generated_;
        return op;
    }

    bool hasWork() override { return generated_ < limit_; }

    void onRetire(Cycle now) override
    {
        ++retired_;
        lastRetire_ = now;
    }

    void setLimit(std::uint64_t limit) { limit_ = limit; }
    std::uint64_t retired() const { return retired_; }
    std::uint64_t generated() const { return generated_; }
    Cycle lastRetire() const { return lastRetire_; }

  private:
    std::vector<MicroOp> pattern_;
    std::size_t index_ = 0;
    std::uint64_t generated_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t limit_ = ~std::uint64_t{0};
    Cycle lastRetire_ = 0;
};

/** Thread source running a synthetic profile (real trace generator). */
class ProfileThread : public ThreadSource
{
  public:
    ProfileThread(const BenchmarkProfile &profile, std::uint32_t id,
                  std::uint64_t limit)
        : gen_(profile, 42, id, AddressSpace::forThread(id)), limit_(limit)
    {
    }

    MicroOp nextOp() override { return gen_.next(); }
    bool hasWork() override { return gen_.generated() < limit_; }
    void onRetire(Cycle) override { ++retired_; }

    std::uint64_t retired() const { return retired_; }
    bool done() const { return retired_ >= limit_; }

  private:
    TraceGenerator gen_;
    std::uint64_t limit_;
    std::uint64_t retired_ = 0;
};

/** An IntAlu op with no dependencies. */
inline MicroOp
aluOp()
{
    MicroOp op;
    op.cls = OpClass::kIntAlu;
    return op;
}

/** A load to @p addr with no dependencies. */
inline MicroOp
loadOp(Addr addr)
{
    MicroOp op;
    op.cls = OpClass::kLoad;
    op.addr = addr;
    return op;
}

/** Drive @p core for @p cycles global cycles. */
inline void
runCycles(Core &core, Cycle cycles, Cycle start = 0)
{
    for (Cycle c = start + 1; c <= start + cycles; ++c)
        core.tick(c);
}

} // namespace test
} // namespace smtflex

#endif // SMTFLEX_TESTS_UARCH_TEST_HELPERS_H
