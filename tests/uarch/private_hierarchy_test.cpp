/**
 * @file
 * Tests for the private cache hierarchy: latency composition per level,
 * MSHR backpressure, writeback propagation.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "tests/uarch/test_helpers.h"
#include "uarch/private_hierarchy.h"

namespace smtflex {
namespace {

using test::FixedLatencyMemory;

TEST(PrivateHierarchyTest, L1HitLatency)
{
    FixedLatencyMemory mem(150);
    const CoreParams p = CoreParams::big();
    PrivateHierarchy h(p, 0, &mem);

    // Warm the line (goes to shared memory), then hit in L1.
    auto first = h.dataAccess(0, 0x1000, false);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->level, MemLevel::kBeyond);

    auto hit = h.dataAccess(1000, 0x1000, false);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->level, MemLevel::kL1);
    EXPECT_EQ(hit->completion, 1000u + p.latL1);
}

TEST(PrivateHierarchyTest, MissLatencyIncludesSharedMemory)
{
    FixedLatencyMemory mem(150);
    const CoreParams p = CoreParams::big();
    PrivateHierarchy h(p, 0, &mem);

    auto miss = h.dataAccess(0, 0x2000, false);
    ASSERT_TRUE(miss.has_value());
    // L1 lookup + L2 lookup, then 150 cycles in the shared system.
    EXPECT_EQ(miss->completion, p.latL1 + p.latL2 + 150u);
    EXPECT_EQ(mem.fetches(), 1u);
}

TEST(PrivateHierarchyTest, L2HitLatency)
{
    FixedLatencyMemory mem(150);
    const CoreParams p = CoreParams::big();
    PrivateHierarchy h(p, 0, &mem);

    // Fill enough distinct lines mapping to one L1 set so that a line gets
    // evicted from the (32 KB, 4-way, 128-set) L1 but still sits in L2.
    const std::uint64_t l1_sets = p.l1d.numSets();
    for (int i = 0; i < 5; ++i)
        h.dataAccess(10'000 * (i + 1),
                     Addr(i) * l1_sets * kLineSize, false);
    // Line 0 was evicted from L1 (LRU) but is in the 256 KB L2.
    auto again = h.dataAccess(100'000, 0, false);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->level, MemLevel::kL2);
    EXPECT_EQ(again->completion, 100'000u + p.latL1 + p.latL2);
    EXPECT_EQ(mem.fetches(), 5u);
}

TEST(PrivateHierarchyTest, MshrLimitRejectsDataAccesses)
{
    FixedLatencyMemory mem(1000);
    const CoreParams p = CoreParams::big(); // 8 MSHRs
    PrivateHierarchy h(p, 0, &mem);

    // Launch 8 concurrent misses at cycle 0; all accepted. The i*line
    // offset spreads the lines over distinct L1 sets.
    for (std::uint32_t i = 0; i < p.mshrs; ++i) {
        auto access =
            h.dataAccess(0, (Addr(i) << 20) + i * kLineSize, false);
        EXPECT_TRUE(access.has_value()) << i;
    }
    EXPECT_EQ(h.outstandingMisses(1), p.mshrs);

    // The 9th miss is rejected...
    EXPECT_FALSE(h.dataAccess(1, Addr{99} << 20, false).has_value());
    // ...but an L1 hit still goes through.
    auto hit = h.dataAccess(1, Addr{0}, false);
    EXPECT_TRUE(hit.has_value());
    EXPECT_EQ(hit->level, MemLevel::kL1);

    // After the misses complete, new misses are accepted again.
    auto late = h.dataAccess(5000, Addr{99} << 20, false);
    EXPECT_TRUE(late.has_value());
}

TEST(PrivateHierarchyTest, InstrAccessNeverRejected)
{
    FixedLatencyMemory mem(1000);
    const CoreParams p = CoreParams::small(); // 2 MSHRs
    PrivateHierarchy h(p, 0, &mem);
    for (std::uint32_t i = 0; i < p.mshrs; ++i)
        h.dataAccess(0, Addr(i) << 20, false);
    // Data path is saturated; instruction fetch still completes.
    const MemAccess fetch = h.instrAccess(1, Addr{50} << 20);
    EXPECT_EQ(fetch.level, MemLevel::kBeyond);
    EXPECT_GT(fetch.completion, 1u);
}

TEST(PrivateHierarchyTest, DirtyL2EvictionReachesSharedMemory)
{
    FixedLatencyMemory mem(10);
    CoreParams p = CoreParams::small(); // 48 KB L2: easy to thrash
    PrivateHierarchy h(p, 0, &mem);

    // Write a footprint much larger than the L2; dirty lines must be
    // written back to the shared system.
    const std::uint64_t lines = (512 * 1024) / kLineSize;
    Cycle now = 0;
    for (std::uint64_t i = 0; i < lines; ++i) {
        h.dataAccess(now, i * kLineSize, true);
        now += 50; // stay under the MSHR limit
    }
    EXPECT_GT(mem.writebacks(), lines / 2);
}

TEST(PrivateHierarchyTest, InvalidateAllColdRestart)
{
    FixedLatencyMemory mem(100);
    const CoreParams p = CoreParams::big();
    PrivateHierarchy h(p, 0, &mem);
    h.dataAccess(0, 0x1000, false);
    h.dataAccess(500, 0x1000, false);
    EXPECT_EQ(h.l1d().stats().misses, 1u);
    h.invalidateAll();
    auto after = h.dataAccess(1000, 0x1000, false);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->level, MemLevel::kBeyond);
}

TEST(PrivateHierarchyTest, NextLinePrefetchHidesStreamingMisses)
{
    // With the prefetcher on, a sequential line walk sees far fewer
    // demand misses (the next line is already resident).
    auto run = [](bool prefetch) {
        FixedLatencyMemory mem(100);
        CoreParams p = CoreParams::big();
        p.dataPrefetch = prefetch;
        PrivateHierarchy h(p, 0, &mem);
        Cycle now = 0;
        std::uint64_t beyond = 0;
        for (Addr a = 0; a < 512 * 1024; a += kLineSize) {
            const auto access = h.dataAccess(now, a, false);
            beyond += access && access->level == MemLevel::kBeyond;
            now += 200; // fills complete between accesses
        }
        return beyond;
    };
    const std::uint64_t without = run(false);
    const std::uint64_t with = run(true);
    EXPECT_LT(with, without / 4);
}

TEST(PrivateHierarchyTest, PrefetchConsumesSharedBandwidth)
{
    FixedLatencyMemory mem(100);
    CoreParams p = CoreParams::big();
    p.dataPrefetch = true;
    PrivateHierarchy h(p, 0, &mem);
    h.dataAccess(0, 0x100000, false);
    // Demand fetch + prefetch of the next line.
    EXPECT_EQ(mem.fetches(), 2u);
}

TEST(PrivateHierarchyTest, NullSharedMemoryRejected)
{
    EXPECT_THROW(PrivateHierarchy(CoreParams::big(), 0, nullptr),
                 FatalError);
}

} // namespace
} // namespace smtflex
