/**
 * @file
 * Tests for the out-of-order SMT core model: width limits, dependency
 * serialisation, ROB partitioning, SMT throughput behaviour, mispredict
 * penalties, clock-domain scaling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/log.h"
#include "tests/uarch/test_helpers.h"
#include "trace/spec_profiles.h"
#include "uarch/ooo_core.h"

namespace smtflex {
namespace {

using test::FixedLatencyMemory;
using test::PatternThread;
using test::ProfileThread;
using test::aluOp;
using test::runCycles;

TEST(OooCoreTest, IndependentAluSaturatesIntUnits)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::big(); // width 4 but only 3 int units
    OooCore core(p, 0, 1, &mem, 2.66);
    PatternThread thread({aluOp()});
    core.attachThread(0, &thread);
    runCycles(core, 1000);
    // IPC must be ~3 (int units), not 4 (width).
    EXPECT_NEAR(static_cast<double>(thread.retired()) / 1000.0, 3.0, 0.2);
}

TEST(OooCoreTest, MixedOpsReachFullWidth)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::big();
    OooCore core(p, 0, 1, &mem, 2.66);
    // 2 alu + 1 fp + 1 load per group: fits 3 int / 1 fp / 2 ldst budgets.
    MicroOp load = test::loadOp(0x100); // hits L1 after warmup
    PatternThread thread({aluOp(), aluOp(), [] {
                              MicroOp op;
                              op.cls = OpClass::kFpOp;
                              return op;
                          }(),
                          load});
    core.attachThread(0, &thread);
    runCycles(core, 8000);
    // Only the first load misses; the pattern sustains the full width.
    EXPECT_NEAR(static_cast<double>(thread.retired()) / 8000.0, 4.0, 0.25);
}

TEST(OooCoreTest, DependencyChainSerialises)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::big();
    OooCore core(p, 0, 1, &mem, 2.66);
    // Every op depends on the previous op: IPC ~ 1 regardless of width.
    MicroOp dep = aluOp();
    dep.depDist = 1;
    PatternThread thread({dep});
    core.attachThread(0, &thread);
    runCycles(core, 1000);
    EXPECT_NEAR(static_cast<double>(thread.retired()) / 1000.0, 1.0, 0.1);
}

TEST(OooCoreTest, DependentMulChainHasMulLatencyThroughput)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::big();
    OooCore core(p, 0, 1, &mem, 2.66);
    MicroOp mul;
    mul.cls = OpClass::kIntMul;
    mul.depDist = 1;
    PatternThread thread({mul});
    core.attachThread(0, &thread);
    runCycles(core, 1200);
    // One mul per latIntMul cycles.
    EXPECT_NEAR(static_cast<double>(thread.retired()) / 1200.0,
                1.0 / p.latIntMul, 0.05);
}

TEST(OooCoreTest, LongLatencyLoadStallsViaRobFill)
{
    FixedLatencyMemory mem(400);
    CoreParams p = CoreParams::big();
    OooCore core(p, 0, 1, &mem, 2.66);
    // Loads to distinct far-apart lines: every one misses; ROB (128) fills
    // in the shadow of the misses, throughput collapses well below width.
    std::vector<MicroOp> pattern;
    for (int i = 0; i < 16; ++i)
        pattern.push_back(aluOp());
    MicroOp load;
    load.cls = OpClass::kLoad;
    pattern.push_back(load);
    PatternThread thread(pattern); // addr 0: always same line -> warm
    core.attachThread(0, &thread);
    // Give each load a unique address via a profile-driven source instead.
    // (This test uses the always-miss behaviour of streaming below.)
    runCycles(core, 500);
    EXPECT_GT(core.stats().retired, 0u);
}

TEST(OooCoreTest, SmtTwoThreadsOutperformOne)
{
    const BenchmarkProfile &bench = specProfile("gobmk"); // low ILP
    FixedLatencyMemory mem(120);
    const CoreParams p = CoreParams::big();

    // One thread alone.
    OooCore solo(p, 0, 6, &mem, 2.66);
    ProfileThread t0(bench, 0, 1u << 30);
    solo.attachThread(0, &t0);
    runCycles(solo, 20000);
    const double ipc1 = static_cast<double>(solo.stats().retired) / 20000.0;

    // Two SMT threads.
    FixedLatencyMemory mem2(120);
    OooCore duo(p, 0, 6, &mem2, 2.66);
    ProfileThread t1(bench, 1, 1u << 30);
    ProfileThread t2(bench, 2, 1u << 30);
    duo.attachThread(0, &t1);
    duo.attachThread(1, &t2);
    runCycles(duo, 20000);
    const double ipc2 = static_cast<double>(duo.stats().retired) / 20000.0;

    EXPECT_GT(ipc2, ipc1 * 1.15) << "SMT should raise core throughput";
    EXPECT_LT(ipc2, ipc1 * 2.05) << "two SMT threads are not two cores";
}

TEST(OooCoreTest, SixSmtContextsSaturate)
{
    // 40-cycle shared memory ~ the LLC of the real chip: six hmmer copies
    // thrash the private caches but spill into a fast next level.
    const BenchmarkProfile &bench = specProfile("hmmer");
    FixedLatencyMemory mem(40);
    const CoreParams p = CoreParams::big();
    OooCore core(p, 0, 6, &mem, 2.66);
    std::vector<std::unique_ptr<ProfileThread>> threads;
    for (std::uint32_t i = 0; i < 6; ++i) {
        threads.push_back(
            std::make_unique<ProfileThread>(bench, i, 1u << 30));
        core.attachThread(i, threads.back().get());
    }
    runCycles(core, 100000);
    const Cycle warm = core.stats().retired;
    runCycles(core, 100000, 100000);
    const double ipc =
        static_cast<double>(core.stats().retired - warm) / 100000.0;
    // Six threads keep the core far busier than a latency-bound single
    // thread could, but stay under the width bound.
    EXPECT_GT(ipc, 1.2);
    EXPECT_LE(ipc, 4.0);
}

TEST(OooCoreTest, MispredictsReduceThroughput)
{
    FixedLatencyMemory mem;
    const CoreParams p = CoreParams::big();

    auto run_with_mispredict = [&](bool mispredict) {
        FixedLatencyMemory m(120);
        OooCore core(p, 0, 1, &m, 2.66);
        MicroOp branch;
        branch.cls = OpClass::kBranch;
        branch.mispredict = mispredict;
        PatternThread thread({aluOp(), aluOp(), aluOp(), branch});
        core.attachThread(0, &thread);
        runCycles(core, 3000);
        return static_cast<double>(thread.retired()) / 3000.0;
    };

    const double clean = run_with_mispredict(false);
    const double dirty = run_with_mispredict(true);
    EXPECT_GT(clean, dirty * 2.0);
}

TEST(OooCoreTest, RobPartitioningHalvesWindow)
{
    // With two active contexts the ROB partition is robSize/2; verify via
    // the partition-size helper behaviour: a single context must be able
    // to keep more ops in flight than one of two contexts.
    FixedLatencyMemory mem(2000);
    CoreParams p = CoreParams::big();
    p.mshrs = 32; // don't let MSHRs mask the ROB limit

    // Memory-latency-bound stream: in-flight ops bounded by the ROB
    // partition, which shrinks as contexts activate.
    const BenchmarkProfile &bench = specProfile("mcf");
    OooCore solo(p, 0, 6, &mem, 2.66);
    ProfileThread t0(bench, 0, 1u << 30);
    solo.attachThread(0, &t0);
    runCycles(solo, 20000);
    const auto solo_dispatched = solo.stats().totalDispatched();

    FixedLatencyMemory mem2(2000);
    OooCore six(p, 0, 6, &mem2, 2.66);
    std::vector<std::unique_ptr<ProfileThread>> threads;
    for (std::uint32_t i = 0; i < 6; ++i) {
        threads.push_back(
            std::make_unique<ProfileThread>(bench, i + 1, 1u << 30));
        six.attachThread(i, threads.back().get());
    }
    runCycles(six, 20000);
    const auto six_dispatched = six.stats().totalDispatched();

    // Six 21-entry windows must hit ROB-full stalls under 2000-cycle
    // memory latency, and cannot multiply throughput by the thread count.
    EXPECT_GT(six.stats().robStallEvents, 0u);
    EXPECT_LT(six_dispatched, solo_dispatched * 6);
}

TEST(OooCoreTest, DetachedThreadStillRetiresInFlight)
{
    FixedLatencyMemory mem(200);
    const CoreParams p = CoreParams::big();
    OooCore core(p, 0, 1, &mem, 2.66);
    PatternThread thread({test::loadOp(Addr{5} << 24)});
    thread.setLimit(1); // exactly one op
    core.attachThread(0, &thread);
    runCycles(core, 10);
    core.detachThread(0);
    EXPECT_EQ(thread.retired(), 0u);
    runCycles(core, 400, 10);
    EXPECT_EQ(thread.retired(), 1u);
    EXPECT_TRUE(core.quiescent());
}

TEST(OooCoreTest, HigherFrequencyRaisesComputeThroughputPerGlobalCycle)
{
    FixedLatencyMemory mem;
    CoreParams p = CoreParams::big();
    OooCore base(p, 0, 1, &mem, 2.66);
    PatternThread t0({aluOp()});
    base.attachThread(0, &t0);
    runCycles(base, 4000);

    FixedLatencyMemory mem2;
    CoreParams hf = CoreParams::big().withFrequency(3.325);
    OooCore fast(hf, 0, 1, &mem2, 2.66);
    PatternThread t1({aluOp()});
    fast.attachThread(0, &t1);
    runCycles(fast, 4000);

    EXPECT_NEAR(static_cast<double>(t1.retired()) /
                    static_cast<double>(t0.retired()),
                1.25, 0.05);
}

TEST(OooCoreTest, IcountPolicyProducesComparableThroughput)
{
    // Identical co-runners: ICOUNT and round-robin must land close (the
    // paper's justification for the simple RR choice).
    const BenchmarkProfile &bench = specProfile("hmmer");
    auto run = [&](FetchPolicy policy) {
        FixedLatencyMemory mem(40);
        CoreParams p = CoreParams::big();
        p.fetchPolicy = policy;
        OooCore core(p, 0, 4, &mem, 2.66);
        std::vector<std::unique_ptr<ProfileThread>> threads;
        for (std::uint32_t i = 0; i < 4; ++i) {
            threads.push_back(
                std::make_unique<ProfileThread>(bench, i, 1u << 30));
            core.attachThread(i, threads.back().get());
        }
        runCycles(core, 50000);
        return static_cast<double>(core.stats().retired);
    };
    const double rr = run(FetchPolicy::kRoundRobin);
    const double ic = run(FetchPolicy::kIcount);
    EXPECT_GT(ic, 0.8 * rr);
    EXPECT_LT(ic, 1.25 * rr);
}

namespace {

/** Endless stream of loads to fresh lines: every access misses. */
class StreamingLoadThread : public ThreadSource
{
  public:
    MicroOp
    nextOp() override
    {
        MicroOp op;
        op.cls = OpClass::kLoad;
        op.addr = next_;
        next_ += kLineSize;
        return op;
    }
    bool hasWork() override { return true; }
    void onRetire(Cycle) override { ++retired_; }
    std::uint64_t retired() const { return retired_; }

  private:
    Addr next_ = Addr{1} << 45; // far from any other data
    std::uint64_t retired_ = 0;
};

} // namespace

TEST(OooCoreTest, IcountFavoursTheLeastOccupyingThread)
{
    // One always-missing load stream (fills its ROB partition and MSHRs)
    // and one pure-ALU thread. Under ICOUNT the ALU thread, whose window
    // stays nearly empty, gets fetch priority and dominates throughput.
    FixedLatencyMemory mem(500);
    CoreParams p = CoreParams::big();
    p.fetchPolicy = FetchPolicy::kIcount;
    OooCore core(p, 0, 2, &mem, 2.66);
    StreamingLoadThread slow;
    PatternThread fast({aluOp()});
    core.attachThread(0, &slow);
    core.attachThread(1, &fast);
    runCycles(core, 30000);
    EXPECT_GT(fast.retired(), slow.retired() * 5);
    // The ALU thread must sustain a healthy rate despite the co-runner.
    EXPECT_GT(fast.retired(), 30000u);
}

TEST(OooCoreTest, AttachValidation)
{
    FixedLatencyMemory mem;
    OooCore core(CoreParams::big(), 0, 2, &mem, 2.66);
    PatternThread thread({aluOp()});
    core.attachThread(0, &thread);
    EXPECT_THROW(core.attachThread(0, &thread), FatalError);
    EXPECT_THROW(core.attachThread(7, &thread), FatalError);
    EXPECT_EQ(core.threadAt(0), &thread);
    EXPECT_EQ(core.threadAt(1), nullptr);
    EXPECT_EQ(core.activeContexts(), 1u);
    EXPECT_EQ(core.detachThread(0), &thread);
    EXPECT_EQ(core.activeContexts(), 0u);
}

TEST(OooCoreTest, ContextCountValidation)
{
    FixedLatencyMemory mem;
    EXPECT_THROW(OooCore(CoreParams::big(), 0, 7, &mem, 2.66), FatalError);
    EXPECT_THROW(OooCore(CoreParams::big(), 0, 0, &mem, 2.66), FatalError);
}

} // namespace
} // namespace smtflex
