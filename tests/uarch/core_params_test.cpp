/**
 * @file
 * Tests for the Table 1 core parameter sets and their variants.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "uarch/core_params.h"

namespace smtflex {
namespace {

TEST(CoreParamsTest, Table1Big)
{
    const CoreParams b = CoreParams::big();
    EXPECT_EQ(b.type, CoreType::kBig);
    EXPECT_TRUE(b.outOfOrder);
    EXPECT_EQ(b.width, 4u);
    EXPECT_EQ(b.robSize, 128u);
    EXPECT_EQ(b.maxSmtContexts, 6u);
    EXPECT_EQ(b.intUnits, 3u);
    EXPECT_EQ(b.ldstUnits, 2u);
    EXPECT_EQ(b.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(b.l1i.assoc, 4u);
    EXPECT_EQ(b.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(b.l2.assoc, 8u);
    EXPECT_DOUBLE_EQ(b.freqGHz, 2.66);
    EXPECT_NO_THROW(b.validate());
}

TEST(CoreParamsTest, Table1Medium)
{
    const CoreParams m = CoreParams::medium();
    EXPECT_EQ(m.type, CoreType::kMedium);
    EXPECT_TRUE(m.outOfOrder);
    EXPECT_EQ(m.width, 2u);
    EXPECT_EQ(m.robSize, 32u);
    EXPECT_EQ(m.maxSmtContexts, 3u);
    EXPECT_EQ(m.l1d.sizeBytes, 16u * 1024);
    EXPECT_EQ(m.l2.sizeBytes, 128u * 1024);
    EXPECT_NO_THROW(m.validate());
}

TEST(CoreParamsTest, Table1Small)
{
    const CoreParams s = CoreParams::small();
    EXPECT_EQ(s.type, CoreType::kSmall);
    EXPECT_FALSE(s.outOfOrder);
    EXPECT_EQ(s.width, 2u);
    EXPECT_EQ(s.maxSmtContexts, 2u);
    EXPECT_EQ(s.l1d.sizeBytes, 6u * 1024);
    EXPECT_EQ(s.l2.sizeBytes, 48u * 1024);
    EXPECT_NO_THROW(s.validate());
}

TEST(CoreParamsTest, CoreTypeTags)
{
    EXPECT_STREQ(coreTypeTag(CoreType::kBig), "B");
    EXPECT_STREQ(coreTypeTag(CoreType::kMedium), "m");
    EXPECT_STREQ(coreTypeTag(CoreType::kSmall), "s");
}

TEST(CoreParamsTest, WithBigCachesCopiesBigGeometry)
{
    const CoreParams s = CoreParams::small().withBigCaches();
    const CoreParams b = CoreParams::big();
    EXPECT_EQ(s.l1i.sizeBytes, b.l1i.sizeBytes);
    EXPECT_EQ(s.l1d.sizeBytes, b.l1d.sizeBytes);
    EXPECT_EQ(s.l2.sizeBytes, b.l2.sizeBytes);
    EXPECT_EQ(s.name, "small_lc");
    EXPECT_FALSE(s.outOfOrder); // pipeline unchanged
    EXPECT_NO_THROW(s.validate());
}

TEST(CoreParamsTest, WithFrequency)
{
    const CoreParams m = CoreParams::medium().withFrequency(3.33);
    EXPECT_DOUBLE_EQ(m.freqGHz, 3.33);
    EXPECT_EQ(m.name, "medium_hf");
    EXPECT_NO_THROW(m.validate());
}

TEST(CoreParamsTest, ValidationCatchesNonsense)
{
    CoreParams p = CoreParams::big();
    p.width = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = CoreParams::big();
    p.robSize = 2; // smaller than width
    EXPECT_THROW(p.validate(), FatalError);

    p = CoreParams::big();
    p.maxSmtContexts = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = CoreParams::big();
    p.freqGHz = 0.0;
    EXPECT_THROW(p.validate(), FatalError);

    p = CoreParams::big();
    p.mshrs = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

/** validate() must throw and the message must name @p field. */
void
expectRejected(const CoreParams &p, const std::string &field)
{
    try {
        p.validate();
        FAIL() << "validate() accepted degenerate " << field;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
            << "error message does not name '" << field << "': " << e.what();
    }
}

TEST(CoreParamsTest, ValidationRejectsZeroMulUnits)
{
    CoreParams p = CoreParams::big();
    p.mulUnits = 0;
    expectRejected(p, "mul");
}

TEST(CoreParamsTest, ValidationRejectsZeroFpUnits)
{
    CoreParams p = CoreParams::big();
    p.fpUnits = 0;
    expectRejected(p, "fp");
}

TEST(CoreParamsTest, ValidationRejectsZeroL1Latency)
{
    CoreParams p = CoreParams::big();
    p.latL1 = 0;
    expectRejected(p, "latL1");
}

TEST(CoreParamsTest, ValidationRejectsZeroCacheSize)
{
    CoreParams p = CoreParams::big();
    p.l1d.sizeBytes = 0;
    expectRejected(p, "l1d.sizeBytes");
}

TEST(CoreParamsTest, ValidationRejectsZeroCacheAssoc)
{
    CoreParams p = CoreParams::big();
    p.l2.assoc = 0;
    expectRejected(p, "l2.assoc");
}

TEST(CoreParamsTest, ValidationRejectsSubSetCache)
{
    // 64-byte 16-way cache has fewer lines than one set needs.
    CoreParams p = CoreParams::big();
    p.l1i = {64, 16};
    expectRejected(p, "l1i");
}

} // namespace
} // namespace smtflex
