/**
 * @file
 * Property-style tests of CsvWriter::escape: any field — embedded quotes,
 * commas, newlines, carriage returns, leading/trailing spaces — must
 * round-trip bit-exactly through an RFC 4180 parser, both as a lone field
 * and inside full rows written by CsvWriter. The random cases draw from
 * the deterministic Rng so failures reproduce.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "report/csv.h"

namespace smtflex {
namespace {

/**
 * Minimal RFC 4180 reference parser: rows of fields, comma-separated,
 * "\n" row terminator, quoted fields may contain commas, newlines and
 * doubled quotes. Spaces are field content (never trimmed).
 */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        if (c == '"' && !field_started && field.empty()) {
            in_quotes = true;
            field_started = true;
        } else if (c == ',') {
            row.push_back(field);
            field.clear();
            field_started = false;
        } else if (c == '\n') {
            row.push_back(field);
            rows.push_back(row);
            row.clear();
            field.clear();
            field_started = false;
        } else {
            field += c;
            field_started = true;
        }
    }
    EXPECT_FALSE(in_quotes) << "unterminated quoted field";
    if (field_started || !field.empty() || !row.empty()) {
        row.push_back(field);
        rows.push_back(row);
    }
    return rows;
}

/** escape() then parse back as a one-field row. */
std::string
roundTrip(const std::string &field)
{
    const auto rows = parseCsv(CsvWriter::escape(field) + "\n");
    EXPECT_EQ(rows.size(), 1u) << "field split into rows: " << field;
    if (rows.size() != 1 || rows[0].size() != 1)
        return "<parse error>";
    return rows[0][0];
}

TEST(CsvEscapePropertyTest, EdgeCasesRoundTrip)
{
    const std::vector<std::string> cases = {
        "",
        "plain",
        "has,comma",
        "has\"quote",
        "\"",
        "\"\"",
        "\"quoted\"",
        "ends with quote\"",
        "\"starts with quote",
        "new\nline",
        "carriage\rreturn",
        "\r\n",
        "both\r\nkinds",
        " leading space",
        "trailing space ",
        "  ",
        " , mixed \" everything \r\n here ,",
        "semicolons;and|pipes",
        "trailing comma,",
        ",leading comma",
        ",,,",
    };
    for (const std::string &field : cases)
        EXPECT_EQ(roundTrip(field), field)
            << "escaped form: " << CsvWriter::escape(field);
}

TEST(CsvEscapePropertyTest, QuotingIsMinimal)
{
    // Fields without a delimiter, quote or line break pass through
    // verbatim — including ones with spaces (RFC 4180 keeps spaces).
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(" padded "), " padded ");
    EXPECT_EQ(CsvWriter::escape(""), "");
    // Fields that need quoting double their quotes.
    EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
    EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
}

TEST(CsvEscapePropertyTest, RandomFieldsRoundTrip)
{
    // Characters weighted towards the troublesome ones.
    static const char kAlphabet[] = {'a', 'b', 'z', '0', ',', '"',  '\n',
                                     '\r', ' ', ' ', ';', '|', '\t', '.'};
    Rng rng(20'260'806, 0);
    for (int iteration = 0; iteration < 2'000; ++iteration) {
        const std::size_t length = rng.nextRange(24);
        std::string field;
        for (std::size_t i = 0; i < length; ++i)
            field += kAlphabet[rng.nextRange(sizeof(kAlphabet))];
        EXPECT_EQ(roundTrip(field), field)
            << "iteration " << iteration
            << " escaped form: " << CsvWriter::escape(field);
    }
}

TEST(CsvEscapePropertyTest, FullRowsRoundTripThroughWriter)
{
    static const char kAlphabet[] = {'x', ',', '"', '\n', '\r', ' ', '7'};
    Rng rng(7, 1);
    const std::vector<std::string> header = {"name", "value,with,commas",
                                             "not\nes"};
    std::vector<std::vector<std::string>> written;
    std::ostringstream os;
    CsvWriter writer(os, header);
    for (int r = 0; r < 50; ++r) {
        std::vector<std::string> row;
        for (std::size_t c = 0; c < header.size(); ++c) {
            const std::size_t length = rng.nextRange(12);
            std::string field;
            for (std::size_t i = 0; i < length; ++i)
                field += kAlphabet[rng.nextRange(sizeof(kAlphabet))];
            row.push_back(field);
        }
        writer.row(row);
        written.push_back(row);
    }

    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), written.size() + 1); // + header
    EXPECT_EQ(rows[0], header);
    for (std::size_t r = 0; r < written.size(); ++r)
        EXPECT_EQ(rows[r + 1], written[r]) << "row " << r;
}

} // namespace
} // namespace smtflex
