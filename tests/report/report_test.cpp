/**
 * @file
 * Tests for CSV writing and simulation reports.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.h"
#include "report/csv.h"
#include "report/sim_report.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

TEST(CsvTest, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x", "y"});
    EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(CsvTest, EscapingPerRfc4180)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, RowBuilderMixedTypes)
{
    std::ostringstream out;
    CsvWriter csv(out, {"s", "d", "u"});
    csv.beginRow().add(std::string("x")).add(1.5).add(
        std::uint64_t{42}).done();
    EXPECT_EQ(out.str(), "s,d,u\nx,1.5,42\n");
}

TEST(CsvTest, WrongColumnCountRejected)
{
    std::ostringstream out;
    CsvWriter csv(out, {"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), FatalError);
    EXPECT_THROW(CsvWriter(out, {}), FatalError);
}

SimResult
sampleResult()
{
    ChipConfig cfg = ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}, {1, 0}};
    return chip.runMultiProgram({{&specProfile("hmmer"), 4000, 1000},
                                 {&specProfile("mcf"), 4000, 1000}},
                                pl, 42);
}

TEST(SimReportTest, TextReportContainsKeySections)
{
    const SimResult result = sampleResult();
    std::ostringstream out;
    writeTextReport(out, result, PowerModel{});
    const std::string text = out.str();
    EXPECT_NE(text.find("2B"), std::string::npos);
    EXPECT_NE(text.find("hmmer"), std::string::npos);
    EXPECT_NE(text.find("mcf"), std::string::npos);
    EXPECT_NE(text.find("power"), std::string::npos);
    EXPECT_NE(text.find("cores (2)"), std::string::npos);
}

TEST(SimReportTest, ThreadCsvHasOneRowPerThread)
{
    const SimResult result = sampleResult();
    std::ostringstream out;
    writeThreadCsv(out, result);
    const std::string text = out.str();
    // Header + 2 rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_NE(text.find("hmmer"), std::string::npos);
}

TEST(SimReportTest, CoreCsvHasOneRowPerCore)
{
    const SimResult result = sampleResult();
    std::ostringstream out;
    writeCoreCsv(out, result, PowerModel{});
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_NE(text.find("B"), std::string::npos);
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::istringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ','))
        fields.push_back(field);
    return fields;
}

TEST(SimReportTest, ThreadCsvRoundTripsNumericValues)
{
    // Serialize, parse the CSV back, and check the numbers survive — the
    // serve layer ships these reports over the wire, so the text form
    // must reconstruct the result exactly at printed precision.
    const SimResult result = sampleResult();
    std::ostringstream out;
    writeThreadCsv(out, result);
    std::istringstream in(out.str());

    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const std::vector<std::string> header = splitCsvLine(line);
    const auto column = [&](const char *name) {
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (header[i] == name)
                return i;
        }
        ADD_FAILURE() << "missing column " << name;
        return std::size_t{0};
    };
    const std::size_t benchCol = column("benchmark");
    const std::size_t budgetCol = column("budget");
    const std::size_t ipcCol = column("ipc");

    for (const auto &thread : result.threads) {
        ASSERT_TRUE(std::getline(in, line));
        const std::vector<std::string> fields = splitCsvLine(line);
        ASSERT_GT(fields.size(), std::max(budgetCol, ipcCol));
        EXPECT_EQ(fields[benchCol], thread.benchmark);
        EXPECT_EQ(std::stoull(fields[budgetCol]),
                  static_cast<unsigned long long>(thread.budget));
        EXPECT_NEAR(std::stod(fields[ipcCol]), thread.ipc(), 1e-4);
    }
    EXPECT_FALSE(std::getline(in, line)); // no extra rows
}

TEST(SimReportTest, IdenticalRunsSerializeIdentically)
{
    // The serve response cache keys on the request: two runs of the same
    // spec must render byte-identical reports for memoisation to be
    // transparent.
    const SimResult a = sampleResult();
    const SimResult b = sampleResult();
    std::ostringstream textA, textB, csvA, csvB;
    writeTextReport(textA, a, PowerModel{});
    writeTextReport(textB, b, PowerModel{});
    writeThreadCsv(csvA, a);
    writeThreadCsv(csvB, b);
    EXPECT_EQ(textA.str(), textB.str());
    EXPECT_EQ(csvA.str(), csvB.str());
}

} // namespace
} // namespace smtflex
