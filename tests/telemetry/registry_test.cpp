/**
 * @file
 * Tests of the telemetry metric spine: typed values, path validation,
 * counter/gauge/info/series registration, subtree walks, snapshots,
 * Prometheus exposition, the attachCounters/StatsProvider helpers, and
 * the one concurrency contract the registry makes — atomic counter cells
 * may be read while another thread bumps them.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "telemetry/registry.h"

namespace smtflex {
namespace telemetry {
namespace {

TEST(MetricValueTest, TypedFactoriesAndAccessors)
{
    EXPECT_EQ(MetricValue::u64(7).asU64(), 7u);
    EXPECT_DOUBLE_EQ(MetricValue::real(0.25).asDouble(), 0.25);
    EXPECT_TRUE(MetricValue::boolean(true).asBool());
    EXPECT_EQ(MetricValue::string("4B").asString(), "4B");

    EXPECT_TRUE(MetricValue::u64(1).isU64());
    EXPECT_TRUE(MetricValue::real(1.0).isDouble());
    EXPECT_TRUE(MetricValue::boolean(false).isBool());
    EXPECT_TRUE(MetricValue::string("x").isString());
}

TEST(MetricValueTest, MismatchedAccessIsFatal)
{
    EXPECT_THROW(MetricValue::u64(1).asDouble(), FatalError);
    EXPECT_THROW(MetricValue::real(1.0).asU64(), FatalError);
    EXPECT_THROW(MetricValue::string("x").asBool(), FatalError);
    EXPECT_THROW(MetricValue::boolean(true).asString(), FatalError);
}

TEST(MetricValueTest, NumericWidensEverythingButStrings)
{
    EXPECT_DOUBLE_EQ(MetricValue::u64(3).numeric(), 3.0);
    EXPECT_DOUBLE_EQ(MetricValue::real(2.5).numeric(), 2.5);
    EXPECT_DOUBLE_EQ(MetricValue::boolean(true).numeric(), 1.0);
    EXPECT_DOUBLE_EQ(MetricValue::boolean(false).numeric(), 0.0);
    EXPECT_THROW(MetricValue::string("x").numeric(), FatalError);
}

TEST(MetricValueTest, EqualityComparesTagAndPayload)
{
    EXPECT_EQ(MetricValue::u64(5), MetricValue::u64(5));
    EXPECT_FALSE(MetricValue::u64(5) == MetricValue::u64(6));
    // Same numeric value, different tag: not equal.
    EXPECT_FALSE(MetricValue::u64(1) == MetricValue::real(1.0));
    EXPECT_EQ(MetricValue::string("a"), MetricValue::string("a"));
}

TEST(SeriesTest, UnboundedAppendKeepsEverything)
{
    Series s;
    for (std::uint64_t i = 0; i < 100; ++i)
        s.append(i * 10, static_cast<double>(i));
    EXPECT_EQ(s.size(), 100u);
    EXPECT_EQ(s.points().front().x, 0u);
    EXPECT_EQ(s.points().back().x, 990u);
    EXPECT_DOUBLE_EQ(s.last(), 99.0);
}

TEST(SeriesTest, BoundedSeriesDropsOldest)
{
    Series s(3);
    for (std::uint64_t i = 0; i < 5; ++i)
        s.append(i, static_cast<double>(i));
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.points()[0].x, 2u);
    EXPECT_EQ(s.points()[2].x, 4u);
}

TEST(SeriesTest, LastOfEmptyIsZero)
{
    Series s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.last(), 0.0);
}

TEST(MetricPathTest, AcceptsDottedLowercasePaths)
{
    validateMetricPath("core.0.retired");
    validateMetricPath("llc.misses");
    validateMetricPath("serve.queue_depth");
    validateMetricPath("a");
}

TEST(MetricPathTest, RejectsMalformedPaths)
{
    EXPECT_THROW(validateMetricPath(""), FatalError);
    EXPECT_THROW(validateMetricPath("."), FatalError);
    EXPECT_THROW(validateMetricPath(".x"), FatalError);
    EXPECT_THROW(validateMetricPath("x."), FatalError);
    EXPECT_THROW(validateMetricPath("a..b"), FatalError);
    EXPECT_THROW(validateMetricPath("Core.retired"), FatalError);
    EXPECT_THROW(validateMetricPath("core-0"), FatalError);
    EXPECT_THROW(validateMetricPath("core 0"), FatalError);
}

TEST(MetricRegistryTest, CounterViewsTrackTheProducerCell)
{
    std::uint64_t cell = 0;
    MetricRegistry reg;
    reg.counter("chip.cycles", &cell);

    EXPECT_EQ(reg.read("chip.cycles").asU64(), 0u);
    cell = 41;
    // Zero hot-path cost: the producer bumped a plain uint64_t; the
    // registry sees the new value only when read.
    EXPECT_EQ(reg.read("chip.cycles").asU64(), 41u);
}

TEST(MetricRegistryTest, GaugesEvaluateAtReadTime)
{
    int depth = 2;
    MetricRegistry reg;
    reg.gauge("q.depth", [&] { return std::uint64_t(depth); });
    reg.gaugeReal("q.ratio", [&] { return depth / 4.0; });
    reg.gaugeBool("q.busy", [&] { return depth > 0; });
    reg.info("q.name", [] { return std::string("main"); });

    EXPECT_EQ(reg.read("q.depth").asU64(), 2u);
    depth = 0;
    EXPECT_EQ(reg.read("q.depth").asU64(), 0u);
    EXPECT_DOUBLE_EQ(reg.read("q.ratio").asDouble(), 0.0);
    EXPECT_FALSE(reg.read("q.busy").asBool());
    EXPECT_EQ(reg.read("q.name").asString(), "main");
}

TEST(MetricRegistryTest, DuplicateAndUnknownPathsAreFatal)
{
    std::uint64_t cell = 0;
    MetricRegistry reg;
    reg.counter("a.b", &cell);
    EXPECT_THROW(reg.counter("a.b", &cell), FatalError);
    EXPECT_THROW(reg.read("a.missing"), FatalError);
    EXPECT_THROW(reg.counter("Bad.Path", &cell), FatalError);
}

TEST(MetricRegistryTest, SubtreeWalkStripsPrefixAndRespectsBoundaries)
{
    std::uint64_t one = 1, two = 2, three = 3;
    MetricRegistry reg;
    reg.counter("serve.requests", &one);
    reg.counter("serve.responses", &two);
    // A sibling whose name shares the prefix characters but not the
    // dotted boundary must not appear in the subtree.
    reg.counter("server_other.x", &three);

    std::vector<std::string> names;
    std::vector<std::uint64_t> values;
    reg.forEachInSubtree("serve", [&](const std::string &name, MetricKind kind,
                                      const MetricValue &value) {
        EXPECT_EQ(kind, MetricKind::kCounter);
        names.push_back(name);
        values.push_back(value.asU64());
    });
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "requests");
    EXPECT_EQ(names[1], "responses");
    EXPECT_EQ(values[0], 1u);
    EXPECT_EQ(values[1], 2u);
}

TEST(MetricRegistryTest, SnapshotMaterialisesScalarsButNotSeries)
{
    std::uint64_t cell = 9;
    MetricRegistry reg;
    reg.counter("chip.cycles", &cell);
    reg.gaugeReal("chip.freq_ghz", [] { return 2.5; });
    Series &s = reg.series("chip.ipc");
    s.append(100, 1.5);

    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.size(), 2u);
    EXPECT_TRUE(snap.contains("chip.cycles"));
    EXPECT_FALSE(snap.contains("chip.ipc"));
    EXPECT_EQ(snap.u64("chip.cycles"), 9u);
    EXPECT_DOUBLE_EQ(snap.numeric("chip.freq_ghz"), 2.5);
    EXPECT_THROW(snap.at("chip.ipc"), FatalError);

    // The snapshot is a copy: later producer bumps do not retroact.
    cell = 10;
    EXPECT_EQ(snap.u64("chip.cycles"), 9u);

    Snapshot rebuilt;
    rebuilt.set("chip.cycles", MetricValue::u64(9));
    rebuilt.set("chip.freq_ghz", MetricValue::real(2.5));
    EXPECT_TRUE(snap == rebuilt);
}

TEST(MetricRegistryTest, SeriesHandleIsStableAndIdempotent)
{
    MetricRegistry reg;
    Series &a = reg.series("chip.ipc", 4);
    Series &b = reg.series("chip.ipc", 999); // existing handle wins
    EXPECT_EQ(&a, &b);
    a.append(1, 0.5);
    ASSERT_NE(reg.findSeries("chip.ipc"), nullptr);
    EXPECT_EQ(reg.findSeries("chip.ipc")->size(), 1u);
    EXPECT_EQ(reg.findSeries("chip.nope"), nullptr);
    // The series' scalar reading is its latest sample.
    EXPECT_DOUBLE_EQ(reg.read("chip.ipc").asDouble(), 0.5);
}

TEST(MetricRegistryTest, ExpositionRendersPrometheusText)
{
    std::uint64_t cell = 3;
    MetricRegistry reg;
    reg.counter("llc.misses", &cell);
    reg.gaugeBool("chip.hit_cycle_limit", [] { return true; });
    reg.info("chip.config", [] { return std::string("4B \"quoted\"\n"); });

    const std::string text = reg.exposition();
    EXPECT_NE(text.find("# TYPE smtflex_llc_misses counter\n"
                        "smtflex_llc_misses 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE smtflex_chip_hit_cycle_limit gauge\n"
                        "smtflex_chip_hit_cycle_limit 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("smtflex_chip_config_info"
                        "{value=\"4B \\\"quoted\\\"\\n\"} 1\n"),
              std::string::npos);
}

struct FakeStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("hits", &FakeStats::hits);
        f("misses", &FakeStats::misses);
    }
};

TEST(AttachCountersTest, RegistersEveryDeclaredField)
{
    FakeStats stats;
    MetricRegistry reg;
    attachCounters(reg, "fake", stats);
    stats.hits = 5;
    stats.misses = 2;
    EXPECT_EQ(reg.read("fake.hits").asU64(), 5u);
    EXPECT_EQ(reg.read("fake.misses").asU64(), 2u);
}

TEST(AttachHistogramTest, RegistersOneGaugePerBucket)
{
    std::vector<double> fractions = {0.5, 0.25, 0.25};
    MetricRegistry reg;
    attachHistogram(reg, "chip.active_threads", fractions.size(),
                    [&](std::size_t k) { return fractions[k]; });
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_DOUBLE_EQ(reg.read("chip.active_threads.0").asDouble(), 0.5);
    EXPECT_DOUBLE_EQ(reg.read("chip.active_threads.2").asDouble(), 0.25);
    fractions[2] = 0.75; // gauges evaluate at read time
    EXPECT_DOUBLE_EQ(reg.read("chip.active_threads.2").asDouble(), 0.75);
}

struct FakeAtomicStats
{
    std::atomic<std::uint64_t> events{0};

    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("events", &FakeAtomicStats::events);
    }
};

TEST(AttachCountersTest, HandlesAtomicMembers)
{
    FakeAtomicStats stats;
    MetricRegistry reg;
    attachCounters(reg, "srv", stats);
    stats.events.store(7);
    EXPECT_EQ(reg.read("srv.events").asU64(), 7u);
}

class FakeModel : public StatsProvider<FakeStats>
{
  public:
    void touch() { stats_.hits++; }
};

TEST(StatsProviderTest, SharedStatsAndClearIdiom)
{
    FakeModel model;
    model.touch();
    model.touch();
    EXPECT_EQ(model.stats().hits, 2u);
    model.clearStats();
    EXPECT_EQ(model.stats().hits, 0u);
    EXPECT_EQ(model.stats().misses, 0u);
}

/** The serve-layer pattern under tsan: worker threads bump atomic cells
 * while a reader thread walks/snapshots the registry. */
TEST(MetricRegistryTest, AtomicCountersReadableWhileBumped)
{
    FakeAtomicStats stats;
    MetricRegistry reg;
    attachCounters(reg, "srv", stats);

    constexpr std::uint64_t kBumps = 50'000;
    std::thread writer([&] {
        for (std::uint64_t i = 0; i < kBumps; ++i)
            stats.events.fetch_add(1, std::memory_order_relaxed);
    });
    std::uint64_t last = 0;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t seen = reg.snapshot().u64("srv.events");
        EXPECT_GE(seen, last); // monotone under concurrent bumps
        last = seen;
    }
    writer.join();
    EXPECT_EQ(reg.read("srv.events").asU64(), kBumps);
}

} // namespace
} // namespace telemetry
} // namespace smtflex
