/**
 * @file
 * Tests for the self-healing experiment machinery: mapRecovering's
 * retry/quarantine semantics (both with real exceptions and the
 * exec.throw injection site), the watchdog's stall detection and the
 * PanicError escape hatch.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/log.h"
#include "exec/experiment_runner.h"
#include "exec/recovery.h"

namespace smtflex {
namespace {

using exec::ExperimentRunner;
using exec::RecoveryOptions;
using exec::Watchdog;

class RecoveryTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(RecoveryTest, FaultFreeMapRecoversNothing)
{
    ExperimentRunner runner;
    const auto out = runner.mapRecovering(
        16, [](std::size_t i) { return static_cast<double>(i) * 2.0; });
    ASSERT_TRUE(out.allOk());
    EXPECT_EQ(out.retries, 0u);
    EXPECT_EQ(out.stallsDetected, 0u);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(out.ok[i], 1);
        EXPECT_DOUBLE_EQ(out.results[i], i * 2.0);
    }
}

TEST_F(RecoveryTest, TransientFailureIsRetriedToSuccess)
{
    // Experiment 3 fails twice, then succeeds; the sweep's results are
    // the ones a fault-free run produces.
    std::atomic<unsigned> failures{0};
    ExperimentRunner runner;
    RecoveryOptions options;
    options.maxAttempts = 3;
    const auto out = runner.mapRecovering(
        8,
        [&](std::size_t i) -> int {
            if (i == 3 && failures.fetch_add(1) < 2)
                throw FatalError("flaky");
            return static_cast<int>(i) + 100;
        },
        options);
    ASSERT_TRUE(out.allOk());
    EXPECT_EQ(out.retries, 2u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(out.results[i], static_cast<int>(i) + 100);
}

TEST_F(RecoveryTest, PersistentFailureIsQuarantined)
{
    ExperimentRunner runner;
    RecoveryOptions options;
    options.maxAttempts = 2;
    const auto out = runner.mapRecovering(
        6,
        [](std::size_t i) -> int {
            if (i == 1 || i == 4)
                throw std::runtime_error("experiment is broken");
            return static_cast<int>(i);
        },
        options);
    EXPECT_FALSE(out.allOk());
    ASSERT_EQ(out.quarantined.size(), 2u);
    // Deterministic index order regardless of completion order.
    EXPECT_EQ(out.quarantined[0].index, 1u);
    EXPECT_EQ(out.quarantined[1].index, 4u);
    EXPECT_EQ(out.quarantined[0].attempts, 2u);
    EXPECT_NE(out.quarantined[0].error.find("broken"), std::string::npos);
    // The healthy experiments all completed.
    for (const std::size_t i : {0u, 2u, 3u, 5u}) {
        EXPECT_EQ(out.ok[i], 1);
        EXPECT_EQ(out.results[i], static_cast<int>(i));
    }
    EXPECT_EQ(out.ok[1], 0);
    EXPECT_EQ(out.ok[4], 0);
}

TEST_F(RecoveryTest, PanicPropagates)
{
    ExperimentRunner runner;
    EXPECT_THROW(runner.mapRecovering(4,
                                      [](std::size_t) -> int {
                                          throw PanicError("invariant");
                                      }),
                 PanicError);
}

TEST_F(RecoveryTest, InjectedThrowIsInvisibleInTheResults)
{
    ExperimentRunner runner;
    const auto fn = [](std::size_t i) {
        return static_cast<double>(i) * 1.5 + 1.0;
    };
    const auto clean = runner.mapRecovering(32, fn);
    ASSERT_TRUE(clean.allOk());

    // Two injected failures somewhere in the sweep: both are retried and
    // the output is identical to the undisturbed run.
    fault::configure("exec.throw:limit=2");
    const auto chaotic = runner.mapRecovering(32, fn);
    fault::reset();
    ASSERT_TRUE(chaotic.allOk());
    EXPECT_EQ(chaotic.retries, 2u);
    EXPECT_EQ(chaotic.results, clean.results);
}

TEST_F(RecoveryTest, InjectedThrowBeyondAttemptsQuarantines)
{
    // p=1 with no limit: every attempt of every experiment fails.
    fault::configure("exec.throw");
    ExperimentRunner runner;
    RecoveryOptions options;
    options.maxAttempts = 2;
    const auto out = runner.mapRecovering(
        3, [](std::size_t i) { return static_cast<int>(i); }, options);
    fault::reset();
    EXPECT_EQ(out.quarantined.size(), 3u);
    for (const auto &failure : out.quarantined) {
        EXPECT_EQ(failure.attempts, 2u);
        EXPECT_NE(failure.error.find("injected"), std::string::npos);
    }
}

TEST_F(RecoveryTest, WatchdogReportsAStalledExperiment)
{
    Watchdog watchdog(2, 20);
    watchdog.beginExperiment(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_EQ(watchdog.stallsDetected(), 1u); // reported exactly once
    watchdog.endExperiment(0);
    // A fast experiment is never reported.
    watchdog.beginExperiment(1);
    watchdog.endExperiment(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_EQ(watchdog.stallsDetected(), 1u);
}

TEST_F(RecoveryTest, DisabledWatchdogNeverReports)
{
    Watchdog watchdog(1, 0);
    watchdog.beginExperiment(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    watchdog.endExperiment(0);
    EXPECT_EQ(watchdog.stallsDetected(), 0u);
}

TEST_F(RecoveryTest, InjectedStallIsDetectedAndTheSweepCompletes)
{
    fault::configure("exec.stall:limit=1;param=150");
    ExperimentRunner runner;
    RecoveryOptions options;
    options.watchdogMs = 30;
    const auto out = runner.mapRecovering(
        4, [](std::size_t i) { return static_cast<int>(i); }, options);
    fault::reset();
    ASSERT_TRUE(out.allOk());
    EXPECT_GE(out.stallsDetected, 1u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(out.results[i], static_cast<int>(i));
}

TEST_F(RecoveryTest, BackoffSleepIsBounded)
{
    RecoveryOptions options;
    options.backoffBaseMs = 1;
    options.backoffCapMs = 4;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned attempt = 1; attempt <= 6; ++attempt)
        exec::backoffSleep(options, attempt);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    // 1 + 2 + 4 + 4 + 4 + 4 = 19 ms of sleeps, far below the uncapped
    // 1 + 2 + 4 + 8 + 16 + 32; allow generous scheduling slack.
    EXPECT_GE(elapsed.count(), 15);
    EXPECT_LT(elapsed.count(), 2000);
}

} // namespace
} // namespace smtflex
