/**
 * @file
 * End-to-end determinism of the parallel experiment engine: a design-space
 * sweep must emit byte-identical CSV for SMTFLEX_JOBS=1 (serial) and
 * SMTFLEX_JOBS=8 (work-stealing, arbitrary steal order), because results
 * land by task index and every simulation is a deterministic function of
 * its inputs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "exec/thread_pool.h"
#include "study/design_space.h"
#include "study/study_engine.h"

namespace smtflex {
namespace {

StudyOptions
tinyOptions()
{
    StudyOptions opts;
    opts.budget = 4'000;
    opts.warmup = 1'000;
    opts.seed = 12'345;
    opts.cachePath.clear(); // in-memory: no cross-run leakage
    opts.hetMixes = 12;
    return opts;
}

/** A miniature fig03/fig08-style sweep rendered as CSV with full float
 * precision (any drift, however small, must flip a byte). */
std::string
sweepCsv()
{
    StudyEngine eng(tinyOptions());
    std::ostringstream csv;
    csv.precision(17);
    csv << "design,threads,workload,stp,antt,power_w\n";
    for (const char *design : {"4B", "2B4m"}) {
        for (const std::uint32_t n : {1u, 4u, 8u}) {
            const RunMetrics homo = eng.homogeneousAt(paperDesign(design), n);
            csv << design << ',' << n << ",homogeneous," << homo.stp << ','
                << homo.antt << ',' << homo.powerGatedW << '\n';
        }
        const RunMetrics het = eng.heterogeneousAt(paperDesign(design), 4);
        csv << design << ",4,heterogeneous," << het.stp << ',' << het.antt
            << ',' << het.powerGatedW << '\n';
    }
    return csv.str();
}

class DeterminismTest : public ::testing::Test
{
  protected:
    // Leave the process-wide pool serial for whatever test runs next.
    void TearDown() override { exec::ThreadPool::resetGlobalForTesting(1); }
};

TEST_F(DeterminismTest, SweepCsvByteIdenticalSerialVsEightJobs)
{
    exec::ThreadPool::resetGlobalForTesting(1);
    const std::string serial = sweepCsv();
    exec::ThreadPool::resetGlobalForTesting(8);
    const std::string parallel = sweepCsv();
    EXPECT_EQ(serial, parallel);
    // And parallel runs agree with each other across steal schedules.
    EXPECT_EQ(parallel, sweepCsv());
    EXPECT_NE(serial.find("4B,1,homogeneous,"), std::string::npos);
}

TEST_F(DeterminismTest, IsolatedIpcTableIdenticalSerialVsParallel)
{
    exec::ThreadPool::resetGlobalForTesting(1);
    std::ostringstream serial, parallel;
    serial.precision(17);
    parallel.precision(17);
    {
        StudyEngine eng(tinyOptions());
        for (const char *b : {"mcf", "hmmer", "tonto"})
            serial << b << '=' << eng.isolatedIpc(b, CoreType::kBig) << ';';
    }
    exec::ThreadPool::resetGlobalForTesting(8);
    {
        StudyEngine eng(tinyOptions());
        eng.offline(); // parallel 12x3 characterisation fan-out
        for (const char *b : {"mcf", "hmmer", "tonto"})
            parallel << b << '=' << eng.isolatedIpc(b, CoreType::kBig)
                     << ';';
    }
    EXPECT_EQ(serial.str(), parallel.str());
}

} // namespace
} // namespace smtflex
