/**
 * @file
 * Tests for parallel_for / par_do / ExperimentRunner: every index runs
 * exactly once for any worker count, results land by task index, and
 * nesting matches the serial semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "exec/experiment_runner.h"
#include "exec/parallel.h"

namespace smtflex {
namespace exec {
namespace {

TEST(ParallelForTest, EveryIndexExactlyOnceForAnyWorkerCount)
{
    for (const unsigned workers : {0u, 1u, 2u, 3u, 8u}) {
        ThreadPool pool(workers);
        const std::size_t n = 10'000;
        std::vector<std::atomic<int>> hits(n);
        parallel_for(
            0, n, [&](std::size_t i) { hits[i].fetch_add(1); },
            /*grain=*/0, &pool);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << ", " << workers << " workers";
    }
}

TEST(ParallelForTest, RespectsExplicitGrainAndSubranges)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    parallel_for(
        10, 60, [&](std::size_t i) { hits[i].fetch_add(1); },
        /*grain=*/7, &pool);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), (i >= 10 && i < 60) ? 1 : 0) << i;
}

TEST(ParallelForTest, EmptyAndSingletonRanges)
{
    ThreadPool pool(2);
    int calls = 0;
    parallel_for(5, 5, [&](std::size_t) { ++calls; }, 0, &pool);
    EXPECT_EQ(calls, 0);
    parallel_for(5, 6, [&](std::size_t i) { calls += static_cast<int>(i); },
                 0, &pool);
    EXPECT_EQ(calls, 5);
}

TEST(ParallelForTest, NestedParallelForSumsCorrectly)
{
    ThreadPool pool(4);
    const std::size_t rows = 32, cols = 64;
    std::vector<long> row_sums(rows, 0);
    parallel_for(
        0, rows,
        [&](std::size_t r) {
            std::vector<long> cells(cols);
            parallel_for(
                0, cols,
                [&](std::size_t c) {
                    cells[c] = static_cast<long>(r * cols + c);
                },
                0, &pool);
            row_sums[r] = std::accumulate(cells.begin(), cells.end(), 0L);
        },
        /*grain=*/1, &pool);
    const long total =
        std::accumulate(row_sums.begin(), row_sums.end(), 0L);
    const long n = static_cast<long>(rows * cols);
    EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParDoTest, RunsBothBranches)
{
    for (const unsigned workers : {0u, 2u}) {
        ThreadPool pool(workers);
        std::atomic<int> left{0}, right{0};
        par_do([&] { left.fetch_add(1); }, [&] { right.fetch_add(1); },
               &pool);
        EXPECT_EQ(left.load(), 1);
        EXPECT_EQ(right.load(), 1);
    }
}

TEST(ExperimentRunnerTest, ResultsLandByIndexForAnyWorkerCount)
{
    for (const unsigned workers : {0u, 1u, 4u, 8u}) {
        ThreadPool pool(workers);
        ExperimentRunner runner(&pool);
        const auto results = runner.map(257, [](std::size_t i) {
            return static_cast<double>(i * i);
        });
        ASSERT_EQ(results.size(), 257u);
        for (std::size_t i = 0; i < results.size(); ++i)
            ASSERT_DOUBLE_EQ(results[i], static_cast<double>(i * i))
                << workers << " workers";
    }
}

TEST(ExperimentRunnerTest, MapItemsKeepsItemOrder)
{
    ThreadPool pool(3);
    ExperimentRunner runner(&pool);
    const std::vector<std::string> items = {"aa", "b", "cccc", "", "dd"};
    const auto lengths = runner.mapItems(
        items, [](const std::string &s) { return s.size(); });
    EXPECT_EQ(lengths,
              (std::vector<std::size_t>{2, 1, 4, 0, 2}));
}

TEST(ExperimentRunnerTest, UnbalancedTaskCostsStillOrdered)
{
    // Tasks with wildly different costs finish out of order; results must
    // not.
    ThreadPool pool(4);
    ExperimentRunner runner(&pool);
    const auto results = runner.map(64, [](std::size_t i) {
        volatile double sink = 0;
        for (std::size_t k = 0; k < (i % 2 ? 200'000u : 10u); ++k)
            sink += static_cast<double>(k);
        return static_cast<int>(i);
    });
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[i], i);
}

} // namespace
} // namespace exec
} // namespace smtflex
