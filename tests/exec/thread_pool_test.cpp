/**
 * @file
 * Tests for the work-stealing ThreadPool and TaskGroup: completion,
 * nesting, helping waits, exception propagation, and the serial
 * (zero-worker) mode.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.h"
#include "exec/thread_pool.h"

namespace smtflex {
namespace exec {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    EXPECT_EQ(pool.concurrency(), 1u);
    const auto submitter = std::this_thread::get_id();
    std::vector<int> order;
    TaskGroup group(pool);
    for (int i = 0; i < 5; ++i) {
        group.run([&, i] {
            EXPECT_EQ(std::this_thread::get_id(), submitter);
            order.push_back(i);
        });
    }
    group.wait();
    // Inline mode executes at submission, in submission order.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, RunsAllTasksOnWorkers)
{
    for (const unsigned workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        std::atomic<int> count{0};
        TaskGroup group(pool);
        for (int i = 0; i < 100; ++i)
            group.run([&] { count.fetch_add(1); });
        group.wait();
        EXPECT_EQ(count.load(), 100) << workers << " workers";
    }
}

TEST(ThreadPoolTest, NestedGroupsComplete)
{
    ThreadPool pool(3);
    std::atomic<int> leaves{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
        outer.run([&] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j)
                inner.run([&] { leaves.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, WaitHelpsFromSubmittingThread)
{
    // One worker, deliberately parked on a slow task: the submitting
    // thread's wait() must pick up the remaining queued tasks itself.
    ThreadPool pool(1);
    std::atomic<bool> release{false};
    std::atomic<int> done{0};
    TaskGroup group(pool);
    group.run([&] {
        while (!release.load())
            std::this_thread::yield();
        done.fetch_add(1);
    });
    for (int i = 0; i < 10; ++i)
        group.run([&, i] {
            if (i == 9)
                release.store(true);
            done.fetch_add(1);
        });
    group.wait();
    EXPECT_EQ(done.load(), 11);
}

TEST(ThreadPoolTest, ExceptionsPropagateToWait)
{
    for (const unsigned workers : {0u, 2u}) {
        ThreadPool pool(workers);
        TaskGroup group(pool);
        std::atomic<int> survivors{0};
        for (int i = 0; i < 10; ++i) {
            group.run([&, i] {
                if (i == 3)
                    throw std::runtime_error("task failed");
                survivors.fetch_add(1);
            });
        }
        EXPECT_THROW(group.wait(), std::runtime_error)
            << workers << " workers";
        // A failure aborts nothing else: every other task still ran.
        EXPECT_EQ(survivors.load(), 9);
    }
}

TEST(ThreadPoolTest, FatalErrorCrossesThreads)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { fatal("simulated user error"); });
    EXPECT_THROW(group.wait(), FatalError);
}

TEST(ThreadPoolTest, ConfiguredJobsReadsEnv)
{
    setenv("SMTFLEX_JOBS", "5", 1);
    EXPECT_EQ(ThreadPool::configuredJobs(), 5u);
    setenv("SMTFLEX_JOBS", "0", 1);
    EXPECT_THROW(ThreadPool::configuredJobs(), FatalError);
    setenv("SMTFLEX_JOBS", "many", 1);
    EXPECT_THROW(ThreadPool::configuredJobs(), FatalError);
    unsetenv("SMTFLEX_JOBS");
    EXPECT_GE(ThreadPool::configuredJobs(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolResetForTesting)
{
    ThreadPool::resetGlobalForTesting(1);
    EXPECT_EQ(ThreadPool::global().workerCount(), 0u);
    ThreadPool::resetGlobalForTesting(4);
    EXPECT_EQ(ThreadPool::global().workerCount(), 4u);
    std::atomic<int> count{0};
    TaskGroup group(ThreadPool::global());
    for (int i = 0; i < 32; ++i)
        group.run([&] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 32);
    ThreadPool::resetGlobalForTesting(1);
}

} // namespace
} // namespace exec
} // namespace smtflex
