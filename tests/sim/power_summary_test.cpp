/**
 * @file
 * Tests for power/energy summarisation of simulation results, including
 * power gating of idle cores (paper Section 7).
 */

#include <gtest/gtest.h>

#include "sim/chip_sim.h"
#include "sim/power_summary.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

SimResult
runOn4B(std::uint32_t threads)
{
    ChipConfig cfg = ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    ChipSim chip(cfg);
    Placement pl;
    std::vector<ThreadSpec> specs;
    for (std::uint32_t i = 0; i < threads; ++i) {
        pl.entries.push_back({i % 4, i / 4});
        specs.push_back({&specProfile("hmmer"), 8000, 2000});
    }
    return chip.runMultiProgram(specs, pl, 42);
}

TEST(PowerSummaryTest, GatingSavesPowerAtLowThreadCounts)
{
    const SimResult r = runOn4B(1);
    PowerModel model;
    const PowerSummary gated = summarisePower(r, model, true);
    const PowerSummary ungated = summarisePower(r, model, false);
    // Three of four cores are idle the whole run: gating saves their
    // static power.
    EXPECT_LT(gated.avgPowerW, ungated.avgPowerW - 2.0);
    EXPECT_DOUBLE_EQ(gated.coreDynamicW, ungated.coreDynamicW);
    EXPECT_DOUBLE_EQ(gated.uncoreW, ungated.uncoreW);
}

TEST(PowerSummaryTest, NoGatingOpportunityAtFullOccupancy)
{
    const SimResult r = runOn4B(4);
    PowerModel model;
    const PowerSummary gated = summarisePower(r, model, true);
    const PowerSummary ungated = summarisePower(r, model, false);
    EXPECT_NEAR(gated.avgPowerW, ungated.avgPowerW, 1e-9);
}

TEST(PowerSummaryTest, MoreThreadsMorePower)
{
    PowerModel model;
    const double p1 = summarisePower(runOn4B(1), model, true).avgPowerW;
    const double p4 = summarisePower(runOn4B(4), model, true).avgPowerW;
    const double p8 = summarisePower(runOn4B(8), model, true).avgPowerW;
    EXPECT_GT(p4, p1 + 3.0);
    // Activating SMT contexts raises power, but far less than waking cores
    // (paper Fig. 14).
    EXPECT_GT(p8, p4);
    EXPECT_LT(p8 - p4, p4 - p1);
}

TEST(PowerSummaryTest, EnergyEqualsPowerTimesTime)
{
    const SimResult r = runOn4B(2);
    PowerModel model;
    const PowerSummary s = summarisePower(r, model, true);
    EXPECT_NEAR(s.energyJ, s.avgPowerW * r.seconds(), 1e-9);
    EXPECT_NEAR(s.avgPowerW,
                s.coreStaticW + s.coreDynamicW + s.uncoreW, 1e-9);
}

TEST(PowerSummaryTest, UncoreAlwaysOn)
{
    const SimResult r = runOn4B(1);
    PowerModel model;
    const PowerSummary s = summarisePower(r, model, true);
    EXPECT_GE(s.uncoreW, model.uncoreStaticW() - 1e-9);
}

TEST(PowerSummaryTest, EmptyResultYieldsZero)
{
    SimResult r;
    PowerModel model;
    const PowerSummary s = summarisePower(r, model, true);
    EXPECT_DOUBLE_EQ(s.avgPowerW, 0.0);
    EXPECT_DOUBLE_EQ(s.energyJ, 0.0);
}

} // namespace
} // namespace smtflex
