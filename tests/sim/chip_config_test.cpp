/**
 * @file
 * Tests for ChipConfig construction and the SMT/bandwidth variants.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/chip_config.h"

namespace smtflex {
namespace {

TEST(ChipConfigTest, HomogeneousConstruction)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    EXPECT_EQ(cfg.name, "4B");
    EXPECT_EQ(cfg.numCores(), 4u);
    EXPECT_TRUE(cfg.smtEnabled);
    EXPECT_EQ(cfg.totalContexts(), 24u); // 4 x 6 SMT contexts
    EXPECT_EQ(cfg.contextsOf(0), 6u);
}

TEST(ChipConfigTest, HeterogeneousConstruction)
{
    const ChipConfig cfg =
        ChipConfig::heterogeneous("3B5s", 3, CoreParams::small(), 5);
    EXPECT_EQ(cfg.numCores(), 8u);
    EXPECT_EQ(cfg.cores[0].type, CoreType::kBig);
    EXPECT_EQ(cfg.cores[3].type, CoreType::kSmall);
    EXPECT_EQ(cfg.totalContexts(), 3u * 6 + 5u * 2);
}

TEST(ChipConfigTest, SmtOffExposesOneContextPerCore)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("8m", CoreParams::medium(), 8)
            .withSmt(false);
    EXPECT_EQ(cfg.totalContexts(), 8u);
    EXPECT_EQ(cfg.contextsOf(0), 1u);
}

TEST(ChipConfigTest, WithBandwidth)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("4B", CoreParams::big(), 4)
            .withBandwidth(16.0);
    EXPECT_DOUBLE_EQ(cfg.dram.busBandwidthGBps, 16.0);
    // Original parameters untouched.
    EXPECT_EQ(cfg.llc.sizeBytes, 8u * 1024 * 1024);
}

TEST(ChipConfigTest, DefaultUncoreMatchesTable1)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    EXPECT_EQ(cfg.llc.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.llc.assoc, 16u);
    EXPECT_EQ(cfg.dram.numBanks, 8u);
    EXPECT_DOUBLE_EQ(cfg.dram.accessTimeNs, 45.0);
    EXPECT_DOUBLE_EQ(cfg.dram.busBandwidthGBps, 8.0);
    EXPECT_DOUBLE_EQ(cfg.chipFreqGHz, 2.66);
}

TEST(ChipConfigTest, ValidationRejectsNonsense)
{
    ChipConfig cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.name.clear();
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.cores.clear();
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.chipFreqGHz = -1.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    EXPECT_THROW(cfg.contextsOf(5), FatalError);
}

/** validate() must throw and the message must name @p field. */
void
expectRejected(const ChipConfig &cfg, const std::string &field)
{
    try {
        cfg.validate();
        FAIL() << "validate() accepted degenerate " << field;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
            << "error message does not name '" << field << "': " << e.what();
    }
}

TEST(ChipConfigTest, ValidationNamesEmptyCoreList)
{
    ChipConfig cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.cores.clear();
    expectRejected(cfg, "cores");
}

TEST(ChipConfigTest, ValidationRejectsZeroLlcSize)
{
    ChipConfig cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.llc.sizeBytes = 0;
    expectRejected(cfg, "llc.sizeBytes");
}

TEST(ChipConfigTest, ValidationRejectsZeroLlcAssoc)
{
    // assoc = 0 used to divide by zero inside validate() itself.
    ChipConfig cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.llc.assoc = 0;
    expectRejected(cfg, "llc.assoc");
}

TEST(ChipConfigTest, ValidationRejectsZeroLlcLatency)
{
    ChipConfig cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.llcLatency = 0;
    expectRejected(cfg, "llcLatency");
}

TEST(ChipConfigTest, ValidationRejectsZeroDramBandwidth)
{
    ChipConfig cfg = ChipConfig::homogeneous("x", CoreParams::big(), 1);
    cfg.dram.busBandwidthGBps = 0.0;
    expectRejected(cfg, "dram.busBandwidthGBps");
}

} // namespace
} // namespace smtflex
