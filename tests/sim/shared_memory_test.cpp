/**
 * @file
 * Tests for the shared memory system: crossbar -> LLC -> DRAM latency
 * composition, writeback paths, and warmup installation.
 */

#include <gtest/gtest.h>

#include "sim/shared_memory.h"

namespace smtflex {
namespace {

ChipConfig
config()
{
    return ChipConfig::homogeneous("t", CoreParams::big(), 1);
}

TEST(SharedMemoryTest, LlcMissGoesToDramThenHits)
{
    SharedMemory mem(config());
    const Addr addr = 0x12345640;

    const Cycle miss = mem.fetchLine(1000, addr, 0);
    // xbar hop (4) + LLC lookup (20) + DRAM (142) + response hop (4).
    EXPECT_EQ(miss, 1000u + 4 + 20 + 142 + 4);
    EXPECT_EQ(mem.dram().stats().reads, 1u);

    const Cycle hit = mem.fetchLine(5000, addr, 0);
    EXPECT_EQ(hit, 5000u + 4 + 20 + 4);
    EXPECT_EQ(mem.dram().stats().reads, 1u); // no new DRAM access
}

TEST(SharedMemoryTest, WarmLineMakesFetchAnLlcHit)
{
    SharedMemory mem(config());
    mem.warmLine(0xabc040);
    const Cycle done = mem.fetchLine(100, 0xabc040, 0);
    EXPECT_EQ(done, 100u + 4 + 20 + 4);
    EXPECT_EQ(mem.dram().stats().reads, 0u);
}

TEST(SharedMemoryTest, WritebackAllocatesInLlc)
{
    SharedMemory mem(config());
    mem.writebackLine(10, 0x999940, 0);
    // The written-back line now hits in the LLC.
    const Cycle done = mem.fetchLine(1000, 0x999940, 0);
    EXPECT_EQ(done, 1000u + 4 + 20 + 4);
}

TEST(SharedMemoryTest, DirtyLlcVictimReachesDram)
{
    ChipConfig cfg = config();
    cfg.llc = {64 * 1024, 2}; // small LLC: easy to evict
    SharedMemory mem(cfg);
    // Write back far more dirty lines than the LLC holds.
    const std::uint64_t lines = (1 * 1024 * 1024) / kLineSize;
    for (std::uint64_t i = 0; i < lines; ++i)
        mem.writebackLine(i * 10, i * kLineSize, 0);
    EXPECT_GT(mem.dram().stats().writes, lines / 2);
}

TEST(SharedMemoryTest, BankContentionSerialisesSameBank)
{
    SharedMemory mem(config());
    // Warm both lines so only the crossbar/bank is exercised.
    const Addr a = 0 * kLineSize;
    const Addr b = 8 * kLineSize; // same LLC bank (8 banks)
    mem.warmLine(a);
    mem.warmLine(b);
    const Cycle first = mem.fetchLine(0, a, 0);
    const Cycle second = mem.fetchLine(0, b, 1);
    EXPECT_EQ(first, 0u + 4 + 20 + 4);
    EXPECT_GT(second, first); // queued behind the first at the bank
}

TEST(SharedMemoryTest, DifferentBanksProceedInParallel)
{
    SharedMemory mem(config());
    const Addr a = 0 * kLineSize;
    const Addr b = 1 * kLineSize;
    mem.warmLine(a);
    mem.warmLine(b);
    const Cycle first = mem.fetchLine(0, a, 0);
    const Cycle second = mem.fetchLine(0, b, 1);
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace smtflex
