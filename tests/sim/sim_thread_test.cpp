/**
 * @file
 * Tests for SimThread: warmup window, finish detection, restart semantics.
 */

#include <gtest/gtest.h>

#include "sim/sim_thread.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

TEST(SimThreadTest, FinishAfterBudget)
{
    SimThread t(specProfile("hmmer"), 1, 0, 100, false, 0);
    EXPECT_FALSE(t.finished());
    for (Cycle c = 1; c <= 99; ++c) {
        t.onRetire(c);
        EXPECT_FALSE(t.finished());
    }
    t.onRetire(100);
    EXPECT_TRUE(t.finished());
    EXPECT_EQ(t.finishCycle(), 100u);
    EXPECT_EQ(t.startCycle(), 0u);
    EXPECT_FALSE(t.hasWork()) << "non-restarting thread stops";
}

TEST(SimThreadTest, WarmupExcludedFromWindow)
{
    SimThread t(specProfile("hmmer"), 1, 0, 100, true, 50);
    for (Cycle c = 1; c <= 50; ++c)
        t.onRetire(c * 2);
    EXPECT_EQ(t.startCycle(), 100u); // cycle of the 50th retire
    EXPECT_FALSE(t.finished());
    for (Cycle c = 51; c <= 150; ++c)
        t.onRetire(c * 2);
    EXPECT_TRUE(t.finished());
    EXPECT_EQ(t.finishCycle(), 300u);
}

TEST(SimThreadTest, RestartKeepsWorking)
{
    SimThread t(specProfile("hmmer"), 1, 0, 10, true, 0);
    for (Cycle c = 1; c <= 10; ++c)
        t.onRetire(c);
    EXPECT_TRUE(t.finished());
    EXPECT_TRUE(t.hasWork()) << "restarting thread keeps contending";
    // Finish cycle does not move on further retires.
    t.onRetire(99);
    EXPECT_EQ(t.finishCycle(), 10u);
    EXPECT_EQ(t.retired(), 11u);
}

TEST(SimThreadTest, OpsComeFromProfileStream)
{
    SimThread t(specProfile("libquantum"), 7, 3, 1000, true, 0);
    int mem = 0;
    for (int i = 0; i < 1000; ++i)
        mem += t.nextOp().isMem();
    // libquantum: ~32% memory operations.
    EXPECT_NEAR(mem / 1000.0, 0.32, 0.06);
    EXPECT_EQ(t.benchmark(), "libquantum");
}

} // namespace
} // namespace smtflex
