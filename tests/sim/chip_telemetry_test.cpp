/**
 * @file
 * Tests of the chip simulator's telemetry spine: the live registry
 * snapshot collected into SimResult must equal the snapshot rebuilt from
 * the result structs (same paths, same values — the registry views point
 * at those very structs); Core's clearStats() must reset every counter
 * including the private hierarchy's; and interval sampling must populate
 * the chip.ipc / chip.active_threads series without perturbing the run —
 * sampled fast-forward results stay bit-identical to strict ones.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/chip_sim.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

SimResult
runWorkload(ChipSim &chip, const std::vector<const char *> &benches,
            const Placement &placement)
{
    std::vector<ThreadSpec> specs;
    specs.reserve(benches.size());
    for (const char *bench : benches)
        specs.push_back({&specProfile(bench), 12'000, 3'000});
    return chip.runMultiProgram(specs, placement, 42);
}

TEST(ChipTelemetryTest, LiveSnapshotMatchesRebuiltSnapshot)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}};
    ChipSim chip(cfg);
    const SimResult result = runWorkload(chip, {"mcf", "hmmer", "milc"}, pl);

    ASSERT_FALSE(result.metrics.empty());
    const telemetry::Snapshot rebuilt = rebuildResultMetrics(result);
    // Path-for-path, value-for-value: reports may render from either.
    EXPECT_TRUE(result.metrics == rebuilt);

    // Spot-check the schema against the structs.
    EXPECT_EQ(result.metrics.u64("chip.cycles"), result.cycles);
    EXPECT_EQ(result.metrics.u64("llc.misses"), result.llc.misses);
    EXPECT_EQ(result.metrics.u64("core.0.retired"),
              result.cores[0].stats.retired);
    EXPECT_EQ(result.metrics.u64("core.1.l1d.accesses"),
              result.cores[1].l1d.accesses);
    EXPECT_EQ(result.metrics.u64("dram.reads"), result.dram.reads);
    EXPECT_EQ(result.metrics.at("chip.config").asString(), cfg.name);
    EXPECT_EQ(result.metrics.at("chip.hit_cycle_limit").asBool(),
              result.hitCycleLimit);
}

TEST(ChipTelemetryTest, RegistryViewsTrackLiveCounters)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    runWorkload(chip, {"hmmer"}, pl);

    // Between runs the registry reads the very cells the run bumped.
    EXPECT_GT(chip.metrics().read("core.0.retired").asU64(), 0u);
    EXPECT_EQ(chip.metrics().read("chip.cycles").asU64(), chip.now());
    EXPECT_GT(chip.metrics().read("core.0.dispatch.int_alu").asU64(), 0u);
}

TEST(ChipTelemetryTest, CoreClearStatsResetsEverything)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    runWorkload(chip, {"mcf"}, pl);

    Core &core = chip.core(0);
    ASSERT_GT(core.stats().retired, 0u);
    ASSERT_GT(core.stats().coreCycles, 0u);
    core.clearStats();
    EXPECT_EQ(core.stats().retired, 0u);
    EXPECT_EQ(core.stats().coreCycles, 0u);
    EXPECT_EQ(core.stats().busyCycles, 0u);
    EXPECT_EQ(core.stats().mispredicts, 0u);
    for (std::size_t k = 0; k < kNumOpClasses; ++k)
        EXPECT_EQ(core.stats().dispatched[k], 0u);
    // The registry's views see the reset immediately.
    EXPECT_EQ(chip.metrics().read("core.0.retired").asU64(), 0u);
}

TEST(ChipTelemetryTest, SamplingPopulatesSeries)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    chip.enableSampling(1'000);
    ASSERT_TRUE(chip.samplingEnabled());
    Placement pl;
    pl.entries = {{0, 0}};
    runWorkload(chip, {"mcf"}, pl);

    const telemetry::Series *ipc = chip.metrics().findSeries("chip.ipc");
    const telemetry::Series *active =
        chip.metrics().findSeries("chip.active_threads");
    ASSERT_NE(ipc, nullptr);
    ASSERT_NE(active, nullptr);
    EXPECT_GT(ipc->size(), 0u);
    EXPECT_EQ(ipc->size(), active->size());

    // Samples land exactly on interval boundaries, in order.
    std::uint64_t prev = 0;
    for (const auto &point : ipc->points()) {
        EXPECT_EQ(point.x % 1'000, 0u);
        EXPECT_GT(point.x, prev);
        prev = point.x;
        EXPECT_GE(point.value, 0.0);
    }
    // An active single-thread run should show one attached thread.
    EXPECT_DOUBLE_EQ(active->points().front().value, 1.0);
}

TEST(ChipTelemetryTest, SamplingRingCapsPoints)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    chip.enableSampling(500, 8);
    Placement pl;
    pl.entries = {{0, 0}};
    runWorkload(chip, {"mcf"}, pl);

    const telemetry::Series *ipc = chip.metrics().findSeries("chip.ipc");
    ASSERT_NE(ipc, nullptr);
    EXPECT_LE(ipc->size(), 8u);
    // The ring keeps the most recent samples.
    EXPECT_EQ(ipc->points().back().x % 500, 0u);
}

/** Sampling must not perturb simulation: a sampled fast-forward run stays
 * bit-identical to a sampled strict run (the jump clamp at sample
 * boundaries), and to an unsampled run of either kind. */
TEST(ChipTelemetryTest, SamplingPreservesBitIdenticalResults)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<const char *> benches = {"mcf", "milc", "hmmer",
                                               "mcf"};

    ChipSim plain(cfg);
    plain.setFastForward(true);
    const SimResult base = runWorkload(plain, benches, pl);

    ChipSim sampled_fast(cfg);
    sampled_fast.setFastForward(true);
    sampled_fast.enableSampling(2'000);
    const SimResult fast = runWorkload(sampled_fast, benches, pl);

    ChipSim sampled_strict(cfg);
    sampled_strict.setFastForward(false);
    sampled_strict.enableSampling(2'000);
    const SimResult strict = runWorkload(sampled_strict, benches, pl);

    // mcf is latency-bound: fast-forward must still engage while sampling.
    EXPECT_GT(sampled_fast.fastForwardedCycles(), Cycle{0});

    // Snapshots cover every counter; equality is the full differential.
    EXPECT_TRUE(base.metrics == fast.metrics);
    EXPECT_TRUE(fast.metrics == strict.metrics);

    // And the sampled series themselves agree between strict and fast.
    const telemetry::Series *fast_ipc =
        sampled_fast.metrics().findSeries("chip.ipc");
    const telemetry::Series *strict_ipc =
        sampled_strict.metrics().findSeries("chip.ipc");
    ASSERT_NE(fast_ipc, nullptr);
    ASSERT_NE(strict_ipc, nullptr);
    ASSERT_EQ(fast_ipc->size(), strict_ipc->size());
    for (std::size_t i = 0; i < fast_ipc->size(); ++i) {
        EXPECT_EQ(fast_ipc->points()[i].x, strict_ipc->points()[i].x);
        EXPECT_EQ(fast_ipc->points()[i].value, strict_ipc->points()[i].value);
    }
}

TEST(ChipTelemetryTest, RebuildWorksForHandBuiltResults)
{
    SimResult result;
    result.configName = "synthetic";
    result.cycles = 1'000;
    result.llc.accesses = 10;
    result.llc.misses = 3;
    result.dram.reads = 2;

    const telemetry::Snapshot snap = rebuildResultMetrics(result);
    EXPECT_EQ(snap.u64("chip.cycles"), 1'000u);
    EXPECT_EQ(snap.u64("llc.misses"), 3u);
    EXPECT_EQ(snap.u64("dram.reads"), 2u);
    EXPECT_EQ(snap.at("chip.config").asString(), "synthetic");
}

} // namespace
} // namespace smtflex
