/**
 * @file
 * Integration tests of the chip simulator: isolated performance ordering
 * across core types, SMT behaviour, time-sharing, contention, determinism.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/chip_sim.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

SimResult
runIsolated(const std::string &bench, const CoreParams &core,
            InstrCount budget = 12000, InstrCount warmup = 4000)
{
    ChipConfig cfg = ChipConfig::homogeneous("iso", core, 1);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    return chip.runMultiProgram({{&specProfile(bench), budget, warmup}}, pl,
                                42);
}

TEST(ChipSimTest, IsolatedPerformanceOrderingAcrossCoreTypes)
{
    for (const char *bench : {"hmmer", "tonto", "mcf", "gobmk"}) {
        const double big = runIsolated(bench, CoreParams::big())
                               .threads[0].ipc();
        const double medium = runIsolated(bench, CoreParams::medium())
                                  .threads[0].ipc();
        const double small = runIsolated(bench, CoreParams::small())
                                 .threads[0].ipc();
        EXPECT_GT(big, medium) << bench;
        EXPECT_GT(medium, small) << bench;
    }
}

TEST(ChipSimTest, DeterministicResults)
{
    const double a = runIsolated("soplex", CoreParams::big()).threads[0].ipc();
    const double b = runIsolated("soplex", CoreParams::big()).threads[0].ipc();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(ChipSimTest, SmtIncreasesCoreThroughput)
{
    // 1 vs 3 threads on one big core: aggregate throughput must rise.
    // mcf is latency-bound, the classic SMT beneficiary.
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    const auto &profile = specProfile("mcf");

    ChipSim one(cfg);
    Placement p1;
    p1.entries = {{0, 0}};
    const SimResult r1 =
        one.runMultiProgram({{&profile, 12000, 4000}}, p1, 42);

    ChipSim three(cfg);
    Placement p3;
    p3.entries = {{0, 0}, {0, 1}, {0, 2}};
    const SimResult r3 = three.runMultiProgram(
        {{&profile, 12000, 4000}, {&profile, 12000, 4000},
         {&profile, 12000, 4000}},
        p3, 42);

    EXPECT_GT(r3.aggregateIpc(), r1.aggregateIpc() * 1.15);
    // ...but each co-running thread is slower than running alone.
    EXPECT_LT(r3.threads[0].ipc(), r1.threads[0].ipc());
}

TEST(ChipSimTest, TimeSharingSlowsPerThreadButFinishes)
{
    // Two threads on ONE context (SMT off) time-share the core. The
    // quantum must be well below the budget's runtime for the rotation to
    // show in the measured windows.
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1)
                         .withSmt(false);
    const auto &profile = specProfile("hmmer");
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}, {0, 0}};
    RunLimits limits;
    limits.quantum = 1000;
    const SimResult r = chip.runMultiProgram(
        {{&profile, 12000, 2000}, {&profile, 12000, 2000}}, pl, 42,
        limits);
    ASSERT_TRUE(r.threads[0].finished);
    ASSERT_TRUE(r.threads[1].finished);
    const double iso = runIsolated("hmmer", CoreParams::big()).threads[0].ipc();
    // Per-thread rate is roughly halved by the 50% share.
    EXPECT_LT(r.threads[0].ipc(), 0.75 * iso);
    EXPECT_LT(r.threads[1].ipc(), 0.75 * iso);
    EXPECT_GT(r.threads[0].ipc(), 0.25 * iso);
}

TEST(ChipSimTest, SharedBusContentionSlowsMemoryBoundThreads)
{
    // libquantum alone vs 4 copies on 4 separate big cores: the off-chip
    // bus is shared, so per-thread performance must drop.
    ChipConfig cfg = ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    const auto &profile = specProfile("libquantum");

    ChipSim solo(cfg);
    Placement p1;
    p1.entries = {{0, 0}};
    const SimResult r1 =
        solo.runMultiProgram({{&profile, 12000, 4000}}, p1, 42);

    ChipSim four(cfg);
    Placement p4;
    p4.entries = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
    const SimResult r4 = four.runMultiProgram(
        std::vector<ThreadSpec>(4, {&profile, 12000, 4000}), p4, 42);

    EXPECT_LT(r4.threads[0].ipc(), 0.95 * r1.threads[0].ipc());
    // The bus is visibly busier.
    EXPECT_GT(four.sharedMemory().dram().busUtilisation(r4.cycles),
              solo.sharedMemory().dram().busUtilisation(r1.cycles));
}

TEST(ChipSimTest, ComputeBoundThreadsBarelyInterfereAcrossCores)
{
    ChipConfig cfg = ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    const auto &profile = specProfile("hmmer");

    ChipSim solo(cfg);
    Placement p1;
    p1.entries = {{0, 0}};
    const SimResult r1 =
        solo.runMultiProgram({{&profile, 12000, 4000}}, p1, 42);

    ChipSim four(cfg);
    Placement p4;
    p4.entries = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
    const SimResult r4 = four.runMultiProgram(
        std::vector<ThreadSpec>(4, {&profile, 12000, 4000}), p4, 42);

    EXPECT_GT(r4.threads[0].ipc(), 0.9 * r1.threads[0].ipc());
}

TEST(ChipSimTest, PoweredCyclesTrackAttachment)
{
    ChipConfig cfg = ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    const SimResult r = chip.runMultiProgram(
        {{&specProfile("hmmer"), 8000, 0}}, pl, 42);
    EXPECT_EQ(r.cores[0].poweredCycles, r.cycles);
    EXPECT_EQ(r.cores[1].poweredCycles, 0u);
    EXPECT_EQ(r.cores[2].poweredCycles, 0u);
    EXPECT_EQ(r.cores[3].poweredCycles, 0u);
}

TEST(ChipSimTest, ActiveThreadFractions)
{
    ChipConfig cfg = ChipConfig::homogeneous("4B", CoreParams::big(), 4);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}, {1, 0}};
    const SimResult r = chip.runMultiProgram(
        {{&specProfile("hmmer"), 8000, 0}, {&specProfile("hmmer"), 8000, 0}},
        pl, 42);
    // Both threads stay attached (restart methodology) the whole run.
    EXPECT_NEAR(r.activeThreadFractions.at(2), 1.0, 1e-9);
}

TEST(ChipSimTest, PlacementValidation)
{
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    const std::vector<ThreadSpec> specs = {{&specProfile("hmmer"), 1000, 0}};
    Placement bad_core;
    bad_core.entries = {{3, 0}};
    EXPECT_THROW(chip.runMultiProgram(specs, bad_core, 1), FatalError);
    Placement bad_slot;
    bad_slot.entries = {{0, 9}};
    EXPECT_THROW(chip.runMultiProgram(specs, bad_slot, 1), FatalError);
    Placement wrong_size;
    wrong_size.entries = {{0, 0}, {0, 1}};
    EXPECT_THROW(chip.runMultiProgram(specs, wrong_size, 1), FatalError);
}

TEST(ChipSimTest, EmptyWorkloadRejected)
{
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    EXPECT_THROW(chip.runMultiProgram({}, Placement{}, 1), FatalError);
}

TEST(ChipSimTest, CycleLimitReported)
{
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    RunLimits limits;
    limits.maxCycles = 100; // cannot finish 8000 instructions
    const SimResult r = chip.runMultiProgram(
        {{&specProfile("hmmer"), 8000, 0}}, pl, 42, limits);
    EXPECT_TRUE(r.hitCycleLimit);
    EXPECT_FALSE(r.threads[0].finished);
}

TEST(ChipSimTest, ZeroMaxCyclesRejected)
{
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    RunLimits limits;
    limits.maxCycles = 0;
    try {
        chip.runMultiProgram({{&specProfile("hmmer"), 100, 0}}, pl, 42,
                             limits);
        FAIL() << "maxCycles = 0 accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("maxCycles"),
                  std::string::npos) << e.what();
    }
}

TEST(ChipSimTest, ZeroQuantumRejected)
{
    ChipConfig cfg = ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    ChipSim chip(cfg);
    Placement pl;
    pl.entries = {{0, 0}};
    RunLimits limits;
    limits.quantum = 0; // would never rotate time-shared threads
    try {
        chip.runMultiProgram({{&specProfile("hmmer"), 100, 0}}, pl, 42,
                             limits);
        FAIL() << "quantum = 0 accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("quantum"), std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace smtflex
