/**
 * @file
 * Differential tests of the event-driven fast-forward: every SimResult
 * field must be bit-identical with fast-forward on and off, across core
 * models (out-of-order, in-order), SMT occupancies, heterogeneous core
 * frequencies (non-unit core/chip clock ratios), time-sharing and cycle
 * limits. The committed seed cache doubles as a golden reference: the
 * isolated-IPC values it holds were produced by the strict simulator, so
 * recomputing them under fast-forward must reproduce them exactly.
 */

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/chip_sim.h"
#include "study/design_space.h"
#include "study/result_cache.h"
#include "study/study_engine.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace {

void
expectIdenticalCache(const CacheStats &a, const CacheStats &b,
                     const std::string &what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

/** Every field exactly equal — including double-typed ones, where any
 * accumulation-order difference would show up as a ULP drift. */
void
expectIdentical(const SimResult &strict, const SimResult &fast)
{
    EXPECT_EQ(strict.cycles, fast.cycles);
    EXPECT_EQ(strict.hitCycleLimit, fast.hitCycleLimit);

    ASSERT_EQ(strict.cores.size(), fast.cores.size());
    for (std::size_t i = 0; i < strict.cores.size(); ++i) {
        const std::string what = "core " + std::to_string(i);
        const CoreStats &a = strict.cores[i].stats;
        const CoreStats &b = fast.cores[i].stats;
        EXPECT_EQ(a.coreCycles, b.coreCycles) << what;
        EXPECT_EQ(a.busyCycles, b.busyCycles) << what;
        for (std::size_t k = 0; k < kNumOpClasses; ++k)
            EXPECT_EQ(a.dispatched[k], b.dispatched[k])
                << what << " op class " << k;
        EXPECT_EQ(a.retired, b.retired) << what;
        EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
        EXPECT_EQ(a.robStallEvents, b.robStallEvents) << what;
        EXPECT_EQ(a.mshrStallEvents, b.mshrStallEvents) << what;
        EXPECT_EQ(strict.cores[i].poweredCycles, fast.cores[i].poweredCycles)
            << what;
        expectIdenticalCache(strict.cores[i].l1i, fast.cores[i].l1i,
                             what + " l1i");
        expectIdenticalCache(strict.cores[i].l1d, fast.cores[i].l1d,
                             what + " l1d");
        expectIdenticalCache(strict.cores[i].l2, fast.cores[i].l2,
                             what + " l2");
    }

    expectIdenticalCache(strict.llc, fast.llc, "llc");
    EXPECT_EQ(strict.dram.reads, fast.dram.reads);
    EXPECT_EQ(strict.dram.writes, fast.dram.writes);
    EXPECT_EQ(strict.dram.totalLatencyCycles, fast.dram.totalLatencyCycles);
    EXPECT_EQ(strict.dram.busBusyCycles, fast.dram.busBusyCycles);
    EXPECT_EQ(strict.xbar.requests, fast.xbar.requests);
    EXPECT_EQ(strict.xbar.totalQueueCycles, fast.xbar.totalQueueCycles);

    ASSERT_EQ(strict.activeThreadFractions.size(),
              fast.activeThreadFractions.size());
    for (std::size_t k = 0; k < strict.activeThreadFractions.size(); ++k)
        EXPECT_EQ(strict.activeThreadFractions[k],
                  fast.activeThreadFractions[k])
            << "histogram bucket " << k;

    ASSERT_EQ(strict.threads.size(), fast.threads.size());
    for (std::size_t i = 0; i < strict.threads.size(); ++i) {
        const std::string what = "thread " + std::to_string(i);
        EXPECT_EQ(strict.threads[i].benchmark, fast.threads[i].benchmark)
            << what;
        EXPECT_EQ(strict.threads[i].budget, fast.threads[i].budget) << what;
        EXPECT_EQ(strict.threads[i].finished, fast.threads[i].finished)
            << what;
        EXPECT_EQ(strict.threads[i].startCycle, fast.threads[i].startCycle)
            << what;
        EXPECT_EQ(strict.threads[i].finishCycle, fast.threads[i].finishCycle)
            << what;
    }
}

struct DiffRun
{
    SimResult strict;
    SimResult fast;
    Cycle fastSkipped = 0; ///< cycles elided by the fast-forward run
};

DiffRun
runBoth(const ChipConfig &cfg, const std::vector<const char *> &benches,
        const Placement &placement, const RunLimits &limits = RunLimits{})
{
    std::vector<ThreadSpec> specs;
    specs.reserve(benches.size());
    for (const char *bench : benches)
        specs.push_back({&specProfile(bench), 12000, 3000});

    ChipSim strict_chip(cfg);
    strict_chip.setFastForward(false);
    ChipSim fast_chip(cfg);
    fast_chip.setFastForward(true);

    DiffRun d;
    d.strict = strict_chip.runMultiProgram(specs, placement, 42, limits);
    EXPECT_EQ(strict_chip.fastForwardedCycles(), Cycle{0});
    d.fast = fast_chip.runMultiProgram(specs, placement, 42, limits);
    d.fastSkipped = fast_chip.fastForwardedCycles();
    return d;
}

TEST(ChipSimFastFwdTest, OooSmtMatchesStrict)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("2B", CoreParams::big(), 2);
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const DiffRun d =
        runBoth(cfg, {"mcf", "milc", "hmmer", "mcf"}, pl);
    expectIdentical(d.strict, d.fast);
    // mcf is latency-bound: the fast-forward must actually have engaged.
    EXPECT_GT(d.fastSkipped, Cycle{0});
}

TEST(ChipSimFastFwdTest, InOrderManyCoresMatchesStrict)
{
    const ChipConfig cfg = paperDesign("20s");
    Placement pl;
    pl.entries = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}};
    const DiffRun d =
        runBoth(cfg, {"mcf", "milc", "mcf", "lbm", "soplex", "mcf"}, pl);
    expectIdentical(d.strict, d.fast);
    EXPECT_GT(d.fastSkipped, Cycle{0});
}

TEST(ChipSimFastFwdTest, HeterogeneousFrequencyInOrderMatchesStrict)
{
    // 3.33 GHz cores on a 2.66 GHz chip: clockRatio_ != 1, exercising the
    // accumulator-faithful skip replay and the conservative core-to-global
    // event conversion.
    const ChipConfig cfg = alternativeDesign("16s_hf");
    Placement pl;
    pl.entries = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
    const DiffRun d = runBoth(cfg, {"mcf", "milc", "mcf", "hmmer"}, pl);
    expectIdentical(d.strict, d.fast);
    EXPECT_GT(d.fastSkipped, Cycle{0});
}

TEST(ChipSimFastFwdTest, HeterogeneousFrequencyOooMatchesStrict)
{
    const ChipConfig cfg = alternativeDesign("6m_hf");
    Placement pl;
    pl.entries = {{0, 0}, {0, 1}, {1, 0}};
    const DiffRun d = runBoth(cfg, {"mcf", "mcf", "milc"}, pl);
    expectIdentical(d.strict, d.fast);
}

TEST(ChipSimFastFwdTest, TimeSharingMatchesStrict)
{
    // Three threads share one context slot; skips must clamp to every
    // quantum boundary so rotations run at exactly the strict cycles.
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    Placement pl;
    pl.entries = {{0, 0}, {0, 0}, {0, 0}};
    RunLimits limits;
    limits.quantum = 512;
    const DiffRun d = runBoth(cfg, {"mcf", "milc", "mcf"}, pl, limits);
    expectIdentical(d.strict, d.fast);
}

TEST(ChipSimFastFwdTest, TimeSharingTruncatedRunsMatchStrict)
{
    // Truncating the run at cycles on and just past quantum boundaries
    // exercises the interaction between thread rotation and the idle
    // jump: the rotation must fire exactly once per boundary regardless
    // of whether the boundary is reached by a step or by a jump.
    const ChipConfig cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    Placement pl;
    pl.entries = {{0, 0}, {0, 0}, {0, 0}};
    for (const Cycle m : {Cycle{511}, Cycle{512}, Cycle{513}, Cycle{1024},
                          Cycle{1065}, Cycle{1536}, Cycle{1537},
                          Cycle{2000}}) {
        RunLimits limits;
        limits.quantum = 512;
        limits.maxCycles = m;
        SCOPED_TRACE("maxCycles=" + std::to_string(m));
        const DiffRun d = runBoth(cfg, {"mcf", "milc", "mcf"}, pl, limits);
        expectIdentical(d.strict, d.fast);
    }
}

TEST(ChipSimFastFwdTest, CycleLimitMatchesStrict)
{
    // The limit lands inside memory-stall spans; the skip must clamp to
    // maxCycles and report hitCycleLimit exactly like the strict run.
    const ChipConfig cfg =
        ChipConfig::homogeneous("1s", CoreParams::small(), 1);
    Placement pl;
    pl.entries = {{0, 0}};
    RunLimits limits;
    limits.maxCycles = 2'000;
    const DiffRun d = runBoth(cfg, {"mcf"}, pl, limits);
    expectIdentical(d.strict, d.fast);
    EXPECT_TRUE(d.fast.hitCycleLimit);
    EXPECT_EQ(d.fast.cycles, limits.maxCycles);
}

TEST(ChipSimFastFwdTest, RunMatchesTickExactly)
{
    // The low-level driver path: run(N) with fast-forward on against N
    // strict tick() calls on an identical chip.
    const ChipConfig cfg =
        ChipConfig::homogeneous("2s", CoreParams::small(), 2);
    const auto make_threads = [] {
        std::vector<SimThread> threads;
        threads.reserve(2);
        threads.emplace_back(specProfile("mcf"), 7, 0, InstrCount{1} << 40,
                             true);
        threads.emplace_back(specProfile("milc"), 7, 1, InstrCount{1} << 40,
                             true);
        return threads;
    };

    ChipSim strict_chip(cfg);
    strict_chip.setFastForward(false);
    auto strict_threads = make_threads();
    strict_chip.attach(0, 0, &strict_threads[0]);
    strict_chip.attach(1, 0, &strict_threads[1]);

    ChipSim fast_chip(cfg);
    fast_chip.setFastForward(true);
    auto fast_threads = make_threads();
    fast_chip.attach(0, 0, &fast_threads[0]);
    fast_chip.attach(1, 0, &fast_threads[1]);

    constexpr Cycle kCycles = 50'000;
    for (Cycle c = 0; c < kCycles; ++c)
        strict_chip.tick();
    fast_chip.run(kCycles);

    EXPECT_EQ(strict_chip.now(), fast_chip.now());
    expectIdentical(strict_chip.collectResult(), fast_chip.collectResult());
    EXPECT_GT(fast_chip.fastForwardedCycles(), Cycle{0});
    EXPECT_GT(fast_chip.fastForwardSpans(), std::uint64_t{0});
}

TEST(ChipSimFastFwdTest, EnvFlagDisablesFastForward)
{
    const ChipConfig cfg =
        ChipConfig::homogeneous("1s", CoreParams::small(), 1);
    ::setenv("SMTFLEX_NO_FASTFWD", "1", 1);
    {
        ChipSim chip(cfg);
        EXPECT_FALSE(chip.fastForwardEnabled());
    }
    ::unsetenv("SMTFLEX_NO_FASTFWD");
    {
        ChipSim chip(cfg);
        EXPECT_TRUE(chip.fastForwardEnabled());
    }
}

#ifdef SMTFLEX_SOURCE_DIR
TEST(ChipSimFastFwdTest, SeedCacheGoldenValuesUnchanged)
{
    // The committed campaign cache predates the fast-forward; recomputing
    // its isolated-IPC entries with fast-forward on must reproduce the
    // stored doubles exactly (the cache stores 17 significant digits, so
    // values round-trip bit-exactly).
    ResultCache golden(std::string(SMTFLEX_SOURCE_DIR) +
                       "/smtflex_cache.txt");
    ASSERT_GT(golden.size(), std::size_t{0});

    StudyOptions opt;
    opt.cachePath.clear(); // in-memory only: force fresh simulation
    StudyEngine engine(opt);

    for (const char *bench : {"mcf", "milc", "hmmer"}) {
        for (const CoreType type :
             {CoreType::kBig, CoreType::kMedium, CoreType::kSmall}) {
            std::ostringstream key;
            key << "iso;" << bench << ";" << coreTypeTag(type) << ";b"
                << opt.budget << ";w" << opt.warmup << ";s" << opt.seed
                << ";bw" << opt.bandwidthGBps;
            const auto stored = golden.lookup(key.str());
            ASSERT_TRUE(stored.has_value()) << key.str();
            const double fresh = engine.isolatedIpc(bench, type);
            EXPECT_EQ(stored->at(0), fresh) << key.str();
        }
    }
}
#endif

} // namespace
} // namespace smtflex
