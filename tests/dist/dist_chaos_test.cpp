/**
 * @file
 * Chaos tests of the distributed sweep fabric: injected network faults
 * (short reads/writes, EAGAIN storms, mid-frame disconnects) on the
 * coordinator↔backend links, and backends torn down under load. The
 * invariant is the subsystem's north star — the coordinated sweep
 * response stays byte-identical to the single-node rendering, because
 * anything the fleet fails to deliver is recomputed deterministically.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/log.h"
#include "dist/coordinator.h"
#include "serve/commands.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "study/study_engine.h"

namespace smtflex {
namespace dist {
namespace {

using serve::Json;

StudyOptions
chaosStudy()
{
    StudyOptions study;
    study.budget = 1'500;
    study.warmup = 300;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

class TestBackend
{
  public:
    TestBackend()
    {
        serve::ServerOptions options;
        options.port = 0;
        options.study = chaosStudy();
        server_ = std::make_unique<serve::Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestBackend() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    BackendConfig config() const { return {"127.0.0.1", server_->port()}; }

  private:
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

class DistChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

serve::Request
sweepRequest(const std::string &bench)
{
    Json doc = Json::object();
    doc.set("op", Json::string("sweep"));
    doc.set("bench", Json::string(bench));
    return serve::parseRequest(doc);
}

TEST_F(DistChaosTest, SweepSurvivesInjectedLinkFaultsByteIdentically)
{
    StudyEngine reference(chaosStudy());
    const std::string expected =
        serve::sweepText(reference, sweepRequest("mcf").sweep);

    std::vector<std::unique_ptr<TestBackend>> backends;
    std::vector<BackendConfig> configs;
    for (int i = 0; i < 2; ++i) {
        backends.push_back(std::make_unique<TestBackend>());
        configs.push_back(backends.back()->config());
    }

    CoordinatorOptions options;
    options.server.port = 0;
    options.server.study = chaosStudy();
    options.backends = configs;
    options.chunkRows = 2;
    options.maxDispatch = 8; // fault storms must not abandon chunks
    options.stealAfterMs = 500;
    options.pool.probeTimeoutMs = 1'000;
    options.pool.connectTimeoutMs = 1'000;
    Coordinator coordinator(options);

    // Degrade every socket in the process — the backends' servers shrug
    // the faults off (their own chaos suite proves it), and the
    // coordinator's links stutter, tear and retry. Disconnects arm only
    // after the health probes pass (the probes deciding fleet membership
    // are not the behaviour under test here), and bounded fire counts
    // keep quarantine from consuming the whole fleet.
    fault::configure("net.short_read:p=0.3;seed=11,"
                     "net.short_write:p=0.3;seed=12,"
                     "net.eagain:p=0.2;seed=13,"
                     "net.disconnect:p=0.05;seed=14;after=40;limit=6");
    const Json body = coordinator.execute(sweepRequest("mcf"));
    fault::reset();

    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
    EXPECT_GT(coordinator.stats().chunksDispatched.load(), 0u);
}

TEST_F(DistChaosTest, ScheduleSurvivesInjectedLinkFaultsByteIdentically)
{
    // A schedule forward rides one coordinator→backend connection, so a
    // fault storm exercises the retry/failover path end to end; the
    // answer must still be the single-node rendering, byte for byte.
    Json doc = Json::object();
    doc.set("op", Json::string("schedule"));
    doc.set("design", Json::string("3B5s"));
    Json benchmarks = Json::array();
    benchmarks.push(Json::string("mcf"));
    benchmarks.push(Json::string("hmmer"));
    benchmarks.push(Json::string("lbm"));
    doc.set("benchmarks", std::move(benchmarks));
    doc.set("policy", Json::string("hysteresis"));
    const serve::Request req = serve::parseRequest(doc);

    StudyEngine reference(chaosStudy());
    const std::string expected =
        serve::scheduleText(reference, req.schedule);

    TestBackend backend;
    CoordinatorOptions options;
    options.server.port = 0;
    options.server.study = chaosStudy();
    options.backends = {backend.config()};
    options.pool.probeTimeoutMs = 1'000;
    options.pool.connectTimeoutMs = 1'000;
    Coordinator coordinator(options);

    fault::configure("net.short_read:p=0.3;seed=21,"
                     "net.short_write:p=0.3;seed=22,"
                     "net.eagain:p=0.2;seed=23,"
                     "net.disconnect:p=0.05;seed=24;after=20;limit=4");
    const Json body = coordinator.execute(req);
    fault::reset();

    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
    // Forwarded to the fleet or recomputed locally after quarantine —
    // either path must have produced the canonical bytes above.
    EXPECT_EQ(coordinator.stats().forwarded.load() +
                  coordinator.stats().forwardLocal.load(),
              1u);
}

TEST_F(DistChaosTest, EveryBackendDyingStillYieldsTheExactSweep)
{
    StudyEngine reference(chaosStudy());
    const std::string expected =
        serve::sweepText(reference, sweepRequest("astar").sweep);

    auto backend = std::make_unique<TestBackend>();
    CoordinatorOptions options;
    options.server.port = 0;
    options.server.study = chaosStudy();
    options.backends = {backend->config()};
    options.chunkRows = 1;
    options.pool.quarantineAfter = 2;
    options.pool.probeTimeoutMs = 500;
    options.pool.connectTimeoutMs = 500;
    Coordinator coordinator(options);

    std::thread runner;
    Json body;
    runner = std::thread([&] {
        body = coordinator.execute(sweepRequest("astar"));
    });
    // Kill the entire fleet as soon as it starts working. Whatever was
    // federated before the kill is reused; the rest is recomputed
    // locally — the output must not change by a byte either way.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    backend->stop();
    runner.join();

    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
}

} // namespace
} // namespace dist
} // namespace smtflex
