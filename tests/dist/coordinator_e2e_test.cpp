/**
 * @file
 * Coordinator end-to-end tests: a dist::Coordinator in front of real
 * in-process `serve` backends. The invariant under test throughout: the
 * coordinated response is byte-identical to the single-node rendering,
 * whatever the fleet size — including a backend dying mid-sweep, a
 * backend that never existed, and an empty fleet.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "serve/client.h"
#include "serve/commands.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "study/study_engine.h"

namespace smtflex {
namespace dist {
namespace {

using serve::Json;

StudyOptions
fastStudy()
{
    StudyOptions study;
    study.budget = 1'500;
    study.warmup = 300;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

/** One in-process `serve` backend on an ephemeral port. */
class TestBackend
{
  public:
    TestBackend()
    {
        serve::ServerOptions options;
        options.port = 0;
        options.study = fastStudy();
        server_ = std::make_unique<serve::Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestBackend() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    serve::Server &server() { return *server_; }
    BackendConfig config() const { return {"127.0.0.1", server_->port()}; }

  private:
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

CoordinatorOptions
coordOptions(const std::vector<BackendConfig> &backends)
{
    CoordinatorOptions options;
    options.server.port = 0;
    options.server.study = fastStudy();
    options.backends = backends;
    // Unit-test time scales: probes and connects fail fast, steals
    // trigger quickly.
    options.pool.probeTimeoutMs = 500;
    options.pool.connectTimeoutMs = 500;
    options.stealAfterMs = 2'000;
    return options;
}

serve::Request
sweepRequest(const std::string &bench)
{
    Json doc = Json::object();
    doc.set("op", Json::string("sweep"));
    doc.set("bench", Json::string(bench));
    return serve::parseRequest(doc);
}

TEST(CoordinatorE2eTest, SweepIsByteIdenticalForOneTwoAndThreeBackends)
{
    // The single-node reference, rendered by the exact code path the CLI
    // and a plain `serve` use.
    StudyEngine reference(fastStudy());
    const std::string expected =
        serve::sweepText(reference, sweepRequest("mcf").sweep);

    for (std::size_t fleet = 1; fleet <= 3; ++fleet) {
        std::vector<std::unique_ptr<TestBackend>> backends;
        std::vector<BackendConfig> configs;
        for (std::size_t i = 0; i < fleet; ++i) {
            backends.push_back(std::make_unique<TestBackend>());
            configs.push_back(backends.back()->config());
        }

        CoordinatorOptions options = coordOptions(configs);
        options.chunkRows = 3; // several chunks even for a small grid
        Coordinator coordinator(options);
        const Json body = coordinator.execute(sweepRequest("mcf"));

        EXPECT_TRUE(body.at("ok").asBool()) << fleet << " backends";
        EXPECT_EQ(body.at("output").asString(), expected)
            << fleet << " backends";
        const DistStats &stats = coordinator.stats();
        EXPECT_GT(stats.chunksDispatched.load(), 0u)
            << fleet << " backends";
        // Every record arrived through federation; the local render was
        // pure cache lookups.
        EXPECT_EQ(stats.recordsMissingAtRender.load(), 0u)
            << fleet << " backends";
        EXPECT_EQ(stats.rowsLocal.load(), 0u) << fleet << " backends";
    }
}

TEST(CoordinatorE2eTest, WarmBackendServesTheSweepWithoutDispatch)
{
    TestBackend backend;

    // Warm the backend's cache by running the sweep there directly.
    serve::Client direct;
    direct.connect("127.0.0.1", backend.config().port);
    Json sweep = Json::object();
    sweep.set("op", Json::string("sweep"));
    sweep.set("bench", Json::string("hmmer"));
    const Json warm = direct.call(sweep);
    ASSERT_TRUE(warm.at("ok").asBool());

    CoordinatorOptions options = coordOptions({backend.config()});
    Coordinator coordinator(options);
    const Json body = coordinator.execute(sweepRequest("hmmer"));

    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), warm.at("output").asString());
    const DistStats &stats = coordinator.stats();
    // cache_pull federation satisfied every key — nothing was simulated
    // anywhere, on either side.
    EXPECT_EQ(stats.chunksDispatched.load(), 0u);
    EXPECT_GT(stats.recordsPulled.load(), 0u);
    EXPECT_EQ(stats.recordsMissingAtRender.load(), 0u);
}

TEST(CoordinatorE2eTest, BackendKilledMidSweepFailsOverByteIdentically)
{
    TestBackend survivor;
    auto victim = std::make_unique<TestBackend>();
    const auto victimStats = [&] {
        return victim->server().stats().requestsReceived.load();
    };

    CoordinatorOptions options =
        coordOptions({survivor.config(), victim->config()});
    options.chunkRows = 1;      // many chunks: the kill lands mid-sweep
    options.maxDispatch = 10;   // post-kill failures must not exhaust a
                                // chunk's dispatch budget
    options.stealAfterMs = 200; // reclaim the victim's chunks fast
    Coordinator coordinator(options);

    std::thread runner;
    Json body;
    runner = std::thread([&] {
        body = coordinator.execute(sweepRequest("mcf"));
    });
    // Let the victim take real work (2 probe requests, then chunks),
    // then kill it while the sweep is in flight.
    while (victimStats() < 3)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    victim->stop();
    runner.join();

    StudyEngine reference(fastStudy());
    const std::string expected =
        serve::sweepText(reference, sweepRequest("mcf").sweep);
    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
    const DistStats &stats = coordinator.stats();
    // The survivor (plus, before the kill, the victim) delivered every
    // record; nothing fell back to local simulation.
    EXPECT_EQ(stats.recordsMissingAtRender.load(), 0u);
    EXPECT_EQ(stats.rowsLocal.load(), 0u);
}

TEST(CoordinatorE2eTest, UnreachableBackendIsProbedOutNotFatal)
{
    TestBackend backend;
    // A port with no listener: the probe fails fast (bounded connect),
    // the sweep proceeds on the live backend alone.
    CoordinatorOptions options =
        coordOptions({{"127.0.0.1", 1}, backend.config()});
    Coordinator coordinator(options);
    const Json body = coordinator.execute(sweepRequest("sjeng"));

    StudyEngine reference(fastStudy());
    EXPECT_EQ(body.at("output").asString(),
              serve::sweepText(reference, sweepRequest("sjeng").sweep));
    EXPECT_EQ(coordinator.stats().recordsMissingAtRender.load(), 0u);
    EXPECT_GE(coordinator.pool().at(0).failures(), 1u);
}

TEST(CoordinatorE2eTest, EmptyFleetComputesLocallyByteIdentically)
{
    CoordinatorOptions options = coordOptions({});
    Coordinator coordinator(options);
    const Json body = coordinator.execute(sweepRequest("libquantum"));

    StudyEngine reference(fastStudy());
    EXPECT_EQ(
        body.at("output").asString(),
        serve::sweepText(reference, sweepRequest("libquantum").sweep));
    EXPECT_EQ(coordinator.stats().chunksDispatched.load(), 0u);
}

TEST(CoordinatorE2eTest, RunAndIsolatedForwardRoundRobinWithFailover)
{
    TestBackend backend;
    // Backend 0 is dead: the round-robin must fail over to backend 1
    // (or probe 0 out) and still return the canonical rendering.
    CoordinatorOptions options =
        coordOptions({{"127.0.0.1", 1}, backend.config()});
    Coordinator coordinator(options);

    Json runDoc = Json::object();
    runDoc.set("op", Json::string("run"));
    Json workload = Json::array();
    workload.push(Json::string("mcf"));
    workload.push(Json::string("tonto"));
    runDoc.set("workload", std::move(workload));
    runDoc.set("report", Json::string("csv-threads"));
    const serve::Request runReq = serve::parseRequest(runDoc);

    StudyEngine reference(fastStudy());
    const Json runBody = coordinator.execute(runReq);
    EXPECT_TRUE(runBody.at("ok").asBool());
    EXPECT_FALSE(runBody.has("id")); // backend id echo must be stripped
    EXPECT_EQ(runBody.at("output").asString(),
              serve::runText(reference, runReq.run));

    Json isoDoc = Json::object();
    isoDoc.set("op", Json::string("isolated"));
    Json benches = Json::array();
    benches.push(Json::string("astar"));
    isoDoc.set("benches", std::move(benches));
    const serve::Request isoReq = serve::parseRequest(isoDoc);
    const Json isoBody = coordinator.execute(isoReq);
    EXPECT_EQ(isoBody.at("output").asString(),
              serve::isolatedText(reference, isoReq.isolated));

    EXPECT_EQ(coordinator.stats().forwarded.load(), 2u);
    EXPECT_EQ(coordinator.stats().forwardLocal.load(), 0u);
}

serve::Request
scheduleRequest()
{
    Json doc = Json::object();
    doc.set("op", Json::string("schedule"));
    doc.set("design", Json::string("3B5s"));
    Json benchmarks = Json::array();
    benchmarks.push(Json::string("mcf"));
    benchmarks.push(Json::string("hmmer"));
    benchmarks.push(Json::string("lbm"));
    benchmarks.push(Json::string("h264ref"));
    doc.set("benchmarks", std::move(benchmarks));
    doc.set("policy", Json::string("pairing"));
    return serve::parseRequest(doc);
}

TEST(CoordinatorE2eTest, ScheduleForwardsWithFailoverByteIdentically)
{
    TestBackend backend;
    // Backend 0 is dead: schedule must fail over like run/isolated and
    // still return the single-node rendering byte for byte.
    CoordinatorOptions options =
        coordOptions({{"127.0.0.1", 1}, backend.config()});
    Coordinator coordinator(options);

    const serve::Request req = scheduleRequest();
    StudyEngine reference(fastStudy());
    const std::string expected =
        serve::scheduleText(reference, req.schedule);

    const Json body = coordinator.execute(req);
    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
    EXPECT_EQ(coordinator.stats().forwarded.load(), 1u);
    EXPECT_EQ(coordinator.stats().forwardLocal.load(), 0u);

    // The backend memoises the decision: a repeat is answered from its
    // response cache, still byte-identical.
    const Json again = coordinator.execute(scheduleRequest());
    EXPECT_EQ(again.at("output").asString(), expected);
    EXPECT_GT(backend.server().stats().cacheHits.load(), 0u);
}

TEST(CoordinatorE2eTest, ScheduleFallsBackToLocalOnDeadFleet)
{
    CoordinatorOptions options = coordOptions({{"127.0.0.1", 1}});
    options.pool.quarantineAfter = 1;
    Coordinator coordinator(options);

    const serve::Request req = scheduleRequest();
    StudyEngine reference(fastStudy());
    const Json body = coordinator.execute(req);
    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(),
              serve::scheduleText(reference, req.schedule));
    EXPECT_EQ(coordinator.stats().forwarded.load(), 0u);
    EXPECT_EQ(coordinator.stats().forwardLocal.load(), 1u);
}

TEST(CoordinatorE2eTest, DeadFleetForwardsFallBackToLocalRendering)
{
    CoordinatorOptions options = coordOptions({{"127.0.0.1", 1}});
    options.pool.quarantineAfter = 1;
    Coordinator coordinator(options);

    Json doc = Json::object();
    doc.set("op", Json::string("run"));
    Json workload = Json::array();
    workload.push(Json::string("hmmer"));
    doc.set("workload", std::move(workload));
    const serve::Request req = serve::parseRequest(doc);

    StudyEngine reference(fastStudy());
    const Json body = coordinator.execute(req);
    EXPECT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(),
              serve::runText(reference, req.run));
    EXPECT_EQ(coordinator.stats().forwarded.load(), 0u);
    EXPECT_EQ(coordinator.stats().forwardLocal.load(), 1u);
}

TEST(CoordinatorE2eTest, WireProtocolAndDistMetricsWorkEndToEnd)
{
    TestBackend backend;
    CoordinatorOptions options = coordOptions({backend.config()});
    Coordinator coordinator(options);
    coordinator.bind();
    std::thread runner([&] { coordinator.run(); });

    // An ordinary serve client against the coordinator: same protocol.
    serve::Client client;
    client.connect("127.0.0.1", coordinator.port());
    Json sweep = Json::object();
    sweep.set("op", Json::string("sweep"));
    sweep.set("bench", Json::string("gcc"));
    sweep.set("id", Json::number(std::uint64_t{11}));
    const Json reply = client.call(sweep);
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("id").asU64(), 11u);
    StudyEngine reference(fastStudy());
    EXPECT_EQ(reply.at("output").asString(),
              serve::sweepText(reference, sweepRequest("gcc").sweep));

    // The dist.* spine is visible through the standard metrics op.
    Json metrics = Json::object();
    metrics.set("op", Json::string("metrics"));
    const Json exposed = client.call(metrics);
    ASSERT_TRUE(exposed.at("ok").asBool());
    const std::string &text = exposed.at("exposition").asString();
    EXPECT_NE(text.find("smtflex_dist_sweeps 1"), std::string::npos);
    EXPECT_NE(text.find("smtflex_dist_chunks_dispatched"),
              std::string::npos);
    EXPECT_NE(text.find("smtflex_dist_backend_0_healthy 1"),
              std::string::npos);
    EXPECT_NE(text.find("smtflex_dist_backend_0_latency_us"),
              std::string::npos);

    coordinator.requestStop();
    runner.join();
}

} // namespace
} // namespace dist
} // namespace smtflex
