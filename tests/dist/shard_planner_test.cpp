/**
 * @file
 * ShardPlanner unit tests: deterministic partitioning, exactly-once
 * item accounting under duplicate deliveries (steals), failure requeue
 * with a bounded dispatch budget, and the settled/done distinction an
 * abandoned chunk creates.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/log.h"
#include "dist/shard_planner.h"

namespace smtflex {
namespace dist {
namespace {

constexpr std::chrono::milliseconds kNoSteal{60'000};
constexpr std::chrono::milliseconds kStealNow{0};

TEST(ShardPlannerTest, PartitionsItemsIntoContiguousChunks)
{
    ShardPlanner planner(10, 4);
    EXPECT_EQ(planner.chunkCount(), 3u);

    std::vector<std::vector<std::size_t>> claimed;
    while (auto chunk = planner.claim(kNoSteal))
        claimed.push_back(chunk->items);
    ASSERT_EQ(claimed.size(), 3u);
    EXPECT_EQ(claimed[0], (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(claimed[1], (std::vector<std::size_t>{4, 5, 6, 7}));
    EXPECT_EQ(claimed[2], (std::vector<std::size_t>{8, 9}));
    EXPECT_EQ(planner.dispatched(), 3u);
    EXPECT_EQ(planner.stolen(), 0u);
}

TEST(ShardPlannerTest, CompleteMarksItemsExactlyOnce)
{
    ShardPlanner planner(6, 3);
    const auto a = planner.claim(kNoSteal);
    const auto b = planner.claim(kNoSteal);
    ASSERT_TRUE(a && b);

    EXPECT_EQ(planner.complete(a->id).size(), 3u);
    EXPECT_FALSE(planner.done());
    EXPECT_EQ(planner.complete(b->id).size(), 3u);
    EXPECT_TRUE(planner.done());
    EXPECT_TRUE(planner.settled());
    EXPECT_TRUE(planner.remainingItems().empty());
    EXPECT_EQ(planner.duplicateItems(), 0u);
}

TEST(ShardPlannerTest, StealDispatchesInFlightChunkAndDedupsItems)
{
    ShardPlanner planner(4, 4);
    const auto original = planner.claim(kNoSteal);
    ASSERT_TRUE(original);

    // Queue is empty; the in-flight chunk is immediately stale with a
    // zero steal threshold.
    const auto thief = planner.claim(kStealNow);
    ASSERT_TRUE(thief);
    EXPECT_EQ(thief->id, original->id);
    EXPECT_EQ(planner.stolen(), 1u);

    // First delivery wins every item; the twin's delivery is all dupes.
    EXPECT_EQ(planner.complete(original->id).size(), 4u);
    EXPECT_EQ(planner.complete(thief->id).size(), 0u);
    EXPECT_EQ(planner.duplicateItems(), 4u);
    EXPECT_TRUE(planner.done());
}

TEST(ShardPlannerTest, StealRespectsFreshnessAndDispatchBudget)
{
    ShardPlanner planner(2, 2, 2);
    const auto original = planner.claim(kNoSteal);
    ASSERT_TRUE(original);

    // Not stale yet under a long threshold: nothing to claim.
    EXPECT_FALSE(planner.claim(kNoSteal).has_value());

    // Stale under a zero threshold — but only until the dispatch budget
    // (2) is exhausted.
    EXPECT_TRUE(planner.claim(kStealNow).has_value());
    EXPECT_FALSE(planner.claim(kStealNow).has_value());
    EXPECT_EQ(planner.dispatched(), 2u);
}

TEST(ShardPlannerTest, ReleaseRequeuesUntilBudgetThenAbandons)
{
    ShardPlanner planner(3, 3, 2);
    const auto first = planner.claim(kNoSteal);
    ASSERT_TRUE(first);
    planner.release(first->id);
    EXPECT_EQ(planner.requeued(), 1u);
    EXPECT_FALSE(planner.settled());

    // Second (and per the budget, last) dispatch fails too.
    const auto second = planner.claim(kNoSteal);
    ASSERT_TRUE(second);
    EXPECT_EQ(second->id, first->id);
    planner.release(second->id);
    EXPECT_EQ(planner.abandoned(), 1u);

    // Abandoned: the planner settles without the items being done, and
    // reports which ones fell through.
    EXPECT_TRUE(planner.settled());
    EXPECT_FALSE(planner.done());
    EXPECT_EQ(planner.remainingItems(),
              (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ShardPlannerTest, ReleaseAfterTwinCompletionIsANoOp)
{
    ShardPlanner planner(2, 2, 3);
    const auto original = planner.claim(kNoSteal);
    const auto thief = planner.claim(kStealNow);
    ASSERT_TRUE(original && thief);

    // The thief delivers; the original's subsequent failure report must
    // not requeue a chunk that is already done.
    EXPECT_EQ(planner.complete(thief->id).size(), 2u);
    planner.release(original->id);
    EXPECT_EQ(planner.requeued(), 0u);
    EXPECT_TRUE(planner.settled());
    EXPECT_TRUE(planner.done());
}

TEST(ShardPlannerTest, ReleaseWithTwinStillOutstandingKeepsChunkInFlight)
{
    ShardPlanner planner(2, 2, 3);
    const auto original = planner.claim(kNoSteal);
    const auto thief = planner.claim(kStealNow);
    ASSERT_TRUE(original && thief);

    // The original fails while the thief still works: the chunk must
    // stay in flight (not requeue — that would over-dispatch).
    planner.release(original->id);
    EXPECT_EQ(planner.requeued(), 0u);
    EXPECT_FALSE(planner.settled());

    EXPECT_EQ(planner.complete(thief->id).size(), 2u);
    EXPECT_TRUE(planner.done());
}

TEST(ShardPlannerTest, ConcurrentWorkersCompleteEveryItemExactlyOnce)
{
    constexpr std::size_t kItems = 200;
    ShardPlanner planner(kItems, 7, 3);
    std::atomic<std::uint64_t> delivered{0};

    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&] {
            while (!planner.settled()) {
                auto chunk = planner.claim(kStealNow);
                if (!chunk) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                    continue;
                }
                delivered += planner.complete(chunk->id).size();
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    // Steals may double-dispatch, but every item is delivered exactly
    // once across the fleet.
    EXPECT_TRUE(planner.done());
    EXPECT_EQ(delivered.load(), kItems);
    EXPECT_EQ(planner.dispatched(),
              planner.stolen() + (kItems + 6) / 7);
}

TEST(ShardPlannerTest, RejectsZeroChunkSizeAndUnknownChunkIds)
{
    EXPECT_THROW(ShardPlanner(4, 0), FatalError);
    ShardPlanner planner(4, 2);
    EXPECT_THROW(planner.complete(99), FatalError);
    EXPECT_THROW(planner.release(99), FatalError);
}

} // namespace
} // namespace dist
} // namespace smtflex
