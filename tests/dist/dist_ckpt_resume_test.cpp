/**
 * @file
 * Durable coordinator sweeps: with SMTFLEX_CKPT on, every delivered
 * chunk's records are journaled (fsync-per-append) before the planner
 * marks the chunk complete. These tests model the SIGKILL-and-restart
 * cycle in process: a fresh Coordinator pointed at the same checkpoint
 * directory must replay the journal and produce the byte-identical sweep
 * output with zero recompute of delivered chunks — even with no fleet at
 * all — and a coordinator resuming from a partial journal must dispatch
 * only the undelivered remainder.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/journal.h"
#include "ckpt/store.h"
#include "dist/coordinator.h"
#include "serve/commands.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "study/study_engine.h"

namespace smtflex {
namespace dist {
namespace {

using serve::Json;

StudyOptions
fastStudy()
{
    StudyOptions study;
    study.budget = 1'500;
    study.warmup = 300;
    study.seed = 42;
    study.cachePath = "";
    return study;
}

/** One in-process `serve` backend on an ephemeral port. */
class TestBackend
{
  public:
    TestBackend()
    {
        serve::ServerOptions options;
        options.port = 0;
        options.study = fastStudy();
        server_ = std::make_unique<serve::Server>(std::move(options));
        server_->bind();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestBackend() { stop(); }

    void stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    BackendConfig config() const { return {"127.0.0.1", server_->port()}; }

  private:
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

CoordinatorOptions
coordOptions(const std::vector<BackendConfig> &backends)
{
    CoordinatorOptions options;
    options.server.port = 0;
    options.server.study = fastStudy();
    options.backends = backends;
    options.pool.probeTimeoutMs = 500;
    options.pool.connectTimeoutMs = 500;
    options.stealAfterMs = 2'000;
    options.chunkRows = 1; // many chunks, one journal frame per chunk
    return options;
}

serve::Request
sweepRequest(const std::string &bench)
{
    Json doc = Json::object();
    doc.set("op", Json::string("sweep"));
    doc.set("bench", Json::string(bench));
    return serve::parseRequest(doc);
}

class DistCkptResumeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = ::testing::TempDir() + "smtflex_dist_ckpt_resume";
        std::filesystem::remove_all(dir_);
        // A huge snapshot interval: the tiny study runs never cross it,
        // so the test isolates the journal from chip snapshotting.
        ckpt::configureProcess(dir_, 1'000'000'000);
    }

    void TearDown() override
    {
        ckpt::resetProcess();
        std::filesystem::remove_all(dir_);
        std::filesystem::remove_all(dir_ + "2");
    }

    std::string dir_;
};

TEST_F(DistCkptResumeTest, RestartedCoordinatorReplaysAndRecomputesNothing)
{
    // Phase 1: a live 2-backend fleet computes the sweep; every chunk is
    // journaled before completion.
    std::string expected;
    std::uint64_t delivered_chunks = 0;
    {
        TestBackend b0, b1;
        Coordinator first(coordOptions({b0.config(), b1.config()}));
        const Json body = first.execute(sweepRequest("mcf"));
        ASSERT_TRUE(body.at("ok").asBool());
        expected = body.at("output").asString();
        delivered_chunks = first.stats().chunksDispatched.load();
        EXPECT_GT(delivered_chunks, 0u);
        EXPECT_EQ(first.stats().rowsLocal.load(), 0u);
    }
    ASSERT_TRUE(
        std::filesystem::exists(dir_ + "/sweep.journal"));
    EXPECT_GT(ckpt::processStats().journalAppends.load(), 0u);

    // Phase 2: the "restart after SIGKILL" — a brand-new coordinator,
    // empty result cache, NO fleet at all. The journal alone must carry
    // the sweep: byte-identical output, zero chunks dispatched, zero
    // records recomputed locally.
    const auto replayed0 = ckpt::processStats().journalReplayed.load();
    Coordinator resumed(coordOptions({}));
    EXPECT_GT(ckpt::processStats().journalReplayed.load(), replayed0);

    const Json body = resumed.execute(sweepRequest("mcf"));
    ASSERT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
    EXPECT_EQ(resumed.stats().chunksDispatched.load(), 0u);
    EXPECT_EQ(resumed.stats().recordsMissingAtRender.load(), 0u);
    EXPECT_EQ(resumed.stats().rowsLocal.load(), 0u);
}

TEST_F(DistCkptResumeTest, PartialJournalResumesComputingOnlyTheRemainder)
{
    // Phase 1 as above: produce a complete journal.
    std::string expected;
    std::uint64_t full_chunks = 0;
    {
        TestBackend b0;
        Coordinator first(coordOptions({b0.config()}));
        const Json body = first.execute(sweepRequest("milc"));
        ASSERT_TRUE(body.at("ok").asBool());
        expected = body.at("output").asString();
        full_chunks = first.stats().chunksDispatched.load();
        EXPECT_GT(full_chunks, 1u);
    }

    // Model a kill mid-sweep: rebuild the journal in a second checkpoint
    // directory holding only the first half of the delivered records.
    std::vector<ckpt::SweepJournal::Record> records;
    {
        ckpt::SweepJournal full(dir_ + "/sweep.journal",
                                &ckpt::processStats());
        full.replay([&](const ckpt::SweepJournal::Record &r) {
            records.push_back(r);
        });
    }
    ASSERT_GT(records.size(), 3u);
    const std::string dir2 = dir_ + "2";
    std::filesystem::create_directories(dir2);
    {
        ckpt::SweepJournal partial(dir2 + "/sweep.journal",
                                   &ckpt::processStats());
        records.resize(records.size() / 2);
        ASSERT_TRUE(partial.append(records));
    }

    // Phase 2: resume against a COLD backend (nothing to federate). The
    // coordinator must dispatch only the rows the partial journal does
    // not cover, and still render the byte-identical sweep.
    ckpt::configureProcess(dir2, 1'000'000'000);
    TestBackend cold;
    Coordinator resumed(coordOptions({cold.config()}));
    const Json body = resumed.execute(sweepRequest("milc"));
    ASSERT_TRUE(body.at("ok").asBool());
    EXPECT_EQ(body.at("output").asString(), expected);
    EXPECT_GT(resumed.stats().chunksDispatched.load(), 0u);
    EXPECT_LT(resumed.stats().chunksDispatched.load(), full_chunks);
    EXPECT_EQ(resumed.stats().recordsMissingAtRender.load(), 0u);
    EXPECT_EQ(resumed.stats().rowsLocal.load(), 0u);

    // Phase 3: the resumed coordinator journaled what it computed, so a
    // third "restart" — fleet-less — needs no recompute at all.
    Coordinator third(coordOptions({}));
    const Json final_body = third.execute(sweepRequest("milc"));
    ASSERT_TRUE(final_body.at("ok").asBool());
    EXPECT_EQ(final_body.at("output").asString(), expected);
    EXPECT_EQ(third.stats().chunksDispatched.load(), 0u);
    EXPECT_EQ(third.stats().recordsMissingAtRender.load(), 0u);
}

} // namespace
} // namespace dist
} // namespace smtflex
