/**
 * @file
 * Figure 12: per-benchmark PARSEC speedups (normalised to 4 threads on 4B)
 * for 4B, 8m, 20s, 1B6m, 1B15s with SMT enabled — ROI-only and whole
 * program.
 *
 * Expected: 20s optimal for the well-scaling benchmarks (ROI), 4B or a
 * heterogeneous design for the poorly scaling ones and for most whole-
 * program results.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/parsec.h"

using namespace smtflex;

namespace {

const std::vector<std::string> kConfigs = {"4B", "8m", "20s", "1B6m",
                                           "1B15s"};

void
table(StudyEngine &eng, bool roi_only)
{
    std::printf("(%s, SMT enabled)\n", roi_only ? "ROI only"
                                                : "whole program");
    std::printf("%-14s", "benchmark");
    for (const auto &name : kConfigs)
        std::printf("%9s", name.c_str());
    std::printf("%9s\n", "best");
    for (const auto &bench : parsecBenchmarkNames()) {
        const ParsecMetrics base = eng.parsec(paperDesign("4B"), bench, 4);
        const double base_cycles =
            roi_only ? base.roiCycles : base.totalCycles;
        std::printf("%-14s", bench.c_str());
        std::vector<double> scores;
        for (const auto &name : kConfigs) {
            const double cycles =
                eng.bestParsecCycles(paperDesign(name), bench, roi_only);
            scores.push_back(base_cycles / cycles);
            std::printf("%9.3f", scores.back());
        }
        std::printf("%9s\n",
                    kConfigs[benchutil::argmax(scores)].c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 12", "Per-benchmark PARSEC speedups");
    benchutil::printOptions(eng.options());
    table(eng, true);
    table(eng, false);
    return 0;
}
