/**
 * @file
 * Extension: the paper's projection claim. Section 3.2: "we believe our
 * results are general enough to be projected to larger hardware budgets
 * and thread counts (e.g., 8 large cores and up to 48 threads)". This
 * bench doubles the power budget (8B / 16m / 40s / 4B20s) and sweeps up
 * to 48 threads to test exactly that.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/log.h"
#include "study/design_space.h"

using namespace smtflex;

namespace {

ChipConfig
scaled(const std::string &name)
{
    if (name == "8B")
        return ChipConfig::homogeneous("8B", CoreParams::big(), 8);
    if (name == "16m")
        return ChipConfig::homogeneous("16m", CoreParams::medium(), 16);
    if (name == "40s")
        return ChipConfig::homogeneous("40s", CoreParams::small(), 40);
    if (name == "4B20s")
        return ChipConfig::heterogeneous("4B20s", 4, CoreParams::small(),
                                         20);
    fatal("unknown scaled design ", name);
}

} // namespace

int
main()
{
    StudyOptions opts = StudyOptions::fromEnv();
    opts.maxThreads = 48;
    StudyEngine eng(opts);
    benchutil::banner("Extension: 2x budget, 48 threads",
                      "Does the 24-thread story project to 8 big cores / "
                      "48 threads? (paper Section 3.2 claim)");
    benchutil::printOptions(eng.options());

    const std::vector<std::string> designs = {"8B", "16m", "40s", "4B20s"};
    const std::vector<std::uint32_t> counts = {1, 2, 4, 8, 16, 24, 32, 40,
                                               48};
    std::printf("(homogeneous workloads, SMT everywhere, STP)\n");
    std::printf("%-8s", "threads");
    for (const auto &name : designs)
        std::printf("%9s", name.c_str());
    std::printf("\n");
    for (const std::uint32_t n : counts) {
        std::printf("%-8u", n);
        for (const auto &name : designs) {
            const ChipConfig cfg = scaled(name);
            if (n > cfg.totalContexts()) {
                std::printf("%9s", "-");
                continue;
            }
            std::printf("%9.3f", eng.homogeneousAt(cfg, n).stp);
        }
        std::printf("\n");
    }

    const double v8b_low = eng.homogeneousAt(scaled("8B"), 4).stp;
    const double v40s_low = eng.homogeneousAt(scaled("40s"), 4).stp;
    const double v8b_high = eng.homogeneousAt(scaled("8B"), 48).stp;
    const double v40s_high = eng.homogeneousAt(scaled("40s"), 48).stp;
    std::printf("\nat 4 threads:  8B/40s = %.2f (big cores dominate)\n",
                v8b_low / v40s_low);
    std::printf("at 48 threads: 8B/40s = %.2f (many-core closes or "
                "leads)\n", v8b_high / v40s_high);
    std::printf("\nExpected: the same shape as the 24-thread study — big "
                "SMT cores far ahead at low counts, competitive at full "
                "occupancy — confirming the projection claim.\n");
    return 0;
}
