/**
 * @file
 * Figure 15: power versus performance and normalised energy versus
 * performance for the nine designs under the uniform thread-count
 * distribution (heterogeneous workloads, SMT everywhere, power gating).
 *
 * Paper Finding #9: the Pareto frontier is populated by heterogeneous
 * designs plus 4B (performance end) and 20s (low-power end); the minimum-
 * EDP design (3B5s) improves EDP by only a few percent over 4B.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/metrics.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 15",
                      "Power and energy vs performance (uniform "
                      "distribution, power gating)");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);

    struct Point
    {
        std::string name;
        double stp, power, energy, edp;
    };

    for (const bool het : {true, false}) {
        std::printf("(%s workloads)\n", het ? "heterogeneous"
                                            : "homogeneous");
        std::vector<Point> points;
        for (const auto &name : paperDesignNames()) {
            const ChipConfig cfg = paperDesign(name);
            const double stp = eng.distributionStp(cfg, dist, het);
            const double power = eng.distributionPower(cfg, dist, het);
            points.push_back({name, stp, power, power / stp,
                              energyDelayProduct(power, stp)});
        }

        std::printf("%-8s %12s %10s %16s %12s\n", "design", "throughput",
                    "power(W)", "energy/work", "EDP");
        for (const auto &p : points)
            std::printf("%-8s %12.3f %10.1f %16.2f %12.2f\n",
                        p.name.c_str(), p.stp, p.power, p.energy, p.edp);

        // Pareto frontier on (performance up, power down).
        std::printf("\nPareto-optimal (power vs performance): ");
        for (const auto &p : points) {
            bool dominated = false;
            for (const auto &q : points)
                dominated |= q.stp > p.stp && q.power < p.power;
            if (!dominated)
                std::printf("%s ", p.name.c_str());
        }
        std::printf("\n");

        std::size_t best_edp = 0;
        for (std::size_t i = 1; i < points.size(); ++i)
            if (points[i].edp < points[best_edp].edp)
                best_edp = i;
        double edp_4b = 0.0;
        for (const auto &p : points)
            if (p.name == "4B")
                edp_4b = p.edp;
        std::printf("Minimum-EDP design: %s, improving EDP by %.1f%% over "
                    "4B (paper: 3B5s, %.1f%%)\n\n",
                    points[best_edp].name.c_str(),
                    100.0 * (edp_4b - points[best_edp].edp) / edp_4b,
                    het ? 1.8 : 4.1);
    }
    return 0;
}
