/**
 * @file
 * Table 1: the big / medium / small core configurations, plus validation of
 * the power-equivalence assumptions of Section 3.1.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "power/power_model.h"
#include "study/design_space.h"

using namespace smtflex;

int
main()
{
    benchutil::banner("Table 1", "Big, medium and small core configurations"
                                 " + power equivalence check");

    const CoreParams types[] = {CoreParams::big(), CoreParams::medium(),
                                CoreParams::small()};

    std::printf("%-18s %12s %12s %12s\n", "", "Big", "Medium", "Small");
    auto row = [&](const char *name, auto getter) {
        std::printf("%-18s", name);
        for (const auto &t : types)
            std::printf(" %12s", getter(t).c_str());
        std::printf("\n");
    };
    auto kb = [](std::uint64_t bytes) {
        return std::to_string(bytes / 1024) + "KB";
    };
    row("Frequency", [](const CoreParams &t) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fGHz", t.freqGHz);
        return std::string(buf);
    });
    row("Type", [](const CoreParams &t) {
        return std::string(t.outOfOrder ? "Out-of-Order" : "In-Order");
    });
    row("Width", [](const CoreParams &t) { return std::to_string(t.width); });
    row("ROB size", [](const CoreParams &t) {
        return t.outOfOrder ? std::to_string(t.robSize) : std::string("N/A");
    });
    row("Int units", [](const CoreParams &t) {
        return std::to_string(t.intUnits);
    });
    row("Ld/st units", [](const CoreParams &t) {
        return std::to_string(t.ldstUnits);
    });
    row("SMT contexts", [](const CoreParams &t) {
        return "up to " + std::to_string(t.maxSmtContexts);
    });
    row("L1 I-cache", [&](const CoreParams &t) { return kb(t.l1i.sizeBytes); });
    row("L1 D-cache", [&](const CoreParams &t) { return kb(t.l1d.sizeBytes); });
    row("L2 cache", [&](const CoreParams &t) { return kb(t.l2.sizeBytes); });
    std::printf("%-18s %12s\n", "Last-level cache", "8MB, 16-way (shared)");
    std::printf("%-18s %12s\n", "Interconnect", "full crossbar");
    std::printf("%-18s %12s\n", "DRAM", "8 banks, 45ns");
    std::printf("%-18s %12s\n\n", "Off-chip bus", "8GB/s");

    // Power-equivalence validation (paper: 1B ~ 2m ~ 5s; chips 46-50 W).
    PowerModel power;
    std::printf("Full-load core power: B=%.2fW m=%.2fW s=%.2fW\n",
                power.coreFullLoadW(types[0]),
                power.coreFullLoadW(types[1]),
                power.coreFullLoadW(types[2]));
    std::printf("Power equivalence: 1B = %.2f m = %.2f s (paper: ~1.8m, "
                "~4.4-5s)\n",
                power.coreFullLoadW(types[0]) / power.coreFullLoadW(types[1]),
                power.coreFullLoadW(types[0]) / power.coreFullLoadW(types[2]));
    std::printf("\nChip full-load power (+%.1fW uncore):\n",
                power.uncoreStaticW());
    for (const auto &cfg : paperDesigns()) {
        double total = power.uncoreStaticW();
        for (const auto &core : cfg.cores)
            total += power.coreFullLoadW(core);
        std::printf("  %-6s %5.1f W  (%u cores, %u thread contexts)\n",
                    cfg.name.c_str(), total, cfg.numCores(),
                    cfg.totalContexts());
    }
    std::printf("\nPaper anchor: 4B=46W, 8m=50W, 20s=45W at 24 threads.\n");
    return 0;
}
