/**
 * @file
 * Ablation: next-line data prefetching. The paper's configuration does not
 * specify a data prefetcher; this bench quantifies what one would change —
 * streaming benchmarks gain at low thread counts, but at high thread
 * counts prefetch traffic competes for the 8 GB/s bus that is already the
 * bottleneck.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

using namespace smtflex;

namespace {

double
aggregateIpc(bool prefetch, const std::string &bench, std::uint32_t threads)
{
    ChipConfig cfg = paperDesign("4B");
    for (auto &core : cfg.cores)
        core.dataPrefetch = prefetch;
    const auto workload = homogeneousWorkload(bench, threads);
    const auto specs = workload.specs(12'000, 3'000);
    const Placement pl = scheduleNaive(cfg, specs.size());
    ChipSim chip(cfg);
    return chip.runMultiProgram(specs, pl, 42).aggregateIpc();
}

} // namespace

int
main()
{
    benchutil::banner("Ablation: next-line data prefetch",
                      "4B design, homogeneous workloads, prefetch on/off");

    std::printf("%-12s %-8s %10s %10s %8s\n", "benchmark", "threads",
                "off", "on", "delta");
    for (const char *bench : {"libquantum", "lbm", "milc", "hmmer", "mcf"}) {
        for (std::uint32_t t : {1u, 4u, 16u}) {
            const double off = aggregateIpc(false, bench, t);
            const double on = aggregateIpc(true, bench, t);
            std::printf("%-12s %-8u %10.3f %10.3f %+7.1f%%\n", bench, t,
                        off, on, 100.0 * (on / off - 1.0));
        }
    }
    std::printf("\nExpected: streaming codes gain strongly when the bus "
                "has headroom; gains shrink (or invert) once the bus "
                "saturates; random-access codes see little change.\n");
    return 0;
}
