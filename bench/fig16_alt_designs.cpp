/**
 * @file
 * Figure 16: alternative medium/small-core designs for the multi-threaded
 * benchmarks (ROI only, SMT enabled): 6m_lc and 16s_lc enlarge the private
 * caches to the big core's (power-equivalence becomes 1:1.5/1:4), 6m_hf and
 * 16s_hf raise the clock to 3.33 GHz.
 *
 * Paper Finding #10: larger caches or higher frequency help the small-core
 * configuration but hurt the medium one; 4B with SMT stays near-optimal.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "study/design_space.h"
#include "workload/parsec.h"

using namespace smtflex;

namespace {

double
avgRoiSpeedup(StudyEngine &eng, const ChipConfig &cfg)
{
    std::vector<double> speedups;
    for (const auto &bench : parsecBenchmarkNames()) {
        const ParsecMetrics base = eng.parsec(paperDesign("4B"), bench, 4);
        speedups.push_back(base.roiCycles /
                           eng.bestParsecCycles(cfg, bench, true));
    }
    return harmonicMean(speedups);
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 16",
                      "Large-cache / high-frequency variants, PARSEC ROI "
                      "speedups (normalised to 4 threads on 4B)");
    benchutil::printOptions(eng.options());

    const std::vector<std::string> baselines = {"4B", "8m", "20s"};
    std::printf("baselines:\n");
    double v8m = 0, v20s = 0;
    const auto base_scores =
        benchutil::mapNames(baselines, [&](const auto &name) {
            return avgRoiSpeedup(eng, paperDesign(name));
        });
    for (std::size_t i = 0; i < baselines.size(); ++i) {
        if (baselines[i] == "8m")
            v8m = base_scores[i];
        if (baselines[i] == "20s")
            v20s = base_scores[i];
        std::printf("  %-7s %8.3f\n", baselines[i].c_str(), base_scores[i]);
    }
    std::printf("variants:\n");
    double m_lc = 0, s_lc = 0, m_hf = 0, s_hf = 0;
    const auto var_scores =
        benchutil::mapNames(alternativeDesignNames(), [&](const auto &name) {
            return avgRoiSpeedup(eng, alternativeDesign(name));
        });
    for (std::size_t i = 0; i < alternativeDesignNames().size(); ++i) {
        const auto &name = alternativeDesignNames()[i];
        const double s = var_scores[i];
        if (name == "6m_lc")
            m_lc = s;
        if (name == "16s_lc")
            s_lc = s;
        if (name == "6m_hf")
            m_hf = s;
        if (name == "16s_hf")
            s_hf = s;
        std::printf("  %-7s %8.3f\n", name.c_str(), s);
    }

    std::printf("\nsmall-core variants vs 20s: lc %+.1f%%, hf %+.1f%% "
                "(paper: both help, hf more)\n",
                100.0 * (s_lc / v20s - 1.0), 100.0 * (s_hf / v20s - 1.0));
    std::printf("medium-core variants vs 8m: lc %+.1f%%, hf %+.1f%% "
                "(paper: both hurt — fewer cores not compensated)\n",
                100.0 * (m_lc / v8m - 1.0), 100.0 * (m_hf / v8m - 1.0));
    return 0;
}
