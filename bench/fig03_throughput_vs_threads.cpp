/**
 * @file
 * Figure 3: normalised throughput (STP) of the nine multi-core designs as a
 * function of active thread count (1..24), SMT enabled everywhere —
 * (a) homogeneous and (b) heterogeneous multi-program workloads.
 *
 * Expected shape: 4B is best at low thread counts and only slightly below
 * the many-small-core designs at high counts.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"

using namespace smtflex;

namespace {

void
sweep(StudyEngine &eng, bool heterogeneous)
{
    const auto &names = paperDesignNames();
    std::printf("(%s workloads)\n", heterogeneous ? "heterogeneous"
                                                  : "homogeneous");
    std::printf("%-8s", "threads");
    for (const auto &name : names)
        std::printf("%9s", name.c_str());
    std::printf("\n");
    // Flatten the (thread count x design) grid into independent runs.
    const auto counts = eng.sweepThreadCounts();
    exec::ExperimentRunner runner;
    const auto grid = runner.map(counts.size() * names.size(),
                                 [&](std::size_t i) {
        const std::uint32_t n = counts[i / names.size()];
        const ChipConfig cfg = paperDesign(names[i % names.size()]);
        return heterogeneous ? eng.heterogeneousAt(cfg, n).stp
                             : eng.homogeneousAt(cfg, n).stp;
    });
    for (std::size_t r = 0; r < counts.size(); ++r) {
        std::printf("%-8u", counts[r]);
        for (std::size_t c = 0; c < names.size(); ++c)
            std::printf("%9.3f", grid[r * names.size() + c]);
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 3", "STP vs thread count, nine designs, SMT "
                                  "in all cores");
    benchutil::printOptions(eng.options());
    sweep(eng, false);
    sweep(eng, true);

    // Headline comparison at 24 threads (paper: 4B within ~11.6% of the
    // best for homogeneous, ~7.1% for heterogeneous workloads).
    for (const bool het : {false, true}) {
        double best = 0.0;
        std::string best_name;
        double v4b = 0.0;
        for (const auto &name : paperDesignNames()) {
            const double stp = het
                ? eng.heterogeneousAt(paperDesign(name), 24).stp
                : eng.homogeneousAt(paperDesign(name), 24).stp;
            if (stp > best) {
                best = stp;
                best_name = name;
            }
            if (name == "4B")
                v4b = stp;
        }
        std::printf("24 threads, %s: best=%s (%.3f), 4B=%.3f (%.1f%% below "
                    "best)\n",
                    het ? "heterogeneous" : "homogeneous",
                    best_name.c_str(), best, v4b,
                    100.0 * (best - v4b) / best);
    }
    return 0;
}
