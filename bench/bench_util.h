/**
 * @file
 * Shared helpers for the figure-regeneration benches: consistent headers,
 * table formatting, and the study engine construction. Every bench binary
 * prints the rows/series of one paper table or figure; results are memoised
 * in the shared disk cache (smtflex_cache.txt by default), so the first
 * bench to run a sweep pays for it and the rest replay it.
 */

#ifndef SMTFLEX_BENCH_BENCH_UTIL_H
#define SMTFLEX_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "exec/experiment_runner.h"
#include "study/study_engine.h"

namespace smtflex {
namespace benchutil {

/**
 * Evaluate fn(name) for every design/benchmark name through the experiment
 * engine (SMTFLEX_JOBS workers; results land in name order regardless of
 * the worker count, so tables print identically for any job count).
 */
template <typename Fn>
auto
mapNames(const std::vector<std::string> &names, Fn &&fn)
{
    exec::ExperimentRunner runner;
    return runner.mapItems(names, std::forward<Fn>(fn));
}

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("smtflex | %s\n", experiment.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================================\n");
}

/** Print study parameters so output is self-describing. */
inline void
printOptions(const StudyOptions &opts)
{
    std::printf("budget=%llu warmup=%llu seed=%llu mixes=%u bw=%.0fGB/s "
                "cache=%s\n\n",
                static_cast<unsigned long long>(opts.budget),
                static_cast<unsigned long long>(opts.warmup),
                static_cast<unsigned long long>(opts.seed), opts.hetMixes,
                opts.bandwidthGBps,
                opts.cachePath.empty() ? "(none)" : opts.cachePath.c_str());
}

/** Print a table: first column label + one column per series. */
inline void
printSeriesTable(const std::string &row_label,
                 const std::vector<std::string> &series,
                 const std::vector<std::string> &row_names,
                 const std::vector<std::vector<double>> &values,
                 const char *fmt = "%10.3f")
{
    std::printf("%-14s", row_label.c_str());
    for (const auto &s : series)
        std::printf("%10s", s.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < row_names.size(); ++r) {
        std::printf("%-14s", row_names[r].c_str());
        for (std::size_t c = 0; c < series.size(); ++c)
            std::printf(fmt, values[r][c]);
        std::printf("\n");
    }
    std::printf("\n");
}

/** Index of the maximum element. */
inline std::size_t
argmax(const std::vector<double> &v)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i)
        if (v[i] > v[best])
            best = i;
    return best;
}

} // namespace benchutil
} // namespace smtflex

#endif // SMTFLEX_BENCH_BENCH_UTIL_H
