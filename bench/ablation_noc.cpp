/**
 * @file
 * Ablation: the paper's full-crossbar assumption. Section 3.1 argues for a
 * crossbar so that on-chip network contention does not skew results
 * against many-core configurations. This bench swaps in a 2D mesh and
 * measures exactly that skew: the 20-core design pays more hops to its
 * distributed LLC banks than the 4-core design does.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

using namespace smtflex;

namespace {

double
aggregateIpc(const std::string &design, bool mesh, const std::string &bench,
             std::uint32_t threads)
{
    ChipConfig cfg = paperDesign(design);
    cfg.useMesh = mesh;
    const auto workload = homogeneousWorkload(bench, threads);
    const auto specs = workload.specs(12'000, 3'000);
    const Placement pl = scheduleNaive(cfg, specs.size());
    ChipSim chip(cfg);
    return chip.runMultiProgram(specs, pl, 42).aggregateIpc();
}

} // namespace

int
main()
{
    benchutil::banner("Ablation: crossbar vs 2D mesh",
                      "Does the interconnect choice skew the design "
                      "comparison? (paper Section 3.1 rationale)");

    std::printf("%-8s %-12s %-8s %10s %10s %10s\n", "design", "benchmark",
                "threads", "crossbar", "mesh", "penalty");
    for (const char *design : {"4B", "20s"}) {
        for (const char *bench : {"soplex", "milc"}) {
            const std::uint32_t threads = design[0] == '4' ? 4 : 20;
            const double xbar = aggregateIpc(design, false, bench, threads);
            const double mesh = aggregateIpc(design, true, bench, threads);
            std::printf("%-8s %-12s %-8u %10.3f %10.3f %9.1f%%\n", design,
                        bench, threads, xbar, mesh,
                        100.0 * (1.0 - mesh / xbar));
        }
    }
    std::printf("\nExpected: the mesh penalises the 20-core design more "
                "than the 4-core one (bigger grid, more hops) — exactly "
                "the bias the paper's crossbar choice avoids.\n");
    return 0;
}
