/**
 * @file
 * Extension: seed robustness. The study's workloads are synthetic and
 * seeded; the conclusions must not hinge on one random stream. This bench
 * re-measures the headline comparisons under three different seeds.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "study/design_space.h"

using namespace smtflex;

int
main()
{
    benchutil::banner("Extension: seed robustness",
                      "Headline comparisons under three seeds");

    std::printf("%-10s %-8s %10s %10s %10s %14s\n", "seed", "threads",
                "4B", "20s", "2B10s", "low-count win");
    for (const std::uint64_t seed : {12'345ull, 777ull, 31'415ull}) {
        StudyOptions opts = StudyOptions::fromEnv();
        opts.seed = seed;
        StudyEngine eng(opts);
        for (const std::uint32_t n : {2u, 24u}) {
            const double v4b = eng.homogeneousAt(paperDesign("4B"), n).stp;
            const double v20s =
                eng.homogeneousAt(paperDesign("20s"), n).stp;
            const double v2b10s =
                eng.homogeneousAt(paperDesign("2B10s"), n).stp;
            // At 2 threads a heterogeneous design with >= 2 big cores is
            // identical to 4B (each thread owns a big core), so ties
            // count as a 4B-class win.
            const bool low_ok = v4b > v20s && v4b >= v2b10s - 1e-9;
            std::printf("%-10llu %-8u %10.3f %10.3f %10.3f %14s\n",
                        static_cast<unsigned long long>(seed), n, v4b,
                        v20s, v2b10s,
                        n == 2 ? (low_ok ? "4B (ok)" : "NOT 4B")
                               : (v20s > v4b || v2b10s > v4b
                                      ? "many-core (ok)"
                                      : "4B"));
        }
    }
    std::printf("\nExpected: every seed reproduces the same structure — "
                "4B dominant at 2 threads, the many-core designs level or "
                "ahead at 24.\n");
    return 0;
}
