/**
 * @file
 * Figure 7: average STP under the uniform thread-count distribution with
 * SMT enabled in the HOMOGENEOUS designs (4B, 8m, 20s) only; heterogeneous
 * designs run without SMT.
 *
 * Paper Finding #3: 4B with SMT outperforms every heterogeneous design
 * without SMT — SMT beats heterogeneity as the means to cope with varying
 * thread counts.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 7", "Uniform distribution, SMT only in the "
                                  "homogeneous designs");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    const std::vector<std::string> homogeneous = {"4B", "8m", "20s"};

    for (const bool het : {false, true}) {
        std::printf("(%s workloads)\n", het ? "heterogeneous"
                                            : "homogeneous");
        const std::vector<double> scores =
            benchutil::mapNames(paperDesignNames(), [&](const auto &name) {
                const bool smt = std::find(homogeneous.begin(),
                                           homogeneous.end(),
                                           name) != homogeneous.end();
                return eng.distributionStp(paperDesign(name).withSmt(smt),
                                           dist, het);
            });
        for (std::size_t i = 0; i < scores.size(); ++i) {
            const auto &name = paperDesignNames()[i];
            const bool smt = std::find(homogeneous.begin(),
                                       homogeneous.end(),
                                       name) != homogeneous.end();
            std::printf("  %-6s %8.3f%s\n", name.c_str(), scores[i],
                        smt ? "  (SMT)" : "");
        }
        const std::size_t best = benchutil::argmax(scores);
        std::printf("  best: %s (paper: 4B)\n\n",
                    paperDesignNames()[best].c_str());
    }
    return 0;
}
