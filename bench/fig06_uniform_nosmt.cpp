/**
 * @file
 * Figure 6: average STP under a uniform active-thread-count distribution
 * (1..24), with SMT disabled in every design (extra threads time-share).
 *
 * Paper Finding #2: without SMT, heterogeneous designs win (2B4m for
 * homogeneous workloads, 3B5s for heterogeneous workloads).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 6",
                      "Uniform thread-count distribution, no SMT anywhere");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const bool het : {false, true}) {
        std::printf("(%s workloads)\n", het ? "heterogeneous"
                                            : "homogeneous");
        const std::vector<double> scores =
            benchutil::mapNames(paperDesignNames(), [&](const auto &name) {
                return eng.distributionStp(paperDesign(name).withSmt(false),
                                           dist, het);
            });
        for (std::size_t i = 0; i < scores.size(); ++i)
            std::printf("  %-6s %8.3f\n", paperDesignNames()[i].c_str(),
                        scores[i]);
        const std::size_t best = benchutil::argmax(scores);
        std::printf("  best without SMT: %s (paper: %s)\n\n",
                    paperDesignNames()[best].c_str(),
                    het ? "3B5s" : "2B4m");
    }
    return 0;
}
