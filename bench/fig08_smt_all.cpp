/**
 * @file
 * Figure 8: average STP under the uniform thread-count distribution with
 * SMT enabled in ALL designs.
 *
 * Paper Findings #4 and #5: the added benefit of combining heterogeneity
 * and SMT is limited (best heterogeneous within ~0.6% of 4B), and the
 * optimal heterogeneous design shifts towards fewer, larger cores (3B2m).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 8",
                      "Uniform distribution, SMT in all designs");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const bool het : {false, true}) {
        std::printf("(%s workloads)\n", het ? "heterogeneous"
                                            : "homogeneous");
        std::vector<double> scores;
        double v4b = 0.0;
        for (const auto &name : paperDesignNames()) {
            const double stp =
                eng.distributionStp(paperDesign(name), dist, het);
            scores.push_back(stp);
            if (name == "4B")
                v4b = stp;
            std::printf("  %-6s %8.3f\n", name.c_str(), stp);
        }
        const std::size_t best = benchutil::argmax(scores);
        std::printf("  best: %s; 4B at %.1f%% of best (paper: best "
                    "heterogeneous ~0.5-0.6%% from 4B)\n\n",
                    paperDesignNames()[best].c_str(),
                    100.0 * v4b / scores[best]);
    }
    return 0;
}
