/**
 * @file
 * Figure 8: average STP under the uniform thread-count distribution with
 * SMT enabled in ALL designs.
 *
 * Paper Findings #4 and #5: the added benefit of combining heterogeneity
 * and SMT is limited (best heterogeneous within ~0.6% of 4B), and the
 * optimal heterogeneous design shifts towards fewer, larger cores (3B2m).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 8",
                      "Uniform distribution, SMT in all designs");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const bool het : {false, true}) {
        std::printf("(%s workloads)\n", het ? "heterogeneous"
                                            : "homogeneous");
        // The nine designs are independent sweeps: fan them out across the
        // experiment engine and print once all have landed.
        const std::vector<double> scores =
            benchutil::mapNames(paperDesignNames(), [&](const auto &name) {
                return eng.distributionStp(paperDesign(name), dist, het);
            });
        double v4b = 0.0;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (paperDesignNames()[i] == "4B")
                v4b = scores[i];
            std::printf("  %-6s %8.3f\n", paperDesignNames()[i].c_str(),
                        scores[i]);
        }
        const std::size_t best = benchutil::argmax(scores);
        std::printf("  best: %s; 4B at %.1f%% of best (paper: best "
                    "heterogeneous ~0.5-0.6%% from 4B)\n\n",
                    paperDesignNames()[best].c_str(),
                    100.0 * v4b / scores[best]);
    }
    return 0;
}
