/**
 * @file
 * Figure 11: average normalised speedup over all PARSEC benchmarks for
 * 4B, 8m, 20s, 1B6m, 1B15s — ROI-only and whole-program, with and without
 * SMT. Speedups are normalised to the 4-threaded execution on 4B and the
 * paper reports the best speedup across thread counts.
 *
 * Paper Finding #7: ROI-only without SMT -> 8m best; adding SMT brings 4B
 * close. Whole-program -> 4B best both with and without SMT.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "study/design_space.h"
#include "workload/parsec.h"

using namespace smtflex;

namespace {

const std::vector<std::string> kConfigs = {"4B", "8m", "20s", "1B6m",
                                           "1B15s"};

double
avgSpeedup(StudyEngine &eng, const std::string &config_name, bool smt,
           bool roi_only)
{
    std::vector<double> speedups;
    for (const auto &bench : parsecBenchmarkNames()) {
        // Baseline: 4 threads on 4B (with SMT enabled; 4 threads use one
        // context per core either way).
        const ParsecMetrics base = eng.parsec(paperDesign("4B"), bench, 4);
        const double base_cycles =
            roi_only ? base.roiCycles : base.totalCycles;
        const ChipConfig cfg = paperDesign(config_name).withSmt(smt);
        const double cycles = eng.bestParsecCycles(cfg, bench, roi_only);
        speedups.push_back(base_cycles / cycles);
    }
    return harmonicMean(speedups);
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 11",
                      "PARSEC mean normalised speedup (vs 4 threads on "
                      "4B), best thread count per design");
    benchutil::printOptions(eng.options());

    for (const bool roi_only : {true, false}) {
        std::printf("(%s)\n", roi_only ? "ROI only" : "whole program");
        for (const bool smt : {false, true}) {
            std::printf("  %s SMT:\n", smt ? "with" : "without");
            std::vector<double> scores;
            for (const auto &name : kConfigs) {
                scores.push_back(avgSpeedup(eng, name, smt, roi_only));
                std::printf("    %-6s %8.3f\n", name.c_str(),
                            scores.back());
            }
            std::printf("    best: %s\n",
                        kConfigs[benchutil::argmax(scores)].c_str());
        }
        std::printf("\n");
    }
    std::printf("Paper: ROI w/o SMT best=8m; ROI w/ SMT 4B close to 8m; "
                "whole program best=4B in both modes.\n");
    return 0;
}
