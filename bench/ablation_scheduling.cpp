/**
 * @file
 * Ablation (beyond the paper's figures, supporting Finding #1's
 * "intelligent scheduling" claim): offline symbiosis-aware scheduling vs
 * naive in-order placement, on heterogeneous designs and on SMT
 * co-scheduling.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/metrics.h"
#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "study/design_space.h"

using namespace smtflex;

namespace {

double
stpWith(StudyEngine &eng, const ChipConfig &cfg,
        const MultiProgramWorkload &workload, bool offline_sched)
{
    const auto specs =
        workload.specs(eng.options().budget, eng.options().warmup);
    const Placement placement = offline_sched
        ? scheduleOffline(cfg, specs, const_cast<StudyEngine &>(eng).offline())
        : scheduleNaive(cfg, specs.size());
    ChipSim chip(eng.configured(cfg));
    const SimResult result =
        chip.runMultiProgram(specs, placement, eng.options().seed);
    std::vector<double> isolated;
    for (const auto &spec : specs)
        isolated.push_back(eng.isolatedIpc(spec.profile->name,
                                           CoreType::kBig));
    return systemThroughput(result, isolated);
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Ablation: scheduling",
                      "Offline (symbiosis-aware) vs naive placement");
    benchutil::printOptions(eng.options());

    std::printf("%-8s %-10s %10s %10s %10s\n", "design", "threads",
                "naive", "offline", "gain");
    for (const char *design : {"3B5s", "1B15s", "2B10s", "4B"}) {
        for (std::uint32_t n : {4u, 8u, 16u}) {
            double naive_sum = 0.0, offline_sum = 0.0;
            const auto mixes =
                heterogeneousWorkloads(n, eng.options().hetMixes,
                                       eng.options().seed);
            // A few mixes suffice for the ablation.
            const std::size_t count = 4;
            for (std::size_t m = 0; m < count; ++m) {
                naive_sum +=
                    stpWith(eng, paperDesign(design), mixes[m], false);
                offline_sum +=
                    stpWith(eng, paperDesign(design), mixes[m], true);
            }
            std::printf("%-8s %-10u %10.3f %10.3f %9.1f%%\n", design, n,
                        naive_sum / count, offline_sum / count,
                        100.0 * (offline_sum / naive_sum - 1.0));
        }
    }
    std::printf(
        "\nReading the result: at low thread counts the offline schedule "
        "wins (the right programs reach the big cores). At high counts it "
        "can LOSE to naive placement: the isolated-run table routes all "
        "memory-bound programs onto small cores, where — under full-chip "
        "bus contention the offline analysis cannot see — they collapse. "
        "The paper acknowledges exactly this blind spot ('this approach "
        "ignores the impact of resource sharing among cores'); its "
        "exhaustive search over co-schedules would avoid it.\n");
    return 0;
}
