/**
 * @file
 * Figure 4: STP vs thread count of the nine designs for two representative
 * homogeneous workloads — (a) tonto (compute-bound: heterogeneous designs
 * pull ahead at high counts) and (b) libquantum (bandwidth-bound: shared
 * memory contention flattens all designs).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"

using namespace smtflex;

namespace {

void
perBenchmark(StudyEngine &eng, const std::string &bench)
{
    std::printf("(%s, homogeneous multi-program)\n", bench.c_str());
    std::printf("%-8s", "threads");
    for (const auto &name : paperDesignNames())
        std::printf("%9s", name.c_str());
    std::printf("\n");
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        std::printf("%-8u", n);
        for (const auto &name : paperDesignNames()) {
            std::printf("%9.3f",
                        eng.homogeneousBenchmarkAt(paperDesign(name), bench,
                                                   n).stp);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 4",
                      "Per-benchmark STP vs thread count: tonto (compute) "
                      "and libquantum (bandwidth-bound)");
    benchutil::printOptions(eng.options());

    perBenchmark(eng, "tonto");
    perBenchmark(eng, "libquantum");

    // The paper's diagnostic: for libquantum, memory access time at 24
    // threads is ~4x the isolated latency; the configurations converge.
    const double lq_4b_24 =
        eng.homogeneousBenchmarkAt(paperDesign("4B"), "libquantum", 24).stp;
    const double lq_20s_24 =
        eng.homogeneousBenchmarkAt(paperDesign("20s"), "libquantum", 24).stp;
    std::printf("libquantum @24 threads: 4B=%.3f vs 20s=%.3f (ratio %.2f; "
                "paper: near parity)\n",
                lq_4b_24, lq_20s_24, lq_4b_24 / lq_20s_24);
    const double to_4b_24 =
        eng.homogeneousBenchmarkAt(paperDesign("4B"), "tonto", 24).stp;
    const double to_20s_24 =
        eng.homogeneousBenchmarkAt(paperDesign("20s"), "tonto", 24).stp;
    std::printf("tonto      @24 threads: 4B=%.3f vs 20s=%.3f (ratio %.2f; "
                "paper: 4B clearly below)\n",
                to_4b_24, to_20s_24, to_4b_24 / to_20s_24);
    return 0;
}
