/**
 * @file
 * Figure 9: per-benchmark average STP under the uniform thread-count
 * distribution, SMT enabled in all designs (homogeneous workloads).
 *
 * Expected: calculix/h264ref/hmmer/tonto favour heterogeneous designs;
 * bandwidth-bound libquantum/mcf favour (or tie with) 4B.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 9",
                      "Per-benchmark STP, uniform distribution, SMT "
                      "everywhere");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    std::printf("%-12s", "benchmark");
    for (const auto &name : paperDesignNames())
        std::printf("%9s", name.c_str());
    std::printf("%10s\n", "best");

    for (const auto &bench : specBenchmarkNames()) {
        std::printf("%-12s", bench.c_str());
        std::vector<double> scores;
        for (const auto &name : paperDesignNames()) {
            // Weighted harmonic mean of per-thread-count STP (sampled at
            // the sweep's thread counts).
            std::vector<double> stp, w;
            for (std::size_t n = 1; n <= dist.size(); ++n) {
                stp.push_back(eng.homogeneousBenchmarkAt(
                    paperDesign(name), bench,
                    eng.nearestSweepCount(
                        static_cast<std::uint32_t>(n))).stp);
                w.push_back(dist.probability(n));
            }
            scores.push_back(weightedHarmonicMean(stp, w));
            std::printf("%9.3f", scores.back());
        }
        std::printf("%10s\n",
                    paperDesignNames()[benchutil::argmax(scores)].c_str());
    }
    return 0;
}
