/**
 * @file
 * Figure 10: (a) the datacenter active-thread distribution (Barroso &
 * Holzle adapted to 24 threads) and (b) average STP under the datacenter
 * and mirrored-datacenter distributions, heterogeneous workload mixes,
 * with and without SMT.
 *
 * Paper Finding #6: datacenter (skewed to few threads) -> 1B6m best
 * without SMT, 4B best with SMT. Mirrored -> 1B15s best without SMT; with
 * SMT 3B2m edges out 4B by ~0.6%.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 10", "Datacenter thread-count distributions");
    benchutil::printOptions(eng.options());

    const auto dc = datacenterThreadCounts(eng.options().maxThreads);
    const auto mirrored = dc.mirrored();

    std::printf("(a) datacenter distribution\n");
    std::printf("%-8s %12s %12s\n", "threads", "datacenter", "mirrored");
    for (std::size_t n = 1; n <= dc.size(); ++n)
        std::printf("%-8zu %12.4f %12.4f\n", n, dc.probability(n),
                    mirrored.probability(n));
    std::printf("\n(b) average STP, heterogeneous workload mixes\n");

    struct Scenario
    {
        const char *label;
        const DiscreteDistribution *dist;
        bool smt;
        const char *paper_best;
    };
    const Scenario scenarios[] = {
        {"datacenter, no SMT", &dc, false, "1B6m"},
        {"datacenter, SMT", &dc, true, "4B"},
        {"mirrored, no SMT", &mirrored, false, "1B15s"},
        {"mirrored, SMT", &mirrored, true, "3B2m (4B within 0.6%)"},
    };
    for (const auto &s : scenarios) {
        std::printf("%s:\n", s.label);
        std::vector<double> scores;
        for (const auto &name : paperDesignNames()) {
            const ChipConfig cfg = paperDesign(name).withSmt(s.smt);
            scores.push_back(eng.distributionStp(cfg, *s.dist, true));
            std::printf("  %-6s %8.3f\n", name.c_str(), scores.back());
        }
        std::printf("  best: %s (paper: %s)\n\n",
                    paperDesignNames()[benchutil::argmax(scores)].c_str(),
                    s.paper_best);
    }
    return 0;
}
