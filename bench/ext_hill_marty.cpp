/**
 * @file
 * Extension: the Hill & Marty analytical comparison the paper argues
 * against (Section 6 / Section 9). Under Amdahl assumptions (software is
 * either serial or infinitely parallel, no SMT), asymmetric beats
 * symmetric and dynamic beats both. The paper's empirical point is that
 * with *varying active thread counts* and SMT, a symmetric chip of big
 * SMT cores closes the gap. This bench prints the analytical curves next
 * to the measured simulation results so the contrast is explicit.
 */

#include <cstdio>

#include "analytic/hill_marty.h"
#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/distributions.h"

using namespace smtflex;

int
main()
{
    benchutil::banner("Extension: Hill & Marty vs measurement",
                      "Analytical Amdahl-law design space vs the simulated "
                      "one");

    // Analytical side: budget 20 BCEs (one small core = 1 BCE; the paper's
    // big core is ~5 BCEs worth of power), sqrt performance.
    std::printf("(a) Hill-Marty speedups, n = 20 BCEs\n");
    std::printf("%-8s %12s %12s %12s\n", "f", "symmetric", "asymmetric",
                "dynamic");
    for (const double f : {0.5, 0.8, 0.9, 0.95, 0.99}) {
        HillMartyParams p;
        p.budgetBce = 20.0;
        p.parallelFraction = f;
        std::printf("%-8.2f %12.2f %12.2f %12.2f\n", f,
                    bestSymmetricSpeedup(p), bestAsymmetricSpeedup(p),
                    bestDynamicSpeedup(p));
    }
    std::printf("\nAnalytically: asymmetric >= symmetric and dynamic >= "
                "asymmetric for every f (Hill & Marty).\n\n");

    // Empirical side: the same three paradigms under VARYING thread counts
    // with SMT (the paper's setting).
    StudyEngine eng;
    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    const double sym_4b = eng.distributionStp(paperDesign("4B"), dist, true);
    double best_het = 0.0;
    std::string best_het_name;
    for (const char *name : {"3B2m", "3B5s", "2B4m", "2B10s", "1B6m",
                             "1B15s"}) {
        const double s = eng.distributionStp(paperDesign(name), dist, true);
        if (s > best_het) {
            best_het = s;
            best_het_name = name;
        }
    }
    // Ideal dynamic: best design at each thread count.
    std::vector<double> dyn, w;
    for (std::size_t n = 1; n <= dist.size(); ++n) {
        double best = 0.0;
        for (const auto &name : paperDesignNames()) {
            best = std::max(best,
                            eng.heterogeneousAt(
                                paperDesign(name),
                                eng.nearestSweepCount(
                                    static_cast<std::uint32_t>(n))).stp);
        }
        dyn.push_back(best);
        w.push_back(dist.probability(n));
    }
    const double dynamic = weightedHarmonicMean(dyn, w);

    std::printf("(b) measured (uniform thread-count distribution, SMT, "
                "heterogeneous workloads)\n");
    std::printf("  symmetric 4B (SMT):       %7.3f\n", sym_4b);
    std::printf("  best asymmetric (%s):   %7.3f\n", best_het_name.c_str(),
                best_het);
    std::printf("  ideal dynamic:            %7.3f\n", dynamic);
    std::printf(
        "\nPaper's point: analytically the asymmetric design beats the "
        "symmetric one by construction (%.1fx at f=0.9 above); measured "
        "under varying thread counts with SMT, the symmetric big-SMT chip "
        "recovers to %.0f%% of the best asymmetric design and %.0f%% of "
        "the ideal dynamic one — most of the analytical gap evaporates "
        "once thread counts vary and SMT provides the flexibility.\n",
        [&] {
            HillMartyParams p;
            p.budgetBce = 20.0;
            p.parallelFraction = 0.9;
            return bestAsymmetricSpeedup(p) / bestSymmetricSpeedup(p);
        }(),
        100.0 * sym_4b / best_het, 100.0 * sym_4b / dynamic);
    return 0;
}
