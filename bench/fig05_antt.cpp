/**
 * @file
 * Figure 5: average normalised turnaround time (ANTT, lower is better) of
 * the nine designs as a function of thread count, homogeneous workloads.
 *
 * Expected shape: 4B lowest at low thread counts (every thread gets a big
 * core); the many-small-core designs start high but grow more slowly.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 5",
                      "ANTT vs thread count, homogeneous workloads");
    benchutil::printOptions(eng.options());

    std::printf("%-8s", "threads");
    for (const auto &name : paperDesignNames())
        std::printf("%9s", name.c_str());
    std::printf("\n");
    for (const std::uint32_t n : eng.sweepThreadCounts()) {
        std::printf("%-8u", n);
        for (const auto &name : paperDesignNames())
            std::printf("%9.2f",
                        eng.homogeneousAt(paperDesign(name), n).antt);
        std::printf("\n");
    }

    std::printf("\nChecks: at 1 thread 4B has the lowest ANTT; ANTT grows "
                "with thread count for every design.\n");
    double antt1_4b = eng.homogeneousAt(paperDesign("4B"), 1).antt;
    bool lowest = true;
    for (const auto &name : paperDesignNames())
        lowest &= antt1_4b <= eng.homogeneousAt(paperDesign(name), 1).antt;
    std::printf("4B lowest ANTT at 1 thread: %s\n", lowest ? "yes" : "NO");
    return 0;
}
