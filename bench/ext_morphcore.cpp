/**
 * @file
 * Extension: MorphCore vs big-SMT (paper Section 9). Khubaib et al.
 * propose a core that morphs between out-of-order and many-threaded
 * in-order operation; the paper argues a conventional big SMT core
 * already provides most of that flexibility. This bench runs one core of
 * each kind across thread counts and compares throughput directly.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "sim/chip_sim.h"
#include "sim/shared_memory.h"
#include "trace/spec_profiles.h"
#include "uarch/morph_core.h"
#include "uarch/ooo_core.h"

using namespace smtflex;

namespace {

/** Aggregate retired ops of `threads` copies of `bench` on one core. */
std::uint64_t
runCore(Core &core, const std::string &bench, std::uint32_t threads,
        Cycle cycles)
{
    std::vector<std::unique_ptr<SimThread>> sims;
    for (std::uint32_t i = 0; i < threads; ++i) {
        sims.push_back(std::make_unique<SimThread>(
            specProfile(bench), 42, i, InstrCount{1} << 40, true));
        core.attachThread(i, sims.back().get());
    }
    for (Cycle c = 1; c <= cycles; ++c)
        core.tick(c);
    return core.stats().retired;
}

} // namespace

int
main()
{
    benchutil::banner("Extension: MorphCore vs big SMT core",
                      "One core, 1..8 threads: OoO+SMT vs morphing to "
                      "in-order SMT");

    const ChipConfig shared_cfg =
        ChipConfig::homogeneous("1B", CoreParams::big(), 1);
    CoreParams personality = CoreParams::big();
    personality.maxSmtContexts = 8;

    std::printf("%-12s %-8s %12s %12s %10s\n", "benchmark", "threads",
                "big SMT", "MorphCore", "delta");
    for (const char *bench : {"hmmer", "mcf", "gobmk"}) {
        for (std::uint32_t t : {1u, 2u, 4u, 8u}) {
            SharedMemory mem_a(shared_cfg);
            OooCore smt(personality, 0, 8, &mem_a, 2.66);
            const auto base = runCore(smt, bench, t, 60'000);

            SharedMemory mem_b(shared_cfg);
            MorphCore morph(personality, MorphParams{}, 0, 8, &mem_b,
                            2.66);
            const auto morphed = runCore(morph, bench, t, 60'000);

            std::printf("%-12s %-8u %12llu %12llu %+9.1f%%  %s\n", bench,
                        t, static_cast<unsigned long long>(base),
                        static_cast<unsigned long long>(morphed),
                        100.0 * (static_cast<double>(morphed) /
                                     static_cast<double>(base) -
                                 1.0),
                        morph.inOooMode() ? "(stayed OoO)"
                                          : "(morphed in-order)");
        }
    }
    std::printf(
        "\nReading the result: at 1-2 threads the two are identical "
        "(MorphCore runs out-of-order, by construction). At full "
        "occupancy the in-order-SMT mode pulls ahead on latency- and "
        "cache-thrash-bound code: eight 16-entry ROB partitions buy "
        "little once every load misses, while the barrel pipeline issues "
        "the same memory-level parallelism without fighting over "
        "dispatch ports — matching Khubaib et al.'s MICRO'12 claims. "
        "This is the paper's point about complementarity: SMT provides "
        "the thread-count flexibility, and MorphCore-style morphing can "
        "further improve the high-TLP corner of a big SMT core.\n");
    return 0;
}
