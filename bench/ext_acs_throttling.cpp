/**
 * @file
 * Extension experiment (paper Section 9, related-work discussion): the
 * paper suggests that the benefit of Accelerated Critical Sections (ACS,
 * Suleman et al.) — running serialising code on a big core — could be
 * obtained on a homogeneous SMT multi-core by THROTTLING the SMT
 * co-runners of a lock holder, without migrating data between cores.
 *
 * This bench measures exactly that: ROI time of lock-heavy application
 * models on the 4B design at full SMT occupancy, with and without
 * critical-section throttling.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/parsec.h"
#include "workload/parsec_runner.h"

using namespace smtflex;

namespace {

double
roiCycles(const ChipConfig &cfg, const ParsecProfile &app,
          std::uint32_t threads, bool throttle)
{
    ParsecRunner runner(cfg, app, threads, 42, throttle);
    const ParsecRunResult r = runner.run();
    return static_cast<double>(r.roiCycles());
}

} // namespace

int
main()
{
    benchutil::banner("Extension: ACS via SMT throttling",
                      "Critical sections with SMT co-runners paused "
                      "(4B, 24 threads)");

    const ChipConfig cfg = paperDesign("4B");
    std::printf("%-16s %8s %14s %14s %9s\n", "app", "crit%", "baseline",
                "throttled", "gain");

    // The paper's lock-heavy models plus synthetic high-contention twins.
    for (const char *bench : {"dedup", "ferret", "freqmine", "x264"}) {
        for (const double crit : {-1.0, 0.05, 0.12}) {
            ParsecProfile app = parsecProfile(bench);
            if (crit > 0.0) {
                app.name = std::string(bench) + "-hot";
                app.criticalFraction = crit;
            }
            const double base = roiCycles(cfg, app, 24, false);
            const double throttled = roiCycles(cfg, app, 24, true);
            std::printf("%-16s %7.1f%% %14.0f %14.0f %+8.1f%%\n",
                        app.name.c_str(), 100.0 * app.criticalFraction,
                        base, throttled,
                        100.0 * (base / throttled - 1.0));
        }
    }
    std::printf(
        "\nReading the result: gains stay within a couple of percent even "
        "under heavy locking. The reason is instructive: lock WAITERS "
        "already yield their SMT contexts (they are descheduled), so by "
        "the time a critical section is truly contended the holder's core "
        "has naturally shed co-runners — explicit throttling has little "
        "left to reclaim, and pausing still-working neighbours costs as "
        "much as the holder gains. The ACS advantage the paper cites "
        "comes from moving the critical section to a *faster core*; on an "
        "already-big SMT core the headroom is small.\n");
    return 0;
}
