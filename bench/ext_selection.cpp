/**
 * @file
 * Extension: the paper's benchmark-selection methodology (Section 3.2)
 * run over the full modelled suite. The paper characterised all 55 SPEC
 * CPU2006 benchmark-input pairs on the three core types and picked 12
 * covering the relative-performance range; this bench does the same over
 * our 26 modelled benchmarks and compares the procedural pick against the
 * study's hand-selected 12.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "study/selection.h"
#include "trace/spec_profiles.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Extension: benchmark selection",
                      "Characterise the full suite, pick 12 covering the "
                      "relative-performance range");

    auto table = characteriseBenchmarks(eng, specAllBenchmarkNames());
    std::sort(table.begin(), table.end(),
              [](const BenchmarkCharacterisation &a,
                 const BenchmarkCharacterisation &b) {
                  return a.smallOverBig() < b.smallOverBig();
              });

    std::printf("%-12s %8s %8s %8s %10s %10s\n", "benchmark", "B", "m",
                "s", "m/B", "s/B");
    for (const auto &row : table) {
        std::printf("%-12s %8.3f %8.3f %8.3f %10.3f %10.3f\n",
                    row.name.c_str(), row.ipcBig, row.ipcMedium,
                    row.ipcSmall, row.mediumOverBig(), row.smallOverBig());
    }

    const auto picked =
        selectRepresentativeBenchmarks(eng, specAllBenchmarkNames(), 12);
    std::printf("\nprocedural selection (12 of %zu):",
                specAllBenchmarkNames().size());
    for (const auto &name : picked)
        std::printf(" %s", name.c_str());

    std::printf("\nstudy's selected set:              ");
    int overlap = 0;
    for (const auto &name : specBenchmarkNames()) {
        std::printf(" %s", name.c_str());
        overlap += std::count(picked.begin(), picked.end(), name) > 0;
    }
    std::printf("\noverlap: %d of 12 — the hand-picked study set should "
                "cover the same range the procedure finds.\n", overlap);
    return 0;
}
