/**
 * @file
 * Figure 1: distribution of the number of active threads for the PARSEC
 * benchmarks on a twenty-core processor (20s design, 20 threads).
 *
 * The paper's headline statistics: ~20 active threads only about half the
 * time; 4 or fewer threads active ~31% of the time.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"
#include "workload/parsec.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 1",
                      "Active-thread distribution, PARSEC on 20 cores");
    benchutil::printOptions(eng.options());

    const ChipConfig cfg = paperDesign("20s");
    const std::vector<std::pair<const char *, std::pair<int, int>>> buckets =
        {{"1 thread", {1, 1}},      {"2 threads", {2, 2}},
         {"3 threads", {3, 3}},     {"4 threads", {4, 4}},
         {"5 threads", {5, 5}},     {"6-10 threads", {6, 10}},
         {"11-15 threads", {11, 15}}, {"16-19 threads", {16, 19}},
         {"20 threads", {20, 999}}};

    std::printf("%-14s", "benchmark");
    for (const auto &[label, range] : buckets)
        std::printf("%14s", label);
    std::printf("\n");

    double avg20 = 0.0, avg_le4 = 0.0;
    for (const auto &bench : parsecBenchmarkNames()) {
        const ParsecMetrics m = eng.parsec(cfg, bench, 20);
        std::printf("%-14s", bench.c_str());
        const auto &frac = m.roiActiveThreadFractions;
        for (const auto &[label, range] : buckets) {
            double p = 0.0;
            for (int k = range.first;
                 k <= range.second &&
                 k < static_cast<int>(frac.size());
                 ++k)
                p += frac[static_cast<std::size_t>(k)];
            std::printf("%14.3f", p);
        }
        std::printf("\n");
        for (std::size_t k = 20; k < frac.size(); ++k)
            avg20 += frac[k];
        for (std::size_t k = 0; k <= 4 && k < frac.size(); ++k)
            avg_le4 += frac[k];
    }
    const double n = static_cast<double>(parsecBenchmarkNames().size());
    std::printf("\nAverage fraction of ROI time at 20 active threads: %.2f"
                "  (paper: ~0.50)\n", avg20 / n);
    std::printf("Average fraction of ROI time at <=4 active threads: %.2f"
                "  (paper: ~0.31)\n", avg_le4 / n);
    return 0;
}
