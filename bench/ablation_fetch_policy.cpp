/**
 * @file
 * Ablation: SMT fetch policy. The paper's SMT cores use round-robin fetch
 * with static ROB partitioning (Raasch & Reinhardt); ICOUNT (Tullsen et
 * al.) prioritises the least-occupying thread. This bench compares core
 * throughput under both policies at 2/4/6 SMT threads for a latency-bound
 * and a compute-bound workload on one big core.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "sim/chip_sim.h"
#include "trace/spec_profiles.h"

using namespace smtflex;

namespace {

double
aggregateIpc(FetchPolicy policy, const std::string &bench,
             std::uint32_t threads)
{
    CoreParams core = CoreParams::big();
    core.fetchPolicy = policy;
    ChipConfig cfg = ChipConfig::homogeneous("1B", core, 1);
    ChipSim chip(cfg);
    Placement pl;
    std::vector<ThreadSpec> specs;
    for (std::uint32_t i = 0; i < threads; ++i) {
        pl.entries.push_back({0, i});
        specs.push_back({&specProfile(bench), 12'000, 4'000});
    }
    return chip.runMultiProgram(specs, pl, 42).aggregateIpc();
}

} // namespace

int
main()
{
    benchutil::banner("Ablation: SMT fetch policy",
                      "Round-robin (paper) vs ICOUNT on one big core");

    std::printf("%-12s %-8s %14s %10s %8s\n", "benchmark", "threads",
                "round-robin", "icount", "delta");
    for (const char *bench : {"mcf", "hmmer", "gobmk", "milc"}) {
        for (std::uint32_t t : {2u, 4u, 6u}) {
            const double rr =
                aggregateIpc(FetchPolicy::kRoundRobin, bench, t);
            const double ic = aggregateIpc(FetchPolicy::kIcount, bench, t);
            std::printf("%-12s %-8u %14.3f %10.3f %+7.1f%%\n", bench, t,
                        rr, ic, 100.0 * (ic / rr - 1.0));
        }
    }
    std::printf("\nExpected: ICOUNT helps most when threads differ in "
                "memory behaviour; with identical co-runners the policies "
                "are close (which supports the paper's simple RR choice).\n");
    return 0;
}
