/**
 * @file
 * Figure 13: the 4B design with SMT versus an IDEAL dynamic multi-core
 * that morphs, with zero overhead, into the best of the nine
 * configurations at every thread count — with and without SMT.
 *
 * Paper Finding #8: 4B with SMT matches or beats the dynamic multi-core
 * without SMT; the dynamic multi-core with SMT is best but most complex.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"

using namespace smtflex;

namespace {

double
dynamicBest(StudyEngine &eng, std::uint32_t n, bool het, bool smt)
{
    double best = 0.0;
    for (const auto &name : paperDesignNames()) {
        const ChipConfig cfg = paperDesign(name).withSmt(smt);
        const double stp = het ? eng.heterogeneousAt(cfg, n).stp
                               : eng.homogeneousAt(cfg, n).stp;
        best = std::max(best, stp);
    }
    return best;
}

} // namespace

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 13",
                      "4B+SMT vs ideal (zero-overhead) dynamic multi-core");
    benchutil::printOptions(eng.options());

    for (const bool het : {false, true}) {
        std::printf("(%s workloads)\n", het ? "heterogeneous"
                                            : "homogeneous");
        std::printf("%-8s %12s %14s %14s\n", "threads", "4B (SMT)",
                    "dynamic w/o SMT", "dynamic w/ SMT");
        for (const std::uint32_t n : eng.sweepThreadCounts()) {
            const double v4b = het
                ? eng.heterogeneousAt(paperDesign("4B"), n).stp
                : eng.homogeneousAt(paperDesign("4B"), n).stp;
            std::printf("%-8u %12.3f %14.3f %14.3f\n", n, v4b,
                        dynamicBest(eng, n, het, false),
                        dynamicBest(eng, n, het, true));
        }
        std::printf("\n");
    }
    std::printf("Paper: the 4B(SMT) curve rises smoothly and matches the "
                "no-SMT dynamic core; dynamic+SMT is the (complex) upper "
                "bound.\n");
    return 0;
}
