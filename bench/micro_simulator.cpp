/**
 * @file
 * google-benchmark micro-benchmarks of the simulator components themselves:
 * trace generation, cache access, DRAM scheduling, and whole-chip
 * simulation throughput. These guard the simulator's own performance (a
 * design-space sweep runs thousands of chip-seconds).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "dram/dram.h"
#include "sim/chip_sim.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "trace/tracegen.h"

using namespace smtflex;

namespace {

void
BM_TraceGeneration(benchmark::State &state)
{
    TraceGenerator gen(specProfile("soplex"), 1, 0,
                       AddressSpace::forThread(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.next());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache("bench", {static_cast<std::uint64_t>(state.range(0)),
                                  8});
    Rng rng(7);
    const std::uint64_t lines = 4 * cache.geometry().numLines();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextRange(lines) * kLineSize, false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(32 * 1024)->Arg(8 * 1024 * 1024);

void
BM_DramSchedule(benchmark::State &state)
{
    DramModel dram(DramConfig{});
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        now += 30;
        addr += kLineSize;
        benchmark::DoNotOptimize(dram.read(now, addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramSchedule);

void
BM_ChipSimCycles(benchmark::State &state)
{
    // Simulated cycles per wall second on a fully loaded design.
    const ChipConfig cfg = paperDesign("4B");
    ChipSim chip(cfg);
    std::vector<SimThread> threads;
    threads.reserve(24);
    for (std::uint32_t i = 0; i < 24; ++i)
        threads.emplace_back(specProfile("hmmer"), 1, i,
                             InstrCount{1} << 40, true);
    for (std::uint32_t i = 0; i < 24; ++i)
        chip.attach(i % 4, i / 4, &threads[i]);
    for (auto _ : state)
        chip.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["instr_per_cycle"] = benchmark::Counter(
        static_cast<double>(chip.collectResult().cores[0].stats.retired));
}
BENCHMARK(BM_ChipSimCycles);

void
BM_ChipSim20sCycles(benchmark::State &state)
{
    const ChipConfig cfg = paperDesign("20s");
    ChipSim chip(cfg);
    std::vector<SimThread> threads;
    threads.reserve(20);
    for (std::uint32_t i = 0; i < 20; ++i)
        threads.emplace_back(specProfile("milc"), 1, i,
                             InstrCount{1} << 40, true);
    for (std::uint32_t i = 0; i < 20; ++i)
        chip.attach(i, 0, &threads[i]);
    for (auto _ : state)
        chip.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChipSim20sCycles);

/**
 * Simulated cycles per wall second on the memory-bound design the
 * event-driven fast-forward targets: mcf on the 20-small-core in-order
 * chip spends most of its time with every context stalled on a DRAM
 * fill, so nearly every cycle is skippable. The strict variant pins the
 * fast-forward off to measure the baseline on the same run() path; their
 * items/sec ratio is the fast-forward speedup tracked in BENCH_sim.json.
 */
void
runChipSimMcf20s(benchmark::State &state, bool fast_forward,
                 Cycle sampling_interval = 0)
{
    const ChipConfig cfg = paperDesign("20s");
    ChipSim chip(cfg);
    std::vector<SimThread> threads;
    threads.reserve(20);
    for (std::uint32_t i = 0; i < 20; ++i)
        threads.emplace_back(specProfile("mcf"), 1, i,
                             InstrCount{1} << 40, true);
    for (std::uint32_t i = 0; i < 20; ++i)
        chip.attach(i, 0, &threads[i]);
    chip.setFastForward(fast_forward);
    if (sampling_interval != 0)
        chip.enableSampling(sampling_interval, 4096);
    constexpr Cycle kChunk = 4096;
    for (auto _ : state)
        chip.run(kChunk);
    state.SetItemsProcessed(state.iterations() * kChunk);
    state.counters["ff_cycles"] = benchmark::Counter(
        static_cast<double>(chip.fastForwardedCycles()));
    state.counters["ff_spans"] = benchmark::Counter(
        static_cast<double>(chip.fastForwardSpans()));
}

void
BM_ChipSimFastForwardMcf20s(benchmark::State &state)
{
    runChipSimMcf20s(state, true);
}
// Pinned iteration counts make both variants simulate the exact same
// global-cycle window — from cycle 0, like every study-engine run — so
// their items/sec ratio (the fast-forward speedup) is deterministic and
// free of program-phase sampling bias.
BENCHMARK(BM_ChipSimFastForwardMcf20s)->Iterations(256);

void
BM_ChipSimStrictMcf20s(benchmark::State &state)
{
    runChipSimMcf20s(state, false);
}
BENCHMARK(BM_ChipSimStrictMcf20s)->Iterations(256);

/**
 * The telemetry-overhead guard: the same fast-forward run with the metric
 * registry fully attached AND interval sampling on (one chip.ipc +
 * chip.active_threads point per 10k cycles, fast-forward jumps clamped to
 * sample boundaries). The registry itself holds pointer views, so the
 * only admissible cost is the sampling branch — this variant's items/sec
 * must stay within noise of BM_ChipSimFastForwardMcf20s (same pinned
 * iterations, compared per run in BENCH_sim.json).
 */
void
BM_ChipSimSampledMcf20s(benchmark::State &state)
{
    runChipSimMcf20s(state, true, 10'000);
}
BENCHMARK(BM_ChipSimSampledMcf20s)->Iterations(256);

} // namespace

BENCHMARK_MAIN();
