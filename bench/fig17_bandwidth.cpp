/**
 * @file
 * Figure 17: the headline comparisons repeated with doubled memory
 * bandwidth (16 GB/s): uniform-distribution STP for the nine designs
 * (homogeneous and heterogeneous workloads) and PARSEC average speedups.
 *
 * Paper Finding #11: all configurations gain a little; 4B stays within a
 * percent or two of the optimum.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "study/design_space.h"
#include "workload/distributions.h"
#include "workload/parsec.h"

using namespace smtflex;

int
main()
{
    StudyOptions opts = StudyOptions::fromEnv();
    opts.bandwidthGBps = 16.0;
    StudyEngine eng(opts);
    benchutil::banner("Figure 17", "16 GB/s memory bandwidth variant");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const bool het : {false, true}) {
        std::printf("(multi-program, %s workloads, SMT everywhere)\n",
                    het ? "heterogeneous" : "homogeneous");
        std::vector<double> scores;
        double v4b = 0.0;
        for (const auto &name : paperDesignNames()) {
            const double stp =
                eng.distributionStp(paperDesign(name), dist, het);
            scores.push_back(stp);
            if (name == "4B")
                v4b = stp;
            std::printf("  %-6s %8.3f\n", name.c_str(), stp);
        }
        const std::size_t best = benchutil::argmax(scores);
        std::printf("  best: %s; 4B at %.1f%% of best (paper: within "
                    "~0.4-0.8%%)\n\n",
                    paperDesignNames()[best].c_str(),
                    100.0 * v4b / scores[best]);
    }

    // PARSEC ROI-only and whole-program at 16 GB/s.
    for (const bool roi : {true, false}) {
        std::printf("(PARSEC, %s, SMT)\n", roi ? "ROI only"
                                               : "whole program");
        std::vector<double> scores;
        const std::vector<std::string> configs = {"4B", "8m", "20s",
                                                  "1B6m", "1B15s"};
        for (const auto &name : configs) {
            std::vector<double> speedups;
            for (const auto &bench : parsecBenchmarkNames()) {
                const ParsecMetrics base =
                    eng.parsec(paperDesign("4B"), bench, 4);
                const double base_cycles =
                    roi ? base.roiCycles : base.totalCycles;
                speedups.push_back(base_cycles /
                                   eng.bestParsecCycles(paperDesign(name),
                                                        bench, roi));
            }
            scores.push_back(harmonicMean(speedups));
            std::printf("  %-6s %8.3f\n", name.c_str(), scores.back());
        }
        std::printf("  best: %s\n\n",
                    configs[benchutil::argmax(scores)].c_str());
    }
    return 0;
}
