/**
 * @file
 * Figure 17: the headline comparisons repeated with doubled memory
 * bandwidth (16 GB/s): uniform-distribution STP for the nine designs
 * (homogeneous and heterogeneous workloads) and PARSEC average speedups.
 *
 * Paper Finding #11: all configurations gain a little; 4B stays within a
 * percent or two of the optimum.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "study/design_space.h"
#include "workload/distributions.h"
#include "workload/parsec.h"

using namespace smtflex;

int
main()
{
    StudyOptions opts = StudyOptions::fromEnv();
    opts.bandwidthGBps = 16.0;
    StudyEngine eng(opts);
    benchutil::banner("Figure 17", "16 GB/s memory bandwidth variant");
    benchutil::printOptions(eng.options());

    const auto dist = uniformThreadCounts(eng.options().maxThreads);
    for (const bool het : {false, true}) {
        std::printf("(multi-program, %s workloads, SMT everywhere)\n",
                    het ? "heterogeneous" : "homogeneous");
        const std::vector<double> scores =
            benchutil::mapNames(paperDesignNames(), [&](const auto &name) {
                return eng.distributionStp(paperDesign(name), dist, het);
            });
        double v4b = 0.0;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (paperDesignNames()[i] == "4B")
                v4b = scores[i];
            std::printf("  %-6s %8.3f\n", paperDesignNames()[i].c_str(),
                        scores[i]);
        }
        const std::size_t best = benchutil::argmax(scores);
        std::printf("  best: %s; 4B at %.1f%% of best (paper: within "
                    "~0.4-0.8%%)\n\n",
                    paperDesignNames()[best].c_str(),
                    100.0 * v4b / scores[best]);
    }

    // PARSEC ROI-only and whole-program at 16 GB/s.
    for (const bool roi : {true, false}) {
        std::printf("(PARSEC, %s, SMT)\n", roi ? "ROI only"
                                               : "whole program");
        const std::vector<std::string> configs = {"4B", "8m", "20s",
                                                  "1B6m", "1B15s"};
        const std::vector<double> scores =
            benchutil::mapNames(configs, [&](const auto &name) {
                std::vector<double> speedups;
                for (const auto &bench : parsecBenchmarkNames()) {
                    const ParsecMetrics base =
                        eng.parsec(paperDesign("4B"), bench, 4);
                    const double base_cycles =
                        roi ? base.roiCycles : base.totalCycles;
                    speedups.push_back(
                        base_cycles /
                        eng.bestParsecCycles(paperDesign(name), bench, roi));
                }
                return harmonicMean(speedups);
            });
        for (std::size_t i = 0; i < scores.size(); ++i)
            std::printf("  %-6s %8.3f\n", configs[i].c_str(), scores[i]);
        std::printf("  best: %s\n\n",
                    configs[benchutil::argmax(scores)].c_str());
    }
    return 0;
}
