/**
 * @file
 * Figure 14: average chip power of the nine designs as a function of
 * thread count with power gating of idle cores (homogeneous workloads, SMT
 * enabled everywhere).
 *
 * Expected shape: 4B consumes the most at low counts (big cores on),
 * 20s the least; all designs converge at high counts; waking a core costs
 * more than activating another SMT context on an already-running core.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "study/design_space.h"

using namespace smtflex;

int
main()
{
    StudyEngine eng;
    benchutil::banner("Figure 14",
                      "Chip power vs thread count (idle cores power gated)");
    benchutil::printOptions(eng.options());

    std::printf("%-8s", "threads");
    for (const auto &name : paperDesignNames())
        std::printf("%9s", name.c_str());
    std::printf("\n");
    // The whole (thread count x design) grid is independent runs: flatten
    // it through the experiment engine, then print in row order.
    const auto counts = eng.sweepThreadCounts();
    const auto &names = paperDesignNames();
    exec::ExperimentRunner runner;
    const auto grid = runner.map(counts.size() * names.size(),
                                 [&](std::size_t i) {
        const std::uint32_t n = counts[i / names.size()];
        const auto &name = names[i % names.size()];
        return eng.homogeneousAt(paperDesign(name), n).powerGatedW;
    });
    for (std::size_t r = 0; r < counts.size(); ++r) {
        std::printf("%-8u", counts[r]);
        for (std::size_t c = 0; c < names.size(); ++c)
            std::printf("%9.1f", grid[r * names.size() + c]);
        std::printf("\n");
    }

    const double p1 = eng.homogeneousAt(paperDesign("4B"), 1).powerGatedW;
    const double p4 = eng.homogeneousAt(paperDesign("4B"), 4).powerGatedW;
    const double p24 = eng.homogeneousAt(paperDesign("4B"), 24).powerGatedW;
    std::printf("\n4B: %0.1fW at 1 thread, %0.1fW at 4, %0.1fW at 24 "
                "(paper: ~17.3W, 42W, 46W)\n", p1, p4, p24);
    std::printf("SMT contexts 4->24 add %.1fW; waking cores 1->4 adds "
                "%.1fW (paper: SMT adds much less than cores)\n",
                p24 - p4, p4 - p1);
    return 0;
}
