# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_xbar[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
