file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/profile_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/profile_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/registry_sweep_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/registry_sweep_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/spec_profiles_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/spec_profiles_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/tracegen_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/tracegen_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/warmup_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/warmup_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
