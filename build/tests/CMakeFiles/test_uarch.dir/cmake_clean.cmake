file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/uarch/core_params_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/core_params_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/inorder_core_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/inorder_core_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/morph_core_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/morph_core_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/ooo_core_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/ooo_core_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/private_hierarchy_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/private_hierarchy_test.cpp.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
