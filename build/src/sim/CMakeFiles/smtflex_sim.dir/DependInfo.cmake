
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chip_config.cpp" "src/sim/CMakeFiles/smtflex_sim.dir/chip_config.cpp.o" "gcc" "src/sim/CMakeFiles/smtflex_sim.dir/chip_config.cpp.o.d"
  "/root/repo/src/sim/chip_sim.cpp" "src/sim/CMakeFiles/smtflex_sim.dir/chip_sim.cpp.o" "gcc" "src/sim/CMakeFiles/smtflex_sim.dir/chip_sim.cpp.o.d"
  "/root/repo/src/sim/power_summary.cpp" "src/sim/CMakeFiles/smtflex_sim.dir/power_summary.cpp.o" "gcc" "src/sim/CMakeFiles/smtflex_sim.dir/power_summary.cpp.o.d"
  "/root/repo/src/sim/shared_memory.cpp" "src/sim/CMakeFiles/smtflex_sim.dir/shared_memory.cpp.o" "gcc" "src/sim/CMakeFiles/smtflex_sim.dir/shared_memory.cpp.o.d"
  "/root/repo/src/sim/sim_thread.cpp" "src/sim/CMakeFiles/smtflex_sim.dir/sim_thread.cpp.o" "gcc" "src/sim/CMakeFiles/smtflex_sim.dir/sim_thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/smtflex_power.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/smtflex_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/smtflex_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/smtflex_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/smtflex_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/smtflex_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smtflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
