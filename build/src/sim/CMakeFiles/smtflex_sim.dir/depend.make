# Empty dependencies file for smtflex_sim.
# This may be replaced when dependencies are built.
