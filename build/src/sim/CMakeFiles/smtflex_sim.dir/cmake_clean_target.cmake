file(REMOVE_RECURSE
  "libsmtflex_sim.a"
)
