file(REMOVE_RECURSE
  "CMakeFiles/smtflex_sim.dir/chip_config.cpp.o"
  "CMakeFiles/smtflex_sim.dir/chip_config.cpp.o.d"
  "CMakeFiles/smtflex_sim.dir/chip_sim.cpp.o"
  "CMakeFiles/smtflex_sim.dir/chip_sim.cpp.o.d"
  "CMakeFiles/smtflex_sim.dir/power_summary.cpp.o"
  "CMakeFiles/smtflex_sim.dir/power_summary.cpp.o.d"
  "CMakeFiles/smtflex_sim.dir/shared_memory.cpp.o"
  "CMakeFiles/smtflex_sim.dir/shared_memory.cpp.o.d"
  "CMakeFiles/smtflex_sim.dir/sim_thread.cpp.o"
  "CMakeFiles/smtflex_sim.dir/sim_thread.cpp.o.d"
  "libsmtflex_sim.a"
  "libsmtflex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
