
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/core.cpp" "src/uarch/CMakeFiles/smtflex_uarch.dir/core.cpp.o" "gcc" "src/uarch/CMakeFiles/smtflex_uarch.dir/core.cpp.o.d"
  "/root/repo/src/uarch/core_params.cpp" "src/uarch/CMakeFiles/smtflex_uarch.dir/core_params.cpp.o" "gcc" "src/uarch/CMakeFiles/smtflex_uarch.dir/core_params.cpp.o.d"
  "/root/repo/src/uarch/inorder_core.cpp" "src/uarch/CMakeFiles/smtflex_uarch.dir/inorder_core.cpp.o" "gcc" "src/uarch/CMakeFiles/smtflex_uarch.dir/inorder_core.cpp.o.d"
  "/root/repo/src/uarch/morph_core.cpp" "src/uarch/CMakeFiles/smtflex_uarch.dir/morph_core.cpp.o" "gcc" "src/uarch/CMakeFiles/smtflex_uarch.dir/morph_core.cpp.o.d"
  "/root/repo/src/uarch/ooo_core.cpp" "src/uarch/CMakeFiles/smtflex_uarch.dir/ooo_core.cpp.o" "gcc" "src/uarch/CMakeFiles/smtflex_uarch.dir/ooo_core.cpp.o.d"
  "/root/repo/src/uarch/private_hierarchy.cpp" "src/uarch/CMakeFiles/smtflex_uarch.dir/private_hierarchy.cpp.o" "gcc" "src/uarch/CMakeFiles/smtflex_uarch.dir/private_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/smtflex_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/smtflex_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smtflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
