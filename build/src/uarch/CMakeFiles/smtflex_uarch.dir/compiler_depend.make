# Empty compiler generated dependencies file for smtflex_uarch.
# This may be replaced when dependencies are built.
