file(REMOVE_RECURSE
  "CMakeFiles/smtflex_uarch.dir/core.cpp.o"
  "CMakeFiles/smtflex_uarch.dir/core.cpp.o.d"
  "CMakeFiles/smtflex_uarch.dir/core_params.cpp.o"
  "CMakeFiles/smtflex_uarch.dir/core_params.cpp.o.d"
  "CMakeFiles/smtflex_uarch.dir/inorder_core.cpp.o"
  "CMakeFiles/smtflex_uarch.dir/inorder_core.cpp.o.d"
  "CMakeFiles/smtflex_uarch.dir/morph_core.cpp.o"
  "CMakeFiles/smtflex_uarch.dir/morph_core.cpp.o.d"
  "CMakeFiles/smtflex_uarch.dir/ooo_core.cpp.o"
  "CMakeFiles/smtflex_uarch.dir/ooo_core.cpp.o.d"
  "CMakeFiles/smtflex_uarch.dir/private_hierarchy.cpp.o"
  "CMakeFiles/smtflex_uarch.dir/private_hierarchy.cpp.o.d"
  "libsmtflex_uarch.a"
  "libsmtflex_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
