file(REMOVE_RECURSE
  "libsmtflex_uarch.a"
)
