file(REMOVE_RECURSE
  "CMakeFiles/smtflex_dram.dir/dram.cpp.o"
  "CMakeFiles/smtflex_dram.dir/dram.cpp.o.d"
  "libsmtflex_dram.a"
  "libsmtflex_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
