file(REMOVE_RECURSE
  "libsmtflex_dram.a"
)
