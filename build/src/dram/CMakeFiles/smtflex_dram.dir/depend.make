# Empty dependencies file for smtflex_dram.
# This may be replaced when dependencies are built.
