# Empty dependencies file for smtflex_power.
# This may be replaced when dependencies are built.
