file(REMOVE_RECURSE
  "libsmtflex_power.a"
)
