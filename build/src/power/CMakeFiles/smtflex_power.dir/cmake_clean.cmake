file(REMOVE_RECURSE
  "CMakeFiles/smtflex_power.dir/power_model.cpp.o"
  "CMakeFiles/smtflex_power.dir/power_model.cpp.o.d"
  "libsmtflex_power.a"
  "libsmtflex_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
