# Empty compiler generated dependencies file for smtflex_metrics.
# This may be replaced when dependencies are built.
