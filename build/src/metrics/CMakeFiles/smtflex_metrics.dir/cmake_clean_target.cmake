file(REMOVE_RECURSE
  "libsmtflex_metrics.a"
)
