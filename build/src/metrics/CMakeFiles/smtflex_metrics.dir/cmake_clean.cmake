file(REMOVE_RECURSE
  "CMakeFiles/smtflex_metrics.dir/metrics.cpp.o"
  "CMakeFiles/smtflex_metrics.dir/metrics.cpp.o.d"
  "libsmtflex_metrics.a"
  "libsmtflex_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
