file(REMOVE_RECURSE
  "libsmtflex_workload.a"
)
