file(REMOVE_RECURSE
  "CMakeFiles/smtflex_workload.dir/distributions.cpp.o"
  "CMakeFiles/smtflex_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/smtflex_workload.dir/multiprogram.cpp.o"
  "CMakeFiles/smtflex_workload.dir/multiprogram.cpp.o.d"
  "CMakeFiles/smtflex_workload.dir/parsec_profiles.cpp.o"
  "CMakeFiles/smtflex_workload.dir/parsec_profiles.cpp.o.d"
  "CMakeFiles/smtflex_workload.dir/parsec_runner.cpp.o"
  "CMakeFiles/smtflex_workload.dir/parsec_runner.cpp.o.d"
  "libsmtflex_workload.a"
  "libsmtflex_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
