# Empty dependencies file for smtflex_workload.
# This may be replaced when dependencies are built.
