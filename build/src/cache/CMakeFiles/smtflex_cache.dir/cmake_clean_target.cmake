file(REMOVE_RECURSE
  "libsmtflex_cache.a"
)
