file(REMOVE_RECURSE
  "CMakeFiles/smtflex_cache.dir/cache.cpp.o"
  "CMakeFiles/smtflex_cache.dir/cache.cpp.o.d"
  "libsmtflex_cache.a"
  "libsmtflex_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
