# Empty compiler generated dependencies file for smtflex_cache.
# This may be replaced when dependencies are built.
