file(REMOVE_RECURSE
  "libsmtflex_report.a"
)
