file(REMOVE_RECURSE
  "CMakeFiles/smtflex_report.dir/csv.cpp.o"
  "CMakeFiles/smtflex_report.dir/csv.cpp.o.d"
  "CMakeFiles/smtflex_report.dir/sim_report.cpp.o"
  "CMakeFiles/smtflex_report.dir/sim_report.cpp.o.d"
  "libsmtflex_report.a"
  "libsmtflex_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
