# Empty dependencies file for smtflex_report.
# This may be replaced when dependencies are built.
