file(REMOVE_RECURSE
  "CMakeFiles/smtflex_common.dir/log.cpp.o"
  "CMakeFiles/smtflex_common.dir/log.cpp.o.d"
  "CMakeFiles/smtflex_common.dir/rng.cpp.o"
  "CMakeFiles/smtflex_common.dir/rng.cpp.o.d"
  "CMakeFiles/smtflex_common.dir/stats.cpp.o"
  "CMakeFiles/smtflex_common.dir/stats.cpp.o.d"
  "libsmtflex_common.a"
  "libsmtflex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
