# Empty dependencies file for smtflex_common.
# This may be replaced when dependencies are built.
