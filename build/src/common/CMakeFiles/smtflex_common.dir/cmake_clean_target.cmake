file(REMOVE_RECURSE
  "libsmtflex_common.a"
)
