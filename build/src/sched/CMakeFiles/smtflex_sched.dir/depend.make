# Empty dependencies file for smtflex_sched.
# This may be replaced when dependencies are built.
