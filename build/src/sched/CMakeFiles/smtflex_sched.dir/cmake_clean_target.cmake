file(REMOVE_RECURSE
  "libsmtflex_sched.a"
)
