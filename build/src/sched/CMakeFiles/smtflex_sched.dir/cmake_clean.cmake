file(REMOVE_RECURSE
  "CMakeFiles/smtflex_sched.dir/scheduler.cpp.o"
  "CMakeFiles/smtflex_sched.dir/scheduler.cpp.o.d"
  "libsmtflex_sched.a"
  "libsmtflex_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
