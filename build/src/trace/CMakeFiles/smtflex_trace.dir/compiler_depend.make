# Empty compiler generated dependencies file for smtflex_trace.
# This may be replaced when dependencies are built.
