file(REMOVE_RECURSE
  "libsmtflex_trace.a"
)
