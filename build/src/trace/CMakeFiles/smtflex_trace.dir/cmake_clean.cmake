file(REMOVE_RECURSE
  "CMakeFiles/smtflex_trace.dir/profile.cpp.o"
  "CMakeFiles/smtflex_trace.dir/profile.cpp.o.d"
  "CMakeFiles/smtflex_trace.dir/spec_profiles.cpp.o"
  "CMakeFiles/smtflex_trace.dir/spec_profiles.cpp.o.d"
  "CMakeFiles/smtflex_trace.dir/trace_io.cpp.o"
  "CMakeFiles/smtflex_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/smtflex_trace.dir/tracegen.cpp.o"
  "CMakeFiles/smtflex_trace.dir/tracegen.cpp.o.d"
  "libsmtflex_trace.a"
  "libsmtflex_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
