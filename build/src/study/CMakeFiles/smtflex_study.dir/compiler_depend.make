# Empty compiler generated dependencies file for smtflex_study.
# This may be replaced when dependencies are built.
