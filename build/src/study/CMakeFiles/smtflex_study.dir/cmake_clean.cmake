file(REMOVE_RECURSE
  "CMakeFiles/smtflex_study.dir/design_space.cpp.o"
  "CMakeFiles/smtflex_study.dir/design_space.cpp.o.d"
  "CMakeFiles/smtflex_study.dir/result_cache.cpp.o"
  "CMakeFiles/smtflex_study.dir/result_cache.cpp.o.d"
  "CMakeFiles/smtflex_study.dir/selection.cpp.o"
  "CMakeFiles/smtflex_study.dir/selection.cpp.o.d"
  "CMakeFiles/smtflex_study.dir/study_engine.cpp.o"
  "CMakeFiles/smtflex_study.dir/study_engine.cpp.o.d"
  "libsmtflex_study.a"
  "libsmtflex_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
