file(REMOVE_RECURSE
  "libsmtflex_study.a"
)
