# Empty dependencies file for smtflex_analytic.
# This may be replaced when dependencies are built.
