file(REMOVE_RECURSE
  "CMakeFiles/smtflex_analytic.dir/hill_marty.cpp.o"
  "CMakeFiles/smtflex_analytic.dir/hill_marty.cpp.o.d"
  "libsmtflex_analytic.a"
  "libsmtflex_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
