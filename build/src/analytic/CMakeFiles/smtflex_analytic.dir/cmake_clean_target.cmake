file(REMOVE_RECURSE
  "libsmtflex_analytic.a"
)
