file(REMOVE_RECURSE
  "libsmtflex_xbar.a"
)
