# Empty dependencies file for smtflex_xbar.
# This may be replaced when dependencies are built.
