file(REMOVE_RECURSE
  "CMakeFiles/smtflex_xbar.dir/crossbar.cpp.o"
  "CMakeFiles/smtflex_xbar.dir/crossbar.cpp.o.d"
  "CMakeFiles/smtflex_xbar.dir/mesh.cpp.o"
  "CMakeFiles/smtflex_xbar.dir/mesh.cpp.o.d"
  "libsmtflex_xbar.a"
  "libsmtflex_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
