file(REMOVE_RECURSE
  "CMakeFiles/smtflex.dir/smtflex_cli.cpp.o"
  "CMakeFiles/smtflex.dir/smtflex_cli.cpp.o.d"
  "smtflex"
  "smtflex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtflex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
