# Empty dependencies file for smtflex.
# This may be replaced when dependencies are built.
