file(REMOVE_RECURSE
  "CMakeFiles/smt_flexibility.dir/smt_flexibility.cpp.o"
  "CMakeFiles/smt_flexibility.dir/smt_flexibility.cpp.o.d"
  "smt_flexibility"
  "smt_flexibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
