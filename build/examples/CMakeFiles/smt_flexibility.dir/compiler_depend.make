# Empty compiler generated dependencies file for smt_flexibility.
# This may be replaced when dependencies are built.
