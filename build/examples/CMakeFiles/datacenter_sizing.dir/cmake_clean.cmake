file(REMOVE_RECURSE
  "CMakeFiles/datacenter_sizing.dir/datacenter_sizing.cpp.o"
  "CMakeFiles/datacenter_sizing.dir/datacenter_sizing.cpp.o.d"
  "datacenter_sizing"
  "datacenter_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
