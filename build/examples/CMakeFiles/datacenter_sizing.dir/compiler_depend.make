# Empty compiler generated dependencies file for datacenter_sizing.
# This may be replaced when dependencies are built.
