# Empty dependencies file for parsec_scaling.
# This may be replaced when dependencies are built.
