file(REMOVE_RECURSE
  "CMakeFiles/parsec_scaling.dir/parsec_scaling.cpp.o"
  "CMakeFiles/parsec_scaling.dir/parsec_scaling.cpp.o.d"
  "parsec_scaling"
  "parsec_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
