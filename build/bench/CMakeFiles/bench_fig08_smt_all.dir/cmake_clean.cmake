file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_smt_all.dir/fig08_smt_all.cpp.o"
  "CMakeFiles/bench_fig08_smt_all.dir/fig08_smt_all.cpp.o.d"
  "bench_fig08_smt_all"
  "bench_fig08_smt_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_smt_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
