# Empty dependencies file for bench_fig08_smt_all.
# This may be replaced when dependencies are built.
