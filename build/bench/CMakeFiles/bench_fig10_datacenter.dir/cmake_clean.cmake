file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_datacenter.dir/fig10_datacenter.cpp.o"
  "CMakeFiles/bench_fig10_datacenter.dir/fig10_datacenter.cpp.o.d"
  "bench_fig10_datacenter"
  "bench_fig10_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
