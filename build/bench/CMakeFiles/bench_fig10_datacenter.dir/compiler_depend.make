# Empty compiler generated dependencies file for bench_fig10_datacenter.
# This may be replaced when dependencies are built.
