file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_active_threads.dir/fig01_active_threads.cpp.o"
  "CMakeFiles/bench_fig01_active_threads.dir/fig01_active_threads.cpp.o.d"
  "bench_fig01_active_threads"
  "bench_fig01_active_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_active_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
