# Empty dependencies file for bench_fig01_active_threads.
# This may be replaced when dependencies are built.
