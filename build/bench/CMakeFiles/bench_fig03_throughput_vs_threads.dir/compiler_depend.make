# Empty compiler generated dependencies file for bench_fig03_throughput_vs_threads.
# This may be replaced when dependencies are built.
