file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_throughput_vs_threads.dir/fig03_throughput_vs_threads.cpp.o"
  "CMakeFiles/bench_fig03_throughput_vs_threads.dir/fig03_throughput_vs_threads.cpp.o.d"
  "bench_fig03_throughput_vs_threads"
  "bench_fig03_throughput_vs_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_throughput_vs_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
