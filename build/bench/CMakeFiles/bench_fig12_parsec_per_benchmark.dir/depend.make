# Empty dependencies file for bench_fig12_parsec_per_benchmark.
# This may be replaced when dependencies are built.
