file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_parsec_per_benchmark.dir/fig12_parsec_per_benchmark.cpp.o"
  "CMakeFiles/bench_fig12_parsec_per_benchmark.dir/fig12_parsec_per_benchmark.cpp.o.d"
  "bench_fig12_parsec_per_benchmark"
  "bench_fig12_parsec_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_parsec_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
