# Empty dependencies file for bench_fig14_power_vs_threads.
# This may be replaced when dependencies are built.
