file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_power_vs_threads.dir/fig14_power_vs_threads.cpp.o"
  "CMakeFiles/bench_fig14_power_vs_threads.dir/fig14_power_vs_threads.cpp.o.d"
  "bench_fig14_power_vs_threads"
  "bench_fig14_power_vs_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_power_vs_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
