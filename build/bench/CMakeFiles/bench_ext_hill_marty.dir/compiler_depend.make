# Empty compiler generated dependencies file for bench_ext_hill_marty.
# This may be replaced when dependencies are built.
