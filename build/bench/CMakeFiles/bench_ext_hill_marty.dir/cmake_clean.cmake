file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hill_marty.dir/ext_hill_marty.cpp.o"
  "CMakeFiles/bench_ext_hill_marty.dir/ext_hill_marty.cpp.o.d"
  "bench_ext_hill_marty"
  "bench_ext_hill_marty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hill_marty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
