file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_morphcore.dir/ext_morphcore.cpp.o"
  "CMakeFiles/bench_ext_morphcore.dir/ext_morphcore.cpp.o.d"
  "bench_ext_morphcore"
  "bench_ext_morphcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_morphcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
