# Empty dependencies file for bench_ext_morphcore.
# This may be replaced when dependencies are built.
