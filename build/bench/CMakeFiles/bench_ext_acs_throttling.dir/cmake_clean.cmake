file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_acs_throttling.dir/ext_acs_throttling.cpp.o"
  "CMakeFiles/bench_ext_acs_throttling.dir/ext_acs_throttling.cpp.o.d"
  "bench_ext_acs_throttling"
  "bench_ext_acs_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_acs_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
