# Empty compiler generated dependencies file for bench_ext_acs_throttling.
# This may be replaced when dependencies are built.
