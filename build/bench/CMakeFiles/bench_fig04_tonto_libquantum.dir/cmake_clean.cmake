file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_tonto_libquantum.dir/fig04_tonto_libquantum.cpp.o"
  "CMakeFiles/bench_fig04_tonto_libquantum.dir/fig04_tonto_libquantum.cpp.o.d"
  "bench_fig04_tonto_libquantum"
  "bench_fig04_tonto_libquantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_tonto_libquantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
