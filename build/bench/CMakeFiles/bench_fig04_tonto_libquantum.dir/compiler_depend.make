# Empty compiler generated dependencies file for bench_fig04_tonto_libquantum.
# This may be replaced when dependencies are built.
