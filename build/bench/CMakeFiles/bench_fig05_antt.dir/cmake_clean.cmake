file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_antt.dir/fig05_antt.cpp.o"
  "CMakeFiles/bench_fig05_antt.dir/fig05_antt.cpp.o.d"
  "bench_fig05_antt"
  "bench_fig05_antt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_antt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
