# Empty compiler generated dependencies file for bench_fig05_antt.
# This may be replaced when dependencies are built.
