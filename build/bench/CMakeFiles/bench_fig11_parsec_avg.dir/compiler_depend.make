# Empty compiler generated dependencies file for bench_fig11_parsec_avg.
# This may be replaced when dependencies are built.
