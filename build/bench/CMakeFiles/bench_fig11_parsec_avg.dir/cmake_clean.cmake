file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_parsec_avg.dir/fig11_parsec_avg.cpp.o"
  "CMakeFiles/bench_fig11_parsec_avg.dir/fig11_parsec_avg.cpp.o.d"
  "bench_fig11_parsec_avg"
  "bench_fig11_parsec_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_parsec_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
