# Empty dependencies file for bench_fig06_uniform_nosmt.
# This may be replaced when dependencies are built.
