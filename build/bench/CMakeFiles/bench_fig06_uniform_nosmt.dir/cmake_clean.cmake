file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_uniform_nosmt.dir/fig06_uniform_nosmt.cpp.o"
  "CMakeFiles/bench_fig06_uniform_nosmt.dir/fig06_uniform_nosmt.cpp.o.d"
  "bench_fig06_uniform_nosmt"
  "bench_fig06_uniform_nosmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_uniform_nosmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
