
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_alt_designs.cpp" "bench/CMakeFiles/bench_fig16_alt_designs.dir/fig16_alt_designs.cpp.o" "gcc" "bench/CMakeFiles/bench_fig16_alt_designs.dir/fig16_alt_designs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/smtflex_study.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smtflex_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smtflex_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/smtflex_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smtflex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/smtflex_power.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/smtflex_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/smtflex_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/smtflex_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/smtflex_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/smtflex_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/smtflex_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smtflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
