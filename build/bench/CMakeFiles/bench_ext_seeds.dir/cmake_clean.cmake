file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_seeds.dir/ext_seeds.cpp.o"
  "CMakeFiles/bench_ext_seeds.dir/ext_seeds.cpp.o.d"
  "bench_ext_seeds"
  "bench_ext_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
