file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_smt_homogeneous.dir/fig07_smt_homogeneous.cpp.o"
  "CMakeFiles/bench_fig07_smt_homogeneous.dir/fig07_smt_homogeneous.cpp.o.d"
  "bench_fig07_smt_homogeneous"
  "bench_fig07_smt_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_smt_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
