# Empty compiler generated dependencies file for bench_fig07_smt_homogeneous.
# This may be replaced when dependencies are built.
