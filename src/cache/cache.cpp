#include "cache.h"

#include "common/log.h"

namespace smtflex {

SetAssocCache::SetAssocCache(std::string name, const CacheGeometry &geometry)
    : name_(std::move(name)), geometry_(geometry)
{
    if (geometry_.lineSize == 0 || geometry_.assoc == 0)
        fatal("cache ", name_, ": bad geometry");
    if (geometry_.sizeBytes % geometry_.lineSize != 0)
        fatal("cache ", name_, ": size not a multiple of line size");
    if (geometry_.numLines() % geometry_.assoc != 0)
        fatal("cache ", name_, ": lines not divisible by associativity");
    numSets_ = geometry_.numSets();
    if (numSets_ == 0)
        fatal("cache ", name_, ": zero sets");
    lines_.resize(numSets_ * geometry_.assoc);
}

std::uint64_t
SetAssocCache::setIndex(Addr line_addr) const
{
    // Modulo placement supports non-power-of-two set counts (6 KB, 48 KB
    // caches in Table 1).
    return (line_addr / geometry_.lineSize) % numSets_;
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool is_write, bool mark_prefetched)
{
    const Addr line_addr = addr / geometry_.lineSize;
    const std::uint64_t set = setIndex(addr);
    Line *const base = &lines_[set * geometry_.assoc];

    ++stats_.accesses;
    ++lruClock_;

    Line *victim = base;
    for (std::uint32_t way = 0; way < geometry_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == line_addr) {
            line.lruStamp = lruClock_;
            line.dirty = line.dirty || is_write;
            const bool was_prefetched = line.prefetched;
            line.prefetched = false; // demand touch consumes the tag
            return {.hit = true, .hitPrefetched = was_prefetched,
                    .writeback = false, .victimAddr = 0};
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }

    // Miss: allocate over the LRU (or an invalid) way.
    ++stats_.misses;
    CacheAccessResult result;
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty) {
            ++stats_.writebacks;
            result.writeback = true;
            result.victimAddr = victim->tag * geometry_.lineSize;
        }
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = is_write;
    victim->prefetched = mark_prefetched;
    victim->lruStamp = lruClock_;
    return result;
}

void
SetAssocCache::install(Addr addr)
{
    const Addr line_addr = addr / geometry_.lineSize;
    const std::uint64_t set = setIndex(addr);
    Line *const base = &lines_[set * geometry_.assoc];
    ++lruClock_;

    Line *victim = base;
    for (std::uint32_t way = 0; way < geometry_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == line_addr) {
            line.lruStamp = lruClock_;
            return;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = false;
    victim->prefetched = false;
    victim->lruStamp = lruClock_;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr line_addr = addr / geometry_.lineSize;
    const std::uint64_t set = setIndex(addr);
    const Line *const base = &lines_[set * geometry_.assoc];
    for (std::uint32_t way = 0; way < geometry_.assoc; ++way) {
        if (base[way].valid && base[way].tag == line_addr)
            return true;
    }
    return false;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line();
}

void
SetAssocCache::saveState(ckpt::Writer &w) const
{
    w.u64(lruClock_);
    ckpt::saveCounters(w, stats_);
    w.u32(static_cast<std::uint32_t>(lines_.size()));
    for (const Line &line : lines_) {
        w.u64(line.tag);
        w.u64(line.lruStamp);
        w.boolean(line.valid);
        w.boolean(line.dirty);
        w.boolean(line.prefetched);
    }
}

void
SetAssocCache::loadState(ckpt::Reader &r)
{
    lruClock_ = r.u64();
    ckpt::loadCounters(r, stats_);
    r.count(lines_.size(), "cache lines");
    for (Line &line : lines_) {
        line.tag = r.u64();
        line.lruStamp = r.u64();
        line.valid = r.boolean();
        line.dirty = r.boolean();
        line.prefetched = r.boolean();
    }
}

} // namespace smtflex
