/**
 * @file
 * Set-associative cache with true LRU replacement.
 *
 * Used for the private L1I/L1D/L2 caches of every core and for the shared
 * last-level cache. The tag array is real (not a miss-rate curve), so
 * capacity and conflict behaviour — including SMT threads sharing a private
 * cache and multiple cores sharing the LLC, both central to the paper —
 * emerge from the simulated address streams.
 */

#ifndef SMTFLEX_CACHE_CACHE_H
#define SMTFLEX_CACHE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"
#include "telemetry/registry.h"

namespace smtflex {

/** Geometry of one cache. Sizes need not be powers of two (the paper uses
 * 6 KB and 48 KB small-core caches); the set index uses modulo placement. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t lineSize = kLineSize;

    std::uint64_t numLines() const { return sizeBytes / lineSize; }
    std::uint64_t numSets() const { return numLines() / assoc; }
};

/** Aggregate statistics of one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    /** The telemetry field list — single source of the metric names. */
    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("accesses", &CacheStats::accesses);
        f("misses", &CacheStats::misses);
        f("evictions", &CacheStats::evictions);
        f("writebacks", &CacheStats::writebacks);
    }
};

/** Result of a single cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** The hit line was installed by a prefetch and is touched by demand
     * for the first time (tagged prefetching: the prefetcher re-arms). */
    bool hitPrefetched = false;
    /** True when a dirty victim was evicted (must be written back). */
    bool writeback = false;
    /** Line address of the dirty victim when writeback is set. */
    Addr victimAddr = 0;
};

/**
 * A write-back, write-allocate, true-LRU set-associative cache.
 */
class SetAssocCache : public telemetry::StatsProvider<CacheStats>
{
  public:
    SetAssocCache(std::string name, const CacheGeometry &geometry);

    /**
     * Access one line. On a miss the line is allocated (write-allocate) and
     * the LRU victim is evicted.
     *
     * @param addr byte address (any offset within the line).
     * @param is_write marks the line dirty.
     * @param mark_prefetched tag an allocated line as prefetched.
     */
    CacheAccessResult access(Addr addr, bool is_write,
                             bool mark_prefetched = false);

    /** Probe without updating state or statistics. */
    bool contains(Addr addr) const;

    /**
     * Functionally install a clean line without touching statistics
     * (functional warmup of sampled simulation: the line appears as if it
     * had been fetched earlier; any victim is dropped silently).
     */
    void install(Addr addr);

    /** Drop every line (loses dirty data; used by tests/resets). */
    void invalidateAll();

    const CacheGeometry &geometry() const { return geometry_; }
    const std::string &name() const { return name_; }

    /** Register this cache's counters under @p prefix (e.g. "llc"). */
    void registerMetrics(telemetry::MetricRegistry &registry,
                         const std::string &prefix) const
    {
        telemetry::attachCounters(registry, prefix, stats_);
    }

    /** Serialize the full mutable state (tag array, LRU clock, stats). */
    void saveState(ckpt::Writer &w) const;
    /** Restore state saved by an identically configured cache; throws
     * ckpt::CorruptSnapshot on any geometry mismatch. */
    void loadState(ckpt::Reader &r);

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    std::uint64_t setIndex(Addr line_addr) const;

    std::string name_;
    CacheGeometry geometry_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; // numSets_ x assoc, row-major
    std::uint64_t lruClock_ = 0;
};

} // namespace smtflex

#endif // SMTFLEX_CACHE_CACHE_H
