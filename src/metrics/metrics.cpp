#include "metrics.h"

#include "common/log.h"

namespace smtflex {

std::vector<double>
normalisedProgress(const SimResult &result,
                   const std::vector<double> &isolated)
{
    if (isolated.size() != result.threads.size())
        fatal("metrics: isolated baselines (", isolated.size(),
              ") do not match threads (", result.threads.size(), ")");
    std::vector<double> np;
    np.reserve(result.threads.size());
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        if (isolated[i] <= 0.0)
            fatal("metrics: non-positive isolated IPC");
        if (!result.threads[i].finished)
            fatal("metrics: thread ", i, " never finished");
        np.push_back(result.threads[i].ipc() / isolated[i]);
    }
    return np;
}

double
systemThroughput(const SimResult &result,
                 const std::vector<double> &isolated_ipc)
{
    double stp = 0.0;
    for (const double np : normalisedProgress(result, isolated_ipc))
        stp += np;
    return stp;
}

double
avgNormalisedTurnaround(const SimResult &result,
                        const std::vector<double> &isolated_ipc)
{
    const auto np = normalisedProgress(result, isolated_ipc);
    double antt = 0.0;
    for (const double progress : np) {
        if (progress <= 0.0)
            fatal("metrics: non-positive normalised progress");
        antt += 1.0 / progress;
    }
    return antt / static_cast<double>(np.size());
}

double
energyDelayProduct(double avg_power_w, double throughput)
{
    if (throughput <= 0.0)
        fatal("metrics: non-positive throughput");
    return avg_power_w / (throughput * throughput);
}

double
speedup(Cycle baseline_cycles, Cycle cycles)
{
    if (cycles == 0)
        fatal("metrics: zero cycle count");
    return static_cast<double>(baseline_cycles) /
        static_cast<double>(cycles);
}

} // namespace smtflex
