/**
 * @file
 * Multi-program performance metrics (Eyerman & Eeckhout, IEEE Micro 2008):
 * system throughput (STP, a.k.a. weighted speedup) and average normalised
 * turnaround time (ANTT), plus energy metrics (EDP).
 */

#ifndef SMTFLEX_METRICS_METRICS_H
#define SMTFLEX_METRICS_METRICS_H

#include <vector>

#include "sim/chip_sim.h"

namespace smtflex {

/**
 * System throughput: sum over programs of IPC_multi / IPC_isolated.
 * The isolated baselines come from solo runs on the big core (the paper's
 * normalisation).
 *
 * @param result the multi-program run.
 * @param isolated_ipc per-thread isolated big-core IPC, same order as
 *        result.threads.
 */
double systemThroughput(const SimResult &result,
                        const std::vector<double> &isolated_ipc);

/**
 * Average normalised turnaround time: mean over programs of
 * T_multi / T_isolated = IPC_isolated / IPC_multi. Lower is better; >= 1
 * when co-running only slows programs down.
 */
double avgNormalisedTurnaround(const SimResult &result,
                               const std::vector<double> &isolated_ipc);

/** Per-program normalised progress (IPC_multi / IPC_iso), STP's addends. */
std::vector<double> normalisedProgress(const SimResult &result,
                                       const std::vector<double> &isolated);

/** Energy-delay product given average power and throughput: since delay
 * per unit of work is 1/throughput, EDP ~ power / throughput^2. */
double energyDelayProduct(double avg_power_w, double throughput);

/** Speedup of @p cycles versus @p baseline_cycles (same work). */
double speedup(Cycle baseline_cycles, Cycle cycles);

} // namespace smtflex

#endif // SMTFLEX_METRICS_METRICS_H
