/**
 * @file
 * smtflex::telemetry — the hierarchical metric registry, the one spine
 * every stats silo (uarch counters, cache/DRAM/crossbar models, the chip
 * simulator, the serve layer) registers into.
 *
 * Metrics are addressed by dotted paths (`core.3.retired`, `llc.misses`,
 * `serve.requests`). Registration happens once, at component
 * construction; the hot-path increments stay plain `uint64_t` bumps on
 * the producers' existing POD stats structs, because the registry holds
 * *views* — a pointer to the producer's cell, or a closure for computed
 * gauges — and only dereferences them when a consumer reads. The
 * simulator loop therefore pays nothing for being observable (the
 * BM_ChipSimSampledMcf20s / BM_ChipSimFastForwardMcf20s benchmark pair
 * pins this down).
 *
 * Consumers walk the registry: forEach()/forEachInSubtree() visit metrics
 * in sorted path order, snapshot() materialises the current readings, and
 * exposition() renders Prometheus-style text. The serve stats body, the
 * text/CSV reports and the `metrics` op are all such walks — no more
 * hand-marshalled export paths.
 */

#ifndef SMTFLEX_TELEMETRY_REGISTRY_H
#define SMTFLEX_TELEMETRY_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "telemetry/metric.h"

namespace smtflex {
namespace telemetry {

/**
 * A materialised set of readings: path -> value, taken from a registry
 * walk (or rebuilt from result structs — the values are identical because
 * the registry's counter views point at those very structs). SimResult
 * carries one so reports can render from paths without reaching back into
 * per-component structs.
 */
class Snapshot
{
  public:
    void set(std::string path, MetricValue value);

    bool empty() const { return values_.empty(); }
    std::size_t size() const { return values_.size(); }
    bool contains(const std::string &path) const;

    /** Reading at @p path; fatal() naming the path when absent. */
    const MetricValue &at(const std::string &path) const;

    /** Common typed reads (fatal() on absence or type mismatch). */
    std::uint64_t u64(const std::string &path) const;
    double numeric(const std::string &path) const;

    /** Visit every reading in sorted path order. */
    template <typename F>
    void forEach(F &&visit) const
    {
        for (const auto &[path, value] : values_)
            visit(path, value);
    }

    const std::map<std::string, MetricValue> &entries() const
    {
        return values_;
    }

    bool operator==(const Snapshot &other) const
    {
        return values_ == other.values_;
    }

  private:
    std::map<std::string, MetricValue> values_;
};

/**
 * The registry. Not internally synchronised: registration and structural
 * walks belong to the owning component's thread. Counter views over
 * std::atomic cells may be *read* (via snapshot/walks) while other
 * threads bump them — that is the serve layer's pattern; the plain-cell
 * views are only safe when reader and writer are the same thread or the
 * producer is quiescent (the simulator reads between runs).
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    // ---- registration (once, at construction) ----

    /** Counter view over a plain cell the producer keeps bumping. */
    void counter(const std::string &path, const std::uint64_t *cell);

    /** Counter view over an atomic cell (serve's cross-thread counters). */
    void counter(const std::string &path,
                 const std::atomic<std::uint64_t> *cell);

    /** Computed gauges, evaluated at read time. */
    void gauge(const std::string &path, std::function<std::uint64_t()> fn);
    void gaugeReal(const std::string &path, std::function<double()> fn);
    void gaugeBool(const std::string &path, std::function<bool()> fn);

    /** String-valued exposition entry (a path, a mode name). */
    void info(const std::string &path, std::function<std::string()> fn);

    /**
     * Create (or return the existing) time series at @p path. The
     * registry owns the storage; producers append through the returned
     * handle at their sampling cadence.
     */
    Series &series(const std::string &path, std::size_t max_points = 0);

    // ---- reads ----

    bool contains(const std::string &path) const;
    std::size_t size() const { return metrics_.size(); }

    /** Current reading of one metric; fatal() when absent. */
    MetricValue read(const std::string &path) const;

    /** Visit every metric as (path, kind, value), sorted by path. */
    void forEach(const std::function<void(const std::string &, MetricKind,
                                          const MetricValue &)> &visit) const;

    /**
     * Visit the metrics under @p prefix (dotted-path subtree: "serve"
     * matches "serve.requests" but not "server.x"), passing the path with
     * the prefix and its dot stripped.
     */
    void forEachInSubtree(
        const std::string &prefix,
        const std::function<void(const std::string &, MetricKind,
                                 const MetricValue &)> &visit) const;

    /** Materialise every scalar metric (series are not snapshotted —
     * access their points through series()). */
    Snapshot snapshot() const;

    /** The series at @p path, or nullptr when none was created. */
    const Series *findSeries(const std::string &path) const;
    Series *findSeries(const std::string &path);

    /**
     * Prometheus-style text exposition of every scalar metric: dotted
     * paths become underscore-separated names under @p name_prefix,
     * counters and gauges get `# TYPE` lines, booleans render as 0/1
     * gauges and strings as `<name>_info{value="..."} 1`. Series
     * contribute their latest value as a gauge.
     */
    std::string exposition(const std::string &name_prefix = "smtflex") const;

  private:
    struct Metric
    {
        MetricKind kind = MetricKind::kCounter;
        /** Exactly one of the views below is set. */
        const std::uint64_t *cell = nullptr;
        const std::atomic<std::uint64_t> *atomicCell = nullptr;
        std::function<MetricValue()> fn;
        Series *series = nullptr; ///< owned by seriesStore_

        MetricValue read() const;
    };

    void add(const std::string &path, Metric metric);

    std::map<std::string, Metric> metrics_;
    std::map<std::string, std::unique_ptr<Series>> seriesStore_;
};

/** Reject malformed metric paths (empty segments, characters outside
 * [a-z0-9_.]); fatal() naming the path. Exposed for tests. */
void validateMetricPath(const std::string &path);

/**
 * Register every field of a stats struct under @p prefix. The struct
 * declares its fields once via a static `forEachCounter(f)` that calls
 * `f(name, &Stats::member)` per counter — the single source of metric
 * names for registration, snapshot rebuilding and report walks alike.
 * Members may be plain std::uint64_t or std::atomic<std::uint64_t>.
 */
template <typename StatsT>
void
attachCounters(MetricRegistry &registry, const std::string &prefix,
               const StatsT &stats)
{
    StatsT::forEachCounter([&](const char *name, auto member) {
        registry.counter(prefix + "." + name, &(stats.*member));
    });
}

/**
 * Register a fraction-valued histogram as one gauge per bucket,
 * `<path>.<k>` for k in [0, buckets) — e.g. the chip's active-thread
 * distribution becomes `chip.active_threads.0` .. `.N`. @p fraction is
 * evaluated at read time with the bucket index.
 */
template <typename FractionFn>
void
attachHistogram(MetricRegistry &registry, const std::string &path,
                std::size_t buckets, FractionFn fraction)
{
    for (std::size_t k = 0; k < buckets; ++k)
        registry.gaugeReal(path + "." + std::to_string(k),
                           [fraction, k] { return fraction(k); });
}

/**
 * The shared stats()/clearStats() idiom, deduplicating the four
 * hand-rolled copies the cache, DRAM, crossbar and core models used to
 * carry (and giving CoreStats the clearStats() parity it lacked).
 * Derive publicly; the protected cell keeps hot-path increments as plain
 * member bumps.
 */
template <typename StatsT>
class StatsProvider
{
  public:
    const StatsT &stats() const { return stats_; }

    /** Reset statistics only (model state keeps running). */
    void clearStats() { stats_ = StatsT(); }

  protected:
    StatsT stats_;
};

} // namespace telemetry
} // namespace smtflex

#endif // SMTFLEX_TELEMETRY_REGISTRY_H
