#include "telemetry/metric.h"

#include "common/log.h"

namespace smtflex {
namespace telemetry {

namespace {

const char *
typeName(MetricValue::Type type)
{
    switch (type) {
      case MetricValue::Type::kU64:
        return "u64";
      case MetricValue::Type::kDouble:
        return "double";
      case MetricValue::Type::kBool:
        return "bool";
      case MetricValue::Type::kString:
        return "string";
    }
    return "?";
}

} // namespace

std::uint64_t
MetricValue::asU64() const
{
    if (type_ != Type::kU64)
        fatal("telemetry: value is ", typeName(type_), ", not u64");
    return u64_;
}

double
MetricValue::asDouble() const
{
    if (type_ != Type::kDouble)
        fatal("telemetry: value is ", typeName(type_), ", not double");
    return double_;
}

bool
MetricValue::asBool() const
{
    if (type_ != Type::kBool)
        fatal("telemetry: value is ", typeName(type_), ", not bool");
    return bool_;
}

const std::string &
MetricValue::asString() const
{
    if (type_ != Type::kString)
        fatal("telemetry: value is ", typeName(type_), ", not string");
    return string_;
}

double
MetricValue::numeric() const
{
    switch (type_) {
      case Type::kU64:
        return static_cast<double>(u64_);
      case Type::kDouble:
        return double_;
      case Type::kBool:
        return bool_ ? 1.0 : 0.0;
      case Type::kString:
        break;
    }
    fatal("telemetry: string value has no numeric reading");
}

bool
MetricValue::operator==(const MetricValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::kU64:
        return u64_ == other.u64_;
      case Type::kDouble:
        return double_ == other.double_;
      case Type::kBool:
        return bool_ == other.bool_;
      case Type::kString:
        return string_ == other.string_;
    }
    return false;
}

void
Series::append(std::uint64_t x, double value)
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (maxPoints_ != 0 && points_.size() == maxPoints_)
        points_.erase(points_.begin());
    points_.push_back(Point{x, value});
}

std::vector<Series::Point>
Series::points() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return points_;
}

std::size_t
Series::size() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return points_.size();
}

void
Series::clear()
{
    const std::lock_guard<std::mutex> lock(mu_);
    points_.clear();
}

double
Series::last() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return points_.empty() ? 0.0 : points_.back().value;
}

} // namespace telemetry
} // namespace smtflex
