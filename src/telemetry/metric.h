/**
 * @file
 * Value types of the smtflex::telemetry metric spine.
 *
 * A metric reading is a small tagged value: the simulator's counters are
 * plain uint64_t cells, serve's counters are atomics, derived figures are
 * doubles, and a handful of exposition-only entries are booleans or
 * strings (a cache path, a draining flag). Keeping the tag explicit lets
 * the consumers (JSON stats bodies, CSV walks, Prometheus exposition)
 * render each reading exactly as the pre-telemetry hand-marshalled code
 * did — byte-identical output is part of the registry's contract.
 */

#ifndef SMTFLEX_TELEMETRY_METRIC_H
#define SMTFLEX_TELEMETRY_METRIC_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace smtflex {
namespace telemetry {

/** What a metric means (drives the Prometheus exposition TYPE line). */
enum class MetricKind : std::uint8_t
{
    /** Monotonically increasing count (events since construction). */
    kCounter,
    /** Point-in-time level that can go up and down (queue depth). */
    kGauge,
    /** Non-numeric annotation (a path, a flag) for exposition only. */
    kInfo,
};

/** One typed metric reading. */
class MetricValue
{
  public:
    enum class Type : std::uint8_t { kU64, kDouble, kBool, kString };

    MetricValue() = default;

    static MetricValue u64(std::uint64_t v)
    {
        MetricValue out;
        out.type_ = Type::kU64;
        out.u64_ = v;
        return out;
    }
    static MetricValue real(double v)
    {
        MetricValue out;
        out.type_ = Type::kDouble;
        out.double_ = v;
        return out;
    }
    static MetricValue boolean(bool v)
    {
        MetricValue out;
        out.type_ = Type::kBool;
        out.bool_ = v;
        return out;
    }
    static MetricValue string(std::string v)
    {
        MetricValue out;
        out.type_ = Type::kString;
        out.string_ = std::move(v);
        return out;
    }

    Type type() const { return type_; }
    bool isU64() const { return type_ == Type::kU64; }
    bool isDouble() const { return type_ == Type::kDouble; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isString() const { return type_ == Type::kString; }

    /** Typed reads; fatal() on a type mismatch (registry consumers name
     * the offending path in their own message). */
    std::uint64_t asU64() const;
    double asDouble() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Numeric reading as a double (u64 widened, bool as 0/1); fatal()
     * for strings. */
    double numeric() const;

    bool operator==(const MetricValue &other) const;

  private:
    Type type_ = Type::kU64;
    std::uint64_t u64_ = 0;
    double double_ = 0.0;
    bool bool_ = false;
    std::string string_;
};

/**
 * An append-only time series of (x, value) points sampled at a fixed
 * interval — the registry's handle for paper-style time-axis data
 * (per-interval IPC, active threads per N cycles). The x axis is
 * whatever the producer samples on (global cycles for the chip).
 *
 * Appends and reads are internally synchronized: producers may run on
 * worker threads (dist backend latency probes) while the serve I/O
 * thread walks the registry for exposition. points() therefore hands
 * out a snapshot copy, not a reference into live storage.
 */
class Series
{
  public:
    struct Point
    {
        std::uint64_t x = 0;
        double value = 0.0;
    };

    /** @param max_points 0 = unbounded; otherwise the oldest points are
     * dropped once the cap is reached (live-monitoring ring). */
    explicit Series(std::size_t max_points = 0) : maxPoints_(max_points) {}

    void append(std::uint64_t x, double value);

    /** Snapshot of the points. */
    std::vector<Point> points() const;
    std::size_t size() const;
    bool empty() const { return size() == 0; }
    void clear();

    /** Most recent value (0 when empty — exposition convenience). */
    double last() const;

  private:
    mutable std::mutex mu_;
    std::size_t maxPoints_;
    std::vector<Point> points_;
};

} // namespace telemetry
} // namespace smtflex

#endif // SMTFLEX_TELEMETRY_METRIC_H
