#include "telemetry/registry.h"

#include <sstream>

#include "common/log.h"

namespace smtflex {
namespace telemetry {

// ---------------------------------------------------------------- Snapshot

void
Snapshot::set(std::string path, MetricValue value)
{
    values_[std::move(path)] = std::move(value);
}

bool
Snapshot::contains(const std::string &path) const
{
    return values_.count(path) != 0;
}

const MetricValue &
Snapshot::at(const std::string &path) const
{
    const auto it = values_.find(path);
    if (it == values_.end())
        fatal("telemetry: snapshot has no metric '", path, "'");
    return it->second;
}

std::uint64_t
Snapshot::u64(const std::string &path) const
{
    return at(path).asU64();
}

double
Snapshot::numeric(const std::string &path) const
{
    return at(path).numeric();
}

// ------------------------------------------------------------ path checks

void
validateMetricPath(const std::string &path)
{
    if (path.empty())
        fatal("telemetry: empty metric path");
    bool segment_empty = true;
    for (const char c : path) {
        if (c == '.') {
            if (segment_empty)
                fatal("telemetry: empty segment in metric path '", path, "'");
            segment_empty = true;
            continue;
        }
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_';
        if (!ok)
            fatal("telemetry: bad character '", std::string(1, c),
                  "' in metric path '", path, "'");
        segment_empty = false;
    }
    if (segment_empty)
        fatal("telemetry: empty segment in metric path '", path, "'");
}

// ---------------------------------------------------------- MetricRegistry

MetricValue
MetricRegistry::Metric::read() const
{
    if (cell != nullptr)
        return MetricValue::u64(*cell);
    if (atomicCell != nullptr)
        return MetricValue::u64(
            atomicCell->load(std::memory_order_relaxed));
    if (fn)
        return fn();
    // A bare series: its scalar reading is the latest sample.
    return MetricValue::real(series != nullptr ? series->last() : 0.0);
}

void
MetricRegistry::add(const std::string &path, Metric metric)
{
    validateMetricPath(path);
    if (!metrics_.emplace(path, std::move(metric)).second)
        fatal("telemetry: metric '", path, "' registered twice");
}

void
MetricRegistry::counter(const std::string &path, const std::uint64_t *cell)
{
    Metric m;
    m.kind = MetricKind::kCounter;
    m.cell = cell;
    add(path, std::move(m));
}

void
MetricRegistry::counter(const std::string &path,
                        const std::atomic<std::uint64_t> *cell)
{
    Metric m;
    m.kind = MetricKind::kCounter;
    m.atomicCell = cell;
    add(path, std::move(m));
}

void
MetricRegistry::gauge(const std::string &path,
                      std::function<std::uint64_t()> fn)
{
    Metric m;
    m.kind = MetricKind::kGauge;
    m.fn = [f = std::move(fn)]() { return MetricValue::u64(f()); };
    add(path, std::move(m));
}

void
MetricRegistry::gaugeReal(const std::string &path, std::function<double()> fn)
{
    Metric m;
    m.kind = MetricKind::kGauge;
    m.fn = [f = std::move(fn)]() { return MetricValue::real(f()); };
    add(path, std::move(m));
}

void
MetricRegistry::gaugeBool(const std::string &path, std::function<bool()> fn)
{
    Metric m;
    m.kind = MetricKind::kGauge;
    m.fn = [f = std::move(fn)]() { return MetricValue::boolean(f()); };
    add(path, std::move(m));
}

void
MetricRegistry::info(const std::string &path, std::function<std::string()> fn)
{
    Metric m;
    m.kind = MetricKind::kInfo;
    m.fn = [f = std::move(fn)]() { return MetricValue::string(f()); };
    add(path, std::move(m));
}

Series &
MetricRegistry::series(const std::string &path, std::size_t max_points)
{
    const auto existing = seriesStore_.find(path);
    if (existing != seriesStore_.end())
        return *existing->second;
    auto owned = std::make_unique<Series>(max_points);
    Series &handle = *owned;
    seriesStore_.emplace(path, std::move(owned));
    Metric m;
    m.kind = MetricKind::kGauge;
    m.series = &handle;
    add(path, std::move(m));
    return handle;
}

bool
MetricRegistry::contains(const std::string &path) const
{
    return metrics_.count(path) != 0;
}

MetricValue
MetricRegistry::read(const std::string &path) const
{
    const auto it = metrics_.find(path);
    if (it == metrics_.end())
        fatal("telemetry: no metric '", path, "'");
    return it->second.read();
}

void
MetricRegistry::forEach(
    const std::function<void(const std::string &, MetricKind,
                             const MetricValue &)> &visit) const
{
    for (const auto &[path, metric] : metrics_) {
        const MetricValue value = metric.read();
        visit(path, metric.kind, value);
    }
}

void
MetricRegistry::forEachInSubtree(
    const std::string &prefix,
    const std::function<void(const std::string &, MetricKind,
                             const MetricValue &)> &visit) const
{
    const std::string dotted = prefix + ".";
    for (auto it = metrics_.lower_bound(dotted); it != metrics_.end(); ++it) {
        if (it->first.compare(0, dotted.size(), dotted) != 0)
            break;
        const MetricValue value = it->second.read();
        visit(it->first.substr(dotted.size()), it->second.kind, value);
    }
}

Snapshot
MetricRegistry::snapshot() const
{
    Snapshot out;
    for (const auto &[path, metric] : metrics_) {
        if (metric.series != nullptr)
            continue;
        out.set(path, metric.read());
    }
    return out;
}

const Series *
MetricRegistry::findSeries(const std::string &path) const
{
    const auto it = seriesStore_.find(path);
    return it == seriesStore_.end() ? nullptr : it->second.get();
}

Series *
MetricRegistry::findSeries(const std::string &path)
{
    const auto it = seriesStore_.find(path);
    return it == seriesStore_.end() ? nullptr : it->second.get();
}

namespace {

std::string
expositionName(const std::string &prefix, const std::string &path)
{
    std::string out = prefix;
    out.push_back('_');
    for (const char c : path)
        out.push_back(c == '.' ? '_' : c);
    return out;
}

/** Prometheus label values escape backslash, double quote and newline. */
std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

void
writeNumber(std::ostringstream &os, const MetricValue &value)
{
    if (value.isU64()) {
        os << value.asU64();
        return;
    }
    os << value.numeric();
}

} // namespace

std::string
MetricRegistry::exposition(const std::string &name_prefix) const
{
    std::ostringstream os;
    forEach([&](const std::string &path, MetricKind kind,
                const MetricValue &value) {
        const std::string name = expositionName(name_prefix, path);
        if (value.isString()) {
            os << "# TYPE " << name << "_info gauge\n";
            os << name << "_info{value=\""
               << escapeLabelValue(value.asString()) << "\"} 1\n";
            return;
        }
        os << "# TYPE " << name << ' '
           << (kind == MetricKind::kCounter ? "counter" : "gauge") << '\n';
        os << name << ' ';
        if (value.isBool())
            os << (value.asBool() ? 1 : 0);
        else
            writeNumber(os, value);
        os << '\n';
    });
    return os.str();
}

} // namespace telemetry
} // namespace smtflex
