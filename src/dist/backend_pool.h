/**
 * @file
 * smtflex::dist — BackendPool: the coordinator's view of its serve
 * fleet. One Backend wraps one serve::Client (mutex-guarded — the
 * protocol is request/response per connection), tracks health through
 * ping probes, quarantines a backend after repeated failures (the
 * fault-layer idiom: misbehaviour is contained, not fatal), and feeds
 * the per-backend dist.* telemetry: call/failure counters, last-seen
 * queue depth (backpressure, from the backend's `stats` op), and a
 * latency series.
 *
 * Probes use short connect/op deadlines (serve::Client's poll-based
 * timeouts), so a backend that accepts but never answers — or that
 * black-holes the TCP handshake — fails fast instead of stalling the
 * fleet for a full op timeout.
 */

#ifndef SMTFLEX_DIST_BACKEND_POOL_H
#define SMTFLEX_DIST_BACKEND_POOL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"
#include "telemetry/registry.h"

namespace smtflex {
namespace dist {

/** One backend endpoint. */
struct BackendConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

struct BackendPoolOptions
{
    /** Consecutive failures before a backend is quarantined. */
    unsigned quarantineAfter = 3;
    /** Connect + op deadline of a health probe (ping / stats). */
    std::uint64_t probeTimeoutMs = 2'000;
    /** Op deadline of a work call (sweep_chunk may simulate for a
     * while); 0 = wait forever. */
    std::uint64_t opTimeoutMs = 120'000;
    /** Connect deadline of a work call. */
    std::uint64_t connectTimeoutMs = 2'000;
};

class Backend
{
  public:
    Backend(std::size_t index, BackendConfig config,
            const BackendPoolOptions &options);

    const std::string &label() const { return label_; }
    std::size_t index() const { return index_; }

    /**
     * Send @p request and return the parsed reply. Throws FatalError on
     * connection failure, timeout, or an error reply (ok:false) — the
     * caller decides between requeue and failover. Success resets the
     * consecutive-failure count; failure bumps it and quarantines the
     * backend once the threshold is reached.
     */
    serve::Json call(const serve::Json &request);

    /** Ping with probe deadlines; refresh queue depth from the `stats`
     * op on success. Updates health state. @return now healthy. */
    bool probe();

    bool healthy() const { return healthy_.load(); }

    // ---- telemetry feeds ----
    std::uint64_t calls() const { return calls_.load(); }
    std::uint64_t failures() const { return failures_.load(); }
    std::uint64_t queueDepth() const { return queueDepth_.load(); }
    /** Last call latency in microseconds. */
    std::uint64_t lastLatencyUs() const { return lastLatencyUs_.load(); }

    /** Register this backend's dist.backend.<i>.* gauges and latency
     * series on @p registry. Call before the owning server runs. */
    void registerMetrics(telemetry::MetricRegistry &registry);

  private:
    serve::Json callLocked(const serve::Json &request,
                           const serve::RetryPolicy &policy);
    void recordSuccess(std::uint64_t latency_us);
    void recordFailure();

    std::size_t index_;
    BackendConfig config_;
    BackendPoolOptions options_;
    std::string label_;

    std::mutex clientMutex_;
    serve::Client client_;

    std::atomic<bool> healthy_{true};
    std::atomic<unsigned> consecutiveFailures_{0};
    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::atomic<std::uint64_t> quarantines_{0};
    std::atomic<std::uint64_t> queueDepth_{0};
    std::atomic<std::uint64_t> lastLatencyUs_{0};
    telemetry::Series *latencySeries_ = nullptr; ///< owned by registry
};

class BackendPool
{
  public:
    BackendPool(const std::vector<BackendConfig> &configs,
                BackendPoolOptions options);

    std::size_t size() const { return backends_.size(); }
    Backend &at(std::size_t i) { return *backends_[i]; }

    /** Probe every backend (quarantined ones get a second chance) and
     * return the indices now healthy. */
    std::vector<std::size_t> probeAll();

    /** Indices currently marked healthy, without probing. */
    std::vector<std::size_t> healthyIndices() const;

    /** Register every backend's metrics. */
    void registerMetrics(telemetry::MetricRegistry &registry);

  private:
    std::vector<std::unique_ptr<Backend>> backends_;
};

} // namespace dist
} // namespace smtflex

#endif // SMTFLEX_DIST_BACKEND_POOL_H
