/**
 * @file
 * smtflex::dist — the distributed sweep fabric's coordinator: one
 * serve::Server that answers the same wire protocol as a backend
 * (existing clients and the loadgen work unchanged) but shards the
 * simulation work across a fleet of `smtflex serve` backends.
 *
 * Division of labour:
 *   - the embedded serve::Server keeps owning the socket loop,
 *     admission, coalescing and response memoisation;
 *   - its simExecutor hook routes run/sweep/isolated to this class;
 *   - `sweep` is the sharded op: the thread-count grid is cut into
 *     chunks (ShardPlanner), one worker thread per healthy backend
 *     drives `sweep_chunk` calls with work stealing, and the returned
 *     ResultCache records land in the coordinator's own cache;
 *   - `run`/`isolated` are forwarded round-robin with failover;
 *   - every response is rendered *locally* from the federated records
 *     (serve::sweepText over a warm cache), so a coordinated response
 *     is byte-identical to a single-node one by construction — if a
 *     record is missing (all backends dead), the local engine
 *     transparently recomputes it, which is slower but still
 *     byte-identical because results are deterministic.
 *
 * Federation: before sharding, the coordinator `cache_pull`s missing
 * records from healthy backends (a warm backend saves the whole fleet
 * the work) and `cache_push`es the records it already holds to the
 * backends about to compute, so nobody re-simulates what the fleet
 * collectively knows.
 */

#ifndef SMTFLEX_DIST_COORDINATOR_H
#define SMTFLEX_DIST_COORDINATOR_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/journal.h"
#include "dist/backend_pool.h"
#include "dist/shard_planner.h"
#include "serve/server.h"

namespace smtflex {
namespace dist {

struct CoordinatorOptions
{
    /** The coordinator's own listen endpoint, queue, study options. */
    serve::ServerOptions server;
    /** The fleet. May be empty: the coordinator then degenerates to a
     * plain single-node server (everything computes locally). */
    std::vector<BackendConfig> backends;
    BackendPoolOptions pool;
    /** Sweep rows per chunk; 0 = auto (spread ~2 chunks per backend so
     * stealing has something to steal). */
    std::size_t chunkRows = 0;
    /** An InFlight chunk older than this may be stolen. */
    std::uint64_t stealAfterMs = 10'000;
    /** Dispatch budget per chunk (first claim + steals + requeues). */
    unsigned maxDispatch = 3;
};

/** Monotonic dist.* counters (referenced by the MetricRegistry). */
struct DistStats
{
    std::atomic<std::uint64_t> sweeps{0};
    std::atomic<std::uint64_t> chunksDispatched{0};
    std::atomic<std::uint64_t> chunksStolen{0};
    std::atomic<std::uint64_t> chunksRequeued{0};
    std::atomic<std::uint64_t> chunkFailures{0};
    std::atomic<std::uint64_t> rowsCompleted{0};
    std::atomic<std::uint64_t> rowsDuplicate{0};
    std::atomic<std::uint64_t> rowsLocal{0};
    std::atomic<std::uint64_t> recordsPulled{0};
    std::atomic<std::uint64_t> recordsPushed{0};
    std::atomic<std::uint64_t> recordsStored{0};
    std::atomic<std::uint64_t> recordsMissingAtRender{0};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> forwardFailovers{0};
    std::atomic<std::uint64_t> forwardLocal{0};

    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("sweeps", &DistStats::sweeps);
        f("chunks_dispatched", &DistStats::chunksDispatched);
        f("chunks_stolen", &DistStats::chunksStolen);
        f("chunks_requeued", &DistStats::chunksRequeued);
        f("chunk_failures", &DistStats::chunkFailures);
        f("rows_completed", &DistStats::rowsCompleted);
        f("rows_duplicate", &DistStats::rowsDuplicate);
        f("rows_local", &DistStats::rowsLocal);
        f("records_pulled", &DistStats::recordsPulled);
        f("records_pushed", &DistStats::recordsPushed);
        f("records_stored", &DistStats::recordsStored);
        f("records_missing_at_render",
          &DistStats::recordsMissingAtRender);
        f("forwarded", &DistStats::forwarded);
        f("forward_failovers", &DistStats::forwardFailovers);
        f("forward_local", &DistStats::forwardLocal);
    }
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions options);

    /** The embedded server (bind/port/run/requestStop pass through). */
    serve::Server &server() { return server_; }
    void bind() { server_.bind(); }
    std::uint16_t port() const { return server_.port(); }
    void run() { server_.run(); }
    void requestStop() { server_.requestStop(); }

    const DistStats &stats() const { return stats_; }
    BackendPool &pool() { return pool_; }

    /**
     * The simExecutor body: answer one run/sweep/isolated request.
     * Public so tests can drive coordination without sockets on the
     * coordinator side. Runs on pool worker threads.
     */
    serve::Json execute(const serve::Request &request);

  private:
    serve::ServerOptions withExecutor(serve::ServerOptions options);

    serve::Json coordinateSweep(const serve::SweepRequest &req);
    serve::Json forward(const serve::Request &request);

    /** Shard @p rows over @p healthy backends; returns when every row
     * is federated into the local cache or the fleet gave up (leftovers
     * fall to the local render). */
    void shardRows(const serve::SweepRequest &req,
                   const std::vector<std::uint32_t> &rows,
                   const std::vector<std::size_t> &healthy);

    /** cache_pull @p keys from healthy backends into the local cache;
     * returns the keys still missing. */
    std::vector<std::string>
    pullRecords(const std::vector<std::string> &keys,
                const std::vector<std::size_t> &healthy);

    /** cache_push locally-known records under @p keys to @p backend. */
    void pushRecords(const std::vector<std::string> &keys,
                     Backend &backend);

    /** Store a reply's {"records":{key:[v,...]}} member locally; when
     * @p collected is non-null, also copy each stored record into it
     * (the journaling path). */
    std::uint64_t
    storeRecords(const serve::Json &reply,
                 std::vector<ckpt::SweepJournal::Record> *collected =
                     nullptr);

    /** Durably journal @p records (no-op without SMTFLEX_CKPT). */
    void journalRecords(
        const std::vector<ckpt::SweepJournal::Record> &records);

    CoordinatorOptions options_;
    serve::Server server_;
    BackendPool pool_;
    DistStats stats_;
    std::atomic<std::size_t> rrNext_{0};
    /** Chunk-completion journal (smtflex::ckpt): every record delivered
     * by the fleet is CRC-framed and fsynced before the chunk counts as
     * complete, and replayed into the result cache on startup — a
     * coordinator killed with SIGKILL mid-sweep resumes without
     * recomputing a single delivered chunk. Null when SMTFLEX_CKPT is
     * unset. */
    std::unique_ptr<ckpt::SweepJournal> journal_;
    std::mutex journalMutex_;
};

} // namespace dist
} // namespace smtflex

#endif // SMTFLEX_DIST_COORDINATOR_H
