#include "coordinator.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/log.h"
#include "serve/commands.h"
#include "telemetry/registry.h"

namespace smtflex {
namespace dist {

namespace {

/** The sweep_chunk request for @p items (indices into @p rows). */
serve::Json
chunkRequest(const serve::SweepRequest &req,
             const std::vector<std::uint32_t> &rows,
             const std::vector<std::size_t> &items)
{
    serve::Json doc = serve::Json::object();
    doc.set("op", serve::Json::string("sweep_chunk"));
    doc.set("design", serve::Json::string(req.design));
    doc.set("bench", serve::Json::string(req.bench));
    doc.set("het", serve::Json::boolean(req.het));
    doc.set("no_smt", serve::Json::boolean(req.noSmt));
    if (req.hasBw)
        doc.set("bw", serve::Json::number(req.bw));
    serve::Json list = serve::Json::array();
    for (const std::size_t item : items)
        list.push(serve::Json::number(std::uint64_t{rows[item]}));
    doc.set("rows", std::move(list));
    return doc;
}

} // namespace

serve::ServerOptions
Coordinator::withExecutor(serve::ServerOptions options)
{
    // The lambda outlives this constructor call but not the Coordinator:
    // server_ is a member, and the hook only runs inside server_.run().
    options.simExecutor = [this](const serve::Request &request) {
        return execute(request);
    };
    return options;
}

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)),
      server_(withExecutor(options_.server)),
      pool_(options_.backends, options_.pool)
{
    telemetry::MetricRegistry &registry = server_.registry();
    telemetry::attachCounters(registry, "dist", stats_);
    registry.gauge("dist.backends",
                   [this] { return std::uint64_t{pool_.size()}; });
    registry.gauge("dist.backends_healthy", [this] {
        return std::uint64_t{pool_.healthyIndices().size()};
    });
    pool_.registerMetrics(registry);

    // Durable sweeps: with SMTFLEX_CKPT on, journal every delivered
    // record and replay the journal now — after a SIGKILL the cache
    // starts where the fleet left off, so no delivered chunk is ever
    // recomputed.
    if (const ckpt::ProcessBinding *binding = ckpt::processBinding()) {
        journal_ = std::make_unique<ckpt::SweepJournal>(
            binding->store.dir() + "/sweep.journal",
            &ckpt::processStats());
        const std::uint64_t replayed =
            journal_->replay([this](const ckpt::SweepJournal::Record &r) {
                server_.engine().resultCache().store(r.key, r.values);
            });
        if (replayed != 0)
            inform("dist: replayed ", replayed,
                   " journaled record(s) from ", journal_->path());
    }
}

serve::Json
Coordinator::execute(const serve::Request &request)
{
    switch (request.op) {
      case serve::Op::kSweep:
        return coordinateSweep(request.sweep);
      case serve::Op::kRun:
      case serve::Op::kIsolated:
      case serve::Op::kSchedule:
        return forward(request);
      default:
        fatal("dist: simExecutor invoked for op ",
              serve::opName(request.op));
    }
}

std::uint64_t
Coordinator::storeRecords(const serve::Json &reply,
                          std::vector<ckpt::SweepJournal::Record> *collected)
{
    if (!reply.has("records"))
        return 0;
    std::uint64_t stored = 0;
    for (const auto &member : reply.at("records").members()) {
        std::vector<double> values;
        for (const serve::Json &value : member.second.elements())
            values.push_back(value.asNumber());
        if (member.first.empty() || values.empty())
            continue; // a malformed backend record is skippable noise
        server_.engine().resultCache().store(member.first, values);
        if (collected != nullptr)
            collected->push_back({member.first, values});
        ++stored;
    }
    return stored;
}

void
Coordinator::journalRecords(
    const std::vector<ckpt::SweepJournal::Record> &records)
{
    if (journal_ == nullptr || records.empty())
        return;
    // One frame per completed chunk, serialized across the worker
    // threads: frames must land whole (the CRC framing assumes no
    // interleaving), and the append fsyncs anyway.
    std::lock_guard<std::mutex> lock(journalMutex_);
    journal_->append(records);
}

std::vector<std::string>
Coordinator::pullRecords(const std::vector<std::string> &keys,
                         const std::vector<std::size_t> &healthy)
{
    std::vector<std::string> missing = keys;
    for (const std::size_t index : healthy) {
        if (missing.empty())
            break;
        serve::Json doc = serve::Json::object();
        doc.set("op", serve::Json::string("cache_pull"));
        serve::Json list = serve::Json::array();
        for (const auto &key : missing)
            list.push(serve::Json::string(key));
        doc.set("keys", std::move(list));
        try {
            const serve::Json reply = pool_.at(index).call(doc);
            // Pulled records are delivered state like chunk results: they
            // must reach the journal too, or a restart with a fresh cache
            // would recompute (or re-pull) everything federation saved.
            std::vector<ckpt::SweepJournal::Record> delivered;
            stats_.recordsPulled.fetch_add(storeRecords(reply, &delivered));
            journalRecords(delivered);
        } catch (const FatalError &) {
            continue; // an unreachable backend just cannot contribute
        }
        std::vector<std::string> still;
        for (const auto &key : missing) {
            if (!server_.engine().resultCache().lookup(key))
                still.push_back(key);
        }
        missing = std::move(still);
    }
    return missing;
}

void
Coordinator::pushRecords(const std::vector<std::string> &keys,
                         Backend &backend)
{
    serve::Json records = serve::Json::object();
    std::size_t count = 0;
    for (const auto &key : keys) {
        if (const auto hit = server_.engine().resultCache().lookup(key)) {
            serve::Json values = serve::Json::array();
            for (const double v : *hit)
                values.push(serve::Json::number(v));
            records.set(key, std::move(values));
            ++count;
        }
    }
    if (count == 0)
        return;
    serve::Json doc = serve::Json::object();
    doc.set("op", serve::Json::string("cache_push"));
    doc.set("records", std::move(records));
    try {
        const serve::Json reply = backend.call(doc);
        if (reply.has("stored"))
            stats_.recordsPushed.fetch_add(reply.at("stored").asU64());
    } catch (const FatalError &) {
        // Best-effort: the backend will recompute what it was not given.
    }
}

void
Coordinator::shardRows(const serve::SweepRequest &req,
                       const std::vector<std::uint32_t> &rows,
                       const std::vector<std::size_t> &healthy)
{
    std::size_t chunk_rows = options_.chunkRows;
    if (chunk_rows == 0)
        chunk_rows = std::max<std::size_t>(
            1, rows.size() / (2 * healthy.size()));
    ShardPlanner planner(rows.size(), chunk_rows, options_.maxDispatch);

    StudyEngine &engine = server_.engine();

    // The key universe of this sweep, for seeding the fleet with what
    // the coordinator already knows.
    const ChipConfig cfg = serve::buildDesign(req.design, req.noSmt,
                                              req.hasBw, req.bw, false);
    std::vector<std::string> universe = engine.isolationCacheKeys();
    for (const std::uint32_t n : rows) {
        const auto row_keys =
            engine.sweepRowCacheKeys(cfg, req.bench, req.het, n);
        universe.insert(universe.end(), row_keys.begin(), row_keys.end());
    }

    std::vector<std::thread> workers;
    workers.reserve(healthy.size());
    for (const std::size_t index : healthy) {
        workers.emplace_back([this, index, &planner, &req, &rows,
                              &universe] {
            Backend &backend = pool_.at(index);
            pushRecords(universe, backend);
            while (!planner.settled()) {
                if (!backend.healthy())
                    return; // quarantined: leave the work to the others
                auto chunk = planner.claim(
                    std::chrono::milliseconds(options_.stealAfterMs));
                if (!chunk) {
                    // Someone else's chunks are in flight and not yet
                    // stale; re-check shortly.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                    continue;
                }
                try {
                    const serve::Json reply = backend.call(
                        chunkRequest(req, rows, chunk->items));
                    std::vector<ckpt::SweepJournal::Record> delivered;
                    stats_.recordsStored.fetch_add(
                        storeRecords(reply, &delivered));
                    // Durability before completion: once the planner
                    // marks the chunk done, nobody will redo it — so
                    // its records must already be on disk.
                    journalRecords(delivered);
                    const auto fresh = planner.complete(chunk->id);
                    stats_.rowsCompleted.fetch_add(fresh.size());
                } catch (const FatalError &e) {
                    stats_.chunkFailures.fetch_add(1);
                    warn("dist: chunk ", chunk->id, " failed on ",
                         backend.label(), ": ", e.what());
                    planner.release(chunk->id);
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    stats_.chunksDispatched.fetch_add(planner.dispatched());
    stats_.chunksStolen.fetch_add(planner.stolen());
    stats_.chunksRequeued.fetch_add(planner.requeued());
    stats_.rowsDuplicate.fetch_add(planner.duplicateItems());
}

serve::Json
Coordinator::coordinateSweep(const serve::SweepRequest &req)
{
    stats_.sweeps.fetch_add(1);
    StudyEngine &engine = server_.engine();
    const ChipConfig cfg = serve::buildDesign(req.design, req.noSmt,
                                              req.hasBw, req.bw, false);

    // The same row list sweepText will iterate.
    std::vector<std::uint32_t> rows;
    for (const std::uint32_t n : engine.sweepThreadCounts()) {
        if (n > cfg.totalContexts())
            break;
        rows.push_back(n);
    }

    const auto missingKeys = [&] {
        std::vector<std::string> missing;
        std::unordered_set<std::string> seen;
        auto add = [&](const std::string &key) {
            if (!seen.insert(key).second)
                return;
            if (!engine.resultCache().lookup(key))
                missing.push_back(key);
        };
        for (const auto &key : engine.isolationCacheKeys())
            add(key);
        for (const std::uint32_t n : rows) {
            for (const auto &key :
                 engine.sweepRowCacheKeys(cfg, req.bench, req.het, n))
                add(key);
        }
        return missing;
    };
    const auto missingRows = [&] {
        std::vector<std::uint32_t> out;
        for (const std::uint32_t n : rows) {
            for (const auto &key :
                 engine.sweepRowCacheKeys(cfg, req.bench, req.het, n)) {
                if (!engine.resultCache().lookup(key)) {
                    out.push_back(n);
                    break;
                }
            }
        }
        return out;
    };

    if (!missingKeys().empty() && pool_.size() > 0) {
        const auto healthy = pool_.probeAll();
        if (!healthy.empty()) {
            // Federation first: a warm backend may spare the whole
            // fleet the simulation.
            pullRecords(missingKeys(), healthy);
            const auto still = missingRows();
            if (!still.empty())
                shardRows(req, still, healthy);
        }
    }

    // Render locally. With a fully federated cache this is pure lookups
    // — byte-identical to a single-node sweep by construction. Anything
    // the fleet failed to deliver is recomputed here (deterministic, so
    // still byte-identical), which the counter makes visible.
    const auto leftovers = missingKeys();
    if (!leftovers.empty()) {
        stats_.recordsMissingAtRender.fetch_add(leftovers.size());
        stats_.rowsLocal.fetch_add(missingRows().size());
        warn("dist: computing ", leftovers.size(),
             " record(s) locally (fleet unavailable or incomplete)");
    }
    serve::Json body = serve::makeResponse(serve::Op::kSweep);
    body.set("output",
             serve::Json::string(serve::sweepText(engine, req)));
    return body;
}

serve::Json
Coordinator::forward(const serve::Request &request)
{
    // The canonical key is a complete, defaults-filled request document
    // — exactly what a backend expects on the wire.
    const serve::Json doc = serve::Json::parse(request.canonicalKey());
    const std::size_t n = pool_.size();
    for (std::size_t attempt = 0; attempt < n; ++attempt) {
        const std::size_t index = rrNext_.fetch_add(1) % n;
        Backend &backend = pool_.at(index);
        if (!backend.healthy() && !backend.probe())
            continue;
        try {
            const serve::Json reply = backend.call(doc);
            stats_.forwarded.fetch_add(1);
            // Strip the backend's id echo; the coordinator's server
            // stamps each waiter's own id.
            serve::Json body = serve::Json::object();
            for (const auto &member : reply.members()) {
                if (member.first != "id")
                    body.set(member.first, member.second);
            }
            return body;
        } catch (const FatalError &) {
            stats_.forwardFailovers.fetch_add(1);
        }
    }

    // No backend could answer: compute locally (same renderers, same
    // output bytes).
    stats_.forwardLocal.fetch_add(1);
    StudyEngine &engine = server_.engine();
    if (request.op == serve::Op::kRun) {
        serve::Json body = serve::makeResponse(serve::Op::kRun);
        body.set("output",
                 serve::Json::string(serve::runText(engine, request.run)));
        return body;
    }
    if (request.op == serve::Op::kSchedule) {
        serve::Json body = serve::makeResponse(serve::Op::kSchedule);
        body.set("output",
                 serve::Json::string(
                     serve::scheduleText(engine, request.schedule)));
        return body;
    }
    serve::Json body = serve::makeResponse(serve::Op::kIsolated);
    body.set("output", serve::Json::string(
                           serve::isolatedText(engine, request.isolated)));
    return body;
}

} // namespace dist
} // namespace smtflex
