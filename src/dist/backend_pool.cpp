#include "backend_pool.h"

#include <chrono>

#include "common/log.h"

namespace smtflex {
namespace dist {

Backend::Backend(std::size_t index, BackendConfig config,
                 const BackendPoolOptions &options)
    : index_(index), config_(std::move(config)), options_(options),
      label_(config_.host + ":" + std::to_string(config_.port))
{
}

serve::Json
Backend::callLocked(const serve::Json &request,
                    const serve::RetryPolicy &policy)
{
    // Caller holds clientMutex_.
    client_.setRetryPolicy(policy);
    if (!client_.connected())
        client_.connect(config_.host, config_.port);
    const serve::Json reply = client_.call(request);
    if (reply.has("ok") && !reply.at("ok").asBool()) {
        const std::string code = reply.has("error")
            ? reply.at("error").asString()
            : "unknown";
        const std::string message =
            reply.has("message") ? reply.at("message").asString() : "";
        fatal("backend ", label_, ": ", code,
              message.empty() ? "" : ": ", message);
    }
    return reply;
}

serve::Json
Backend::call(const serve::Json &request)
{
    serve::RetryPolicy policy;
    policy.maxRetries = 0; // failover/requeue is the coordinator's job
    policy.opTimeoutMs = options_.opTimeoutMs;
    policy.connectTimeoutMs = options_.connectTimeoutMs;

    const auto start = std::chrono::steady_clock::now();
    try {
        const std::lock_guard<std::mutex> lock(clientMutex_);
        const serve::Json reply = callLocked(request, policy);
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                       start);
        recordSuccess(static_cast<std::uint64_t>(elapsed.count()));
        return reply;
    } catch (const FatalError &) {
        recordFailure();
        throw;
    }
}

bool
Backend::probe()
{
    serve::RetryPolicy policy;
    policy.maxRetries = 0;
    policy.opTimeoutMs = options_.probeTimeoutMs;
    policy.connectTimeoutMs = options_.probeTimeoutMs;

    serve::Json ping = serve::Json::object();
    ping.set("op", serve::Json::string("ping"));
    serve::Json stats = serve::Json::object();
    stats.set("op", serve::Json::string("stats"));

    try {
        const std::lock_guard<std::mutex> lock(clientMutex_);
        // Connect from scratch: a probe decides liveness, and a stale
        // half-dead connection must not vouch for the backend. The
        // policy goes in first so its connect deadline governs the
        // handshake.
        client_.setRetryPolicy(policy);
        client_.connect(config_.host, config_.port);
        callLocked(ping, policy);
        const serve::Json reply = callLocked(stats, policy);
        if (reply.has("stats") &&
            reply.at("stats").has("queue_depth"))
            queueDepth_.store(
                reply.at("stats").at("queue_depth").asU64());
    } catch (const FatalError &) {
        recordFailure();
        return false;
    }
    consecutiveFailures_.store(0);
    healthy_.store(true);
    return true;
}

void
Backend::recordSuccess(std::uint64_t latency_us)
{
    calls_.fetch_add(1);
    consecutiveFailures_.store(0);
    healthy_.store(true);
    lastLatencyUs_.store(latency_us);
    if (latencySeries_ != nullptr)
        latencySeries_->append(calls_.load(),
                               static_cast<double>(latency_us));
}

void
Backend::recordFailure()
{
    failures_.fetch_add(1);
    const unsigned run = consecutiveFailures_.fetch_add(1) + 1;
    if (run >= options_.quarantineAfter && healthy_.exchange(false)) {
        quarantines_.fetch_add(1);
        warn("dist: backend ", label_, " quarantined after ", run,
             " consecutive failures");
    }
}

void
Backend::registerMetrics(telemetry::MetricRegistry &registry)
{
    const std::string prefix =
        "dist.backend." + std::to_string(index_) + ".";
    registry.info(prefix + "endpoint", [this] { return label_; });
    registry.gaugeBool(prefix + "healthy",
                       [this] { return healthy_.load(); });
    registry.gauge(prefix + "calls", [this] { return calls_.load(); });
    registry.gauge(prefix + "failures",
                   [this] { return failures_.load(); });
    registry.gauge(prefix + "quarantines",
                   [this] { return quarantines_.load(); });
    registry.gauge(prefix + "queue_depth",
                   [this] { return queueDepth_.load(); });
    // Bounded ring: the coordinator is long-lived, the series is for
    // live monitoring, not history. Series is internally synchronized,
    // so worker-thread appends are safe against I/O-thread walks.
    latencySeries_ = &registry.series(prefix + "latency_us", 256);
}

BackendPool::BackendPool(const std::vector<BackendConfig> &configs,
                         BackendPoolOptions options)
{
    for (std::size_t i = 0; i < configs.size(); ++i)
        backends_.push_back(
            std::make_unique<Backend>(i, configs[i], options));
}

std::vector<std::size_t>
BackendPool::probeAll()
{
    std::vector<std::size_t> healthy;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        if (backends_[i]->probe())
            healthy.push_back(i);
    }
    return healthy;
}

std::vector<std::size_t>
BackendPool::healthyIndices() const
{
    std::vector<std::size_t> healthy;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        if (backends_[i]->healthy())
            healthy.push_back(i);
    }
    return healthy;
}

void
BackendPool::registerMetrics(telemetry::MetricRegistry &registry)
{
    for (auto &backend : backends_)
        backend->registerMetrics(registry);
}

} // namespace dist
} // namespace smtflex
