#include "shard_planner.h"

#include "common/log.h"

namespace smtflex {
namespace dist {

ShardPlanner::ShardPlanner(std::size_t item_count, std::size_t chunk_size,
                           unsigned max_dispatch)
    : itemCount_(item_count), maxDispatch_(max_dispatch),
      itemDone_(item_count, false)
{
    if (chunk_size == 0)
        fatal("ShardPlanner: chunk_size must be positive");
    if (maxDispatch_ == 0)
        fatal("ShardPlanner: max_dispatch must be positive");
    for (std::size_t begin = 0; begin < item_count; begin += chunk_size) {
        Chunk chunk;
        const std::size_t end = std::min(begin + chunk_size, item_count);
        for (std::size_t i = begin; i < end; ++i)
            chunk.items.push_back(i);
        pending_.push_back(chunks_.size());
        chunks_.push_back(std::move(chunk));
    }
}

std::optional<ShardChunk>
ShardPlanner::claim(std::chrono::milliseconds steal_after)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t id = 0;
    bool steal = false;
    if (!pending_.empty()) {
        id = pending_.front();
        pending_.pop_front();
    } else {
        // Steal the longest-in-flight stale chunk with budget left.
        const auto now = std::chrono::steady_clock::now();
        bool found = false;
        for (std::size_t i = 0; i < chunks_.size(); ++i) {
            const Chunk &chunk = chunks_[i];
            if (chunk.state != State::kInFlight ||
                chunk.dispatchCount >= maxDispatch_)
                continue;
            if (now - chunk.firstDispatch < steal_after)
                continue;
            if (!found || chunk.firstDispatch < chunks_[id].firstDispatch) {
                id = i;
                found = true;
            }
        }
        if (!found)
            return std::nullopt;
        steal = true;
    }

    Chunk &chunk = chunks_[id];
    if (chunk.state == State::kPending)
        chunk.firstDispatch = std::chrono::steady_clock::now();
    chunk.state = State::kInFlight;
    ++chunk.dispatchCount;
    ++chunk.outstanding;
    ++dispatched_;
    if (steal)
        ++stolen_;

    ShardChunk out;
    out.id = id;
    out.items = chunk.items;
    out.dispatchCount = chunk.dispatchCount;
    return out;
}

std::vector<std::size_t>
ShardPlanner::complete(std::size_t chunk_id)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (chunk_id >= chunks_.size())
        fatal("ShardPlanner: complete of unknown chunk ", chunk_id);
    Chunk &chunk = chunks_[chunk_id];
    if (chunk.outstanding > 0)
        --chunk.outstanding;

    std::vector<std::size_t> fresh;
    for (const std::size_t item : chunk.items) {
        if (itemDone_[item]) {
            // A twin dispatch (steal, or a requeue that raced its own
            // failure report) already delivered this item.
            ++duplicateItems_;
            continue;
        }
        itemDone_[item] = true;
        ++itemsDone_;
        fresh.push_back(item);
    }
    chunk.state = State::kDone;
    return fresh;
}

void
ShardPlanner::release(std::size_t chunk_id)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (chunk_id >= chunks_.size())
        fatal("ShardPlanner: release of unknown chunk ", chunk_id);
    Chunk &chunk = chunks_[chunk_id];
    if (chunk.outstanding > 0)
        --chunk.outstanding;
    if (chunk.state != State::kInFlight)
        return; // a twin already completed (or abandoned) it
    if (chunk.outstanding > 0)
        return; // a stolen twin is still working on it
    if (chunk.dispatchCount >= maxDispatch_) {
        chunk.state = State::kAbandoned;
        ++abandoned_;
        return;
    }
    chunk.state = State::kPending;
    pending_.push_back(chunk_id);
    ++requeued_;
}

bool
ShardPlanner::done() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return itemsDone_ == itemCount_;
}

bool
ShardPlanner::settled() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Chunk &chunk : chunks_) {
        if (chunk.state == State::kPending ||
            chunk.state == State::kInFlight)
            return false;
    }
    return true;
}

std::vector<std::size_t>
ShardPlanner::remainingItems() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < itemCount_; ++i) {
        if (!itemDone_[i])
            out.push_back(i);
    }
    return out;
}

std::size_t
ShardPlanner::chunkCount() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return chunks_.size();
}

std::uint64_t
ShardPlanner::dispatched() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return dispatched_;
}

std::uint64_t
ShardPlanner::stolen() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stolen_;
}

std::uint64_t
ShardPlanner::requeued() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return requeued_;
}

std::uint64_t
ShardPlanner::abandoned() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return abandoned_;
}

std::uint64_t
ShardPlanner::duplicateItems() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return duplicateItems_;
}

} // namespace dist
} // namespace smtflex
