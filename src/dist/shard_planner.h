/**
 * @file
 * smtflex::dist — ShardPlanner: deterministic partitioning of a sweep's
 * index grid into chunks, plus the work-stealing redistribution that
 * keeps a fleet busy when one backend is slow or dead.
 *
 * The planner owns abstract item indices [0, itemCount); the coordinator
 * maps them onto sweep rows. Chunks are contiguous index ranges, so the
 * partition is a pure function of (itemCount, chunkSize) — every
 * coordinator instance plans the same chunks for the same sweep.
 *
 * Lifecycle of a chunk:
 *
 *   Pending ──claim──▶ InFlight ──complete──▶ Done
 *      ▲                  │  │
 *      └────release───────┘  └─claim (steal, after stealAfter)─▶ InFlight
 *
 * A straggling InFlight chunk may be claimed again (a steal); the chunk
 * is then outstanding on two backends and whichever finishes first wins.
 * complete() returns only the items not already completed — the losing
 * twin's items count as duplicates, so each index is *reported* exactly
 * once no matter how often its chunk was dispatched. release() returns a
 * failed dispatch; once a chunk has burned through its dispatch budget it
 * is abandoned (the caller computes those items locally) so a poisoned
 * chunk can never spin the fleet forever.
 *
 * All methods are thread-safe (one mutex; the planner is coordination
 * state, not a hot path).
 */

#ifndef SMTFLEX_DIST_SHARD_PLANNER_H
#define SMTFLEX_DIST_SHARD_PLANNER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace smtflex {
namespace dist {

/** One claimed unit of work: a contiguous slice of item indices. */
struct ShardChunk
{
    std::size_t id = 0;
    std::vector<std::size_t> items;
    /** Dispatches of this chunk so far (1 = first claim, >1 = steal). */
    unsigned dispatchCount = 0;
};

class ShardPlanner
{
  public:
    /**
     * Partition @p item_count indices into contiguous chunks of
     * @p chunk_size items (the last chunk takes the remainder).
     * @param max_dispatch dispatch budget per chunk; a chunk released
     * after its budget is spent is abandoned instead of requeued.
     */
    ShardPlanner(std::size_t item_count, std::size_t chunk_size,
                 unsigned max_dispatch = 3);

    /**
     * Claim work: the oldest Pending chunk, or — when none is pending —
     * steal the longest-in-flight chunk that has been out for at least
     * @p steal_after and still has dispatch budget. Returns nullopt when
     * nothing is claimable right now (the caller should back off and
     * re-check, or stop once settled()).
     */
    std::optional<ShardChunk> claim(std::chrono::milliseconds steal_after);

    /**
     * Report a finished dispatch of @p chunk_id. Returns the items this
     * completion newly finished; items already completed by a winning
     * twin are excluded and counted as duplicates.
     */
    std::vector<std::size_t> complete(std::size_t chunk_id);

    /** Return a failed dispatch of @p chunk_id: requeue it while budget
     * remains, abandon it otherwise. No-op if the chunk completed. */
    void release(std::size_t chunk_id);

    /** Every item completed. */
    bool done() const;

    /** No chunk is Pending or InFlight — i.e. claim() can never return
     * work again. Done or abandoned-with-leftovers; the caller owns any
     * items in remainingItems(). */
    bool settled() const;

    /** Items not (yet) completed, in index order. */
    std::vector<std::size_t> remainingItems() const;

    std::size_t itemCount() const { return itemCount_; }
    std::size_t chunkCount() const;

    // ---- counters (for dist.* telemetry) ----
    std::uint64_t dispatched() const;  ///< claims, steals included
    std::uint64_t stolen() const;      ///< claims of an InFlight chunk
    std::uint64_t requeued() const;    ///< releases back to Pending
    std::uint64_t abandoned() const;   ///< chunks past their budget
    std::uint64_t duplicateItems() const; ///< items reported twice

  private:
    enum class State : std::uint8_t { kPending, kInFlight, kDone,
                                      kAbandoned };

    struct Chunk
    {
        std::vector<std::size_t> items;
        State state = State::kPending;
        unsigned dispatchCount = 0;
        unsigned outstanding = 0; ///< dispatches not yet reported back
        std::chrono::steady_clock::time_point firstDispatch;
    };

    mutable std::mutex mutex_;
    std::size_t itemCount_ = 0;
    unsigned maxDispatch_ = 3;
    std::vector<Chunk> chunks_;
    std::deque<std::size_t> pending_;
    std::vector<bool> itemDone_;
    std::size_t itemsDone_ = 0;

    std::uint64_t dispatched_ = 0;
    std::uint64_t stolen_ = 0;
    std::uint64_t requeued_ = 0;
    std::uint64_t abandoned_ = 0;
    std::uint64_t duplicateItems_ = 0;
};

} // namespace dist
} // namespace smtflex

#endif // SMTFLEX_DIST_SHARD_PLANNER_H
