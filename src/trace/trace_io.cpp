#include "trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/log.h"

namespace smtflex {

namespace {

constexpr const char *kMagic = "smtflex-trace";
constexpr int kVersion = 1;

} // namespace

void
writeTrace(std::ostream &out, TraceGenerator &gen, InstrCount count)
{
    if (count == 0)
        fatal("writeTrace: empty trace requested");
    out << kMagic << " " << kVersion << " " << count << "\n";
    for (InstrCount i = 0; i < count; ++i) {
        const MicroOp op = gen.next();
        out << static_cast<int>(op.cls) << " " << (op.mispredict ? 1 : 0)
            << " " << (op.fetchLineCross ? 1 : 0) << " "
            << static_cast<int>(op.depDist) << " " << std::hex << op.addr
            << " " << op.fetchAddr << std::dec << "\n";
    }
    if (!out)
        fatal("writeTrace: stream failure");
}

std::vector<MicroOp>
readTrace(std::istream &in)
{
    std::string magic;
    int version = 0;
    InstrCount count = 0;
    if (!(in >> magic >> version >> count) || magic != kMagic)
        fatal("readTrace: not a smtflex trace");
    if (version != kVersion)
        fatal("readTrace: unsupported version ", version);
    if (count == 0)
        fatal("readTrace: empty trace");

    std::vector<MicroOp> ops;
    ops.reserve(count);
    for (InstrCount i = 0; i < count; ++i) {
        int cls = 0, mispredict = 0, cross = 0, dep = 0;
        Addr addr = 0, fetch = 0;
        if (!(in >> cls >> mispredict >> cross >> dep >> std::hex >> addr >>
              fetch >> std::dec))
            fatal("readTrace: truncated at op ", i);
        if (cls < 0 || cls >= kNumOpClasses)
            fatal("readTrace: bad op class ", cls, " at op ", i);
        if (dep < 0 || dep > 255)
            fatal("readTrace: bad dependency distance at op ", i);
        MicroOp op;
        op.cls = static_cast<OpClass>(cls);
        op.mispredict = mispredict != 0;
        op.fetchLineCross = cross != 0;
        op.depDist = static_cast<std::uint8_t>(dep);
        op.addr = addr;
        op.fetchAddr = fetch;
        ops.push_back(op);
    }
    return ops;
}

TraceReplayThread::TraceReplayThread(const std::vector<MicroOp> &ops,
                                     bool loop)
    : ops_(&ops), loop_(loop)
{
    if (ops.empty())
        fatal("TraceReplayThread: empty trace");
}

MicroOp
TraceReplayThread::nextOp()
{
    const MicroOp op = (*ops_)[next_];
    ++next_;
    if (next_ >= ops_->size() && loop_)
        next_ = 0;
    return op;
}

bool
TraceReplayThread::hasWork()
{
    return loop_ || next_ < ops_->size();
}

void
TraceReplayThread::onRetire(Cycle now)
{
    ++retired_;
    if (retired_ == ops_->size())
        finishCycle_ = now;
}

} // namespace smtflex
