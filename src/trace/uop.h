/**
 * @file
 * The micro-operation record produced by the trace generator and consumed by
 * the core models.
 */

#ifndef SMTFLEX_TRACE_UOP_H
#define SMTFLEX_TRACE_UOP_H

#include <cstdint>

#include "common/types.h"

namespace smtflex {

/** Functional classes of micro-operations (Table 1 functional units). */
enum class OpClass : std::uint8_t {
    kIntAlu,  ///< simple integer ALU op (1 cycle)
    kIntMul,  ///< integer multiply/divide (long latency, dedicated unit)
    kFpOp,    ///< floating-point op (FP unit)
    kLoad,    ///< memory read through the data cache hierarchy
    kStore,   ///< memory write (write-allocate, store buffer)
    kBranch,  ///< control transfer, possibly mispredicted
};

/** Number of distinct OpClass values. */
inline constexpr int kNumOpClasses = 6;

/** Lower-case name of an op class, usable as a metric-path segment
 * (`core.0.dispatch.int_alu`). */
inline const char *
opClassMetricName(OpClass cls)
{
    switch (cls) {
      case OpClass::kIntAlu:
        return "int_alu";
      case OpClass::kIntMul:
        return "int_mul";
      case OpClass::kFpOp:
        return "fp";
      case OpClass::kLoad:
        return "load";
      case OpClass::kStore:
        return "store";
      case OpClass::kBranch:
        return "branch";
    }
    return "unknown";
}

/**
 * One dynamic micro-operation.
 *
 * Ops are generated on the fly (no trace storage). Register dependencies are
 * encoded as a distance in dynamic ops to the producer (0 = independent),
 * which is all the core timing models need.
 */
struct MicroOp
{
    OpClass cls = OpClass::kIntAlu;
    /** True for a mispredicted branch (front-end redirect on resolve). */
    bool mispredict = false;
    /** True when this op is the first on a new instruction-cache line. */
    bool fetchLineCross = false;
    /** Distance (in dynamic ops) to the producer; 0 means no dependency. */
    std::uint8_t depDist = 0;
    /** Data address for loads/stores; 0 otherwise. */
    Addr addr = 0;
    /** I-cache line address, valid when fetchLineCross is set. */
    Addr fetchAddr = 0;

    bool isMem() const
    {
        return cls == OpClass::kLoad || cls == OpClass::kStore;
    }
};

} // namespace smtflex

#endif // SMTFLEX_TRACE_UOP_H
