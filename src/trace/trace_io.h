/**
 * @file
 * Micro-op trace capture and replay.
 *
 * The synthetic generator is normally used directly, but trace files make
 * runs exchangeable and enable trace-driven studies (the workflow Sniper
 * users know): capture a thread's dynamic stream once, replay it on any
 * chip configuration.
 *
 * Format: a small text header (magic, version, op count) followed by one
 * op per line: `cls mispredict fetchcross depdist addr fetchaddr`
 * (hex addresses). Simple, diffable, and robust across platforms.
 */

#ifndef SMTFLEX_TRACE_TRACE_IO_H
#define SMTFLEX_TRACE_TRACE_IO_H

#include <iosfwd>
#include <vector>

#include "trace/tracegen.h"
#include "trace/uop.h"
#include "uarch/thread_source.h"

namespace smtflex {

/** Write @p count ops from @p gen to @p out. */
void writeTrace(std::ostream &out, TraceGenerator &gen, InstrCount count);

/** Read a whole trace file; fatal() on malformed input. */
std::vector<MicroOp> readTrace(std::istream &in);

/**
 * A ThreadSource replaying a recorded trace, optionally in a loop.
 * Retires are counted so drivers can wait for completion.
 */
class TraceReplayThread : public ThreadSource
{
  public:
    /**
     * @param ops the recorded trace (owned by the caller, must outlive
     *        the thread).
     * @param loop restart from the beginning when exhausted.
     */
    TraceReplayThread(const std::vector<MicroOp> &ops, bool loop);

    MicroOp nextOp() override;
    bool hasWork() override;
    void onRetire(Cycle now) override;

    InstrCount retired() const { return retired_; }
    /** All ops issued at least once and retired. */
    bool finishedOnePass() const { return retired_ >= ops_->size(); }
    Cycle finishCycle() const { return finishCycle_; }

  private:
    const std::vector<MicroOp> *ops_;
    bool loop_;
    std::size_t next_ = 0;
    InstrCount retired_ = 0;
    Cycle finishCycle_ = kCycleNever;
};

} // namespace smtflex

#endif // SMTFLEX_TRACE_TRACE_IO_H
