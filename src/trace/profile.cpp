#include "profile.h"

#include <cmath>

#include "common/log.h"

namespace smtflex {

double
BenchmarkProfile::memFootprintBeyond(std::uint64_t capacity_bytes) const
{
    double frac = 0.0;
    for (const auto &region : regions) {
        if (region.bytes > capacity_bytes)
            frac += region.probability;
    }
    return frac;
}

void
BenchmarkProfile::validate() const
{
    if (name.empty())
        fatal("BenchmarkProfile: empty name");
    if (std::abs(mix.sum() - 1.0) > 1e-6)
        fatal("BenchmarkProfile ", name, ": instruction mix sums to ",
              mix.sum(), ", expected 1.0");
    if (meanDepDist < 1.0)
        fatal("BenchmarkProfile ", name, ": meanDepDist must be >= 1");
    if (depNoneProb < 0.0 || depNoneProb > 1.0)
        fatal("BenchmarkProfile ", name, ": depNoneProb out of range");
    if (branchMispredictRate < 0.0 || branchMispredictRate > 1.0)
        fatal("BenchmarkProfile ", name, ": mispredict rate out of range");
    if (regions.empty() && mix.load + mix.store > 0.0)
        fatal("BenchmarkProfile ", name, ": memory ops but no regions");
    double region_prob = 0.0;
    for (const auto &region : regions) {
        if (region.bytes < kLineSize)
            fatal("BenchmarkProfile ", name, ": region smaller than a line");
        region_prob += region.probability;
    }
    if (!regions.empty() && std::abs(region_prob - 1.0) > 1e-6)
        fatal("BenchmarkProfile ", name, ": region probabilities sum to ",
              region_prob, ", expected 1.0");
    if (accessSkew < 1 || accessSkew > 6)
        fatal("BenchmarkProfile ", name, ": accessSkew out of range");
}

} // namespace smtflex
