/**
 * @file
 * Deterministic synthetic micro-op stream generation from a
 * BenchmarkProfile.
 */

#ifndef SMTFLEX_TRACE_TRACEGEN_H
#define SMTFLEX_TRACE_TRACEGEN_H

#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/serial.h"
#include "common/rng.h"
#include "common/types.h"
#include "trace/profile.h"
#include "trace/uop.h"

namespace smtflex {

/**
 * Address-space placement for one generated thread.
 *
 * Multi-program threads get disjoint private bases (no sharing). Threads of
 * a multi-threaded application additionally direct a fraction of their data
 * accesses to a region base shared by all threads of the application, which
 * models shared data structures in the LLC.
 */
struct AddressSpace
{
    /** Base of this thread's private data segment. */
    Addr privateBase = 0;
    /** Base of the application-wide shared data segment. */
    Addr sharedBase = 0;
    /** Probability that a data access targets the shared segment. */
    double sharedProb = 0.0;

    /** Disjoint private placement for a globally unique thread id. */
    static AddressSpace forThread(std::uint32_t global_thread_id);
};

/**
 * Generates the dynamic micro-op stream of one simulated software thread.
 *
 * Generation is purely incremental (O(1) state per region) and fully
 * deterministic given (profile, seed, stream).
 */
class TraceGenerator
{
  public:
    TraceGenerator(const BenchmarkProfile &profile, std::uint64_t seed,
                   std::uint64_t stream, const AddressSpace &space);

    /** Produce the next micro-op. */
    MicroOp next();

    /** Number of ops generated so far. */
    InstrCount generated() const { return generated_; }

    const BenchmarkProfile &profile() const { return *profile_; }

    /**
     * Reset dynamic state to the initial state (same stream will be
     * regenerated). Used when a program restarts after finishing its
     * instruction budget, matching the paper's methodology.
     */
    void reset();

    /**
     * Serialize/restore the dynamic generation state (RNG, streaming
     * cursors, fetch address, op count). A restored generator continues
     * the exact op sequence of the saved one; the static profile/CDF
     * state comes from construction and is not serialized.
     */
    void saveState(ckpt::Writer &w) const
    {
        for (const std::uint64_t s : rng_.state())
            w.u64(s);
        w.u32(static_cast<std::uint32_t>(streamCursor_.size()));
        for (const std::uint64_t c : streamCursor_)
            w.u64(c);
        w.u64(fetchAddr_);
        w.u64(generated_);
    }
    void loadState(ckpt::Reader &r)
    {
        std::array<std::uint64_t, 4> s{};
        for (std::uint64_t &v : s)
            v = r.u64();
        rng_.setState(s);
        r.count(streamCursor_.size(), "trace stream cursors");
        for (std::uint64_t &c : streamCursor_)
            c = r.u64();
        fetchAddr_ = r.u64();
        generated_ = r.u64();
    }

    /**
     * Enumerate the line addresses of the thread's cache-resident working
     * set for functional warmup: every non-streaming data region of at
     * most @p max_region_bytes, followed by the code footprint. Streaming
     * and over-sized regions are skipped — cold misses are their steady
     * state. Lines are visited largest-region-first so that LRU
     * installation leaves the hottest lines most recently used.
     */
    static void
    forEachResidentLine(const BenchmarkProfile &profile,
                        const AddressSpace &space,
                        std::uint64_t max_region_bytes,
                        const std::function<void(Addr, bool)> &visit);

  private:
    Addr regionBase(std::size_t region_idx, bool shared) const;
    Addr nextDataAddr();

    const BenchmarkProfile *profile_;
    std::uint64_t seed_;
    std::uint64_t stream_;
    AddressSpace space_;

    Rng rng_;
    /** Per-region streaming cursors (private copy of region walk state). */
    std::vector<std::uint64_t> streamCursor_;
    /** Current fetch address. */
    Addr fetchAddr_ = 0;
    /** Cumulative class thresholds derived from the mix. */
    double cdfLoad_, cdfStore_, cdfIntAlu_, cdfIntMul_, cdfFp_;
    InstrCount generated_ = 0;
};

} // namespace smtflex

#endif // SMTFLEX_TRACE_TRACEGEN_H
