/**
 * @file
 * Registry of the 12 SPEC-CPU2006-like benchmark profiles used for the
 * multi-program experiments (paper Section 3.2).
 *
 * The paper selects 12 benchmark-input pairs covering the full range of
 * relative performance across the big/medium/small core types. Our synthetic
 * profiles are constructed to span the same axes:
 *  - bandwidth-bound streaming (libquantum, lbm, milc),
 *  - DRAM-latency-bound pointer chasing (mcf),
 *  - cache-capacity-sensitive (soplex, h264ref),
 *  - ILP-rich compute-bound (calculix, hmmer, gamess, tonto),
 *  - branchy low-ILP integer (gobmk, sjeng).
 */

#ifndef SMTFLEX_TRACE_SPEC_PROFILES_H
#define SMTFLEX_TRACE_SPEC_PROFILES_H

#include <string>
#include <vector>

#include "trace/profile.h"

namespace smtflex {

/** Names of the 12 selected study profiles, in canonical order. */
const std::vector<std::string> &specBenchmarkNames();

/** Look up a profile by name (selected or extended set); calls fatal()
 * for unknown names. */
const BenchmarkProfile &specProfile(const std::string &name);

/** The 12 selected profiles in canonical order. */
const std::vector<const BenchmarkProfile *> &specProfiles();

/**
 * Names of the full modelled suite (the paper evaluates all 55 SPEC
 * CPU2006 benchmark-input pairs before selecting 12; we model 26
 * benchmarks). Includes the 12 selected ones.
 */
const std::vector<std::string> &specAllBenchmarkNames();

/** All modelled profiles, in canonical order. */
const std::vector<const BenchmarkProfile *> &specAllProfiles();

} // namespace smtflex

#endif // SMTFLEX_TRACE_SPEC_PROFILES_H
