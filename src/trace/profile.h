/**
 * @file
 * Statistical benchmark profiles: the workload-side substitute for SPEC
 * CPU2006 binaries (see DESIGN.md, substitution table).
 *
 * A profile captures the axes that determine relative performance across the
 * paper's three core types: instruction mix, instruction-level parallelism
 * (dependency distances), branch behaviour, code footprint, and a multi-region
 * data working-set model that yields realistic, cache-size-dependent miss
 * rates and memory bandwidth demand.
 */

#ifndef SMTFLEX_TRACE_PROFILE_H
#define SMTFLEX_TRACE_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace smtflex {

/** Dynamic instruction mix; fractions must sum to 1. */
struct InstrMix
{
    double load = 0.0;
    double store = 0.0;
    double intAlu = 0.0;
    double intMul = 0.0;
    double fp = 0.0;
    double branch = 0.0;

    double sum() const
    {
        return load + store + intAlu + intMul + fp + branch;
    }
};

/**
 * One region of the data working set.
 *
 * Random regions model reuse-heavy structures (hit if the region fits in a
 * cache level); streaming regions model sequential sweeps much larger than
 * any cache (every line is touched once, generating bandwidth demand).
 */
struct MemRegion
{
    /** Region size in bytes. */
    std::uint64_t bytes = 0;
    /** Fraction of data accesses that target this region. */
    double probability = 0.0;
    /** Sequential walk (true) vs. skewed random reuse (false). */
    bool streaming = false;
};

/**
 * A complete statistical benchmark profile.
 */
struct BenchmarkProfile
{
    std::string name;
    InstrMix mix;

    /** Mean dependency distance in dynamic ops (>= 1); larger = more ILP. */
    double meanDepDist = 3.0;
    /** Fraction of ops with no register dependency at all. */
    double depNoneProb = 0.25;

    /** Branch misprediction rate (fraction of branches). */
    double branchMispredictRate = 0.01;
    /** Probability a branch is taken (redirects the fetch stream). */
    double branchTakenProb = 0.6;

    /** Instruction-side working set in bytes. */
    std::uint64_t codeFootprint = 16 * 1024;
    /** Fraction of taken jumps that stay inside the hot code region (the
     * rest target the full footprint) — real control flow is heavily
     * clustered, so large-code benchmarks miss the L1I on a minority of
     * jumps, not on nearly all of them. */
    double jumpLocality = 0.9;
    /** Hot code region size in bytes (clamped to codeFootprint). */
    std::uint64_t hotCodeBytes = 16 * 1024;

    /** Data working-set regions; probabilities must sum to 1. */
    std::vector<MemRegion> regions;

    /**
     * Intra-region access concentration for non-streaming regions: line
     * indices are drawn as floor(u^skew * lines), u ~ U[0,1). skew = 1 is
     * uniform; the default 3 reproduces the convex miss-rate curves of
     * real programs — a cache holding fraction f of a region hits about
     * f^(1/3) of its accesses, so small caches retain a useful hot subset
     * instead of missing almost always.
     */
    std::uint32_t accessSkew = 3;

    /**
     * Fraction of data accesses whose target region does not fit in
     * @p capacity_bytes, a cheap proxy for memory intensity used by
     * scheduling heuristics and tests.
     */
    double memFootprintBeyond(std::uint64_t capacity_bytes) const;

    /** Validate invariants; calls fatal() on malformed profiles. */
    void validate() const;
};

} // namespace smtflex

#endif // SMTFLEX_TRACE_PROFILE_H
