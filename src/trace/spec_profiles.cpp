#include "spec_profiles.h"

#include <map>

#include "common/log.h"

namespace smtflex {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

BenchmarkProfile
makeProfile(const std::string &name, InstrMix mix, double dep_dist,
            double dep_none, double mispredict, std::uint64_t code_bytes,
            std::vector<MemRegion> regions)
{
    BenchmarkProfile profile;
    profile.name = name;
    profile.mix = mix;
    profile.meanDepDist = dep_dist;
    profile.depNoneProb = dep_none;
    profile.branchMispredictRate = mispredict;
    profile.codeFootprint = code_bytes;
    profile.regions = std::move(regions);
    profile.validate();
    return profile;
}

std::map<std::string, BenchmarkProfile>
buildRegistry()
{
    std::map<std::string, BenchmarkProfile> reg;

    // Bandwidth-bound: small hot set plus a huge streaming sweep. High ILP
    // (vectorisable loops), nearly perfect branches. Memory bus saturates at
    // high thread counts, flattening all configurations (paper Fig. 4b).
    reg["libquantum"] = makeProfile(
        "libquantum",
        {.load = 0.24, .store = 0.08, .intAlu = 0.47, .intMul = 0.01,
         .fp = 0.05, .branch = 0.15},
        6.0, 0.45, 0.002, 8 * kKiB,
        {{4 * kKiB, 0.40, false}, {64 * kMiB, 0.60, true}});

    // DRAM-latency-bound pointer chasing: large random region, low ILP.
    reg["mcf"] = makeProfile(
        "mcf",
        {.load = 0.32, .store = 0.09, .intAlu = 0.39, .intMul = 0.01,
         .fp = 0.00, .branch = 0.19},
        2.2, 0.15, 0.012, 16 * kKiB,
        {{16 * kKiB, 0.86, false}, {2 * kMiB, 0.04, false},
         {256 * kMiB, 0.10, false}});

    // FP streaming with moderate reuse.
    reg["milc"] = makeProfile(
        "milc",
        {.load = 0.29, .store = 0.12, .intAlu = 0.15, .intMul = 0.00,
         .fp = 0.36, .branch = 0.08},
        5.0, 0.40, 0.003, 12 * kKiB,
        {{32 * kKiB, 0.55, false}, {48 * kMiB, 0.45, true}});

    // Heavily streaming FP stencil, very high ILP.
    reg["lbm"] = makeProfile(
        "lbm",
        {.load = 0.26, .store = 0.16, .intAlu = 0.12, .intMul = 0.00,
         .fp = 0.40, .branch = 0.06},
        7.0, 0.50, 0.001, 6 * kKiB,
        {{8 * kKiB, 0.40, false}, {128 * kMiB, 0.60, true}});

    // Compute-bound FP with a cache-resident working set (paper Fig. 4a
    // behaviour: gains a lot from aggregate execution resources).
    reg["tonto"] = makeProfile(
        "tonto",
        {.load = 0.22, .store = 0.10, .intAlu = 0.17, .intMul = 0.02,
         .fp = 0.42, .branch = 0.07},
        3.2, 0.25, 0.004, 48 * kKiB,
        {{24 * kKiB, 0.91, false}, {96 * kKiB, 0.085, false},
         {1 * kMiB, 0.004, false}, {16 * kMiB, 0.001, false}});

    // ILP-rich FP solver, cache friendly: the wide core shines.
    reg["calculix"] = makeProfile(
        "calculix",
        {.load = 0.25, .store = 0.08, .intAlu = 0.20, .intMul = 0.01,
         .fp = 0.38, .branch = 0.08},
        4.5, 0.35, 0.004, 32 * kKiB,
        {{16 * kKiB, 0.90, false}, {96 * kKiB, 0.096, false},
         {2 * kMiB, 0.003, false}, {8 * kMiB, 0.001, false}});

    // Cache-friendly FP chemistry code.
    reg["gamess"] = makeProfile(
        "gamess",
        {.load = 0.26, .store = 0.09, .intAlu = 0.21, .intMul = 0.01,
         .fp = 0.35, .branch = 0.08},
        3.0, 0.22, 0.006, 64 * kKiB,
        {{32 * kKiB, 0.945, false}, {96 * kKiB, 0.05, false},
         {1 * kMiB, 0.005, false}});

    // Integer video encoder: medium working set, some multiplies,
    // moderately cache-capacity sensitive.
    reg["h264ref"] = makeProfile(
        "h264ref",
        {.load = 0.28, .store = 0.12, .intAlu = 0.42, .intMul = 0.04,
         .fp = 0.02, .branch = 0.12},
        3.5, 0.28, 0.008, 96 * kKiB,
        {{48 * kKiB, 0.82, false}, {128 * kKiB, 0.165, false},
         {512 * kKiB, 0.012, false}, {4 * kMiB, 0.003, false}});

    // Very cache friendly, ILP-rich integer scoring loops.
    reg["hmmer"] = makeProfile(
        "hmmer",
        {.load = 0.30, .store = 0.15, .intAlu = 0.43, .intMul = 0.01,
         .fp = 0.00, .branch = 0.11},
        5.0, 0.40, 0.003, 16 * kKiB,
        {{24 * kKiB, 0.97, false}, {96 * kKiB, 0.03, false}});

    // Branchy game-tree search: low ILP, large code footprint, mispredicts.
    // The in-order small core is relatively competitive here.
    reg["gobmk"] = makeProfile(
        "gobmk",
        {.load = 0.27, .store = 0.12, .intAlu = 0.40, .intMul = 0.01,
         .fp = 0.00, .branch = 0.20},
        2.5, 0.18, 0.025, 256 * kKiB,
        {{32 * kKiB, 0.93, false}, {128 * kKiB, 0.06, false},
         {512 * kKiB, 0.008, false}, {8 * kMiB, 0.002, false}});

    // Branchy chess search, slightly better behaved than gobmk.
    reg["sjeng"] = makeProfile(
        "sjeng",
        {.load = 0.24, .store = 0.09, .intAlu = 0.48, .intMul = 0.01,
         .fp = 0.00, .branch = 0.18},
        2.8, 0.20, 0.030, 128 * kKiB,
        {{48 * kKiB, 0.94, false}, {128 * kKiB, 0.047, false},
         {512 * kKiB, 0.011, false}, {8 * kMiB, 0.002, false}});

    // Cache-capacity-sensitive LP solver: a mid-size working set that fits
    // in a big core's private hierarchy + LLC share but thrashes small
    // private caches. Distinguishes 4B (large private caches, smart SMT
    // co-scheduling) from 20s.
    reg["soplex"] = makeProfile(
        "soplex",
        {.load = 0.30, .store = 0.08, .intAlu = 0.22, .intMul = 0.01,
         .fp = 0.25, .branch = 0.14},
        3.5, 0.28, 0.009, 64 * kKiB,
        {{64 * kKiB, 0.90, false}, {512 * kKiB, 0.085, false},
         {16 * kMiB, 0.015, false}});

    // ---- The extended suite (not part of the 12-benchmark selection; the
    // paper characterises the full SPEC CPU2006 suite before selecting).

    // Perl interpreter: branchy, large code, cache-resident data.
    reg["perlbench"] = makeProfile(
        "perlbench",
        {.load = 0.27, .store = 0.13, .intAlu = 0.42, .intMul = 0.01,
         .fp = 0.00, .branch = 0.17},
        2.6, 0.20, 0.015, 512 * kKiB,
        {{48 * kKiB, 0.92, false}, {256 * kKiB, 0.06, false},
         {2 * kMiB, 0.02, false}});

    // Block compressor: mid-size working window.
    reg["bzip2"] = makeProfile(
        "bzip2",
        {.load = 0.26, .store = 0.11, .intAlu = 0.49, .intMul = 0.01,
         .fp = 0.00, .branch = 0.13},
        3.2, 0.25, 0.012, 64 * kKiB,
        {{64 * kKiB, 0.70, false}, {1 * kMiB, 0.28, false},
         {8 * kMiB, 0.02, false}});

    // Compiler: huge code footprint, L2-hungry data structures.
    reg["gcc"] = makeProfile(
        "gcc",
        {.load = 0.26, .store = 0.14, .intAlu = 0.40, .intMul = 0.01,
         .fp = 0.00, .branch = 0.19},
        2.5, 0.20, 0.014, 512 * kKiB,
        {{64 * kKiB, 0.80, false}, {2 * kMiB, 0.17, false},
         {16 * kMiB, 0.03, false}});

    // FP streaming solvers of varying intensity.
    reg["bwaves"] = makeProfile(
        "bwaves",
        {.load = 0.28, .store = 0.09, .intAlu = 0.12, .intMul = 0.00,
         .fp = 0.44, .branch = 0.07},
        6.0, 0.45, 0.002, 8 * kKiB,
        {{16 * kKiB, 0.45, false}, {96 * kMiB, 0.55, true}});
    reg["zeusmp"] = makeProfile(
        "zeusmp",
        {.load = 0.26, .store = 0.11, .intAlu = 0.15, .intMul = 0.01,
         .fp = 0.41, .branch = 0.06},
        5.0, 0.40, 0.003, 16 * kKiB,
        {{32 * kKiB, 0.75, false}, {16 * kMiB, 0.25, true}});
    reg["cactusADM"] = makeProfile(
        "cactusADM",
        {.load = 0.30, .store = 0.12, .intAlu = 0.10, .intMul = 0.00,
         .fp = 0.42, .branch = 0.06},
        6.5, 0.50, 0.001, 8 * kKiB,
        {{16 * kKiB, 0.50, false}, {48 * kMiB, 0.50, true}});
    reg["leslie3d"] = makeProfile(
        "leslie3d",
        {.load = 0.28, .store = 0.11, .intAlu = 0.14, .intMul = 0.00,
         .fp = 0.41, .branch = 0.06},
        5.5, 0.42, 0.002, 12 * kKiB,
        {{24 * kKiB, 0.60, false}, {32 * kMiB, 0.40, true}});
    reg["GemsFDTD"] = makeProfile(
        "GemsFDTD",
        {.load = 0.30, .store = 0.12, .intAlu = 0.12, .intMul = 0.00,
         .fp = 0.40, .branch = 0.06},
        5.5, 0.42, 0.002, 12 * kKiB,
        {{16 * kKiB, 0.55, false}, {64 * kMiB, 0.45, true}});

    // FP compute-bound, cache-resident.
    reg["gromacs"] = makeProfile(
        "gromacs",
        {.load = 0.27, .store = 0.09, .intAlu = 0.19, .intMul = 0.02,
         .fp = 0.37, .branch = 0.06},
        3.8, 0.30, 0.005, 32 * kKiB,
        {{24 * kKiB, 0.93, false}, {192 * kKiB, 0.06, false},
         {1 * kMiB, 0.01, false}});
    reg["namd"] = makeProfile(
        "namd",
        {.load = 0.25, .store = 0.07, .intAlu = 0.21, .intMul = 0.01,
         .fp = 0.41, .branch = 0.05},
        4.2, 0.32, 0.003, 24 * kKiB,
        {{32 * kKiB, 0.96, false}, {192 * kKiB, 0.04, false}});
    reg["povray"] = makeProfile(
        "povray",
        {.load = 0.28, .store = 0.10, .intAlu = 0.25, .intMul = 0.01,
         .fp = 0.25, .branch = 0.11},
        2.9, 0.24, 0.012, 96 * kKiB,
        {{32 * kKiB, 0.95, false}, {512 * kKiB, 0.05, false}});

    // Integer pointer chasers.
    reg["omnetpp"] = makeProfile(
        "omnetpp",
        {.load = 0.31, .store = 0.12, .intAlu = 0.36, .intMul = 0.01,
         .fp = 0.00, .branch = 0.20},
        2.3, 0.16, 0.012, 96 * kKiB,
        {{32 * kKiB, 0.72, false}, {1 * kMiB, 0.20, false},
         {32 * kMiB, 0.08, false}});
    reg["astar"] = makeProfile(
        "astar",
        {.load = 0.29, .store = 0.09, .intAlu = 0.42, .intMul = 0.00,
         .fp = 0.00, .branch = 0.20},
        2.4, 0.18, 0.020, 32 * kKiB,
        {{32 * kKiB, 0.85, false}, {512 * kKiB, 0.10, false},
         {16 * kMiB, 0.05, false}});
    reg["xalancbmk"] = makeProfile(
        "xalancbmk",
        {.load = 0.30, .store = 0.10, .intAlu = 0.38, .intMul = 0.01,
         .fp = 0.00, .branch = 0.21},
        2.5, 0.18, 0.013, 512 * kKiB,
        {{48 * kKiB, 0.80, false}, {1 * kMiB, 0.17, false},
         {8 * kMiB, 0.03, false}});

    return reg;
}


const std::map<std::string, BenchmarkProfile> &
registry()
{
    static const std::map<std::string, BenchmarkProfile> reg = buildRegistry();
    return reg;
}

} // namespace

const std::vector<std::string> &
specBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "calculix", "gamess",  "gobmk", "h264ref",    "hmmer", "lbm",
        "libquantum", "mcf",   "milc",  "sjeng",      "soplex", "tonto",
    };
    return names;
}

const BenchmarkProfile &
specProfile(const std::string &name)
{
    const auto &reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end())
        fatal("specProfile: unknown benchmark '", name, "'");
    return it->second;
}

const std::vector<const BenchmarkProfile *> &
specProfiles()
{
    static const std::vector<const BenchmarkProfile *> all = [] {
        std::vector<const BenchmarkProfile *> v;
        for (const auto &name : specBenchmarkNames())
            v.push_back(&specProfile(name));
        return v;
    }();
    return all;
}

const std::vector<std::string> &
specAllBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all;
        for (const auto &[name, profile] : registry())
            all.push_back(name);
        return all;
    }();
    return names;
}

const std::vector<const BenchmarkProfile *> &
specAllProfiles()
{
    static const std::vector<const BenchmarkProfile *> all = [] {
        std::vector<const BenchmarkProfile *> v;
        for (const auto &name : specAllBenchmarkNames())
            v.push_back(&specProfile(name));
        return v;
    }();
    return all;
}

} // namespace smtflex

