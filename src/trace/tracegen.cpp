#include "tracegen.h"

#include <algorithm>
#include <cassert>

namespace smtflex {

namespace {

/** Private segments are spaced far apart so programs never share lines. */
constexpr Addr kPrivateStride = Addr{1} << 36;
constexpr Addr kPrivateStart = Addr{1} << 40;
/** Regions inside a segment are spaced by 1 GiB (covers every region). */
constexpr Addr kRegionStride = Addr{1} << 30;

/** Stateless 64-bit mix (final avalanche of MurmurHash3). */
std::uint64_t
mix64(std::uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

/**
 * Base address of region @p region_idx inside the segment at
 * @p segment_base, jittered by a deterministic line-aligned offset.
 *
 * Without the jitter every segment and region starts on a 2^30-byte
 * boundary, so the same regions of all threads map onto identical cache
 * sets and overflow the associativity of the shared caches long before
 * their capacity — a pure artefact of the synthetic layout. Real loaders
 * and heaps do not align allocations like that.
 */
Addr
jitteredRegionBase(Addr segment_base, std::size_t region_idx)
{
    const std::uint64_t h =
        mix64(segment_base ^ ((region_idx + 1) * 0x9e3779b97f4a7c15ULL));
    const Addr jitter_lines = h % ((Addr{1} << 29) / kLineSize);
    return segment_base + (region_idx + 1) * kRegionStride +
        jitter_lines * kLineSize;
}

} // namespace

AddressSpace
AddressSpace::forThread(std::uint32_t global_thread_id)
{
    AddressSpace space;
    // The per-thread jitter decorrelates the code segments' cache sets.
    const Addr jitter =
        (mix64(global_thread_id + 0x5eedULL) % (Addr{1} << 14)) * kLineSize;
    space.privateBase =
        kPrivateStart + global_thread_id * kPrivateStride + jitter;
    space.sharedBase = 0;
    space.sharedProb = 0.0;
    return space;
}

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t seed, std::uint64_t stream,
                               const AddressSpace &space)
    : profile_(&profile), seed_(seed), stream_(stream), space_(space),
      rng_(seed, stream), streamCursor_(profile.regions.size(), 0)
{
    profile.validate();
    const InstrMix &mix = profile.mix;
    cdfLoad_ = mix.load;
    cdfStore_ = cdfLoad_ + mix.store;
    cdfIntAlu_ = cdfStore_ + mix.intAlu;
    cdfIntMul_ = cdfIntAlu_ + mix.intMul;
    cdfFp_ = cdfIntMul_ + mix.fp;
    fetchAddr_ = space_.privateBase;
}

void
TraceGenerator::reset()
{
    rng_ = Rng(seed_, stream_);
    std::fill(streamCursor_.begin(), streamCursor_.end(), 0);
    fetchAddr_ = space_.privateBase;
    generated_ = 0;
}

Addr
TraceGenerator::regionBase(std::size_t region_idx, bool shared) const
{
    // Data regions sit one-or-more strides above the code segment (which
    // occupies the base of the private segment), at jittered offsets.
    return jitteredRegionBase(shared ? space_.sharedBase
                                     : space_.privateBase,
                              region_idx);
}

Addr
TraceGenerator::nextDataAddr()
{
    const auto &regions = profile_->regions;
    assert(!regions.empty());

    // Pick a region by probability.
    double u = rng_.nextDouble();
    std::size_t idx = 0;
    for (; idx + 1 < regions.size(); ++idx) {
        if (u < regions[idx].probability)
            break;
        u -= regions[idx].probability;
    }
    const MemRegion &region = regions[idx];

    const bool shared =
        space_.sharedProb > 0.0 && rng_.nextBool(space_.sharedProb);

    if (region.streaming) {
        // Sequential word-granularity walk, wrapping at the region end:
        // eight consecutive accesses touch one line before moving on, so a
        // unit-stride sweep misses once per line, as real streaming code
        // does. The walk position is thread-local (streaming data has no
        // reuse), also for shared placements.
        const std::uint64_t words = region.bytes / 8;
        const std::uint64_t word = streamCursor_[idx];
        streamCursor_[idx] = (word + 1) % words;
        return regionBase(idx, shared) + word * 8;
    }
    // Skewed random reuse: accesses concentrate towards the region's low
    // addresses (the "hot end"), giving the convex miss-rate-vs-capacity
    // curves of real code.
    const std::uint64_t lines = region.bytes / kLineSize;
    double u_skewed = rng_.nextDouble();
    double u_pow = u_skewed;
    for (std::uint32_t k = 1; k < profile_->accessSkew; ++k)
        u_pow *= u_skewed;
    const auto line = static_cast<std::uint64_t>(
        u_pow * static_cast<double>(lines));
    // Random offset within the line (does not affect cache behaviour but
    // keeps addresses realistic).
    const Addr offset = rng_.nextRange(kLineSize / 8) * 8;
    return regionBase(idx, shared) + std::min(line, lines - 1) * kLineSize +
        offset;
}

void
TraceGenerator::forEachResidentLine(
    const BenchmarkProfile &profile, const AddressSpace &space,
    std::uint64_t max_region_bytes,
    const std::function<void(Addr, bool)> &visit)
{
    // Largest qualifying region first, so the hottest (smallest) regions
    // end up most recently used after installation.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < profile.regions.size(); ++i) {
        const MemRegion &region = profile.regions[i];
        if (!region.streaming && region.bytes <= max_region_bytes)
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return profile.regions[a].bytes > profile.regions[b].bytes;
    });
    for (const std::size_t idx : order) {
        const MemRegion &region = profile.regions[idx];
        // Lines are visited from the cold (high) end down to the hot (low)
        // end, so after LRU installation the hottest lines are the most
        // recently used. Threads with partially shared data touch both
        // placements.
        if (space.sharedProb > 0.0) {
            const Addr shared = jitteredRegionBase(space.sharedBase, idx);
            for (Addr offset = region.bytes; offset >= kLineSize;
                 offset -= kLineSize)
                visit(shared + offset - kLineSize, false);
        }
        if (space.sharedProb < 1.0) {
            const Addr base = jitteredRegionBase(space.privateBase, idx);
            for (Addr offset = region.bytes; offset >= kLineSize;
                 offset -= kLineSize)
                visit(base + offset - kLineSize, false);
        }
    }
    for (Addr offset = 0; offset < profile.codeFootprint;
         offset += kLineSize)
        visit(space.privateBase + offset, true);
}

MicroOp
TraceGenerator::next()
{
    MicroOp op;

    // Instruction class from the mix.
    const double u = rng_.nextDouble();
    if (u < cdfLoad_)
        op.cls = OpClass::kLoad;
    else if (u < cdfStore_)
        op.cls = OpClass::kStore;
    else if (u < cdfIntAlu_)
        op.cls = OpClass::kIntAlu;
    else if (u < cdfIntMul_)
        op.cls = OpClass::kIntMul;
    else if (u < cdfFp_)
        op.cls = OpClass::kFpOp;
    else
        op.cls = OpClass::kBranch;

    // Register dependency distance.
    if (!rng_.nextBool(profile_->depNoneProb)) {
        const std::uint32_t dist = rng_.nextGeometric(profile_->meanDepDist);
        op.depDist = static_cast<std::uint8_t>(std::min<std::uint32_t>(
            dist, 255));
    }

    // Data address.
    if (op.isMem())
        op.addr = nextDataAddr();

    // Fetch stream: sequential 4-byte instructions; taken branches jump to a
    // random location in the code footprint.
    const Addr prev_line = lineAlign(fetchAddr_);
    if (op.cls == OpClass::kBranch) {
        op.mispredict = rng_.nextBool(profile_->branchMispredictRate);
        if (rng_.nextBool(profile_->branchTakenProb)) {
            // Most jumps stay in the hot code region; the rest roam the
            // full footprint (cold paths, rare call targets).
            const std::uint64_t span =
                rng_.nextBool(profile_->jumpLocality)
                    ? std::min(profile_->hotCodeBytes,
                               profile_->codeFootprint)
                    : profile_->codeFootprint;
            const std::uint64_t code_lines =
                std::max<std::uint64_t>(span / kLineSize, 1);
            fetchAddr_ = space_.privateBase +
                rng_.nextRange(code_lines) * kLineSize;
        } else {
            fetchAddr_ += 4;
        }
    } else {
        fetchAddr_ += 4;
    }
    // Keep the linear fetch pointer inside the code footprint.
    if (fetchAddr_ >= space_.privateBase + profile_->codeFootprint)
        fetchAddr_ = space_.privateBase;

    if (lineAlign(fetchAddr_) != prev_line || generated_ == 0) {
        op.fetchLineCross = true;
        op.fetchAddr = lineAlign(fetchAddr_);
    }

    ++generated_;
    return op;
}

} // namespace smtflex
