/**
 * @file
 * The Hill & Marty "Amdahl's Law in the Multicore Era" analytical models
 * (IEEE Computer 2008), which the paper uses as its theoretical foil in
 * Section 6: under Amdahl assumptions, heterogeneous ("asymmetric")
 * multi-cores beat symmetric ones and dynamic multi-cores beat both.
 *
 * The models: a chip has a resource budget of n base-core-equivalents
 * (BCEs); a core built from r BCEs achieves sequential performance
 * perf(r) (typically sqrt(r)). A program has parallel fraction f.
 *
 *  - symmetric:  n/r cores of size r,
 *  - asymmetric: one big core of size r plus (n - r) base cores,
 *  - dynamic:    sequential phases on an r-BCE core, parallel phases on
 *                n base cores.
 *
 * The paper's empirical contribution is precisely that these conclusions
 * flip once the active thread count varies and SMT is on the table; the
 * bench built on this module reproduces the analytical side so the two
 * can be compared.
 */

#ifndef SMTFLEX_ANALYTIC_HILL_MARTY_H
#define SMTFLEX_ANALYTIC_HILL_MARTY_H

#include <cstdint>
#include <functional>

namespace smtflex {

/** Sequential performance of a core built from r base-core-equivalents.
 * Hill & Marty's default assumption is perf(r) = sqrt(r). */
double hillMartyPerf(double r);

/** Parameters of one Hill & Marty evaluation. */
struct HillMartyParams
{
    /** Chip resource budget in base-core equivalents. */
    double budgetBce = 16.0;
    /** Parallel fraction of the workload (Amdahl's f). */
    double parallelFraction = 0.9;
    /** Performance function; defaults to sqrt. */
    std::function<double(double)> perf = &hillMartyPerf;
};

/** Speedup of a symmetric multi-core using cores of @p r BCEs each. */
double symmetricSpeedup(const HillMartyParams &params, double r);

/** Speedup of an asymmetric multi-core: one @p r-BCE core + base cores. */
double asymmetricSpeedup(const HillMartyParams &params, double r);

/** Speedup of a dynamic multi-core morphing between an @p r-BCE
 * sequential core and all-base-cores parallel execution. */
double dynamicSpeedup(const HillMartyParams &params, double r);

/** Best speedup over r in [1, budget] (golden-section + endpoint scan). */
double bestSymmetricSpeedup(const HillMartyParams &params,
                            double *best_r = nullptr);
double bestAsymmetricSpeedup(const HillMartyParams &params,
                             double *best_r = nullptr);
double bestDynamicSpeedup(const HillMartyParams &params,
                          double *best_r = nullptr);

} // namespace smtflex

#endif // SMTFLEX_ANALYTIC_HILL_MARTY_H
