#include "hill_marty.h"

#include <cmath>

#include "common/log.h"

namespace smtflex {

double
hillMartyPerf(double r)
{
    if (r <= 0.0)
        fatal("hillMartyPerf: non-positive resources");
    return std::sqrt(r);
}

namespace {

void
checkParams(const HillMartyParams &params, double r)
{
    if (params.budgetBce < 1.0)
        fatal("HillMarty: budget below one base core");
    if (params.parallelFraction < 0.0 || params.parallelFraction > 1.0)
        fatal("HillMarty: parallel fraction out of range");
    if (r < 1.0 || r > params.budgetBce)
        fatal("HillMarty: core size outside [1, budget]");
    if (!params.perf)
        fatal("HillMarty: no perf function");
}

/** Maximise fn over r in [1, budget] by dense scan (the curves are smooth
 * and cheap; a 4096-point scan is exact enough for reporting). */
double
maximise(const HillMartyParams &params,
         double (*fn)(const HillMartyParams &, double), double *best_r)
{
    double best = 0.0;
    double arg = 1.0;
    const int steps = 4096;
    for (int i = 0; i <= steps; ++i) {
        const double r = 1.0 +
            (params.budgetBce - 1.0) * static_cast<double>(i) / steps;
        const double s = fn(params, r);
        if (s > best) {
            best = s;
            arg = r;
        }
    }
    if (best_r)
        *best_r = arg;
    return best;
}

} // namespace

double
symmetricSpeedup(const HillMartyParams &params, double r)
{
    checkParams(params, r);
    const double f = params.parallelFraction;
    const double perf_r = params.perf(r);
    const double cores = params.budgetBce / r;
    // T = (1-f)/perf(r) + f/(perf(r) * cores); speedup vs 1 base core.
    const double t = (1.0 - f) / perf_r + f / (perf_r * cores);
    return 1.0 / t;
}

double
asymmetricSpeedup(const HillMartyParams &params, double r)
{
    checkParams(params, r);
    const double f = params.parallelFraction;
    const double perf_r = params.perf(r);
    // Sequential on the big core; parallel on big + (budget - r) base
    // cores together.
    const double parallel_capacity = perf_r + (params.budgetBce - r);
    const double t = (1.0 - f) / perf_r + f / parallel_capacity;
    return 1.0 / t;
}

double
dynamicSpeedup(const HillMartyParams &params, double r)
{
    checkParams(params, r);
    const double f = params.parallelFraction;
    const double t =
        (1.0 - f) / params.perf(r) + f / params.budgetBce;
    return 1.0 / t;
}

double
bestSymmetricSpeedup(const HillMartyParams &params, double *best_r)
{
    return maximise(params, &symmetricSpeedup, best_r);
}

double
bestAsymmetricSpeedup(const HillMartyParams &params, double *best_r)
{
    return maximise(params, &asymmetricSpeedup, best_r);
}

double
bestDynamicSpeedup(const HillMartyParams &params, double *best_r)
{
    return maximise(params, &dynamicSpeedup, best_r);
}

} // namespace smtflex
