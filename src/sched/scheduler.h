/**
 * @file
 * Thread-to-core scheduling policies (paper Section 3.2).
 *
 * Placement policy (all schedulers): fill big cores before smaller ones,
 * and distribute threads across cores before engaging SMT; when threads
 * outnumber hardware contexts (no-SMT runs), wrap around and time-share.
 *
 * Program-to-core assignment: the paper uses offline analysis — isolated
 * per-(benchmark, core-type) runs steer which program lands on which core
 * type, and complementary programs are co-scheduled on SMT contexts. The
 * OfflineScheduler implements that methodology from an OfflineProfile; the
 * NaiveScheduler ignores program characteristics (ablation baseline).
 */

#ifndef SMTFLEX_SCHED_SCHEDULER_H
#define SMTFLEX_SCHED_SCHEDULER_H

#include <map>
#include <string>
#include <vector>

#include "sim/chip_config.h"
#include "sim/chip_sim.h"

namespace smtflex {

/**
 * Results of the offline analysis: isolated IPC of each benchmark on each
 * core type (the paper's single-program characterisation runs).
 */
class OfflineProfile
{
  public:
    /** Record the isolated IPC of @p bench on @p type. */
    void set(const std::string &bench, CoreType type, double ipc);

    bool has(const std::string &bench, CoreType type) const;

    /** Isolated IPC; fatal() if missing. */
    double ipc(const std::string &bench, CoreType type) const;

    /**
     * How much @p bench gains from a big core versus a small one
     * (IPC_big / IPC_small) — programs with high affinity deserve the big
     * cores of a heterogeneous chip.
     */
    double bigAffinity(const std::string &bench) const;

    bool empty() const { return table_.empty(); }

  private:
    std::map<std::pair<std::string, int>, double> table_;
};

/**
 * The slot fill order of a chip: all cores' context 0 (big cores first),
 * then context 1 across cores, and so on — "spread before SMT".
 */
std::vector<Placement::Entry> slotFillOrder(const ChipConfig &config);

/**
 * Naive placement: thread i takes the i-th slot in fill order (wrapping
 * into time-sharing when threads outnumber contexts).
 */
Placement scheduleNaive(const ChipConfig &config, std::size_t num_threads);

/**
 * Rank-driven placement shared by the offline oracle and the online
 * policies (smtflex::online):
 *  - slots are allocated in fill order;
 *  - threads with the highest @p affinity get the big-core slots;
 *  - within a core type, threads are dealt serpentine by
 *    @p mem_intensity so each core co-schedules memory-intensive with
 *    compute-intensive threads (symbiotic SMT co-scheduling).
 *
 * Both vectors are indexed by thread; all sorts are stable, so equal
 * scores preserve submission order. An online policy that feeds this the
 * oracle's scores reproduces the oracle's placement exactly.
 */
Placement scheduleByRank(const ChipConfig &config,
                         const std::vector<double> &affinity,
                         const std::vector<double> &mem_intensity);

/**
 * Offline-analysis placement (the paper's methodology):
 *  - slots are allocated in fill order;
 *  - programs with the highest big-core affinity get the big-core slots;
 *  - within a core type, programs are dealt serpentine by memory intensity
 *    so each core co-schedules memory-intensive with compute-intensive
 *    programs (symbiotic SMT co-scheduling).
 *
 * @param specs the workload (profiles are consulted for memory intensity).
 * @param offline isolated-run table; if empty, falls back to profile-based
 *        affinity estimates.
 */
Placement scheduleOffline(const ChipConfig &config,
                          const std::vector<ThreadSpec> &specs,
                          const OfflineProfile &offline);

} // namespace smtflex

#endif // SMTFLEX_SCHED_SCHEDULER_H
