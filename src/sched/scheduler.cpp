#include "scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"

namespace smtflex {

void
OfflineProfile::set(const std::string &bench, CoreType type, double ipc)
{
    if (ipc <= 0.0)
        fatal("OfflineProfile: non-positive IPC for ", bench);
    table_[{bench, static_cast<int>(type)}] = ipc;
}

bool
OfflineProfile::has(const std::string &bench, CoreType type) const
{
    return table_.count({bench, static_cast<int>(type)}) > 0;
}

double
OfflineProfile::ipc(const std::string &bench, CoreType type) const
{
    const auto it = table_.find({bench, static_cast<int>(type)});
    if (it == table_.end())
        fatal("OfflineProfile: no entry for ", bench, " on core type ",
              static_cast<int>(type));
    return it->second;
}

double
OfflineProfile::bigAffinity(const std::string &bench) const
{
    return ipc(bench, CoreType::kBig) / ipc(bench, CoreType::kSmall);
}

std::vector<Placement::Entry>
slotFillOrder(const ChipConfig &config)
{
    // Core visit order: big cores first, then medium, then small; stable
    // within a type.
    std::vector<std::uint32_t> core_order(config.numCores());
    std::iota(core_order.begin(), core_order.end(), 0u);
    std::stable_sort(core_order.begin(), core_order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return static_cast<int>(config.cores[a].type) <
                                static_cast<int>(config.cores[b].type);
                     });

    std::uint32_t max_contexts = 0;
    for (std::uint32_t i = 0; i < config.numCores(); ++i)
        max_contexts = std::max(max_contexts, config.contextsOf(i));

    std::vector<Placement::Entry> order;
    order.reserve(config.totalContexts());
    for (std::uint32_t round = 0; round < max_contexts; ++round) {
        for (const std::uint32_t core : core_order) {
            if (round < config.contextsOf(core))
                order.push_back({core, round});
        }
    }
    return order;
}

Placement
scheduleNaive(const ChipConfig &config, std::size_t num_threads)
{
    if (num_threads == 0)
        fatal("scheduleNaive: no threads");
    const auto order = slotFillOrder(config);
    Placement placement;
    placement.entries.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        placement.entries.push_back(order[i % order.size()]);
    return placement;
}

namespace {

/** Estimated memory intensity of a profile (drives symbiosis pairing). */
double
memoryIntensity(const BenchmarkProfile &profile)
{
    // Fraction of instructions that access data beyond a typical private
    // hierarchy: mem-op fraction times far-footprint fraction.
    const double mem_ops = profile.mix.load + profile.mix.store;
    return mem_ops * profile.memFootprintBeyond(256 * 1024);
}

/** Affinity estimate without isolated runs: how much a profile is expected
 * to gain from a big OoO core (more ILP, fewer stalls). */
double
staticBigAffinity(const BenchmarkProfile &profile)
{
    // ILP-rich, well-predicted, cache-resident codes gain the most from a
    // wide out-of-order core; memory-bound codes gain the least.
    const double ilp = profile.meanDepDist * (1.0 + profile.depNoneProb);
    const double mem_penalty = 1.0 + 4.0 * memoryIntensity(profile);
    const double branch_penalty =
        1.0 + 20.0 * profile.branchMispredictRate;
    return ilp / (mem_penalty * branch_penalty);
}

} // namespace

Placement
scheduleByRank(const ChipConfig &config,
               const std::vector<double> &affinity,
               const std::vector<double> &mem_intensity)
{
    if (affinity.empty())
        fatal("scheduleByRank: no threads");
    if (affinity.size() != mem_intensity.size())
        fatal("scheduleByRank: affinity/mem_intensity size mismatch");

    const auto order = slotFillOrder(config);
    const std::size_t n = affinity.size();

    // Slots actually used this run (wrap into time-sharing if needed).
    std::vector<Placement::Entry> used;
    used.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        used.push_back(order[i % order.size()]);

    // Rank threads: most big-core-affine first.
    std::vector<std::size_t> thread_rank(n);
    std::iota(thread_rank.begin(), thread_rank.end(), std::size_t{0});
    std::stable_sort(thread_rank.begin(), thread_rank.end(),
                     [&](std::size_t a, std::size_t b) {
                         return affinity[a] > affinity[b];
                     });

    // Order the used slots by core type (big first), keeping per-core
    // grouping so we can deal threads serpentine across the cores of a
    // type class.
    std::stable_sort(used.begin(), used.end(),
                     [&](const Placement::Entry &a,
                         const Placement::Entry &b) {
                         return static_cast<int>(config.cores[a.core].type) <
                                static_cast<int>(config.cores[b.core].type);
                     });

    Placement placement;
    placement.entries.resize(n);

    std::size_t next_thread = 0;
    std::size_t i = 0;
    while (i < used.size()) {
        // One core-type class at a time.
        const CoreType type = config.cores[used[i].core].type;
        std::size_t j = i;
        while (j < used.size() &&
               config.cores[used[j].core].type == type) {
            ++j;
        }
        const std::size_t class_slots = j - i;

        // The next class_slots highest-affinity threads belong here; deal
        // them serpentine by memory intensity so every core of the class
        // gets a balanced (symbiotic) mix.
        std::vector<std::size_t> class_threads(
            thread_rank.begin() + static_cast<std::ptrdiff_t>(next_thread),
            thread_rank.begin() +
                static_cast<std::ptrdiff_t>(next_thread + class_slots));
        next_thread += class_slots;
        std::stable_sort(class_threads.begin(), class_threads.end(),
                         [&](std::size_t a, std::size_t b) {
                             return mem_intensity[a] > mem_intensity[b];
                         });

        // Distinct cores of this class, in slot order.
        std::vector<std::uint32_t> class_cores;
        for (std::size_t k = i; k < j; ++k) {
            if (std::find(class_cores.begin(), class_cores.end(),
                          used[k].core) == class_cores.end())
                class_cores.push_back(used[k].core);
        }

        // Serpentine deal across the cores; track per-core slot cursors.
        std::map<std::uint32_t, std::vector<Placement::Entry>> slots_of;
        for (std::size_t k = i; k < j; ++k)
            slots_of[used[k].core].push_back(used[k]);

        std::size_t deal = 0;
        bool forward = true;
        std::size_t core_idx = 0;
        while (deal < class_threads.size()) {
            const std::uint32_t core = class_cores[core_idx];
            auto &avail = slots_of[core];
            if (!avail.empty()) {
                placement.entries[class_threads[deal]] = avail.front();
                avail.erase(avail.begin());
                ++deal;
            }
            // Snake over the cores: L-to-R then R-to-L, so heavy and light
            // threads interleave on every core.
            if (forward) {
                if (core_idx + 1 >= class_cores.size())
                    forward = false;
                else
                    ++core_idx;
            } else {
                if (core_idx == 0)
                    forward = true;
                else
                    --core_idx;
            }
        }
        i = j;
    }
    return placement;
}

Placement
scheduleOffline(const ChipConfig &config,
                const std::vector<ThreadSpec> &specs,
                const OfflineProfile &offline)
{
    if (specs.empty())
        fatal("scheduleOffline: no threads");
    for (const auto &spec : specs) {
        if (!spec.profile)
            fatal("scheduleOffline: thread without profile");
    }

    std::vector<double> affinity;
    std::vector<double> mem;
    affinity.reserve(specs.size());
    mem.reserve(specs.size());
    for (const auto &spec : specs) {
        const auto &profile = *spec.profile;
        if (offline.has(profile.name, CoreType::kBig) &&
            offline.has(profile.name, CoreType::kSmall)) {
            affinity.push_back(offline.bigAffinity(profile.name));
        } else {
            affinity.push_back(staticBigAffinity(profile));
        }
        mem.push_back(memoryIntensity(*spec.profile));
    }
    return scheduleByRank(config, affinity, mem);
}

} // namespace smtflex
