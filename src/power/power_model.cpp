#include "power_model.h"

#include <cmath>

#include "common/log.h"

namespace smtflex {

PowerModel::PowerModel() : params_(PowerParams{})
{
}

PowerModel::PowerModel(const PowerParams &params) : params_(params)
{
    if (params_.nominalGHz <= 0.0 || params_.avgOpWeight <= 0.0)
        fatal("PowerModel: bad calibration");
}

double
PowerModel::freqScale(const CoreParams &core) const
{
    if (core.freqGHz == params_.nominalGHz)
        return 1.0;
    return std::pow(core.freqGHz / params_.nominalGHz,
                    params_.freqExponent);
}

double
PowerModel::coreStaticW(const CoreParams &core) const
{
    const double cache_kib =
        static_cast<double>(core.l1i.sizeBytes + core.l1d.sizeBytes +
                            core.l2.sizeBytes) / 1024.0;
    const double base = params_.baseStaticW[static_cast<int>(core.type)] +
        params_.cacheStaticWPerKiB * cache_kib;
    return base * freqScale(core);
}

double
PowerModel::dynEnergyPerWeightedOpJ(const CoreParams &core) const
{
    // dynMaxW corresponds to dispatching `width` average-weight ops per
    // cycle at the nominal frequency.
    const double rate = core.width * params_.nominalGHz * 1e9;
    const double base =
        params_.dynMaxW[static_cast<int>(core.type)] /
        (rate * params_.avgOpWeight);
    // At higher frequency each op costs a bit more energy so that power
    // scales with f^freqExponent (rate itself contributes f^1).
    const double energy_scale = std::pow(
        core.freqGHz / params_.nominalGHz, params_.freqExponent - 1.0);
    return base * energy_scale;
}

double
PowerModel::coreDynamicJ(const CoreParams &core, const CoreStats &stats) const
{
    const double e_op = dynEnergyPerWeightedOpJ(core);
    double weighted_ops = 0.0;
    for (int c = 0; c < kNumOpClasses; ++c)
        weighted_ops += params_.opWeight[c] *
            static_cast<double>(stats.dispatched[c]);
    return weighted_ops * e_op;
}

double
PowerModel::coreFullLoadW(const CoreParams &core) const
{
    const double dyn =
        params_.dynMaxW[static_cast<int>(core.type)] *
        std::pow(core.freqGHz / params_.nominalGHz, params_.freqExponent);
    return coreStaticW(core) + dyn;
}

double
PowerModel::uncoreDynamicJ(std::uint64_t llc_accesses,
                           std::uint64_t dram_transfers) const
{
    return 1e-9 * (params_.llcAccessNj * static_cast<double>(llc_accesses) +
                   params_.dramAccessNj *
                       static_cast<double>(dram_transfers));
}

} // namespace smtflex
