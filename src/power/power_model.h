/**
 * @file
 * Activity-based power/energy model in the spirit of McPAT (45 nm,
 * aggressive clock gating), calibrated to the paper's published anchors:
 *
 *  - full-load core powers giving the 1 big = 2 medium = 5 small
 *    power-equivalence under the 4B/8m/20s ~46/50/45 W totals,
 *  - an always-on uncore (shared LLC + DRAM) of ~7 W,
 *  - power ordering of single-active-core configurations (B > m > s).
 *
 * Dynamic energy is charged per dispatched op (class-weighted, so FP and
 * multiplies cost more), static power per powered-on cycle, with idle cores
 * optionally power gated by the simulation layer. Frequency variants scale
 * with an empirical exponent (Section 8.1 "hf" configurations).
 */

#ifndef SMTFLEX_POWER_POWER_MODEL_H
#define SMTFLEX_POWER_POWER_MODEL_H

#include <cstdint>

#include "uarch/core.h"
#include "uarch/core_params.h"

namespace smtflex {

/** Calibration constants of the power model. */
struct PowerParams
{
    /** Non-cache static power per core type [B, m, s] in W. */
    double baseStaticW[3] = {2.84, 1.62, 0.42};
    /** Dynamic power at full dispatch of an average mix, per type, W. */
    double dynMaxW[3] = {4.35, 2.475, 1.0};
    /** Static power of private caches, W per KiB. */
    double cacheStaticWPerKiB = 0.008;
    /** Core power scales with (f/f0)^freqExponent. */
    double freqExponent = 1.15;
    /** Nominal frequency the constants are calibrated at. */
    double nominalGHz = 2.66;

    /** Always-on uncore (LLC + DRAM background), W. */
    double uncoreStaticW = 7.0;
    /** Dynamic energy per LLC access, nJ. */
    double llcAccessNj = 1.2;
    /** Dynamic energy per DRAM line transfer, nJ. */
    double dramAccessNj = 12.0;

    /** Relative dynamic energy per op class (kIntAlu..kBranch order). */
    double opWeight[kNumOpClasses] = {1.0, 2.5, 2.0, 1.3, 1.3, 0.8};
    /** Mean op weight of a typical mix (normalises dynMaxW). */
    double avgOpWeight = 1.2;
};

/**
 * Converts activity counts into energy and power.
 */
class PowerModel
{
  public:
    /** Default paper calibration. */
    PowerModel();
    explicit PowerModel(const PowerParams &params);

    /** Static power of one powered-on core, W (includes private caches and
     * frequency scaling). */
    double coreStaticW(const CoreParams &core) const;

    /** Dynamic energy a core consumed given its activity counters, J. */
    double coreDynamicJ(const CoreParams &core, const CoreStats &stats) const;

    /** Estimated power at full dispatch, W (validation/reporting). */
    double coreFullLoadW(const CoreParams &core) const;

    /** Always-on uncore power, W. */
    double uncoreStaticW() const { return params_.uncoreStaticW; }

    /** Dynamic uncore energy, J. */
    double uncoreDynamicJ(std::uint64_t llc_accesses,
                          std::uint64_t dram_transfers) const;

    const PowerParams &params() const { return params_; }

  private:
    double freqScale(const CoreParams &core) const;
    double dynEnergyPerWeightedOpJ(const CoreParams &core) const;

    PowerParams params_;
};

} // namespace smtflex

#endif // SMTFLEX_POWER_POWER_MODEL_H
