/**
 * @file
 * Executes a ParsecProfile application model on a ChipSim: sequential
 * phases on a big core, barrier-separated parallel phases with load
 * imbalance and lock-protected critical sections, and pinned scheduling.
 * Threads that block (lock or barrier) yield the processor — they are
 * detached from their hardware context — so the active thread count varies
 * over time (paper Figs. 1, 11, 12).
 */

#ifndef SMTFLEX_WORKLOAD_PARSEC_RUNNER_H
#define SMTFLEX_WORKLOAD_PARSEC_RUNNER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "sim/chip_sim.h"
#include "trace/tracegen.h"
#include "uarch/thread_source.h"
#include "workload/parsec.h"

namespace smtflex {

/** Outcome of one multi-threaded application run. */
struct ParsecRunResult
{
    SimResult sim;
    Cycle roiStartCycle = 0;
    Cycle roiEndCycle = 0;
    Cycle totalCycles = 0;
    bool completed = false;
    /** Fraction of ROI time with k threads attached (paper Fig. 1). */
    std::vector<double> roiActiveThreadFractions;

    Cycle roiCycles() const { return roiEndCycle - roiStartCycle; }
};

/**
 * One software thread of the application (master or worker).
 */
class ParsecThread : public ThreadSource
{
  public:
    ParsecThread(const ParsecProfile &app, std::uint32_t tid,
                 std::uint64_t seed);

    MicroOp nextOp() override;
    bool hasWork() override;
    void onRetire(Cycle now) override;
    void onStagedOpDropped() override;

    /** Begin executing @p instr instructions (worker kernel or, for the
     * master, optionally the serial kernel). */
    void startSegment(InstrCount instr, bool serial_kernel);
    /** Allow/disallow fetching without resetting segment progress. */
    void setRunnable(bool runnable) { runnable_ = runnable; }
    /** All instructions of the current segment retired. */
    bool segmentDone() const { return retired_ >= target_; }

    InstrCount totalRetired() const { return totalRetired_; }

  private:
    TraceGenerator workerGen_;
    TraceGenerator serialGen_;
    bool useSerial_ = false;
    bool runnable_ = false;
    InstrCount target_ = 0;
    InstrCount generated_ = 0;
    InstrCount retired_ = 0;
    InstrCount totalRetired_ = 0;
};

/**
 * Drives one application run on one chip configuration.
 */
class ParsecRunner
{
  public:
    /**
     * @param num_threads software threads (<= chip's total contexts);
     *        thread i is pinned to the i-th slot in fill order (spread
     *        across cores before SMT, big cores first).
     * @param throttle_critical when true, the SMT co-runners on a lock
     *        holder's core are paused for the duration of the critical
     *        section, giving the serialising thread the whole core — the
     *        SMT analogue of Accelerated Critical Sections that the paper
     *        suggests in its related-work discussion (Section 9).
     */
    ParsecRunner(const ChipConfig &config, const ParsecProfile &app,
                 std::uint32_t num_threads, std::uint64_t seed,
                 bool throttle_critical = false);

    /** Run the application to completion (or the cycle limit). */
    ParsecRunResult run(Cycle max_cycles = 2'000'000'000);

  private:
    /** One contiguous piece of a thread's work within a phase. */
    struct Segment
    {
        InstrCount instr = 0;
        bool critical = false;
    };

    enum class AppState { kInit, kRoi, kInterPhaseSerial, kFinal, kDone };
    enum class ThreadState { kIdle, kRunning, kWantLock, kInCritical,
                             kAtBarrier, kDone };

    void attachThread(std::uint32_t tid);
    void detachThread(std::uint32_t tid);
    void startPhase(std::uint32_t phase);
    void beginNextSegment(std::uint32_t tid);
    void handleSegmentDone(std::uint32_t tid);
    void onBarrierComplete();
    void grantLockToNextWaiter();
    /** Pause/resume the SMT co-runners on @p holder's core. */
    void throttleCoRunners(std::uint32_t holder);
    void unthrottleCoRunners(std::uint32_t holder);

    ChipConfig config_;
    const ParsecProfile *app_;
    std::uint32_t numThreads_;
    std::uint64_t seed_;

    std::unique_ptr<ChipSim> chip_;
    std::vector<std::unique_ptr<ParsecThread>> threads_;
    std::vector<Placement::Entry> pinning_;
    std::vector<ThreadState> state_;
    std::vector<bool> attached_;
    std::vector<bool> throttled_;
    std::vector<std::deque<Segment>> plan_;
    bool throttleCritical_ = false;

    AppState appState_ = AppState::kInit;
    std::uint32_t currentPhase_ = 0;
    std::uint32_t barrierArrived_ = 0;
    bool lockHeld_ = false;
    std::deque<std::uint32_t> lockQueue_;
    Rng rng_;

    Cycle roiStart_ = 0;
    Cycle roiEnd_ = 0;
    Histogram roiHistogram_;
};

} // namespace smtflex

#endif // SMTFLEX_WORKLOAD_PARSEC_RUNNER_H
