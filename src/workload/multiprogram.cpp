#include "multiprogram.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "trace/spec_profiles.h"
#include "workload/parsec.h"

namespace smtflex {

std::vector<ThreadSpec>
MultiProgramWorkload::specs(InstrCount budget, InstrCount warmup) const
{
    if (budget == 0)
        fatal("MultiProgramWorkload: zero budget");
    std::vector<ThreadSpec> result;
    result.reserve(programs.size());
    for (const auto *profile : programs)
        result.push_back({profile, budget, warmup});
    return result;
}

MultiProgramWorkload
homogeneousWorkload(const std::string &benchmark, std::size_t n)
{
    if (n == 0)
        fatal("homogeneousWorkload: zero threads");
    MultiProgramWorkload w;
    w.name = benchmark + "x" + std::to_string(n);
    w.programs.assign(n, &specProfile(benchmark));
    return w;
}

std::vector<MultiProgramWorkload>
heterogeneousWorkloads(std::size_t n, std::size_t count, std::uint64_t seed)
{
    if (n == 0 || count == 0)
        fatal("heterogeneousWorkloads: empty request");
    const auto &bench = specProfiles();
    const std::size_t total = n * count;
    if (total % bench.size() != 0)
        fatal("heterogeneousWorkloads: ", count, " mixes of ", n,
              " threads cannot balance ", bench.size(), " benchmarks");

    // Balanced pool: every benchmark exactly total/12 times, shuffled.
    std::vector<const BenchmarkProfile *> pool;
    pool.reserve(total);
    for (std::size_t r = 0; r < total / bench.size(); ++r)
        pool.insert(pool.end(), bench.begin(), bench.end());

    Rng rng(seed, n);
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.nextRange(i)]);

    std::vector<MultiProgramWorkload> mixes;
    mixes.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
        MultiProgramWorkload w;
        w.name = "het" + std::to_string(n) + "t-" + std::to_string(m);
        w.programs.assign(pool.begin() + static_cast<std::ptrdiff_t>(m * n),
                          pool.begin() +
                              static_cast<std::ptrdiff_t>((m + 1) * n));
        mixes.push_back(std::move(w));
    }
    return mixes;
}

const BenchmarkProfile &
benchProfileByName(const std::string &name)
{
    const auto &spec = specAllBenchmarkNames();
    if (std::find(spec.begin(), spec.end(), name) != spec.end())
        return specProfile(name);
    const auto &parsec = parsecBenchmarkNames();
    if (std::find(parsec.begin(), parsec.end(), name) != parsec.end())
        return parsecProfile(name).kernel;
    // A kernel profile's own name ("<app>.kernel") resolves too, so the
    // name stored in a mixed workload's profiles round-trips through the
    // isolated-characterisation path.
    const auto dot = name.rfind(".kernel");
    if (dot != std::string::npos && dot + 7 == name.size() &&
        std::find(parsec.begin(), parsec.end(), name.substr(0, dot)) !=
            parsec.end())
        return parsecProfile(name.substr(0, dot)).kernel;
    fatal("benchProfileByName: unknown benchmark '", name,
          "' (SPEC or PARSEC name expected)");
}

std::vector<std::string>
mixableBenchmarkNames()
{
    std::vector<std::string> names = specAllBenchmarkNames();
    const auto &parsec = parsecBenchmarkNames();
    names.insert(names.end(), parsec.begin(), parsec.end());
    return names;
}

MultiProgramWorkload
mixWorkload(const std::vector<std::string> &benchmarks)
{
    if (benchmarks.empty())
        fatal("mixWorkload: empty benchmark list");
    MultiProgramWorkload w;
    w.name = "mix:";
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        if (i > 0)
            w.name += "+";
        w.name += benchmarks[i];
        w.programs.push_back(&benchProfileByName(benchmarks[i]));
    }
    return w;
}

} // namespace smtflex
