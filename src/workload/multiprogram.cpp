#include "multiprogram.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "trace/spec_profiles.h"

namespace smtflex {

std::vector<ThreadSpec>
MultiProgramWorkload::specs(InstrCount budget, InstrCount warmup) const
{
    if (budget == 0)
        fatal("MultiProgramWorkload: zero budget");
    std::vector<ThreadSpec> result;
    result.reserve(programs.size());
    for (const auto *profile : programs)
        result.push_back({profile, budget, warmup});
    return result;
}

MultiProgramWorkload
homogeneousWorkload(const std::string &benchmark, std::size_t n)
{
    if (n == 0)
        fatal("homogeneousWorkload: zero threads");
    MultiProgramWorkload w;
    w.name = benchmark + "x" + std::to_string(n);
    w.programs.assign(n, &specProfile(benchmark));
    return w;
}

std::vector<MultiProgramWorkload>
heterogeneousWorkloads(std::size_t n, std::size_t count, std::uint64_t seed)
{
    if (n == 0 || count == 0)
        fatal("heterogeneousWorkloads: empty request");
    const auto &bench = specProfiles();
    const std::size_t total = n * count;
    if (total % bench.size() != 0)
        fatal("heterogeneousWorkloads: ", count, " mixes of ", n,
              " threads cannot balance ", bench.size(), " benchmarks");

    // Balanced pool: every benchmark exactly total/12 times, shuffled.
    std::vector<const BenchmarkProfile *> pool;
    pool.reserve(total);
    for (std::size_t r = 0; r < total / bench.size(); ++r)
        pool.insert(pool.end(), bench.begin(), bench.end());

    Rng rng(seed, n);
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.nextRange(i)]);

    std::vector<MultiProgramWorkload> mixes;
    mixes.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
        MultiProgramWorkload w;
        w.name = "het" + std::to_string(n) + "t-" + std::to_string(m);
        w.programs.assign(pool.begin() + static_cast<std::ptrdiff_t>(m * n),
                          pool.begin() +
                              static_cast<std::ptrdiff_t>((m + 1) * n));
        mixes.push_back(std::move(w));
    }
    return mixes;
}

} // namespace smtflex
