#include "parsec.h"

#include <map>

#include "common/log.h"

namespace smtflex {

void
ParsecProfile::validate() const
{
    if (name.empty())
        fatal("ParsecProfile: empty name");
    kernel.validate();
    serialKernel.validate();
    if (roiInstr == 0)
        fatal("ParsecProfile ", name, ": empty ROI");
    if (numPhases == 0)
        fatal("ParsecProfile ", name, ": need at least one phase");
    if (criticalFraction < 0.0 || criticalFraction >= 1.0)
        fatal("ParsecProfile ", name, ": bad critical fraction");
    if (maxParallelism == 0)
        fatal("ParsecProfile ", name, ": zero parallelism");
    if (sharedFraction < 0.0 || sharedFraction > 1.0)
        fatal("ParsecProfile ", name, ": bad shared fraction");
}

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

/** Worker kernel builder. */
BenchmarkProfile
kernelProfile(const std::string &name, InstrMix mix, double dep,
              double dep_none, double mispredict,
              std::vector<MemRegion> regions)
{
    BenchmarkProfile p;
    p.name = name;
    p.mix = mix;
    p.meanDepDist = dep;
    p.depNoneProb = dep_none;
    p.branchMispredictRate = mispredict;
    p.codeFootprint = 24 * kKiB;
    p.regions = std::move(regions);
    p.validate();
    return p;
}

/** Generic sequential phase behaviour (parsing/IO-like integer code). */
BenchmarkProfile
serialProfile(const std::string &name)
{
    return kernelProfile(
        name + ".serial",
        {.load = 0.28, .store = 0.12, .intAlu = 0.42, .intMul = 0.01,
         .fp = 0.02, .branch = 0.15},
        2.8, 0.22, 0.012,
        {{64 * kKiB, 0.80, false}, {16 * kMiB, 0.20, true}});
}

std::map<std::string, ParsecProfile>
buildRegistry()
{
    std::map<std::string, ParsecProfile> reg;

    // The total-work scale: chosen so runs are fast but long enough for the
    // caches to warm; study-level results use ratios only.
    constexpr InstrCount kRoi = 1'000'000;

    auto add = [&reg](ParsecProfile p) {
        p.serialKernel = serialProfile(p.name);
        p.validate();
        reg[p.name] = std::move(p);
    };

    // blackscholes: embarrassingly parallel FP, tiny working set, almost
    // no synchronisation; ~20 active threads nearly all the time (Fig. 1).
    {
        ParsecProfile p;
        p.name = "blackscholes";
        p.kernel = kernelProfile(
            "blackscholes.kernel",
            {.load = 0.24, .store = 0.08, .intAlu = 0.18, .intMul = 0.01,
             .fp = 0.43, .branch = 0.06},
            4.0, 0.30, 0.002,
            {{16 * kKiB, 0.92, false}, {8 * kMiB, 0.08, true}});
        p.seqInitInstr = 40'000;
        p.seqFinalInstr = 15'000;
        p.roiInstr = kRoi;
        p.numPhases = 4;
        p.imbalanceCv = 0.03;
        p.criticalFraction = 0.0;
        p.maxParallelism = 64;
        p.sharedFraction = 0.05;
        add(std::move(p));
    }

    // bodytrack: alternating serial and parallel stages -> the "1 or 20
    // active threads" bimodal of Fig. 1.
    {
        ParsecProfile p;
        p.name = "bodytrack";
        p.kernel = kernelProfile(
            "bodytrack.kernel",
            {.load = 0.27, .store = 0.10, .intAlu = 0.25, .intMul = 0.02,
             .fp = 0.28, .branch = 0.08},
            3.2, 0.25, 0.006,
            {{32 * kKiB, 0.90, false}, {128 * kKiB, 0.085, false},
             {2 * kMiB, 0.015, false}});
        p.seqInitInstr = 60'000;
        p.seqFinalInstr = 20'000;
        p.roiInstr = kRoi;
        p.numPhases = 12;
        p.serialPerPhase = 18'000;
        p.imbalanceCv = 0.12;
        p.criticalFraction = 0.002;
        p.maxParallelism = 64;
        p.sharedFraction = 0.15;
        add(std::move(p));
    }

    // canneal: cache-hostile random accesses over a large shared graph;
    // scales well in thread count but is memory-bound.
    {
        ParsecProfile p;
        p.name = "canneal";
        p.kernel = kernelProfile(
            "canneal.kernel",
            {.load = 0.33, .store = 0.09, .intAlu = 0.35, .intMul = 0.00,
             .fp = 0.05, .branch = 0.18},
            2.4, 0.18, 0.010,
            {{32 * kKiB, 0.73, false}, {2 * kMiB, 0.22, false},
             {96 * kMiB, 0.05, false}});
        p.seqInitInstr = 80'000;
        p.seqFinalInstr = 15'000;
        p.roiInstr = kRoi;
        p.numPhases = 6;
        p.imbalanceCv = 0.05;
        p.criticalFraction = 0.001;
        p.maxParallelism = 64;
        p.sharedFraction = 0.75;
        add(std::move(p));
    }

    // dedup: pipeline with a limited number of useful stages/threads and
    // queue locks.
    {
        ParsecProfile p;
        p.name = "dedup";
        p.kernel = kernelProfile(
            "dedup.kernel",
            {.load = 0.30, .store = 0.14, .intAlu = 0.38, .intMul = 0.02,
             .fp = 0.00, .branch = 0.16},
            3.0, 0.25, 0.008,
            {{48 * kKiB, 0.75, false}, {32 * kMiB, 0.25, true}});
        p.seqInitInstr = 50'000;
        p.seqFinalInstr = 25'000;
        p.roiInstr = kRoi;
        p.numPhases = 8;
        p.imbalanceCv = 0.35;
        p.criticalFraction = 0.015;
        p.maxParallelism = 12;
        p.sharedFraction = 0.40;
        add(std::move(p));
    }

    // ferret: pipeline; saturates around 8 threads, large thread-count
    // variation (Fig. 1).
    {
        ParsecProfile p;
        p.name = "ferret";
        p.kernel = kernelProfile(
            "ferret.kernel",
            {.load = 0.29, .store = 0.09, .intAlu = 0.28, .intMul = 0.02,
             .fp = 0.22, .branch = 0.10},
            3.4, 0.28, 0.007,
            {{64 * kKiB, 0.86, false}, {512 * kKiB, 0.12, false},
             {24 * kMiB, 0.02, false}});
        p.seqInitInstr = 70'000;
        p.seqFinalInstr = 20'000;
        p.roiInstr = kRoi;
        p.numPhases = 10;
        p.serialPerPhase = 6'000;
        p.imbalanceCv = 0.45;
        p.criticalFraction = 0.010;
        p.maxParallelism = 8;
        p.sharedFraction = 0.30;
        add(std::move(p));
    }

    // freqmine: mining with shared structures; moderate scaling, big
    // imbalance.
    {
        ParsecProfile p;
        p.name = "freqmine";
        p.kernel = kernelProfile(
            "freqmine.kernel",
            {.load = 0.31, .store = 0.11, .intAlu = 0.38, .intMul = 0.01,
             .fp = 0.02, .branch = 0.17},
            2.7, 0.20, 0.011,
            {{64 * kKiB, 0.86, false}, {1 * kMiB, 0.12, false},
             {48 * kMiB, 0.02, false}});
        p.seqInitInstr = 90'000;
        p.seqFinalInstr = 30'000;
        p.roiInstr = kRoi;
        p.numPhases = 9;
        p.serialPerPhase = 10'000;
        p.imbalanceCv = 0.50;
        p.criticalFraction = 0.008;
        p.maxParallelism = 12;
        p.sharedFraction = 0.50;
        add(std::move(p));
    }

    // raytrace: scales well, cache-friendly FP with read-mostly shared
    // scene data.
    {
        ParsecProfile p;
        p.name = "raytrace";
        p.kernel = kernelProfile(
            "raytrace.kernel",
            {.load = 0.26, .store = 0.07, .intAlu = 0.20, .intMul = 0.01,
             .fp = 0.38, .branch = 0.08},
            3.8, 0.30, 0.004,
            {{32 * kKiB, 0.86, false}, {1 * kMiB, 0.12, false},
             {16 * kMiB, 0.02, false}});
        p.seqInitInstr = 65'000;
        p.seqFinalInstr = 10'000;
        p.roiInstr = kRoi;
        p.numPhases = 5;
        p.imbalanceCv = 0.08;
        p.criticalFraction = 0.001;
        p.maxParallelism = 64;
        p.sharedFraction = 0.60;
        add(std::move(p));
    }

    // streamcluster: barrier-heavy streaming kernel; scaling limited by
    // frequent synchronisation.
    {
        ParsecProfile p;
        p.name = "streamcluster";
        p.kernel = kernelProfile(
            "streamcluster.kernel",
            {.load = 0.30, .store = 0.08, .intAlu = 0.22, .intMul = 0.01,
             .fp = 0.32, .branch = 0.07},
            4.5, 0.35, 0.003,
            {{24 * kKiB, 0.40, false}, {40 * kMiB, 0.60, true}});
        p.seqInitInstr = 45'000;
        p.seqFinalInstr = 12'000;
        p.roiInstr = kRoi;
        p.numPhases = 24;
        p.serialPerPhase = 2'500;
        p.imbalanceCv = 0.10;
        p.criticalFraction = 0.002;
        p.maxParallelism = 64;
        p.sharedFraction = 0.45;
        add(std::move(p));
    }

    // swaptions: coarse independent blocks; near-perfect scaling when the
    // block count divides the thread count, bimodal active counts.
    {
        ParsecProfile p;
        p.name = "swaptions";
        p.kernel = kernelProfile(
            "swaptions.kernel",
            {.load = 0.23, .store = 0.08, .intAlu = 0.20, .intMul = 0.02,
             .fp = 0.41, .branch = 0.06},
            3.6, 0.28, 0.003,
            {{24 * kKiB, 0.96, false}, {2 * kMiB, 0.04, false}});
        p.seqInitInstr = 25'000;
        p.seqFinalInstr = 8'000;
        p.roiInstr = kRoi;
        p.numPhases = 2;
        p.imbalanceCv = 0.55; // coarse blocks -> stragglers
        p.criticalFraction = 0.0;
        p.maxParallelism = 64;
        p.sharedFraction = 0.05;
        add(std::move(p));
    }

    // vips: image pipeline, moderate scaling.
    {
        ParsecProfile p;
        p.name = "vips";
        p.kernel = kernelProfile(
            "vips.kernel",
            {.load = 0.29, .store = 0.12, .intAlu = 0.33, .intMul = 0.02,
             .fp = 0.12, .branch = 0.12},
            3.3, 0.26, 0.007,
            {{48 * kKiB, 0.75, false}, {28 * kMiB, 0.25, true}});
        p.seqInitInstr = 55'000;
        p.seqFinalInstr = 18'000;
        p.roiInstr = kRoi;
        p.numPhases = 8;
        p.serialPerPhase = 4'000;
        p.imbalanceCv = 0.20;
        p.criticalFraction = 0.004;
        p.maxParallelism = 16;
        p.sharedFraction = 0.35;
        add(std::move(p));
    }

    // x264: wavefront/pipeline encoder; scaling limited by frame
    // dependencies.
    {
        ParsecProfile p;
        p.name = "x264";
        p.kernel = kernelProfile(
            "x264.kernel",
            {.load = 0.28, .store = 0.12, .intAlu = 0.40, .intMul = 0.04,
             .fp = 0.04, .branch = 0.12},
            3.5, 0.28, 0.009,
            {{64 * kKiB, 0.89, false}, {512 * kKiB, 0.09, false},
             {12 * kMiB, 0.02, false}});
        p.seqInitInstr = 35'000;
        p.seqFinalInstr = 15'000;
        p.roiInstr = kRoi;
        p.numPhases = 10;
        p.serialPerPhase = 5'000;
        p.imbalanceCv = 0.30;
        p.criticalFraction = 0.006;
        p.maxParallelism = 16;
        p.sharedFraction = 0.30;
        add(std::move(p));
    }

    return reg;
}

const std::map<std::string, ParsecProfile> &
registry()
{
    static const std::map<std::string, ParsecProfile> reg = buildRegistry();
    return reg;
}

} // namespace

const std::vector<std::string> &
parsecBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "blackscholes", "bodytrack", "canneal",       "dedup",
        "ferret",       "freqmine",  "raytrace",      "streamcluster",
        "swaptions",    "vips",      "x264",
    };
    return names;
}

const ParsecProfile &
parsecProfile(const std::string &name)
{
    const auto &reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end())
        fatal("parsecProfile: unknown benchmark '", name, "'");
    return it->second;
}

const std::vector<const ParsecProfile *> &
parsecProfiles()
{
    static const std::vector<const ParsecProfile *> all = [] {
        std::vector<const ParsecProfile *> v;
        for (const auto &name : parsecBenchmarkNames())
            v.push_back(&parsecProfile(name));
        return v;
    }();
    return all;
}

} // namespace smtflex
