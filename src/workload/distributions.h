/**
 * @file
 * Active-thread-count distributions used to aggregate performance across
 * thread counts (paper Section 4.2): uniform, the datacenter utilisation
 * distribution of Barroso & Holzle adapted to 24 threads, and its mirror.
 */

#ifndef SMTFLEX_WORKLOAD_DISTRIBUTIONS_H
#define SMTFLEX_WORKLOAD_DISTRIBUTIONS_H

#include <cstddef>

#include "common/stats.h"

namespace smtflex {

/** Every thread count 1..max equally likely (Section 4.2.1). */
DiscreteDistribution uniformThreadCounts(std::size_t max_threads = 24);

/**
 * The datacenter CPU-utilisation distribution (Barroso & Holzle) mapped to
 * 1..max threads: a peak at 1 thread (near-zero utilisation) and a second
 * hump around 7-9 threads (~30-40% utilisation), tailing off towards full
 * utilisation (paper Fig. 10a).
 */
DiscreteDistribution datacenterThreadCounts(std::size_t max_threads = 24);

/** The datacenter distribution mirrored around the centre: a heavily
 * loaded server park (peaks at max and around 16-18 threads). */
DiscreteDistribution
mirroredDatacenterThreadCounts(std::size_t max_threads = 24);

} // namespace smtflex

#endif // SMTFLEX_WORKLOAD_DISTRIBUTIONS_H
