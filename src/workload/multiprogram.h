/**
 * @file
 * Multi-program workload construction (paper Section 3.2): homogeneous
 * workloads (n copies of one benchmark) and heterogeneous workloads built
 * with balanced random sampling (Velasquez et al.), where every benchmark
 * appears an equal number of times across the mixes of each thread count.
 */

#ifndef SMTFLEX_WORKLOAD_MULTIPROGRAM_H
#define SMTFLEX_WORKLOAD_MULTIPROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/chip_sim.h"
#include "trace/profile.h"

namespace smtflex {

/** A named list of programs to co-run. */
struct MultiProgramWorkload
{
    std::string name;
    std::vector<const BenchmarkProfile *> programs;

    std::size_t size() const { return programs.size(); }

    /** Expand into ThreadSpecs with a common budget and warmup. */
    std::vector<ThreadSpec> specs(InstrCount budget,
                                  InstrCount warmup = 0) const;
};

/** n copies of one benchmark. */
MultiProgramWorkload homogeneousWorkload(const std::string &benchmark,
                                         std::size_t n);

/**
 * Balanced random heterogeneous mixes for one thread count: @p count mixes
 * of @p n programs such that every one of the 12 benchmarks appears the
 * same number of times overall (requires 12 | count * n or count == 12).
 */
std::vector<MultiProgramWorkload>
heterogeneousWorkloads(std::size_t n, std::size_t count, std::uint64_t seed);

/**
 * Resolve a benchmark name to a mixable single-thread profile: one of the
 * 12 SPEC models, or a PARSEC application's worker kernel (the PARSEC
 * names mix as single-thread programs of that kernel's behaviour).
 * fatal() for unknown names.
 */
const BenchmarkProfile &benchProfileByName(const std::string &name);

/** Every name benchProfileByName accepts: SPEC then PARSEC, canonical
 * order. */
std::vector<std::string> mixableBenchmarkNames();

/**
 * A named mix of arbitrary mixable benchmarks — the workload shape the
 * serve `schedule` op submits. The name ("mix:a+b+c") is a pure function
 * of the list, so memoisation keys agree across clients.
 */
MultiProgramWorkload mixWorkload(const std::vector<std::string> &benchmarks);

} // namespace smtflex

#endif // SMTFLEX_WORKLOAD_MULTIPROGRAM_H
