/**
 * @file
 * PARSEC-like multi-threaded application models (paper Sections 2.1 and 5).
 *
 * Each application is modelled as: a sequential initialisation phase, a
 * parallel region of interest (ROI) consisting of phases separated by
 * barriers with per-thread load imbalance and lock-protected critical
 * sections, and a sequential finalisation phase. Threads that block on a
 * barrier or lock yield the processor (are detached), so the number of
 * active threads varies over time exactly as the paper's Figure 1 shows.
 */

#ifndef SMTFLEX_WORKLOAD_PARSEC_H
#define SMTFLEX_WORKLOAD_PARSEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/profile.h"

namespace smtflex {

/** Behavioural model of one PARSEC-like application. */
struct ParsecProfile
{
    std::string name;
    /** Instruction-level behaviour of the worker threads. */
    BenchmarkProfile kernel;
    /** Instruction-level behaviour of the sequential phases. */
    BenchmarkProfile serialKernel;

    /** Sequential initialisation / finalisation work (instructions). */
    InstrCount seqInitInstr = 0;
    InstrCount seqFinalInstr = 0;

    /** Total parallel work in the ROI (single-thread instructions). */
    InstrCount roiInstr = 0;
    /** Number of barrier-separated phases inside the ROI. */
    std::uint32_t numPhases = 1;
    /** Sequential work the master performs between phases (pipeline
     * refills, reductions); executed while workers wait. */
    InstrCount serialPerPhase = 0;

    /** Coefficient of variation of per-thread work per phase. */
    double imbalanceCv = 0.1;
    /** Fraction of each worker's work inside a global critical section. */
    double criticalFraction = 0.0;
    /** Parallel work divides across at most this many threads (pipeline
     * stage limits etc.); extra threads stay idle. */
    std::uint32_t maxParallelism = 64;
    /** Fraction of worker data accesses going to shared data. */
    double sharedFraction = 0.2;

    void validate() const;
};

/** Names of the modelled PARSEC benchmarks, canonical order. */
const std::vector<std::string> &parsecBenchmarkNames();

/** Look up a model by name; fatal() for unknown names. */
const ParsecProfile &parsecProfile(const std::string &name);

/** All models in canonical order. */
const std::vector<const ParsecProfile *> &parsecProfiles();

} // namespace smtflex

#endif // SMTFLEX_WORKLOAD_PARSEC_H
