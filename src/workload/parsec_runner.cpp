#include "parsec_runner.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "sched/scheduler.h"

namespace smtflex {

namespace {

/** Shared data segment base common to all threads of the application. */
constexpr Addr kSharedBase = Addr{1} << 35;

AddressSpace
spaceFor(const ParsecProfile &app, std::uint32_t tid)
{
    AddressSpace space = AddressSpace::forThread(tid);
    space.sharedBase = kSharedBase;
    space.sharedProb = app.sharedFraction;
    return space;
}

/** Nominal size of one modelled critical section, instructions. */
constexpr InstrCount kCriticalInstr = 300;

} // namespace

ParsecThread::ParsecThread(const ParsecProfile &app, std::uint32_t tid,
                           std::uint64_t seed)
    : workerGen_(app.kernel, seed, tid, spaceFor(app, tid)),
      serialGen_(app.serialKernel, seed, 1000 + tid, spaceFor(app, tid))
{
}

MicroOp
ParsecThread::nextOp()
{
    ++generated_;
    return useSerial_ ? serialGen_.next() : workerGen_.next();
}

bool
ParsecThread::hasWork()
{
    return runnable_ && generated_ < target_;
}

void
ParsecThread::onRetire(Cycle now)
{
    (void)now;
    ++retired_;
    ++totalRetired_;
}

void
ParsecThread::onStagedOpDropped()
{
    // The op was generated but never executed (context switch); it will be
    // regenerated, so it must not count against the segment target.
    if (generated_ > retired_)
        --generated_;
}

void
ParsecThread::startSegment(InstrCount instr, bool serial_kernel)
{
    target_ = instr;
    generated_ = 0;
    retired_ = 0;
    useSerial_ = serial_kernel;
    runnable_ = true;
}

ParsecRunner::ParsecRunner(const ChipConfig &config, const ParsecProfile &app,
                           std::uint32_t num_threads, std::uint64_t seed,
                           bool throttle_critical)
    : config_(config), app_(&app), numThreads_(num_threads), seed_(seed),
      throttleCritical_(throttle_critical),
      rng_(seed, 0xbabb1e), roiHistogram_(config.totalContexts() + 8)
{
    app.validate();
    if (num_threads == 0)
        fatal("ParsecRunner: zero threads");
    const auto order = slotFillOrder(config_);
    if (num_threads > order.size())
        fatal("ParsecRunner: ", num_threads, " threads exceed ",
              order.size(), " hardware contexts of ", config_.name);
    pinning_.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(num_threads));

    chip_ = std::make_unique<ChipSim>(config_);
    for (std::uint32_t t = 0; t < num_threads; ++t)
        threads_.push_back(std::make_unique<ParsecThread>(app, t, seed));
    state_.assign(num_threads, ThreadState::kIdle);
    attached_.assign(num_threads, false);
    throttled_.assign(num_threads, false);
    plan_.resize(num_threads);
}

void
ParsecRunner::attachThread(std::uint32_t tid)
{
    if (attached_[tid])
        return;
    chip_->attach(pinning_[tid].core, pinning_[tid].slot,
                  threads_[tid].get());
    attached_[tid] = true;
}

void
ParsecRunner::detachThread(std::uint32_t tid)
{
    if (!attached_[tid])
        return;
    chip_->detach(pinning_[tid].core, pinning_[tid].slot);
    attached_[tid] = false;
}

void
ParsecRunner::startPhase(std::uint32_t phase)
{
    currentPhase_ = phase;
    barrierArrived_ = 0;

    // Work division: the phase's work is split across at most
    // maxParallelism workers; extra threads get nothing and go straight to
    // the barrier.
    const std::uint32_t workers =
        std::min(numThreads_, app_->maxParallelism);
    const double phase_work = static_cast<double>(app_->roiInstr) /
        static_cast<double>(app_->numPhases);
    const double base = phase_work / static_cast<double>(workers);

    for (std::uint32_t t = 0; t < numThreads_; ++t) {
        plan_[t].clear();
        if (t >= workers)
            continue;
        double chunk = base;
        if (app_->imbalanceCv > 0.0)
            chunk = rng_.nextLognormal(base, app_->imbalanceCv);
        const auto chunk_instr = static_cast<InstrCount>(
            std::max<long long>(1, std::llround(chunk)));

        // Interleave critical sections of ~kCriticalInstr instructions.
        InstrCount n_crit = 0;
        if (app_->criticalFraction > 0.0) {
            n_crit = static_cast<InstrCount>(std::llround(
                static_cast<double>(chunk_instr) * app_->criticalFraction /
                static_cast<double>(kCriticalInstr)));
        }
        if (n_crit == 0) {
            plan_[t].push_back({chunk_instr, false});
        } else {
            const InstrCount crit_total =
                std::min(chunk_instr, n_crit * kCriticalInstr);
            const InstrCount normal_total = chunk_instr - crit_total;
            const InstrCount normal_piece = normal_total / (n_crit + 1);
            InstrCount normal_left = normal_total;
            for (InstrCount c = 0; c < n_crit; ++c) {
                if (normal_piece > 0) {
                    plan_[t].push_back({normal_piece, false});
                    normal_left -= normal_piece;
                }
                plan_[t].push_back({kCriticalInstr, true});
            }
            if (normal_left > 0)
                plan_[t].push_back({normal_left, false});
        }
    }

    // Launch: threads with work start running; others arrive at the
    // barrier immediately.
    for (std::uint32_t t = 0; t < numThreads_; ++t) {
        if (plan_[t].empty()) {
            state_[t] = ThreadState::kAtBarrier;
            ++barrierArrived_;
        } else {
            state_[t] = ThreadState::kRunning;
            beginNextSegment(t);
        }
    }
    // Degenerate case: nobody had work.
    if (barrierArrived_ == numThreads_)
        onBarrierComplete();
}

void
ParsecRunner::beginNextSegment(std::uint32_t tid)
{
    const Segment seg = plan_[tid].front();
    if (seg.critical) {
        if (lockHeld_) {
            state_[tid] = ThreadState::kWantLock;
            threads_[tid]->setRunnable(false);
            detachThread(tid); // yield while waiting for the lock
            lockQueue_.push_back(tid);
            return;
        }
        lockHeld_ = true;
        state_[tid] = ThreadState::kInCritical;
        attachThread(tid);
        threads_[tid]->startSegment(seg.instr, /*serial_kernel=*/false);
        throttleCoRunners(tid);
        return;
    }
    state_[tid] = ThreadState::kRunning;
    attachThread(tid);
    threads_[tid]->startSegment(seg.instr, /*serial_kernel=*/false);
}

void
ParsecRunner::throttleCoRunners(std::uint32_t holder)
{
    if (!throttleCritical_)
        return;
    for (std::uint32_t t = 0; t < numThreads_; ++t) {
        if (t == holder || !attached_[t] || throttled_[t])
            continue;
        if (pinning_[t].core != pinning_[holder].core)
            continue;
        if (state_[t] != ThreadState::kRunning)
            continue;
        // Pause: the co-runner keeps its (partial) segment progress; the
        // staged-op loss at detach is the context-switch cost.
        threads_[t]->setRunnable(false);
        detachThread(t);
        throttled_[t] = true;
    }
}

void
ParsecRunner::unthrottleCoRunners(std::uint32_t holder)
{
    if (!throttleCritical_)
        return;
    for (std::uint32_t t = 0; t < numThreads_; ++t) {
        if (!throttled_[t] || pinning_[t].core != pinning_[holder].core)
            continue;
        throttled_[t] = false;
        threads_[t]->setRunnable(true);
        attachThread(t);
    }
}

void
ParsecRunner::grantLockToNextWaiter()
{
    if (lockQueue_.empty())
        return;
    const std::uint32_t tid = lockQueue_.front();
    lockQueue_.pop_front();
    lockHeld_ = true;
    state_[tid] = ThreadState::kInCritical;
    attachThread(tid);
    threads_[tid]->startSegment(plan_[tid].front().instr,
                                /*serial_kernel=*/false);
    throttleCoRunners(tid);
}

void
ParsecRunner::handleSegmentDone(std::uint32_t tid)
{
    switch (appState_) {
      case AppState::kInit:
        // Master finished initialisation: enter the ROI.
        roiStart_ = chip_->now();
        appState_ = AppState::kRoi;
        detachThread(tid);
        state_[tid] = ThreadState::kIdle;
        startPhase(0);
        return;

      case AppState::kInterPhaseSerial:
        // Master finished the serial bridge; next parallel phase.
        detachThread(tid);
        state_[tid] = ThreadState::kIdle;
        appState_ = AppState::kRoi;
        startPhase(currentPhase_ + 1);
        return;

      case AppState::kFinal:
        detachThread(tid);
        state_[tid] = ThreadState::kDone;
        appState_ = AppState::kDone;
        return;

      case AppState::kRoi:
        break;
      case AppState::kDone:
        return;
    }

    // ROI: a worker finished a segment.
    if (state_[tid] == ThreadState::kInCritical) {
        lockHeld_ = false;
        unthrottleCoRunners(tid);
        grantLockToNextWaiter();
    }
    plan_[tid].pop_front();

    if (!plan_[tid].empty()) {
        beginNextSegment(tid);
        return;
    }

    // Phase work exhausted: arrive at the barrier (yield).
    threads_[tid]->setRunnable(false);
    detachThread(tid);
    state_[tid] = ThreadState::kAtBarrier;
    ++barrierArrived_;
    if (barrierArrived_ == numThreads_)
        onBarrierComplete();
}

void
ParsecRunner::onBarrierComplete()
{
    const bool last_phase = currentPhase_ + 1 >= app_->numPhases;
    if (last_phase) {
        // ROI ends at the final barrier.
        roiEnd_ = chip_->now();
        appState_ = AppState::kFinal;
        for (std::uint32_t t = 1; t < numThreads_; ++t)
            state_[t] = ThreadState::kDone;
        if (app_->seqFinalInstr > 0) {
            state_[0] = ThreadState::kRunning;
            attachThread(0);
            threads_[0]->startSegment(app_->seqFinalInstr, true);
        } else {
            state_[0] = ThreadState::kDone;
            appState_ = AppState::kDone;
        }
        return;
    }

    if (app_->serialPerPhase > 0) {
        // Master bridges the phases sequentially while workers wait.
        appState_ = AppState::kInterPhaseSerial;
        state_[0] = ThreadState::kRunning;
        attachThread(0);
        threads_[0]->startSegment(app_->serialPerPhase, true);
        return;
    }
    startPhase(currentPhase_ + 1);
}

ParsecRunResult
ParsecRunner::run(Cycle max_cycles)
{
    // Functional cache warmup of each worker's resident working set on its
    // pinned core (the sequential init phase handles the rest).
    std::vector<ChipSim::WarmSpec> warm;
    for (std::uint32_t t = 0; t < numThreads_; ++t)
        warm.push_back({&app_->kernel, spaceFor(*app_, t),
                        pinning_[t].core});
    chip_->warmAllCaches(warm);

    // Sequential initialisation on the big core (slot 0 of the fill order).
    appState_ = AppState::kInit;
    state_[0] = ThreadState::kRunning;
    attachThread(0);
    threads_[0]->startSegment(std::max<InstrCount>(app_->seqInitInstr, 1),
                              true);

    while (appState_ != AppState::kDone && chip_->now() < max_cycles) {
        chip_->tick();
        if (appState_ == AppState::kRoi ||
            appState_ == AppState::kInterPhaseSerial) {
            roiHistogram_.add(chip_->attachedThreads(), 1.0);
        }
        // Poll for completed segments (cheap: two integer compares each).
        for (std::uint32_t t = 0; t < numThreads_; ++t) {
            if (attached_[t] &&
                (state_[t] == ThreadState::kRunning ||
                 state_[t] == ThreadState::kInCritical ||
                 appState_ == AppState::kInit ||
                 appState_ == AppState::kInterPhaseSerial ||
                 appState_ == AppState::kFinal) &&
                threads_[t]->segmentDone()) {
                handleSegmentDone(t);
            }
        }
    }

    ParsecRunResult result;
    result.completed = appState_ == AppState::kDone;
    if (!result.completed)
        warn("ParsecRunner ", app_->name, " on ", config_.name,
             ": hit cycle limit");
    result.sim = chip_->collectResult();
    result.roiStartCycle = roiStart_;
    result.roiEndCycle = roiEnd_;
    result.totalCycles = chip_->now();
    result.roiActiveThreadFractions.resize(roiHistogram_.numBuckets());
    for (std::size_t k = 0; k < roiHistogram_.numBuckets(); ++k)
        result.roiActiveThreadFractions[k] = roiHistogram_.fraction(k);
    return result;
}

} // namespace smtflex
