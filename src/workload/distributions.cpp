#include "distributions.h"

#include <cmath>
#include <vector>

#include "common/log.h"

namespace smtflex {

DiscreteDistribution
uniformThreadCounts(std::size_t max_threads)
{
    if (max_threads == 0)
        fatal("uniformThreadCounts: zero thread count");
    return DiscreteDistribution(std::vector<double>(max_threads, 1.0));
}

DiscreteDistribution
datacenterThreadCounts(std::size_t max_threads)
{
    if (max_threads == 0)
        fatal("datacenterThreadCounts: zero thread count");
    // Two-component shape fitted to paper Fig. 10a (peak ~0.11 at 1 thread,
    // hump ~0.065 around 7-9 threads, ~0.01 tail at 24): an exponential
    // idle peak plus a Gaussian hump at 1/3 utilisation.
    std::vector<double> w(max_threads);
    const double hump_centre = 8.0 * static_cast<double>(max_threads) / 24.0;
    const double hump_width = 3.5 * static_cast<double>(max_threads) / 24.0;
    for (std::size_t i = 0; i < max_threads; ++i) {
        const double n = static_cast<double>(i + 1);
        const double idle_peak = 0.105 * std::exp(-(n - 1.0) / 1.6);
        const double hump = 0.062 *
            std::exp(-0.5 * std::pow((n - hump_centre) / hump_width, 2.0));
        const double floor = 0.008;
        w[i] = idle_peak + hump + floor;
    }
    return DiscreteDistribution(std::move(w));
}

DiscreteDistribution
mirroredDatacenterThreadCounts(std::size_t max_threads)
{
    return datacenterThreadCounts(max_threads).mirrored();
}

} // namespace smtflex
