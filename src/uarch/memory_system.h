/**
 * @file
 * Interface between a core's private cache hierarchy and the shared
 * memory system (crossbar + LLC + DRAM), implemented in sim/.
 */

#ifndef SMTFLEX_UARCH_MEMORY_SYSTEM_H
#define SMTFLEX_UARCH_MEMORY_SYSTEM_H

#include <cstdint>

#include "common/types.h"

namespace smtflex {

/**
 * The shared side of the memory hierarchy as seen by one core.
 * All times are in global (chip-clock) cycles.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /**
     * Demand-fetch the line containing @p addr (L2 miss) at cycle @p now.
     * @return the global cycle at which the line arrives at the core.
     */
    virtual Cycle fetchLine(Cycle now, Addr addr, std::uint32_t core_id) = 0;

    /** Post a dirty-line writeback from a core's L2 (no completion needed). */
    virtual void writebackLine(Cycle now, Addr addr,
                               std::uint32_t core_id) = 0;
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_MEMORY_SYSTEM_H
