/**
 * @file
 * A core's private cache hierarchy: L1I, L1D and unified L2, with an MSHR
 * limit on outstanding misses past the L2.
 *
 * All SMT contexts of a core share this hierarchy, so cache contention (and
 * the constructive sharing the paper observes for smart co-schedules)
 * emerges naturally from the interleaved address streams.
 */

#ifndef SMTFLEX_UARCH_PRIVATE_HIERARCHY_H
#define SMTFLEX_UARCH_PRIVATE_HIERARCHY_H

#include <array>
#include <cstdint>
#include <optional>

#include "cache/cache.h"
#include "ckpt/serial.h"
#include "common/types.h"
#include "uarch/core_params.h"
#include "uarch/memory_system.h"

namespace smtflex {

/** Which level served an access (for statistics and power accounting). */
enum class MemLevel : std::uint8_t { kL1 = 1, kL2, kBeyond };

/** Outcome of a data or instruction access. */
struct MemAccess
{
    /** Global cycle at which the value is available to the core. */
    Cycle completion = 0;
    /** Deepest level involved. */
    MemLevel level = MemLevel::kL1;
    /** L1 hit on a line installed by the prefetcher (first demand touch);
     * re-arms the next-line prefetch stream. */
    bool l1PrefetchHit = false;
};

/**
 * Private two-level hierarchy in front of the shared memory system.
 * All times are global cycles; the owning core converts to core cycles.
 */
class PrivateHierarchy
{
  public:
    PrivateHierarchy(const CoreParams &params, std::uint32_t core_id,
                     MemorySystem *shared);

    /**
     * Data access at global cycle @p now. Returns std::nullopt when all
     * MSHRs are busy (the core must retry next cycle); otherwise the access
     * is performed and its completion time returned.
     */
    std::optional<MemAccess> dataAccess(Cycle now, Addr addr, bool is_write);

    /**
     * Instruction fetch of line @p addr. Instruction fetches are never
     * rejected (the front end has a dedicated fill path); they allocate an
     * MSHR opportunistically when one is free.
     */
    MemAccess instrAccess(Cycle now, Addr addr);

    /** Number of misses currently outstanding past the L2. */
    std::uint32_t outstandingMisses(Cycle now) const;

    /**
     * True when dataAccess(@p now, @p addr, ...) would certainly be
     * rejected for lack of a free MSHR — the exact reject fast path of
     * accessInternal(), evaluated as a pure probe (no statistics, no LRU
     * movement). Used by the cores' fast-forward analysis: while this
     * holds, a retrying context performs no state change other than
     * counting an mshrStallEvent.
     */
    bool wouldRejectData(Cycle now, Addr addr) const;

    /**
     * Earliest global cycle strictly after @p now at which an outstanding
     * miss completes (i.e. the MSHR occupancy, and with it the reject
     * outcome above, can next change); kCycleNever when nothing is
     * outstanding.
     */
    Cycle earliestPendingFill(Cycle now) const;

    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }

    /** Drop all cached state (used between independent simulations). */
    void invalidateAll();

    /**
     * Functional warmup: install @p addr into the private levels it would
     * be resident in (L2 always; L1 only when the line plausibly fits,
     * i.e. the owning region is small — the caller decides via
     * @p also_l1). Zero simulated time, no statistics.
     */
    void warmLine(Addr addr, bool is_instr, bool also_l1);

    /** Serialize/restore the mutable state (all three caches and the
     * MSHR occupancy ring). */
    void saveState(ckpt::Writer &w) const
    {
        l1i_.saveState(w);
        l1d_.saveState(w);
        l2_.saveState(w);
        w.u64(mshrIndex_);
        for (const Cycle c : mshrCompletion_)
            w.u64(c);
    }
    void loadState(ckpt::Reader &r)
    {
        l1i_.loadState(r);
        l1d_.loadState(r);
        l2_.loadState(r);
        mshrIndex_ = r.u64();
        for (Cycle &c : mshrCompletion_)
            c = r.u64();
    }

  private:
    std::optional<MemAccess> accessInternal(Cycle now, Addr addr,
                                            bool is_write, bool is_instr,
                                            bool mark_prefetched = false);
    /** Record an outstanding miss completing at @p completion; returns false
     * if no MSHR is free at @p now. */
    bool allocateMshr(Cycle now, Cycle completion);

    const CoreParams params_;
    std::uint32_t coreId_;
    MemorySystem *shared_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;

    /** Completion times of the most recent misses (MSHR occupancy). */
    static constexpr std::uint32_t kMshrRing = 32;
    std::array<Cycle, kMshrRing> mshrCompletion_{};
    std::uint64_t mshrIndex_ = 0;
    /** Guard against prefetch recursion. */
    bool prefetching_ = false;
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_PRIVATE_HIERARCHY_H
