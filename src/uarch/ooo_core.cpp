#include "ooo_core.h"

#include <algorithm>

#include "common/log.h"

namespace smtflex {

OooCore::OooCore(const CoreParams &params, std::uint32_t core_id,
                 std::uint32_t num_contexts, MemorySystem *shared,
                 double chip_freq_ghz)
    : Core(params, core_id, num_contexts, shared, chip_freq_ghz)
{
    // coreCycle() arbitrates fetch through a fixed order[16] array; a
    // wider configuration must fail here, loudly, not corrupt the stack.
    if (numContexts() > 16)
        fatal("OooCore ", params_.name, ": ", numContexts(),
              " contexts exceed the 16-context fetch-arbitration limit");
}

Cycle
OooCore::nextEventCycle(Cycle global_now)
{
    skipRobStallContexts_ = 0;
    skipMshrStallContexts_ = 0;
    const std::uint32_t partition = robPartitionSize();
    Cycle event = earliestHeadCompletion(); // core cycles
    std::uint64_t rob_stalled = 0;
    std::uint64_t mshr_stalled = 0;
    for (auto &ctx : contexts_) {
        if (!ctx.thread && !ctx.hasStaged)
            continue; // retirement only, covered by the head completion
        if (ctx.frontStallUntil > coreNow_) {
            // Redirect or I-miss in progress: dispatchFrom returns before
            // touching any state until the stall expires.
            event = std::min(event, ctx.frontStallUntil);
            continue;
        }
        if (ctx.robCount >= partition) {
            // Full ROB partition: one robStallEvent per cycle, nothing
            // else; dispatch can only resume once the head retires.
            ++rob_stalled;
            continue;
        }
        if (!ctx.hasStaged) {
            if (ctx.thread && ctx.thread->hasWork())
                return global_now + 1; // stages and dispatches next cycle
            continue; // out of work: only retirement remains
        }
        // A staged op dispatches next cycle unless it is a data access the
        // memory system keeps rejecting for MSHR exhaustion. That retry
        // loop is only analysable without probe-time rounding jitter at a
        // unit clock ratio.
        const MicroOp &op = ctx.staged;
        if ((op.cls != OpClass::kLoad && op.cls != OpClass::kStore) ||
            (op.fetchLineCross && !ctx.stagedFetchDone) ||
            clockRatio_ != 1.0) {
            return global_now + 1;
        }
        const Cycle ready =
            std::max<Cycle>(coreNow_ + 1, dependencyReady(ctx, op));
        const Cycle probe = globalFromCore(ready);
        if (!hierarchy_.wouldRejectData(probe, op.addr))
            return global_now + 1; // would dispatch next cycle
        // Rejected: one mshrStallEvent per cycle until the probe time can
        // reach the earliest outstanding fill.
        ++mshr_stalled;
        const Cycle fill = hierarchy_.earliestPendingFill(probe);
        const Cycle flip = coreFromGlobal(fill);
        event = std::min(event,
                         flip > coreNow_ + 2 ? flip - 1 : coreNow_ + 1);
    }
    skipRobStallContexts_ = rob_stalled;
    skipMshrStallContexts_ = mshr_stalled;
    return globalCycleForCoreEvent(global_now, event);
}

void
OooCore::onSkippedCoreCycles(Cycle core_cycles)
{
    // ICOUNT ordering does not touch the rotor; round-robin bumps it once
    // per core cycle.
    if (!(params_.fetchPolicy == FetchPolicy::kIcount && numContexts() > 1))
        fetchRotor_ += static_cast<std::uint32_t>(core_cycles);
    stats_.robStallEvents += skipRobStallContexts_ * core_cycles;
    stats_.mshrStallEvents += skipMshrStallContexts_ * core_cycles;
}

void
OooCore::resetFuBudgets()
{
    fuLeft_[static_cast<int>(OpClass::kIntAlu)] = params_.intUnits;
    fuLeft_[static_cast<int>(OpClass::kBranch)] = params_.intUnits;
    fuLeft_[static_cast<int>(OpClass::kIntMul)] = params_.mulUnits;
    fuLeft_[static_cast<int>(OpClass::kFpOp)] = params_.fpUnits;
    fuLeft_[static_cast<int>(OpClass::kLoad)] = params_.ldstUnits;
    fuLeft_[static_cast<int>(OpClass::kStore)] = params_.ldstUnits;
}

bool
OooCore::fuAvailable(OpClass cls) const
{
    return fuLeft_[static_cast<int>(cls)] > 0;
}

void
OooCore::consumeFu(OpClass cls)
{
    --fuLeft_[static_cast<int>(cls)];
    // Branches and simple ALU ops share the integer units; loads and stores
    // share the ld/st ports. Keep the paired budget consistent.
    if (cls == OpClass::kIntAlu)
        fuLeft_[static_cast<int>(OpClass::kBranch)] =
            fuLeft_[static_cast<int>(OpClass::kIntAlu)];
    else if (cls == OpClass::kBranch)
        fuLeft_[static_cast<int>(OpClass::kIntAlu)] =
            fuLeft_[static_cast<int>(OpClass::kBranch)];
    else if (cls == OpClass::kLoad)
        fuLeft_[static_cast<int>(OpClass::kStore)] =
            fuLeft_[static_cast<int>(OpClass::kLoad)];
    else if (cls == OpClass::kStore)
        fuLeft_[static_cast<int>(OpClass::kLoad)] =
            fuLeft_[static_cast<int>(OpClass::kStore)];
}

OooCore::StopReason
OooCore::dispatchFrom(Context &ctx, std::uint32_t &budget)
{
    const std::uint32_t partition = robPartitionSize();

    while (budget > 0) {
        if (ctx.frontStallUntil > coreNow_)
            return StopReason::kNone; // redirect in progress
        if (ctx.robCount >= partition) {
            ++stats_.robStallEvents;
            return StopReason::kRobFull;
        }

        // Stage the next op if needed.
        if (!ctx.hasStaged) {
            if (!ctx.thread || !ctx.thread->hasWork())
                return StopReason::kNoWork;
            ctx.staged = ctx.thread->nextOp();
            ctx.hasStaged = true;
            ctx.stagedFetchDone = false;
        }
        MicroOp &op = ctx.staged;

        // Instruction-cache probe for ops starting a new fetch line.
        if (op.fetchLineCross && !ctx.stagedFetchDone) {
            const MemAccess fetch =
                hierarchy_.instrAccess(globalNow_, op.fetchAddr);
            ctx.stagedFetchDone = true;
            if (fetch.level != MemLevel::kL1) {
                ctx.frontStallUntil = coreFromGlobal(fetch.completion);
                return StopReason::kNone;
            }
        }

        if (!fuAvailable(op.cls))
            return StopReason::kFuBusy;

        // Earliest execution start: dispatch next cycle, after producers.
        const Cycle ready =
            std::max<Cycle>(coreNow_ + 1, dependencyReady(ctx, op));

        Cycle completion;
        switch (op.cls) {
          case OpClass::kLoad: {
            const auto access = hierarchy_.dataAccess(
                globalFromCore(ready), op.addr, false);
            if (!access) {
                ++stats_.mshrStallEvents;
                return StopReason::kMshrFull;
            }
            completion = std::max(ready + params_.latL1,
                                  coreFromGlobal(access->completion));
            break;
          }
          case OpClass::kStore: {
            const auto access = hierarchy_.dataAccess(
                globalFromCore(ready), op.addr, true);
            if (!access) {
                ++stats_.mshrStallEvents;
                return StopReason::kMshrFull;
            }
            // The store buffer hides the fill latency from the thread.
            completion = ready + 1;
            break;
          }
          case OpClass::kIntMul:
            completion = ready + params_.latIntMul;
            break;
          case OpClass::kFpOp:
            completion = ready + params_.latFp;
            break;
          case OpClass::kBranch:
            completion = ready + params_.latBranch;
            if (op.mispredict) {
                ++stats_.mispredicts;
                ctx.frontStallUntil = completion + params_.mispredictPenalty;
            }
            break;
          default:
            completion = ready + params_.latIntAlu;
            break;
        }

        recordCompletion(ctx, completion);
        pushInFlight(ctx, completion);
        ++stats_.dispatched[static_cast<int>(op.cls)];
        consumeFu(op.cls);
        --budget;
        const bool was_mispredict =
            op.cls == OpClass::kBranch && op.mispredict;
        ctx.hasStaged = false;
        ctx.stagedFetchDone = false;
        if (was_mispredict)
            return StopReason::kNone; // no ops past an unresolved redirect
    }
    return StopReason::kNone;
}

void
OooCore::coreCycle()
{
    retireCycle(params_.width);

    resetFuBudgets();
    std::uint32_t budget = params_.width;
    const std::uint32_t n = numContexts();

    // Fetch arbitration: visit order of the SMT contexts this cycle.
    std::uint32_t order[16];
    if (params_.fetchPolicy == FetchPolicy::kIcount && n > 1) {
        // ICOUNT: fewest in-flight ops first (stable by index).
        for (std::uint32_t i = 0; i < n; ++i)
            order[i] = i;
        for (std::uint32_t i = 1; i < n; ++i) {
            const std::uint32_t v = order[i];
            std::uint32_t j = i;
            while (j > 0 &&
                   contexts_[order[j - 1]].robCount >
                       contexts_[v].robCount) {
                order[j] = order[j - 1];
                --j;
            }
            order[j] = v;
        }
    } else {
        const std::uint32_t start = fetchRotor_++ % n;
        for (std::uint32_t i = 0; i < n; ++i)
            order[i] = (start + i) % n;
    }

    bool dispatched_any = false;
    for (std::uint32_t k = 0; k < n && budget > 0; ++k) {
        Context &ctx = contexts_[order[k]];
        if (!ctx.thread && !ctx.hasStaged)
            continue;
        const std::uint32_t before = budget;
        dispatchFrom(ctx, budget);
        dispatched_any |= (budget != before);
    }
    stats_.busyCycles += dispatched_any;
}

} // namespace smtflex
