/**
 * @file
 * Base class of the cycle-level core models: SMT context bookkeeping,
 * in-order retirement, clock-domain conversion, and statistics. The
 * out-of-order (OooCore) and in-order (InOrderCore) models derive from it.
 */

#ifndef SMTFLEX_UARCH_CORE_H
#define SMTFLEX_UARCH_CORE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"
#include "telemetry/registry.h"
#include "trace/uop.h"
#include "uarch/core_params.h"
#include "uarch/private_hierarchy.h"
#include "uarch/thread_source.h"

namespace smtflex {

/** Per-core activity counters (timing + power accounting inputs). */
struct CoreStats
{
    /** Core cycles executed while the core had at least one thread. */
    std::uint64_t coreCycles = 0;
    /** Core cycles in which at least one op dispatched. */
    std::uint64_t busyCycles = 0;
    /** Dispatched op counts per OpClass. */
    std::uint64_t dispatched[kNumOpClasses] = {};
    /** Ops retired. */
    std::uint64_t retired = 0;
    /** Mispredicted branches dispatched. */
    std::uint64_t mispredicts = 0;
    /** Core cycles in which a context wanted to dispatch but its ROB
     * partition was full (long-latency miss shadow). */
    std::uint64_t robStallEvents = 0;
    /** Dispatch attempts rejected because all MSHRs were busy. */
    std::uint64_t mshrStallEvents = 0;

    std::uint64_t totalDispatched() const
    {
        std::uint64_t sum = 0;
        for (const auto d : dispatched)
            sum += d;
        return sum;
    }

    /** The telemetry field list for the scalar counters — the dispatched[]
     * array registers separately under `dispatch.<op_class>`. */
    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("core_cycles", &CoreStats::coreCycles);
        f("busy_cycles", &CoreStats::busyCycles);
        f("retired", &CoreStats::retired);
        f("mispredicts", &CoreStats::mispredicts);
        f("rob_stall_events", &CoreStats::robStallEvents);
        f("mshr_stall_events", &CoreStats::mshrStallEvents);
    }
};

/**
 * A hardware core with SMT contexts, attached to the shared memory system.
 *
 * Time: the chip (uncore) runs at a global clock; the core may run at a
 * different frequency (Section 8.1 "hf" variants). tick() is called once per
 * global cycle and internally advances zero or more core cycles.
 */
class Core : public telemetry::StatsProvider<CoreStats>
{
  public:
    /**
     * @param params microarchitecture parameters.
     * @param core_id index within the chip (for the shared memory system).
     * @param num_contexts SMT contexts exposed (1 = SMT disabled);
     *        must not exceed params.maxSmtContexts.
     * @param shared shared memory system (not owned).
     * @param chip_freq_ghz global clock the uncore runs at.
     */
    Core(const CoreParams &params, std::uint32_t core_id,
         std::uint32_t num_contexts, MemorySystem *shared,
         double chip_freq_ghz);
    virtual ~Core() = default;

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    std::uint32_t coreId() const { return coreId_; }
    const CoreParams &params() const { return params_; }
    std::uint32_t numContexts() const
    {
        return static_cast<std::uint32_t>(contexts_.size());
    }

    /** Attach a thread to context @p slot (must be empty). */
    void attachThread(std::uint32_t slot, ThreadSource *thread);

    /** Detach and return the thread at @p slot (may be null). In-flight ops
     * of the detached thread still retire to it. */
    ThreadSource *detachThread(std::uint32_t slot);

    ThreadSource *threadAt(std::uint32_t slot) const;

    /** Number of contexts with a thread attached. */
    std::uint32_t activeContexts() const;

    /** True when no thread is attached and no op is in flight. */
    bool quiescent() const;

    /** Advance the core by one global cycle. */
    void tick(Cycle global_now);

    /**
     * Conservative earliest global cycle at which this core could dispatch,
     * retire an op, or otherwise change architectural or statistics state.
     * Every global cycle strictly before the returned one is provably
     * inert: ticking through it would only advance cycle counters, the
     * round-robin rotors, and per-cycle stall-event counters — exactly the
     * effects skipTicks() replays in bulk. Returns global_now + 1 when the
     * core may act on the very next cycle (no skip possible) and
     * kCycleNever when the core is idle with nothing in flight.
     *
     * Must be called with @p global_now equal to the core's last ticked
     * cycle, and immediately before any skipTicks() call: the
     * classification of stalled contexts it caches is what
     * onSkippedCoreCycles() replays.
     */
    virtual Cycle nextEventCycle(Cycle global_now)
    {
        return global_now + 1; // models without a fast-forward analysis
    }

    /**
     * Bulk-advance @p count global cycles, all of which must lie strictly
     * before the cycle returned by an immediately preceding
     * nextEventCycle() call. Replays exactly what @p count tick() calls
     * would have done on a provably inert core, including the exact
     * floating-point clock-accumulator sequence for non-unit clock ratios.
     */
    void skipTicks(Cycle count);

    /**
     * Register the core's counters and its private hierarchy under
     * @p prefix (e.g. "core.3"): the CoreStats scalars, one
     * `dispatch.<op_class>` counter per OpClass, and the l1i/l1d/l2
     * cache counters.
     */
    void registerMetrics(telemetry::MetricRegistry &registry,
                         const std::string &prefix) const
    {
        telemetry::attachCounters(registry, prefix, stats_);
        for (int c = 0; c < kNumOpClasses; ++c)
            registry.counter(prefix + ".dispatch." +
                                 opClassMetricName(static_cast<OpClass>(c)),
                             &stats_.dispatched[c]);
        hierarchy_.l1i().registerMetrics(registry, prefix + ".l1i");
        hierarchy_.l1d().registerMetrics(registry, prefix + ".l1d");
        hierarchy_.l2().registerMetrics(registry, prefix + ".l2");
    }

    PrivateHierarchy &hierarchy() { return hierarchy_; }
    const PrivateHierarchy &hierarchy() const { return hierarchy_; }

    /** Core-cycles actually executed (for utilisation/power). */
    Cycle coreNow() const { return coreNow_; }

    /**
     * Serialize the core's complete mutable state (clock domain, rotors,
     * statistics, private hierarchy, every SMT context including staged
     * ops and retirement queues, plus model-specific extras via
     * saveDerived()). ThreadSource pointers are mapped to stable indices
     * by @p thread_index (null maps to a sentinel) — the caller owns the
     * thread table. Must be called in a strict-equivalent state (after
     * the chip's wakeAllCores()).
     */
    void saveState(
        ckpt::Writer &w,
        const std::function<std::uint32_t(const ThreadSource *)>
            &thread_index) const;

    /** Restore state saved by an identically configured core; throws
     * ckpt::CorruptSnapshot on structural mismatch. @p thread_at maps
     * the indices back to the resuming run's ThreadSources. */
    void loadState(
        ckpt::Reader &r,
        const std::function<ThreadSource *(std::uint32_t)> &thread_at);

  protected:
    /** One retirement-queue entry. */
    struct InFlightOp
    {
        Cycle completion = 0; ///< core cycles
        ThreadSource *thread = nullptr;
    };

    /** Per-SMT-context state shared by both core models. */
    struct Context
    {
        ThreadSource *thread = nullptr;

        /** Staged op that could not dispatch yet (nothing is ever
         * "ungenerated"). */
        MicroOp staged{};
        bool hasStaged = false;
        /** I-cache probe for the staged op already performed. */
        bool stagedFetchDone = false;

        /** Front-end unavailable until this core cycle (mispredict redirect
         * or I-cache miss). */
        Cycle frontStallUntil = 0;
        /** In-order models: whole context stalled until this core cycle. */
        Cycle stallUntil = 0;

        /** Dependency window: completion cycle of recent producers. */
        static constexpr std::uint32_t kDepWindow = 64;
        Cycle depCompletion[kDepWindow] = {};
        std::uint64_t opIndex = 0;

        /** Retirement queue (ROB partition / in-order pipeline buffer). */
        std::vector<InFlightOp> rob;
        std::uint32_t robHead = 0;
        std::uint32_t robCount = 0;
    };

    /** Advance the model by one core cycle (coreNow_ already updated). */
    virtual void coreCycle() = 0;

    /**
     * Replay the model-specific per-cycle effects of @p core_cycles inert
     * core cycles (fetch rotor, stall-event accrual). Called by
     * skipTicks() after the shared counters have been advanced; the
     * context classification cached by the last nextEventCycle() call is
     * still valid because no context changes state inside a skipped span.
     */
    virtual void onSkippedCoreCycles(Cycle core_cycles)
    {
        (void)core_cycles;
    }

    /** Model-specific extra state appended to / consumed from the base
     * stream by saveState()/loadState(). */
    virtual void saveDerived(ckpt::Writer &w) const { (void)w; }
    virtual void loadDerived(ckpt::Reader &r) { (void)r; }

    /** Earliest core cycle any context could retire its ROB head
     * (kCycleNever when nothing is in flight). */
    Cycle earliestHeadCompletion() const;

    /**
     * First global cycle whose tick() would reach core cycle
     * @p core_event, estimated conservatively (never late, possibly a
     * cycle or two early) for non-unit clock ratios. Returns
     * global_now + 1 for overdue events and kCycleNever for kCycleNever.
     */
    Cycle globalCycleForCoreEvent(Cycle global_now, Cycle core_event) const;

    /** Retire up to @p budget completed ops across contexts (in order per
     * context, round-robin across contexts). Returns ops retired. */
    std::uint32_t retireCycle(std::uint32_t budget);

    /** Push an op into @p ctx's retirement queue. */
    void pushInFlight(Context &ctx, Cycle completion);

    /** ROB partition size given current active contexts (>= 4). */
    std::uint32_t robPartitionSize() const;

    /** Convert a future core-cycle ready time to a global cycle. */
    Cycle globalFromCore(Cycle core_future) const;
    /** Convert a future global completion to a core cycle. */
    Cycle coreFromGlobal(Cycle global_future) const;

    /** Record the completion of op production for dependencies. */
    static void recordCompletion(Context &ctx, Cycle completion);
    /** Earliest core cycle the staged op's producer allows. */
    static Cycle dependencyReady(const Context &ctx, const MicroOp &op);

    CoreParams params_;
    std::uint32_t coreId_;
    MemorySystem *shared_;
    PrivateHierarchy hierarchy_;
    std::vector<Context> contexts_;

    Cycle globalNow_ = 0;
    Cycle coreNow_ = 0;
    /** Core cycles per global cycle. */
    double clockRatio_ = 1.0;
    double clockAccum_ = 0.0;

    /** Round-robin rotors. */
    std::uint32_t fetchRotor_ = 0;
    std::uint32_t retireRotor_ = 0;
};

/** Construct the matching model (OooCore or InOrderCore) for @p params. */
std::unique_ptr<Core> makeCore(const CoreParams &params,
                               std::uint32_t core_id,
                               std::uint32_t num_contexts,
                               MemorySystem *shared, double chip_freq_ghz);

} // namespace smtflex

#endif // SMTFLEX_UARCH_CORE_H
