/**
 * @file
 * Microarchitectural parameters of the three core types in Table 1 of the
 * paper: big (4-wide OoO), medium (2-wide OoO) and small (2-wide in-order).
 */

#ifndef SMTFLEX_UARCH_CORE_PARAMS_H
#define SMTFLEX_UARCH_CORE_PARAMS_H

#include <cstdint>
#include <string>

#include "cache/cache.h"

namespace smtflex {

/** The three core types of the study. */
enum class CoreType { kBig, kMedium, kSmall };

/**
 * SMT fetch policy of the out-of-order cores. The paper's SMT core uses
 * round-robin (Raasch & Reinhardt); ICOUNT (Tullsen et al.) prioritises
 * the context with the fewest ops in flight and is provided as an
 * ablation.
 */
enum class FetchPolicy { kRoundRobin, kIcount };

/** Printable name ("B", "m", "s"). */
const char *coreTypeTag(CoreType type);

/** Complete parameter set of one core. */
struct CoreParams
{
    std::string name = "big";
    CoreType type = CoreType::kBig;
    bool outOfOrder = true;

    /** Fetch/dispatch/retire width (ops per core cycle). */
    std::uint32_t width = 4;
    /** Reorder buffer entries (OoO only), statically partitioned among the
     * active SMT contexts. */
    std::uint32_t robSize = 128;
    /** Maximum SMT hardware contexts. */
    std::uint32_t maxSmtContexts = 6;
    /** SMT fetch arbitration (OoO cores only). */
    FetchPolicy fetchPolicy = FetchPolicy::kRoundRobin;

    /** Functional units (per core cycle issue slots per class). */
    std::uint32_t intUnits = 3;   ///< also execute branches
    std::uint32_t ldstUnits = 2;
    std::uint32_t mulUnits = 1;
    std::uint32_t fpUnits = 1;

    /** Execution latencies in core cycles. */
    std::uint32_t latIntAlu = 1;
    std::uint32_t latIntMul = 4;
    std::uint32_t latFp = 4;
    std::uint32_t latBranch = 1;

    /** Front-end refill penalty after a mispredicted branch resolves. */
    std::uint32_t mispredictPenalty = 10;

    /** Private cache geometries. */
    CacheGeometry l1i{32 * 1024, 4};
    CacheGeometry l1d{32 * 1024, 4};
    CacheGeometry l2{256 * 1024, 8};

    /** Load-to-use latency of an L1D hit. */
    std::uint32_t latL1 = 3;
    /** Additional latency of an L2 hit. */
    std::uint32_t latL2 = 10;

    /** Miss-status holding registers: outstanding misses past the L2. */
    std::uint32_t mshrs = 8;

    /**
     * Next-line data prefetcher: on an L1D miss, eagerly fetch the
     * following line (hides streaming misses at the cost of bandwidth).
     * Off by default — the paper's configuration does not specify one;
     * bench_ablation_prefetch quantifies its effect.
     */
    bool dataPrefetch = false;

    /** Core clock in GHz (the uncore always runs at the chip clock). */
    double freqGHz = 2.66;

    /** Table 1 big core. */
    static CoreParams big();
    /** Table 1 medium core. */
    static CoreParams medium();
    /** Table 1 small core. */
    static CoreParams small();

    /** Variant with private caches enlarged to the big core's (Section 8.1,
     * "lc" configurations). */
    CoreParams withBigCaches() const;
    /** Variant clocked at @p ghz (Section 8.1, "hf" configurations). */
    CoreParams withFrequency(double ghz) const;

    /** Validate invariants; calls fatal() on nonsense. */
    void validate() const;
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_CORE_PARAMS_H
