#include "core.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "uarch/inorder_core.h"
#include "uarch/ooo_core.h"

namespace smtflex {

Core::Core(const CoreParams &params, std::uint32_t core_id,
           std::uint32_t num_contexts, MemorySystem *shared,
           double chip_freq_ghz)
    : params_(params), coreId_(core_id), shared_(shared),
      hierarchy_(params, core_id, shared)
{
    params_.validate();
    if (num_contexts == 0 || num_contexts > params_.maxSmtContexts)
        fatal("Core ", params_.name, ": invalid context count ",
              num_contexts, " (max ", params_.maxSmtContexts, ")");
    if (chip_freq_ghz <= 0.0)
        fatal("Core ", params_.name, ": bad chip frequency");

    clockRatio_ = params_.freqGHz / chip_freq_ghz;

    // Retirement queue capacity: the full ROB for OoO (one context may own
    // it all), a short pipeline buffer for in-order.
    const std::uint32_t queue_capacity =
        params_.outOfOrder ? params_.robSize : 16;
    contexts_.resize(num_contexts);
    for (auto &ctx : contexts_)
        ctx.rob.resize(queue_capacity);
}

void
Core::attachThread(std::uint32_t slot, ThreadSource *thread)
{
    if (slot >= contexts_.size())
        fatal("Core ", params_.name, ": attach to bad slot ", slot);
    if (contexts_[slot].thread)
        fatal("Core ", params_.name, ": slot ", slot, " already occupied");
    if (!thread)
        fatal("Core ", params_.name, ": attach of null thread");
    contexts_[slot].thread = thread;
}

ThreadSource *
Core::detachThread(std::uint32_t slot)
{
    if (slot >= contexts_.size())
        fatal("Core ", params_.name, ": detach from bad slot ", slot);
    Context &ctx = contexts_[slot];
    ThreadSource *old = ctx.thread;
    ctx.thread = nullptr;
    // Drop the staged (never dispatched) op; in-flight ops keep retiring to
    // the detached thread through the InFlightOp::thread pointers.
    if (ctx.hasStaged && old)
        old->onStagedOpDropped();
    ctx.hasStaged = false;
    ctx.stagedFetchDone = false;
    return old;
}

ThreadSource *
Core::threadAt(std::uint32_t slot) const
{
    if (slot >= contexts_.size())
        fatal("Core ", params_.name, ": bad slot ", slot);
    return contexts_[slot].thread;
}

std::uint32_t
Core::activeContexts() const
{
    std::uint32_t n = 0;
    for (const auto &ctx : contexts_)
        n += (ctx.thread != nullptr);
    return n;
}

bool
Core::quiescent() const
{
    for (const auto &ctx : contexts_) {
        if (ctx.thread || ctx.robCount > 0)
            return false;
    }
    return true;
}

void
Core::tick(Cycle global_now)
{
    globalNow_ = global_now;
    clockAccum_ += clockRatio_;
    while (clockAccum_ >= 1.0) {
        clockAccum_ -= 1.0;
        ++coreNow_;
        ++stats_.coreCycles;
        coreCycle();
    }
}

void
Core::skipTicks(Cycle count)
{
    if (count == 0)
        return;
    Cycle core_cycles;
    if (clockRatio_ == 1.0) {
        // The accumulator is a fixed point at ratio 1: each tick adds and
        // removes exactly 1.0, so bulk arithmetic is bit-identical.
        core_cycles = count;
    } else {
        // Replay the exact per-tick accumulator sequence: analytic
        // multiplication would round differently and desynchronise the
        // core clock from a strict run.
        core_cycles = 0;
        for (Cycle g = 0; g < count; ++g) {
            clockAccum_ += clockRatio_;
            while (clockAccum_ >= 1.0) {
                clockAccum_ -= 1.0;
                ++core_cycles;
            }
        }
    }
    globalNow_ += count;
    coreNow_ += core_cycles;
    stats_.coreCycles += core_cycles;
    // retireCycle() bumps the rotor once per core cycle even when nothing
    // retires; uint32 truncation matches its modular wraparound.
    retireRotor_ += static_cast<std::uint32_t>(core_cycles);
    onSkippedCoreCycles(core_cycles);
}

Cycle
Core::earliestHeadCompletion() const
{
    Cycle earliest = kCycleNever;
    for (const auto &ctx : contexts_) {
        if (ctx.robCount > 0)
            earliest = std::min(earliest, ctx.rob[ctx.robHead].completion);
    }
    return earliest;
}

Cycle
Core::globalCycleForCoreEvent(Cycle global_now, Cycle core_event) const
{
    if (core_event == kCycleNever)
        return kCycleNever;
    if (core_event <= coreNow_)
        return global_now + 1;
    const Cycle dc = core_event - coreNow_;
    if (clockRatio_ == 1.0)
        return global_now + dc;
    // Under-estimate (skip less, never more): truncate, then keep one
    // whole-cycle margin against accumulated floating-point drift. A too
    // early estimate only costs an extra strict (but inert) tick before
    // the next estimate converges.
    const double dg =
        (static_cast<double>(dc) - clockAccum_) / clockRatio_;
    if (dg <= 2.0)
        return global_now + 1;
    return global_now + static_cast<Cycle>(dg) - 1;
}

std::uint32_t
Core::retireCycle(std::uint32_t budget)
{
    std::uint32_t retired = 0;
    const std::uint32_t n = numContexts();
    const std::uint32_t start = retireRotor_++ % n;
    for (std::uint32_t k = 0; k < n && retired < budget; ++k) {
        Context &ctx = contexts_[(start + k) % n];
        while (retired < budget && ctx.robCount > 0) {
            InFlightOp &head = ctx.rob[ctx.robHead];
            if (head.completion > coreNow_)
                break; // in-order retirement: head blocks the rest
            if (head.thread)
                head.thread->onRetire(globalNow_);
            ctx.robHead = (ctx.robHead + 1) %
                static_cast<std::uint32_t>(ctx.rob.size());
            --ctx.robCount;
            ++retired;
        }
    }
    stats_.retired += retired;
    return retired;
}

void
Core::pushInFlight(Context &ctx, Cycle completion)
{
    const auto capacity = static_cast<std::uint32_t>(ctx.rob.size());
    if (ctx.robCount >= capacity)
        panic("Core ", params_.name, ": retirement queue overflow");
    const std::uint32_t tail = (ctx.robHead + ctx.robCount) % capacity;
    ctx.rob[tail].completion = completion;
    ctx.rob[tail].thread = ctx.thread;
    ++ctx.robCount;
}

std::uint32_t
Core::robPartitionSize() const
{
    // Static partitioning among the contexts that currently have threads
    // (Raasch & Reinhardt); a lone thread gets the whole window.
    const std::uint32_t active = std::max(1u, activeContexts());
    const std::uint32_t share = params_.robSize / active;
    return std::max(4u, share);
}

Cycle
Core::globalFromCore(Cycle core_future) const
{
    if (clockRatio_ == 1.0)
        return globalNow_ + (core_future - coreNow_);
    const double dg =
        static_cast<double>(core_future - coreNow_) / clockRatio_;
    return globalNow_ + static_cast<Cycle>(std::llround(dg));
}

Cycle
Core::coreFromGlobal(Cycle global_future) const
{
    if (global_future <= globalNow_)
        return coreNow_;
    if (clockRatio_ == 1.0)
        return coreNow_ + (global_future - globalNow_);
    const double dc =
        static_cast<double>(global_future - globalNow_) * clockRatio_;
    return coreNow_ + static_cast<Cycle>(std::ceil(dc));
}

void
Core::recordCompletion(Context &ctx, Cycle completion)
{
    ctx.depCompletion[ctx.opIndex % Context::kDepWindow] = completion;
    ++ctx.opIndex;
}

Cycle
Core::dependencyReady(const Context &ctx, const MicroOp &op)
{
    if (op.depDist == 0 || op.depDist >= Context::kDepWindow ||
        op.depDist > ctx.opIndex) {
        return 0;
    }
    const std::uint64_t producer = ctx.opIndex - op.depDist;
    return ctx.depCompletion[producer % Context::kDepWindow];
}

namespace {

/** Null-thread sentinel in serialized context/ROB entries. */
constexpr std::uint32_t kNoThread = 0xffffffffu;

void
saveMicroOp(ckpt::Writer &w, const MicroOp &op)
{
    w.u8(static_cast<std::uint8_t>(op.cls));
    w.boolean(op.mispredict);
    w.boolean(op.fetchLineCross);
    w.u8(op.depDist);
    w.u64(op.addr);
    w.u64(op.fetchAddr);
}

void
loadMicroOp(ckpt::Reader &r, MicroOp &op)
{
    const std::uint8_t cls = r.u8();
    if (cls >= kNumOpClasses)
        throw ckpt::CorruptSnapshot("ckpt: bad op class");
    op.cls = static_cast<OpClass>(cls);
    op.mispredict = r.boolean();
    op.fetchLineCross = r.boolean();
    op.depDist = r.u8();
    op.addr = r.u64();
    op.fetchAddr = r.u64();
}

} // namespace

void
Core::saveState(
    ckpt::Writer &w,
    const std::function<std::uint32_t(const ThreadSource *)> &thread_index)
    const
{
    w.u64(globalNow_);
    w.u64(coreNow_);
    w.f64(clockAccum_);
    w.u32(fetchRotor_);
    w.u32(retireRotor_);
    ckpt::saveCounters(w, stats_);
    for (int c = 0; c < kNumOpClasses; ++c)
        w.u64(stats_.dispatched[c]);
    hierarchy_.saveState(w);
    w.u32(static_cast<std::uint32_t>(contexts_.size()));
    for (const Context &ctx : contexts_) {
        w.u32(ctx.thread ? thread_index(ctx.thread) : kNoThread);
        saveMicroOp(w, ctx.staged);
        w.boolean(ctx.hasStaged);
        w.boolean(ctx.stagedFetchDone);
        w.u64(ctx.frontStallUntil);
        w.u64(ctx.stallUntil);
        for (const Cycle c : ctx.depCompletion)
            w.u64(c);
        w.u64(ctx.opIndex);
        // The ROB ring is serialized head-first; the restored ring starts
        // at index 0, which preserves the FIFO order — the only thing
        // retirement depends on.
        w.u32(static_cast<std::uint32_t>(ctx.rob.size()));
        w.u32(ctx.robCount);
        for (std::uint32_t k = 0; k < ctx.robCount; ++k) {
            const InFlightOp &op =
                ctx.rob[(ctx.robHead + k) % ctx.rob.size()];
            w.u64(op.completion);
            w.u32(op.thread ? thread_index(op.thread) : kNoThread);
        }
    }
    saveDerived(w);
}

void
Core::loadState(
    ckpt::Reader &r,
    const std::function<ThreadSource *(std::uint32_t)> &thread_at)
{
    globalNow_ = r.u64();
    coreNow_ = r.u64();
    clockAccum_ = r.f64();
    fetchRotor_ = r.u32();
    retireRotor_ = r.u32();
    ckpt::loadCounters(r, stats_);
    for (int c = 0; c < kNumOpClasses; ++c)
        stats_.dispatched[c] = r.u64();
    hierarchy_.loadState(r);
    r.count(contexts_.size(), "SMT contexts");
    for (Context &ctx : contexts_) {
        const std::uint32_t tidx = r.u32();
        ctx.thread = tidx == kNoThread ? nullptr : thread_at(tidx);
        loadMicroOp(r, ctx.staged);
        ctx.hasStaged = r.boolean();
        ctx.stagedFetchDone = r.boolean();
        ctx.frontStallUntil = r.u64();
        ctx.stallUntil = r.u64();
        for (Cycle &c : ctx.depCompletion)
            c = r.u64();
        ctx.opIndex = r.u64();
        r.count(ctx.rob.size(), "ROB capacity");
        const std::uint32_t rob_count = r.u32();
        if (rob_count > ctx.rob.size())
            throw ckpt::CorruptSnapshot("ckpt: ROB overflow");
        ctx.robHead = 0;
        ctx.robCount = rob_count;
        for (std::uint32_t k = 0; k < rob_count; ++k) {
            InFlightOp &op = ctx.rob[k];
            op.completion = r.u64();
            const std::uint32_t oidx = r.u32();
            op.thread = oidx == kNoThread ? nullptr : thread_at(oidx);
        }
    }
    loadDerived(r);
}

std::unique_ptr<Core>
makeCore(const CoreParams &params, std::uint32_t core_id,
         std::uint32_t num_contexts, MemorySystem *shared,
         double chip_freq_ghz)
{
    if (params.outOfOrder) {
        return std::make_unique<OooCore>(params, core_id, num_contexts,
                                         shared, chip_freq_ghz);
    }
    return std::make_unique<InOrderCore>(params, core_id, num_contexts,
                                         shared, chip_freq_ghz);
}

} // namespace smtflex
