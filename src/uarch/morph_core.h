/**
 * @file
 * MorphCore (Khubaib et al., MICRO 2012), the dynamic core the paper
 * discusses in Sections 2.2 and 9: a high-performance out-of-order core
 * that morphs into a many-threaded in-order core when the demand for
 * thread-level parallelism is high.
 *
 * Model: with few active threads (<= oooThreadLimit) the core behaves as
 * the configured out-of-order core; with more, it switches to in-order
 * barrel execution across all contexts (wide SMT in-order). Switching
 * drains the pipeline (a fixed penalty). The paper argues SMT on a big
 * core achieves much of this flexibility without the mode machinery —
 * bench_ext_morphcore measures the comparison.
 */

#ifndef SMTFLEX_UARCH_MORPH_CORE_H
#define SMTFLEX_UARCH_MORPH_CORE_H

#include "uarch/core.h"

namespace smtflex {

/** MorphCore-specific knobs. */
struct MorphParams
{
    /** Run out-of-order while active contexts <= this. */
    std::uint32_t oooThreadLimit = 2;
    /** Core cycles the pipeline drain costs on a mode switch. */
    std::uint32_t switchPenalty = 100;
};

/**
 * A core that switches between out-of-order and in-order-SMT operation
 * based on the number of active threads.
 */
class MorphCore : public Core
{
  public:
    /** @param params the out-of-order personality (big/medium core);
     *  the in-order mode reuses its widths and latencies. */
    MorphCore(const CoreParams &params, const MorphParams &morph,
              std::uint32_t core_id, std::uint32_t num_contexts,
              MemorySystem *shared, double chip_freq_ghz);

    /** True while running in out-of-order mode. */
    bool inOooMode() const { return oooMode_; }
    /** Number of mode switches so far. */
    std::uint64_t modeSwitches() const { return modeSwitches_; }

    Cycle nextEventCycle(Cycle global_now) override;

  protected:
    void coreCycle() override;
    void onSkippedCoreCycles(Cycle core_cycles) override;

    void saveDerived(ckpt::Writer &w) const override
    {
        w.boolean(oooMode_);
        w.u64(stallUntilSwitch_);
        w.u64(modeSwitches_);
        for (int c = 0; c < kNumOpClasses; ++c)
            w.u32(fuLeft_[c]);
        w.u64(skipRobStallContexts_);
        w.u64(skipMshrStallContexts_);
    }
    void loadDerived(ckpt::Reader &r) override
    {
        oooMode_ = r.boolean();
        stallUntilSwitch_ = r.u64();
        modeSwitches_ = r.u64();
        for (int c = 0; c < kNumOpClasses; ++c)
            fuLeft_[c] = r.u32();
        skipRobStallContexts_ = r.u64();
        skipMshrStallContexts_ = r.u64();
    }

  private:
    void oooCycle();
    void inOrderCycle();
    std::uint32_t issueInOrderFrom(Context &ctx);

    Cycle nextEventOoo(Cycle global_now);
    Cycle nextEventInOrder(Cycle global_now);

    bool fuAvailable(OpClass cls) const;
    void consumeFu(OpClass cls);
    void resetFuBudgets();

    MorphParams morph_;
    bool oooMode_ = true;
    Cycle stallUntilSwitch_ = 0;
    std::uint64_t modeSwitches_ = 0;
    std::uint32_t fuLeft_[kNumOpClasses] = {};

    /** Stall-accrual counts cached by nextEventCycle for the immediately
     * following skipTicks (see OooCore). */
    std::uint64_t skipRobStallContexts_ = 0;
    std::uint64_t skipMshrStallContexts_ = 0;
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_MORPH_CORE_H
