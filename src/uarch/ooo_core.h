/**
 * @file
 * Out-of-order SMT core model (the paper's big and medium cores).
 *
 * Cycle behaviour:
 *  - round-robin fetch/dispatch among active SMT contexts, up to `width`
 *    ops per core cycle in total (the round-robin fetch policy of Raasch &
 *    Reinhardt that the paper's SMT cores implement);
 *  - static ROB partitioning among active contexts;
 *  - dependency-aware completion timestamps (geometric dependency
 *    distances from the trace) bounded by the ROB window;
 *  - per-cycle functional-unit issue constraints (Table 1 unit mix);
 *  - loads/stores through the private hierarchy with an MSHR limit,
 *    branch-mispredict front-end redirects, I-cache miss stalls;
 *  - in-order retirement at `width` ops/cycle shared across contexts.
 */

#ifndef SMTFLEX_UARCH_OOO_CORE_H
#define SMTFLEX_UARCH_OOO_CORE_H

#include "uarch/core.h"

namespace smtflex {

/** 4-wide / 2-wide out-of-order core with SMT (Table 1 big/medium). */
class OooCore : public Core
{
  public:
    OooCore(const CoreParams &params, std::uint32_t core_id,
            std::uint32_t num_contexts, MemorySystem *shared,
            double chip_freq_ghz);

    Cycle nextEventCycle(Cycle global_now) override;

  protected:
    void coreCycle() override;
    void onSkippedCoreCycles(Cycle core_cycles) override;

    void saveDerived(ckpt::Writer &w) const override
    {
        for (int c = 0; c < kNumOpClasses; ++c)
            w.u32(fuLeft_[c]);
        w.u64(skipRobStallContexts_);
        w.u64(skipMshrStallContexts_);
    }
    void loadDerived(ckpt::Reader &r) override
    {
        for (int c = 0; c < kNumOpClasses; ++c)
            fuLeft_[c] = r.u32();
        skipRobStallContexts_ = r.u64();
        skipMshrStallContexts_ = r.u64();
    }

  private:
    /** Why a context stopped dispatching this cycle. */
    enum class StopReason { kNone, kRobFull, kMshrFull, kFuBusy, kNoWork };

    /** Dispatch as many ops as possible from @p ctx; updates budgets.
     * @return the reason the context stopped. */
    StopReason dispatchFrom(Context &ctx, std::uint32_t &budget);

    /** Per-cycle remaining functional-unit slots. */
    std::uint32_t fuLeft_[kNumOpClasses] = {};

    /** Contexts that accrue one robStallEvent / mshrStallEvent per core
     * cycle across the span being skipped (cached by nextEventCycle for
     * the immediately following skipTicks). */
    std::uint64_t skipRobStallContexts_ = 0;
    std::uint64_t skipMshrStallContexts_ = 0;

    void resetFuBudgets();
    bool fuAvailable(OpClass cls) const;
    void consumeFu(OpClass cls);
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_OOO_CORE_H
