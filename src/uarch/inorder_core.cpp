#include "inorder_core.h"

#include <algorithm>

namespace smtflex {

InOrderCore::InOrderCore(const CoreParams &params, std::uint32_t core_id,
                         std::uint32_t num_contexts, MemorySystem *shared,
                         double chip_freq_ghz)
    : Core(params, core_id, num_contexts, shared, chip_freq_ghz)
{
}

Cycle
InOrderCore::nextEventCycle(Cycle global_now)
{
    Cycle event = earliestHeadCompletion(); // core cycles
    for (auto &ctx : contexts_) {
        if (!ctx.thread && !ctx.hasStaged)
            continue; // retirement only, covered by the head completion
        if (ctx.stallUntil > coreNow_) {
            // Sleeping on a RAW hazard, an off-core miss, an I-miss or a
            // flush: the barrel scheduler passes this context over without
            // touching anything until the stall expires.
            event = std::min(event, ctx.stallUntil);
            continue;
        }
        if (ctx.robCount >= ctx.rob.size())
            continue; // pipeline buffer full: drains at head completion
        if (ctx.hasStaged || (ctx.thread && ctx.thread->hasWork()))
            return global_now + 1; // may win the issue slot next cycle
        // Attached but out of work: only retirement remains.
    }
    return globalCycleForCoreEvent(global_now, event);
}

void
InOrderCore::onSkippedCoreCycles(Cycle core_cycles)
{
    // Barrel rotation advances every core cycle, issued or not.
    fetchRotor_ += static_cast<std::uint32_t>(core_cycles);
}

std::uint32_t
InOrderCore::issueFrom(Context &ctx)
{
    std::uint32_t issued = 0;
    std::uint32_t ldst_left = params_.ldstUnits;
    std::uint32_t mul_left = params_.mulUnits;
    std::uint32_t fp_left = params_.fpUnits;

    while (issued < params_.width) {
        // The retirement buffer is small; treat it as a structural limit.
        if (ctx.robCount >= ctx.rob.size())
            break;

        if (!ctx.hasStaged) {
            if (!ctx.thread || !ctx.thread->hasWork())
                break;
            ctx.staged = ctx.thread->nextOp();
            ctx.hasStaged = true;
            ctx.stagedFetchDone = false;
        }
        MicroOp &op = ctx.staged;

        // Instruction fetch; a miss stalls this context.
        if (op.fetchLineCross && !ctx.stagedFetchDone) {
            const MemAccess fetch =
                hierarchy_.instrAccess(globalNow_, op.fetchAddr);
            ctx.stagedFetchDone = true;
            if (fetch.level != MemLevel::kL1) {
                ctx.stallUntil = coreFromGlobal(fetch.completion);
                break;
            }
        }

        // In-order RAW stall: the producer must have completed.
        const Cycle dep_ready = dependencyReady(ctx, op);
        if (dep_ready > coreNow_) {
            // Sleep until the producer finishes so the other FGMT context
            // can use the issue slots meanwhile.
            ctx.stallUntil = dep_ready;
            break;
        }

        // Functional units (within this cycle's issue group).
        bool fu_ok = true;
        switch (op.cls) {
          case OpClass::kLoad:
          case OpClass::kStore:
            fu_ok = ldst_left > 0;
            break;
          case OpClass::kIntMul:
            fu_ok = mul_left > 0;
            break;
          case OpClass::kFpOp:
            fu_ok = fp_left > 0;
            break;
          default:
            break; // int/branch: width is the only limit on a 2-int core
        }
        if (!fu_ok)
            break;

        Cycle completion;
        switch (op.cls) {
          case OpClass::kLoad: {
            const auto access =
                hierarchy_.dataAccess(globalNow_, op.addr, false);
            if (!access) {
                ++stats_.mshrStallEvents;
                ctx.stallUntil = coreNow_ + 2;
                return issued;
            }
            completion = std::max<Cycle>(coreNow_ + params_.latL1,
                                         coreFromGlobal(access->completion));
            if (access->level == MemLevel::kBeyond) {
                // Stall-on-miss: a simple in-order pipeline does not
                // overlap off-core misses with execution.
                ctx.stallUntil = completion;
            }
            --ldst_left;
            break;
          }
          case OpClass::kStore: {
            const auto access =
                hierarchy_.dataAccess(globalNow_, op.addr, true);
            if (!access) {
                ++stats_.mshrStallEvents;
                ctx.stallUntil = coreNow_ + 2;
                return issued;
            }
            completion = coreNow_ + 1; // store buffer
            --ldst_left;
            break;
          }
          case OpClass::kIntMul:
            completion = coreNow_ + params_.latIntMul;
            --mul_left;
            break;
          case OpClass::kFpOp:
            completion = coreNow_ + params_.latFp;
            --fp_left;
            break;
          case OpClass::kBranch:
            completion = coreNow_ + params_.latBranch;
            if (op.mispredict) {
                ++stats_.mispredicts;
                ctx.stallUntil = completion + params_.mispredictPenalty;
            }
            break;
          default:
            completion = coreNow_ + params_.latIntAlu;
            break;
        }

        recordCompletion(ctx, completion);
        pushInFlight(ctx, completion);
        ++stats_.dispatched[static_cast<int>(op.cls)];
        ++issued;
        const bool redirect = ctx.stallUntil > coreNow_;
        ctx.hasStaged = false;
        ctx.stagedFetchDone = false;
        if (redirect)
            break; // mispredict or stall-on-miss ends the issue group
    }
    return issued;
}

void
InOrderCore::coreCycle()
{
    retireCycle(params_.width);

    // Barrel scheduling: rotate every cycle; the first ready context wins
    // the whole issue group this cycle.
    const std::uint32_t n = numContexts();
    const std::uint32_t start = fetchRotor_++ % n;
    for (std::uint32_t k = 0; k < n; ++k) {
        Context &ctx = contexts_[(start + k) % n];
        if (!ctx.thread && !ctx.hasStaged)
            continue;
        if (ctx.stallUntil > coreNow_)
            continue;
        if (issueFrom(ctx) > 0) {
            ++stats_.busyCycles;
            break;
        }
        // A context that could not issue (e.g. just went to sleep on a RAW
        // stall) passes the slot on.
        if (ctx.stallUntil <= coreNow_)
            break; // structural block with no sleep: slot is lost
    }
}

} // namespace smtflex
