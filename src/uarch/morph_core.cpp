#include "morph_core.h"

#include <algorithm>

#include "common/log.h"

namespace smtflex {

// The two cycle bodies deliberately mirror OooCore and InOrderCore (see
// those files for the commented versions); MorphCore's contribution is the
// mode controller that arbitrates between them.

MorphCore::MorphCore(const CoreParams &params, const MorphParams &morph,
                     std::uint32_t core_id, std::uint32_t num_contexts,
                     MemorySystem *shared, double chip_freq_ghz)
    : Core(params, core_id, num_contexts, shared, chip_freq_ghz),
      morph_(morph)
{
    if (!params.outOfOrder)
        fatal("MorphCore: the base personality must be out-of-order");
    if (morph_.oooThreadLimit == 0)
        fatal("MorphCore: oooThreadLimit must be >= 1");
}

void
MorphCore::resetFuBudgets()
{
    fuLeft_[static_cast<int>(OpClass::kIntAlu)] = params_.intUnits;
    fuLeft_[static_cast<int>(OpClass::kBranch)] = params_.intUnits;
    fuLeft_[static_cast<int>(OpClass::kIntMul)] = params_.mulUnits;
    fuLeft_[static_cast<int>(OpClass::kFpOp)] = params_.fpUnits;
    fuLeft_[static_cast<int>(OpClass::kLoad)] = params_.ldstUnits;
    fuLeft_[static_cast<int>(OpClass::kStore)] = params_.ldstUnits;
}

bool
MorphCore::fuAvailable(OpClass cls) const
{
    return fuLeft_[static_cast<int>(cls)] > 0;
}

void
MorphCore::consumeFu(OpClass cls)
{
    --fuLeft_[static_cast<int>(cls)];
    if (cls == OpClass::kIntAlu)
        fuLeft_[static_cast<int>(OpClass::kBranch)] =
            fuLeft_[static_cast<int>(OpClass::kIntAlu)];
    else if (cls == OpClass::kBranch)
        fuLeft_[static_cast<int>(OpClass::kIntAlu)] =
            fuLeft_[static_cast<int>(OpClass::kBranch)];
    else if (cls == OpClass::kLoad)
        fuLeft_[static_cast<int>(OpClass::kStore)] =
            fuLeft_[static_cast<int>(OpClass::kLoad)];
    else if (cls == OpClass::kStore)
        fuLeft_[static_cast<int>(OpClass::kLoad)] =
            fuLeft_[static_cast<int>(OpClass::kStore)];
}

Cycle
MorphCore::nextEventCycle(Cycle global_now)
{
    skipRobStallContexts_ = 0;
    skipMshrStallContexts_ = 0;
    const bool want_ooo = activeContexts() <= morph_.oooThreadLimit;
    if (want_ooo != oooMode_) {
        // Draining before a mode switch: only retirement happens, and the
        // switch itself fires on the first cycle with nothing in flight.
        const Cycle head = earliestHeadCompletion();
        if (head == kCycleNever)
            return global_now + 1; // switches next cycle
        return globalCycleForCoreEvent(global_now, head);
    }
    if (stallUntilSwitch_ > coreNow_) {
        // Refilling after a switch: retirement only until the penalty
        // expires.
        const Cycle event =
            std::min(earliestHeadCompletion(), stallUntilSwitch_);
        return globalCycleForCoreEvent(global_now, event);
    }
    return oooMode_ ? nextEventOoo(global_now) : nextEventInOrder(global_now);
}

Cycle
MorphCore::nextEventOoo(Cycle global_now)
{
    // Mirrors OooCore::nextEventCycle for the out-of-order personality
    // (always round-robin, same stall accrual as oooCycle()).
    const std::uint32_t partition = robPartitionSize();
    Cycle event = earliestHeadCompletion();
    std::uint64_t rob_stalled = 0;
    std::uint64_t mshr_stalled = 0;
    for (auto &ctx : contexts_) {
        if (!ctx.thread && !ctx.hasStaged)
            continue;
        if (ctx.frontStallUntil > coreNow_) {
            event = std::min(event, ctx.frontStallUntil);
            continue;
        }
        if (ctx.robCount >= partition) {
            ++rob_stalled;
            continue;
        }
        if (!ctx.hasStaged) {
            if (ctx.thread && ctx.thread->hasWork())
                return global_now + 1;
            continue;
        }
        const MicroOp &op = ctx.staged;
        if ((op.cls != OpClass::kLoad && op.cls != OpClass::kStore) ||
            (op.fetchLineCross && !ctx.stagedFetchDone) ||
            clockRatio_ != 1.0) {
            return global_now + 1;
        }
        const Cycle ready =
            std::max<Cycle>(coreNow_ + 1, dependencyReady(ctx, op));
        const Cycle probe = globalFromCore(ready);
        if (!hierarchy_.wouldRejectData(probe, op.addr))
            return global_now + 1;
        ++mshr_stalled;
        const Cycle fill = hierarchy_.earliestPendingFill(probe);
        const Cycle flip = coreFromGlobal(fill);
        event = std::min(event,
                         flip > coreNow_ + 2 ? flip - 1 : coreNow_ + 1);
    }
    skipRobStallContexts_ = rob_stalled;
    skipMshrStallContexts_ = mshr_stalled;
    return globalCycleForCoreEvent(global_now, event);
}

Cycle
MorphCore::nextEventInOrder(Cycle global_now)
{
    // Mirrors InOrderCore::nextEventCycle, with issueInOrderFrom()'s
    // 16-entry in-order window as the structural limit.
    constexpr std::uint32_t kInOrderWindow = 16;
    Cycle event = earliestHeadCompletion();
    for (auto &ctx : contexts_) {
        if (!ctx.thread && !ctx.hasStaged)
            continue;
        if (ctx.stallUntil > coreNow_) {
            event = std::min(event, ctx.stallUntil);
            continue;
        }
        if (ctx.robCount >=
            std::min<std::size_t>(kInOrderWindow, ctx.rob.size()))
            continue;
        if (ctx.hasStaged || (ctx.thread && ctx.thread->hasWork()))
            return global_now + 1;
    }
    return globalCycleForCoreEvent(global_now, event);
}

void
MorphCore::onSkippedCoreCycles(Cycle core_cycles)
{
    const bool want_ooo = activeContexts() <= morph_.oooThreadLimit;
    if (want_ooo != oooMode_ || stallUntilSwitch_ > coreNow_)
        return; // draining or refilling: the dispatch stages never ran
    fetchRotor_ += static_cast<std::uint32_t>(core_cycles);
    stats_.robStallEvents += skipRobStallContexts_ * core_cycles;
    stats_.mshrStallEvents += skipMshrStallContexts_ * core_cycles;
}

void
MorphCore::coreCycle()
{
    retireCycle(params_.width);

    // Mode controller: when the active thread count crosses the limit,
    // stop dispatching, drain the in-flight ops, then morph and pay the
    // reconfiguration penalty.
    const bool want_ooo = activeContexts() <= morph_.oooThreadLimit;
    if (want_ooo != oooMode_) {
        bool in_flight = false;
        for (const auto &ctx : contexts_)
            in_flight |= ctx.robCount > 0;
        if (!in_flight) {
            oooMode_ = want_ooo;
            ++modeSwitches_;
            stallUntilSwitch_ = coreNow_ + morph_.switchPenalty;
        }
        return; // draining (or just switched): no dispatch this cycle
    }
    if (stallUntilSwitch_ > coreNow_)
        return; // refilling after the switch

    if (oooMode_)
        oooCycle();
    else
        inOrderCycle();
}

void
MorphCore::oooCycle()
{
    resetFuBudgets();
    std::uint32_t budget = params_.width;
    const std::uint32_t n = numContexts();
    const std::uint32_t start = fetchRotor_++ % n;
    bool dispatched_any = false;

    for (std::uint32_t k = 0; k < n && budget > 0; ++k) {
        Context &ctx = contexts_[(start + k) % n];
        if (!ctx.thread && !ctx.hasStaged)
            continue;
        const std::uint32_t partition = robPartitionSize();
        while (budget > 0) {
            if (ctx.frontStallUntil > coreNow_)
                break;
            if (ctx.robCount >= partition) {
                ++stats_.robStallEvents;
                break;
            }
            if (!ctx.hasStaged) {
                if (!ctx.thread || !ctx.thread->hasWork())
                    break;
                ctx.staged = ctx.thread->nextOp();
                ctx.hasStaged = true;
                ctx.stagedFetchDone = false;
            }
            MicroOp &op = ctx.staged;
            if (op.fetchLineCross && !ctx.stagedFetchDone) {
                const MemAccess fetch =
                    hierarchy_.instrAccess(globalNow_, op.fetchAddr);
                ctx.stagedFetchDone = true;
                if (fetch.level != MemLevel::kL1) {
                    ctx.frontStallUntil = coreFromGlobal(fetch.completion);
                    break;
                }
            }
            if (!fuAvailable(op.cls))
                break;
            const Cycle ready =
                std::max<Cycle>(coreNow_ + 1, dependencyReady(ctx, op));
            Cycle completion;
            bool reject = false;
            switch (op.cls) {
              case OpClass::kLoad: {
                const auto access = hierarchy_.dataAccess(
                    globalFromCore(ready), op.addr, false);
                if (!access) {
                    ++stats_.mshrStallEvents;
                    reject = true;
                    completion = 0;
                    break;
                }
                completion = std::max(ready + params_.latL1,
                                      coreFromGlobal(access->completion));
                break;
              }
              case OpClass::kStore: {
                const auto access = hierarchy_.dataAccess(
                    globalFromCore(ready), op.addr, true);
                if (!access) {
                    ++stats_.mshrStallEvents;
                    reject = true;
                    completion = 0;
                    break;
                }
                completion = ready + 1;
                break;
              }
              case OpClass::kIntMul:
                completion = ready + params_.latIntMul;
                break;
              case OpClass::kFpOp:
                completion = ready + params_.latFp;
                break;
              case OpClass::kBranch:
                completion = ready + params_.latBranch;
                if (op.mispredict) {
                    ++stats_.mispredicts;
                    ctx.frontStallUntil =
                        completion + params_.mispredictPenalty;
                }
                break;
              default:
                completion = ready + params_.latIntAlu;
                break;
            }
            if (reject)
                break;
            recordCompletion(ctx, completion);
            pushInFlight(ctx, completion);
            ++stats_.dispatched[static_cast<int>(op.cls)];
            consumeFu(op.cls);
            --budget;
            dispatched_any = true;
            const bool was_mispredict =
                op.cls == OpClass::kBranch && op.mispredict;
            ctx.hasStaged = false;
            ctx.stagedFetchDone = false;
            if (was_mispredict)
                break;
        }
    }
    stats_.busyCycles += dispatched_any;
}

std::uint32_t
MorphCore::issueInOrderFrom(Context &ctx)
{
    std::uint32_t issued = 0;
    std::uint32_t ldst_left = params_.ldstUnits;
    std::uint32_t mul_left = params_.mulUnits;
    std::uint32_t fp_left = params_.fpUnits;

    // In-order mode keeps only a short pipeline's worth of ops in flight
    // (the ROB storage is repurposed; cf. InOrderCore's 16-entry buffer).
    constexpr std::uint32_t kInOrderWindow = 16;
    while (issued < params_.width) {
        if (ctx.robCount >= std::min<std::size_t>(kInOrderWindow,
                                                  ctx.rob.size()))
            break;
        if (!ctx.hasStaged) {
            if (!ctx.thread || !ctx.thread->hasWork())
                break;
            ctx.staged = ctx.thread->nextOp();
            ctx.hasStaged = true;
            ctx.stagedFetchDone = false;
        }
        MicroOp &op = ctx.staged;
        if (op.fetchLineCross && !ctx.stagedFetchDone) {
            const MemAccess fetch =
                hierarchy_.instrAccess(globalNow_, op.fetchAddr);
            ctx.stagedFetchDone = true;
            if (fetch.level != MemLevel::kL1) {
                ctx.stallUntil = coreFromGlobal(fetch.completion);
                break;
            }
        }
        const Cycle dep_ready = dependencyReady(ctx, op);
        if (dep_ready > coreNow_) {
            ctx.stallUntil = dep_ready;
            break;
        }
        bool fu_ok = true;
        switch (op.cls) {
          case OpClass::kLoad:
          case OpClass::kStore:
            fu_ok = ldst_left > 0;
            break;
          case OpClass::kIntMul:
            fu_ok = mul_left > 0;
            break;
          case OpClass::kFpOp:
            fu_ok = fp_left > 0;
            break;
          default:
            break;
        }
        if (!fu_ok)
            break;
        Cycle completion;
        switch (op.cls) {
          case OpClass::kLoad: {
            const auto access =
                hierarchy_.dataAccess(globalNow_, op.addr, false);
            if (!access) {
                ++stats_.mshrStallEvents;
                ctx.stallUntil = coreNow_ + 2;
                return issued;
            }
            completion = std::max<Cycle>(coreNow_ + params_.latL1,
                                         coreFromGlobal(access->completion));
            if (access->level == MemLevel::kBeyond)
                ctx.stallUntil = completion;
            --ldst_left;
            break;
          }
          case OpClass::kStore: {
            const auto access =
                hierarchy_.dataAccess(globalNow_, op.addr, true);
            if (!access) {
                ++stats_.mshrStallEvents;
                ctx.stallUntil = coreNow_ + 2;
                return issued;
            }
            completion = coreNow_ + 1;
            --ldst_left;
            break;
          }
          case OpClass::kIntMul:
            completion = coreNow_ + params_.latIntMul;
            --mul_left;
            break;
          case OpClass::kFpOp:
            completion = coreNow_ + params_.latFp;
            --fp_left;
            break;
          case OpClass::kBranch:
            completion = coreNow_ + params_.latBranch;
            if (op.mispredict) {
                ++stats_.mispredicts;
                ctx.stallUntil = completion + params_.mispredictPenalty;
            }
            break;
          default:
            completion = coreNow_ + params_.latIntAlu;
            break;
        }
        recordCompletion(ctx, completion);
        pushInFlight(ctx, completion);
        ++stats_.dispatched[static_cast<int>(op.cls)];
        ++issued;
        const bool redirect = ctx.stallUntil > coreNow_;
        ctx.hasStaged = false;
        ctx.stagedFetchDone = false;
        if (redirect)
            break;
    }
    return issued;
}

void
MorphCore::inOrderCycle()
{
    const std::uint32_t n = numContexts();
    const std::uint32_t start = fetchRotor_++ % n;
    for (std::uint32_t k = 0; k < n; ++k) {
        Context &ctx = contexts_[(start + k) % n];
        if (!ctx.thread && !ctx.hasStaged)
            continue;
        if (ctx.stallUntil > coreNow_)
            continue;
        if (issueInOrderFrom(ctx) > 0) {
            ++stats_.busyCycles;
            break;
        }
        if (ctx.stallUntil <= coreNow_)
            break;
    }
}

} // namespace smtflex
