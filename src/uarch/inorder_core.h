/**
 * @file
 * In-order core model with fine-grained multithreading (the paper's small
 * core: 2-wide in-order, up to 2 hardware threads).
 *
 * Cycle behaviour:
 *  - one context issues per core cycle (barrel-style fine-grained MT);
 *    stalled contexts yield their slot to the other context;
 *  - dual issue of independent ops subject to functional units;
 *  - stall-on-RAW: an op whose producer has not completed blocks issue;
 *  - full stall on misses past the private L2 (no MLP in a simple
 *    in-order pipeline), short stalls covered by the dependency check;
 *  - mispredicted branches flush the short pipeline.
 */

#ifndef SMTFLEX_UARCH_INORDER_CORE_H
#define SMTFLEX_UARCH_INORDER_CORE_H

#include "uarch/core.h"

namespace smtflex {

/** 2-wide in-order core with 2-way fine-grained MT (Table 1 small). */
class InOrderCore : public Core
{
  public:
    InOrderCore(const CoreParams &params, std::uint32_t core_id,
                std::uint32_t num_contexts, MemorySystem *shared,
                double chip_freq_ghz);

    Cycle nextEventCycle(Cycle global_now) override;

  protected:
    void coreCycle() override;
    void onSkippedCoreCycles(Cycle core_cycles) override;

  private:
    /** Issue up to `width` ops from @p ctx this cycle.
     * @return number of ops issued. */
    std::uint32_t issueFrom(Context &ctx);
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_INORDER_CORE_H
