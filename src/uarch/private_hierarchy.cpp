#include "private_hierarchy.h"

#include <algorithm>

#include "common/log.h"

namespace smtflex {

PrivateHierarchy::PrivateHierarchy(const CoreParams &params,
                                   std::uint32_t core_id,
                                   MemorySystem *shared)
    : params_(params), coreId_(core_id), shared_(shared),
      l1i_(params.name + ".l1i", params.l1i),
      l1d_(params.name + ".l1d", params.l1d),
      l2_(params.name + ".l2", params.l2)
{
    if (!shared_)
        fatal("PrivateHierarchy: null shared memory system");
    if (params_.mshrs > kMshrRing)
        fatal("PrivateHierarchy: mshrs exceeds ring capacity");
}

std::uint32_t
PrivateHierarchy::outstandingMisses(Cycle now) const
{
    std::uint32_t count = 0;
    for (const Cycle completion : mshrCompletion_)
        count += (completion > now);
    return count;
}

bool
PrivateHierarchy::wouldRejectData(Cycle now, Addr addr) const
{
    // Mirror of accessInternal()'s reject fast path — the only way
    // dataAccess() returns nullopt. Must stay exactly in sync with it.
    if (mshrIndex_ < params_.mshrs)
        return false;
    const Cycle kth_recent =
        mshrCompletion_[(mshrIndex_ - params_.mshrs) % kMshrRing];
    return kth_recent > now && !l1d_.contains(addr) &&
           !l2_.contains(addr) && outstandingMisses(now) >= params_.mshrs;
}

Cycle
PrivateHierarchy::earliestPendingFill(Cycle now) const
{
    Cycle earliest = kCycleNever;
    for (const Cycle completion : mshrCompletion_) {
        if (completion > now)
            earliest = std::min(earliest, completion);
    }
    return earliest;
}

bool
PrivateHierarchy::allocateMshr(Cycle now, Cycle completion)
{
    if (outstandingMisses(now) >= params_.mshrs)
        return false;
    mshrCompletion_[mshrIndex_ % kMshrRing] = completion;
    ++mshrIndex_;
    return true;
}

std::optional<MemAccess>
PrivateHierarchy::accessInternal(Cycle now, Addr addr, bool is_write,
                                 bool is_instr, bool mark_prefetched)
{
    SetAssocCache &l1 = is_instr ? l1i_ : l1d_;

    // Data accesses are rejected when a fill would be needed but no MSHR
    // can take it. O(1) fast path: if the params_.mshrs-th most recent
    // miss has already completed, a slot is certainly free (miss
    // completions are near-monotonic through the serialised bus), so the
    // full check and the extra tag probes are skipped.
    if (!is_instr && mshrIndex_ >= params_.mshrs) {
        const Cycle kth_recent =
            mshrCompletion_[(mshrIndex_ - params_.mshrs) % kMshrRing];
        if (kth_recent > now && !l1.contains(addr) &&
            !l2_.contains(addr) &&
            outstandingMisses(now) >= params_.mshrs) {
            return std::nullopt;
        }
    }

    const auto l1_result = l1.access(addr, is_write, mark_prefetched);
    if (l1_result.writeback)
        l2_.access(l1_result.victimAddr, true);
    if (l1_result.hit) {
        return MemAccess{now + params_.latL1, MemLevel::kL1,
                         l1_result.hitPrefetched};
    }

    const auto l2_result = l2_.access(addr, false);
    if (l2_result.writeback)
        shared_->writebackLine(now, l2_result.victimAddr, coreId_);
    if (l2_result.hit)
        return MemAccess{now + params_.latL1 + params_.latL2, MemLevel::kL2};

    // Miss past the private hierarchy: fetch from the shared system.
    const Cycle fill = shared_->fetchLine(now + params_.latL1 + params_.latL2,
                                          addr, coreId_);
    // For instruction fetches this may find the ring full and simply not
    // track the fill; data fills always have a slot (pre-checked above).
    allocateMshr(now, fill);
    return MemAccess{fill, MemLevel::kBeyond};
}

std::optional<MemAccess>
PrivateHierarchy::dataAccess(Cycle now, Addr addr, bool is_write)
{
    const auto access = accessInternal(now, addr, is_write, false);
    // Optional next-line data prefetch (tagged): triggered by demand
    // misses and by first touches of prefetched lines, issued without a
    // completion dependency (and without recursing).
    if (params_.dataPrefetch && access && !prefetching_ &&
        (access->level != MemLevel::kL1 || access->l1PrefetchHit)) {
        const Addr next = lineAlign(addr) + kLineSize;
        if (!l1d_.contains(next)) {
            prefetching_ = true;
            accessInternal(now, next, false, false, /*mark_prefetched=*/true);
            prefetching_ = false;
        }
    }
    return access;
}

MemAccess
PrivateHierarchy::instrAccess(Cycle now, Addr addr)
{
    const MemAccess access = *accessInternal(now, addr, false, true);
    // Next-line instruction prefetcher: sequential fetch misses are hidden
    // by fetching the following line eagerly (no completion dependency;
    // bandwidth and cache insertion are accounted normally).
    const Addr next = addr + kLineSize;
    if (!l1i_.contains(next))
        accessInternal(now, next, false, true);
    return access;
}

void
PrivateHierarchy::warmLine(Addr addr, bool is_instr, bool also_l1)
{
    l2_.install(addr);
    if (also_l1)
        (is_instr ? l1i_ : l1d_).install(addr);
}

void
PrivateHierarchy::invalidateAll()
{
    l1i_.invalidateAll();
    l1d_.invalidateAll();
    l2_.invalidateAll();
    mshrCompletion_.fill(0);
}

} // namespace smtflex
