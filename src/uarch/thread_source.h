/**
 * @file
 * The interface a core uses to pull work from, and report progress to, an
 * attached software thread. The simulation layer (sim/, workload/) owns the
 * concrete implementations (multi-program threads, PARSEC worker threads).
 */

#ifndef SMTFLEX_UARCH_THREAD_SOURCE_H
#define SMTFLEX_UARCH_THREAD_SOURCE_H

#include "common/types.h"
#include "trace/uop.h"

namespace smtflex {

/**
 * A stream of micro-ops plus retirement notifications.
 */
class ThreadSource
{
  public:
    virtual ~ThreadSource() = default;

    /** Produce the next micro-op of this thread. Only called while the
     * thread has work (hasWork() returned true this cycle). */
    virtual MicroOp nextOp() = 0;

    /**
     * True while the thread should keep executing. When this turns false
     * (budget exhausted and no restart, or blocked on synchronisation) the
     * core stops fetching; in-flight ops still retire.
     */
    virtual bool hasWork() = 0;

    /** One op of this thread retired at global cycle @p now. */
    virtual void onRetire(Cycle now) = 0;

    /**
     * A fetched-but-never-dispatched op was discarded because the thread
     * was detached (context switch / throttling). Sources that count
     * generated ops against a target must roll one back.
     */
    virtual void onStagedOpDropped() {}
};

} // namespace smtflex

#endif // SMTFLEX_UARCH_THREAD_SOURCE_H
