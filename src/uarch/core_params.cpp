#include "core_params.h"

#include "common/log.h"

namespace smtflex {

const char *
coreTypeTag(CoreType type)
{
    switch (type) {
      case CoreType::kBig:
        return "B";
      case CoreType::kMedium:
        return "m";
      case CoreType::kSmall:
        return "s";
    }
    return "?";
}

CoreParams
CoreParams::big()
{
    CoreParams p;
    p.name = "big";
    p.type = CoreType::kBig;
    p.outOfOrder = true;
    p.width = 4;
    p.robSize = 128;
    p.maxSmtContexts = 6;
    p.intUnits = 3;
    p.ldstUnits = 2;
    p.mulUnits = 1;
    p.fpUnits = 1;
    p.mispredictPenalty = 10;
    p.l1i = {32 * 1024, 4};
    p.l1d = {32 * 1024, 4};
    p.l2 = {256 * 1024, 8};
    p.latL1 = 3;
    p.latL2 = 10;
    p.mshrs = 16;
    return p;
}

CoreParams
CoreParams::medium()
{
    CoreParams p;
    p.name = "medium";
    p.type = CoreType::kMedium;
    p.outOfOrder = true;
    p.width = 2;
    p.robSize = 32;
    p.maxSmtContexts = 3;
    p.intUnits = 2;
    p.ldstUnits = 1;
    p.mulUnits = 1;
    p.fpUnits = 1;
    p.mispredictPenalty = 8;
    p.l1i = {16 * 1024, 2};
    p.l1d = {16 * 1024, 2};
    p.l2 = {128 * 1024, 4};
    p.latL1 = 3;
    p.latL2 = 9;
    p.mshrs = 8;
    return p;
}

CoreParams
CoreParams::small()
{
    CoreParams p;
    p.name = "small";
    p.type = CoreType::kSmall;
    p.outOfOrder = false;
    p.width = 2;
    p.robSize = 0;
    p.maxSmtContexts = 2; // fine-grained multithreading
    p.intUnits = 2;
    p.ldstUnits = 1;
    p.mulUnits = 1;
    p.fpUnits = 1;
    p.latIntMul = 5;
    p.latFp = 5;
    p.mispredictPenalty = 5; // short in-order pipeline
    p.l1i = {6 * 1024, 2};
    p.l1d = {6 * 1024, 2};
    p.l2 = {48 * 1024, 4};
    p.latL1 = 2;
    p.latL2 = 8;
    p.mshrs = 4;
    return p;
}

CoreParams
CoreParams::withBigCaches() const
{
    CoreParams p = *this;
    const CoreParams b = big();
    p.l1i = b.l1i;
    p.l1d = b.l1d;
    p.l2 = b.l2;
    p.name = name + "_lc";
    return p;
}

CoreParams
CoreParams::withFrequency(double ghz) const
{
    CoreParams p = *this;
    p.freqGHz = ghz;
    p.name = name + "_hf";
    return p;
}

namespace {

void
validateGeometry(const std::string &core, const char *which,
                 const CacheGeometry &geometry)
{
    if (geometry.sizeBytes == 0)
        fatal("CoreParams ", core, ": ", which, ".sizeBytes must be > 0");
    if (geometry.assoc == 0)
        fatal("CoreParams ", core, ": ", which, ".assoc must be > 0");
    if (geometry.numLines() < geometry.assoc)
        fatal("CoreParams ", core, ": ", which,
              " smaller than one set (", geometry.sizeBytes, " bytes, ",
              geometry.assoc, "-way)");
}

} // namespace

void
CoreParams::validate() const
{
    if (width == 0 || width > 16)
        fatal("CoreParams ", name, ": bad width");
    if (outOfOrder && robSize < width)
        fatal("CoreParams ", name, ": ROB smaller than width");
    if (maxSmtContexts == 0)
        fatal("CoreParams ", name, ": need at least one context");
    if (outOfOrder && robSize / maxSmtContexts == 0)
        fatal("CoreParams ", name, ": ROB partition would be empty");
    if (intUnits == 0 || ldstUnits == 0)
        fatal("CoreParams ", name, ": need int and ld/st units");
    if (mulUnits == 0 || fpUnits == 0)
        fatal("CoreParams ", name, ": need mul and fp units");
    if (latL1 == 0)
        fatal("CoreParams ", name, ": latL1 must be > 0");
    validateGeometry(name, "l1i", l1i);
    validateGeometry(name, "l1d", l1d);
    validateGeometry(name, "l2", l2);
    if (freqGHz <= 0.0)
        fatal("CoreParams ", name, ": bad frequency");
    if (mshrs == 0)
        fatal("CoreParams ", name, ": need at least one MSHR");
}

} // namespace smtflex
