#include "chip_sim.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <utility>

#include "ckpt/store.h"
#include "common/env.h"
#include "common/log.h"

namespace smtflex {

double
SimResult::aggregateIpc() const
{
    double sum = 0.0;
    for (const auto &t : threads)
        sum += t.ipc();
    return sum;
}

ChipSim::ChipSim(const ChipConfig &config)
    : config_(config), shared_(config),
      activeHistogram_(config.totalContexts() + 8)
{
    config_.validate();
    cores_.reserve(config_.numCores());
    for (std::uint32_t i = 0; i < config_.numCores(); ++i) {
        cores_.push_back(makeCore(config_.cores[i], i,
                                  config_.contextsOf(i), &shared_,
                                  config_.chipFreqGHz));
    }
    poweredCycles_.assign(config_.numCores(), 0);
    wake_.assign(config_.numCores(), 0);
    sleepStart_.assign(config_.numCores(), 0);
    awakeMask_.assign((config_.numCores() + 63) / 64, 0);
    for (std::uint32_t i = 0; i < config_.numCores(); ++i)
        awakeMask_[i / 64] |= std::uint64_t{1} << (i % 64);
    fastForward_ = !envFlag("SMTFLEX_NO_FASTFWD", false);
    registerChipMetrics();
}

void
ChipSim::registerChipMetrics()
{
    // Everything the registry views lives in members assigned exactly once
    // above (cores_ holds stable unique_ptrs; poweredCycles_ never
    // reallocates), so the pointers stay valid for the chip's lifetime.
    registry_.info("chip.config", [this] { return config_.name; });
    registry_.counter("chip.cycles", &now_);
    registry_.gaugeReal("chip.freq_ghz",
                        [this] { return config_.chipFreqGHz; });
    registry_.gaugeBool("chip.hit_cycle_limit",
                        [this] { return hitCycleLimit_; });
    telemetry::attachHistogram(
        registry_, "chip.active_threads", activeHistogram_.numBuckets(),
        [this](std::size_t k) { return activeHistogram_.fraction(k); });
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::string prefix = "core." + std::to_string(i);
        cores_[i]->registerMetrics(registry_, prefix);
        registry_.counter(prefix + ".powered_cycles", &poweredCycles_[i]);
    }
    shared_.registerMetrics(registry_);
}

void
ChipSim::enableSampling(Cycle interval, std::size_t max_points)
{
    if (interval == 0)
        fatal("ChipSim: sampling interval must be > 0");
    samplingInterval_ = interval;
    samplingMaxPoints_ = max_points;
    nextSample_ = now_ + interval;
    lastSampleCycle_ = now_;
    std::uint64_t retired = 0;
    for (const auto &core : cores_)
        retired += core->stats().retired;
    lastSampleRetired_ = retired;
    ipcSeries_ = &registry_.series("chip.ipc", max_points);
    activeSeries_ = &registry_.series("chip.active_threads", max_points);
}

void
ChipSim::maybeSample()
{
    // Retired counts are strict even while cores sleep: retirement only
    // happens inside tick(), so a sleeping (provably inert) core's counter
    // is already exact — no wake needed to read it.
    std::uint64_t retired = 0;
    for (const auto &core : cores_)
        retired += core->stats().retired;
    const Cycle elapsed = now_ - lastSampleCycle_;
    const double ipc = elapsed
        ? static_cast<double>(retired - lastSampleRetired_) /
            static_cast<double>(elapsed)
        : 0.0;
    ipcSeries_->append(now_, ipc);
    activeSeries_->append(now_, static_cast<double>(attachedThreads_));
    lastSampleCycle_ = now_;
    lastSampleRetired_ = retired;
    nextSample_ = now_ + samplingInterval_;
}

void
ChipSim::attach(std::uint32_t core, std::uint32_t slot, ThreadSource *t)
{
    if (core < wake_.size())
        flushCore(core); // settle deferred sleep before mutating the core
    cores_.at(core)->attachThread(slot, t);
    ++attachedThreads_;
}

ThreadSource *
ChipSim::detach(std::uint32_t core, std::uint32_t slot)
{
    if (core < wake_.size())
        flushCore(core);
    ThreadSource *old = cores_.at(core)->detachThread(slot);
    if (old)
        --attachedThreads_;
    return old;
}

void
ChipSim::tick()
{
    ++now_;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        Core &core = *cores_[i];
        const bool powered = core.activeContexts() > 0;
        poweredCycles_[i] += powered;
        if (powered || !core.quiescent())
            core.tick(now_);
    }
    activeHistogram_.add(attachedThreads_, 1.0);
    if (samplingInterval_ != 0 && now_ >= nextSample_)
        maybeSample();
}

Cycle
ChipSim::nextEventCycle()
{
    Cycle event = kCycleNever;
    for (const auto &core : cores_) {
        // Mirror tick()'s ticking condition: unpowered quiescent cores do
        // not advance, so they contribute no events (attach only happens
        // at strictly simulated cycles).
        if (core->activeContexts() == 0 && core->quiescent())
            continue;
        event = std::min(event, core->nextEventCycle(now_));
        if (event <= now_ + 1)
            return now_ + 1; // some core may act next cycle: no skip
    }
    return event;
}

void
ChipSim::flushCore(std::uint32_t i)
{
    if (wake_[i] == 0)
        return;
    // Parked dormant cores would not have ticked in the strict loop
    // either: nothing to replay.
    if (wake_[i] != kCycleNever) {
        // The core slept through (sleepStart_, min(now_, wake_ - 1)];
        // those cycles are provably inert, so bulk-replay their
        // accounting exactly (cycle counts, rotors, stall counters,
        // powered cycles).
        const Cycle upto = std::min(now_, wake_[i] - 1);
        if (upto > sleepStart_[i]) {
            const Cycle count = upto - sleepStart_[i];
            Core &core = *cores_[i];
            if (core.activeContexts() > 0)
                poweredCycles_[i] += count;
            core.skipTicks(count);
            ffCycles_ += count;
            ++ffSpans_;
        }
    }
    wake_[i] = 0;
    awakeMask_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void
ChipSim::wakeAllCores()
{
    for (std::uint32_t i = 0; i < wake_.size(); ++i)
        flushCore(i);
}

void
ChipSim::stepCores()
{
    ++now_;
    // Wake the sleepers whose next strict tick arrived.
    while (!wakeHeap_.empty() && wakeHeap_.top().first <= now_) {
        const auto [w, i] = wakeHeap_.top();
        wakeHeap_.pop();
        if (wake_[i] == w)
            flushCore(i);
    }
    // Tick the awake cores, in index order (same-cycle memory accesses
    // must hit the shared system in the strict loop's order).
    for (std::size_t word = 0; word < awakeMask_.size(); ++word) {
        std::uint64_t bits = awakeMask_[word];
        while (bits != 0) {
            const std::uint32_t i = static_cast<std::uint32_t>(
                word * 64 + std::countr_zero(bits));
            bits &= bits - 1;
            Core &core = *cores_[i];
            const bool powered = core.activeContexts() > 0;
            poweredCycles_[i] += powered;
            if (!powered && core.quiescent()) {
                // Dormant: the strict loop skips it every cycle; park it
                // until an attach flushes it back awake.
                wake_[i] = kCycleNever;
                awakeMask_[word] &= ~(std::uint64_t{1} << (i % 64));
                continue;
            }
            core.tick(now_);
            const Cycle event = core.nextEventCycle(now_);
            if (event > now_ + 1) {
                wake_[i] = event;
                sleepStart_[i] = now_;
                wakeHeap_.push({event, i});
                awakeMask_[word] &= ~(std::uint64_t{1} << (i % 64));
            }
        }
    }
    activeHistogram_.add(attachedThreads_, 1.0);
    if (samplingInterval_ != 0 && now_ >= nextSample_)
        maybeSample();
}

void
ChipSim::jumpIdleSpan(Cycle bound)
{
    // A sample must be taken at exactly its boundary cycle, so a jump may
    // not pass one. (Landing on the boundary is fine: no core was awake,
    // so the sampled counters cannot differ from the strict loop's.)
    if (samplingInterval_ != 0)
        bound = std::min(bound, nextSample_);
    // Jump only when every core is asleep or parked — checked against
    // the *current* state, after any rotation/attach woke cores.
    for (const std::uint64_t word : awakeMask_)
        if (word != 0)
            return; // some core is awake: it could act next cycle
    Cycle min_wake = kCycleNever;
    while (!wakeHeap_.empty()) {
        const auto [w, i] = wakeHeap_.top();
        if (wake_[i] != w) {
            wakeHeap_.pop(); // stale: the core was flushed externally
            continue;
        }
        min_wake = w;
        break;
    }
    const Cycle target = min_wake == kCycleNever
        ? bound
        : std::min(bound, min_wake - 1);
    if (target > now_) {
        // Nothing can happen until the earliest wake (sleeping cores'
        // accounting is deferred, parked cores would not have ticked
        // anyway). Integral double sums are exact, so the bulk histogram
        // add is bit-identical to per-cycle unit adds.
        activeHistogram_.add(attachedThreads_,
                             static_cast<double>(target - now_));
        now_ = target;
        if (samplingInterval_ != 0 && now_ >= nextSample_)
            maybeSample();
    }
}

void
ChipSim::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!fastForward_) {
        while (now_ < end)
            tick();
        return;
    }
    while (now_ < end) {
        stepCores();
        if (now_ < end)
            jumpIdleSpan(end);
    }
    wakeAllCores();
}

void
ChipSim::warmAllCaches(const std::vector<WarmSpec> &specs)
{
    // Gather each thread's resident lines (coldest/largest regions first,
    // hottest last — forEachResidentLine's order).
    struct WarmLine
    {
        Addr addr;
        bool isCode;
    };
    std::vector<std::vector<WarmLine>> lines(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TraceGenerator::forEachResidentLine(
            *specs[i].profile, specs[i].space, config_.llc.sizeBytes,
            [&](Addr addr, bool is_code) {
                lines[i].push_back({addr, is_code});
            });
    }

    // Interleaved installation, chunked to amortise the loop overhead.
    constexpr std::size_t kChunkLines = 128;
    bool more = true;
    for (std::size_t chunk = 0; more; ++chunk) {
        more = false;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const std::size_t begin = chunk * kChunkLines;
            if (begin >= lines[i].size())
                continue;
            const std::size_t end =
                std::min(begin + kChunkLines, lines[i].size());
            Core &target = *cores_.at(specs[i].core);
            for (std::size_t k = begin; k < end; ++k) {
                target.hierarchy().warmLine(lines[i][k].addr,
                                            lines[i][k].isCode, true);
                shared_.warmLine(lines[i][k].addr);
            }
            more = true;
        }
    }
}

void
ChipSim::warmThreadCaches(std::uint32_t core, const BenchmarkProfile &profile,
                          const AddressSpace &space)
{
    warmAllCaches({WarmSpec{&profile, space, core}});
}

void
ChipSim::validatePlacement(const Placement &placement,
                           std::size_t num_threads) const
{
    if (placement.entries.size() != num_threads)
        fatal("ChipSim: placement covers ", placement.entries.size(),
              " threads, workload has ", num_threads);
    for (const auto &entry : placement.entries) {
        if (entry.core >= cores_.size())
            fatal("ChipSim: placement names bad core ", entry.core);
        if (entry.slot >= cores_[entry.core]->numContexts())
            fatal("ChipSim: placement names bad slot ", entry.slot,
                  " on core ", entry.core);
    }
}

void
ChipSim::saveState(ckpt::Writer &w,
                   const std::vector<ThreadSource *> &threads) const
{
    std::map<const ThreadSource *, std::uint32_t> index;
    for (std::uint32_t i = 0; i < threads.size(); ++i)
        index[threads[i]] = i;
    const auto thread_index = [&](const ThreadSource *t) {
        const auto it = index.find(t);
        if (it == index.end())
            fatal("ChipSim::saveState: thread not in the thread table");
        return it->second;
    };

    w.u64(now_);
    w.u32(attachedThreads_);
    w.boolean(hitCycleLimit_);
    w.u64(ffCycles_);
    w.u64(ffSpans_);
    w.u32(static_cast<std::uint32_t>(poweredCycles_.size()));
    for (const Cycle c : poweredCycles_)
        w.u64(c);
    w.u32(static_cast<std::uint32_t>(activeHistogram_.numBuckets()));
    for (const double b : activeHistogram_.rawBuckets())
        w.f64(b);
    w.f64(activeHistogram_.total());
    w.u64(samplingInterval_);
    if (samplingInterval_ != 0) {
        w.u64(nextSample_);
        w.u64(lastSampleCycle_);
        w.u64(lastSampleRetired_);
        for (const telemetry::Series *series : {ipcSeries_, activeSeries_}) {
            const auto points = series->points();
            w.u32(static_cast<std::uint32_t>(points.size()));
            for (const auto &p : points) {
                w.u64(p.x);
                w.f64(p.value);
            }
        }
    }
    shared_.saveState(w);
    for (const auto &core : cores_)
        core->saveState(w, thread_index);
}

void
ChipSim::loadState(ckpt::Reader &r,
                   const std::vector<ThreadSource *> &threads)
{
    const auto thread_at = [&](std::uint32_t idx) -> ThreadSource * {
        if (idx >= threads.size())
            throw ckpt::CorruptSnapshot("ckpt: thread index out of range");
        return threads[idx];
    };

    now_ = r.u64();
    attachedThreads_ = r.u32();
    if (attachedThreads_ > threads.size())
        throw ckpt::CorruptSnapshot("ckpt: attached threads out of range");
    hitCycleLimit_ = r.boolean();
    ffCycles_ = r.u64();
    ffSpans_ = r.u64();
    r.count(poweredCycles_.size(), "powered-cycle counters");
    for (Cycle &c : poweredCycles_)
        c = r.u64();
    const std::uint32_t buckets =
        r.count(activeHistogram_.numBuckets(), "histogram buckets");
    std::vector<double> weights(buckets);
    for (double &b : weights)
        b = r.f64();
    const double total = r.f64();
    activeHistogram_.restore(weights, total);
    if (r.u64() != samplingInterval_)
        throw ckpt::CorruptSnapshot("ckpt: sampling interval mismatch");
    if (samplingInterval_ != 0) {
        nextSample_ = r.u64();
        lastSampleCycle_ = r.u64();
        lastSampleRetired_ = r.u64();
        for (telemetry::Series *series : {ipcSeries_, activeSeries_}) {
            const std::uint32_t n = r.u32();
            series->clear();
            for (std::uint32_t i = 0; i < n; ++i) {
                const std::uint64_t x = r.u64();
                const double value = r.f64();
                series->append(x, value);
            }
        }
    }
    shared_.loadState(r);
    for (const auto &core : cores_)
        core->loadState(r, thread_at);

    // The snapshot was taken in a strict-equivalent state: every core
    // awake, no deferred accounting. Reset the fast-forward bookkeeping
    // to exactly that.
    std::fill(wake_.begin(), wake_.end(), 0);
    std::fill(sleepStart_.begin(), sleepStart_.end(), 0);
    awakeMask_.assign((cores_.size() + 63) / 64, 0);
    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        awakeMask_[i / 64] |= std::uint64_t{1} << (i % 64);
    wakeHeap_ = {};
}

namespace {

/** Feed every field that shapes simulated behaviour into @p w — the
 * resulting byte stream is hashed into the resume key, so two runs share
 * snapshots only when *all* of it matches. Names alone would not do:
 * identically named configs or profiles with different parameters must
 * never resume each other's state. */
void
hashGeometry(ckpt::Writer &w, const CacheGeometry &g)
{
    w.u64(g.sizeBytes);
    w.u32(g.assoc);
    w.u32(g.lineSize);
}

void
hashCoreParams(ckpt::Writer &w, const CoreParams &p)
{
    w.str(p.name);
    w.u32(static_cast<std::uint32_t>(p.type));
    w.boolean(p.outOfOrder);
    w.u32(p.width);
    w.u32(p.robSize);
    w.u32(p.maxSmtContexts);
    w.u32(static_cast<std::uint32_t>(p.fetchPolicy));
    w.u32(p.intUnits);
    w.u32(p.ldstUnits);
    w.u32(p.mulUnits);
    w.u32(p.fpUnits);
    w.u32(p.latIntAlu);
    w.u32(p.latIntMul);
    w.u32(p.latFp);
    w.u32(p.latBranch);
    w.u32(p.mispredictPenalty);
    hashGeometry(w, p.l1i);
    hashGeometry(w, p.l1d);
    hashGeometry(w, p.l2);
    w.u32(p.latL1);
    w.u32(p.latL2);
    w.u32(p.mshrs);
    w.boolean(p.dataPrefetch);
    w.f64(p.freqGHz);
}

void
hashChipConfig(ckpt::Writer &w, const ChipConfig &c)
{
    w.str(c.name);
    w.u32(c.numCores());
    for (const CoreParams &p : c.cores)
        hashCoreParams(w, p);
    w.boolean(c.smtEnabled);
    hashGeometry(w, c.llc);
    w.u32(c.llcLatency);
    w.u32(c.xbar.hopLatency);
    w.u32(c.xbar.numBanks);
    w.u32(c.xbar.bankOccupancy);
    w.boolean(c.useMesh);
    w.u32(c.mesh.hopLatency);
    w.u32(c.mesh.bankOccupancy);
    w.u32(c.mesh.numBanks);
    w.u32(c.dram.numBanks);
    w.f64(c.dram.accessTimeNs);
    w.f64(c.dram.busBandwidthGBps);
    w.f64(c.dram.clockGHz);
    w.f64(c.chipFreqGHz);
}

void
hashProfile(ckpt::Writer &w, const BenchmarkProfile &p)
{
    w.str(p.name);
    w.f64(p.mix.load);
    w.f64(p.mix.store);
    w.f64(p.mix.intAlu);
    w.f64(p.mix.intMul);
    w.f64(p.mix.fp);
    w.f64(p.mix.branch);
    w.f64(p.meanDepDist);
    w.f64(p.depNoneProb);
    w.f64(p.branchMispredictRate);
    w.f64(p.branchTakenProb);
    w.u64(p.codeFootprint);
    w.f64(p.jumpLocality);
    w.u64(p.hotCodeBytes);
    w.u32(static_cast<std::uint32_t>(p.regions.size()));
    for (const MemRegion &region : p.regions) {
        w.u64(region.bytes);
        w.f64(region.probability);
        w.boolean(region.streaming);
    }
    w.u32(p.accessSkew);
}

/**
 * The resume key of a runMultiProgram() call: everything the simulated
 * state at a pre-finish cycle is a function of. Budget and maxCycles are
 * deliberately *excluded* — until the first thread finishes its budget,
 * the state stream is budget-independent, which is exactly what turns
 * exact-hit caching into prefix reuse (a longer run warm-starts from a
 * shorter run's snapshots). Eligibility against the new budgets/limits
 * is checked per snapshot via its meta header.
 */
std::string
multiProgramCkptKey(const ChipConfig &config,
                    const std::vector<ThreadSpec> &specs,
                    const Placement &placement, std::uint64_t seed,
                    const RunLimits &limits, Cycle sampling_interval,
                    std::size_t sampling_max_points)
{
    ckpt::Writer w;
    hashChipConfig(w, config);
    w.u32(static_cast<std::uint32_t>(specs.size()));
    for (const ThreadSpec &spec : specs) {
        hashProfile(w, *spec.profile);
        w.u64(spec.warmup);
    }
    for (const Placement::Entry &e : placement.entries) {
        w.u32(e.core);
        w.u32(e.slot);
    }
    w.u64(seed);
    w.u64(limits.quantum);
    w.u64(sampling_interval);
    w.u64(sampling_max_points);
    const std::uint64_t hash = ckpt::keyHash64(std::string(
        reinterpret_cast<const char *>(w.bytes().data()), w.size()));

    std::string key = config.name;
    key += ";s" + std::to_string(seed);
    key += ";q" + std::to_string(limits.quantum);
    key += ";t";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i)
            key += "+";
        key += specs[i].profile->name + ":" +
            std::to_string(specs[i].warmup) + "@" +
            std::to_string(placement.entries[i].core) + "." +
            std::to_string(placement.entries[i].slot);
    }
    key += ";h" + std::to_string(hash);
    return key;
}

} // namespace

SimResult
ChipSim::runMultiProgram(const std::vector<ThreadSpec> &specs,
                         const Placement &placement, std::uint64_t seed,
                         const RunLimits &limits)
{
    if (specs.empty())
        fatal("ChipSim: empty workload");
    if (limits.maxCycles == 0)
        fatal("ChipSim: RunLimits.maxCycles must be > 0");
    if (limits.quantum == 0)
        fatal("ChipSim: RunLimits.quantum must be > 0");
    validatePlacement(placement, specs.size());

    // Materialise the threads.
    std::vector<std::unique_ptr<SimThread>> threads;
    threads.reserve(specs.size());
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        if (!specs[i].profile || specs[i].budget == 0)
            fatal("ChipSim: bad thread spec ", i);
        threads.push_back(std::make_unique<SimThread>(
            *specs[i].profile, seed, i, specs[i].budget,
            /*restart=*/true, specs[i].warmup));
    }

    // Group threads by context slot; oversubscribed slots time-share.
    // Shares keep first-appearance order (it fixes the attach order); the
    // map only replaces the former linear rescan per thread.
    struct SlotShare
    {
        std::uint32_t core, slot;
        std::vector<std::uint32_t> threads; // thread ids sharing this slot
        std::uint32_t resident = 0;         // index into threads
    };
    std::vector<SlotShare> shares;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> slot_index;
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        const auto &entry = placement.entries[i];
        const auto [it, inserted] = slot_index.try_emplace(
            {entry.core, entry.slot}, shares.size());
        if (inserted) {
            shares.push_back({entry.core, entry.slot, {i}, 0});
        } else {
            shares[it->second].threads.push_back(i);
        }
    }

    bool time_sharing = false;
    for (const auto &share : shares)
        time_sharing |= share.threads.size() > 1;

    // Checkpoint/restore (smtflex::ckpt, DESIGN.md §15). When the process
    // binding is on, look for the newest eligible snapshot of this run's
    // key and resume it instead of cold-starting; either way, the loop
    // below snapshots at every ckpt_interval boundary until the first
    // thread finishes. Hoisted rotation clock: the resident rotation
    // schedule is part of the resumable state.
    std::vector<ThreadSource *> thread_table;
    thread_table.reserve(threads.size());
    for (const auto &thread : threads)
        thread_table.push_back(thread.get());
    const ckpt::ProcessBinding *ckpt_binding = ckpt::processBinding();
    const Cycle ckpt_interval = ckpt_binding ? ckpt_binding->interval : 0;
    std::string ckpt_key;
    Cycle last_ckpt = 0;
    Cycle last_rotation = 0;
    bool resumed = false;
    if (ckpt_binding) {
        ckpt_key =
            multiProgramCkptKey(config_, specs, placement, seed, limits,
                                samplingInterval_, samplingMaxPoints_);
        // Eligible = taken strictly before this run's budgets finish and
        // before its cycle limit, with matching thread count and warmups
        // (budget-independent prefix; see multiProgramCkptKey).
        const auto eligible = [&](const ckpt::Snapshot &snap) {
            if (snap.kind != ckpt::SnapshotKind::kChipRun)
                return false;
            if (snap.cycle == 0 || snap.cycle >= limits.maxCycles)
                return false;
            try {
                ckpt::Reader m(snap.meta);
                m.count(specs.size(), "ckpt meta threads");
                for (const ThreadSpec &spec : specs) {
                    const std::uint64_t retired = m.u64();
                    const std::uint64_t warmup = m.u64();
                    if (warmup != spec.warmup)
                        return false;
                    if (retired >= spec.warmup + spec.budget)
                        return false;
                }
                m.expectEnd();
            } catch (const ckpt::CorruptSnapshot &) {
                return false;
            }
            return true;
        };
        const auto t0 = std::chrono::steady_clock::now();
        if (auto snap = ckpt_binding->store.best(ckpt_key, eligible)) {
            // The payload passed CRC + key echo, so structural failure
            // below means a snapshot-format bug, not disk corruption —
            // and the chip is already partially mutated, so falling back
            // to a cold start is no longer possible. Fail loudly.
            try {
                ckpt::Reader r(snap->payload);
                for (auto &thread : threads)
                    thread->loadState(r);
                loadState(r, thread_table);
                r.count(shares.size(), "slot shares");
                for (auto &share : shares) {
                    share.resident = r.u32();
                    if (share.resident >= share.threads.size())
                        throw ckpt::CorruptSnapshot(
                            "ckpt: resident thread out of range");
                }
                last_rotation = r.u64();
                r.expectEnd();
            } catch (const ckpt::CorruptSnapshot &e) {
                fatal("ckpt: CRC-valid snapshot for key '", ckpt_key,
                      "' failed structural restore (", e.what(),
                      "); remove ", ckpt_binding->store.dir());
            }
            last_ckpt = now_;
            resumed = true;
            auto &cs = ckpt::processStats();
            cs.hits.fetch_add(1, std::memory_order_relaxed);
            cs.resumedCycles.fetch_add(now_, std::memory_order_relaxed);
            cs.resumeMs.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()),
                std::memory_order_relaxed);
            inform("ckpt: ", config_.name, " resumed at cycle ", now_);
        } else {
            ckpt::processStats().misses.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    if (!resumed) {
        for (const auto &share : shares)
            attach(share.core, share.slot,
                   threads[share.threads[0]].get());

        // Functional warmup: every thread's resident working set is
        // installed on its core and in the LLC before timing starts.
        std::vector<WarmSpec> warm;
        warm.reserve(specs.size());
        for (std::uint32_t i = 0; i < specs.size(); ++i) {
            warm.push_back({specs[i].profile, AddressSpace::forThread(i),
                            placement.entries[i].core});
        }
        warmAllCaches(warm);
    }

    // Main loop: run until every thread finished its budget once.
    //
    // Completion detection is O(1): every thread bumps `finished_eager`
    // at the exact retire that completes its budget, and the loop samples
    // that counter at the cadence the former per-cycle thread scan used
    // (every cycle without time sharing, every 256 cycles with), so exit
    // cycles — and with them all results — are unchanged.
    std::uint32_t finished_eager = 0;
    for (auto &thread : threads)
        thread->notifyFinishTo(&finished_eager);
    std::uint32_t finished = 0;
    const auto sync_finished = [&] {
        if (now_ % 256 == 0 || !time_sharing)
            finished = finished_eager;
    };
    // The fast-forward path checks for rotation both after the step and
    // after the jump (either can land on a quantum boundary), so the
    // rotation itself must be idempotent per cycle. (last_rotation is
    // hoisted above: it is restored on resume.)
    const auto rotate_shares = [&] {
        if (!time_sharing || now_ % limits.quantum != 0 ||
            now_ == last_rotation)
            return;
        last_rotation = now_;
        for (auto &share : shares) {
            if (share.threads.size() < 2)
                continue;
            detach(share.core, share.slot);
            share.resident = (share.resident + 1) %
                static_cast<std::uint32_t>(share.threads.size());
            attach(share.core, share.slot,
                   threads[share.threads[share.resident]].get());
        }
    };
    // Periodic snapshot. Only at ckpt_interval boundaries, and only
    // while no thread has finished its budget (the pre-finish state is
    // budget-independent, so any later run sharing the key can resume
    // it — warm-start). wakeAllCores() first settles all deferred
    // fast-forward accounting into the strict-equivalent state that
    // saveState requires; since the uninterrupted run passes through
    // that exact all-awake state here too, a resumed run continues
    // bit-identically (flushCore is result-neutral, so the extra wake
    // churn never shows in results).
    const auto maybe_checkpoint = [&] {
        if (ckpt_interval == 0 || now_ == last_ckpt ||
            now_ % ckpt_interval != 0 || finished_eager != 0)
            return;
        last_ckpt = now_;
        wakeAllCores();
        ckpt::Writer meta;
        meta.u32(static_cast<std::uint32_t>(threads.size()));
        for (const auto &thread : threads) {
            meta.u64(thread->retired());
            meta.u64(thread->warmup());
        }
        ckpt::Writer payload;
        for (const auto &thread : threads)
            thread->saveState(payload);
        saveState(payload, thread_table);
        payload.u32(static_cast<std::uint32_t>(shares.size()));
        for (const auto &share : shares)
            payload.u32(share.resident);
        payload.u64(last_rotation);
        ckpt_binding->store.save({ckpt::SnapshotKind::kChipRun, ckpt_key,
                                  now_, meta.take(), payload.take()});
    };
    while (finished < threads.size() && now_ < limits.maxCycles) {
        if (fastForward_)
            stepCores(); // idle cores sleep instead of ticking
        else
            tick();
        rotate_shares();
        sync_finished();
        maybe_checkpoint();

        // When every core sleeps, jump straight to the earliest wake.
        // The jump happens only after this cycle's rotation and
        // completion sampling, and clamps to time-sharing quantum
        // boundaries (thread rotation must run at exactly the strict
        // cycles) and — while a finish has happened but has not been
        // observed yet — to the 256-cycle completion-sampling
        // boundaries, so the loop exits at exactly the strict run's
        // cycle. No retire can happen inside a sleep span, so the
        // completion counter cannot advance across a jump.
        if (fastForward_ && finished < threads.size() &&
            now_ < limits.maxCycles) {
            Cycle bound = limits.maxCycles;
            if (time_sharing) {
                bound = std::min(
                    bound, (now_ / limits.quantum + 1) * limits.quantum);
                if (finished_eager != finished)
                    bound = std::min(bound, (now_ / 256 + 1) * 256);
            }
            // Snapshots happen at exact interval boundaries; never jump
            // across one.
            if (ckpt_interval != 0)
                bound = std::min(
                    bound, (now_ / ckpt_interval + 1) * ckpt_interval);
            jumpIdleSpan(bound);
            rotate_shares();
            sync_finished();
            maybe_checkpoint();
        }
    }
    wakeAllCores();
    hitCycleLimit_ = now_ >= limits.maxCycles;
    if (hitCycleLimit_)
        warn("ChipSim ", config_.name, ": hit cycle limit at ", now_);

    SimResult result = collectResult();
    result.threads.clear();
    for (const auto &thread : threads) {
        ThreadResult tr;
        tr.benchmark = thread->benchmark();
        tr.budget = thread->budget();
        tr.finished = thread->finished();
        tr.startCycle = thread->startCycle();
        tr.finishCycle = thread->finishCycle();
        result.threads.push_back(std::move(tr));
    }
    return result;
}

SimResult
ChipSim::collectResult() const
{
    SimResult result;
    result.configName = config_.name;
    result.cycles = now_;
    result.chipFreqGHz = config_.chipFreqGHz;
    result.hitCycleLimit = hitCycleLimit_;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const Core &core = *cores_[i];
        CoreResult cr;
        cr.params = core.params();
        cr.stats = core.stats();
        cr.l1i = core.hierarchy().l1i().stats();
        cr.l1d = core.hierarchy().l1d().stats();
        cr.l2 = core.hierarchy().l2().stats();
        cr.poweredCycles = poweredCycles_[i];
        result.cores.push_back(std::move(cr));
    }
    result.llc = shared_.llc().stats();
    result.dram = shared_.dram().stats();
    result.xbar = shared_.crossbar().stats();
    result.activeThreadFractions.resize(activeHistogram_.numBuckets());
    for (std::size_t k = 0; k < activeHistogram_.numBuckets(); ++k)
        result.activeThreadFractions[k] = activeHistogram_.fraction(k);
    result.metrics = registry_.snapshot();
    return result;
}

telemetry::Snapshot
rebuildResultMetrics(const SimResult &result)
{
    telemetry::MetricRegistry reg;
    reg.info("chip.config", [&result] { return result.configName; });
    reg.counter("chip.cycles", &result.cycles);
    reg.gaugeReal("chip.freq_ghz", [&result] { return result.chipFreqGHz; });
    reg.gaugeBool("chip.hit_cycle_limit",
                  [&result] { return result.hitCycleLimit; });
    telemetry::attachHistogram(
        reg, "chip.active_threads", result.activeThreadFractions.size(),
        [&result](std::size_t k) { return result.activeThreadFractions[k]; });
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const std::string prefix = "core." + std::to_string(i);
        const CoreResult &cr = result.cores[i];
        telemetry::attachCounters(reg, prefix, cr.stats);
        for (int c = 0; c < kNumOpClasses; ++c) {
            reg.counter(prefix + ".dispatch." +
                            opClassMetricName(static_cast<OpClass>(c)),
                        &cr.stats.dispatched[c]);
        }
        telemetry::attachCounters(reg, prefix + ".l1i", cr.l1i);
        telemetry::attachCounters(reg, prefix + ".l1d", cr.l1d);
        telemetry::attachCounters(reg, prefix + ".l2", cr.l2);
        reg.counter(prefix + ".powered_cycles", &cr.poweredCycles);
    }
    telemetry::attachCounters(reg, "llc", result.llc);
    telemetry::attachCounters(reg, "dram", result.dram);
    telemetry::attachCounters(reg, "xbar", result.xbar);
    return reg.snapshot();
}

} // namespace smtflex
