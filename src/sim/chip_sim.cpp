#include "chip_sim.h"

#include <algorithm>

#include "common/log.h"

namespace smtflex {

double
SimResult::aggregateIpc() const
{
    double sum = 0.0;
    for (const auto &t : threads)
        sum += t.ipc();
    return sum;
}

ChipSim::ChipSim(const ChipConfig &config)
    : config_(config), shared_(config),
      activeHistogram_(config.totalContexts() + 8)
{
    config_.validate();
    cores_.reserve(config_.numCores());
    for (std::uint32_t i = 0; i < config_.numCores(); ++i) {
        cores_.push_back(makeCore(config_.cores[i], i,
                                  config_.contextsOf(i), &shared_,
                                  config_.chipFreqGHz));
    }
    poweredCycles_.assign(config_.numCores(), 0);
}

void
ChipSim::attach(std::uint32_t core, std::uint32_t slot, ThreadSource *t)
{
    cores_.at(core)->attachThread(slot, t);
    ++attachedThreads_;
}

ThreadSource *
ChipSim::detach(std::uint32_t core, std::uint32_t slot)
{
    ThreadSource *old = cores_.at(core)->detachThread(slot);
    if (old)
        --attachedThreads_;
    return old;
}

void
ChipSim::tick()
{
    ++now_;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        Core &core = *cores_[i];
        const bool powered = core.activeContexts() > 0;
        poweredCycles_[i] += powered;
        if (powered || !core.quiescent())
            core.tick(now_);
    }
    activeHistogram_.add(attachedThreads_, 1.0);
}

void
ChipSim::warmAllCaches(const std::vector<WarmSpec> &specs)
{
    // Gather each thread's resident lines (coldest/largest regions first,
    // hottest last — forEachResidentLine's order).
    struct WarmLine
    {
        Addr addr;
        bool isCode;
    };
    std::vector<std::vector<WarmLine>> lines(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TraceGenerator::forEachResidentLine(
            *specs[i].profile, specs[i].space, config_.llc.sizeBytes,
            [&](Addr addr, bool is_code) {
                lines[i].push_back({addr, is_code});
            });
    }

    // Interleaved installation, chunked to amortise the loop overhead.
    constexpr std::size_t kChunkLines = 128;
    bool more = true;
    for (std::size_t chunk = 0; more; ++chunk) {
        more = false;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const std::size_t begin = chunk * kChunkLines;
            if (begin >= lines[i].size())
                continue;
            const std::size_t end =
                std::min(begin + kChunkLines, lines[i].size());
            Core &target = *cores_.at(specs[i].core);
            for (std::size_t k = begin; k < end; ++k) {
                target.hierarchy().warmLine(lines[i][k].addr,
                                            lines[i][k].isCode, true);
                shared_.warmLine(lines[i][k].addr);
            }
            more = true;
        }
    }
}

void
ChipSim::warmThreadCaches(std::uint32_t core, const BenchmarkProfile &profile,
                          const AddressSpace &space)
{
    warmAllCaches({WarmSpec{&profile, space, core}});
}

void
ChipSim::validatePlacement(const Placement &placement,
                           std::size_t num_threads) const
{
    if (placement.entries.size() != num_threads)
        fatal("ChipSim: placement covers ", placement.entries.size(),
              " threads, workload has ", num_threads);
    for (const auto &entry : placement.entries) {
        if (entry.core >= cores_.size())
            fatal("ChipSim: placement names bad core ", entry.core);
        if (entry.slot >= cores_[entry.core]->numContexts())
            fatal("ChipSim: placement names bad slot ", entry.slot,
                  " on core ", entry.core);
    }
}

SimResult
ChipSim::runMultiProgram(const std::vector<ThreadSpec> &specs,
                         const Placement &placement, std::uint64_t seed,
                         const RunLimits &limits)
{
    if (specs.empty())
        fatal("ChipSim: empty workload");
    validatePlacement(placement, specs.size());

    // Materialise the threads.
    std::vector<std::unique_ptr<SimThread>> threads;
    threads.reserve(specs.size());
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        if (!specs[i].profile || specs[i].budget == 0)
            fatal("ChipSim: bad thread spec ", i);
        threads.push_back(std::make_unique<SimThread>(
            *specs[i].profile, seed, i, specs[i].budget,
            /*restart=*/true, specs[i].warmup));
    }

    // Group threads by context slot; oversubscribed slots time-share.
    struct SlotShare
    {
        std::uint32_t core, slot;
        std::vector<std::uint32_t> threads; // thread ids sharing this slot
        std::uint32_t resident = 0;         // index into threads
    };
    std::vector<SlotShare> shares;
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        const auto &entry = placement.entries[i];
        auto it = std::find_if(shares.begin(), shares.end(),
                               [&](const SlotShare &s) {
                                   return s.core == entry.core &&
                                          s.slot == entry.slot;
                               });
        if (it == shares.end()) {
            shares.push_back({entry.core, entry.slot, {i}, 0});
        } else {
            it->threads.push_back(i);
        }
    }

    bool time_sharing = false;
    for (auto &share : shares) {
        attach(share.core, share.slot, threads[share.threads[0]].get());
        time_sharing |= share.threads.size() > 1;
    }

    // Functional warmup: every thread's resident working set is installed
    // on its core and in the LLC before timing starts.
    std::vector<WarmSpec> warm;
    warm.reserve(specs.size());
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        warm.push_back({specs[i].profile, AddressSpace::forThread(i),
                        placement.entries[i].core});
    }
    warmAllCaches(warm);

    // Main loop: run until every thread finished its budget once.
    std::size_t finished = 0;
    std::vector<bool> seen_finished(threads.size(), false);
    while (finished < threads.size() && now_ < limits.maxCycles) {
        tick();

        if (time_sharing && now_ % limits.quantum == 0) {
            for (auto &share : shares) {
                if (share.threads.size() < 2)
                    continue;
                detach(share.core, share.slot);
                share.resident = (share.resident + 1) %
                    static_cast<std::uint32_t>(share.threads.size());
                attach(share.core, share.slot,
                       threads[share.threads[share.resident]].get());
            }
        }

        // Cheap periodic completion check.
        if (now_ % 256 == 0 || !time_sharing) {
            for (std::uint32_t i = 0; i < threads.size(); ++i) {
                if (!seen_finished[i] && threads[i]->finished()) {
                    seen_finished[i] = true;
                    ++finished;
                }
            }
        }
    }
    hitCycleLimit_ = now_ >= limits.maxCycles;
    if (hitCycleLimit_)
        warn("ChipSim ", config_.name, ": hit cycle limit at ", now_);

    SimResult result = collectResult();
    result.threads.clear();
    for (const auto &thread : threads) {
        ThreadResult tr;
        tr.benchmark = thread->benchmark();
        tr.budget = thread->budget();
        tr.finished = thread->finished();
        tr.startCycle = thread->startCycle();
        tr.finishCycle = thread->finishCycle();
        result.threads.push_back(std::move(tr));
    }
    return result;
}

SimResult
ChipSim::collectResult() const
{
    SimResult result;
    result.configName = config_.name;
    result.cycles = now_;
    result.chipFreqGHz = config_.chipFreqGHz;
    result.hitCycleLimit = hitCycleLimit_;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const Core &core = *cores_[i];
        CoreResult cr;
        cr.params = core.params();
        cr.stats = core.stats();
        cr.l1i = core.hierarchy().l1i().stats();
        cr.l1d = core.hierarchy().l1d().stats();
        cr.l2 = core.hierarchy().l2().stats();
        cr.poweredCycles = poweredCycles_[i];
        result.cores.push_back(std::move(cr));
    }
    result.llc = shared_.llc().stats();
    result.dram = shared_.dram().stats();
    result.xbar = shared_.crossbar().stats();
    result.activeThreadFractions.resize(activeHistogram_.numBuckets());
    for (std::size_t k = 0; k < activeHistogram_.numBuckets(); ++k)
        result.activeThreadFractions[k] = activeHistogram_.fraction(k);
    return result;
}

} // namespace smtflex
