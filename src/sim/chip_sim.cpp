#include "chip_sim.h"

#include <algorithm>
#include <bit>
#include <map>
#include <utility>

#include "common/env.h"
#include "common/log.h"

namespace smtflex {

double
SimResult::aggregateIpc() const
{
    double sum = 0.0;
    for (const auto &t : threads)
        sum += t.ipc();
    return sum;
}

ChipSim::ChipSim(const ChipConfig &config)
    : config_(config), shared_(config),
      activeHistogram_(config.totalContexts() + 8)
{
    config_.validate();
    cores_.reserve(config_.numCores());
    for (std::uint32_t i = 0; i < config_.numCores(); ++i) {
        cores_.push_back(makeCore(config_.cores[i], i,
                                  config_.contextsOf(i), &shared_,
                                  config_.chipFreqGHz));
    }
    poweredCycles_.assign(config_.numCores(), 0);
    wake_.assign(config_.numCores(), 0);
    sleepStart_.assign(config_.numCores(), 0);
    awakeMask_.assign((config_.numCores() + 63) / 64, 0);
    for (std::uint32_t i = 0; i < config_.numCores(); ++i)
        awakeMask_[i / 64] |= std::uint64_t{1} << (i % 64);
    fastForward_ = !envFlag("SMTFLEX_NO_FASTFWD", false);
    registerChipMetrics();
}

void
ChipSim::registerChipMetrics()
{
    // Everything the registry views lives in members assigned exactly once
    // above (cores_ holds stable unique_ptrs; poweredCycles_ never
    // reallocates), so the pointers stay valid for the chip's lifetime.
    registry_.info("chip.config", [this] { return config_.name; });
    registry_.counter("chip.cycles", &now_);
    registry_.gaugeReal("chip.freq_ghz",
                        [this] { return config_.chipFreqGHz; });
    registry_.gaugeBool("chip.hit_cycle_limit",
                        [this] { return hitCycleLimit_; });
    telemetry::attachHistogram(
        registry_, "chip.active_threads", activeHistogram_.numBuckets(),
        [this](std::size_t k) { return activeHistogram_.fraction(k); });
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::string prefix = "core." + std::to_string(i);
        cores_[i]->registerMetrics(registry_, prefix);
        registry_.counter(prefix + ".powered_cycles", &poweredCycles_[i]);
    }
    shared_.registerMetrics(registry_);
}

void
ChipSim::enableSampling(Cycle interval, std::size_t max_points)
{
    if (interval == 0)
        fatal("ChipSim: sampling interval must be > 0");
    samplingInterval_ = interval;
    nextSample_ = now_ + interval;
    lastSampleCycle_ = now_;
    std::uint64_t retired = 0;
    for (const auto &core : cores_)
        retired += core->stats().retired;
    lastSampleRetired_ = retired;
    ipcSeries_ = &registry_.series("chip.ipc", max_points);
    activeSeries_ = &registry_.series("chip.active_threads", max_points);
}

void
ChipSim::maybeSample()
{
    // Retired counts are strict even while cores sleep: retirement only
    // happens inside tick(), so a sleeping (provably inert) core's counter
    // is already exact — no wake needed to read it.
    std::uint64_t retired = 0;
    for (const auto &core : cores_)
        retired += core->stats().retired;
    const Cycle elapsed = now_ - lastSampleCycle_;
    const double ipc = elapsed
        ? static_cast<double>(retired - lastSampleRetired_) /
            static_cast<double>(elapsed)
        : 0.0;
    ipcSeries_->append(now_, ipc);
    activeSeries_->append(now_, static_cast<double>(attachedThreads_));
    lastSampleCycle_ = now_;
    lastSampleRetired_ = retired;
    nextSample_ = now_ + samplingInterval_;
}

void
ChipSim::attach(std::uint32_t core, std::uint32_t slot, ThreadSource *t)
{
    if (core < wake_.size())
        flushCore(core); // settle deferred sleep before mutating the core
    cores_.at(core)->attachThread(slot, t);
    ++attachedThreads_;
}

ThreadSource *
ChipSim::detach(std::uint32_t core, std::uint32_t slot)
{
    if (core < wake_.size())
        flushCore(core);
    ThreadSource *old = cores_.at(core)->detachThread(slot);
    if (old)
        --attachedThreads_;
    return old;
}

void
ChipSim::tick()
{
    ++now_;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        Core &core = *cores_[i];
        const bool powered = core.activeContexts() > 0;
        poweredCycles_[i] += powered;
        if (powered || !core.quiescent())
            core.tick(now_);
    }
    activeHistogram_.add(attachedThreads_, 1.0);
    if (samplingInterval_ != 0 && now_ >= nextSample_)
        maybeSample();
}

Cycle
ChipSim::nextEventCycle()
{
    Cycle event = kCycleNever;
    for (const auto &core : cores_) {
        // Mirror tick()'s ticking condition: unpowered quiescent cores do
        // not advance, so they contribute no events (attach only happens
        // at strictly simulated cycles).
        if (core->activeContexts() == 0 && core->quiescent())
            continue;
        event = std::min(event, core->nextEventCycle(now_));
        if (event <= now_ + 1)
            return now_ + 1; // some core may act next cycle: no skip
    }
    return event;
}

void
ChipSim::flushCore(std::uint32_t i)
{
    if (wake_[i] == 0)
        return;
    // Parked dormant cores would not have ticked in the strict loop
    // either: nothing to replay.
    if (wake_[i] != kCycleNever) {
        // The core slept through (sleepStart_, min(now_, wake_ - 1)];
        // those cycles are provably inert, so bulk-replay their
        // accounting exactly (cycle counts, rotors, stall counters,
        // powered cycles).
        const Cycle upto = std::min(now_, wake_[i] - 1);
        if (upto > sleepStart_[i]) {
            const Cycle count = upto - sleepStart_[i];
            Core &core = *cores_[i];
            if (core.activeContexts() > 0)
                poweredCycles_[i] += count;
            core.skipTicks(count);
            ffCycles_ += count;
            ++ffSpans_;
        }
    }
    wake_[i] = 0;
    awakeMask_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void
ChipSim::wakeAllCores()
{
    for (std::uint32_t i = 0; i < wake_.size(); ++i)
        flushCore(i);
}

void
ChipSim::stepCores()
{
    ++now_;
    // Wake the sleepers whose next strict tick arrived.
    while (!wakeHeap_.empty() && wakeHeap_.top().first <= now_) {
        const auto [w, i] = wakeHeap_.top();
        wakeHeap_.pop();
        if (wake_[i] == w)
            flushCore(i);
    }
    // Tick the awake cores, in index order (same-cycle memory accesses
    // must hit the shared system in the strict loop's order).
    for (std::size_t word = 0; word < awakeMask_.size(); ++word) {
        std::uint64_t bits = awakeMask_[word];
        while (bits != 0) {
            const std::uint32_t i = static_cast<std::uint32_t>(
                word * 64 + std::countr_zero(bits));
            bits &= bits - 1;
            Core &core = *cores_[i];
            const bool powered = core.activeContexts() > 0;
            poweredCycles_[i] += powered;
            if (!powered && core.quiescent()) {
                // Dormant: the strict loop skips it every cycle; park it
                // until an attach flushes it back awake.
                wake_[i] = kCycleNever;
                awakeMask_[word] &= ~(std::uint64_t{1} << (i % 64));
                continue;
            }
            core.tick(now_);
            const Cycle event = core.nextEventCycle(now_);
            if (event > now_ + 1) {
                wake_[i] = event;
                sleepStart_[i] = now_;
                wakeHeap_.push({event, i});
                awakeMask_[word] &= ~(std::uint64_t{1} << (i % 64));
            }
        }
    }
    activeHistogram_.add(attachedThreads_, 1.0);
    if (samplingInterval_ != 0 && now_ >= nextSample_)
        maybeSample();
}

void
ChipSim::jumpIdleSpan(Cycle bound)
{
    // A sample must be taken at exactly its boundary cycle, so a jump may
    // not pass one. (Landing on the boundary is fine: no core was awake,
    // so the sampled counters cannot differ from the strict loop's.)
    if (samplingInterval_ != 0)
        bound = std::min(bound, nextSample_);
    // Jump only when every core is asleep or parked — checked against
    // the *current* state, after any rotation/attach woke cores.
    for (const std::uint64_t word : awakeMask_)
        if (word != 0)
            return; // some core is awake: it could act next cycle
    Cycle min_wake = kCycleNever;
    while (!wakeHeap_.empty()) {
        const auto [w, i] = wakeHeap_.top();
        if (wake_[i] != w) {
            wakeHeap_.pop(); // stale: the core was flushed externally
            continue;
        }
        min_wake = w;
        break;
    }
    const Cycle target = min_wake == kCycleNever
        ? bound
        : std::min(bound, min_wake - 1);
    if (target > now_) {
        // Nothing can happen until the earliest wake (sleeping cores'
        // accounting is deferred, parked cores would not have ticked
        // anyway). Integral double sums are exact, so the bulk histogram
        // add is bit-identical to per-cycle unit adds.
        activeHistogram_.add(attachedThreads_,
                             static_cast<double>(target - now_));
        now_ = target;
        if (samplingInterval_ != 0 && now_ >= nextSample_)
            maybeSample();
    }
}

void
ChipSim::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!fastForward_) {
        while (now_ < end)
            tick();
        return;
    }
    while (now_ < end) {
        stepCores();
        if (now_ < end)
            jumpIdleSpan(end);
    }
    wakeAllCores();
}

void
ChipSim::warmAllCaches(const std::vector<WarmSpec> &specs)
{
    // Gather each thread's resident lines (coldest/largest regions first,
    // hottest last — forEachResidentLine's order).
    struct WarmLine
    {
        Addr addr;
        bool isCode;
    };
    std::vector<std::vector<WarmLine>> lines(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TraceGenerator::forEachResidentLine(
            *specs[i].profile, specs[i].space, config_.llc.sizeBytes,
            [&](Addr addr, bool is_code) {
                lines[i].push_back({addr, is_code});
            });
    }

    // Interleaved installation, chunked to amortise the loop overhead.
    constexpr std::size_t kChunkLines = 128;
    bool more = true;
    for (std::size_t chunk = 0; more; ++chunk) {
        more = false;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const std::size_t begin = chunk * kChunkLines;
            if (begin >= lines[i].size())
                continue;
            const std::size_t end =
                std::min(begin + kChunkLines, lines[i].size());
            Core &target = *cores_.at(specs[i].core);
            for (std::size_t k = begin; k < end; ++k) {
                target.hierarchy().warmLine(lines[i][k].addr,
                                            lines[i][k].isCode, true);
                shared_.warmLine(lines[i][k].addr);
            }
            more = true;
        }
    }
}

void
ChipSim::warmThreadCaches(std::uint32_t core, const BenchmarkProfile &profile,
                          const AddressSpace &space)
{
    warmAllCaches({WarmSpec{&profile, space, core}});
}

void
ChipSim::validatePlacement(const Placement &placement,
                           std::size_t num_threads) const
{
    if (placement.entries.size() != num_threads)
        fatal("ChipSim: placement covers ", placement.entries.size(),
              " threads, workload has ", num_threads);
    for (const auto &entry : placement.entries) {
        if (entry.core >= cores_.size())
            fatal("ChipSim: placement names bad core ", entry.core);
        if (entry.slot >= cores_[entry.core]->numContexts())
            fatal("ChipSim: placement names bad slot ", entry.slot,
                  " on core ", entry.core);
    }
}

SimResult
ChipSim::runMultiProgram(const std::vector<ThreadSpec> &specs,
                         const Placement &placement, std::uint64_t seed,
                         const RunLimits &limits)
{
    if (specs.empty())
        fatal("ChipSim: empty workload");
    if (limits.maxCycles == 0)
        fatal("ChipSim: RunLimits.maxCycles must be > 0");
    if (limits.quantum == 0)
        fatal("ChipSim: RunLimits.quantum must be > 0");
    validatePlacement(placement, specs.size());

    // Materialise the threads.
    std::vector<std::unique_ptr<SimThread>> threads;
    threads.reserve(specs.size());
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        if (!specs[i].profile || specs[i].budget == 0)
            fatal("ChipSim: bad thread spec ", i);
        threads.push_back(std::make_unique<SimThread>(
            *specs[i].profile, seed, i, specs[i].budget,
            /*restart=*/true, specs[i].warmup));
    }

    // Group threads by context slot; oversubscribed slots time-share.
    // Shares keep first-appearance order (it fixes the attach order); the
    // map only replaces the former linear rescan per thread.
    struct SlotShare
    {
        std::uint32_t core, slot;
        std::vector<std::uint32_t> threads; // thread ids sharing this slot
        std::uint32_t resident = 0;         // index into threads
    };
    std::vector<SlotShare> shares;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> slot_index;
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        const auto &entry = placement.entries[i];
        const auto [it, inserted] = slot_index.try_emplace(
            {entry.core, entry.slot}, shares.size());
        if (inserted) {
            shares.push_back({entry.core, entry.slot, {i}, 0});
        } else {
            shares[it->second].threads.push_back(i);
        }
    }

    bool time_sharing = false;
    for (auto &share : shares) {
        attach(share.core, share.slot, threads[share.threads[0]].get());
        time_sharing |= share.threads.size() > 1;
    }

    // Functional warmup: every thread's resident working set is installed
    // on its core and in the LLC before timing starts.
    std::vector<WarmSpec> warm;
    warm.reserve(specs.size());
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
        warm.push_back({specs[i].profile, AddressSpace::forThread(i),
                        placement.entries[i].core});
    }
    warmAllCaches(warm);

    // Main loop: run until every thread finished its budget once.
    //
    // Completion detection is O(1): every thread bumps `finished_eager`
    // at the exact retire that completes its budget, and the loop samples
    // that counter at the cadence the former per-cycle thread scan used
    // (every cycle without time sharing, every 256 cycles with), so exit
    // cycles — and with them all results — are unchanged.
    std::uint32_t finished_eager = 0;
    for (auto &thread : threads)
        thread->notifyFinishTo(&finished_eager);
    std::uint32_t finished = 0;
    const auto sync_finished = [&] {
        if (now_ % 256 == 0 || !time_sharing)
            finished = finished_eager;
    };
    // The fast-forward path checks for rotation both after the step and
    // after the jump (either can land on a quantum boundary), so the
    // rotation itself must be idempotent per cycle.
    Cycle last_rotation = 0;
    const auto rotate_shares = [&] {
        if (!time_sharing || now_ % limits.quantum != 0 ||
            now_ == last_rotation)
            return;
        last_rotation = now_;
        for (auto &share : shares) {
            if (share.threads.size() < 2)
                continue;
            detach(share.core, share.slot);
            share.resident = (share.resident + 1) %
                static_cast<std::uint32_t>(share.threads.size());
            attach(share.core, share.slot,
                   threads[share.threads[share.resident]].get());
        }
    };
    while (finished < threads.size() && now_ < limits.maxCycles) {
        if (fastForward_)
            stepCores(); // idle cores sleep instead of ticking
        else
            tick();
        rotate_shares();
        sync_finished();

        // When every core sleeps, jump straight to the earliest wake.
        // The jump happens only after this cycle's rotation and
        // completion sampling, and clamps to time-sharing quantum
        // boundaries (thread rotation must run at exactly the strict
        // cycles) and — while a finish has happened but has not been
        // observed yet — to the 256-cycle completion-sampling
        // boundaries, so the loop exits at exactly the strict run's
        // cycle. No retire can happen inside a sleep span, so the
        // completion counter cannot advance across a jump.
        if (fastForward_ && finished < threads.size() &&
            now_ < limits.maxCycles) {
            Cycle bound = limits.maxCycles;
            if (time_sharing) {
                bound = std::min(
                    bound, (now_ / limits.quantum + 1) * limits.quantum);
                if (finished_eager != finished)
                    bound = std::min(bound, (now_ / 256 + 1) * 256);
            }
            jumpIdleSpan(bound);
            rotate_shares();
            sync_finished();
        }
    }
    wakeAllCores();
    hitCycleLimit_ = now_ >= limits.maxCycles;
    if (hitCycleLimit_)
        warn("ChipSim ", config_.name, ": hit cycle limit at ", now_);

    SimResult result = collectResult();
    result.threads.clear();
    for (const auto &thread : threads) {
        ThreadResult tr;
        tr.benchmark = thread->benchmark();
        tr.budget = thread->budget();
        tr.finished = thread->finished();
        tr.startCycle = thread->startCycle();
        tr.finishCycle = thread->finishCycle();
        result.threads.push_back(std::move(tr));
    }
    return result;
}

SimResult
ChipSim::collectResult() const
{
    SimResult result;
    result.configName = config_.name;
    result.cycles = now_;
    result.chipFreqGHz = config_.chipFreqGHz;
    result.hitCycleLimit = hitCycleLimit_;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const Core &core = *cores_[i];
        CoreResult cr;
        cr.params = core.params();
        cr.stats = core.stats();
        cr.l1i = core.hierarchy().l1i().stats();
        cr.l1d = core.hierarchy().l1d().stats();
        cr.l2 = core.hierarchy().l2().stats();
        cr.poweredCycles = poweredCycles_[i];
        result.cores.push_back(std::move(cr));
    }
    result.llc = shared_.llc().stats();
    result.dram = shared_.dram().stats();
    result.xbar = shared_.crossbar().stats();
    result.activeThreadFractions.resize(activeHistogram_.numBuckets());
    for (std::size_t k = 0; k < activeHistogram_.numBuckets(); ++k)
        result.activeThreadFractions[k] = activeHistogram_.fraction(k);
    result.metrics = registry_.snapshot();
    return result;
}

telemetry::Snapshot
rebuildResultMetrics(const SimResult &result)
{
    telemetry::MetricRegistry reg;
    reg.info("chip.config", [&result] { return result.configName; });
    reg.counter("chip.cycles", &result.cycles);
    reg.gaugeReal("chip.freq_ghz", [&result] { return result.chipFreqGHz; });
    reg.gaugeBool("chip.hit_cycle_limit",
                  [&result] { return result.hitCycleLimit; });
    telemetry::attachHistogram(
        reg, "chip.active_threads", result.activeThreadFractions.size(),
        [&result](std::size_t k) { return result.activeThreadFractions[k]; });
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const std::string prefix = "core." + std::to_string(i);
        const CoreResult &cr = result.cores[i];
        telemetry::attachCounters(reg, prefix, cr.stats);
        for (int c = 0; c < kNumOpClasses; ++c) {
            reg.counter(prefix + ".dispatch." +
                            opClassMetricName(static_cast<OpClass>(c)),
                        &cr.stats.dispatched[c]);
        }
        telemetry::attachCounters(reg, prefix + ".l1i", cr.l1i);
        telemetry::attachCounters(reg, prefix + ".l1d", cr.l1d);
        telemetry::attachCounters(reg, prefix + ".l2", cr.l2);
        reg.counter(prefix + ".powered_cycles", &cr.poweredCycles);
    }
    telemetry::attachCounters(reg, "llc", result.llc);
    telemetry::attachCounters(reg, "dram", result.dram);
    telemetry::attachCounters(reg, "xbar", result.xbar);
    return reg.snapshot();
}

} // namespace smtflex
