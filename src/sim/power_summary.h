/**
 * @file
 * Post-processing of a SimResult into power/energy numbers using the
 * PowerModel (Section 7 of the paper).
 */

#ifndef SMTFLEX_SIM_POWER_SUMMARY_H
#define SMTFLEX_SIM_POWER_SUMMARY_H

#include "power/power_model.h"
#include "sim/chip_sim.h"

namespace smtflex {

/** Chip-level power/energy summary of one run. */
struct PowerSummary
{
    double avgPowerW = 0.0;    ///< average total chip power
    double coreStaticW = 0.0;  ///< time-averaged core static power
    double coreDynamicW = 0.0; ///< average core dynamic power
    double uncoreW = 0.0;      ///< uncore static + dynamic
    double energyJ = 0.0;      ///< total energy over the run
};

/**
 * Compute the chip's power summary for @p result.
 *
 * @param gate_idle_cores when true, a core consumes no static power during
 *        cycles in which it has no attached thread (power gating of idle
 *        cores); when false every core burns static power for the whole
 *        run (the equal-power-envelope comparisons of Sections 4-6).
 */
PowerSummary summarisePower(const SimResult &result, const PowerModel &model,
                            bool gate_idle_cores);

} // namespace smtflex

#endif // SMTFLEX_SIM_POWER_SUMMARY_H
