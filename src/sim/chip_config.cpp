#include "chip_config.h"

#include "common/log.h"

namespace smtflex {

std::uint32_t
ChipConfig::totalContexts() const
{
    std::uint32_t total = 0;
    for (std::uint32_t i = 0; i < numCores(); ++i)
        total += contextsOf(i);
    return total;
}

std::uint32_t
ChipConfig::contextsOf(std::uint32_t core) const
{
    if (core >= numCores())
        fatal("ChipConfig ", name, ": bad core index ", core);
    return smtEnabled ? cores[core].maxSmtContexts : 1;
}

ChipConfig
ChipConfig::homogeneous(const std::string &name, const CoreParams &core,
                        std::uint32_t count)
{
    ChipConfig cfg;
    cfg.name = name;
    cfg.cores.assign(count, core);
    cfg.validate();
    return cfg;
}

ChipConfig
ChipConfig::heterogeneous(const std::string &name, std::uint32_t big_count,
                          const CoreParams &small_type,
                          std::uint32_t small_count)
{
    ChipConfig cfg;
    cfg.name = name;
    for (std::uint32_t i = 0; i < big_count; ++i)
        cfg.cores.push_back(CoreParams::big());
    for (std::uint32_t i = 0; i < small_count; ++i)
        cfg.cores.push_back(small_type);
    cfg.validate();
    return cfg;
}

ChipConfig
ChipConfig::withSmt(bool enabled) const
{
    ChipConfig cfg = *this;
    cfg.smtEnabled = enabled;
    return cfg;
}

ChipConfig
ChipConfig::withBandwidth(double gbps) const
{
    ChipConfig cfg = *this;
    cfg.dram.busBandwidthGBps = gbps;
    return cfg;
}

void
ChipConfig::validate() const
{
    if (name.empty())
        fatal("ChipConfig: empty name");
    if (cores.empty())
        fatal("ChipConfig ", name, ": cores must not be empty");
    for (const auto &core : cores)
        core.validate();
    if (llc.sizeBytes == 0)
        fatal("ChipConfig ", name, ": llc.sizeBytes must be > 0");
    if (llc.assoc == 0)
        fatal("ChipConfig ", name, ": llc.assoc must be > 0");
    if (llc.numLines() % llc.assoc != 0)
        fatal("ChipConfig ", name, ": bad LLC geometry (", llc.sizeBytes,
              " bytes not divisible into ", llc.assoc, "-way sets)");
    if (llcLatency == 0)
        fatal("ChipConfig ", name, ": llcLatency must be > 0");
    if (dram.busBandwidthGBps <= 0.0)
        fatal("ChipConfig ", name, ": dram.busBandwidthGBps must be > 0");
    if (chipFreqGHz <= 0.0)
        fatal("ChipConfig ", name, ": bad chip frequency");
}

} // namespace smtflex
