#include "sim_thread.h"

namespace smtflex {

SimThread::SimThread(const BenchmarkProfile &profile, std::uint64_t seed,
                     std::uint32_t global_id, InstrCount budget, bool restart,
                     InstrCount warmup)
    : gen_(profile, seed, global_id, AddressSpace::forThread(global_id)),
      budget_(budget), warmup_(warmup), restart_(restart)
{
}

void
SimThread::onRetire(Cycle now)
{
    ++totalRetired_;
    if (totalRetired_ == warmup_) {
        startCycle_ = now;
        return;
    }
    if (totalRetired_ == warmup_ + budget_) {
        finishCycle_ = now;
        if (finishCounter_)
            ++*finishCounter_;
        // Paper methodology: finished programs restart and keep contending
        // (the statistical stream simply continues; caches stay warm, as
        // they would for a real re-execution). Without restart the thread
        // stops fetching here.
        if (!restart_)
            doneForever_ = true;
    }
}

} // namespace smtflex
