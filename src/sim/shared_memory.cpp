#include "shared_memory.h"

namespace smtflex {

SharedMemory::SharedMemory(const ChipConfig &config)
    : llcLatency_(config.llcLatency), xbar_(config.xbar),
      llc_("llc", config.llc), dram_(config.dram)
{
    if (config.useMesh)
        mesh_.emplace(config.mesh, config.numCores());
}

Cycle
SharedMemory::traverse(Cycle now, Addr addr, std::uint32_t core_id,
                       std::uint32_t *response_latency)
{
    if (mesh_) {
        *response_latency = mesh_->responseLatency(addr, core_id);
        return mesh_->request(now, addr, core_id);
    }
    *response_latency = xbar_.responseLatency();
    return xbar_.request(now, addr);
}

Cycle
SharedMemory::fetchLine(Cycle now, Addr addr, std::uint32_t core_id)
{
    std::uint32_t response = 0;
    const Cycle bank_start = traverse(now, addr, core_id, &response);
    const Cycle lookup_done = bank_start + llcLatency_;

    const auto result = llc_.access(addr, false);
    if (result.writeback)
        dram_.write(lookup_done, result.victimAddr);

    if (result.hit)
        return lookup_done + response;

    const Cycle fill = dram_.read(lookup_done, addr);
    return fill + response;
}

void
SharedMemory::writebackLine(Cycle now, Addr addr, std::uint32_t core_id)
{
    std::uint32_t response = 0;
    const Cycle bank_start = traverse(now, addr, core_id, &response);
    const auto result = llc_.access(addr, true);
    if (result.writeback)
        dram_.write(bank_start + llcLatency_, result.victimAddr);
}

} // namespace smtflex
