/**
 * @file
 * The multi-program thread: one single-threaded program of a multi-program
 * workload, following the paper's methodology — run a fixed instruction
 * budget (the SimPoint substitute), record the finish time, then restart and
 * keep generating contention until every co-runner has finished.
 *
 * An optional warmup prefix excludes the cold-start transient (empty caches)
 * from the measured window; the paper's 750M-instruction simulation points
 * amortise cold start naturally, our much shorter budgets do not.
 */

#ifndef SMTFLEX_SIM_SIM_THREAD_H
#define SMTFLEX_SIM_SIM_THREAD_H

#include <cstdint>
#include <string>

#include "ckpt/serial.h"
#include "common/types.h"
#include "trace/tracegen.h"
#include "uarch/thread_source.h"

namespace smtflex {

/**
 * A single-threaded program executing a synthetic trace.
 */
class SimThread : public ThreadSource
{
  public:
    /**
     * @param profile benchmark behaviour.
     * @param seed simulation seed.
     * @param global_id unique id (selects the private address space and the
     *        trace substream).
     * @param budget measured instructions (from warmup end to finish).
     * @param restart keep running (and contending) after the budget.
     * @param warmup unmeasured instructions before the measured window.
     */
    SimThread(const BenchmarkProfile &profile, std::uint64_t seed,
              std::uint32_t global_id, InstrCount budget, bool restart,
              InstrCount warmup = 0);

    MicroOp nextOp() override { return gen_.next(); }
    bool hasWork() override { return !doneForever_; }
    void onRetire(Cycle now) override;

    /**
     * Have this thread bump @p counter (once) at the exact retire that
     * completes its measured budget. Lets the simulation loop detect
     * completion in O(1) instead of scanning every thread each cycle, at
     * the same cycle granularity as the scan it replaces.
     */
    void notifyFinishTo(std::uint32_t *counter) { finishCounter_ = counter; }

    /** True once the measured budget has been retired. */
    bool finished() const { return finishCycle_ != kCycleNever; }
    /** Global cycle at which the measured window started (warmup done). */
    Cycle startCycle() const { return startCycle_; }
    /** Global cycle at which the measured budget completed. */
    Cycle finishCycle() const { return finishCycle_; }
    /** Total ops retired (including warmup and restarts). */
    InstrCount retired() const { return totalRetired_; }
    InstrCount budget() const { return budget_; }
    InstrCount warmup() const { return warmup_; }
    const std::string &benchmark() const { return gen_.profile().name; }

    /**
     * Serialize/restore the dynamic state (trace generator, retire
     * progress, window timestamps). budget/warmup/restart and the
     * finish-counter wiring belong to the *resuming* run and are not
     * serialized — that is what lets a snapshot taken before any thread
     * finished resume under a different budget (warm-start).
     */
    void saveState(ckpt::Writer &w) const
    {
        gen_.saveState(w);
        w.u64(totalRetired_);
        w.u64(startCycle_);
        w.u64(finishCycle_);
        w.boolean(doneForever_);
    }
    void loadState(ckpt::Reader &r)
    {
        gen_.loadState(r);
        totalRetired_ = r.u64();
        startCycle_ = r.u64();
        finishCycle_ = r.u64();
        doneForever_ = r.boolean();
    }

  private:
    TraceGenerator gen_;
    InstrCount budget_;
    InstrCount warmup_;
    bool restart_;
    InstrCount totalRetired_ = 0;
    Cycle startCycle_ = 0;
    Cycle finishCycle_ = kCycleNever;
    bool doneForever_ = false;
    std::uint32_t *finishCounter_ = nullptr;
};

} // namespace smtflex

#endif // SMTFLEX_SIM_SIM_THREAD_H
