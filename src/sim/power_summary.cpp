#include "power_summary.h"

namespace smtflex {

PowerSummary
summarisePower(const SimResult &result, const PowerModel &model,
               bool gate_idle_cores)
{
    PowerSummary summary;
    if (result.cycles == 0)
        return summary;

    const double seconds = result.seconds();
    const double total_cycles = static_cast<double>(result.cycles);

    double static_j = 0.0;
    double dynamic_j = 0.0;
    for (const auto &core : result.cores) {
        const double powered_frac = gate_idle_cores
            ? static_cast<double>(core.poweredCycles) / total_cycles
            : 1.0;
        static_j += model.coreStaticW(core.params) * powered_frac * seconds;
        dynamic_j += model.coreDynamicJ(core.params, core.stats);
    }

    const std::uint64_t dram_transfers =
        result.dram.reads + result.dram.writes;
    const double uncore_j = model.uncoreStaticW() * seconds +
        model.uncoreDynamicJ(result.llc.accesses, dram_transfers);

    summary.coreStaticW = static_j / seconds;
    summary.coreDynamicW = dynamic_j / seconds;
    summary.uncoreW = uncore_j / seconds;
    summary.energyJ = static_j + dynamic_j + uncore_j;
    summary.avgPowerW = summary.energyJ / seconds;
    return summary;
}

} // namespace smtflex
