/**
 * @file
 * The shared side of the memory hierarchy: crossbar -> shared LLC -> DRAM.
 * Implements the MemorySystem interface the cores' private hierarchies use.
 */

#ifndef SMTFLEX_SIM_SHARED_MEMORY_H
#define SMTFLEX_SIM_SHARED_MEMORY_H

#include <cstdint>

#include "cache/cache.h"
#include "dram/dram.h"
#include "sim/chip_config.h"
#include "uarch/memory_system.h"
#include "xbar/crossbar.h"
#include "xbar/mesh.h"

#include <optional>

namespace smtflex {

/**
 * Crossbar + shared LLC + DRAM. All cores contend here: for LLC capacity,
 * LLC banks and, crucially, off-chip bandwidth.
 */
class SharedMemory : public MemorySystem
{
  public:
    explicit SharedMemory(const ChipConfig &config);

    Cycle fetchLine(Cycle now, Addr addr, std::uint32_t core_id) override;
    void writebackLine(Cycle now, Addr addr, std::uint32_t core_id) override;

    /** Functional warmup: install @p addr into the LLC (no stats). */
    void warmLine(Addr addr) { llc_.install(addr); }

    const SetAssocCache &llc() const { return llc_; }
    const DramModel &dram() const { return dram_; }
    const Crossbar &crossbar() const { return xbar_; }

    /** Register the shared-side counters (llc.*, dram.*, xbar.*). */
    void registerMetrics(telemetry::MetricRegistry &registry) const
    {
        llc_.registerMetrics(registry, "llc");
        dram_.registerMetrics(registry, "dram");
        xbar_.registerMetrics(registry, "xbar");
    }

    /** Serialize/restore the whole shared side (interconnect, LLC,
     * DRAM) for checkpoint/restore. */
    void saveState(ckpt::Writer &w) const
    {
        xbar_.saveState(w);
        w.boolean(mesh_.has_value());
        if (mesh_)
            mesh_->saveState(w);
        llc_.saveState(w);
        dram_.saveState(w);
    }
    void loadState(ckpt::Reader &r)
    {
        xbar_.loadState(r);
        if (r.boolean() != mesh_.has_value())
            throw ckpt::CorruptSnapshot("ckpt: mesh presence mismatch");
        if (mesh_)
            mesh_->loadState(r);
        llc_.loadState(r);
        dram_.loadState(r);
    }

  private:
    /** Interconnect traversal: returns bank-lookup start cycle and the
     * response-hop latency for this request. */
    Cycle traverse(Cycle now, Addr addr, std::uint32_t core_id,
                   std::uint32_t *response_latency);

    std::uint32_t llcLatency_;
    Crossbar xbar_;
    std::optional<MeshNoc> mesh_;
    SetAssocCache llc_;
    DramModel dram_;
};

} // namespace smtflex

#endif // SMTFLEX_SIM_SHARED_MEMORY_H
