/**
 * @file
 * Configuration of one simulated multi-core chip: the core mix, SMT setting,
 * shared LLC, crossbar and DRAM parameters.
 */

#ifndef SMTFLEX_SIM_CHIP_CONFIG_H
#define SMTFLEX_SIM_CHIP_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "dram/dram.h"
#include "uarch/core_params.h"
#include "xbar/crossbar.h"
#include "xbar/mesh.h"

namespace smtflex {

/** A complete chip description. */
struct ChipConfig
{
    /** Display name, e.g. "4B", "3B2m", "20s". */
    std::string name;
    /** Per-core parameters, big cores first by convention. */
    std::vector<CoreParams> cores;
    /** SMT on: each core exposes its full context count; off: one context
     * per core (extra threads time-share). */
    bool smtEnabled = true;

    /** Shared last-level cache (same for all designs: 8 MB, 16-way). */
    CacheGeometry llc{8 * 1024 * 1024, 16};
    /** LLC lookup latency (after interconnect traversal), global cycles. */
    std::uint32_t llcLatency = 20;
    CrossbarConfig xbar;
    /** Use a 2D mesh instead of the paper's full crossbar (ablation). */
    bool useMesh = false;
    MeshConfig mesh;
    DramConfig dram;
    /** Chip (uncore) clock in GHz. */
    double chipFreqGHz = 2.66;

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores.size());
    }

    /** Hardware thread contexts exposed under the SMT setting. */
    std::uint32_t totalContexts() const;

    /** Contexts exposed by core @p i under the SMT setting. */
    std::uint32_t contextsOf(std::uint32_t core) const;

    /** Convenience: @p count copies of @p core named @p name. */
    static ChipConfig homogeneous(const std::string &name,
                                  const CoreParams &core,
                                  std::uint32_t count);

    /** Convenience: @p big_count big cores plus @p small_count of
     * @p small_type cores. */
    static ChipConfig heterogeneous(const std::string &name,
                                    std::uint32_t big_count,
                                    const CoreParams &small_type,
                                    std::uint32_t small_count);

    /** Same chip with SMT switched on/off. */
    ChipConfig withSmt(bool enabled) const;
    /** Same chip with a different memory bandwidth (Section 8.2). */
    ChipConfig withBandwidth(double gbps) const;

    void validate() const;
};

} // namespace smtflex

#endif // SMTFLEX_SIM_CHIP_CONFIG_H
