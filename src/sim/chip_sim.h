/**
 * @file
 * The multi-core chip simulator: couples the cores to the shared memory
 * system, advances global time, manages thread placement (including
 * time-sharing when threads outnumber hardware contexts), and collects
 * results.
 */

#ifndef SMTFLEX_SIM_CHIP_SIM_H
#define SMTFLEX_SIM_CHIP_SIM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/chip_config.h"
#include "sim/shared_memory.h"
#include "sim/sim_thread.h"
#include "uarch/core.h"

namespace smtflex {

/** One program of a multi-program workload. */
struct ThreadSpec
{
    const BenchmarkProfile *profile = nullptr;
    InstrCount budget = 0;
    /** Unmeasured cold-start instructions before the measured window. */
    InstrCount warmup = 0;
};

/** Thread -> (core, SMT context slot) mapping. Multiple threads may map to
 * the same slot; they then time-share it with round-robin quanta. */
struct Placement
{
    struct Entry
    {
        std::uint32_t core = 0;
        std::uint32_t slot = 0;
    };
    std::vector<Entry> entries; ///< indexed by thread id
};

/** Per-thread outcome of a run. */
struct ThreadResult
{
    std::string benchmark;
    InstrCount budget = 0;
    Cycle startCycle = 0; ///< measured window start (warmup retired)
    Cycle finishCycle = kCycleNever;
    bool finished = false;

    /** Instructions per global cycle over the measured window. */
    double ipc() const
    {
        return finished ? static_cast<double>(budget) /
                static_cast<double>(finishCycle - startCycle)
                        : 0.0;
    }
};

/** Per-core outcome of a run. */
struct CoreResult
{
    CoreParams params;
    CoreStats stats;
    CacheStats l1i, l1d, l2;
    /** Global cycles during which at least one thread was attached. */
    Cycle poweredCycles = 0;
};

/** Complete outcome of a run. */
struct SimResult
{
    std::string configName;
    Cycle cycles = 0;            ///< run length in global cycles
    double chipFreqGHz = 2.66;
    bool hitCycleLimit = false;
    std::vector<ThreadResult> threads;
    std::vector<CoreResult> cores;
    CacheStats llc;
    DramStats dram;
    CrossbarStats xbar;
    /** Fraction of time with k attached threads, k = 0..totalContexts. */
    std::vector<double> activeThreadFractions;

    /** Seconds of simulated wall-clock time. */
    double seconds() const
    {
        return static_cast<double>(cycles) / (chipFreqGHz * 1e9);
    }

    /** Sum of per-thread IPCs (throughput in instructions/cycle). */
    double aggregateIpc() const;
};

/** Safety limits of a run. */
struct RunLimits
{
    Cycle maxCycles = 400'000'000;
    /** Time-sharing quantum for oversubscribed context slots. */
    Cycle quantum = 5'000;
};

/**
 * The chip: cores + shared memory + global clock.
 *
 * High-level use: runMultiProgram() for the paper's multi-program
 * methodology. Low-level use (multi-threaded workloads with
 * synchronisation): construct, attach ThreadSources, and tick() under an
 * external controller (see workload/parsec).
 */
class ChipSim
{
  public:
    explicit ChipSim(const ChipConfig &config);

    const ChipConfig &config() const { return config_; }
    Cycle now() const { return now_; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    Core &core(std::uint32_t i) { return *cores_.at(i); }
    const Core &core(std::uint32_t i) const { return *cores_.at(i); }
    SharedMemory &sharedMemory() { return shared_; }

    /** Attach/detach with central active-thread bookkeeping. */
    void attach(std::uint32_t core, std::uint32_t slot, ThreadSource *t);
    ThreadSource *detach(std::uint32_t core, std::uint32_t slot);

    /** Number of threads currently attached chip-wide. */
    std::uint32_t attachedThreads() const { return attachedThreads_; }

    /** Advance one global cycle (ticks every non-quiescent core and
     * accumulates power/active-thread accounting). */
    void tick();

    /** One thread's working set to warm (see warmAllCaches). */
    struct WarmSpec
    {
        const BenchmarkProfile *profile = nullptr;
        AddressSpace space;
        std::uint32_t core = 0;
    };

    /**
     * Functional cache warmup (sampled-simulation style): install every
     * thread's cache-resident working set into its core's private
     * hierarchy and the shared LLC, in zero simulated time. Installation
     * is interleaved across threads in chunks so that shared-cache (LLC)
     * capacity pressure evicts every thread's coldest lines evenly rather
     * than wiping out whichever thread was installed first. Streaming and
     * larger-than-LLC regions are skipped — missing is their steady state.
     */
    void warmAllCaches(const std::vector<WarmSpec> &specs);

    /** Convenience wrapper for a single thread. */
    void warmThreadCaches(std::uint32_t core, const BenchmarkProfile &profile,
                          const AddressSpace &space);

    /**
     * Run a multi-program workload to completion: every thread executes its
     * budget at least once (finished threads restart and keep contending).
     */
    SimResult runMultiProgram(const std::vector<ThreadSpec> &threads,
                              const Placement &placement,
                              std::uint64_t seed,
                              const RunLimits &limits = RunLimits{});

    /** Snapshot results of a low-level (externally driven) run. */
    SimResult collectResult() const;

  private:
    void validatePlacement(const Placement &placement,
                           std::size_t num_threads) const;

    ChipConfig config_;
    SharedMemory shared_;
    std::vector<std::unique_ptr<Core>> cores_;
    Cycle now_ = 0;
    std::uint32_t attachedThreads_ = 0;
    /** Powered (>= 1 attached thread) cycle counters per core. */
    std::vector<Cycle> poweredCycles_;
    /** Time-weighted histogram of attached thread counts. */
    Histogram activeHistogram_;
    bool hitCycleLimit_ = false;
};

} // namespace smtflex

#endif // SMTFLEX_SIM_CHIP_SIM_H
