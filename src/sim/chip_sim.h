/**
 * @file
 * The multi-core chip simulator: couples the cores to the shared memory
 * system, advances global time, manages thread placement (including
 * time-sharing when threads outnumber hardware contexts), and collects
 * results.
 */

#ifndef SMTFLEX_SIM_CHIP_SIM_H
#define SMTFLEX_SIM_CHIP_SIM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serial.h"
#include "common/stats.h"
#include "sim/chip_config.h"
#include "telemetry/registry.h"
#include "sim/shared_memory.h"
#include "sim/sim_thread.h"
#include "uarch/core.h"

namespace smtflex {

/** One program of a multi-program workload. */
struct ThreadSpec
{
    const BenchmarkProfile *profile = nullptr;
    InstrCount budget = 0;
    /** Unmeasured cold-start instructions before the measured window. */
    InstrCount warmup = 0;
};

/** Thread -> (core, SMT context slot) mapping. Multiple threads may map to
 * the same slot; they then time-share it with round-robin quanta. */
struct Placement
{
    struct Entry
    {
        std::uint32_t core = 0;
        std::uint32_t slot = 0;
    };
    std::vector<Entry> entries; ///< indexed by thread id
};

/** Per-thread outcome of a run. */
struct ThreadResult
{
    std::string benchmark;
    InstrCount budget = 0;
    Cycle startCycle = 0; ///< measured window start (warmup retired)
    Cycle finishCycle = kCycleNever;
    bool finished = false;

    /** Instructions per global cycle over the measured window. */
    double ipc() const
    {
        return finished ? static_cast<double>(budget) /
                static_cast<double>(finishCycle - startCycle)
                        : 0.0;
    }
};

/** Per-core outcome of a run. */
struct CoreResult
{
    CoreParams params;
    CoreStats stats;
    CacheStats l1i, l1d, l2;
    /** Global cycles during which at least one thread was attached. */
    Cycle poweredCycles = 0;
};

/** Complete outcome of a run. */
struct SimResult
{
    std::string configName;
    Cycle cycles = 0;            ///< run length in global cycles
    double chipFreqGHz = 2.66;
    bool hitCycleLimit = false;
    std::vector<ThreadResult> threads;
    std::vector<CoreResult> cores;
    CacheStats llc;
    DramStats dram;
    CrossbarStats xbar;
    /** Fraction of time with k attached threads, k = 0..totalContexts. */
    std::vector<double> activeThreadFractions;

    /**
     * The run's readings by metric path (the chip registry's snapshot).
     * Reports render from this; for hand-built results it may be empty —
     * rebuildResultMetrics() reconstructs the identical snapshot from the
     * structs above.
     */
    telemetry::Snapshot metrics;

    /** Seconds of simulated wall-clock time. */
    double seconds() const
    {
        return static_cast<double>(cycles) / (chipFreqGHz * 1e9);
    }

    /** Sum of per-thread IPCs (throughput in instructions/cycle). */
    double aggregateIpc() const;
};

/**
 * Rebuild the metric snapshot of @p result from its structs, on the same
 * path schema the live chip registry uses (`core.<i>.*`, `llc.*`, `dram.*`,
 * `xbar.*`, `chip.*`). For a ChipSim-collected result this reproduces
 * result.metrics value-for-value; for hand-built results it is the way to
 * get one.
 */
telemetry::Snapshot rebuildResultMetrics(const SimResult &result);

/** Safety limits of a run. */
struct RunLimits
{
    Cycle maxCycles = 400'000'000;
    /** Time-sharing quantum for oversubscribed context slots. */
    Cycle quantum = 5'000;
};

/**
 * The chip: cores + shared memory + global clock.
 *
 * High-level use: runMultiProgram() for the paper's multi-program
 * methodology. Low-level use (multi-threaded workloads with
 * synchronisation): construct, attach ThreadSources, and tick() under an
 * external controller (see workload/parsec).
 */
class ChipSim
{
  public:
    explicit ChipSim(const ChipConfig &config);

    const ChipConfig &config() const { return config_; }
    Cycle now() const { return now_; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    Core &core(std::uint32_t i) { return *cores_.at(i); }
    const Core &core(std::uint32_t i) const { return *cores_.at(i); }
    SharedMemory &sharedMemory() { return shared_; }

    /**
     * The chip's metric registry: every component counter registered at
     * construction under the `core.<i>.*` / `llc.*` / `dram.*` / `xbar.*`
     * / `chip.*` path schema (DESIGN.md §12). Reading is only meaningful
     * between run()/tick() calls (wakeAllCores() has settled deferred
     * fast-forward accounting).
     */
    const telemetry::MetricRegistry &metrics() const { return registry_; }
    telemetry::MetricRegistry &metrics() { return registry_; }

    /**
     * Turn on interval time-series sampling: every @p interval global
     * cycles, append one point to the `chip.ipc` series (chip-wide retired
     * ops per cycle over the interval) and one to `chip.active_threads`
     * (attached threads at the sample cycle). Off by default — when off,
     * the run loops are exactly the pre-telemetry loops. Sampling clamps
     * fast-forward jumps to sample boundaries, so sampled runs remain
     * bit-identical to strict (non-fast-forward) sampled runs.
     *
     * @param max_points ring capacity per series (0 = unbounded).
     */
    void enableSampling(Cycle interval, std::size_t max_points = 0);
    bool samplingEnabled() const { return samplingInterval_ != 0; }

    /** Attach/detach with central active-thread bookkeeping. */
    void attach(std::uint32_t core, std::uint32_t slot, ThreadSource *t);
    ThreadSource *detach(std::uint32_t core, std::uint32_t slot);

    /** Number of threads currently attached chip-wide. */
    std::uint32_t attachedThreads() const { return attachedThreads_; }

    /** Advance one global cycle (ticks every non-quiescent core and
     * accumulates power/active-thread accounting). */
    void tick();

    /**
     * Advance @p cycles global cycles event-driven: each core that is
     * provably idle until a known future cycle (all SMT contexts stalled
     * on pending fills, branch redirects or blocked ROB heads) sleeps —
     * it is not ticked, and its per-cycle accounting is bulk-replayed
     * when it wakes — and when every core sleeps, global time jumps to
     * the earliest wake. Results are bit-identical to calling tick()
     * @p cycles times; see DESIGN.md ("Event-driven fast-forward").
     */
    void run(Cycle cycles);

    /** Enable/disable fast-forward (default: on, unless the
     * SMTFLEX_NO_FASTFWD environment flag is set). */
    void setFastForward(bool on) { fastForward_ = on; }
    bool fastForwardEnabled() const { return fastForward_; }

    /** Per-core global cycles elided by fast-forward so far, summed over
     * cores (diagnostics). */
    Cycle fastForwardedCycles() const { return ffCycles_; }
    /** Number of fast-forwarded sleep spans so far (diagnostics). */
    std::uint64_t fastForwardSpans() const { return ffSpans_; }

    /**
     * Conservative earliest global cycle at which any ticking core could
     * dispatch, retire, or change state (min of Core::nextEventCycle over
     * powered or draining cores; kCycleNever when all are inert).
     */
    Cycle nextEventCycle();

    /** One thread's working set to warm (see warmAllCaches). */
    struct WarmSpec
    {
        const BenchmarkProfile *profile = nullptr;
        AddressSpace space;
        std::uint32_t core = 0;
    };

    /**
     * Functional cache warmup (sampled-simulation style): install every
     * thread's cache-resident working set into its core's private
     * hierarchy and the shared LLC, in zero simulated time. Installation
     * is interleaved across threads in chunks so that shared-cache (LLC)
     * capacity pressure evicts every thread's coldest lines evenly rather
     * than wiping out whichever thread was installed first. Streaming and
     * larger-than-LLC regions are skipped — missing is their steady state.
     */
    void warmAllCaches(const std::vector<WarmSpec> &specs);

    /** Convenience wrapper for a single thread. */
    void warmThreadCaches(std::uint32_t core, const BenchmarkProfile &profile,
                          const AddressSpace &space);

    /**
     * Run a multi-program workload to completion: every thread executes its
     * budget at least once (finished threads restart and keep contending).
     */
    SimResult runMultiProgram(const std::vector<ThreadSpec> &threads,
                              const Placement &placement,
                              std::uint64_t seed,
                              const RunLimits &limits = RunLimits{});

    /** Snapshot results of a low-level (externally driven) run. */
    SimResult collectResult() const;

    /**
     * Serialize the chip's complete mutable state — global clock, every
     * core (SMT contexts, ROBs, private caches, MSHRs), the shared side
     * (interconnect, LLC, DRAM), power/activity accounting and the
     * sampling series — so that a chip restored from the stream is
     * bit-identical to this one for all future simulation. Must be
     * called in a strict-equivalent state (the run loops' boundaries,
     * after wakeAllCores() settled deferred fast-forward accounting);
     * the wake bookkeeping itself is then all-awake by construction and
     * is not serialized. @p threads is the stable table that maps the
     * ThreadSource pointers inside cores to indices and back.
     */
    void saveState(ckpt::Writer &w,
                   const std::vector<ThreadSource *> &threads) const;

    /** Restore state saved by an identically configured chip; throws
     * ckpt::CorruptSnapshot on structural mismatch. */
    void loadState(ckpt::Reader &r,
                   const std::vector<ThreadSource *> &threads);

  private:
    void validatePlacement(const Placement &placement,
                           std::size_t num_threads) const;

    /**
     * Advance one global cycle the event-driven way: tick the awake
     * cores and put newly idle ones to sleep until their next event.
     * Only called from the run loops; tick() stays strictly
     * cycle-by-cycle.
     */
    void stepCores();

    /**
     * If every core is asleep (or dormant), jump now_ to just before the
     * earliest wake, clamped to @p bound (now_ never exceeds @p bound).
     * No-op while any core is awake.
     */
    void jumpIdleSpan(Cycle bound);

    /** Apply core @p i's deferred sleep span (bulk accounting of the
     * provably inert cycles since it last ticked) and wake it. Must run
     * before anything external mutates the core (attach/detach) and
     * before results are read. */
    void flushCore(std::uint32_t i);

    /** flushCore over all cores — run loops call this on exit so the
     * chip is always in a strict-equivalent state between calls. */
    void wakeAllCores();

    /** Register every chip-level and component metric (ctor helper). */
    void registerChipMetrics();

    /** Record due time-series samples (called with now_ at or past the
     * next sample boundary; a no-op branch when sampling is off). */
    void maybeSample();

    ChipConfig config_;
    SharedMemory shared_;
    std::vector<std::unique_ptr<Core>> cores_;
    Cycle now_ = 0;
    std::uint32_t attachedThreads_ = 0;
    /** Powered (>= 1 attached thread) cycle counters per core. */
    std::vector<Cycle> poweredCycles_;
    /** Time-weighted histogram of attached thread counts. */
    Histogram activeHistogram_;
    bool hitCycleLimit_ = false;
    /** Event-driven fast-forward (SMTFLEX_NO_FASTFWD turns it off). */
    bool fastForward_ = true;
    /** Per core: global cycle of the next strict tick while sleeping
     * (0 = awake, kCycleNever = parked dormant: skipped entirely, like
     * the strict loop skips unpowered quiescent cores), and the global
     * cycle of the last strict tick. */
    std::vector<Cycle> wake_;
    std::vector<Cycle> sleepStart_;
    /** Bitmask of awake cores, iterated in index order so same-cycle
     * memory accesses keep the strict loop's core order. Sleeping and
     * parked cores cost nothing per cycle. */
    std::vector<std::uint64_t> awakeMask_;
    /** (wake cycle, core) min-heap; entries whose wake no longer matches
     * wake_[core] are stale (the core was flushed externally) and are
     * discarded when they surface. Parked cores have no entry. */
    std::priority_queue<std::pair<Cycle, std::uint32_t>,
                        std::vector<std::pair<Cycle, std::uint32_t>>,
                        std::greater<>>
        wakeHeap_;
    Cycle ffCycles_ = 0;
    std::uint64_t ffSpans_ = 0;

    /** The telemetry spine. Declared after the components it views so the
     * views never outlive their cells. */
    telemetry::MetricRegistry registry_;
    /** Interval sampling state (0 interval = off). */
    Cycle samplingInterval_ = 0;
    std::size_t samplingMaxPoints_ = 0;
    Cycle nextSample_ = 0;
    Cycle lastSampleCycle_ = 0;
    std::uint64_t lastSampleRetired_ = 0;
    telemetry::Series *ipcSeries_ = nullptr;
    telemetry::Series *activeSeries_ = nullptr;
};

} // namespace smtflex

#endif // SMTFLEX_SIM_CHIP_SIM_H
