/**
 * @file
 * Disk-backed memoisation of simulation results. A full design-space sweep
 * involves thousands of simulations that several figures share; the cache
 * lets every bench binary reuse one sweep (the substitute for the paper's
 * supercomputer simulation campaign; see DESIGN.md).
 */

#ifndef SMTFLEX_STUDY_RESULT_CACHE_H
#define SMTFLEX_STUDY_RESULT_CACHE_H

#include <map>
#include <string>
#include <vector>

namespace smtflex {

/**
 * A persistent map from string keys to vectors of doubles.
 *
 * The file format is one record per line: `key|v1 v2 ...`. Keys must not
 * contain '|' or newlines. Records are appended as they are computed, so an
 * interrupted sweep resumes where it stopped.
 */
class ResultCache
{
  public:
    /** Open (and load) the cache at @p path; empty path = in-memory only. */
    explicit ResultCache(std::string path);

    /** Look up a record; nullptr when absent. */
    const std::vector<double> *find(const std::string &key) const;

    /** Insert a record and append it to the backing file. */
    void store(const std::string &key, const std::vector<double> &values);

    std::size_t size() const { return entries_.size(); }
    const std::string &path() const { return path_; }

  private:
    void load();

    std::string path_;
    std::map<std::string, std::vector<double>> entries_;
};

} // namespace smtflex

#endif // SMTFLEX_STUDY_RESULT_CACHE_H
