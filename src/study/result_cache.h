/**
 * @file
 * Disk-backed memoisation of simulation results. A full design-space sweep
 * involves thousands of simulations that several figures share; the cache
 * lets every bench binary reuse one sweep (the substitute for the paper's
 * supercomputer simulation campaign; see DESIGN.md).
 */

#ifndef SMTFLEX_STUDY_RESULT_CACHE_H
#define SMTFLEX_STUDY_RESULT_CACHE_H

#include <array>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace smtflex {

/**
 * A persistent, concurrency-safe map from string keys to vectors of
 * doubles.
 *
 * The map is sharded: each of kNumShards shards has its own mutex, its own
 * entry map and its own append-only file segment (`<path>.shard-NN`), so
 * parallel experiment workers can store and look up results without
 * contending on one lock or interleaving writes within one file. Records
 * are appended as they are computed, so an interrupted sweep resumes where
 * it stopped.
 *
 * On-disk format, one record per line: `key|v1 v2 ...`. Keys are escaped
 * on write ('\\' -> "\\\\", '|' -> "\\p", newline -> "\\n", carriage
 * return -> "\\r") so any non-empty key round-trips; unescaped legacy
 * files load unchanged. The pre-sharding single-file format (everything in
 * `<path>` itself) is still loaded first, and shard segments override it,
 * so existing caches keep working; new records only ever land in shard
 * segments.
 */
class ResultCache
{
  public:
    static constexpr std::size_t kNumShards = 16;

    /** Open (and load) the cache at @p path; empty path = in-memory only. */
    explicit ResultCache(std::string path);

    /**
     * Copy of a record, or nullopt when absent. Safe against concurrent
     * store() of any key (including an overwrite of this one).
     */
    std::optional<std::vector<double>> lookup(const std::string &key) const;

    /**
     * Pointer to a record; nullptr when absent. The pointer survives
     * concurrent insertion of other keys but NOT an overwrite of the same
     * key — prefer lookup() in concurrent code.
     */
    const std::vector<double> *find(const std::string &key) const;

    /** Insert a record and append it to the key's shard segment. Only
     * empty keys are rejected; every other key is escaped on disk. */
    void store(const std::string &key, const std::vector<double> &values);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Flush every shard's append stream to disk (graceful-shutdown
     * hook; individual stores already flush their own record). */
    void flush();

    /** Escape/unescape a key for the on-disk format (exposed for tests). */
    static std::string escapeKey(const std::string &key);
    static std::string unescapeKey(const std::string &escaped);

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::map<std::string, std::vector<double>> entries;
        std::ofstream out; ///< lazily opened append stream
    };

    std::size_t shardOf(const std::string &key) const;
    std::string shardPath(std::size_t index) const;
    void loadFile(const std::string &file_path);
    void load();

    std::string path_;
    std::array<std::unique_ptr<Shard>, kNumShards> shards_;
};

} // namespace smtflex

#endif // SMTFLEX_STUDY_RESULT_CACHE_H
