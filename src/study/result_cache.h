/**
 * @file
 * Disk-backed memoisation of simulation results. A full design-space sweep
 * involves thousands of simulations that several figures share; the cache
 * lets every bench binary reuse one sweep (the substitute for the paper's
 * supercomputer simulation campaign; see DESIGN.md).
 */

#ifndef SMTFLEX_STUDY_RESULT_CACHE_H
#define SMTFLEX_STUDY_RESULT_CACHE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace smtflex {

/**
 * A persistent, concurrency-safe map from string keys to vectors of
 * doubles.
 *
 * The map is sharded: each of kNumShards shards has its own mutex, its own
 * entry map and its own append-only file segment (`<path>.shard-NN`), so
 * parallel experiment workers can store and look up results without
 * contending on one lock or interleaving writes within one file. Records
 * are appended as they are computed, so an interrupted sweep resumes where
 * it stopped.
 *
 * On-disk format, one record per line: `key|v1 v2 ...|cXXXXXXXX`, where
 * the trailing field is the CRC-32 of everything before its separator, in
 * eight hex digits. Keys are escaped on write ('\\' -> "\\\\", '|' ->
 * "\\p", newline -> "\\n", carriage return -> "\\r") so any non-empty key
 * round-trips. Both older formats still load: the pre-sharding single
 * file (`<path>` itself, loaded first so shard segments override it) and
 * CRC-less `key|v1 v2 ...` lines.
 *
 * Durability: lines that fail the CRC or are structurally broken (a torn
 * final write, a merged line after a short append) are skipped, counted
 * (corruptLinesSkipped()) and reported with one warning per file — a
 * corrupt line costs one recomputation, never a corrupt result. Appends
 * that come up short are terminated and retried so the record still
 * persists. checkpoint() rewrites every segment through the atomic
 * tmp + rename + fsync dance; SMTFLEX_CACHE_FSYNC=1 additionally fsyncs
 * each appended record. Injection seams (smtflex::fault sites io.write,
 * io.fsync, io.load) make all of these paths testable on demand.
 */
class ResultCache
{
  public:
    static constexpr std::size_t kNumShards = 16;

    /**
     * First line of every segment this version writes. Files carrying it
     * are parsed strictly — every record must have a matching CRC, so a
     * record truncated before its tag can never masquerade as a CRC-less
     * legacy record with silently shortened values. Files without it
     * (committed legacy caches) keep the lax legacy parsing.
     */
    static constexpr const char *kFormatHeader = "#smtflex-cache-v2";

    /** Open (and load) the cache at @p path; empty path = in-memory only. */
    explicit ResultCache(std::string path);
    ~ResultCache();

    /**
     * Copy of a record, or nullopt when absent. Safe against concurrent
     * store() of any key (including an overwrite of this one).
     */
    std::optional<std::vector<double>> lookup(const std::string &key) const;

    /**
     * Pointer to a record; nullptr when absent. The pointer survives
     * concurrent insertion of other keys but NOT an overwrite of the same
     * key — prefer lookup() in concurrent code.
     */
    const std::vector<double> *find(const std::string &key) const;

    /** Insert a record and append it to the key's shard segment. Only
     * empty keys are rejected; every other key is escaped on disk. */
    void store(const std::string &key, const std::vector<double> &values);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Push every shard's appended records to stable storage (fsync).
     * Cheap graceful-shutdown hook; see checkpoint() for the atomic
     * full-snapshot variant. */
    void flush();

    /**
     * Atomically rewrite every shard segment as a full snapshot of its
     * in-memory entries: write `<segment>.tmp`, fsync it, rename it over
     * the segment and fsync the directory. A crash at any point leaves
     * either the old or the new segment, never a torn one.
     * @return whether every shard was persisted (failures are warned and
     * leave that shard's old segment in place).
     */
    bool checkpoint();

    /** Corrupt/partial lines skipped across all loads of this instance.
     * Surfaced by the serve `stats` op. */
    std::uint64_t corruptLinesSkipped() const
    {
        return corruptSkipped_.load(std::memory_order_relaxed);
    }

    /** Escape/unescape a key for the on-disk format (exposed for tests). */
    static std::string escapeKey(const std::string &key);
    static std::string unescapeKey(const std::string &escaped);

    /** Format one on-disk record line, CRC tag and trailing newline
     * included (exposed for tests). */
    static std::string formatRecord(const std::string &key,
                                    const std::vector<double> &values);

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::map<std::string, std::vector<double>> entries;
        int fd = -1; ///< lazily opened append descriptor
    };

    std::size_t shardOf(const std::string &key) const;
    std::string shardPath(std::size_t index) const;
    void loadFile(const std::string &file_path);
    void load();
    /** Append @p record to the shard's segment, healing short writes.
     * Caller holds the shard mutex. */
    void appendRecord(Shard &shard, std::size_t index,
                      const std::string &record);

    std::string path_;
    bool fsyncEachStore_ = false;
    std::array<std::unique_ptr<Shard>, kNumShards> shards_;
    std::atomic<std::uint64_t> corruptSkipped_{0};
};

} // namespace smtflex

#endif // SMTFLEX_STUDY_RESULT_CACHE_H
